bench/figs.ml: Apps Cudasim Cusan Fmt Harness List Option Paper_ref String Testsuite Tsan
