bench/main.ml: Array Figs Fmt List Micro Sys Testsuite
