bench/main.mli:
