bench/micro.ml: Analyze Apps Bechamel Benchmark Cusan Fmt Hashtbl Instance List Measure Memsim Staged Test Time Toolkit Tsan Typeart
