bench/paper_ref.ml:
