(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (Fig. 10, Fig. 11, Table I, Fig. 12), the
   correctness testsuite summary, design-choice ablations, and Bechamel
   micro-benchmarks.

     dune exec bench/main.exe              # everything, default sizes
     dune exec bench/main.exe -- --quick   # smaller sizes, fewer repeats
     dune exec bench/main.exe -- fig10 fig12
     dune exec bench/main.exe -- table1 micro suite ablation *)

let usage =
  "usage: main.exe [--quick] [fig10|fig11|table1|fig12|suite|ablation|micro]..."

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let wanted = List.filter (fun a -> a <> "--quick") args in
  let wanted =
    if wanted = [] then [ "fig10"; "fig11"; "table1"; "fig12"; "suite"; "ablation"; "micro" ]
    else wanted
  in
  let sz = if quick then Figs.quick_sizes else Figs.default_sizes in
  Fmt.pr "CuSan reproduction benchmark harness%s@."
    (if quick then " (quick sizes)" else "");
  Fmt.pr "Jacobi %dx%d x%d iters, TeaLeaf %dx%d x%d steps x%d CG, %d repeats@."
    sz.Figs.jacobi_nx sz.Figs.jacobi_ny sz.Figs.jacobi_iters sz.Figs.tealeaf_nx
    sz.Figs.tealeaf_ny sz.Figs.tealeaf_steps sz.Figs.tealeaf_cg sz.Figs.repeats;
  List.iter
    (fun what ->
      match what with
      | "fig10" -> ignore (Figs.fig10 sz)
      | "fig11" -> ignore (Figs.fig11 sz)
      | "table1" -> ignore (Figs.table1 sz)
      | "fig12" -> ignore (Figs.fig12 sz)
      | "ablation" -> Figs.ablation sz
      | "micro" -> Micro.run ()
      | "suite" ->
          let vs = Testsuite.Runner.run_all () in
          let pass, total = Testsuite.Runner.summary vs in
          Fmt.pr "@.=== Correctness testsuite (Section VI-C)@.";
          Fmt.pr "  %d of %d cases classified correctly (paper: 49/49 at v1.0)@."
            pass total;
          List.iter
            (fun v ->
              if not v.Testsuite.Runner.pass then
                Fmt.pr "  %a@." Testsuite.Runner.pp_verdict v)
            vs
      | other ->
          Fmt.epr "unknown target %S@.%s@." other usage;
          exit 2)
    wanted;
  Fmt.pr "@.done.@."
