(* The paper's published numbers, for side-by-side comparison in the
   bench output and EXPERIMENTS.md. Source: Hück et al., "Compiler-Aided
   Correctness Checking of CUDA-Aware MPI Applications", SC-W 2024. *)

(* Fig. 10: relative runtime vs. vanilla. *)
let fig10_jacobi = [ ("TSan", 2.27); ("MUST", 4.63); ("CuSan", 36.06); ("MUST & CuSan", 37.89) ]
let fig10_tealeaf = [ ("TSan", 1.01); ("MUST", 4.2); ("CuSan", 3.77); ("MUST & CuSan", 6.97) ]
let vanilla_runtime_jacobi = 1.35
let vanilla_runtime_tealeaf = 0.75

(* Fig. 11: relative memory (RSS at MPI_Finalize) vs. vanilla. *)
let fig11_jacobi = [ ("TSan", 1.2); ("MUST", 1.17); ("CuSan", 1.71); ("MUST & CuSan", 1.77) ]
let fig11_tealeaf = [ ("TSan", 1.0); ("MUST", 1.03); ("CuSan", 1.25); ("MUST & CuSan", 1.29) ]
let vanilla_rss_jacobi_mb = 311.
let vanilla_rss_tealeaf_mb = 283.

(* Table I: event counters for one MPI process. *)
type table1_row = { metric : string; jacobi : float; tealeaf : float }

let table1 =
  [
    { metric = "Stream"; jacobi = 2.; tealeaf = 1. };
    { metric = "Memset"; jacobi = 2.; tealeaf = 36. };
    { metric = "Memcpy"; jacobi = 602.; tealeaf = 102. };
    { metric = "Synchronization calls"; jacobi = 900.; tealeaf = 530. };
    { metric = "Kernel calls"; jacobi = 1200.; tealeaf = 767. };
    { metric = "Switch To Fiber"; jacobi = 3622.; tealeaf = 1882. };
    { metric = "AnnotateHappensBefore"; jacobi = 1804.; tealeaf = 905. };
    { metric = "AnnotateHappensAfter"; jacobi = 1515.; tealeaf = 632. };
    { metric = "Memory Read Range"; jacobi = 2102.; tealeaf = 623. };
    { metric = "Memory Write Range"; jacobi = 2403.; tealeaf = 1074. };
    { metric = "Memory Read Size [avg KB]"; jacobi = 19705.62; tealeaf = 15.98 };
    { metric = "Memory Write Size [avg KB]"; jacobi = 16421.35; tealeaf = 17.58 };
  ]

(* Fig. 12: Jacobi scaling — the paper sweeps 512x256 .. 8192x4096 and
   reports relative runtime rising with the domain size (about 6x at the
   smallest to far beyond 36x at the largest), tracking the total bytes
   annotated. We reproduce the sweep shape on scaled-down domains. *)
let fig12_domains_paper = [ "512x256"; "1024x512"; "2048x1024"; "4096x2048"; "8192x4096" ]
