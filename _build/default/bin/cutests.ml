(* The testsuite runner binary, analogous to `make check-cutests` in the
   paper's artifact: runs every case of the correctness matrix under
   MUST & CuSan and prints PASS/FAIL per case. *)

let () =
  let deferred = Array.exists (( = ) "--deferred") Sys.argv in
  let verbose = Array.exists (( = ) "--verbose") Sys.argv in
  let list_only = Array.exists (( = ) "--list") Sys.argv in
  if list_only then begin
    List.iter
      (fun (c : Testsuite.Cases.case) ->
        Fmt.pr "%-55s %s@." c.Testsuite.Cases.name c.Testsuite.Cases.descr)
      (Testsuite.Cases.all ());
    exit 0
  end;
  let mode = if deferred then Cudasim.Device.Deferred else Cudasim.Device.Eager in
  let verdicts = Testsuite.Runner.run_all ~mode () in
  let total = List.length verdicts in
  List.iteri
    (fun i v ->
      Fmt.pr "%a (%d of %d)@." Testsuite.Runner.pp_verdict v (i + 1) total;
      if verbose && not v.Testsuite.Runner.pass then
        List.iter
          (fun (rank, r) ->
            Fmt.pr "    rank %d: %s@." rank (Tsan.Report.to_string r))
          v.Testsuite.Runner.reports)
    verdicts;
  let pass, total = Testsuite.Runner.summary verdicts in
  Fmt.pr "@.%d of %d testsuite cases classified correctly@." pass total;
  if pass <> total then exit 1
