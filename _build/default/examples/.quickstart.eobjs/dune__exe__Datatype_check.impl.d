examples/datatype_check.ml: Cudasim Fmt Harness List Memsim Mpisim Must Typeart
