examples/datatype_check.mli:
