examples/hybrid_threads.ml: Cudasim Cusan Fmt Harness Kir List Tsan Typeart
