examples/hybrid_threads.mli:
