examples/jacobi_demo.ml: Apps Arg Array Cudasim Cusan Fmt Harness List Tsan
