examples/managed_memory.ml: Cudasim Fmt Harness Kir List Memsim Tsan Typeart
