examples/managed_memory.mli:
