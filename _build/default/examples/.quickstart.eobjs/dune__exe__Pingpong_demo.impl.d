examples/pingpong_demo.ml: Apps Fmt Harness List Tsan
