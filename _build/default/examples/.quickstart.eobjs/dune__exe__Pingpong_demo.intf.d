examples/pingpong_demo.mli:
