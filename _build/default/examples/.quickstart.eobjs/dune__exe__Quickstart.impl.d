examples/quickstart.ml: Cudasim Cusan Fmt Harness Kir List Mpisim Tsan Typeart
