examples/quickstart.mli:
