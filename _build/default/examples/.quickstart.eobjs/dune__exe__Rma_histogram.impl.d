examples/rma_histogram.ml: Fmt Harness List Memsim Mpisim Tsan Typeart
