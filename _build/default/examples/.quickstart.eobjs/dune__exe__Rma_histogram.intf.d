examples/rma_histogram.mli:
