examples/tealeaf_demo.ml: Apps Arg Array Cusan Fmt Harness List Tsan
