examples/tealeaf_demo.mli:
