lib/apps/jacobi.ml: Array Cudasim Harness Kir Memsim Mpisim Typeart
