lib/apps/pingpong.ml: Cudasim Harness Kir List Memsim Mpisim Typeart
