lib/apps/tealeaf.ml: Array Cudasim Harness Kir List Memsim Mpisim Option Typeart
