(* A CUDA-aware MPI ping-pong microbenchmark, after the OSU
   micro-benchmarks (osu_latency / osu_bw) that are the standard way to
   exercise CUDA-aware MPI transports: rank 0 sends a device buffer to
   rank 1, which sends it straight back, across a sweep of message
   sizes. Device buffers (D-D), or host staging (H-H) for comparison —
   the transfer path difference CUDA-aware MPI exists to remove.

   Latency is reported in virtual device+network time (the cost model's
   clock), so D-D vs. H-H reflects the modelled PCIe staging cost rather
   than OCaml allocator noise. The correct variant synchronizes the
   fill kernel before sending; the racy one does not. *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Mpi = Mpisim.Mpi

type placement = Device_to_device | Host_to_host

type config = {
  sizes : int list; (* message sizes in doubles *)
  iters : int; (* round trips per size *)
  placement : placement;
  racy : bool;
  results : (int * float) list ref; (* (bytes, virtual one-way seconds) *)
}

let config ?(sizes = [ 1; 16; 256; 4096; 65536 ]) ?(iters = 10)
    ?(placement = Device_to_device) ?(racy = false) () =
  { sizes; iters; placement; racy; results = ref [] }

let fill_src =
  Kir.Dsl.(
    modul ~kernels:[ "fill" ]
      [
        func "fill"
          [ ptr "buf"; scalar "n" ]
          [ if_ (tid <. p 1) [ store (p 0) tid (i2f tid) ] [] ];
      ])

let native_fill ~grid (args : Kir.Interp.value array) =
  match args with
  | [| VPtr buf; VInt n |] ->
      for t = 0 to grid - 1 do
        if t < n then Memsim.Access.raw_set_f64 buf t (float_of_int t)
      done
  | _ -> invalid_arg "native_fill"

(* Modelled interconnect: 100 Gb/s-class fabric with GPUDirect, so the
   network leg is the same for both placements; the placements differ by
   the PCIe staging copies the non-CUDA-aware variant pays per message
   (charged through the device cost model). *)
let net_overhead_s = 1.5e-6
let net_bandwidth = 12.5e9

let net_cost ~bytes = net_overhead_s +. (float_of_int bytes /. net_bandwidth)

let app (cfg : config) (env : Harness.Run.env) =
  let ctx = env.Harness.Run.mpi in
  let dev = env.Harness.Run.dev in
  if ctx.Mpi.size <> 2 then invalid_arg "pingpong needs exactly 2 ranks";
  let rank = ctx.Mpi.rank in
  let peer = 1 - rank in
  let kernel =
    env.Harness.Run.compile
      (Cudasim.Kernel.make ~kir:(fill_src, "fill") ~native:native_fill "fill")
  in
  let dt = Mpisim.Datatype.double in
  List.iter
    (fun n ->
      let bytes = n * 8 in
      let d = Mem.cuda_malloc ~tag:"pp_dev" dev ~ty:Typeart.Typedb.F64 ~count:n in
      Dev.launch dev kernel ~grid:n ~args:[| VPtr d; VInt n |] ();
      if not cfg.racy then Dev.device_synchronize dev;
      let _, virt0 = Dev.timing dev in
      (match cfg.placement with
      | Device_to_device ->
          (* CUDA-aware: the device pointer goes straight to MPI. *)
          for _ = 1 to cfg.iters do
            if rank = 0 then begin
              Mpi.send ctx ~buf:d ~count:n ~dt ~dst:peer ~tag:0;
              Mpi.recv ctx ~buf:d ~count:n ~dt ~src:peer ~tag:1
            end
            else begin
              Mpi.recv ctx ~buf:d ~count:n ~dt ~src:peer ~tag:0;
              Mpi.send ctx ~buf:d ~count:n ~dt ~dst:peer ~tag:1
            end
          done
      | Host_to_host ->
          (* Non-CUDA-aware: stage through pinned host memory around
             every transfer — the copies CUDA-aware MPI eliminates. *)
          let h = Mem.cuda_host_alloc ~tag:"pp_host" dev ~ty:Typeart.Typedb.F64 ~count:n in
          for _ = 1 to cfg.iters do
            if rank = 0 then begin
              Mem.memcpy dev ~dst:h ~src:d ~bytes ();
              Mpi.send ctx ~buf:h ~count:n ~dt ~dst:peer ~tag:0;
              Mpi.recv ctx ~buf:h ~count:n ~dt ~src:peer ~tag:1;
              Mem.memcpy dev ~dst:d ~src:h ~bytes ()
            end
            else begin
              Mpi.recv ctx ~buf:h ~count:n ~dt ~src:peer ~tag:0;
              Mem.memcpy dev ~dst:d ~src:h ~bytes ();
              Mem.memcpy dev ~dst:h ~src:d ~bytes ();
              Mpi.send ctx ~buf:h ~count:n ~dt ~dst:peer ~tag:1
            end
          done;
          Typeart.Pass.free h);
      let _, virt1 = Dev.timing dev in
      if rank = 0 then begin
        (* one-way modelled latency: this rank's staging cost plus the
           network leg, averaged over the round trips *)
        let staging = (virt1 -. virt0) /. float_of_int (2 * cfg.iters) in
        let lat = staging +. net_cost ~bytes in
        cfg.results := (bytes, lat) :: !(cfg.results)
      end;
      Mem.free dev d)
    cfg.sizes;
  if rank = 0 then cfg.results := List.rev !(cfg.results)
