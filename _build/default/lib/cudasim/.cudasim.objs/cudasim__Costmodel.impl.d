lib/cudasim/costmodel.ml: Memsim
