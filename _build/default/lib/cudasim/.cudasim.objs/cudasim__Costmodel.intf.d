lib/cudasim/costmodel.mli: Memsim
