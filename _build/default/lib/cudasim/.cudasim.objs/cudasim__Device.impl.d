lib/cudasim/device.ml: Array Costmodel Fmt Hashtbl Kernel Kir List Memsim Queue Unix
