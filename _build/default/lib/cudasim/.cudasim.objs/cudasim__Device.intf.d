lib/cudasim/device.mli: Kernel Kir Memsim
