lib/cudasim/kernel.ml: Kir
