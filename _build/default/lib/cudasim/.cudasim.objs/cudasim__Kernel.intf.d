lib/cudasim/kernel.mli: Kir
