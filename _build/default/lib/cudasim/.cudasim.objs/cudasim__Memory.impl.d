lib/cudasim/memory.ml: Access Costmodel Device Fmt Memsim Ptr Semantics Space Typeart
