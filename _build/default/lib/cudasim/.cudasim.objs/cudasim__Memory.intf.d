lib/cudasim/memory.mli: Device Memsim Typeart
