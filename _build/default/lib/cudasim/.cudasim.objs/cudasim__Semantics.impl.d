lib/cudasim/semantics.ml: Memsim Space
