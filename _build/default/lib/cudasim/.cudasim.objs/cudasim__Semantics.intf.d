lib/cudasim/semantics.mli: Memsim
