(* Virtual device timing.

   The simulator executes kernels on the host CPU, but on the paper's
   testbed (NVIDIA V100) device work runs on the GPU: a process's wall
   time contains only the *host* work plus the time it spends waiting
   for the device. To report runtimes with the same semantics, the
   device accounts two quantities per operation:

   - the real wall time spent executing the op's body on this CPU
     (an artifact of simulation, subtracted by the harness), and
   - a virtual duration from the calibrated cost model below (what the
     device would have taken, added back by the harness).

   Constants are rough V100-class figures; they are calibration knobs,
   not measurements, and EXPERIMENTS.md reports them alongside results. *)

let kernel_launch_overhead_s = 5e-6
let kernel_per_thread_s = 4e-11 (* ~25 Gcell/s effective for a stencil *)
let pcie_bandwidth = 12e9 (* host <-> device, bytes/s *)
let device_bandwidth = 300e9 (* on-device, bytes/s *)
let memop_overhead_s = 8e-6

let kernel ~grid = kernel_launch_overhead_s +. (float_of_int grid *. kernel_per_thread_s)

let memcpy ~src ~dst ~bytes =
  let bw =
    if Memsim.Space.is_device_memory src && Memsim.Space.is_device_memory dst
    then device_bandwidth
    else pcie_bandwidth
  in
  memop_overhead_s +. (float_of_int bytes /. bw)

let memset ~bytes = memop_overhead_s +. (float_of_int bytes /. device_bandwidth)
