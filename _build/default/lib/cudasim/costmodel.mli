(** Virtual device timing.

    The simulator executes kernels on the host CPU, but on the paper's
    testbed (NVIDIA V100) device work runs on the GPU: a process's wall
    time contains only host work plus the time spent waiting for the
    device. The device therefore accounts, per operation, both the real
    CPU time of executing the op body (subtracted by the harness as a
    simulation artifact) and a virtual duration from this calibrated
    cost model (added back). Constants are rough V100-class figures —
    calibration knobs, not measurements; EXPERIMENTS.md reports them
    alongside results. *)

val kernel_launch_overhead_s : float
val kernel_per_thread_s : float
val pcie_bandwidth : float
val device_bandwidth : float
val memop_overhead_s : float

val kernel : grid:int -> float
(** Virtual duration of a kernel over [grid] threads. *)

val memcpy : src:Memsim.Space.t -> dst:Memsim.Space.t -> bytes:int -> float
(** PCIe bandwidth when host memory is involved, on-device bandwidth for
    device-to-device copies. *)

val memset : bytes:int -> float
