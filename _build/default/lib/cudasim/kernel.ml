(* A CUDA kernel as seen by the host: a name, the device IR it was
   compiled from, an optional natively-compiled implementation (the
   "fat binary"), and the per-argument access attributes that CuSan's
   device pass computes and embeds for the launch-site callback
   (paper, Fig. 7 and Fig. 9). *)

type access = R | W | RW

let access_str = function R -> "r" | W -> "w" | RW -> "rw"

let reads = function R | RW -> true | W -> false
let writes = function W | RW -> true | R -> false

type t = {
  kname : string;
  kir : (Kir.Ir.modul * string) option; (* module + entry function *)
  native : (grid:int -> Kir.Interp.value array -> unit) option;
  mutable access : access option array option;
      (* per argument; [None] entries are scalar arguments. [None] overall
         means the CuSan device pass has not analyzed this kernel. *)
}

let make ?kir ?native kname =
  if kir = None && native = None then
    invalid_arg "Kernel.make: kernel needs IR or a native implementation";
  { kname; kir; native; access = None }

(* Execute the kernel body for a whole grid: the native fat-binary code
   when present, otherwise the IR interpreter. *)
let execute t ~grid args =
  match t.native with
  | Some f -> f ~grid args
  | None -> (
      match t.kir with
      | Some (m, entry) -> Kir.Interp.run_kernel m ~name:entry ~args ~grid
      | None -> assert false)
