(* The CUDA memory management API of the simulator. Allocation sites go
   through TypeART's instrumented allocator (Section IV-C of the paper),
   so the runtime can later answer extent queries for device pointers.
   Copy/set operations are enqueued as device operations with the
   host-synchronicity decided by the semantics matrix. *)

open Memsim

let malloc ?(tag = "d_mem") _dev ~ty ~count =
  let p = Typeart.Pass.alloc ~tag Space.Device ty count in
  p

let malloc_managed ?(tag = "m_mem") _dev ~ty ~count =
  Typeart.Pass.alloc ~tag Space.Managed ty count

let host_alloc ?(tag = "h_pinned") _dev ~ty ~count =
  Typeart.Pass.alloc ~tag Space.Host_pinned ty count

(* Plain malloc: pageable host memory; still tracked by TypeART (its
   pass instruments heap allocations in general). *)
let host_malloc ?(tag = "h_mem") ~ty ~count () =
  Typeart.Pass.alloc ~tag Space.Host_pageable ty count

let fire_malloc dev p space bytes =
  Device.fire dev Device.Pre (Device.Malloc { ptr = p; space; bytes });
  Device.fire dev Device.Post (Device.Malloc { ptr = p; space; bytes })

(* Allocators that also notify tools via the device hook, as intercepted
   CUDA API calls would. *)
let cuda_malloc ?tag dev ~ty ~count =
  let p = malloc ?tag dev ~ty ~count in
  fire_malloc dev p Space.Device (count * Typeart.Typedb.sizeof ty);
  p

let cuda_malloc_managed ?tag dev ~ty ~count =
  let p = malloc_managed ?tag dev ~ty ~count in
  fire_malloc dev p Space.Managed (count * Typeart.Typedb.sizeof ty);
  p

let cuda_host_alloc ?tag dev ~ty ~count =
  let p = host_alloc ?tag dev ~ty ~count in
  fire_malloc dev p Space.Host_pinned (count * Typeart.Typedb.sizeof ty);
  p

let memcpy dev ~dst ~src ~bytes ?(async = false) ?stream () =
  let stream =
    match stream with Some s -> s | None -> Device.default_stream dev
  in
  let sspace = Ptr.space src and dspace = Ptr.space dst in
  let blocking =
    Semantics.actual_memcpy_blocks ~src:sspace ~dst:dspace ~async
  in
  let modeled_sync =
    Semantics.modeled_memcpy_syncs ~src:sspace ~dst:dspace ~async
  in
  let info =
    Device.Memcpy { dst; src; bytes; async; stream; blocking; modeled_sync }
  in
  Device.fire dev Device.Pre info;
  let op =
    Device.enqueue dev
      ~cost:(Costmodel.memcpy ~src:sspace ~dst:dspace ~bytes)
      stream
      (Fmt.str "memcpy%s" (if async then "Async" else ""))
      (fun () -> Access.raw_blit ~src ~dst ~bytes)
  in
  if blocking then Device.force op;
  Device.fire dev Device.Post info

let memset dev ~dst ~bytes ~value ?(async = false) ?stream () =
  let stream =
    match stream with Some s -> s | None -> Device.default_stream dev
  in
  let dspace = Ptr.space dst in
  let blocking = Semantics.actual_memset_blocks ~dst:dspace ~async in
  let modeled_sync = Semantics.modeled_memset_syncs ~dst:dspace ~async in
  let info =
    Device.Memset { dst; bytes; value; async; stream; blocking; modeled_sync }
  in
  Device.fire dev Device.Pre info;
  let op =
    Device.enqueue dev ~cost:(Costmodel.memset ~bytes) stream
      (Fmt.str "memset%s" (if async then "Async" else ""))
      (fun () -> Access.raw_fill dst ~bytes ~byte:value)
  in
  if blocking then Device.force op;
  Device.fire dev Device.Post info

(* cudaFree synchronizes the whole device before releasing (paper,
   Section III-B2); cudaFreeAsync releases as a stream operation. *)
let free dev p =
  Device.fire dev Device.Pre (Device.Free { ptr = p; async = false; stream = None });
  Device.force_all_of dev;
  Typeart.Pass.free p;
  Device.fire dev Device.Post (Device.Free { ptr = p; async = false; stream = None })

let free_async dev stream p =
  Device.fire dev Device.Pre
    (Device.Free { ptr = p; async = true; stream = Some stream });
  ignore
    (Device.enqueue dev stream "freeAsync" (fun () -> Typeart.Pass.free p));
  Device.fire dev Device.Post
    (Device.Free { ptr = p; async = true; stream = Some stream })
