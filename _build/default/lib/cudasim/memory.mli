(** The CUDA memory-management API of the simulator.

    Allocation sites go through TypeART's instrumented allocator
    (Section IV-C of the paper), so the runtime can later answer extent
    queries for device pointers. Copy/set operations are enqueued as
    device operations with host-synchronicity decided by {!Semantics};
    all of them notify tool hooks like intercepted CUDA API calls. *)

(** {1 Allocation} *)

val cuda_malloc :
  ?tag:string -> Device.t -> ty:Typeart.Typedb.ty -> count:int -> Memsim.Ptr.t
(** Device memory ([cudaMalloc]). *)

val cuda_malloc_managed :
  ?tag:string -> Device.t -> ty:Typeart.Typedb.ty -> count:int -> Memsim.Ptr.t
(** Managed memory ([cudaMallocManaged]): host- and device-accessible,
    but operations on it still require explicit synchronization. *)

val cuda_host_alloc :
  ?tag:string -> Device.t -> ty:Typeart.Typedb.ty -> count:int -> Memsim.Ptr.t
(** Pinned (page-locked) host memory ([cudaHostAlloc]). *)

val host_malloc :
  ?tag:string -> ty:Typeart.Typedb.ty -> count:int -> unit -> Memsim.Ptr.t
(** Plain pageable host memory ([malloc]); still tracked by TypeART. *)

(** Variants without the device hook notification (used internally). *)

val malloc :
  ?tag:string -> Device.t -> ty:Typeart.Typedb.ty -> count:int -> Memsim.Ptr.t

val malloc_managed :
  ?tag:string -> Device.t -> ty:Typeart.Typedb.ty -> count:int -> Memsim.Ptr.t

val host_alloc :
  ?tag:string -> Device.t -> ty:Typeart.Typedb.ty -> count:int -> Memsim.Ptr.t

(** {1 Transfers} *)

val memcpy :
  Device.t ->
  dst:Memsim.Ptr.t ->
  src:Memsim.Ptr.t ->
  bytes:int ->
  ?async:bool ->
  ?stream:Device.stream ->
  unit ->
  unit
(** [cudaMemcpy] / [cudaMemcpyAsync]. Runs on the default stream unless
    [stream] is given; blocks the host per {!Semantics}. *)

val memset :
  Device.t ->
  dst:Memsim.Ptr.t ->
  bytes:int ->
  value:int ->
  ?async:bool ->
  ?stream:Device.stream ->
  unit ->
  unit

(** {1 Release} *)

val free : Device.t -> Memsim.Ptr.t -> unit
(** [cudaFree]: synchronizes the whole device before releasing (paper,
    Section III-B2). *)

val free_async : Device.t -> Device.stream -> Memsim.Ptr.t -> unit
(** [cudaFreeAsync]: releases as a stream-ordered operation. *)
