(* The synchronization semantics matrix of CUDA memory operations
   (paper, Sections III-B2 and III-C, per the CUDA 11.5 documentation).

   Two views exist on purpose:
   - [actual_*]: what the simulated device really does (does the API
     call block the host until the operation completed?).
   - [modeled_*]: what CuSan assumes for race detection. Where the
     documentation says an operation "may be synchronous", CuSan is
     pessimistic and assumes it is NOT synchronizing, so latent races
     are still reported even when the current hardware happens to
     serialize them. *)

open Memsim

let is_host = function
  | Space.Host_pageable | Space.Host_pinned -> true
  | Space.Device | Space.Managed -> false

(* cudaMemcpy / cudaMemcpyAsync: does the call block the host? *)
let actual_memcpy_blocks ~src ~dst ~async =
  if async then
    (* Async transfers involving pageable host memory are staged through
       an internal pinned buffer and effectively synchronous on real
       hardware — a classic hidden behaviour. *)
    src = Space.Host_pageable || dst = Space.Host_pageable
  else
    (* Synchronous variant: blocking, except device-to-device copies
       which are asynchronous with respect to the host. *)
    not (Space.is_device_memory src && Space.is_device_memory dst)

(* What CuSan's model assumes: only the non-async variant with host
   memory involved is a synchronization point; everything documented
   "may be synchronous" is treated as not synchronizing. *)
let modeled_memcpy_syncs ~src ~dst ~async =
  (not async)
  && not (Space.is_device_memory src && Space.is_device_memory dst)

(* cudaMemset(Async): generally asynchronous w.r.t. the host; the
   exception is a pinned-host destination for the synchronous variant. *)
let actual_memset_blocks ~dst ~async = (not async) && dst = Space.Host_pinned
let modeled_memset_syncs ~dst ~async = (not async) && dst = Space.Host_pinned

(* cudaFree synchronizes the whole device; cudaFreeAsync does not. *)
let free_syncs_device ~async = not async
