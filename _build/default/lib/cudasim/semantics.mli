(** The synchronization-semantics matrix of CUDA memory operations
    (paper, Sections III-B2 and III-C, per the CUDA 11.5 docs).

    Two views exist on purpose:
    - [actual_*]: what the simulated device really does — does the API
      call block the host until the operation completed?
    - [modeled_*]: what CuSan assumes for race detection. Where the
      documentation says "may be synchronous", CuSan is pessimistic and
      assumes it is {e not} synchronizing, so latent races are reported
      even when current hardware happens to serialize them. *)

val is_host : Memsim.Space.t -> bool

val actual_memcpy_blocks :
  src:Memsim.Space.t -> dst:Memsim.Space.t -> async:bool -> bool
(** The synchronous variant blocks except for device-to-device copies;
    the async variant blocks when pageable host memory is involved (it
    stages through an internal pinned buffer — a classic hidden
    behaviour). *)

val modeled_memcpy_syncs :
  src:Memsim.Space.t -> dst:Memsim.Space.t -> async:bool -> bool
(** Only the non-async variant with host memory involved counts as a
    synchronization point in the race-detection model. *)

val actual_memset_blocks : dst:Memsim.Space.t -> async:bool -> bool
(** [cudaMemset] is asynchronous w.r.t. the host except on a pinned-host
    destination (non-async variant only). *)

val modeled_memset_syncs : dst:Memsim.Space.t -> async:bool -> bool

val free_syncs_device : async:bool -> bool
(** [cudaFree] synchronizes the whole device; [cudaFreeAsync] does not. *)
