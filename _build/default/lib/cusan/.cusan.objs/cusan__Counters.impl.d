lib/cusan/counters.ml: Fmt
