lib/cusan/counters.mli: Format
