lib/cusan/interval.ml: Fmt List
