lib/cusan/interval.mli: Format
