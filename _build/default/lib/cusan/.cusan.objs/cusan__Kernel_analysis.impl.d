lib/cusan/kernel_analysis.ml: Array Cudasim Hashtbl Int Kir List Option Set
