lib/cusan/kernel_analysis.mli: Cudasim Hashtbl Kir
