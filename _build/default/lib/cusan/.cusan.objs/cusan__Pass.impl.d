lib/cusan/pass.ml: Array Cudasim Kernel_analysis Kir List Option
