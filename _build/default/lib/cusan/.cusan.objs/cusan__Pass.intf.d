lib/cusan/pass.mli: Cudasim
