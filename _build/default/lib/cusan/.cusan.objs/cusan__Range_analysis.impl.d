lib/cusan/range_analysis.ml: Array Hashtbl Interval Kir List
