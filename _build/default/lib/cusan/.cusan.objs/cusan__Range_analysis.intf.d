lib/cusan/range_analysis.mli: Interval Kir
