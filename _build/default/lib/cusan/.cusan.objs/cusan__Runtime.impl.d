lib/cusan/runtime.ml: Array Counters Cudasim Fmt Hashtbl Interval Kir List Memsim Range_analysis Tsan Typeart
