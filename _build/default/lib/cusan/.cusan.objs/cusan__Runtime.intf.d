lib/cusan/runtime.mli: Counters Cudasim Tsan
