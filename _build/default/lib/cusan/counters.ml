(* CUDA-side event counters reported by CuSan, matching the "CUDA" rows
   of Table I in the paper. *)

type t = {
  mutable streams : int; (* tracked streams, incl. the default stream *)
  mutable memsets : int;
  mutable memcpys : int;
  mutable syncs : int; (* explicit synchronization calls *)
  mutable kernels : int;
  mutable unanalyzed_kernels : int; (* launched without access attributes *)
}

let create () =
  {
    streams = 0;
    memsets = 0;
    memcpys = 0;
    syncs = 0;
    kernels = 0;
    unanalyzed_kernels = 0;
  }

let add ~into c =
  into.streams <- into.streams + c.streams;
  into.memsets <- into.memsets + c.memsets;
  into.memcpys <- into.memcpys + c.memcpys;
  into.syncs <- into.syncs + c.syncs;
  into.kernels <- into.kernels + c.kernels;
  into.unanalyzed_kernels <- into.unanalyzed_kernels + c.unanalyzed_kernels

let pp ppf t =
  Fmt.pf ppf
    "@[<v>Stream                 %8d@,Memset                 %8d@,Memcpy                 %8d@,Synchronization calls  %8d@,Kernel calls           %8d@]"
    t.streams t.memsets t.memcpys t.syncs t.kernels
