(** CUDA-side event counters reported by CuSan, matching the "CUDA" rows
    of Table I in the paper. *)

type t = {
  mutable streams : int;  (** tracked streams, incl. the default stream *)
  mutable memsets : int;
  mutable memcpys : int;
  mutable syncs : int;  (** explicit synchronization calls *)
  mutable kernels : int;
  mutable unanalyzed_kernels : int;
      (** kernels launched without access attributes (no device IR):
          handled conservatively *)
}

val create : unit -> t

val add : into:t -> t -> unit
(** Accumulate [t] into [into] (aggregating ranks). *)

val pp : Format.formatter -> t -> unit
(** Table I layout. *)
