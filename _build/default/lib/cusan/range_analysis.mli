(** Launch-time access-range analysis — a sound implementation of the
    optimization the paper proposes as future work (Section VI-D):
    instead of annotating the whole allocation behind every device
    pointer, derive the byte range each kernel argument can actually
    touch and annotate only that.

    The analysis runs at kernel-launch interception, when scalar
    arguments and the grid size are concrete: it abstractly interprets
    the kernel body over integer intervals with [tid ∈ [0, grid-1]].
    Loops run to a widened fixpoint, conditional branches are joined,
    nested device functions are evaluated with their argument intervals.
    Anything it cannot bound (data-dependent indices loaded from memory,
    aliased pointer locals) marks the argument {e imprecise}: the caller
    must fall back to the whole allocation — never less, so the result
    over-approximates every execution (property-tested against the IR
    interpreter).

    Cost: one walk of the (tiny) kernel body per launch — O(|body|),
    not O(domain size). *)

type access = { mutable read : Interval.t option; mutable written : Interval.t option }
(** Byte ranges relative to the argument pointer; [None] = untouched. *)

type summary = {
  per_param : access array;  (** indexed by argument position *)
  mutable imprecise : bool array;
      (** arguments whose accesses could not be bounded *)
}

val analyze_launch :
  Kir.Ir.modul ->
  entry:string ->
  args:Kir.Interp.value array ->
  grid:int ->
  summary option
(** [None] when the entry function does not exist. *)
