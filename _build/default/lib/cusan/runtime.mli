(** The CuSan runtime (paper, Section IV-A): maps intercepted CUDA API
    calls onto ThreadSanitizer's concurrency model.

    Per device context it keeps (i) a fiber per CUDA stream, (ii) the
    event-to-synchronization-key mapping, (iii) the memory-kind view
    via UVA/TypeART, and (iv) the issuing host fiber — the four tables
    named in the paper.

    The annotation recipe for a device operation on stream S:
    + switch to S's fiber, carrying a happens-before edge from the host
      (the operation is issued after preceding host work);
    + legacy default-stream barriers: a default-stream op acquires the
      completion key of every blocking user stream; a blocking user
      stream's op acquires the default stream's key (Fig. 3);
    + mark each accessed memory range read/write, with the extent from
      TypeART (whole-allocation annotation, as in the paper);
    + release the stream's completion key (and, for default-stream
      operations, every blocking user stream's key too);
    + switch back to the issuing fiber; host-synchronous operations then
      acquire the stream's completion key.

    Host-side synchronization calls acquire completion keys:
    [cudaStreamSynchronize] the stream's, [cudaDeviceSynchronize] every
    tracked stream's, [cudaEventSynchronize] the event's, a successful
    [cudaStreamQuery] the stream's. *)

type t

(** How kernel-argument memory is annotated:
    - [Whole]: the paper's approach — the whole allocation extent behind
      every accessed device pointer.
    - [Precise]: the sound launch-time access-range analysis implemented
      in {!Range_analysis} (the Section VI-D optimization): only the
      byte range the kernel can actually touch, falling back to the
      whole extent when an index cannot be bounded. Besides the cost
      reduction, this removes false positives for kernels working on
      disjoint slices of one allocation from different streams. *)
type annotation_mode = Whole | Precise

val attach :
  ?annotation:annotation_mode ->
  ?max_range_bytes:int ->
  tsan:Tsan.Detector.t ->
  dev:Cudasim.Device.t ->
  unit ->
  t
(** Hook the runtime into a device. The default stream is tracked
    eagerly (paper, Section IV-A); user streams on demand.

    [max_range_bytes] is experimental (paper, Section VI-D): cap the
    annotated range per kernel argument instead of tracking whole
    allocations — the proposed boundary-region optimization. Unlike
    [Precise] it is unsound: it may miss races outside the cap. *)

val counters : t -> Counters.t
(** The CUDA event counters of Table I for this device/rank. *)

val stream_key : int -> int
(** Synchronization key for a stream's completion clock (exposed for
    tests; disjoint from MUST's request keys). *)

val event_key : int -> int
