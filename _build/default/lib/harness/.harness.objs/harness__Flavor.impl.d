lib/harness/flavor.ml: Fmt
