lib/harness/flavor.mli: Format
