lib/harness/run.ml: Array Cudasim Cusan Flavor Fmt Fun Hashtbl List Memsim Mpisim Must Option Sched Tsan Typeart Unix
