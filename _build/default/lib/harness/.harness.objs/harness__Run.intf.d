lib/harness/run.mli: Cudasim Cusan Flavor Mpisim Must Tsan
