(* Tool configurations, matching the paper's evaluation legend
   (Fig. 10/11): vanilla, TSan, MUST, CuSan, MUST & CuSan. CuSan and
   MUST always run with TSan enabled; only CuSan uses TypeART — exactly
   the setup of Section V. *)

type t = Vanilla | Tsan | Must | Cusan | Must_cusan

let all = [ Vanilla; Tsan; Must; Cusan; Must_cusan ]

let name = function
  | Vanilla -> "vanilla"
  | Tsan -> "TSan"
  | Must -> "MUST"
  | Cusan -> "CuSan"
  | Must_cusan -> "MUST & CuSan"

let of_string = function
  | "vanilla" -> Some Vanilla
  | "tsan" | "TSan" -> Some Tsan
  | "must" | "MUST" -> Some Must
  | "cusan" | "CuSan" -> Some Cusan
  | "must-cusan" | "must_cusan" | "MUST & CuSan" -> Some Must_cusan
  | _ -> None

let uses_tsan = function Vanilla -> false | _ -> true
let uses_must = function Must | Must_cusan -> true | _ -> false
let uses_cusan = function Cusan | Must_cusan -> true | _ -> false

(* Only CuSan needs TypeART (device-pointer allocation sizes). *)
let uses_typeart = uses_cusan

let pp = Fmt.of_to_string name
