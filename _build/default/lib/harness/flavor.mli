(** Tool configurations, matching the paper's evaluation legend
    (Fig. 10/11): vanilla, TSan, MUST, CuSan, MUST & CuSan. CuSan and
    MUST always run with TSan enabled; only CuSan uses TypeART — exactly
    the setup of Section V. *)

type t = Vanilla | Tsan | Must | Cusan | Must_cusan

val all : t list
val name : t -> string

val of_string : string -> t option
(** Accepts both display names ("MUST & CuSan") and CLI spellings
    ("must-cusan"). *)

val uses_tsan : t -> bool
val uses_must : t -> bool
val uses_cusan : t -> bool
val uses_typeart : t -> bool
val pp : Format.formatter -> t -> unit
