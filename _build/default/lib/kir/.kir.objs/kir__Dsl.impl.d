lib/kir/dsl.ml: Ir
