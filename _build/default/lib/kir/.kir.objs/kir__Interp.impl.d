lib/kir/interp.ml: Array Fmt Hashtbl Ir List Memsim
