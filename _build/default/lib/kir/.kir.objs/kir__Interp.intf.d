lib/kir/interp.mli: Format Ir Memsim
