lib/kir/ir.ml: Fmt List
