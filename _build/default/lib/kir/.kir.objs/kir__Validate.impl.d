lib/kir/validate.ml: Array Fmt Hashtbl Ir List
