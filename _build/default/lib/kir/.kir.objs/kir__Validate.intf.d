lib/kir/validate.mli: Ir
