(* Static well-formedness checks on a KIR module: name resolution,
   arity, and pointer/scalar typing. Run before analysis or execution,
   like the IR verifier in a real compiler. *)

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

type env = { params : Ir.ty array; locals : (string, Ir.ty) Hashtbl.t }

let rec type_of env (e : Ir.expr) : Ir.ty =
  match e with
  | Int _ | Flt _ | Tid | Ntid -> Scalar
  | Param i ->
      if i < 0 || i >= Array.length env.params then fail "param %d out of range" i
      else env.params.(i)
  | Local n -> (
      match Hashtbl.find_opt env.locals n with
      | Some t -> t
      | None -> fail "unbound local %%%s" n)
  | Load (p, i) | Loadi (p, i) ->
      if type_of env p <> Pointer then fail "load from non-pointer";
      if type_of env i <> Scalar then fail "non-scalar index";
      Scalar
  | Binop (_, a, b) ->
      if type_of env a <> Scalar || type_of env b <> Scalar then
        fail "binop on pointer";
      Scalar
  | Neg a | I2f a | F2i a ->
      if type_of env a <> Scalar then fail "unop on pointer";
      Scalar
  | Ptradd (p, i) ->
      if type_of env p <> Pointer then fail "ptradd on non-pointer";
      if type_of env i <> Scalar then fail "non-scalar ptradd offset";
      Pointer

let rec check_stmt (m : Ir.modul) env (s : Ir.stmt) =
  match s with
  | Store (p, i, v) | Storei (p, i, v) ->
      if type_of env p <> Pointer then fail "store to non-pointer";
      if type_of env i <> Scalar then fail "non-scalar index";
      if type_of env v <> Scalar then fail "storing a pointer";
      ()
  | Let (n, e) -> Hashtbl.replace env.locals n (type_of env e)
  | If (c, t, e) ->
      if type_of env c <> Scalar then fail "pointer condition";
      List.iter (check_stmt m env) t;
      List.iter (check_stmt m env) e
  | For (v, lo, hi, body) ->
      if type_of env lo <> Scalar || type_of env hi <> Scalar then
        fail "pointer loop bound";
      Hashtbl.replace env.locals v Scalar;
      List.iter (check_stmt m env) body
  | Call (name, args) -> (
      match Ir.find_func m name with
      | None -> fail "call to undefined function %s" name
      | Some callee ->
          if List.length args <> List.length callee.Ir.params then
            fail "arity mismatch calling %s" name;
          List.iter2
            (fun arg (pname, pty) ->
              if type_of env arg <> pty then
                fail "argument %s of %s: type mismatch" pname name)
            args callee.Ir.params)

let check_func m (f : Ir.func) =
  let env =
    {
      params = Array.of_list (List.map snd f.Ir.params);
      locals = Hashtbl.create 8;
    }
  in
  List.iter (check_stmt m env) f.Ir.body

let check_module (m : Ir.modul) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) ->
      if Hashtbl.mem seen f.Ir.fname then
        fail "duplicate function %s" f.Ir.fname;
      Hashtbl.replace seen f.Ir.fname ())
    m.Ir.funcs;
  List.iter
    (fun k ->
      if Ir.find_func m k = None then fail "kernel %s not defined" k)
    m.Ir.kernels;
  List.iter (check_func m) m.Ir.funcs
