(** Static well-formedness checks on a KIR module: name resolution,
    call arity, and pointer/scalar typing — the IR verifier run before
    analysis or execution. *)

exception Invalid of string

val check_func : Ir.modul -> Ir.func -> unit

val check_module : Ir.modul -> unit
(** @raise Invalid on unbound locals, out-of-range parameters, arity or
    type mismatches at calls, duplicate functions, or kernel entries
    that are not defined. *)
