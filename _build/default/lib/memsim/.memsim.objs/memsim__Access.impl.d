lib/memsim/access.ml: Alloc Bytes Char Fmt Hooks Int32 Int64 Ptr Space
