lib/memsim/access.mli: Ptr
