lib/memsim/alloc.ml: Bytes Fmt Space
