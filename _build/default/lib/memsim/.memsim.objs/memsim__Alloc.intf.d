lib/memsim/alloc.mli: Bytes Format Space
