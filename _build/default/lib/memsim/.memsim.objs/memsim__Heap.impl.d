lib/memsim/heap.ml: Alloc Bytes Hashtbl Hooks Ptr
