lib/memsim/heap.mli: Alloc Ptr Space
