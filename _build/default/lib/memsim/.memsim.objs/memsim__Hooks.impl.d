lib/memsim/hooks.ml: Alloc List Ptr
