lib/memsim/hooks.mli: Alloc Ptr
