lib/memsim/ptr.ml: Alloc Fmt
