lib/memsim/ptr.mli: Alloc Format Space
