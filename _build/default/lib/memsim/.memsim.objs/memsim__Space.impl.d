lib/memsim/space.ml: Fmt
