lib/memsim/space.mli: Format
