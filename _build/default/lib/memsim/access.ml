(* Typed memory accessors.

   The [get_*]/[set_*] family models *instrumented host code*: each call
   fires the read/write hooks that a sanitizer compiler pass would have
   inserted, and enforces that host code only dereferences
   host-accessible memory (dereferencing a device pointer on the host is
   the simulated segfault). The [raw_*] family models accesses the
   sanitizer cannot see: device-side code and DMA transfers, which is
   exactly why CuSan/MUST must annotate them (paper, Section II-B). *)

exception Host_access_to_device of string

let check_host (p : Ptr.t) bytes =
  Ptr.check p bytes;
  if not (Space.host_accessible (Ptr.space p)) then
    raise (Host_access_to_device (Fmt.str "%a" Ptr.pp p))

let f64_size = 8
let f32_size = 4
let i32_size = 4
let i64_size = 8

(* --- raw accessors: no hooks, no host/device policing ------------- *)

let raw_get_f64 (p : Ptr.t) i =
  Ptr.check p ((i + 1) * 8);
  Int64.float_of_bits (Bytes.get_int64_le p.Ptr.alloc.Alloc.data (p.Ptr.off + (i * 8)))

let raw_set_f64 (p : Ptr.t) i v =
  Ptr.check p ((i + 1) * 8);
  Bytes.set_int64_le p.Ptr.alloc.Alloc.data (p.Ptr.off + (i * 8)) (Int64.bits_of_float v)

let raw_get_i32 (p : Ptr.t) i =
  Ptr.check p ((i + 1) * 4);
  Int32.to_int (Bytes.get_int32_le p.Ptr.alloc.Alloc.data (p.Ptr.off + (i * 4)))

let raw_set_i32 (p : Ptr.t) i v =
  Ptr.check p ((i + 1) * 4);
  Bytes.set_int32_le p.Ptr.alloc.Alloc.data (p.Ptr.off + (i * 4)) (Int32.of_int v)

let raw_get_f32 (p : Ptr.t) i =
  Ptr.check p ((i + 1) * 4);
  Int32.float_of_bits (Bytes.get_int32_le p.Ptr.alloc.Alloc.data (p.Ptr.off + (i * 4)))

let raw_set_f32 (p : Ptr.t) i v =
  Ptr.check p ((i + 1) * 4);
  Bytes.set_int32_le p.Ptr.alloc.Alloc.data (p.Ptr.off + (i * 4)) (Int32.bits_of_float v)

(* --- instrumented host accessors ----------------------------------- *)

let get_f64 p i =
  check_host p ((i + 1) * 8);
  Hooks.fire_read (Ptr.add_bytes p (i * 8)) 8;
  raw_get_f64 p i

let set_f64 p i v =
  check_host p ((i + 1) * 8);
  Hooks.fire_write (Ptr.add_bytes p (i * 8)) 8;
  raw_set_f64 p i v

let get_i32 p i =
  check_host p ((i + 1) * 4);
  Hooks.fire_read (Ptr.add_bytes p (i * 4)) 4;
  raw_get_i32 p i

let set_i32 p i v =
  check_host p ((i + 1) * 4);
  Hooks.fire_write (Ptr.add_bytes p (i * 4)) 4;
  raw_set_i32 p i v

(* Bulk instrumented host reads/writes (e.g. initialising a managed
   buffer with a host loop): one hook covering the range, then raw ops.
   Mirrors how compilers vectorise instrumentation for plain loops. *)

let read_range p bytes =
  check_host p bytes;
  Hooks.fire_read p bytes

let write_range p bytes =
  check_host p bytes;
  Hooks.fire_write p bytes

(* --- invisible bulk operations (device / DMA) ---------------------- *)

let raw_blit ~(src : Ptr.t) ~(dst : Ptr.t) ~bytes =
  Ptr.check src bytes;
  Ptr.check dst bytes;
  Bytes.blit src.Ptr.alloc.Alloc.data src.Ptr.off dst.Ptr.alloc.Alloc.data
    dst.Ptr.off bytes

let raw_fill (p : Ptr.t) ~bytes ~byte =
  Ptr.check p bytes;
  Bytes.fill p.Ptr.alloc.Alloc.data p.Ptr.off bytes (Char.chr (byte land 0xff))
