(** Typed memory accessors.

    The [get_*]/[set_*] family models {e instrumented host code}: each
    call fires the read/write hooks a sanitizer pass would have inserted
    and enforces that host code only dereferences host-accessible memory
    (dereferencing a device pointer on the host is the simulated
    segfault).

    The [raw_*] family models accesses the sanitizer cannot see:
    device-side code and DMA transfers — exactly the visibility gap
    CuSan and MUST must close with annotations (paper, Section II-B). *)

exception Host_access_to_device of string

val f64_size : int
val f32_size : int
val i32_size : int
val i64_size : int

(** {1 Raw accessors} — no hooks, no host/device policing. Indices are
    in elements of the respective size. *)

val raw_get_f64 : Ptr.t -> int -> float
val raw_set_f64 : Ptr.t -> int -> float -> unit
val raw_get_f32 : Ptr.t -> int -> float
val raw_set_f32 : Ptr.t -> int -> float -> unit
val raw_get_i32 : Ptr.t -> int -> int
val raw_set_i32 : Ptr.t -> int -> int -> unit

val raw_blit : src:Ptr.t -> dst:Ptr.t -> bytes:int -> unit
(** Bulk copy, invisible to instrumentation (DMA). *)

val raw_fill : Ptr.t -> bytes:int -> byte:int -> unit

(** {1 Instrumented host accessors} *)

val get_f64 : Ptr.t -> int -> float
val set_f64 : Ptr.t -> int -> float -> unit
val get_i32 : Ptr.t -> int -> int
val set_i32 : Ptr.t -> int -> int -> unit

val read_range : Ptr.t -> int -> unit
(** Announce a bulk instrumented host read of [bytes] (one hook covering
    the range, like vectorized instrumentation of a plain loop). *)

val write_range : Ptr.t -> int -> unit
