(* A simulated allocation. Every allocation receives a disjoint virtual
   address range; the base encodes the allocation id so tools can map a
   raw address back to its allocation in O(1), mimicking how TSan and
   TypeART resolve interior pointers. *)

(* log2 of the maximum allocation size (64 GiB); bases are spaced by this. *)
let addr_shift = 36

type t = {
  id : int;
  space : Space.t;
  size : int; (* bytes *)
  data : Bytes.t;
  tag : string; (* provenance label for reports, e.g. "d_a" *)
  mutable freed : bool;
}

let base t = (t.id + 1) lsl addr_shift
let limit t = base t + t.size
let id_of_addr addr = (addr lsr addr_shift) - 1

exception Use_after_free of string

let check_live t =
  if t.freed then raise (Use_after_free t.tag)

let pp ppf t =
  Fmt.pf ppf "%s#%d[%a,%dB@0x%x]" t.tag t.id Space.pp t.space t.size (base t)
