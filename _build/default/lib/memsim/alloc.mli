(** A simulated allocation.

    Every allocation receives a disjoint virtual address range whose
    base encodes the allocation id, so tools can resolve a raw address
    back to its allocation in O(1) — how TSan and TypeART handle
    interior pointers. *)

val addr_shift : int
(** log2 of the spacing between allocation bases (one allocation per
    [2^addr_shift] slot). *)

type t = {
  id : int;
  space : Space.t;
  size : int;  (** bytes *)
  data : Bytes.t;  (** backing store *)
  tag : string;  (** provenance label for reports, e.g. ["d_a"] *)
  mutable freed : bool;
}

exception Use_after_free of string

val base : t -> int
(** First address of the allocation. *)

val limit : t -> int
(** One past the last address. *)

val id_of_addr : int -> int
(** The allocation id encoded in an address. *)

val check_live : t -> unit
(** @raise Use_after_free when the allocation was freed. *)

val pp : Format.formatter -> t -> unit
