(* Allocation registry for the simulated address space. *)

let next_id = ref 0
let live : (int, Alloc.t) Hashtbl.t = Hashtbl.create 64
let bytes_live = ref 0
let bytes_peak = ref 0

let alloc ?(tag = "alloc") space size =
  if size < 0 then invalid_arg "Heap.alloc: negative size";
  let id = !next_id in
  incr next_id;
  let a =
    { Alloc.id; space; size; data = Bytes.make size '\000'; tag; freed = false }
  in
  Hashtbl.replace live id a;
  bytes_live := !bytes_live + size;
  if !bytes_live > !bytes_peak then bytes_peak := !bytes_live;
  Hooks.fire_alloc a;
  Ptr.make a

let free (p : Ptr.t) =
  let a = p.Ptr.alloc in
  Alloc.check_live a;
  if p.Ptr.off <> 0 then invalid_arg "Heap.free: interior pointer";
  Hooks.fire_free a;
  a.Alloc.freed <- true;
  bytes_live := !bytes_live - a.Alloc.size;
  Hashtbl.remove live a.Alloc.id

let find_by_addr addr =
  match Hashtbl.find_opt live (Alloc.id_of_addr addr) with
  | Some a when addr >= Alloc.base a && addr < Alloc.limit a -> Some a
  | _ -> None

let live_bytes () = !bytes_live
let peak_bytes () = !bytes_peak
let live_count () = Hashtbl.length live

(* Reset the whole simulated heap; used between independent test runs. *)
let reset () =
  Hashtbl.reset live;
  next_id := 0;
  bytes_live := 0;
  bytes_peak := 0
