(** The allocation registry of the simulated address space. *)

val alloc : ?tag:string -> Space.t -> int -> Ptr.t
(** [alloc space bytes] creates a zero-initialized allocation and fires
    the allocation hooks. *)

val free : Ptr.t -> unit
(** Frees the allocation (must be the base pointer) and fires the free
    hooks.
    @raise Alloc.Use_after_free on double free
    @raise Invalid_argument on an interior pointer *)

val find_by_addr : int -> Alloc.t option
(** Resolve an address to its live allocation, if any. *)

val live_bytes : unit -> int
val peak_bytes : unit -> int
(** High-water mark of live bytes — the RSS analogue. *)

val live_count : unit -> int

val reset : unit -> unit
(** Drop the whole simulated heap; used between independent runs. *)
