(* Instrumentation hook registry — the seam where correctness tools
   attach. Registering hooks is the simulator's analogue of compiling
   the application with a sanitizer pass: allocation events feed TSan's
   allocator interception and TypeART's tracking; read/write events are
   the loads/stores TSan's compiler pass would instrument in host code. *)

type t = {
  on_alloc : Alloc.t -> unit;
  on_free : Alloc.t -> unit;
  on_read : Ptr.t -> int -> unit; (* host load of [bytes] *)
  on_write : Ptr.t -> int -> unit; (* host store of [bytes] *)
}

let nil =
  {
    on_alloc = ignore;
    on_free = ignore;
    on_read = (fun _ _ -> ());
    on_write = (fun _ _ -> ());
  }

let registered : t list ref = ref []

(* Fast path flag: vanilla runs must not pay for instrumentation. *)
let any = ref false

let add h =
  registered := h :: !registered;
  any := true

let clear () =
  registered := [];
  any := false

let fire_alloc a = if !any then List.iter (fun h -> h.on_alloc a) !registered
let fire_free a = if !any then List.iter (fun h -> h.on_free a) !registered

let fire_read p n =
  if !any then List.iter (fun h -> h.on_read p n) !registered

let fire_write p n =
  if !any then List.iter (fun h -> h.on_write p n) !registered
