(* A pointer: an allocation plus a byte offset. The numeric address is
   what flows to the race detector and to TypeART, like a raw void* in
   the original system. *)

type t = { alloc : Alloc.t; off : int }

exception Out_of_bounds of string

let make alloc = { alloc; off = 0 }

let addr t = Alloc.base t.alloc + t.off

let space t = t.alloc.Alloc.space

let remaining t = t.alloc.Alloc.size - t.off

let check t bytes =
  Alloc.check_live t.alloc;
  if t.off < 0 || t.off + bytes > t.alloc.Alloc.size then
    raise
      (Out_of_bounds
         (Fmt.str "%a + %d..%d" Alloc.pp t.alloc t.off (t.off + bytes)))

let add_bytes t b = { t with off = t.off + b }

(* Pointer arithmetic in elements of [elt] bytes. *)
let add t ~elt n = add_bytes t (elt * n)

let pp ppf t = Fmt.pf ppf "%a+%d" Alloc.pp t.alloc t.off

let equal a b = a.alloc.Alloc.id = b.alloc.Alloc.id && a.off = b.off
