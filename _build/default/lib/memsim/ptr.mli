(** Pointers: an allocation plus a byte offset. The numeric address is
    what flows to the race detector and TypeART, like a raw [void*]. *)

type t = { alloc : Alloc.t; off : int }

exception Out_of_bounds of string

val make : Alloc.t -> t
(** Pointer to the start of an allocation. *)

val addr : t -> int
(** The simulated virtual address. *)

val space : t -> Space.t
val remaining : t -> int

val check : t -> int -> unit
(** [check p bytes] validates liveness and that [bytes] fit from the
    pointer's offset.
    @raise Alloc.Use_after_free
    @raise Out_of_bounds *)

val add_bytes : t -> int -> t

val add : t -> elt:int -> int -> t
(** Pointer arithmetic in elements of [elt] bytes. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
