(* Memory spaces of the simulated unified virtual address space.

   CUDA-aware MPI libraries rely on UVA to tell host from device
   pointers; the allocation kind also decides implicit synchronization
   behaviour of CUDA memory operations (paper, Section III-C). *)

type t =
  | Host_pageable  (* malloc *)
  | Host_pinned    (* cudaHostAlloc: page-locked host memory *)
  | Device         (* cudaMalloc *)
  | Managed        (* cudaMallocManaged: migrated on demand *)

let to_string = function
  | Host_pageable -> "host-pageable"
  | Host_pinned -> "host-pinned"
  | Device -> "device"
  | Managed -> "managed"

let pp = Fmt.of_to_string to_string

(* Can host code dereference such a pointer directly? *)
let host_accessible = function
  | Host_pageable | Host_pinned | Managed -> true
  | Device -> false

(* Can device code (kernels) dereference such a pointer? Pinned memory
   is only device-accessible when mapped; we model the common case where
   kernels work on device or managed memory. *)
let device_accessible = function
  | Device | Managed -> true
  | Host_pageable | Host_pinned -> false

(* UVA pointer attribute as reported by cuPointerGetAttribute: is the
   memory physically reachable by the device (CUDA-aware MPI uses this
   to select the transfer path)? *)
let is_device_memory = function
  | Device | Managed -> true
  | Host_pageable | Host_pinned -> false
