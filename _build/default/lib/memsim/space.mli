(** Memory spaces of the simulated unified virtual address space (UVA).

    CUDA-aware MPI libraries rely on UVA to tell host from device
    pointers; the allocation kind also decides the implicit
    synchronization behaviour of CUDA memory operations (paper,
    Section III-C). *)

type t =
  | Host_pageable  (** plain [malloc] *)
  | Host_pinned  (** [cudaHostAlloc]: page-locked host memory *)
  | Device  (** [cudaMalloc] *)
  | Managed  (** [cudaMallocManaged]: migrated on demand *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val host_accessible : t -> bool
(** Can host code dereference such a pointer directly? *)

val device_accessible : t -> bool
(** Can device code (kernels) dereference such a pointer? *)

val is_device_memory : t -> bool
(** The UVA pointer attribute CUDA-aware MPI queries via
    [cuPointerGetAttribute] to pick the transfer path. *)
