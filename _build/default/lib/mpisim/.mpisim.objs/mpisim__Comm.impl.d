lib/mpisim/comm.ml: Array Bytes Fmt Hashtbl List Memsim Request Sched
