lib/mpisim/comm.mli: Bytes Hashtbl Memsim Request Sched
