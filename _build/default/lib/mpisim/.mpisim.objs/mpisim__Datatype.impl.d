lib/mpisim/datatype.ml: Fmt Typeart
