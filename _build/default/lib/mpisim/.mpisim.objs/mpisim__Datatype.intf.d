lib/mpisim/datatype.mli: Format Typeart
