lib/mpisim/hooks.ml: Datatype List Memsim Request Win
