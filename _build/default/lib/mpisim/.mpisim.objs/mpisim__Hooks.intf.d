lib/mpisim/hooks.mli: Datatype Memsim Request Win
