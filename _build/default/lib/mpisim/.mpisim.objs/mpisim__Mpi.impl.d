lib/mpisim/mpi.ml: Access Alloc Array Bytes Comm Datatype Float Fmt Hooks List Memsim Option Ptr Request Sched Typeart Win
