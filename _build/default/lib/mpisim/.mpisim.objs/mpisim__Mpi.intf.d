lib/mpisim/mpi.mli: Comm Datatype Memsim Request Win
