lib/mpisim/request.ml: Datatype Fmt Memsim
