lib/mpisim/request.mli: Datatype Format Memsim
