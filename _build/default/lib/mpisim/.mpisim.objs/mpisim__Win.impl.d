lib/mpisim/win.ml: Array Fmt Memsim
