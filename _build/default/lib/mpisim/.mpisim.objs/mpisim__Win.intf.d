lib/mpisim/win.mli: Format Memsim
