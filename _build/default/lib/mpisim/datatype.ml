(* MPI datatypes. Each carries the element layout TypeART compares
   against the allocation's recorded type during MUST's datatype check. *)

type t = { name : string; elem : Typeart.Typedb.ty; size : int }

let make name elem = { name; elem; size = Typeart.Typedb.sizeof elem }

let double = make "MPI_DOUBLE" Typeart.Typedb.F64
let float_ = make "MPI_FLOAT" Typeart.Typedb.F32
let int_ = make "MPI_INT" Typeart.Typedb.I32
let int64 = make "MPI_INT64_T" Typeart.Typedb.I64
let byte = make "MPI_BYTE" Typeart.Typedb.I8

(* A derived contiguous datatype of [n] base elements, as created by
   MPI_Type_contiguous. *)
let contiguous n base =
  {
    name = Fmt.str "contiguous(%d,%s)" n base.name;
    elem = base.elem;
    size = n * base.size;
  }

let pp ppf t = Fmt.string ppf t.name
