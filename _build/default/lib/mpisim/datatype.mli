(** MPI datatypes. Each carries the element layout TypeART compares
    against the allocation's recorded type during MUST's datatype
    check. *)

type t = {
  name : string;
  elem : Typeart.Typedb.ty;  (** element layout *)
  size : int;  (** bytes per element (or per derived block) *)
}

val make : string -> Typeart.Typedb.ty -> t

val double : t  (** MPI_DOUBLE *)

val float_ : t  (** MPI_FLOAT *)

val int_ : t  (** MPI_INT *)

val int64 : t  (** MPI_INT64_T *)

val byte : t  (** MPI_BYTE *)

val contiguous : int -> t -> t
(** [contiguous n base]: a derived datatype of [n] base elements, as
    created by [MPI_Type_contiguous]. *)

val pp : Format.formatter -> t -> unit
