(* The user-facing MPI API of the simulator. Ranks run as deterministic
   green threads; buffers are pointers into the simulated UVA address
   space, so device pointers are legal arguments everywhere — this is a
   CUDA-aware MPI (paper, Section III-D). Message payloads move as raw
   bytes (simulated RDMA), invisible to instrumented loads/stores. *)

module H = Hooks
open Memsim

type ctx = { rank : int; size : int; comm : Comm.t }

let any_source = Comm.any_source
let any_tag = Comm.any_tag

exception Abort of string

(* --- run --------------------------------------------------------------- *)

let run ~nranks f =
  if nranks <= 0 then invalid_arg "Mpi.run: nranks";
  let comm = Comm.create nranks in
  Sched.Scheduler.run
    (List.init nranks (fun rank ->
         ( Fmt.str "rank%d" rank,
           fun () ->
             let ctx = { rank; size = nranks; comm } in
             H.fire ~rank H.Pre H.Init;
             H.fire ~rank H.Post H.Init;
             f ctx;
             H.fire ~rank H.Pre H.Finalize;
             ignore
               (Comm.collective comm rank
                  ~contribute:(fun _ -> ())
                  ~extract:(fun _ -> ()));
             H.fire ~rank H.Post H.Finalize )))

(* --- point-to-point ----------------------------------------------------- *)

let snapshot (buf : Ptr.t) bytes =
  Ptr.check buf bytes;
  Bytes.sub buf.Ptr.alloc.Alloc.data buf.Ptr.off bytes

let send ctx ~buf ~count ~dt ~dst ~tag =
  let call = H.Send { buf; count; dt; dst; tag } in
  H.fire ~rank:ctx.rank H.Pre call;
  let data = snapshot buf (count * dt.Datatype.size) in
  ignore (Comm.deposit ctx.comm ~src:ctx.rank ~dst ~tag ~data);
  H.fire ~rank:ctx.rank H.Post call

(* Synchronous send: returns only once the receiver has matched the
   message (rendezvous protocol) — the variant whose misuse produces
   classic send-send deadlocks. *)
let ssend ctx ~buf ~count ~dt ~dst ~tag =
  let call = H.Ssend { buf; count; dt; dst; tag } in
  H.fire ~rank:ctx.rank H.Pre call;
  let data = snapshot buf (count * dt.Datatype.size) in
  let m = Comm.deposit ctx.comm ~src:ctx.rank ~dst ~tag ~data in
  Sched.Scheduler.wait_until ctx.comm.Comm.cond (fun () ->
      m.Comm.m_delivered);
  H.fire ~rank:ctx.rank H.Post call

let isend ctx ~buf ~count ~dt ~dst ~tag =
  let req =
    Request.make ~kind:Request.Isend ~buf ~count ~dt ~peer:dst ~tag
      ~owner:ctx.rank
  in
  H.fire ~rank:ctx.rank H.Pre (H.Isend { req });
  (* Eager protocol: the payload leaves the buffer at the send call; the
     request completes at MPI_Wait. *)
  let data = snapshot buf (count * dt.Datatype.size) in
  ignore (Comm.deposit ctx.comm ~src:ctx.rank ~dst ~tag ~data);
  H.fire ~rank:ctx.rank H.Post (H.Isend { req });
  req

let irecv ctx ~buf ~count ~dt ~src ~tag =
  let req =
    Request.make ~kind:Request.Irecv ~buf ~count ~dt ~peer:src ~tag
      ~owner:ctx.rank
  in
  H.fire ~rank:ctx.rank H.Pre (H.Irecv { req });
  ignore (Comm.post_recv ctx.comm req ~src ~tag);
  Comm.progress ctx.comm;
  H.fire ~rank:ctx.rank H.Post (H.Irecv { req });
  req

let wait_complete ctx (req : Request.t) =
  match req.Request.kind with
  | Request.Isend -> req.Request.complete <- true
  | Request.Irecv ->
      Comm.progress ctx.comm;
      Sched.Scheduler.wait_until ctx.comm.Comm.cond (fun () ->
          Comm.progress ctx.comm;
          req.Request.complete)

let wait ctx req =
  H.fire ~rank:ctx.rank H.Pre (H.Wait { req });
  wait_complete ctx req;
  H.fire ~rank:ctx.rank H.Post (H.Wait { req })

let waitall ctx reqs =
  H.fire ~rank:ctx.rank H.Pre (H.Waitall { reqs });
  List.iter (wait_complete ctx) reqs;
  H.fire ~rank:ctx.rank H.Post (H.Waitall { reqs })

let test ctx (req : Request.t) =
  Comm.progress ctx.comm;
  if req.Request.kind = Request.Isend then req.Request.complete <- true;
  let completed = req.Request.complete in
  H.fire ~rank:ctx.rank H.Pre (H.Test { req; completed });
  H.fire ~rank:ctx.rank H.Post (H.Test { req; completed });
  completed

let recv ctx ~buf ~count ~dt ~src ~tag =
  let call = H.Recv { buf; count; dt; src; tag } in
  H.fire ~rank:ctx.rank H.Pre call;
  let req =
    Request.make ~kind:Request.Irecv ~buf ~count ~dt ~peer:src ~tag
      ~owner:ctx.rank
  in
  ignore (Comm.post_recv ctx.comm req ~src ~tag);
  wait_complete ctx req;
  H.fire ~rank:ctx.rank H.Post call

let sendrecv ctx ~sendbuf ~sendcount ~dst ~sendtag ~recvbuf ~recvcount ~src
    ~recvtag ~dt =
  send ctx ~buf:sendbuf ~count:sendcount ~dt ~dst ~tag:sendtag;
  recv ctx ~buf:recvbuf ~count:recvcount ~dt ~src ~tag:recvtag

(* --- collectives -------------------------------------------------------- *)

type reduce_op = Sum | Prod | Min | Max

let apply_op op a b =
  match op with
  | Sum -> a +. b
  | Prod -> a *. b
  | Min -> Float.min a b
  | Max -> Float.max a b

let read_elems (buf : Ptr.t) count (dt : Datatype.t) =
  match dt.Datatype.elem with
  | Typeart.Typedb.F64 -> Array.init count (Access.raw_get_f64 buf)
  | Typeart.Typedb.F32 -> Array.init count (Access.raw_get_f32 buf)
  | Typeart.Typedb.I32 ->
      Array.init count (fun i -> float_of_int (Access.raw_get_i32 buf i))
  | _ ->
      raise (Abort (Fmt.str "reduction on unsupported datatype %a" Datatype.pp dt))

let write_elems (buf : Ptr.t) (dt : Datatype.t) vals =
  match dt.Datatype.elem with
  | Typeart.Typedb.F64 -> Array.iteri (Access.raw_set_f64 buf) vals
  | Typeart.Typedb.F32 -> Array.iteri (Access.raw_set_f32 buf) vals
  | Typeart.Typedb.I32 ->
      Array.iteri (fun i v -> Access.raw_set_i32 buf i (int_of_float v)) vals
  | _ -> assert false

let barrier ctx =
  H.fire ~rank:ctx.rank H.Pre H.Barrier;
  Comm.collective ctx.comm ctx.rank ~contribute:(fun _ -> ()) ~extract:(fun _ -> ());
  H.fire ~rank:ctx.rank H.Post H.Barrier

let reduce_round ctx ~op ~sendbuf ~count ~dt =
  Comm.collective ctx.comm ctx.rank
    ~contribute:(fun r ->
      let mine = read_elems sendbuf count dt in
      if r.Comm.contrib = 0 then r.Comm.vals <- mine
      else
        Array.iteri (fun i v -> r.Comm.vals.(i) <- apply_op op r.Comm.vals.(i) v) mine)
    ~extract:(fun r -> r.Comm.vals)

let allreduce ctx ~sendbuf ~recvbuf ~count ~dt ~op =
  let call = H.Allreduce { sendbuf; recvbuf; count; dt } in
  H.fire ~rank:ctx.rank H.Pre call;
  let vals = reduce_round ctx ~op ~sendbuf ~count ~dt in
  write_elems recvbuf dt vals;
  H.fire ~rank:ctx.rank H.Post call

let reduce ctx ~sendbuf ~recvbuf ~count ~dt ~op ~root =
  let call = H.Reduce { sendbuf; recvbuf; count; dt; root } in
  H.fire ~rank:ctx.rank H.Pre call;
  let vals = reduce_round ctx ~op ~sendbuf ~count ~dt in
  if ctx.rank = root then write_elems recvbuf dt vals;
  H.fire ~rank:ctx.rank H.Post call

let allgather ctx ~sendbuf ~recvbuf ~count ~dt =
  let call = H.Allgather { sendbuf; recvbuf; count; dt } in
  H.fire ~rank:ctx.rank H.Pre call;
  let all =
    Comm.collective ctx.comm ctx.rank
      ~contribute:(fun r ->
        if Array.length r.Comm.vals = 0 then
          r.Comm.vals <- Array.make (ctx.size * count) 0.;
        let mine = read_elems sendbuf count dt in
        Array.blit mine 0 r.Comm.vals (ctx.rank * count) count)
      ~extract:(fun r -> r.Comm.vals)
  in
  write_elems recvbuf dt all;
  H.fire ~rank:ctx.rank H.Post call

let gather ctx ~sendbuf ~recvbuf ~count ~dt ~root =
  let call = H.Gather { sendbuf; recvbuf; count; dt; root } in
  H.fire ~rank:ctx.rank H.Pre call;
  let all =
    Comm.collective ctx.comm ctx.rank
      ~contribute:(fun r ->
        if Array.length r.Comm.vals = 0 then
          r.Comm.vals <- Array.make (ctx.size * count) 0.;
        let mine = read_elems sendbuf count dt in
        Array.blit mine 0 r.Comm.vals (ctx.rank * count) count)
      ~extract:(fun r -> r.Comm.vals)
  in
  if ctx.rank = root then write_elems recvbuf dt all;
  H.fire ~rank:ctx.rank H.Post call

let scatter ctx ~sendbuf ~recvbuf ~count ~dt ~root =
  let call = H.Scatter { sendbuf; recvbuf; count; dt; root } in
  H.fire ~rank:ctx.rank H.Pre call;
  let all =
    Comm.collective ctx.comm ctx.rank
      ~contribute:(fun r ->
        if ctx.rank = root then
          r.Comm.vals <- read_elems sendbuf (ctx.size * count) dt)
      ~extract:(fun r -> r.Comm.vals)
  in
  write_elems recvbuf dt (Array.sub all (ctx.rank * count) count);
  H.fire ~rank:ctx.rank H.Post call

(* --- one-sided communication (RMA, fence synchronization) --------------- *)

(* Collective window creation: every rank exposes [buf] of [bytes];
   handles are per-rank (sharing wid, buffers and fence schedule), like
   MPI_Win handles referring to one window object. *)
let win_create ctx ~buf ~bytes =
  Ptr.check buf bytes;
  let buffers, sizes, wid =
    Comm.collective ctx.comm ctx.rank
      ~contribute:(fun r ->
        if Array.length r.Comm.ivals = 0 then begin
          r.Comm.ivals <- Array.make ctx.size 0;
          (* the first contributor draws the window id, so every rank's
             handle refers to the same window *)
          r.Comm.vals <- [| float_of_int !Win.next_wid |];
          incr Win.next_wid
        end;
        r.Comm.ptrs.(ctx.rank) <- Some buf;
        r.Comm.ivals.(ctx.rank) <- bytes)
      ~extract:(fun r ->
        ( Array.map Option.get r.Comm.ptrs,
          Array.copy r.Comm.ivals,
          int_of_float r.Comm.vals.(0) ))
  in
  let win = { Win.wid; buffers; sizes; epoch = 0; freed = false } in
  let call = H.Win_create { win; buf; bytes } in
  H.fire ~rank:ctx.rank H.Pre call;
  H.fire ~rank:ctx.rank H.Post call;
  win

(* Fence: closes the current access epoch and opens the next one. All
   RMA issued before the fence is complete (at origin and target) once
   it returns. *)
let win_fence ctx (win : Win.t) =
  Win.check_live win;
  let call = H.Win_fence { win } in
  H.fire ~rank:ctx.rank H.Pre call;
  Comm.collective ctx.comm ctx.rank ~contribute:(fun _ -> ()) ~extract:(fun _ -> ());
  win.Win.epoch <- win.Win.epoch + 1;
  H.fire ~rank:ctx.rank H.Post call

let win_free ctx (win : Win.t) =
  Win.check_live win;
  let call = H.Win_free { win } in
  H.fire ~rank:ctx.rank H.Pre call;
  Comm.collective ctx.comm ctx.rank ~contribute:(fun _ -> ()) ~extract:(fun _ -> ());
  win.Win.freed <- true;
  H.fire ~rank:ctx.rank H.Post call

(* MPI_Put: one-sided write of [count] elements into the target rank's
   window at element displacement [disp]. Data moves as raw bytes — the
   RDMA transfer no load/store instrumentation can see. *)
let put ctx (win : Win.t) ~buf ~count ~dt ~target ~disp =
  let bytes = count * dt.Datatype.size in
  let disp_bytes = disp * dt.Datatype.size in
  Win.check_target win ~target ~disp_bytes ~bytes;
  Ptr.check buf bytes;
  let call = H.Rma_put { win; buf; count; dt; target; disp } in
  H.fire ~rank:ctx.rank H.Pre call;
  Access.raw_blit ~src:buf ~dst:(Win.target_ptr win ~target ~disp_bytes) ~bytes;
  H.fire ~rank:ctx.rank H.Post call

(* MPI_Get: one-sided read from the target's window into [buf]. *)
let get ctx (win : Win.t) ~buf ~count ~dt ~target ~disp =
  let bytes = count * dt.Datatype.size in
  let disp_bytes = disp * dt.Datatype.size in
  Win.check_target win ~target ~disp_bytes ~bytes;
  Ptr.check buf bytes;
  let call = H.Rma_get { win; buf; count; dt; target; disp } in
  H.fire ~rank:ctx.rank H.Pre call;
  Access.raw_blit ~src:(Win.target_ptr win ~target ~disp_bytes) ~dst:buf ~bytes;
  H.fire ~rank:ctx.rank H.Post call

(* MPI_Accumulate with MPI_SUM-style ops: concurrent accumulates to the
   same location (same op) are legal per the MPI standard. *)
let accumulate ctx (win : Win.t) ~buf ~count ~dt ~op ~target ~disp =
  let bytes = count * dt.Datatype.size in
  let disp_bytes = disp * dt.Datatype.size in
  Win.check_target win ~target ~disp_bytes ~bytes;
  let call = H.Rma_accumulate { win; buf; count; dt; target; disp } in
  H.fire ~rank:ctx.rank H.Pre call;
  let dst = Win.target_ptr win ~target ~disp_bytes in
  let mine = read_elems buf count dt in
  let theirs = read_elems dst count dt in
  write_elems dst dt (Array.mapi (fun i v -> apply_op op v theirs.(i)) mine);
  H.fire ~rank:ctx.rank H.Post call

let bcast ctx ~buf ~count ~dt ~root =
  let call = H.Bcast { buf; count; dt; root } in
  H.fire ~rank:ctx.rank H.Pre call;
  let vals =
    Comm.collective ctx.comm ctx.rank
      ~contribute:(fun r ->
        if ctx.rank = root then r.Comm.vals <- read_elems buf count dt)
      ~extract:(fun r -> r.Comm.vals)
  in
  if ctx.rank <> root then write_elems buf dt vals;
  H.fire ~rank:ctx.rank H.Post call
