(* Non-blocking communication requests. *)

type kind = Isend | Irecv

type t = {
  rid : int;
  kind : kind;
  buf : Memsim.Ptr.t;
  count : int;
  dt : Datatype.t;
  peer : int; (* destination for Isend, source selector for Irecv *)
  tag : int;
  owner : int; (* posting rank *)
  mutable complete : bool;
}

let next_rid = ref 0

let make ~kind ~buf ~count ~dt ~peer ~tag ~owner =
  let rid = !next_rid in
  incr next_rid;
  { rid; kind; buf; count; dt; peer; tag; owner; complete = false }

let bytes t = t.count * t.dt.Datatype.size

let pp ppf t =
  Fmt.pf ppf "req#%d(%s,%s x%d,peer=%d,tag=%d)" t.rid
    (match t.kind with Isend -> "Isend" | Irecv -> "Irecv")
    t.dt.Datatype.name t.count t.peer t.tag
