lib/must/errors.ml: Fmt Typeart
