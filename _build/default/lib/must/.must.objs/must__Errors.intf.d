lib/must/errors.mli: Format Typeart
