lib/must/rma.ml: Fmt Hashtbl List Memsim Tsan
