lib/must/rma.mli: Memsim Tsan
