lib/must/runtime.ml: Errors Fmt List Memsim Mpisim Rma Tsan Typeart
