lib/must/runtime.mli: Errors Mpisim Tsan
