(* MUST's non-race findings: datatype mismatches and buffer overflows
   found via TypeART (paper, Section II-C / Fig. 2). *)

type kind =
  | Type_mismatch of { expected : Typeart.Typedb.ty; actual : Typeart.Typedb.ty }
  | Buffer_overflow of { have_bytes : int; need_bytes : int }
  | Unknown_allocation

type t = { rank : int; call : string; addr : int; kind : kind }

let pp ppf t =
  match t.kind with
  | Type_mismatch { expected; actual } ->
      Fmt.pf ppf
        "MUST: rank %d, %s at 0x%x: buffer of type %a passed as MPI datatype of %a"
        t.rank t.call t.addr Typeart.Typedb.pp actual Typeart.Typedb.pp expected
  | Buffer_overflow { have_bytes; need_bytes } ->
      Fmt.pf ppf
        "MUST: rank %d, %s at 0x%x: communication of %d bytes exceeds the %d bytes remaining in the allocation"
        t.rank t.call t.addr need_bytes have_bytes
  | Unknown_allocation ->
      Fmt.pf ppf "MUST: rank %d, %s at 0x%x: buffer is not a tracked allocation"
        t.rank t.call t.addr
