(** MUST's non-race findings: datatype mismatches and buffer overflows
    found via TypeART (paper, Section II-C / Fig. 2). *)

type kind =
  | Type_mismatch of { expected : Typeart.Typedb.ty; actual : Typeart.Typedb.ty }
      (** the buffer's recorded element type differs from the MPI
          datatype's *)
  | Buffer_overflow of { have_bytes : int; need_bytes : int }
      (** the declared communication extent exceeds what remains of the
          allocation behind the buffer pointer *)
  | Unknown_allocation
      (** the buffer does not resolve to a tracked allocation *)

type t = { rank : int; call : string; addr : int; kind : kind }

val pp : Format.formatter -> t -> unit
