(** The MUST runtime slice relevant to this reproduction (paper, Section
    II-B): intercept MPI calls and expose their memory-access and
    concurrency semantics to ThreadSanitizer.

    - Blocking calls annotate their buffer accesses on the calling host
      fiber (a send reads the buffer, a receive writes it).
    - Each non-blocking operation gets its own TSan fiber (Fig. 1): the
      buffer access is annotated on that fiber, which then releases a
      per-request key; the completion call (Wait/Waitall/successful
      Test) acquires it.
    - With TypeART enabled, every communication buffer is checked
      against the declared MPI datatype and the allocation extent. *)

type t

val create :
  ?size:int -> tsan:Tsan.Detector.t -> rank:int -> check_types:bool -> unit -> t
(** One instance per rank. [size] is the communicator size (used for
    collective buffer extents); [check_types] enables the TypeART
    datatype/extent checks — the paper's benchmarks run with them off
    ("MUST is configured to only check for data races"). *)

val on_call : t -> Mpisim.Hooks.phase -> Mpisim.Hooks.call -> unit
(** The interception handler, registered with {!Mpisim.Hooks.add}. *)

val errors : t -> Errors.t list
(** TypeART-backed findings, in detection order. *)

val mpi_calls : t -> int

val req_key : int -> int
(** Synchronization key for a request id (exposed for tests). *)

(** {1 RMA (one-sided) analysis}

    A Put/Get/Accumulate's window access lands in the {e target} rank's
    detector (see {!Rma}); the resolver makes that distributed step
    explicit. The harness points it at the per-rank MUST instances of
    the current run. *)

val set_peer_resolver : (int -> t option) -> unit
val clear_peer_resolver : unit -> unit
