lib/sched/scheduler.ml: Effect Fun List Queue
