lib/sched/scheduler.mli:
