(* Deterministic cooperative scheduler built on OCaml 5 effect handlers.

   Each task is a green thread. Tasks run until they [yield], [wait] on a
   condition, or return. The run queue is FIFO, so for a fixed program the
   interleaving is fully deterministic — a property the MPI simulator and
   the correctness testsuite rely on.

   A [wait]/[signal] pair is the only blocking primitive. When the run
   queue drains while tasks are still blocked, the scheduler raises
   [Deadlock] with the blocked tasks and the conditions they wait on;
   the MPI simulator inherits deadlock detection from this for free. *)

type cond = {
  cond_name : string;
  mutable waiters : waiter list; (* reverse arrival order *)
}

and waiter = { w_task : task; w_resume : (unit, unit) Effect.Deep.continuation }

and task = {
  t_name : string;
  t_id : int;
  mutable t_state : state;
}

and state = Runnable | Blocked of cond | Finished

type t = {
  runq : (task * (unit -> unit)) Queue.t;
  mutable tasks : task list; (* reverse spawn order *)
  mutable next_id : int;
  mutable current : task option;
}

exception Deadlock of (string * string) list
(** [(task, condition)] pairs for every task blocked when the run queue
    drained. *)

exception Not_in_scheduler

type _ Effect.t +=
  | Yield : unit Effect.t
  | Wait : cond -> unit Effect.t

let instance : t option ref = ref None

(* Observers notified each time a task is about to run. Correctness
   tools use this to retarget per-thread state (e.g. the race detector's
   current fiber) when the cooperative scheduler interleaves host
   threads. *)
let resume_hooks : (string -> int -> unit) list ref = ref []

let on_resume f = resume_hooks := f :: !resume_hooks
let clear_resume_hooks () = resume_hooks := []

let get () = match !instance with Some s -> s | None -> raise Not_in_scheduler

let cond name = { cond_name = name; waiters = [] }

let yield () = Effect.perform Yield
let wait c = Effect.perform (Wait c)

let current_task () =
  match (get ()).current with Some t -> t | None -> raise Not_in_scheduler

let self () = (current_task ()).t_name
let self_id () = (current_task ()).t_id

(* Wake every waiter of [c]; they re-enter the run queue in arrival
   order. Broadcast semantics: woken tasks must re-check their predicate. *)
let signal c =
  let s = get () in
  let ws = List.rev c.waiters in
  c.waiters <- [];
  List.iter
    (fun w ->
      w.w_task.t_state <- Runnable;
      Queue.push (w.w_task, fun () -> Effect.Deep.continue w.w_resume ()) s.runq)
    ws

let wait_until c pred =
  while not (pred ()) do
    wait c
  done

let spawn_in s name f =
  let task = { t_name = name; t_id = s.next_id; t_state = Runnable } in
  s.next_id <- s.next_id + 1;
  s.tasks <- task :: s.tasks;
  let thunk () =
    Effect.Deep.match_with f ()
      {
        retc = (fun () -> task.t_state <- Finished);
        exnc = (fun e -> task.t_state <- Finished; raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    Queue.push (task, fun () -> Effect.Deep.continue k ()) s.runq)
            | Wait c ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    task.t_state <- Blocked c;
                    c.waiters <- { w_task = task; w_resume = k } :: c.waiters)
            | _ -> None);
      }
  in
  Queue.push (task, thunk) s.runq

(* Spawn a task dynamically from inside a running scheduler. *)
let spawn name f = spawn_in (get ()) name f

let run tasks =
  (match !instance with
  | Some _ -> invalid_arg "Scheduler.run: nested run"
  | None -> ());
  let s = { runq = Queue.create (); tasks = []; next_id = 0; current = None } in
  instance := Some s;
  let finish () = instance := None in
  Fun.protect ~finally:finish (fun () ->
      List.iter (fun (name, f) -> spawn_in s name f) tasks;
      while not (Queue.is_empty s.runq) do
        let task, thunk = Queue.pop s.runq in
        s.current <- Some task;
        List.iter (fun f -> f task.t_name task.t_id) !resume_hooks;
        thunk ();
        s.current <- None
      done;
      let blocked =
        List.filter_map
          (fun t ->
            match t.t_state with
            | Blocked c -> Some (t.t_name, c.cond_name)
            | Runnable | Finished -> None)
          (List.rev s.tasks)
      in
      if blocked <> [] then raise (Deadlock blocked))
