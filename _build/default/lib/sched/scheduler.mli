(** Deterministic cooperative scheduler.

    Green threads ("tasks") run under a FIFO round-robin scheduler built
    on OCaml 5 effect handlers. For a fixed program the interleaving is
    fully deterministic. The MPI simulator runs one task per rank on top
    of this module and inherits deadlock detection from it. *)

type cond
(** A condition variable tasks can block on. Signals are broadcasts:
    woken tasks must re-check their predicate ([wait_until] does). *)

exception Deadlock of (string * string) list
(** Raised by {!run} when the run queue drains while tasks are still
    blocked. Carries [(task name, condition name)] for each. *)

exception Not_in_scheduler
(** Raised when a scheduler operation is used outside {!run}. *)

val cond : string -> cond
(** [cond name] creates a fresh condition variable; [name] appears in
    {!Deadlock} diagnostics. *)

val run : (string * (unit -> unit)) list -> unit
(** [run tasks] spawns each named task and schedules until all finish.
    Exceptions from tasks propagate immediately. Not reentrant. *)

val spawn : string -> (unit -> unit) -> unit
(** Spawn an additional task from inside a running scheduler. *)

val yield : unit -> unit
(** Re-enqueue the current task at the back of the run queue. *)

val wait : cond -> unit
(** Block the current task until the condition is signalled. *)

val wait_until : cond -> (unit -> bool) -> unit
(** [wait_until c pred] blocks on [c] until [pred ()] holds. *)

val signal : cond -> unit
(** Wake every task blocked on the condition. *)

val self : unit -> string
(** Name of the current task. *)

val self_id : unit -> int
(** Spawn-order id of the current task. *)

val on_resume : (string -> int -> unit) -> unit
(** Register an observer called with the task's name and id each time a
    task is about to run. Tools use this to retarget per-thread state
    (e.g. the race detector's current fiber) across interleavings. *)

val clear_resume_hooks : unit -> unit
(** Remove all observers registered with {!on_resume}. *)
