lib/testsuite/cases.ml: Cudasim Fmt Harness Kir List Memsim Mpisim Typeart
