lib/testsuite/runner.ml: Cases Cudasim Fmt Harness List Tsan
