(* Executes the testsuite: each case runs under MUST & CuSan (the full
   stack) and the detector's verdict is compared with the case's ground
   truth, like `make check-cutests` in the paper's artifact. *)

type verdict = {
  case : Cases.case;
  detected : bool;
  reports : (int * Tsan.Report.t) list;
  pass : bool;
}

let run_case ?(mode = Cudasim.Device.Eager) ?annotation (case : Cases.case) =
  let res =
    Harness.Run.run ~nranks:2 ~mode ?annotation ~check_types:true
      ~flavor:Harness.Flavor.Must_cusan case.Cases.app
  in
  let detected = Harness.Run.has_races res in
  let expected = case.Cases.expect = Cases.Racy in
  {
    case;
    detected;
    reports = res.Harness.Run.races;
    pass = detected = expected && res.Harness.Run.deadlock = None;
  }

let run_all ?mode ?annotation () =
  List.map (run_case ?mode ?annotation) (Cases.all ())

let pp_verdict ppf v =
  Fmt.pf ppf "%s: CuSanTest :: %s (%s)"
    (if v.pass then "PASS" else "FAIL")
    v.case.Cases.name
    (match (v.case.Cases.expect, v.detected) with
    | Cases.Racy, true -> "race correctly reported"
    | Cases.Racy, false -> "race MISSED"
    | Cases.Clean, false -> "clean"
    | Cases.Clean, true -> "FALSE POSITIVE")

let summary verdicts =
  let pass = List.length (List.filter (fun v -> v.pass) verdicts) in
  (pass, List.length verdicts)
