lib/tsan/counters.ml: Fmt
