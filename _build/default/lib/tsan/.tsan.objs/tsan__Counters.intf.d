lib/tsan/counters.mli: Format
