lib/tsan/detector.ml: Array Counters Epoch Fmt Fun Hashtbl List Obj Report Shadow Suppress Vclock
