lib/tsan/detector.mli: Counters Format Report
