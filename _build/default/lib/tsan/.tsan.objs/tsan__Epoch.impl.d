lib/tsan/epoch.ml: Fmt Vclock
