lib/tsan/epoch.mli: Format Vclock
