lib/tsan/report.ml: Fmt
