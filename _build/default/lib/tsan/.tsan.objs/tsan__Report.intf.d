lib/tsan/report.mli: Format
