lib/tsan/shadow.ml: Array Bytes Char Epoch Hashtbl Vclock
