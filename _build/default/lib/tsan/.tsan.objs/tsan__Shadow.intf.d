lib/tsan/shadow.mli: Bytes Hashtbl Vclock
