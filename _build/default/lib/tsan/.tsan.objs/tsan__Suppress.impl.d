lib/tsan/suppress.ml: List Report String
