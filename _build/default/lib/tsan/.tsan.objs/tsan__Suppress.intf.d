lib/tsan/suppress.mli: Report
