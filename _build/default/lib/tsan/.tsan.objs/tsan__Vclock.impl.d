lib/tsan/vclock.ml: Array Fmt
