lib/tsan/vclock.mli: Format
