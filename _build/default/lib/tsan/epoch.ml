(* FastTrack epochs: a (fiber id, clock) pair packed into one int.
   Epoch 0 is "never accessed"; fiber ids therefore start at 0 but
   clocks start at 1. *)

let tid_shift = 42
let clock_mask = (1 lsl tid_shift) - 1

let none = 0

let pack ~tid ~clock =
  assert (clock > 0 && clock <= clock_mask);
  (tid lsl tid_shift) lor clock

let tid e = e lsr tid_shift
let clock e = e land clock_mask

let is_none e = e = 0

(* Did the access at epoch [e] happen before the thread owning vector
   clock [vc]? *)
let hb e vc = clock e <= Vclock.get vc (tid e)

let pp ppf e =
  if is_none e then Fmt.string ppf "-" else Fmt.pf ppf "%d@%d" (tid e) (clock e)
