(** FastTrack epochs: a (fiber id, clock value) pair packed into a
    single immediate integer, the fast-path representation of "last
    access" in shadow cells. Epoch 0 means "never accessed"; clocks
    therefore start at 1. *)

val tid_shift : int
(** Number of clock bits (fiber id lives above them). *)

val clock_mask : int

val none : int
(** The "never accessed" epoch. *)

val pack : tid:int -> clock:int -> int
(** Pack a fiber id and a positive clock value. *)

val tid : int -> int
val clock : int -> int
val is_none : int -> bool

val hb : int -> Vclock.t -> bool
(** [hb e vc]: did the access at epoch [e] happen before the fiber
    owning vector clock [vc]? (FastTrack's O(1) epoch-vs-clock check.) *)

val pp : Format.formatter -> int -> unit
