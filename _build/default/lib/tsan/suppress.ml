(* Suppression lists, as in TSan's -fsanitize-blacklist / suppressions
   file. The paper's artifact ships cluster-specific suppression lists
   for false positives from system libraries; we support the same
   mechanism: a race whose current or previous origin contains one of
   the patterns is counted but not reported. *)

type t = { mutable patterns : string list; mutable suppressed : int }

let create () = { patterns = []; suppressed = 0 }

let add t pattern = t.patterns <- pattern :: t.patterns

let of_list patterns = { patterns; suppressed = 0 }

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0

let matches t (r : Report.t) =
  List.exists
    (fun p ->
      contains_sub ~sub:p r.Report.current.Report.origin
      || contains_sub ~sub:p r.Report.previous.Report.origin)
    t.patterns

(* Returns true when the report must be dropped. *)
let check t r =
  if matches t r then begin
    t.suppressed <- t.suppressed + 1;
    true
  end
  else false

let suppressed_count t = t.suppressed

(* Parse TSan suppressions-file syntax: one rule per line,
   "<kind>:<pattern>" with '#' comments. Only "race:" rules apply to
   data-race reports; other kinds (e.g. "thread:", "deadlock:") are
   accepted and ignored, as real TSan does for kinds it knows but the
   report type does not match. *)
let parse content =
  String.split_on_char '\n' content
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ':' with
           | Some i ->
               let kind = String.sub line 0 i in
               let pattern =
                 String.sub line (i + 1) (String.length line - i - 1)
               in
               if kind = "race" && pattern <> "" then Some pattern else None
           | None -> None)

let of_file_content content = of_list (parse content)
