(** Suppression lists, as in ThreadSanitizer's suppressions file.

    The paper's artifact ships cluster-specific suppression lists for
    false positives from system libraries; this module implements the
    same mechanism. A race whose current or previous origin contains one
    of the patterns is counted but not reported. *)

type t

val create : unit -> t
val of_list : string list -> t

val add : t -> string -> unit
(** Add a substring pattern. *)

val matches : t -> Report.t -> bool
(** Does any pattern match the report (without counting)? *)

val check : t -> Report.t -> bool
(** [check t r] is [true] when the report must be dropped; increments
    the suppressed counter when it is. *)

val suppressed_count : t -> int

val parse : string -> string list
(** Parse TSan suppressions-file syntax: one ["<kind>:<pattern>"] rule
    per line, ['#'] comments. Only ["race:"] rules apply to data-race
    reports; other kinds are accepted and ignored. *)

val of_file_content : string -> t
