lib/typeart/pass.ml: Memsim Rt Typedb
