lib/typeart/pass.mli: Memsim Rt Typedb
