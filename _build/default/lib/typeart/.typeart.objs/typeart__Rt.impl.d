lib/typeart/rt.ml: Hashtbl Memsim Typedb
