lib/typeart/rt.mli: Memsim Typedb
