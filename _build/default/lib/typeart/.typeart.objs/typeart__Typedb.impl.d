lib/typeart/typedb.ml: Fmt Hashtbl List String
