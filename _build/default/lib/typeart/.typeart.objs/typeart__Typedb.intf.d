lib/typeart/typedb.mli: Format
