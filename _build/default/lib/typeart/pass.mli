(** The "instrumented allocation site": what TypeART's compiler pass
    turns a [malloc]/[cudaMalloc] into. The allocation callback carries
    the statically-known type plus the dynamic extent (paper, Section
    II-C); the CUDA extension of TypeART fires the same callbacks for
    [cudaMalloc]/[cudaMallocManaged]/[cudaHostAlloc] with the memory
    kind recorded (Section IV-C). *)

val alloc : ?tag:string -> Memsim.Space.t -> Typedb.ty -> int -> Memsim.Ptr.t
(** [alloc space ty count] allocates [count] elements and registers them
    with the global runtime when it is enabled. *)

val free : Memsim.Ptr.t -> unit

(** Convenience queries against the global runtime ({!Rt.instance}): *)

val type_at : int -> (Typedb.ty * int) option
val extent_at : int -> int option
val lookup : int -> Rt.info option
