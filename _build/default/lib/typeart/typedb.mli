(** Type layouts and serialized type ids.

    TypeART's compiler pass extracts the memory layout of every
    allocated type at compile time and assigns it a unique id; the
    runtime later maps addresses back to (type id, dynamic element
    count). This module is that catalogue: built-in scalar types plus
    user-declared (packed) structs. *)

type ty =
  | F64
  | F32
  | I64
  | I32
  | I8
  | Struct of struct_decl

and struct_decl = { sname : string; fields : (string * ty) list }

val sizeof : ty -> int
(** Packed layout: structs are the sum of their fields. *)

val to_string : ty -> string
(** The serialized layout; interning it yields the type id. *)

val pp : Format.formatter -> ty -> unit
val equal : ty -> ty -> bool

val type_id : ty -> int
(** Stable within a process: the same layout always gets the same id. *)

val of_type_id : int -> ty option
