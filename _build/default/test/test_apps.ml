(* Integration tests: Jacobi and TeaLeaf under every tool configuration.
   Correct versions must match the serial reference and be race-free;
   racy variants must be flagged by the CUDA-aware configurations. *)

module F = Harness.Flavor
module R = Harness.Run

let close ?(tol = 1e-9) a b =
  let scale = max 1.0 (max (abs_float a) (abs_float b)) in
  abs_float (a -. b) /. scale < tol

(* --- Jacobi ------------------------------------------------------------- *)

let jacobi_result ?(racy = false) ?(use_stream = true) ?(mode = Cudasim.Device.Eager)
    flavor =
  let cfg = Apps.Jacobi.config ~nx:32 ~ny:32 ~iters:20 ~norm_every:10 ~racy ~use_stream ~nranks:2 () in
  let res = R.run ~nranks:2 ~mode ~flavor (Apps.Jacobi.app cfg) in
  (res, cfg.Apps.Jacobi.results)

let jacobi_correct_matches_reference () =
  let res, results = jacobi_result F.Vanilla in
  Alcotest.(check bool) "no deadlock" true (res.R.deadlock = None);
  let expect = Apps.Jacobi.reference ~nx:32 ~ny:32 ~iters:20 ~norm_every:10 in
  Array.iteri
    (fun r got ->
      if not (close got expect) then
        Alcotest.failf "rank %d norm %.12g <> reference %.12g" r got expect)
    results

let jacobi_deferred_matches_reference () =
  let _, results = jacobi_result ~mode:Cudasim.Device.Deferred F.Vanilla in
  let expect = Apps.Jacobi.reference ~nx:32 ~ny:32 ~iters:20 ~norm_every:10 in
  Array.iter
    (fun got ->
      if not (close got expect) then
        Alcotest.failf "deferred norm %.12g <> reference %.12g" got expect)
    results

let jacobi_clean_under_all_flavors () =
  List.iter
    (fun flavor ->
      let res, _ = jacobi_result flavor in
      if res.R.races <> [] then
        Alcotest.failf "%s: %d false race(s), first: %s" (F.name flavor)
          (List.length res.R.races)
          (Tsan.Report.to_string (snd (List.hd res.R.races))))
    F.all

let jacobi_racy_detected_by_cusan () =
  (* The CUDA-to-MPI race needs CuSan (kernel access on the stream
     fiber) and MUST (the MPI_Send buffer read) together. *)
  let res, _ = jacobi_result ~racy:true F.Must_cusan in
  Alcotest.(check bool) "MUST & CuSan detects missing device sync" true
    (R.has_races res)

let jacobi_racy_missed_without_cusan () =
  (* Tools observing only a subset of the semantics "will find some
     issues but not all" (paper, Section I): MPI-only, host-only and
     CUDA-only instrumentation each miss this hybrid race. *)
  List.iter
    (fun flavor ->
      let res, _ = jacobi_result ~racy:true flavor in
      Alcotest.(check bool) (F.name flavor ^ " misses it") false (R.has_races res))
    [ F.Vanilla; F.Tsan; F.Must; F.Cusan ]

let jacobi_racy_same_result_eager () =
  (* In eager mode the race is latent: results still correct. *)
  let _, results = jacobi_result ~racy:true F.Must_cusan in
  let expect = Apps.Jacobi.reference ~nx:32 ~ny:32 ~iters:20 ~norm_every:10 in
  Array.iter
    (fun got ->
      if not (close got expect) then Alcotest.failf "eager racy changed result")
    results

let jacobi_racy_wrong_result_deferred () =
  (* In deferred mode the missing synchronization has observable
     consequences: the exchange reads stale rows. Enough iterations for
     the diffusion front to cross the rank boundary, and no intermediate
     norm (its blocking D2H copy would force the pending kernels). *)
  let cfg =
    Apps.Jacobi.config ~nx:16 ~ny:16 ~iters:30 ~norm_every:30 ~racy:true
      ~nranks:2 ()
  in
  let _ =
    R.run ~nranks:2 ~mode:Cudasim.Device.Deferred ~flavor:F.Vanilla
      (Apps.Jacobi.app cfg)
  in
  let expect = Apps.Jacobi.reference ~nx:16 ~ny:16 ~iters:30 ~norm_every:30 in
  Alcotest.(check bool) "stale data changes the norm" false
    (Array.for_all (fun got -> close got expect) cfg.Apps.Jacobi.results)

let jacobi_default_stream_only_is_safe () =
  (* Without a user stream every kernel runs on the legacy default
     stream; the blocking D2H copy pattern means the racy flag still
     races (no sync before sendrecv), so check the correct version only. *)
  let res, _ = jacobi_result ~use_stream:false F.Must_cusan in
  Alcotest.(check bool) "clean" false (R.has_races res)

let jacobi_counters_sane () =
  let res, _ = jacobi_result F.Must_cusan in
  let c = res.R.cuda_counters in
  Alcotest.(check int) "streams tracked" 2 c.Cusan.Counters.streams;
  Alcotest.(check int) "kernel calls" (1 + 20 + 2) c.Cusan.Counters.kernels;
  Alcotest.(check int) "memcpys" 2 c.Cusan.Counters.memcpys;
  Alcotest.(check bool) "syncs counted" true (c.Cusan.Counters.syncs >= 20);
  Alcotest.(check int) "all kernels analyzed" 0 c.Cusan.Counters.unanalyzed_kernels;
  let t = res.R.tsan_counters in
  Alcotest.(check bool) "fiber switches" true (t.Tsan.Counters.fiber_switches > 0);
  Alcotest.(check bool) "hb annotated" true (t.Tsan.Counters.happens_before > 0);
  Alcotest.(check bool) "ha annotated" true (t.Tsan.Counters.happens_after > 0);
  Alcotest.(check bool) "tracked bytes" true
    (t.Tsan.Counters.write_bytes > 0 && t.Tsan.Counters.read_bytes > 0)

let jacobi_memory_overhead_ordering () =
  let rss flavor = (fst (jacobi_result flavor)).R.rss_bytes in
  let v = rss F.Vanilla and c = rss F.Cusan in
  Alcotest.(check bool) "cusan adds memory" true (c > v)

(* --- TeaLeaf ------------------------------------------------------------- *)

let tealeaf_result ?(racy = `No) ?(mode = Cudasim.Device.Eager) flavor =
  let cfg = Apps.Tealeaf.config ~nx:16 ~ny:16 ~steps:2 ~cg_iters:5 ~racy ~nranks:2 () in
  let res = R.run ~nranks:2 ~mode ~flavor (Apps.Tealeaf.app cfg) in
  (res, cfg)

let tealeaf_correct_matches_reference () =
  let res, cfg = tealeaf_result F.Vanilla in
  Alcotest.(check bool) "no deadlock" true (res.R.deadlock = None);
  let expect = Apps.Tealeaf.reference cfg in
  Array.iteri
    (fun r got ->
      if not (close ~tol:1e-6 got expect) then
        Alcotest.failf "rank %d rr %.12g <> reference %.12g" r got expect)
    cfg.Apps.Tealeaf.results

let tealeaf_deferred_matches_reference () =
  let _, cfg = tealeaf_result ~mode:Cudasim.Device.Deferred F.Vanilla in
  let expect = Apps.Tealeaf.reference cfg in
  Array.iter
    (fun got ->
      if not (close ~tol:1e-6 got expect) then
        Alcotest.failf "deferred rr %.12g <> reference %.12g" got expect)
    cfg.Apps.Tealeaf.results

let tealeaf_clean_under_all_flavors () =
  List.iter
    (fun flavor ->
      let res, _ = tealeaf_result flavor in
      if res.R.races <> [] then
        Alcotest.failf "%s: false race: %s" (F.name flavor)
          (Tsan.Report.to_string (snd (List.hd res.R.races))))
    F.all

let tealeaf_cuda_to_mpi_race () =
  List.iter
    (fun flavor ->
      let res, _ = tealeaf_result ~racy:`Cuda_to_mpi flavor in
      Alcotest.(check bool) (F.name flavor) true (R.has_races res))
    [ F.Must_cusan ]

let tealeaf_mpi_to_cuda_race () =
  (* The Fig. 6 A scenario: needs both MUST (request fibers) and CuSan
     (kernel access on the stream fiber). *)
  let res, _ = tealeaf_result ~racy:`Mpi_to_cuda F.Must_cusan in
  Alcotest.(check bool) "detected" true (R.has_races res)

let tealeaf_mpi_to_cuda_needs_both () =
  List.iter
    (fun flavor ->
      let res, _ = tealeaf_result ~racy:`Mpi_to_cuda flavor in
      Alcotest.(check bool)
        (F.name flavor ^ " alone misses it")
        false (R.has_races res))
    [ F.Tsan; F.Must; F.Cusan ]

let tealeaf_single_stream_counter () =
  let res, _ = tealeaf_result F.Must_cusan in
  Alcotest.(check int) "one tracked stream" 1
    res.R.cuda_counters.Cusan.Counters.streams

let tealeaf_single_rank () =
  let cfg = Apps.Tealeaf.config ~nx:16 ~ny:16 ~steps:1 ~cg_iters:4 ~nranks:1 () in
  let res = R.run ~nranks:1 ~flavor:F.Must_cusan (Apps.Tealeaf.app cfg) in
  Alcotest.(check bool) "clean" false (R.has_races res);
  let expect =
    Apps.Tealeaf.reference
      (Apps.Tealeaf.config ~nx:16 ~ny:16 ~steps:1 ~cg_iters:4 ~nranks:1 ())
  in
  Alcotest.(check bool) "matches reference" true
    (close ~tol:1e-6 cfg.Apps.Tealeaf.results.(0) expect)

let jacobi_rma_matches_reference () =
  (* One-sided (MPI_Put + fences) halo exchange over device windows. *)
  let cfg =
    Apps.Jacobi.config ~nx:32 ~ny:32 ~iters:20 ~norm_every:10
      ~exchange:Apps.Jacobi.Rma ~nranks:2 ()
  in
  let res = R.run ~nranks:2 ~flavor:F.Must_cusan (Apps.Jacobi.app cfg) in
  Alcotest.(check bool) "no deadlock" true (res.R.deadlock = None);
  Alcotest.(check int) "clean" 0 (List.length res.R.races);
  let expect = Apps.Jacobi.reference ~nx:32 ~ny:32 ~iters:20 ~norm_every:10 in
  Array.iter
    (fun got ->
      if not (close got expect) then
        Alcotest.failf "rma norm %.12g <> reference %.12g" got expect)
    cfg.Apps.Jacobi.results

let jacobi_rma_racy_detected () =
  (* Missing device sync before the puts: the kernel's stream fiber
     races with MUST's RMA origin-read fiber. *)
  let cfg =
    Apps.Jacobi.config ~nx:32 ~ny:32 ~iters:10 ~norm_every:10 ~racy:true
      ~exchange:Apps.Jacobi.Rma ~nranks:2 ()
  in
  let res = R.run ~nranks:2 ~flavor:F.Must_cusan (Apps.Jacobi.app cfg) in
  Alcotest.(check bool) "detected" true (R.has_races res)

let jacobi_four_ranks () =
  let cfg = Apps.Jacobi.config ~nx:32 ~ny:32 ~iters:12 ~norm_every:12 ~nranks:4 () in
  let res = R.run ~nranks:4 ~flavor:F.Must_cusan (Apps.Jacobi.app cfg) in
  Alcotest.(check bool) "clean" false (R.has_races res);
  let expect = Apps.Jacobi.reference ~nx:32 ~ny:32 ~iters:12 ~norm_every:12 in
  Array.iter
    (fun got ->
      if not (close got expect) then
        Alcotest.failf "4-rank norm %.12g <> %.12g" got expect)
    cfg.Apps.Jacobi.results

let pingpong_shapes () =
  let measure placement =
    let cfg = Apps.Pingpong.config ~sizes:[ 8; 1024; 65536 ] ~iters:4 ~placement () in
    let res = R.run ~nranks:2 ~flavor:F.Must_cusan (Apps.Pingpong.app cfg) in
    Alcotest.(check int) "clean" 0 (List.length res.R.races);
    !(cfg.Apps.Pingpong.results)
  in
  let dd = measure Apps.Pingpong.Device_to_device in
  let hh = measure Apps.Pingpong.Host_to_host in
  Alcotest.(check int) "all sizes measured" 3 (List.length dd);
  List.iter2
    (fun (bytes, d) (bytes', h) ->
      Alcotest.(check int) "same size" bytes bytes';
      Alcotest.(check bool)
        (Printf.sprintf "CUDA-aware faster at %d bytes" bytes)
        true (d < h))
    dd hh;
  (* latency grows with message size *)
  let lats = List.map snd dd in
  Alcotest.(check bool) "monotone" true (List.sort compare lats = lats)

let pingpong_racy_detected () =
  let cfg = Apps.Pingpong.config ~sizes:[ 512 ] ~iters:2 ~racy:true () in
  let res = R.run ~nranks:2 ~flavor:F.Must_cusan (Apps.Pingpong.app cfg) in
  Alcotest.(check bool) "unsynchronized fill detected" true (R.has_races res)

let tests =
  [
    Alcotest.test_case "jacobi matches reference" `Quick
      jacobi_correct_matches_reference;
    Alcotest.test_case "jacobi deferred matches reference" `Quick
      jacobi_deferred_matches_reference;
    Alcotest.test_case "jacobi clean under all flavors" `Quick
      jacobi_clean_under_all_flavors;
    Alcotest.test_case "jacobi racy detected by CuSan" `Quick
      jacobi_racy_detected_by_cusan;
    Alcotest.test_case "jacobi racy missed without CuSan" `Quick
      jacobi_racy_missed_without_cusan;
    Alcotest.test_case "jacobi racy still correct (eager)" `Quick
      jacobi_racy_same_result_eager;
    Alcotest.test_case "jacobi racy corrupts data (deferred)" `Quick
      jacobi_racy_wrong_result_deferred;
    Alcotest.test_case "jacobi default-stream-only clean" `Quick
      jacobi_default_stream_only_is_safe;
    Alcotest.test_case "jacobi counters" `Quick jacobi_counters_sane;
    Alcotest.test_case "jacobi memory overhead" `Quick
      jacobi_memory_overhead_ordering;
    Alcotest.test_case "jacobi 4 ranks" `Quick jacobi_four_ranks;
    Alcotest.test_case "jacobi RMA exchange matches reference" `Quick
      jacobi_rma_matches_reference;
    Alcotest.test_case "jacobi RMA racy detected" `Quick jacobi_rma_racy_detected;
    Alcotest.test_case "tealeaf matches reference" `Quick
      tealeaf_correct_matches_reference;
    Alcotest.test_case "tealeaf deferred matches reference" `Quick
      tealeaf_deferred_matches_reference;
    Alcotest.test_case "tealeaf clean under all flavors" `Quick
      tealeaf_clean_under_all_flavors;
    Alcotest.test_case "tealeaf cuda-to-mpi race" `Quick tealeaf_cuda_to_mpi_race;
    Alcotest.test_case "tealeaf mpi-to-cuda race" `Quick tealeaf_mpi_to_cuda_race;
    Alcotest.test_case "tealeaf mpi-to-cuda needs MUST&CuSan" `Quick
      tealeaf_mpi_to_cuda_needs_both;
    Alcotest.test_case "tealeaf one tracked stream" `Quick
      tealeaf_single_stream_counter;
    Alcotest.test_case "tealeaf single rank" `Quick tealeaf_single_rank;
    Alcotest.test_case "pingpong: CUDA-aware beats staging" `Quick
      pingpong_shapes;
    Alcotest.test_case "pingpong: racy fill detected" `Quick
      pingpong_racy_detected;
  ]

let () = Alcotest.run "apps" [ ("apps", tests) ]
