(* Hybrid MPI + host-threads tests (the "X" in MPI + X), plus the
   per-thread default stream mode of the paper's Section VI-B.

   Host threads are cooperative scheduler tasks; each gets its own TSan
   fiber with thread-creation/join synchronization, so classic
   multi-threaded races, hybrid MPI races, and PTDS stream semantics are
   all observable. *)

module F = Harness.Flavor
module R = Harness.Run
module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Mpi = Mpisim.Mpi

let f64 = Typeart.Typedb.F64

let run ?default_stream_mode ?(flavor = F.Must_cusan) ?(nranks = 1) app =
  R.run ~nranks ?default_stream_mode ~flavor app

let write_kernel env =
  env.R.compile
    (Cudasim.Kernel.make
       ~kir:
         Kir.Dsl.(
           ( Kir.Dsl.modul ~kernels:[ "w" ]
               [ func "w" [ ptr "a"; scalar "n" ] [ if_ (tid <. p 1) [ store (p 0) tid (f 1.) ] [] ] ],
             "w" ))
       "w")

(* --- plain host-thread races -------------------------------------------- *)

let threads_race_on_shared_buffer () =
  let app (env : R.env) =
    let buf = Mem.host_malloc ~ty:f64 ~count:8 () in
    R.parallel env
      [
        (fun () -> Memsim.Access.set_f64 buf 0 1.);
        (fun () -> Memsim.Access.set_f64 buf 0 2.);
      ];
    Typeart.Pass.free buf
  in
  let res = run ~flavor:F.Tsan app in
  Alcotest.(check bool) "thread-thread race" true (R.has_races res)

let threads_disjoint_clean () =
  let app (env : R.env) =
    let buf = Mem.host_malloc ~ty:f64 ~count:8 () in
    R.parallel env
      [
        (fun () -> Memsim.Access.set_f64 buf 0 1.);
        (fun () -> Memsim.Access.set_f64 buf 4 2.);
      ];
    Typeart.Pass.free buf
  in
  let res = run ~flavor:F.Tsan app in
  Alcotest.(check int) "disjoint" 0 (List.length res.R.races)

let create_sync_covers_parent_writes () =
  let app (env : R.env) =
    let buf = Mem.host_malloc ~ty:f64 ~count:8 () in
    Memsim.Access.set_f64 buf 0 1.;
    R.parallel env [ (fun () -> ignore (Memsim.Access.get_f64 buf 0)) ];
    Typeart.Pass.free buf
  in
  let res = run ~flavor:F.Tsan app in
  Alcotest.(check int) "spawn synchronizes" 0 (List.length res.R.races)

let join_sync_covers_child_writes () =
  let app (env : R.env) =
    let buf = Mem.host_malloc ~ty:f64 ~count:8 () in
    R.parallel env [ (fun () -> Memsim.Access.set_f64 buf 0 1.) ];
    ignore (Memsim.Access.get_f64 buf 0);
    Typeart.Pass.free buf
  in
  let res = run ~flavor:F.Tsan app in
  Alcotest.(check int) "join synchronizes" 0 (List.length res.R.races)

let sibling_threads_sequentialized_by_join () =
  let app (env : R.env) =
    let buf = Mem.host_malloc ~ty:f64 ~count:8 () in
    R.parallel env [ (fun () -> Memsim.Access.set_f64 buf 0 1.) ];
    R.parallel env [ (fun () -> Memsim.Access.set_f64 buf 0 2.) ];
    Typeart.Pass.free buf
  in
  let res = run ~flavor:F.Tsan app in
  Alcotest.(check int) "two parallel sections ordered" 0 (List.length res.R.races)

(* --- hybrid MPI + threads ------------------------------------------------ *)

let thread_writes_buffer_other_thread_sends () =
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let buf = Mem.host_malloc ~ty:f64 ~count:8 () in
    if ctx.Mpi.rank = 0 then
      R.parallel env
        [
          (fun () -> Memsim.Access.set_f64 buf 3 1.);
          (fun () ->
            Mpi.send ctx ~buf ~count:8 ~dt:Mpisim.Datatype.double ~dst:1 ~tag:0);
        ]
    else Mpi.recv ctx ~buf ~count:8 ~dt:Mpisim.Datatype.double ~src:0 ~tag:0;
    Typeart.Pass.free buf
  in
  let res = run ~nranks:2 ~flavor:F.Must app in
  Alcotest.(check bool) "hybrid MPI+threads race" true (R.has_races res)

let thread_waits_request_other_computes () =
  (* One thread computes on a disjoint buffer while another completes a
     non-blocking receive: correct hybrid overlap, no race. *)
  let app (env : R.env) =
    let ctx = env.R.mpi in
    let rbuf = Mem.host_malloc ~ty:f64 ~count:8 () in
    let work = Mem.host_malloc ~ty:f64 ~count:8 () in
    if ctx.Mpi.rank = 0 then begin
      Memsim.Access.set_f64 rbuf 0 9.;
      Mpi.send ctx ~buf:rbuf ~count:8 ~dt:Mpisim.Datatype.double ~dst:1 ~tag:0
    end
    else begin
      let req =
        Mpi.irecv ctx ~buf:rbuf ~count:8 ~dt:Mpisim.Datatype.double ~src:0 ~tag:0
      in
      R.parallel env
        [
          (fun () -> Mpi.wait ctx req);
          (fun () -> Memsim.Access.set_f64 work 0 1.);
        ]
    end;
    Typeart.Pass.free rbuf;
    Typeart.Pass.free work
  in
  let res = run ~nranks:2 ~flavor:F.Must app in
  Alcotest.(check int) "clean overlap" 0 (List.length res.R.races)

(* --- per-thread default streams (Section VI-B) --------------------------- *)

(* The same program — two host threads launching on "the default
   stream" — is serialized under legacy semantics but concurrent under
   per-thread default streams. *)
let two_threads_default_stream app_of_buf ~default_stream_mode =
  let app (env : R.env) =
    let dev = env.R.dev in
    let k = write_kernel env in
    let buf = Mem.cuda_malloc dev ~ty:f64 ~count:16 in
    R.parallel env (app_of_buf dev k buf);
    Dev.device_synchronize dev;
    Mem.free dev buf
  in
  run ~default_stream_mode app

let launch_twice dev k buf =
  [
    (fun () -> Dev.launch dev k ~grid:16 ~args:[| VPtr buf; VInt 16 |] ());
    (fun () -> Dev.launch dev k ~grid:16 ~args:[| VPtr buf; VInt 16 |] ());
  ]

let legacy_shared_default_stream_clean () =
  let res = two_threads_default_stream launch_twice ~default_stream_mode:Dev.Legacy in
  Alcotest.(check int) "one legacy default stream serializes" 0
    (List.length res.R.races)

let ptds_same_buffer_races () =
  let res =
    two_threads_default_stream launch_twice ~default_stream_mode:Dev.Per_thread
  in
  Alcotest.(check bool) "per-thread default streams race" true (R.has_races res)

let ptds_own_buffers_clean () =
  let app (env : R.env) =
    let dev = env.R.dev in
    let k = write_kernel env in
    let mk () = Mem.cuda_malloc dev ~ty:f64 ~count:16 in
    let b1 = mk () and b2 = mk () in
    R.parallel env
      [
        (fun () -> Dev.launch dev k ~grid:16 ~args:[| VPtr b1; VInt 16 |] ());
        (fun () -> Dev.launch dev k ~grid:16 ~args:[| VPtr b2; VInt 16 |] ());
      ];
    Dev.device_synchronize dev;
    Mem.free dev b1;
    Mem.free dev b2
  in
  let res = run ~default_stream_mode:Dev.Per_thread app in
  Alcotest.(check int) "disjoint buffers" 0 (List.length res.R.races)

let ptds_device_sync_covers_all_threads () =
  let app (env : R.env) =
    let dev = env.R.dev in
    let k = write_kernel env in
    let buf = Mem.cuda_malloc dev ~ty:f64 ~count:16 in
    R.parallel env
      [ (fun () -> Dev.launch dev k ~grid:16 ~args:[| VPtr buf; VInt 16 |] ()) ];
    Dev.device_synchronize dev;
    (* host consumption via a blocking copy is ordered *)
    let h = Mem.host_malloc ~ty:f64 ~count:16 () in
    Mem.memcpy dev ~dst:h ~src:buf ~bytes:128 ();
    ignore (Memsim.Access.get_f64 h 3);
    Mem.free dev buf;
    Typeart.Pass.free h
  in
  let res = run ~default_stream_mode:Dev.Per_thread app in
  Alcotest.(check int) "deviceSync covers ptds streams" 0
    (List.length res.R.races)

let ptds_actual_execution_independent () =
  (* Device-side: with PTDS, thread 2's work does not wait for thread
     1's default-stream work. *)
  let dev = Dev.create ~mode:Dev.Deferred ~default_stream_mode:Dev.Per_thread () in
  let log = ref [] in
  Dev.set_thread_key dev 1;
  let s1 = Dev.default_stream dev in
  ignore (Dev.enqueue dev s1 "t1" (fun () -> log := "t1" :: !log));
  Dev.set_thread_key dev 2;
  let s2 = Dev.default_stream dev in
  ignore (Dev.enqueue dev s2 "t2" (fun () -> log := "t2" :: !log));
  Alcotest.(check bool) "distinct streams" true (s1 != s2);
  Dev.stream_synchronize dev s2;
  Alcotest.(check (list string)) "only t2 ran" [ "t2" ] (List.rev !log);
  Dev.stream_synchronize dev s1;
  Alcotest.(check (list string)) "then t1" [ "t2"; "t1" ] (List.rev !log)

let ptds_stream_counter_tracks_threads () =
  let app (env : R.env) =
    let dev = env.R.dev in
    let k = write_kernel env in
    let mk () = Mem.cuda_malloc dev ~ty:f64 ~count:4 in
    let b1 = mk () and b2 = mk () in
    R.parallel env
      [
        (fun () -> Dev.launch dev k ~grid:4 ~args:[| VPtr b1; VInt 4 |] ());
        (fun () -> Dev.launch dev k ~grid:4 ~args:[| VPtr b2; VInt 4 |] ());
      ];
    Dev.device_synchronize dev
  in
  let res = run ~default_stream_mode:Dev.Per_thread app in
  (* legacy default (always tracked) + one ptds stream per thread *)
  Alcotest.(check int) "three tracked streams" 3
    res.R.cuda_counters.Cusan.Counters.streams

let tests =
  [
    Alcotest.test_case "threads race on shared buffer" `Quick
      threads_race_on_shared_buffer;
    Alcotest.test_case "disjoint threads clean" `Quick threads_disjoint_clean;
    Alcotest.test_case "create sync" `Quick create_sync_covers_parent_writes;
    Alcotest.test_case "join sync" `Quick join_sync_covers_child_writes;
    Alcotest.test_case "sections ordered by join" `Quick
      sibling_threads_sequentialized_by_join;
    Alcotest.test_case "hybrid: thread writes what another sends" `Quick
      thread_writes_buffer_other_thread_sends;
    Alcotest.test_case "hybrid: clean overlap" `Quick
      thread_waits_request_other_computes;
    Alcotest.test_case "legacy: shared default stream serializes" `Quick
      legacy_shared_default_stream_clean;
    Alcotest.test_case "ptds: same buffer races" `Quick ptds_same_buffer_races;
    Alcotest.test_case "ptds: own buffers clean" `Quick ptds_own_buffers_clean;
    Alcotest.test_case "ptds: deviceSync covers all" `Quick
      ptds_device_sync_covers_all_threads;
    Alcotest.test_case "ptds: device-side independence" `Quick
      ptds_actual_execution_independent;
    Alcotest.test_case "ptds: stream counter" `Quick
      ptds_stream_counter_tracks_threads;
  ]

let () = Alcotest.run "hybrid" [ ("hybrid", tests) ]
