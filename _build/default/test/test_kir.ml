(* Unit tests for the kernel IR: builder, validator, interpreter. *)

open Kir

let with_heap f =
  Memsim.Heap.reset ();
  Fun.protect ~finally:Memsim.Heap.reset f

let dev_alloc n = Memsim.Heap.alloc Memsim.Space.Device (n * 8)

let run m name args grid = Interp.run_kernel m ~name ~args ~grid

(* --- validator ---------------------------------------------------------- *)

let simple_module body =
  Dsl.(modul ~kernels:[ "k" ] [ func "k" [ ptr "a"; scalar "n" ] body ])

let validate_ok () =
  Validate.check_module
    (simple_module Dsl.[ if_ (tid <. p 1) [ store (p 0) tid (f 1.) ] [] ])

let validate_unbound_local () =
  match Validate.check_module (simple_module Dsl.[ store (p 0) tid (v "nope") ]) with
  | () -> Alcotest.fail "unbound local accepted"
  | exception Validate.Invalid _ -> ()

let validate_param_range () =
  match Validate.check_module (simple_module Dsl.[ store (p 5) tid (f 0.) ]) with
  | () -> Alcotest.fail "out-of-range param accepted"
  | exception Validate.Invalid _ -> ()

let validate_store_to_scalar () =
  match Validate.check_module (simple_module Dsl.[ store (p 1) tid (f 0.) ]) with
  | () -> Alcotest.fail "store to scalar accepted"
  | exception Validate.Invalid _ -> ()

let validate_pointer_arith_in_binop () =
  match
    Validate.check_module (simple_module Dsl.[ store (p 0) (p 0 +. i 1) (f 0.) ])
  with
  | () -> Alcotest.fail "pointer in binop accepted"
  | exception Validate.Invalid _ -> ()

let validate_storing_pointer () =
  match Validate.check_module (simple_module Dsl.[ store (p 0) tid (p 0) ]) with
  | () -> Alcotest.fail "storing a pointer accepted"
  | exception Validate.Invalid _ -> ()

let validate_undefined_callee () =
  match Validate.check_module (simple_module Dsl.[ call "ghost" [] ]) with
  | () -> Alcotest.fail "call to undefined function accepted"
  | exception Validate.Invalid _ -> ()

let validate_arity () =
  let m =
    Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "helper" [ ptr "x" ] [];
          func "k" [ ptr "a"; scalar "n" ] [ call "helper" [ p 0; p 1 ] ];
        ])
  in
  match Validate.check_module m with
  | () -> Alcotest.fail "arity mismatch accepted"
  | exception Validate.Invalid _ -> ()

let validate_arg_type_mismatch () =
  let m =
    Dsl.(
      modul ~kernels:[ "k" ]
        [
          func "helper" [ ptr "x" ] [];
          func "k" [ ptr "a"; scalar "n" ] [ call "helper" [ p 1 ] ];
        ])
  in
  match Validate.check_module m with
  | () -> Alcotest.fail "scalar-for-pointer accepted"
  | exception Validate.Invalid _ -> ()

let validate_duplicate_function () =
  let m =
    Dsl.(modul ~kernels:[] [ func "f" [] []; func "f" [ ptr "a" ] [] ])
  in
  match Validate.check_module m with
  | () -> Alcotest.fail "duplicate function accepted"
  | exception Validate.Invalid _ -> ()

let validate_missing_kernel () =
  let m = Dsl.(modul ~kernels:[ "ghost" ] [ func "f" [] [] ]) in
  match Validate.check_module m with
  | () -> Alcotest.fail "missing kernel accepted"
  | exception Validate.Invalid _ -> ()

let validate_loop_var_is_scalar () =
  Validate.check_module
    (simple_module
       Dsl.[ for_ "i" (i 0) (p 1) [ store (p 0) (v "i") (i2f (v "i")) ] ])

(* --- interpreter --------------------------------------------------------- *)

let interp_store_per_tid () =
  with_heap @@ fun () ->
  let a = dev_alloc 8 in
  let m = simple_module Dsl.[ if_ (tid <. p 1) [ store (p 0) tid (i2f (tid *. i 3)) ] [] ] in
  run m "k" [| VPtr a; VInt 8 |] 8;
  for t = 0 to 7 do
    Alcotest.(check (float 0.)) "a[t]=3t" (float (3 * t)) (Memsim.Access.raw_get_f64 a t)
  done

let interp_arith () =
  with_heap @@ fun () ->
  let a = dev_alloc 8 in
  let m =
    simple_module
      Dsl.
        [
          let_ "x" (f 10. /. f 4.);
          let_ "y" (i 10 /. i 4);
          store (p 0) (i 0) (v "x");
          store (p 0) (i 1) (i2f (v "y"));
          store (p 0) (i 2) (i2f (i 10 %. i 4));
          store (p 0) (i 3) (fmin (f 1.5) (f 2.5));
          store (p 0) (i 4) (fmax (f 1.5) (f 2.5));
          store (p 0) (i 5) (neg (f 7.));
          store (p 0) (i 6) (i2f ((i 1 <. i 2) &&. (i 2 <=. i 2)));
          store (p 0) (i 7) (i2f ((i 1 ==. i 2) ||. (i 3 <. i 2)));
        ]
  in
  run m "k" [| VPtr a; VInt 8 |] 1;
  let got i = Memsim.Access.raw_get_f64 a i in
  Alcotest.(check (float 0.)) "float div" 2.5 (got 0);
  Alcotest.(check (float 0.)) "int div" 2. (got 1);
  Alcotest.(check (float 0.)) "mod" 2. (got 2);
  Alcotest.(check (float 0.)) "min" 1.5 (got 3);
  Alcotest.(check (float 0.)) "max" 2.5 (got 4);
  Alcotest.(check (float 0.)) "neg" (-7.) (got 5);
  Alcotest.(check (float 0.)) "and of cmps" 1. (got 6);
  Alcotest.(check (float 0.)) "or of cmps" 0. (got 7)

let interp_loop_sum () =
  with_heap @@ fun () ->
  let a = dev_alloc 1 in
  let m =
    simple_module
      Dsl.
        [
          store (p 0) (i 0) (f 0.);
          for_ "i" (i 1) (i 11)
            [ store (p 0) (i 0) (load (p 0) (i 0) +. i2f (v "i")) ];
        ]
  in
  run m "k" [| VPtr a; VInt 1 |] 1;
  Alcotest.(check (float 0.)) "sum 1..10" 55. (Memsim.Access.raw_get_f64 a 0)

let interp_nested_call () =
  with_heap @@ fun () ->
  let y = dev_alloc 4 and x = dev_alloc 4 in
  (* the paper's Fig. 8 example: kernel_nested(y, x, tid) { y[tid] = x[tid] } *)
  let m =
    Dsl.(
      modul ~kernels:[ "kernel" ]
        [
          func "kernel_nested"
            [ ptr "y"; ptr "x"; scalar "t" ]
            [ store (p 0) (p 2) (load (p 1) (p 2)) ];
          func "kernel" [ ptr "d_a"; ptr "d_b" ] [ call "kernel_nested" [ p 0; p 1; tid ] ];
        ])
  in
  for t = 0 to 3 do
    Memsim.Access.raw_set_f64 x t (float (t * t))
  done;
  run m "kernel" [| VPtr y; VPtr x |] 4;
  for t = 0 to 3 do
    Alcotest.(check (float 0.)) "copied" (float (t * t)) (Memsim.Access.raw_get_f64 y t)
  done

let interp_ptradd () =
  with_heap @@ fun () ->
  let a = dev_alloc 8 in
  let m = simple_module Dsl.[ store (p 0 +@ i 4) tid (f 9.) ] in
  run m "k" [| VPtr a; VInt 1 |] 1;
  Alcotest.(check (float 0.)) "offset store" 9. (Memsim.Access.raw_get_f64 a 4)

let interp_i32 () =
  with_heap @@ fun () ->
  let a = Memsim.Heap.alloc Memsim.Space.Device 32 in
  let m = simple_module Dsl.[ storei (p 0) tid (tid *. i 5) ] in
  run m "k" [| VPtr a; VInt 8 |] 8;
  Alcotest.(check int) "i32 store" 15 (Memsim.Access.raw_get_i32 a 3)

let interp_device_fault () =
  with_heap @@ fun () ->
  let h = Memsim.Heap.alloc Memsim.Space.Host_pageable 64 in
  let m = simple_module Dsl.[ store (p 0) tid (f 1.) ] in
  match run m "k" [| VPtr h; VInt 8 |] 1 with
  | () -> Alcotest.fail "kernel dereferenced host memory"
  | exception Interp.Device_fault _ -> ()

let interp_managed_ok () =
  with_heap @@ fun () ->
  let mbuf = Memsim.Heap.alloc Memsim.Space.Managed 64 in
  let m = simple_module Dsl.[ store (p 0) tid (f 1.) ] in
  run m "k" [| VPtr mbuf; VInt 8 |] 1;
  Alcotest.(check (float 0.)) "managed" 1. (Memsim.Access.raw_get_f64 mbuf 0)

let interp_oob () =
  with_heap @@ fun () ->
  let a = dev_alloc 2 in
  let m = simple_module Dsl.[ store (p 0) (i 5) (f 1.) ] in
  match run m "k" [| VPtr a; VInt 1 |] 1 with
  | () -> Alcotest.fail "oob store"
  | exception Memsim.Ptr.Out_of_bounds _ -> ()

let interp_div_by_zero () =
  with_heap @@ fun () ->
  let a = dev_alloc 1 in
  let m = simple_module Dsl.[ store (p 0) (i 0) (i2f (i 1 /. i 0)) ] in
  match run m "k" [| VPtr a; VInt 1 |] 1 with
  | () -> Alcotest.fail "div by zero"
  | exception Interp.Runtime_error _ -> ()

let interp_undefined_kernel () =
  match run (simple_module []) "ghost" [||] 1 with
  | () -> Alcotest.fail "undefined kernel ran"
  | exception Interp.Runtime_error _ -> ()

let interp_tracer_footprint () =
  with_heap @@ fun () ->
  let a = dev_alloc 8 in
  let reads = ref 0 and writes = ref 0 in
  let tracer =
    {
      Interp.on_read = (fun _ ~bytes:_ -> incr reads);
      on_write = (fun _ ~bytes:_ -> incr writes);
    }
  in
  let m =
    simple_module Dsl.[ store (p 0) tid (load (p 0) tid +. f 1.) ]
  in
  Interp.run_kernel ~tracer m ~name:"k" ~args:[| VPtr a; VInt 8 |] ~grid:8;
  Alcotest.(check int) "reads" 8 !reads;
  Alcotest.(check int) "writes" 8 !writes

let interp_ntid () =
  with_heap @@ fun () ->
  let a = dev_alloc 4 in
  let m = simple_module Dsl.[ store (p 0) tid (i2f ntid) ] in
  run m "k" [| VPtr a; VInt 4 |] 4;
  Alcotest.(check (float 0.)) "ntid" 4. (Memsim.Access.raw_get_f64 a 2)

let pp_smoke () =
  let m = Apps.Jacobi.device_module in
  List.iter
    (fun f ->
      let s = Fmt.str "%a" Ir.pp_func f in
      Alcotest.(check bool) "prints something" true (String.length s > 10))
    m.Ir.funcs

let apps_modules_validate () =
  Validate.check_module Apps.Jacobi.device_module;
  Validate.check_module Apps.Tealeaf.device_module

(* Native implementations agree with the interpreted IR on small domains. *)
let native_matches_ir () =
  with_heap @@ fun () ->
  let nx = 8 and rows = 6 in
  let cells = nx * rows in
  let mk () =
    let a = dev_alloc cells and anew = dev_alloc cells in
    for i = 0 to cells - 1 do
      Memsim.Access.raw_set_f64 a i (sin (float i));
      Memsim.Access.raw_set_f64 anew i 0.
    done;
    (a, anew)
  in
  (* interpreted *)
  let a1, anew1 = mk () in
  Interp.run_kernel Apps.Jacobi.device_module ~name:"jacobi"
    ~args:[| VPtr anew1; VPtr a1; VInt nx; VInt rows |] ~grid:cells;
  (* native *)
  let a2, anew2 = mk () in
  Apps.Jacobi.native_jacobi ~grid:cells [| VPtr anew2; VPtr a2; VInt nx; VInt rows |];
  for i = 0 to cells - 1 do
    Alcotest.(check (float 1e-15))
      (Printf.sprintf "cell %d" i)
      (Memsim.Access.raw_get_f64 anew1 i)
      (Memsim.Access.raw_get_f64 anew2 i)
  done

let tealeaf_native_matches_ir () =
  with_heap @@ fun () ->
  let nx = 6 and rows = 6 in
  let cells = nx * rows in
  let p1 = dev_alloc cells and w1 = dev_alloc cells in
  let p2 = dev_alloc cells and w2 = dev_alloc cells in
  for i = 0 to cells - 1 do
    let v = cos (float i) in
    Memsim.Access.raw_set_f64 p1 i v;
    Memsim.Access.raw_set_f64 p2 i v
  done;
  Interp.run_kernel Apps.Tealeaf.device_module ~name:"tl_matvec"
    ~args:[| VPtr w1; VPtr p1; VInt nx; VInt rows; VFlt 0.1 |] ~grid:cells;
  Apps.Tealeaf.native_matvec ~grid:cells
    [| VPtr w2; VPtr p2; VInt nx; VInt rows; VFlt 0.1 |];
  for i = 0 to cells - 1 do
    Alcotest.(check (float 1e-15))
      (Printf.sprintf "cell %d" i)
      (Memsim.Access.raw_get_f64 w1 i)
      (Memsim.Access.raw_get_f64 w2 i)
  done

let tests =
  [
    Alcotest.test_case "validator accepts well-formed" `Quick validate_ok;
    Alcotest.test_case "validator: unbound local" `Quick validate_unbound_local;
    Alcotest.test_case "validator: param out of range" `Quick validate_param_range;
    Alcotest.test_case "validator: store to scalar" `Quick validate_store_to_scalar;
    Alcotest.test_case "validator: pointer in binop" `Quick
      validate_pointer_arith_in_binop;
    Alcotest.test_case "validator: storing a pointer" `Quick
      validate_storing_pointer;
    Alcotest.test_case "validator: undefined callee" `Quick
      validate_undefined_callee;
    Alcotest.test_case "validator: arity" `Quick validate_arity;
    Alcotest.test_case "validator: arg type" `Quick validate_arg_type_mismatch;
    Alcotest.test_case "validator: duplicate function" `Quick
      validate_duplicate_function;
    Alcotest.test_case "validator: missing kernel" `Quick validate_missing_kernel;
    Alcotest.test_case "validator: loop var scalar" `Quick
      validate_loop_var_is_scalar;
    Alcotest.test_case "interp: store per tid" `Quick interp_store_per_tid;
    Alcotest.test_case "interp: arithmetic" `Quick interp_arith;
    Alcotest.test_case "interp: loop sum" `Quick interp_loop_sum;
    Alcotest.test_case "interp: nested call (Fig. 8)" `Quick interp_nested_call;
    Alcotest.test_case "interp: pointer arithmetic" `Quick interp_ptradd;
    Alcotest.test_case "interp: i32 lanes" `Quick interp_i32;
    Alcotest.test_case "interp: device fault on host ptr" `Quick
      interp_device_fault;
    Alcotest.test_case "interp: managed ok" `Quick interp_managed_ok;
    Alcotest.test_case "interp: out of bounds" `Quick interp_oob;
    Alcotest.test_case "interp: div by zero" `Quick interp_div_by_zero;
    Alcotest.test_case "interp: undefined kernel" `Quick interp_undefined_kernel;
    Alcotest.test_case "interp: tracer footprint" `Quick interp_tracer_footprint;
    Alcotest.test_case "interp: ntid" `Quick interp_ntid;
    Alcotest.test_case "pp smoke" `Quick pp_smoke;
    Alcotest.test_case "app modules validate" `Quick apps_modules_validate;
    Alcotest.test_case "jacobi native = IR" `Quick native_matches_ir;
    Alcotest.test_case "tealeaf native = IR" `Quick tealeaf_native_matches_ir;
  ]

let () = Alcotest.run "kir" [ ("kir", tests) ]
