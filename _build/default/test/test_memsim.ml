(* Unit tests for the simulated address space. *)

open Memsim

let with_clean f =
  Heap.reset ();
  Hooks.clear ();
  Fun.protect ~finally:(fun () -> Hooks.clear (); Heap.reset ()) f

let alloc_roundtrip () =
  with_clean @@ fun () ->
  let p = Heap.alloc ~tag:"buf" Space.Host_pageable 64 in
  Access.set_f64 p 0 3.25;
  Access.set_f64 p 7 (-1.5);
  Alcotest.(check (float 0.)) "f64[0]" 3.25 (Access.get_f64 p 0);
  Alcotest.(check (float 0.)) "f64[7]" (-1.5) (Access.get_f64 p 7)

let i32_roundtrip () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Host_pinned 16 in
  Access.set_i32 p 0 42;
  Access.set_i32 p 3 (-7);
  Alcotest.(check int) "i32[0]" 42 (Access.get_i32 p 0);
  Alcotest.(check int) "i32[3]" (-7) (Access.get_i32 p 3)

let f32_roundtrip () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Device 8 in
  Access.raw_set_f32 p 1 2.5;
  Alcotest.(check (float 0.)) "f32[1]" 2.5 (Access.raw_get_f32 p 1)

let device_host_deref_rejected () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Device 32 in
  (match Access.get_f64 p 0 with
  | _ -> Alcotest.fail "host read of device pointer must raise"
  | exception Access.Host_access_to_device _ -> ());
  match Access.set_f64 p 0 1.0 with
  | () -> Alcotest.fail "host write of device pointer must raise"
  | exception Access.Host_access_to_device _ -> ()

let managed_host_deref_allowed () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Managed 16 in
  Access.set_f64 p 1 9.0;
  Alcotest.(check (float 0.)) "managed" 9.0 (Access.get_f64 p 1)

let raw_access_ignores_space () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Device 16 in
  Access.raw_set_f64 p 0 5.0;
  Alcotest.(check (float 0.)) "raw device" 5.0 (Access.raw_get_f64 p 0)

let out_of_bounds () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Host_pageable 16 in
  (match Access.get_f64 p 2 with
  | _ -> Alcotest.fail "oob must raise"
  | exception Ptr.Out_of_bounds _ -> ());
  match Access.raw_set_f64 (Ptr.add_bytes p (-8)) 0 0. with
  | () -> Alcotest.fail "negative offset must raise"
  | exception Ptr.Out_of_bounds _ -> ()

let use_after_free () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Host_pageable 8 in
  Heap.free p;
  match Access.get_f64 p 0 with
  | _ -> Alcotest.fail "UAF must raise"
  | exception Alloc.Use_after_free _ -> ()

let double_free () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Host_pageable 8 in
  Heap.free p;
  match Heap.free p with
  | () -> Alcotest.fail "double free must raise"
  | exception Alloc.Use_after_free _ -> ()

let interior_free_rejected () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Host_pageable 16 in
  match Heap.free (Ptr.add_bytes p 8) with
  | () -> Alcotest.fail "interior free must raise"
  | exception Invalid_argument _ -> ()

let addresses_disjoint () =
  with_clean @@ fun () ->
  let a = Heap.alloc Space.Host_pageable 100 in
  let b = Heap.alloc Space.Device 100 in
  let abase = Ptr.addr a and bbase = Ptr.addr b in
  Alcotest.(check bool) "disjoint" true
    (abase + 100 <= bbase || bbase + 100 <= abase)

let find_by_addr () =
  with_clean @@ fun () ->
  let p = Heap.alloc ~tag:"x" Space.Device 64 in
  (match Heap.find_by_addr (Ptr.addr (Ptr.add_bytes p 10)) with
  | Some a -> Alcotest.(check string) "tag" "x" a.Alloc.tag
  | None -> Alcotest.fail "interior addr should resolve");
  (* past the end: not found *)
  match Heap.find_by_addr (Ptr.addr p + 64) with
  | None -> ()
  | Some _ -> Alcotest.fail "one-past-end should not resolve"

let uva_attributes () =
  Alcotest.(check bool) "device is device mem" true
    (Space.is_device_memory Space.Device);
  Alcotest.(check bool) "managed is device mem" true
    (Space.is_device_memory Space.Managed);
  Alcotest.(check bool) "pinned is host mem" false
    (Space.is_device_memory Space.Host_pinned);
  Alcotest.(check bool) "pageable host-accessible" true
    (Space.host_accessible Space.Host_pageable);
  Alcotest.(check bool) "device not host-accessible" false
    (Space.host_accessible Space.Device);
  Alcotest.(check bool) "pinned not device-accessible" false
    (Space.device_accessible Space.Host_pinned)

let hooks_fire () =
  with_clean @@ fun () ->
  let allocs = ref 0 and frees = ref 0 and reads = ref 0 and writes = ref 0 in
  Hooks.add
    {
      on_alloc = (fun _ -> incr allocs);
      on_free = (fun _ -> incr frees);
      on_read = (fun _ n -> reads := !reads + n);
      on_write = (fun _ n -> writes := !writes + n);
    };
  let p = Heap.alloc Space.Host_pageable 32 in
  Access.set_f64 p 0 1.;
  ignore (Access.get_f64 p 0);
  Access.write_range p 32;
  Access.read_range p 16;
  Heap.free p;
  Alcotest.(check int) "allocs" 1 !allocs;
  Alcotest.(check int) "frees" 1 !frees;
  Alcotest.(check int) "read bytes" (8 + 16) !reads;
  Alcotest.(check int) "write bytes" (8 + 32) !writes

let raw_does_not_fire_hooks () =
  with_clean @@ fun () ->
  let fired = ref false in
  Hooks.add
    {
      Hooks.nil with
      on_read = (fun _ _ -> fired := true);
      on_write = (fun _ _ -> fired := true);
    };
  let p = Heap.alloc Space.Host_pageable 32 in
  Access.raw_set_f64 p 0 1.;
  ignore (Access.raw_get_f64 p 0);
  Access.raw_blit ~src:p ~dst:(Ptr.add_bytes p 16) ~bytes:8;
  Access.raw_fill p ~bytes:8 ~byte:0;
  Alcotest.(check bool) "raw invisible to hooks" false !fired

let blit_and_fill () =
  with_clean @@ fun () ->
  let src = Heap.alloc Space.Host_pageable 32 in
  let dst = Heap.alloc Space.Device 32 in
  for i = 0 to 3 do
    Access.raw_set_f64 src i (float i)
  done;
  Access.raw_blit ~src ~dst ~bytes:32;
  for i = 0 to 3 do
    Alcotest.(check (float 0.)) "copied" (float i) (Access.raw_get_f64 dst i)
  done;
  Access.raw_fill dst ~bytes:32 ~byte:0;
  Alcotest.(check (float 0.)) "zeroed" 0. (Access.raw_get_f64 dst 2)

let accounting () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Device 1000 in
  let q = Heap.alloc Space.Host_pageable 500 in
  Alcotest.(check int) "live" 1500 (Heap.live_bytes ());
  Alcotest.(check int) "count" 2 (Heap.live_count ());
  Heap.free p;
  Alcotest.(check int) "after free" 500 (Heap.live_bytes ());
  Alcotest.(check int) "peak" 1500 (Heap.peak_bytes ());
  Heap.free q

let ptr_arith () =
  with_clean @@ fun () ->
  let p = Heap.alloc Space.Host_pageable 64 in
  let q = Ptr.add p ~elt:8 3 in
  Access.raw_set_f64 q 0 7.0;
  Alcotest.(check (float 0.)) "aliases elt 3" 7.0 (Access.raw_get_f64 p 3);
  Alcotest.(check int) "remaining" 40 (Ptr.remaining q);
  Alcotest.(check bool) "equal" true (Ptr.equal q (Ptr.add_bytes p 24))

(* Property: f64 round-trips through the byte representation. *)
let prop_f64_roundtrip =
  QCheck.Test.make ~name:"f64 roundtrip" ~count:200 QCheck.float (fun v ->
      Heap.reset ();
      let p = Heap.alloc Space.Host_pageable 8 in
      Access.raw_set_f64 p 0 v;
      let v' = Access.raw_get_f64 p 0 in
      Heap.reset ();
      (Float.is_nan v && Float.is_nan v') || v = v')

(* Property: addresses of live allocations never overlap. *)
let prop_disjoint_addrs =
  QCheck.Test.make ~name:"allocation ranges disjoint" ~count:50
    QCheck.(list_of_size Gen.(1 -- 20) (int_range 1 10_000))
    (fun sizes ->
      Heap.reset ();
      let ptrs = List.map (fun s -> (Heap.alloc Space.Device s, s)) sizes in
      let ranges = List.map (fun (p, s) -> (Ptr.addr p, Ptr.addr p + s)) ptrs in
      let rec pairwise = function
        | [] -> true
        | (lo, hi) :: rest ->
            List.for_all (fun (lo', hi') -> hi <= lo' || hi' <= lo) rest
            && pairwise rest
      in
      let ok = pairwise ranges in
      Heap.reset ();
      ok)

let tests =
  [
    Alcotest.test_case "alloc roundtrip f64" `Quick alloc_roundtrip;
    Alcotest.test_case "i32 roundtrip" `Quick i32_roundtrip;
    Alcotest.test_case "f32 roundtrip" `Quick f32_roundtrip;
    Alcotest.test_case "host deref of device ptr rejected" `Quick
      device_host_deref_rejected;
    Alcotest.test_case "managed host deref allowed" `Quick
      managed_host_deref_allowed;
    Alcotest.test_case "raw access ignores space" `Quick raw_access_ignores_space;
    Alcotest.test_case "out of bounds" `Quick out_of_bounds;
    Alcotest.test_case "use after free" `Quick use_after_free;
    Alcotest.test_case "double free" `Quick double_free;
    Alcotest.test_case "interior free rejected" `Quick interior_free_rejected;
    Alcotest.test_case "addresses disjoint" `Quick addresses_disjoint;
    Alcotest.test_case "find by addr" `Quick find_by_addr;
    Alcotest.test_case "UVA attributes" `Quick uva_attributes;
    Alcotest.test_case "hooks fire" `Quick hooks_fire;
    Alcotest.test_case "raw invisible to hooks" `Quick raw_does_not_fire_hooks;
    Alcotest.test_case "blit and fill" `Quick blit_and_fill;
    Alcotest.test_case "byte accounting" `Quick accounting;
    Alcotest.test_case "pointer arithmetic" `Quick ptr_arith;
    QCheck_alcotest.to_alcotest prop_f64_roundtrip;
    QCheck_alcotest.to_alcotest prop_disjoint_addrs;
  ]

let () = Alcotest.run "memsim" [ ("memsim", tests) ]
