(* Unit tests for the deterministic cooperative scheduler. *)

let trace () =
  let log = ref [] in
  let emit s = log := s :: !log in
  (log, emit)

let order () =
  let log, emit = trace () in
  Sched.Scheduler.run
    [
      ("a", fun () -> emit "a1"; Sched.Scheduler.yield (); emit "a2");
      ("b", fun () -> emit "b1"; Sched.Scheduler.yield (); emit "b2");
    ];
  Alcotest.(check (list string)) "round robin" [ "a1"; "b1"; "a2"; "b2" ]
    (List.rev !log)

let determinism () =
  let run () =
    let log, emit = trace () in
    Sched.Scheduler.run
      (List.init 5 (fun i ->
           ( Printf.sprintf "t%d" i,
             fun () ->
               for k = 0 to 3 do
                 emit (Printf.sprintf "t%d.%d" i k);
                 Sched.Scheduler.yield ()
               done )));
    List.rev !log
  in
  Alcotest.(check (list string)) "two runs identical" (run ()) (run ())

let wait_signal () =
  let log, emit = trace () in
  let c = Sched.Scheduler.cond "c" in
  let ready = ref false in
  Sched.Scheduler.run
    [
      ( "consumer",
        fun () ->
          Sched.Scheduler.wait_until c (fun () -> !ready);
          emit "consumed" );
      ( "producer",
        fun () ->
          Sched.Scheduler.yield ();
          ready := true;
          emit "produced";
          Sched.Scheduler.signal c );
    ];
  Alcotest.(check (list string)) "order" [ "produced"; "consumed" ] (List.rev !log)

let broadcast () =
  let c = Sched.Scheduler.cond "c" in
  let woken = ref 0 in
  let go = ref false in
  Sched.Scheduler.run
    [
      ("w1", fun () -> Sched.Scheduler.wait_until c (fun () -> !go); incr woken);
      ("w2", fun () -> Sched.Scheduler.wait_until c (fun () -> !go); incr woken);
      ("sig", fun () -> go := true; Sched.Scheduler.signal c);
    ];
  Alcotest.(check int) "both woken" 2 !woken

let deadlock () =
  let c = Sched.Scheduler.cond "never" in
  match Sched.Scheduler.run [ ("stuck", fun () -> Sched.Scheduler.wait c) ] with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sched.Scheduler.Deadlock [ ("stuck", "never") ] -> ()
  | exception Sched.Scheduler.Deadlock other ->
      Alcotest.failf "wrong deadlock set: %d entries" (List.length other)

let deadlock_partial () =
  (* One task finishes fine; the other deadlocks. *)
  let c = Sched.Scheduler.cond "never" in
  match
    Sched.Scheduler.run
      [ ("ok", fun () -> Sched.Scheduler.yield ()); ("stuck", fun () -> Sched.Scheduler.wait c) ]
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sched.Scheduler.Deadlock [ ("stuck", "never") ] -> ()

let spawn_dynamic () =
  let log, emit = trace () in
  Sched.Scheduler.run
    [
      ( "parent",
        fun () ->
          emit "parent";
          Sched.Scheduler.spawn "child" (fun () -> emit "child");
          Sched.Scheduler.yield ();
          emit "parent2" );
    ];
  Alcotest.(check (list string)) "spawned runs" [ "parent"; "child"; "parent2" ]
    (List.rev !log)

let self_names () =
  let names = ref [] in
  Sched.Scheduler.run
    [
      ("x", fun () -> names := Sched.Scheduler.self () :: !names);
      ("y", fun () -> names := Sched.Scheduler.self () :: !names);
    ];
  Alcotest.(check (list string)) "self" [ "x"; "y" ] (List.rev !names)

let self_ids () =
  let ids = ref [] in
  Sched.Scheduler.run
    (List.init 3 (fun i ->
         (Printf.sprintf "r%d" i, fun () -> ids := Sched.Scheduler.self_id () :: !ids)));
  Alcotest.(check (list int)) "ids in spawn order" [ 0; 1; 2 ] (List.rev !ids)

let exn_propagates () =
  match
    Sched.Scheduler.run [ ("boom", fun () -> failwith "boom") ]
  with
  | () -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg

let not_nested () =
  Sched.Scheduler.run
    [
      ( "outer",
        fun () ->
          match Sched.Scheduler.run [ ("inner", fun () -> ()) ] with
          | () -> Alcotest.fail "nested run must fail"
          | exception Invalid_argument _ -> () );
    ]

let outside_scheduler () =
  match Sched.Scheduler.self () with
  | _ -> Alcotest.fail "expected Not_in_scheduler"
  | exception Sched.Scheduler.Not_in_scheduler -> ()

let many_tasks () =
  (* Stress: 200 tasks, 50 yields each, all finish. *)
  let n = ref 0 in
  Sched.Scheduler.run
    (List.init 200 (fun i ->
         ( Printf.sprintf "m%d" i,
           fun () ->
             for _ = 1 to 50 do
               Sched.Scheduler.yield ()
             done;
             incr n )));
  Alcotest.(check int) "all finished" 200 !n

let signal_before_wait_is_lost () =
  (* Signals are not sticky: waiting after the only signal deadlocks,
     which is why wait_until re-checks a predicate. *)
  let c = Sched.Scheduler.cond "c" in
  match
    Sched.Scheduler.run
      [
        ("sig", fun () -> Sched.Scheduler.signal c);
        ("wait", fun () -> Sched.Scheduler.yield (); Sched.Scheduler.wait c);
      ]
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sched.Scheduler.Deadlock _ -> ()

(* Property: any program of yielding/spawning tasks terminates with
   every task run to completion, and two executions produce identical
   traces (the determinism the MPI simulator and testsuite rely on). *)
let prop_deterministic_termination =
  QCheck.Test.make ~name:"random task programs deterministic" ~count:100
    QCheck.(list_of_size Gen.(1 -- 8) (pair (int_range 0 5) (int_range 0 3)))
    (fun spec ->
      let run () =
        let log = ref [] in
        Sched.Scheduler.run
          (List.mapi
             (fun i (yields, children) ->
               ( Printf.sprintf "t%d" i,
                 fun () ->
                   for k = 1 to yields do
                     log := Printf.sprintf "t%d.%d" i k :: !log;
                     Sched.Scheduler.yield ()
                   done;
                   for c = 1 to children do
                     Sched.Scheduler.spawn
                       (Printf.sprintf "t%d.c%d" i c)
                       (fun () ->
                         log := Printf.sprintf "t%d.c%d" i c :: !log)
                   done ))
             spec);
        List.rev !log
      in
      let a = run () and b = run () in
      a = b
      &&
      (* every spawned child ran *)
      List.for_all2
        (fun i (_, children) ->
          List.for_all
            (fun c -> List.mem (Printf.sprintf "t%d.c%d" i c) a)
            (List.init children (fun c -> c + 1)))
        (List.init (List.length spec) Fun.id)
        spec)

let tests =
  [
    Alcotest.test_case "round-robin order" `Quick order;
    Alcotest.test_case "determinism" `Quick determinism;
    Alcotest.test_case "wait/signal" `Quick wait_signal;
    Alcotest.test_case "signal broadcasts" `Quick broadcast;
    Alcotest.test_case "deadlock detected" `Quick deadlock;
    Alcotest.test_case "partial deadlock" `Quick deadlock_partial;
    Alcotest.test_case "dynamic spawn" `Quick spawn_dynamic;
    Alcotest.test_case "self names" `Quick self_names;
    Alcotest.test_case "self ids" `Quick self_ids;
    Alcotest.test_case "exception propagates" `Quick exn_propagates;
    Alcotest.test_case "nested run rejected" `Quick not_nested;
    Alcotest.test_case "ops outside run rejected" `Quick outside_scheduler;
    Alcotest.test_case "200 tasks stress" `Quick many_tasks;
    Alcotest.test_case "signals are not sticky" `Quick signal_before_wait_is_lost;
    QCheck_alcotest.to_alcotest prop_deterministic_termination;
  ]

let () = Alcotest.run "sched" [ ("scheduler", tests) ]
