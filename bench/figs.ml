(* Regenerates every table and figure of the paper's evaluation section
   from the simulator. Benchmark methodology follows the paper: each
   configuration runs once for warmup plus [repeats] measured runs, and
   the reported value is the average (Section V, "Benchmark setup"). *)

module F = Harness.Flavor
module R = Harness.Run

type sizes = {
  jacobi_nx : int;
  jacobi_ny : int;
  jacobi_iters : int;
  tealeaf_nx : int;
  tealeaf_ny : int;
  tealeaf_steps : int;
  tealeaf_cg : int;
  repeats : int;
  fig12_domains : (int * int) list;
  fig12_iters : int;
}

let default_sizes =
  {
    jacobi_nx = 512;
    jacobi_ny = 256;
    jacobi_iters = 100;
    tealeaf_nx = 64;
    tealeaf_ny = 64;
    tealeaf_steps = 4;
    tealeaf_cg = 12;
    repeats = 4;
    fig12_domains = [ (64, 32); (128, 64); (256, 128); (512, 256); (1024, 512) ];
    fig12_iters = 60;
  }

let quick_sizes =
  {
    default_sizes with
    jacobi_nx = 256;
    jacobi_ny = 128;
    jacobi_iters = 120;
    tealeaf_steps = 2;
    tealeaf_cg = 8;
    repeats = 5;
    fig12_domains = [ (64, 32); (128, 64); (256, 128) ];
    fig12_iters = 30;
  }

let jacobi_app sz () =
  let cfg =
    Apps.Jacobi.config ~nx:sz.jacobi_nx ~ny:sz.jacobi_ny ~iters:sz.jacobi_iters
      ~norm_every:(sz.jacobi_iters / 2) ~nranks:2 ()
  in
  Apps.Jacobi.app cfg

let tealeaf_app sz () =
  let cfg =
    Apps.Tealeaf.config ~nx:sz.tealeaf_nx ~ny:sz.tealeaf_ny
      ~steps:sz.tealeaf_steps ~cg_iters:sz.tealeaf_cg ~nranks:2 ()
  in
  Apps.Tealeaf.app cfg

(* One warmup + [repeats] measured runs; averages of runtime and memory,
   last run's full result for counters.

   With [?pool] (when the caller's cell is itself a pool task) the
   warmup runs concurrently with other cells, but the measured repeats
   are wrapped in [Pool.exclusively]: the pool drains, the timed runs
   execute with every other worker idle, and the pool resumes — so
   parallel cells never pollute each other's timings. *)
let measure ?pool ?(repeats = 4) ?granule ?annotation ?max_range_bytes ~flavor
    mk_app =
  ignore (R.run ~nranks:2 ?granule ?annotation ?max_range_bytes ~flavor (mk_app ()));
  let timed () =
    List.init repeats (fun _ ->
        R.run ~nranks:2 ?granule ?annotation ?max_range_bytes ~flavor (mk_app ()))
  in
  let results =
    match pool with None -> timed () | Some p -> Pool.exclusively p timed
  in
  let avg f = List.fold_left (fun a r -> a +. f r) 0. results /. float repeats in
  (* Median for runtime: the short quick-size runs are sub-millisecond,
     where a single scheduling hiccup can double the mean; the median
     keeps overhead ratios stable enough for benchdiff's CI gate. *)
  let median f =
    let xs = List.map f results |> List.sort Float.compare |> Array.of_list in
    let n = Array.length xs in
    if n mod 2 = 1 then xs.(n / 2) else (xs.((n / 2) - 1) +. xs.(n / 2)) /. 2.
  in
  let proc_s = median (fun r -> r.R.proc_s) in
  let rss = avg (fun r -> float r.R.rss_bytes) in
  (proc_s, rss, List.nth results (repeats - 1))

(* Evaluate independent bench cells: on the pool when one is given
   (results in input order, so downstream printing is deterministic),
   sequentially otherwise. *)
let run_cells ?pool f xs =
  match pool with None -> List.map f xs | Some p -> Pool.map_pool p f xs

let pp_ratio_row ppf (name, measured, paper) =
  Fmt.pf ppf "  %-14s %10.2fx        %8.2fx@." name measured paper

let bar width max_v v =
  let n = int_of_float (v /. max_v *. float width) in
  String.make (max 0 (min width n)) '#'

(* --- Fig. 10: relative runtime --------------------------------------- *)

let fig10 ?pool sz =
  Fmt.pr "@.=== Fig. 10 — relative runtime overhead  [T_flavor / T_vanilla]@.";
  Fmt.pr "(median of %d runs after 1 warmup; per-process runtime semantics, see EXPERIMENTS.md)@." sz.repeats;
  let apps =
    [
      ( "Jacobi",
        jacobi_app sz,
        Paper_ref.fig10_jacobi,
        Paper_ref.vanilla_runtime_jacobi );
      ( "TeaLeaf",
        tealeaf_app sz,
        Paper_ref.fig10_tealeaf,
        Paper_ref.vanilla_runtime_tealeaf );
    ]
  in
  (* Every (app × flavor) cell — vanilla included — is an independent
     measurement, so compute them all first (concurrently on the pool)
     and print afterwards from the collected values. *)
  let cells =
    List.concat_map
      (fun (name, mk_app, paper, _) ->
        List.map (fun f -> (name, mk_app, f)) ("vanilla" :: List.map fst paper))
      apps
  in
  let timed =
    run_cells ?pool
      (fun (app, mk_app, fname) ->
        let flavor =
          if fname = "vanilla" then F.Vanilla else Option.get (F.of_string fname)
        in
        let t, _, _ = measure ?pool ~repeats:sz.repeats ~flavor mk_app in
        ((app, fname), t))
      cells
  in
  let time app fname = List.assoc (app, fname) timed in
  let one (name, _, paper, vanilla_paper) =
    let v = time name "vanilla" in
    Fmt.pr "@.%s  (vanilla: %.3f s simulated; paper vanilla: %.2f s on V100)@."
      name v vanilla_paper;
    Fmt.pr "  %-14s %11s %16s@." "flavor" "measured" "paper";
    let rows =
      List.map
        (fun (fname, paper_x) -> (fname, time name fname /. v, paper_x))
        paper
    in
    List.iter (fun r -> pp_ratio_row Fmt.stdout r) rows;
    let maxr = List.fold_left (fun a (_, m, p) -> max a (max m p)) 1. rows in
    List.iter
      (fun (n, m, _) -> Fmt.pr "  %-14s |%s@." n (bar 46 maxr m))
      rows;
    rows
  in
  match List.map one apps with [ j; t ] -> (j, t) | _ -> assert false

(* --- Fig. 11: relative memory ----------------------------------------- *)

let fig11 sz =
  Fmt.pr "@.=== Fig. 11 — relative memory overhead  [M_flavor / M_vanilla] at MPI_Finalize@.";
  let one name mk_app paper vanilla_paper_mb =
    let _, v, _ = measure ~repeats:1 ~flavor:F.Vanilla mk_app in
    Fmt.pr "@.%s  (vanilla: %.2f MB simulated; paper vanilla RSS: %.0f MB —@."
      name (v /. 1048576.) vanilla_paper_mb;
    Fmt.pr "   the simulator lacks the ~300 MB driver/MPI baseline, so ratios run higher)@.";
    Fmt.pr "  %-14s %11s %12s %16s@." "flavor" "measured" "abs [MB]" "paper";
    List.map
      (fun (fname, paper_x) ->
        let flavor = Option.get (F.of_string fname) in
        let _, m, _ = measure ~repeats:1 ~flavor mk_app in
        Fmt.pr "  %-14s %10.2fx %9.2f MB %11.2fx@." fname (m /. v)
          (m /. 1048576.) paper_x;
        (fname, m /. v, paper_x))
      paper
  in
  let j =
    one "Jacobi" (jacobi_app sz) Paper_ref.fig11_jacobi
      Paper_ref.vanilla_rss_jacobi_mb
  in
  let t =
    one "TeaLeaf" (tealeaf_app sz) Paper_ref.fig11_tealeaf
      Paper_ref.vanilla_rss_tealeaf_mb
  in
  (j, t)

(* --- Table I: event counters ------------------------------------------- *)

let table1 sz =
  Fmt.pr "@.=== Table I — CUDA and TSan runtime event counters (one MPI process, MUST & CuSan)@.";
  Fmt.pr "(our workloads are scaled down; paper columns are for the paper's run sizes)@.";
  let _, _, rj = measure ~repeats:1 ~flavor:F.Must_cusan (jacobi_app sz) in
  let _, _, rt = measure ~repeats:1 ~flavor:F.Must_cusan (tealeaf_app sz) in
  let cj = rj.R.cuda_counters and ct = rt.R.cuda_counters in
  let tj = rj.R.tsan_counters and tt = rt.R.tsan_counters in
  let ours metric =
    let i = float_of_int in
    match metric with
    | "Stream" -> (i cj.Cusan.Counters.streams, i ct.Cusan.Counters.streams)
    | "Memset" -> (i cj.Cusan.Counters.memsets, i ct.Cusan.Counters.memsets)
    | "Memcpy" -> (i cj.Cusan.Counters.memcpys, i ct.Cusan.Counters.memcpys)
    | "Synchronization calls" -> (i cj.Cusan.Counters.syncs, i ct.Cusan.Counters.syncs)
    | "Kernel calls" -> (i cj.Cusan.Counters.kernels, i ct.Cusan.Counters.kernels)
    | "Switch To Fiber" ->
        (i tj.Tsan.Counters.fiber_switches, i tt.Tsan.Counters.fiber_switches)
    | "AnnotateHappensBefore" ->
        (i tj.Tsan.Counters.happens_before, i tt.Tsan.Counters.happens_before)
    | "AnnotateHappensAfter" ->
        (i tj.Tsan.Counters.happens_after, i tt.Tsan.Counters.happens_after)
    | "Memory Read Range" ->
        (i tj.Tsan.Counters.read_ranges, i tt.Tsan.Counters.read_ranges)
    | "Memory Write Range" ->
        (i tj.Tsan.Counters.write_ranges, i tt.Tsan.Counters.write_ranges)
    | "Memory Read Size [avg KB]" ->
        (Tsan.Counters.read_avg_kb tj, Tsan.Counters.read_avg_kb tt)
    | "Memory Write Size [avg KB]" ->
        (Tsan.Counters.write_avg_kb tj, Tsan.Counters.write_avg_kb tt)
    | _ -> (nan, nan)
  in
  Fmt.pr "  %-28s %12s %12s %14s %12s@." "Metric" "Jacobi" "TeaLeaf" "paper-Jacobi"
    "paper-TeaLeaf";
  List.iter
    (fun (row : Paper_ref.table1_row) ->
      let j, t = ours row.Paper_ref.metric in
      Fmt.pr "  %-28s %12.2f %12.2f %14.2f %12.2f@." row.Paper_ref.metric j t
        row.Paper_ref.jacobi row.Paper_ref.tealeaf)
    Paper_ref.table1;
  (rj, rt)

(* --- Fig. 12: Jacobi scaling -------------------------------------------- *)

let fig12 ?pool sz =
  Fmt.pr "@.=== Fig. 12 — Jacobi scaling: CuSan overhead vs. global domain size@.";
  Fmt.pr "(paper sweeps %s; we sweep scaled-down domains — the shape, overhead rising@."
    (String.concat " " Paper_ref.fig12_domains_paper);
  Fmt.pr " with the bytes tracked by TSan, is the reproduction target)@.";
  Fmt.pr "  %-12s %12s %12s %10s %14s %14s@." "domain" "vanilla[s]" "CuSan[s]"
    "rel" "TSan reads" "TSan writes";
  (* 2 cells per domain size (vanilla / CuSan), all independent:
     computed on the pool, printed afterwards in domain order. *)
  let cells =
    List.concat_map
      (fun (nx, ny) -> [ (nx, ny, F.Vanilla); (nx, ny, F.Cusan) ])
      sz.fig12_domains
  in
  let timed =
    run_cells ?pool
      (fun (nx, ny, flavor) ->
        let mk () =
          let cfg =
            Apps.Jacobi.config ~nx ~ny ~iters:sz.fig12_iters
              ~norm_every:sz.fig12_iters ~nranks:2 ()
          in
          Apps.Jacobi.app cfg
        in
        let t, _, res = measure ?pool ~repeats:sz.repeats ~flavor mk in
        ((nx, ny, flavor), (t, res)))
      cells
  in
  List.map
    (fun (nx, ny) ->
      let v, _ = List.assoc (nx, ny, F.Vanilla) timed in
      let c, res = List.assoc (nx, ny, F.Cusan) timed in
      let mb x = float_of_int x /. 1048576. in
      Fmt.pr "  %4dx%-7d %12.4f %12.4f %9.1fx %11.1f MB %11.1f MB@." nx ny v c
        (c /. v)
        (mb res.R.tracked_read_bytes)
        (mb res.R.tracked_write_bytes);
      (nx, ny, v, c, res.R.tracked_read_bytes, res.R.tracked_write_bytes))
    sz.fig12_domains

(* --- Ablations ------------------------------------------------------------ *)

let ablation sz =
  Fmt.pr "@.=== Ablation A — shadow-cell granularity (CuSan, Jacobi)@.";
  Fmt.pr "  %-10s %12s %10s %14s@." "granule" "CuSan[s]" "rel" "RSS [MB]";
  let mk = jacobi_app sz in
  let v, _, _ = measure ~repeats:sz.repeats ~flavor:F.Vanilla mk in
  List.iter
    (fun granule ->
      let c, rss, _ = measure ~repeats:sz.repeats ~granule ~flavor:F.Cusan mk in
      Fmt.pr "  %6d B  %12.4f %9.1fx %11.2f MB@." granule c (c /. v)
        (rss /. 1048576.))
    [ 4; 8; 16; 32; 64 ];
  Fmt.pr "@.=== Ablation B — bounded range annotation (Section VI-D's proposed optimization)@.";
  Fmt.pr "(cap the bytes annotated per kernel argument instead of whole allocations)@.";
  Fmt.pr "  %-12s %12s %10s %14s@." "cap" "CuSan[s]" "rel" "tracked MB";
  List.iter
    (fun cap ->
      let c, _, res =
        measure ~repeats:sz.repeats ?max_range_bytes:cap ~flavor:F.Cusan mk
      in
      let tracked =
        float_of_int (res.R.tracked_read_bytes + res.R.tracked_write_bytes)
        /. 1048576.
      in
      Fmt.pr "  %-12s %12.4f %9.1fx %11.1f MB@."
        (match cap with None -> "whole alloc" | Some c -> Fmt.str "%d KB" (c / 1024))
        c (c /. v) tracked)
    [ None; Some (256 * 1024); Some (64 * 1024); Some (8 * 1024) ];
  Fmt.pr "@.=== Ablation B' — precise (interval-analysis) annotation vs. whole-allocation@.";
  Fmt.pr "(the sound variant of Section VI-D: ranges derived per launch from the kernel IR)@.";
  Fmt.pr "  %-12s %12s %10s %14s@." "mode" "CuSan[s]" "rel" "tracked MB";
  List.iter
    (fun (name, annotation) ->
      let c, _, res = measure ~repeats:sz.repeats ?annotation ~flavor:F.Cusan mk in
      let tracked =
        float_of_int (res.R.tracked_read_bytes + res.R.tracked_write_bytes)
        /. 1048576.
      in
      Fmt.pr "  %-12s %12.4f %9.1fx %11.1f MB@." name c (c /. v) tracked)
    [ ("whole", None); ("precise", Some Cusan.Runtime.Precise) ];
  Fmt.pr "  (Jacobi's compute kernel genuinely touches the whole domain, so the gain@.";
  Fmt.pr "   here is bounded; precise mode's headline is removing false positives on@.";
  Fmt.pr "   slice-parallel kernels — see test/test_range.ml.)@.";
  Fmt.pr "@.=== Ablation C — eager vs. deferred device execution (verdict stability)@.";
  let verdicts mode =
    let vs = Testsuite.Runner.run_all ~mode () in
    Testsuite.Runner.summary vs
  in
  let pe, te = verdicts Cudasim.Device.Eager in
  let pd, td = verdicts Cudasim.Device.Deferred in
  Fmt.pr "  eager:    %d/%d testsuite cases correct@." pe te;
  Fmt.pr "  deferred: %d/%d testsuite cases correct@." pd td
