(* Regenerates every table and figure of the paper's evaluation section
   from the simulator. Benchmark methodology follows the paper: each
   configuration runs once for warmup plus [repeats] measured runs, and
   the reported value is the average (Section V, "Benchmark setup"). *)

module F = Harness.Flavor
module R = Harness.Run

type sizes = {
  jacobi_nx : int;
  jacobi_ny : int;
  jacobi_iters : int;
  tealeaf_nx : int;
  tealeaf_ny : int;
  tealeaf_steps : int;
  tealeaf_cg : int;
  repeats : int;
  fig12_domains : (int * int) list;
  fig12_iters : int;
}

let default_sizes =
  {
    jacobi_nx = 512;
    jacobi_ny = 256;
    jacobi_iters = 100;
    tealeaf_nx = 64;
    tealeaf_ny = 64;
    tealeaf_steps = 4;
    tealeaf_cg = 12;
    repeats = 4;
    fig12_domains = [ (64, 32); (128, 64); (256, 128); (512, 256); (1024, 512) ];
    fig12_iters = 60;
  }

(* The flat-arena shadow dropped per-cell overheads to ~1.0-1.8x, which
   also shrank the absolute quick-cell runtimes to the point where
   scheduling noise swamped a 10% drift gate. Quick mode therefore runs
   more iterations (cells in the tens of milliseconds, noise < a few
   percent) and a wider median; the whole quick sweep still finishes in
   well under a minute. *)
let quick_sizes =
  {
    default_sizes with
    jacobi_nx = 256;
    jacobi_ny = 128;
    jacobi_iters = 400;
    tealeaf_steps = 3;
    tealeaf_cg = 10;
    repeats = 7;
    fig12_domains = [ (64, 32); (128, 64); (256, 128) ];
    fig12_iters = 100;
  }

let jacobi_app sz () =
  let cfg =
    Apps.Jacobi.config ~nx:sz.jacobi_nx ~ny:sz.jacobi_ny ~iters:sz.jacobi_iters
      ~norm_every:(sz.jacobi_iters / 2) ~nranks:2 ()
  in
  Apps.Jacobi.app cfg

let tealeaf_app sz () =
  let cfg =
    Apps.Tealeaf.config ~nx:sz.tealeaf_nx ~ny:sz.tealeaf_ny
      ~steps:sz.tealeaf_steps ~cg_iters:sz.tealeaf_cg ~nranks:2 ()
  in
  Apps.Tealeaf.app cfg

let median_of f results =
  let xs = List.map f results |> List.sort Float.compare |> Array.of_list in
  let n = Array.length xs in
  if n mod 2 = 1 then xs.(n / 2) else (xs.((n / 2) - 1) +. xs.(n / 2)) /. 2.

(* One warmup + [repeats] measured runs; averages of runtime and memory,
   last run's full result for counters.

   With [?pool] (when the caller's cell is itself a pool task) the
   warmup runs concurrently with other cells, but the measured repeats
   are wrapped in [Pool.exclusively]: the pool drains, the timed runs
   execute with every other worker idle, and the pool resumes — so
   parallel cells never pollute each other's timings. *)
let measure ?pool ?(repeats = 4) ?granule ?annotation ?max_range_bytes ~flavor
    mk_app =
  ignore (R.run ~nranks:2 ?granule ?annotation ?max_range_bytes ~flavor (mk_app ()));
  let timed () =
    List.init repeats (fun _ ->
        R.run ~nranks:2 ?granule ?annotation ?max_range_bytes ~flavor (mk_app ()))
  in
  let results =
    match pool with None -> timed () | Some p -> Pool.exclusively p timed
  in
  let avg f = List.fold_left (fun a r -> a +. f r) 0. results /. float repeats in
  (* Median for runtime: the short quick-size runs are sub-millisecond,
     where a single scheduling hiccup can double the mean; the median
     keeps overhead ratios stable enough for benchdiff's CI gate. *)
  let proc_s = median_of (fun r -> r.R.proc_s) results in
  let rss = avg (fun r -> float r.R.rss_bytes) in
  (proc_s, rss, List.nth results (repeats - 1))

(* Overhead ratios divide a flavor's runtime by vanilla's, so both sides
   must see the same machine. Measuring them as separate cells lets
   correlated machine-speed drift (a throttling CI runner, a co-tenant
   burst minutes apart) land on one side of the division and masquerade
   as an overhead change. Instead a ratio cell runs interleaved rounds —
   vanilla then flavor, back to back inside one exclusive window — and
   reports the median of the per-round ratios: drift hits both runs of a
   round and cancels. The vanilla median and the last flavor result ride
   along for absolute-time display and counter reporting. *)
let measure_ratio ?pool ?(repeats = 4) ~flavor mk_app =
  ignore (R.run ~nranks:2 ~flavor:F.Vanilla (mk_app ()));
  let warm = R.run ~nranks:2 ~flavor (mk_app ()) in
  let timed () =
    List.init repeats (fun _ ->
        (* drain GC debt so the collector's timing is not carried from
           one side of the ratio into the other: the combined flavors
           allocate far more than vanilla, and a major slice landing in
           the vanilla run of the next round skews the pair *)
        Gc.full_major ();
        let v = R.run ~nranks:2 ~flavor:F.Vanilla (mk_app ()) in
        Gc.full_major ();
        let f = R.run ~nranks:2 ~flavor (mk_app ()) in
        (v, f))
  in
  let rounds =
    match pool with None -> timed () | Some p -> Pool.exclusively p timed
  in
  let ratio = median_of (fun (v, f) -> f.R.proc_s /. v.R.proc_s) rounds in
  let vanilla_s = median_of (fun (v, _) -> v.R.proc_s) rounds in
  let last = match List.rev rounds with (_, f) :: _ -> f | [] -> warm in
  (ratio, vanilla_s, last)

(* Evaluate independent bench cells: on the pool when one is given
   (results in input order, so downstream printing is deterministic),
   sequentially otherwise. *)
let run_cells ?pool f xs =
  match pool with None -> List.map f xs | Some p -> Pool.map_pool p f xs

let pp_ratio_row ppf (name, measured, paper) =
  Fmt.pf ppf "  %-14s %10.2fx        %8.2fx@." name measured paper

let bar width max_v v =
  let n = int_of_float (v /. max_v *. float width) in
  String.make (max 0 (min width n)) '#'

(* --- Fig. 10: relative runtime --------------------------------------- *)

let fig10 ?pool sz =
  Fmt.pr "@.=== Fig. 10 — relative runtime overhead  [T_flavor / T_vanilla]@.";
  Fmt.pr "(median of %d interleaved vanilla/flavor run pairs after warmup; per-process runtime semantics, see EXPERIMENTS.md)@." sz.repeats;
  let apps =
    [
      ( "Jacobi",
        jacobi_app sz,
        Paper_ref.fig10_jacobi,
        Paper_ref.vanilla_runtime_jacobi );
      ( "TeaLeaf",
        tealeaf_app sz,
        Paper_ref.fig10_tealeaf,
        Paper_ref.vanilla_runtime_tealeaf );
    ]
  in
  (* Every (app × flavor) cell is an independent measurement pairing
     the flavor against vanilla (see measure_ratio), so compute them
     all first (concurrently on the pool) and print afterwards from
     the collected values. *)
  let cells =
    List.concat_map
      (fun (name, mk_app, paper, _) ->
        List.map (fun (fname, _) -> (name, mk_app, fname)) paper)
      apps
  in
  let timed =
    run_cells ?pool
      (fun (app, mk_app, fname) ->
        let flavor = Option.get (F.of_string fname) in
        let ratio, vanilla_s, _ =
          measure_ratio ?pool ~repeats:sz.repeats ~flavor mk_app
        in
        ((app, fname), (ratio, vanilla_s)))
      cells
  in
  let cell app fname = List.assoc (app, fname) timed in
  let one (name, _, paper, vanilla_paper) =
    let v =
      median_of (fun (fname, _) -> snd (cell name fname)) paper
    in
    Fmt.pr "@.%s  (vanilla: %.3f s simulated; paper vanilla: %.2f s on V100)@."
      name v vanilla_paper;
    Fmt.pr "  %-14s %11s %16s@." "flavor" "measured" "paper";
    let rows =
      List.map
        (fun (fname, paper_x) -> (fname, fst (cell name fname), paper_x))
        paper
    in
    List.iter (fun r -> pp_ratio_row Fmt.stdout r) rows;
    let maxr = List.fold_left (fun a (_, m, p) -> max a (max m p)) 1. rows in
    List.iter
      (fun (n, m, _) -> Fmt.pr "  %-14s |%s@." n (bar 46 maxr m))
      rows;
    rows
  in
  match List.map one apps with [ j; t ] -> (j, t) | _ -> assert false

(* --- Fig. 11: relative memory ----------------------------------------- *)

let fig11 sz =
  Fmt.pr "@.=== Fig. 11 — relative memory overhead  [M_flavor / M_vanilla] at MPI_Finalize@.";
  let one name mk_app paper vanilla_paper_mb =
    let _, v, _ = measure ~repeats:1 ~flavor:F.Vanilla mk_app in
    Fmt.pr "@.%s  (vanilla: %.2f MB simulated; paper vanilla RSS: %.0f MB —@."
      name (v /. 1048576.) vanilla_paper_mb;
    Fmt.pr "   the simulator lacks the ~300 MB driver/MPI baseline, so ratios run higher)@.";
    Fmt.pr "  %-14s %11s %12s %16s@." "flavor" "measured" "abs [MB]" "paper";
    List.map
      (fun (fname, paper_x) ->
        let flavor = Option.get (F.of_string fname) in
        let _, m, _ = measure ~repeats:1 ~flavor mk_app in
        Fmt.pr "  %-14s %10.2fx %9.2f MB %11.2fx@." fname (m /. v)
          (m /. 1048576.) paper_x;
        (fname, m /. v, paper_x))
      paper
  in
  let j =
    one "Jacobi" (jacobi_app sz) Paper_ref.fig11_jacobi
      Paper_ref.vanilla_rss_jacobi_mb
  in
  let t =
    one "TeaLeaf" (tealeaf_app sz) Paper_ref.fig11_tealeaf
      Paper_ref.vanilla_rss_tealeaf_mb
  in
  (j, t)

(* --- Table I: event counters ------------------------------------------- *)

let table1 sz =
  Fmt.pr "@.=== Table I — CUDA and TSan runtime event counters (one MPI process, MUST & CuSan)@.";
  Fmt.pr "(our workloads are scaled down; paper columns are for the paper's run sizes)@.";
  let _, _, rj = measure ~repeats:1 ~flavor:F.Must_cusan (jacobi_app sz) in
  let _, _, rt = measure ~repeats:1 ~flavor:F.Must_cusan (tealeaf_app sz) in
  let cj = rj.R.cuda_counters and ct = rt.R.cuda_counters in
  let tj = rj.R.tsan_counters and tt = rt.R.tsan_counters in
  let ours metric =
    let i = float_of_int in
    match metric with
    | "Stream" -> (i cj.Cusan.Counters.streams, i ct.Cusan.Counters.streams)
    | "Memset" -> (i cj.Cusan.Counters.memsets, i ct.Cusan.Counters.memsets)
    | "Memcpy" -> (i cj.Cusan.Counters.memcpys, i ct.Cusan.Counters.memcpys)
    | "Synchronization calls" -> (i cj.Cusan.Counters.syncs, i ct.Cusan.Counters.syncs)
    | "Kernel calls" -> (i cj.Cusan.Counters.kernels, i ct.Cusan.Counters.kernels)
    | "Switch To Fiber" ->
        (i tj.Tsan.Counters.fiber_switches, i tt.Tsan.Counters.fiber_switches)
    | "AnnotateHappensBefore" ->
        (i tj.Tsan.Counters.happens_before, i tt.Tsan.Counters.happens_before)
    | "AnnotateHappensAfter" ->
        (i tj.Tsan.Counters.happens_after, i tt.Tsan.Counters.happens_after)
    | "Memory Read Range" ->
        (i tj.Tsan.Counters.read_ranges, i tt.Tsan.Counters.read_ranges)
    | "Memory Write Range" ->
        (i tj.Tsan.Counters.write_ranges, i tt.Tsan.Counters.write_ranges)
    | "Memory Read Size [avg KB]" ->
        (Tsan.Counters.read_avg_kb tj, Tsan.Counters.read_avg_kb tt)
    | "Memory Write Size [avg KB]" ->
        (Tsan.Counters.write_avg_kb tj, Tsan.Counters.write_avg_kb tt)
    | _ -> (nan, nan)
  in
  Fmt.pr "  %-28s %12s %12s %14s %12s@." "Metric" "Jacobi" "TeaLeaf" "paper-Jacobi"
    "paper-TeaLeaf";
  List.iter
    (fun (row : Paper_ref.table1_row) ->
      let j, t = ours row.Paper_ref.metric in
      Fmt.pr "  %-28s %12.2f %12.2f %14.2f %12.2f@." row.Paper_ref.metric j t
        row.Paper_ref.jacobi row.Paper_ref.tealeaf)
    Paper_ref.table1;
  (rj, rt)

(* --- Fig. 12: Jacobi scaling -------------------------------------------- *)

let fig12 ?pool sz =
  Fmt.pr "@.=== Fig. 12 — Jacobi scaling: CuSan overhead vs. global domain size@.";
  Fmt.pr "(paper sweeps %s; we sweep scaled-down domains — the shape, overhead rising@."
    (String.concat " " Paper_ref.fig12_domains_paper);
  Fmt.pr " with the bytes tracked by TSan, is the reproduction target)@.";
  Fmt.pr "  %-12s %12s %12s %10s %14s %14s@." "domain" "vanilla[s]" "CuSan[s]"
    "rel" "TSan reads" "TSan writes";
  (* One paired vanilla/CuSan ratio cell per domain size: computed on
     the pool, printed afterwards in domain order. *)
  let timed =
    run_cells ?pool
      (fun (nx, ny) ->
        let mk () =
          let cfg =
            Apps.Jacobi.config ~nx ~ny ~iters:sz.fig12_iters
              ~norm_every:sz.fig12_iters ~nranks:2 ()
          in
          Apps.Jacobi.app cfg
        in
        let ratio, vanilla_s, res =
          measure_ratio ?pool ~repeats:sz.repeats ~flavor:F.Cusan mk
        in
        ((nx, ny), (ratio, vanilla_s, res)))
      sz.fig12_domains
  in
  List.map
    (fun (nx, ny) ->
      let ratio, v, res = List.assoc (nx, ny) timed in
      let c = ratio *. v in
      let mb x = float_of_int x /. 1048576. in
      Fmt.pr "  %4dx%-7d %12.4f %12.4f %9.1fx %11.1f MB %11.1f MB@." nx ny v c
        (c /. v)
        (mb res.R.tracked_read_bytes)
        (mb res.R.tracked_write_bytes);
      (nx, ny, v, c, res.R.tracked_read_bytes, res.R.tracked_write_bytes))
    sz.fig12_domains

(* --- Ablations ------------------------------------------------------------ *)

let ablation sz =
  Fmt.pr "@.=== Ablation A — shadow-cell granularity (CuSan, Jacobi)@.";
  Fmt.pr "  %-10s %12s %10s %14s@." "granule" "CuSan[s]" "rel" "RSS [MB]";
  let mk = jacobi_app sz in
  let v, _, _ = measure ~repeats:sz.repeats ~flavor:F.Vanilla mk in
  List.iter
    (fun granule ->
      let c, rss, _ = measure ~repeats:sz.repeats ~granule ~flavor:F.Cusan mk in
      Fmt.pr "  %6d B  %12.4f %9.1fx %11.2f MB@." granule c (c /. v)
        (rss /. 1048576.))
    [ 4; 8; 16; 32; 64 ];
  Fmt.pr "@.=== Ablation B — bounded range annotation (Section VI-D's proposed optimization)@.";
  Fmt.pr "(cap the bytes annotated per kernel argument instead of whole allocations)@.";
  Fmt.pr "  %-12s %12s %10s %14s@." "cap" "CuSan[s]" "rel" "tracked MB";
  List.iter
    (fun cap ->
      let c, _, res =
        measure ~repeats:sz.repeats ?max_range_bytes:cap ~flavor:F.Cusan mk
      in
      let tracked =
        float_of_int (res.R.tracked_read_bytes + res.R.tracked_write_bytes)
        /. 1048576.
      in
      Fmt.pr "  %-12s %12.4f %9.1fx %11.1f MB@."
        (match cap with None -> "whole alloc" | Some c -> Fmt.str "%d KB" (c / 1024))
        c (c /. v) tracked)
    [ None; Some (256 * 1024); Some (64 * 1024); Some (8 * 1024) ];
  Fmt.pr "@.=== Ablation B' — precise (interval-analysis) annotation vs. whole-allocation@.";
  Fmt.pr "(the sound variant of Section VI-D: ranges derived per launch from the kernel IR)@.";
  Fmt.pr "  %-12s %12s %10s %14s@." "mode" "CuSan[s]" "rel" "tracked MB";
  List.iter
    (fun (name, annotation) ->
      let c, _, res = measure ~repeats:sz.repeats ?annotation ~flavor:F.Cusan mk in
      let tracked =
        float_of_int (res.R.tracked_read_bytes + res.R.tracked_write_bytes)
        /. 1048576.
      in
      Fmt.pr "  %-12s %12.4f %9.1fx %11.1f MB@." name c (c /. v) tracked)
    [ ("whole", None); ("precise", Some Cusan.Runtime.Precise) ];
  Fmt.pr "  (Jacobi's compute kernel genuinely touches the whole domain, so the gain@.";
  Fmt.pr "   here is bounded; precise mode's headline is removing false positives on@.";
  Fmt.pr "   slice-parallel kernels — see test/test_range.ml.)@.";
  Fmt.pr "@.=== Ablation C — eager vs. deferred device execution (verdict stability)@.";
  let verdicts mode =
    let vs = Testsuite.Runner.run_all ~mode () in
    Testsuite.Runner.summary vs
  in
  let pe, te = verdicts Cudasim.Device.Eager in
  let pd, td = verdicts Cudasim.Device.Deferred in
  Fmt.pr "  eager:    %d/%d testsuite cases correct@." pe te;
  Fmt.pr "  deferred: %d/%d testsuite cases correct@." pd td
