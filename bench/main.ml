(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (Fig. 10, Fig. 11, Table I, Fig. 12), the
   correctness testsuite summary, design-choice ablations, and Bechamel
   micro-benchmarks.

     dune exec bench/main.exe              # everything, default sizes
     dune exec bench/main.exe -- --quick   # smaller sizes, fewer repeats
     dune exec bench/main.exe -- fig10 fig12
     dune exec bench/main.exe -- -j 4 --json BENCH_run.json --quick

   -j N runs independent (app × tool-config) cells of fig10/fig12 and
   the testsuite on N worker domains; each timed section still executes
   with the pool drained (Pool.exclusively), so parallelism never
   pollutes a measurement. --json FILE writes a "cusan-bench/1" document
   with the fig10/fig12 overhead ratios — the input of benchdiff. *)

let usage () =
  Fmt.pr
    "usage: main.exe [--quick] [-j N] [--json FILE] [--trace FILE]@.\
    \       [fig10|fig11|table1|fig12|suite|ablation|micro]...@."

let die msg =
  Fmt.epr "bench: %s@." msg;
  usage ();
  exit 2

type opts = {
  quick : bool;
  jobs : int;
  json_out : string option;
  trace_out : string option;
  targets : string list;
}

let parse_args argv =
  let rec go acc = function
    | [] -> { acc with targets = List.rev acc.targets }
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--quick" :: rest -> go { acc with quick = true } rest
    | "-j" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> go { acc with jobs = n } rest
        | Some _ -> die "-j expects a non-negative integer"
        | None -> die (Fmt.str "-j expects an integer, got %S" v))
    | [ "-j" ] -> die "-j requires a value"
    | "--json" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with json_out = Some v } rest
    | [ "--json" ] | "--json" :: _ -> die "--json requires a file name"
    | "--trace" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with trace_out = Some v } rest
    | [ "--trace" ] | "--trace" :: _ -> die "--trace requires a file name"
    | t :: rest -> go { acc with targets = t :: acc.targets } rest
  in
  go
    { quick = false; jobs = 1; json_out = None; trace_out = None; targets = [] }
    argv

let () =
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  let wanted =
    if o.targets = [] then
      [ "fig10"; "fig11"; "table1"; "fig12"; "suite"; "ablation"; "micro" ]
    else o.targets
  in
  List.iter
    (fun t ->
      if
        not
          (List.mem t
             [ "fig10"; "fig11"; "table1"; "fig12"; "suite"; "ablation"; "micro" ])
      then die (Fmt.str "unknown target %S" t))
    wanted;
  let jobs = if o.jobs = 0 then Pool.default_workers () else o.jobs in
  (* The flight recorder is domain-local, so traced runs are sequential
     (timed sections are exclusively-held either way). *)
  let jobs =
    if o.trace_out <> None && jobs > 1 then begin
      Fmt.epr "bench: --trace forces -j 1 (recorder is domain-local)@.";
      1
    end
    else jobs
  in
  if o.trace_out <> None then Trace.Recorder.enable ();
  let sz = if o.quick then Figs.quick_sizes else Figs.default_sizes in
  Fmt.pr "CuSan reproduction benchmark harness%s%s@."
    (if o.quick then " (quick sizes)" else "")
    (if jobs > 1 then Fmt.str " (%d workers)" jobs else "");
  Fmt.pr "Jacobi %dx%d x%d iters, TeaLeaf %dx%d x%d steps x%d CG, %d repeats@."
    sz.Figs.jacobi_nx sz.Figs.jacobi_ny sz.Figs.jacobi_iters sz.Figs.tealeaf_nx
    sz.Figs.tealeaf_ny sz.Figs.tealeaf_steps sz.Figs.tealeaf_cg sz.Figs.repeats;
  (* One pool for the whole run; fig10/fig12/suite shard over it, the
     other targets stay sequential (their cells interleave printing or
     depend on each other). *)
  let pool = if jobs > 1 then Some (Pool.create ~workers:jobs) else None in
  let fig10_rows = ref None in
  let fig11_rows = ref None in
  let fig12_rows = ref None in
  let suite_sum = ref None in
  let micro_rows = ref None in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      List.iter
        (fun what ->
          match what with
          | "fig10" -> fig10_rows := Some (Figs.fig10 ?pool sz)
          | "fig11" -> fig11_rows := Some (Figs.fig11 sz)
          | "table1" -> ignore (Figs.table1 sz)
          | "fig12" -> fig12_rows := Some (Figs.fig12 ?pool sz)
          | "ablation" -> Figs.ablation sz
          | "micro" -> micro_rows := Some (Micro.run ())
          | "suite" ->
              let vs = Testsuite.Runner.run_matrix ~j:jobs () in
              let pass, total = Testsuite.Runner.summary vs in
              suite_sum := Some (pass, total);
              Fmt.pr "@.=== Correctness testsuite (Section VI-C)@.";
              Fmt.pr
                "  %d of %d cases classified correctly (paper: 49/49 at v1.0)@."
                pass total;
              List.iter
                (fun v ->
                  if not v.Testsuite.Runner.pass then
                    Fmt.pr "  %a@." Testsuite.Runner.pp_verdict v)
                vs
          | _ -> assert false)
        wanted);
  (match o.json_out with
  | None -> ()
  | Some path ->
      let open Reporting.Mjson in
      let fig10_json =
        match !fig10_rows with
        | None -> []
        | Some (j, t) ->
            let rows app =
              List.map (fun (flavor, rel, paper) ->
                  Obj
                    [
                      ("app", Str app);
                      ("flavor", Str flavor);
                      ("rel", Float rel);
                      ("paper", Float paper);
                    ])
            in
            [ ("fig10", List (rows "Jacobi" j @ rows "TeaLeaf" t)) ]
      in
      let fig11_json =
        match !fig11_rows with
        | None -> []
        | Some (j, t) ->
            let rows app =
              List.map (fun (flavor, rel, paper) ->
                  Obj
                    [
                      ("app", Str app);
                      ("flavor", Str flavor);
                      ("rel", Float rel);
                      ("paper", Float paper);
                    ])
            in
            [ ("fig11", List (rows "Jacobi" j @ rows "TeaLeaf" t)) ]
      in
      let fig12_json =
        match !fig12_rows with
        | None -> []
        | Some rows ->
            [
              ( "fig12",
                List
                  (List.map
                     (fun (nx, ny, v, c, rd, wr) ->
                       Obj
                         [
                           ("nx", Int nx);
                           ("ny", Int ny);
                           ("vanilla_s", Float v);
                           ("cusan_s", Float c);
                           ("rel", Float (c /. v));
                           ("read_bytes", Int rd);
                           ("write_bytes", Int wr);
                         ])
                     rows) );
            ]
      in
      let suite_json =
        match !suite_sum with
        | None -> []
        | Some (pass, total) ->
            [ ("suite", Obj [ ("pass", Int pass); ("total", Int total) ]) ]
      in
      let micro_json =
        match !micro_rows with
        | None -> []
        | Some rows ->
            [
              ( "micro",
                List
                  (List.map
                     (fun (name, ns) ->
                       Obj [ ("name", Str name); ("ns", Float ns) ])
                     rows) );
            ]
      in
      let doc =
        Obj
          ([
             ("schema", Str "cusan-bench/1");
             ("quick", Bool o.quick);
             ("workers", Int jobs);
           ]
          @ fig10_json @ fig11_json @ fig12_json @ suite_json @ micro_json)
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (to_string_pretty doc));
      Fmt.pr "@.wrote %s@." path);
  (match o.trace_out with
  | None -> ()
  | Some path ->
      let events = Trace.Recorder.events () in
      Trace.Chrome.write_file path events;
      Fmt.epr "trace: wrote %s (%d events, %d dropped)@." path
        (List.length events) (Trace.Recorder.dropped ()));
  Fmt.pr "@.done.@."
