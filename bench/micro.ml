(* Bechamel micro-benchmarks of the building blocks whose costs the
   paper's evaluation attributes overhead to: TSan range annotations
   (the dominant factor, Section V-B), happens-before bookkeeping, fiber
   switches, and the compiler pass's kernel analysis. One grouped
   Test.make per experiment family. *)

open Bechamel
open Toolkit

let base = 1 lsl 36

let detector_with_region size =
  let d = Tsan.Detector.create () in
  Tsan.Detector.on_alloc d ~base ~size;
  d

let t_write_range bytes =
  let d = detector_with_region (max bytes 4096) in
  Test.make
    ~name:(Fmt.str "tsan/write_range %dB" bytes)
    (Staged.stage (fun () -> Tsan.Detector.write_range d ~addr:base ~len:bytes))

let t_read_range bytes =
  let d = detector_with_region (max bytes 4096) in
  Test.make
    ~name:(Fmt.str "tsan/read_range %dB" bytes)
    (Staged.stage (fun () -> Tsan.Detector.read_range d ~addr:base ~len:bytes))

let t_hb_ha =
  let d = detector_with_region 4096 in
  Test.make ~name:"tsan/happens-before+after pair"
    (Staged.stage (fun () ->
         Tsan.Detector.happens_before d 42;
         Tsan.Detector.happens_after d 42))

let t_switch =
  let d = detector_with_region 4096 in
  let f = Tsan.Detector.fiber_create d "bench" in
  let main = Tsan.Detector.main_fiber d in
  Test.make ~name:"tsan/fiber switch (sync) roundtrip"
    (Staged.stage (fun () ->
         Tsan.Detector.switch_to_fiber_sync d f;
         Tsan.Detector.switch_to_fiber d main))

let t_vclock_join =
  let a = Tsan.Vclock.create () and b = Tsan.Vclock.create () in
  for i = 0 to 15 do
    Tsan.Vclock.set a i i;
    Tsan.Vclock.set b i (16 - i)
  done;
  Test.make ~name:"tsan/vclock join (16 fibers)"
    (Staged.stage (fun () -> Tsan.Vclock.join a b))

(* Cold-path variants: the page-level same-epoch skip cannot fire.
   [fresh-epoch] advances the caller's epoch before every range, so each
   walk re-stamps the page summaries; [stride cold] additionally
   scatters short accesses across the pages of a 1 MiB region whose
   pages were all partially touched up front, so the walk works on
   materialized per-cell chunks instead of uniform summaries. Without
   these, the range rows only ever measure the cache-hot fast path. *)
let t_write_range_fresh_epoch bytes =
  let d = detector_with_region (max bytes 4096) in
  Test.make
    ~name:(Fmt.str "tsan/write_range %dB fresh-epoch" bytes)
    (Staged.stage (fun () ->
         Tsan.Detector.happens_before d 7;
         Tsan.Detector.write_range d ~addr:base ~len:bytes))

let t_read_range_fresh_epoch bytes =
  let d = detector_with_region (max bytes 4096) in
  Test.make
    ~name:(Fmt.str "tsan/read_range %dB fresh-epoch" bytes)
    (Staged.stage (fun () ->
         Tsan.Detector.happens_before d 7;
         Tsan.Detector.read_range d ~addr:base ~len:bytes))

let t_write_range_stride =
  let size = 1 lsl 20 in
  let d = detector_with_region size in
  let page_app_bytes = Tsan.Shadow.cells_per_page * 8 in
  (* partially touch every page so its shadow is a per-cell chunk *)
  let p = ref 8 in
  while !p < size do
    Tsan.Detector.write_range d ~addr:(base + !p) ~len:8;
    p := !p + page_app_bytes
  done;
  let pos = ref 0 in
  Test.make ~name:"tsan/write_range 64B stride cold"
    (Staged.stage (fun () ->
         Tsan.Detector.happens_before d 9;
         Tsan.Detector.write_range d ~addr:(base + !pos) ~len:64;
         pos := (!pos + page_app_bytes + 64) mod (size - 64)))

let t_kernel_analysis =
  Test.make ~name:"cusan/kernel access analysis (Jacobi module)"
    (Staged.stage (fun () ->
         ignore (Cusan.Kernel_analysis.analyze Apps.Jacobi.device_module ~entry:"jacobi")))

let t_typeart_lookup =
  Typeart.Rt.reset ();
  Typeart.Rt.set_enabled true;
  let p = Typeart.Pass.alloc Memsim.Space.Device Typeart.Typedb.F64 1024 in
  let addr = Memsim.Ptr.addr p + 512 in
  Test.make ~name:"typeart/interior pointer lookup"
    (Staged.stage (fun () -> ignore (Typeart.Pass.extent_at addr)))

let tests =
  Test.make_grouped ~name:"cusan-micro"
    [
      t_write_range 64;
      t_write_range 4096;
      t_write_range 65536;
      t_read_range 4096;
      t_write_range_fresh_epoch 4096;
      t_read_range_fresh_epoch 4096;
      t_write_range_stride;
      t_hb_ha;
      t_switch;
      t_vclock_join;
      t_kernel_analysis;
      t_typeart_lookup;
    ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "@.=== Micro-benchmarks (Bechamel, monotonic clock)@.";
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some [ t ] -> (name, t) :: acc
        | _ -> acc)
      results []
  in
  let rows = List.sort compare rows in
  List.iter (fun (name, t) -> Fmt.pr "  %-45s %12.1f ns/op@." name t) rows;
  rows
