(* Compare a bench JSON artifact (bench/main.exe --json) against a
   committed baseline and gate on overhead-ratio drift. The CI benchdiff
   job runs this against BENCH_baseline.json; exit 1 means at least one
   fig10/fig12 overhead ratio regressed past the threshold (or vanished
   from the run), exit 2 means the invocation or the inputs were bad. *)

let usage () =
  Fmt.pr
    "usage: benchdiff --baseline FILE --run FILE [--threshold PCT]@.@.\
    \  --baseline FILE committed reference JSON (e.g. BENCH_baseline.json)@.\
    \  --run FILE      fresh bench JSON to check@.\
    \  --threshold PCT max allowed ratio growth in percent (default 25)@."

let die msg =
  Fmt.epr "benchdiff: %s@." msg;
  usage ();
  exit 2

type opts = {
  baseline : string option;
  run : string option;
  threshold : float;
}

let parse_args argv =
  let rec go acc = function
    | [] -> acc
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--baseline" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with baseline = Some v } rest
    | [ "--baseline" ] | "--baseline" :: _ -> die "--baseline requires a file"
    | "--run" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with run = Some v } rest
    | [ "--run" ] | "--run" :: _ -> die "--run requires a file"
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t >= 0. -> go { acc with threshold = t } rest
        | _ -> die (Fmt.str "--threshold expects a non-negative number, got %S" v))
    | [ "--threshold" ] -> die "--threshold requires a value"
    | arg :: _ -> die (Fmt.str "unknown argument %S" arg)
  in
  go { baseline = None; run = None; threshold = 25. } argv

let load_cells what path =
  let contents =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg -> die (Fmt.str "cannot read %s file: %s" what msg)
  in
  match Reporting.Mjson.of_string contents with
  | Error msg -> die (Fmt.str "%s %s is not valid JSON: %s" what path msg)
  | Ok j ->
      let cells = Reporting.Benchcmp.cells_of_json j in
      if cells = [] then
        die (Fmt.str "%s %s contains no fig10/fig12 overhead cells" what path);
      cells

let () =
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  let baseline_path =
    match o.baseline with Some p -> p | None -> die "--baseline is required"
  in
  let run_path =
    match o.run with Some p -> p | None -> die "--run is required"
  in
  let baseline = load_cells "baseline" baseline_path in
  let run = load_cells "run" run_path in
  (* Run cells the baseline has never heard of are an inputs problem,
     not a drift verdict: the gate can't vouch for a cell with no
     reference, so name each one and bail with usage-style guidance. *)
  (match Reporting.Benchcmp.unbaselined ~baseline ~run with
  | [] -> ()
  | missing ->
      Fmt.epr "benchdiff: %d run cell(s) missing from baseline %s:@."
        (List.length missing) baseline_path;
      List.iter
        (fun c ->
          Fmt.epr "  %-24s %8.3fx (no baseline entry)@."
            c.Reporting.Benchcmp.key c.Reporting.Benchcmp.value)
        missing;
      Fmt.epr
        "@.refresh the committed baseline to cover these cells, e.g.:@.\
        \  cp %s %s@.\
         or regenerate it with the bench harness before re-running benchdiff.@."
        run_path baseline_path;
      usage ();
      exit 2);
  let outcomes =
    Reporting.Benchcmp.compare ~threshold_pct:o.threshold ~baseline ~run
  in
  Fmt.pr "benchdiff: %s vs %s (threshold %+.0f%%)@." run_path baseline_path
    o.threshold;
  List.iter (fun oc -> Fmt.pr "  %a@." Reporting.Benchcmp.pp_outcome oc) outcomes;
  let failed = List.filter Reporting.Benchcmp.failed outcomes in
  if failed <> [] then begin
    Fmt.pr "@.%d of %d cells regressed beyond %.0f%%@." (List.length failed)
      (List.length outcomes) o.threshold;
    exit 1
  end
  else Fmt.pr "@.all %d cells within threshold@." (List.length outcomes)
