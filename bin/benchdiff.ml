(* Compare a bench JSON artifact (bench/main.exe --json) against a
   committed baseline and gate on overhead-ratio drift. The CI benchdiff
   job runs this against BENCH_baseline.json; exit 1 means at least one
   overhead cell regressed past the threshold (or vanished from the
   run), exit 2 means the invocation or the inputs were bad. --mode
   selects the cell family: macro (fig10/fig11/fig12 ratios, tight
   threshold) or micro (ns/op rows from bench micro, gated loosely
   against a separate BENCH_micro.json baseline). *)

let usage () =
  Fmt.pr
    "usage: benchdiff --baseline FILE --run FILE [--threshold PCT]@.\
    \       [--mode macro|micro|all] [--summary FILE]@.@.\
    \  --baseline FILE committed reference JSON (e.g. BENCH_baseline.json)@.\
    \  --run FILE      fresh bench JSON to check@.\
    \  --threshold PCT max allowed growth in percent (default 25)@.\
    \  --mode MODE     cell family to compare: macro = fig10/fig11/fig12@.\
    \                  overhead ratios, micro = micro/* ns rows (default all)@.\
    \  --summary FILE  append a markdown before/after table (for@.\
    \                  $GITHUB_STEP_SUMMARY)@."

let die msg =
  Fmt.epr "benchdiff: %s@." msg;
  usage ();
  exit 2

type opts = {
  baseline : string option;
  run : string option;
  threshold : float;
  mode : Reporting.Benchcmp.mode;
  summary : string option;
}

let parse_args argv =
  let rec go acc = function
    | [] -> acc
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--baseline" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with baseline = Some v } rest
    | [ "--baseline" ] | "--baseline" :: _ -> die "--baseline requires a file"
    | "--run" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with run = Some v } rest
    | [ "--run" ] | "--run" :: _ -> die "--run requires a file"
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t >= 0. -> go { acc with threshold = t } rest
        | _ -> die (Fmt.str "--threshold expects a non-negative number, got %S" v))
    | [ "--threshold" ] -> die "--threshold requires a value"
    | "--mode" :: v :: rest -> (
        match Reporting.Benchcmp.mode_of_string v with
        | Some m -> go { acc with mode = m } rest
        | None -> die (Fmt.str "--mode expects macro|micro|all, got %S" v))
    | [ "--mode" ] -> die "--mode requires a value"
    | "--summary" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with summary = Some v } rest
    | [ "--summary" ] | "--summary" :: _ -> die "--summary requires a file"
    | arg :: _ -> die (Fmt.str "unknown argument %S" arg)
  in
  go
    {
      baseline = None;
      run = None;
      threshold = 25.;
      mode = Reporting.Benchcmp.All;
      summary = None;
    }
    argv

let load_cells ~mode what path =
  let contents =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error msg -> die (Fmt.str "cannot read %s file: %s" what msg)
  in
  match Reporting.Mjson.of_string contents with
  | Error msg -> die (Fmt.str "%s %s is not valid JSON: %s" what path msg)
  | Ok j ->
      let cells =
        Reporting.Benchcmp.(filter_mode mode (cells_of_json j))
      in
      if cells = [] then
        die
          (Fmt.str "%s %s contains no overhead cells for the selected mode" what
             path);
      cells

(* Markdown rendition of the outcomes, appended to --summary FILE:
   GitHub renders $GITHUB_STEP_SUMMARY, so the per-cell deltas show up
   on the workflow run page without digging through logs. *)
let write_summary path ~run_path ~baseline_path ~threshold outcomes =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let p fmt = Printf.fprintf oc fmt in
      p "### benchdiff: `%s` vs `%s` (threshold %+.0f%%)\n\n" run_path
        baseline_path threshold;
      p "| cell | baseline | run | drift |\n|---|---:|---:|---:|\n";
      List.iter
        (fun oc_ ->
          match oc_ with
          | Reporting.Benchcmp.Ok_cell { key; base; run; drift_pct } ->
              p "| %s | %.3f | %.3f | %+.1f%% |\n" key base run drift_pct
          | Reporting.Benchcmp.Regressed { key; base; run; drift_pct } ->
              p "| **%s** | %.3f | %.3f | **%+.1f%%** ❌ |\n" key base run
                drift_pct
          | Reporting.Benchcmp.Missing { key; base } ->
              p "| **%s** | %.3f | absent | ❌ |\n" key base)
        outcomes;
      let failed = List.filter Reporting.Benchcmp.failed outcomes in
      if failed = [] then
        p "\nall %d cells within threshold\n\n" (List.length outcomes)
      else
        p "\n**%d of %d cells regressed beyond %.0f%%**\n\n"
          (List.length failed) (List.length outcomes) threshold)

let () =
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  let baseline_path =
    match o.baseline with Some p -> p | None -> die "--baseline is required"
  in
  let run_path =
    match o.run with Some p -> p | None -> die "--run is required"
  in
  let baseline = load_cells ~mode:o.mode "baseline" baseline_path in
  let run = load_cells ~mode:o.mode "run" run_path in
  (* Run cells the baseline has never heard of are an inputs problem,
     not a drift verdict: the gate can't vouch for a cell with no
     reference, so name each one and bail with usage-style guidance. *)
  (match Reporting.Benchcmp.unbaselined ~baseline ~run with
  | [] -> ()
  | missing ->
      Fmt.epr "benchdiff: %d run cell(s) missing from baseline %s:@."
        (List.length missing) baseline_path;
      List.iter
        (fun c ->
          Fmt.epr "  %-24s %8.3f (no baseline entry)@."
            c.Reporting.Benchcmp.key c.Reporting.Benchcmp.value)
        missing;
      Fmt.epr
        "@.refresh the committed baseline to cover these cells, e.g.:@.\
        \  cp %s %s@.\
         or regenerate it with the bench harness before re-running benchdiff.@."
        run_path baseline_path;
      usage ();
      exit 2);
  let outcomes =
    Reporting.Benchcmp.compare ~threshold_pct:o.threshold ~baseline ~run
  in
  Fmt.pr "benchdiff: %s vs %s (threshold %+.0f%%)@." run_path baseline_path
    o.threshold;
  List.iter (fun oc -> Fmt.pr "  %a@." Reporting.Benchcmp.pp_outcome oc) outcomes;
  Option.iter
    (fun path ->
      write_summary path ~run_path ~baseline_path ~threshold:o.threshold
        outcomes)
    o.summary;
  let failed = List.filter Reporting.Benchcmp.failed outcomes in
  if failed <> [] then begin
    Fmt.pr "@.%d of %d cells regressed beyond %.0f%%@." (List.length failed)
      (List.length outcomes) o.threshold;
    exit 1
  end
  else Fmt.pr "@.all %d cells within threshold@." (List.length outcomes)
