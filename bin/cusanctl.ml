(* cusanctl: the cusand client. Sends one request frame over the
   Unix-domain socket, prints the reply JSON on stdout, and maps the
   reply status onto the exit code.

   The retry loop is the client half of the daemon's backpressure
   contract: a busy/retry_after reply (or a daemon that is not up yet)
   is retried through Resilience.with_retries with the same seeded
   Prng-jittered exponential backoff the in-simulation recovery paths
   use — the yield counts are deterministic under --seed, and the
   client folds the daemon's retry_after hint and a wall-clock quantum
   into actual sleeps. *)

module Mjson = Reporting.Mjson

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "cusand.sock"

(* Seconds per backoff yield: Resilience hands us virtual yield counts
   (2, 4, 8, ... plus jitter); the client maps them to wall clock,
   scaled by the daemon's latest retry_after hint. *)
let quantum = 0.005

let usage () =
  Fmt.pr
    "usage: cusanctl [options] COMMAND@.@.\
     commands:@.\
    \  lint TARGET                static race lint of one kirlint target@.\
    \  soak CASE                  run one matrix case (see --faults/--fault-seed)@.\
    \  bench APP FLAVOR           run one bench cell (pingpong|jacobi|tealeaf)@.\
    \  boom                       chaos drill: crash a worker on purpose@.\
    \  spin STEPS                 wedge drill: occupy a worker until the@.\
    \                             step-budget watchdog fires@.\
    \  health                     liveness + queue depth@.\
    \  stats                      daemon counters@.\
    \  shutdown                   request a graceful drain@.@.\
     options:@.\
    \  --socket PATH     daemon socket (default %s)@.\
    \  --faults SPEC     fault plan for soak (cutests --faults grammar)@.\
    \  --fault-seed N    fault-plan seed for soak (default 0)@.\
    \  --seed N          backoff jitter seed (default 1)@.\
    \  --retries N       max attempts against busy/absent daemon (default 6)@.@.\
     exit codes: 0 ok, 1 job crashed (post-mortem printed), 2 client/protocol@.\
     error, 3 daemon unreachable or still busy after all retries@."
    default_socket

let die msg =
  Fmt.epr "cusanctl: %s@." msg;
  usage ();
  exit 2

type opts = {
  socket : string;
  faults : string option;
  fault_seed : int;
  seed : int;
  retries : int;
  rest : string list;
}

let parse_args argv =
  let rec go acc = function
    | [] -> acc
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--socket" :: v :: rest -> go { acc with socket = v } rest
    | "--faults" :: v :: rest -> go { acc with faults = Some v } rest
    | "--fault-seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n -> go { acc with fault_seed = n } rest
        | None -> die (Fmt.str "--fault-seed expects an integer, got %S" v))
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n -> go { acc with seed = n } rest
        | None -> die (Fmt.str "--seed expects an integer, got %S" v))
    | "--retries" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> go { acc with retries = n } rest
        | _ -> die (Fmt.str "--retries expects a positive integer, got %S" v))
    | [ ("--socket" | "--faults" | "--fault-seed" | "--seed" | "--retries") as f ]
      ->
        die (f ^ " requires a value")
    | arg :: rest -> go { acc with rest = acc.rest @ [ arg ] } rest
  in
  go
    {
      socket = default_socket;
      faults = None;
      fault_seed = 0;
      seed = 1;
      retries = 6;
      rest = [];
    }
    argv

let request_of_opts o : Server.Protocol.request =
  match o.rest with
  | [ "lint"; target ] -> Submit (Lint { target })
  | [ "soak"; case ] ->
      Submit (Soak { case; seed = o.fault_seed; faults = o.faults })
  | [ "bench"; app; flavor ] -> Submit (Bench { app; flavor })
  | [ "boom" ] -> Submit Boom
  | [ "spin"; n ] -> (
      match int_of_string_opt n with
      | Some steps when steps > 0 -> Submit (Spin { steps })
      | _ -> die (Fmt.str "spin expects a positive step count, got %S" n))
  | [ "health" ] -> Health
  | [ "stats" ] -> Stats
  | [ "shutdown" ] -> Shutdown
  | [] -> die "no command given"
  | cmd -> die (Fmt.str "bad command %S" (String.concat " " cmd))

(* One connection, one frame each way. *)
let roundtrip ~socket req : Mjson.t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.
   with Unix.Unix_error _ -> ());
  Server.Protocol.write_frame fd (Server.Protocol.request_to_json req);
  match Server.Protocol.read_frame fd with
  | Error e -> failwith (Server.Protocol.read_error_to_string e)
  | Ok line -> (
      match Mjson.of_string line with
      | Error msg -> failwith ("bad reply JSON: " ^ msg)
      | Ok j -> j)

exception Busy of int

let status j =
  match Mjson.member "status" j |> Fun.flip Option.bind Mjson.to_str with
  | Some s -> s
  | None -> "error"

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  let req = request_of_opts o in
  (* The daemon's retry_after hint scales the next sleep; 1 until the
     daemon says otherwise. *)
  let hint = ref 1 in
  let reply =
    try
      Resilience.with_retries ~label:"cusanctl" ~max_attempts:o.retries
        ~jitter:(Faultsim.Prng.create o.seed)
        ~on_backoff:(fun ~yields ->
          Unix.sleepf (quantum *. float_of_int (yields * !hint)))
        ~retryable:(function
          | Busy _ -> true
          | Unix.Unix_error
              ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET
                | Unix.EPIPE | Unix.EAGAIN ),
                _,
                _ ) ->
              (* daemon not up yet, or it went away mid-frame *)
              true
          | _ -> false)
        (fun ~attempt:_ ->
          let j = roundtrip ~socket:o.socket req in
          match status j with
          | "busy" ->
              hint :=
                (match
                   Mjson.member "retry_after" j
                   |> Fun.flip Option.bind Mjson.to_int
                 with
                | Some n when n > 0 -> n
                | _ -> 1);
              raise (Busy !hint)
          | _ -> j)
    with
    | Resilience.Retries_exhausted { attempts; last; _ } ->
        Fmt.epr "cusanctl: giving up after %d attempts (%s)@." attempts
          (Printexc.to_string last);
        exit 3
    | Failure msg ->
        Fmt.epr "cusanctl: %s@." msg;
        exit 2
    | Unix.Unix_error (e, fn, _) ->
        Fmt.epr "cusanctl: %s: %s (%s)@." o.socket (Unix.error_message e) fn;
        exit 3
  in
  print_endline (Mjson.to_string reply);
  match status reply with
  | "ok" -> exit 0
  | "crashed" -> exit 1
  | _ -> exit 2
