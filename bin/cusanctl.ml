(* cusanctl: the cusand client. Sends one request frame over the
   Unix-domain socket, prints the reply JSON on stdout, and maps the
   reply status onto the exit code.

   The retry loop is the client half of the daemon's backpressure
   contract: a busy/retry_after reply (or a daemon that is not up yet)
   is retried through Resilience.with_retries with the same seeded
   Prng-jittered exponential backoff the in-simulation recovery paths
   use — the yield counts are deterministic under --seed, and the
   client folds the daemon's retry_after hint and a wall-clock quantum
   into actual sleeps. Layered under it is a Resilience.Breaker
   circuit: consecutive connection failures open the circuit, after
   which attempts wait out a deterministic cooldown and probe
   half-open — so a client hammering a dead daemon backs off across
   requests (the bench campaign's many jobs), not just within one.

   Beyond single requests:
   - [watch JOB] subscribes to a running job's live event stream and
     prints frames until the terminal end/lagged frame;
   - [bench] (no app/flavor) runs a sustained deterministic campaign of
     lint/soak jobs, verifying every daemon verdict byte-for-byte
     against the same job computed in-process — the soak driver for
     kill/restart recovery testing. *)

module Mjson = Reporting.Mjson

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "cusand.sock"

(* Seconds per backoff yield: Resilience hands us virtual yield counts
   (2, 4, 8, ... plus jitter); the client maps them to wall clock,
   scaled by the daemon's latest retry_after hint. *)
let quantum = 0.005

let usage () =
  Fmt.pr
    "usage: cusanctl [options] COMMAND@.@.\
     commands:@.\
    \  lint TARGET                static race lint of one kirlint target@.\
    \  soak CASE                  run one matrix case (see --faults/--fault-seed)@.\
    \  bench APP FLAVOR           run one bench cell (pingpong|jacobi|tealeaf)@.\
    \  bench                      sustained campaign: --jobs deterministic@.\
    \                             lint/soak jobs, every verdict verified@.\
    \                             byte-for-byte against a local run@.\
    \  boom                       chaos drill: crash a worker on purpose@.\
    \  spin STEPS                 wedge drill: occupy a worker until the@.\
    \                             step-budget watchdog fires@.\
    \  watch JOB|COMMAND          tail a running job's live event stream@.\
    \                             (JOB is the 32-hex digest, or repeat the@.\
    \                             submit command to address it by content)@.\
    \  resize N                   set the worker-pool target (clamped to the@.\
    \                             daemon's --workers-min/max window)@.\
    \  health                     liveness + queue depth@.\
    \  stats                      daemon counters@.\
    \  shutdown                   request a graceful drain@.@.\
     options:@.\
    \  --socket PATH     daemon socket (default %s)@.\
    \  --faults SPEC     fault plan for soak (cutests --faults grammar)@.\
    \  --fault-seed N    fault-plan seed for soak (default 0)@.\
    \  --seed N          backoff jitter seed (default 1)@.\
    \  --retries N       max attempts against busy/absent daemon (default 6)@.\
    \  --jobs N          campaign length for bare bench (default 25)@.\
    \  --recheck         campaign: re-submit every distinct job afterwards@.\
    \                    and require a byte-identical cached:true reply@.@.\
     exit codes: 0 ok, 1 job crashed or campaign verdict mismatch (post-mortem@.\
     printed), 2 client/protocol error or lagged stream, 3 daemon unreachable@.\
     or still busy after all retries@."
    default_socket

let die msg =
  Fmt.epr "cusanctl: %s@." msg;
  usage ();
  exit 2

type opts = {
  socket : string;
  faults : string option;
  fault_seed : int;
  seed : int;
  retries : int;
  jobs : int;
  recheck : bool;
  rest : string list;
}

let parse_args argv =
  let rec go acc = function
    | [] -> acc
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--socket" :: v :: rest -> go { acc with socket = v } rest
    | "--faults" :: v :: rest -> go { acc with faults = Some v } rest
    | "--fault-seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n -> go { acc with fault_seed = n } rest
        | None -> die (Fmt.str "--fault-seed expects an integer, got %S" v))
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n -> go { acc with seed = n } rest
        | None -> die (Fmt.str "--seed expects an integer, got %S" v))
    | "--retries" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> go { acc with retries = n } rest
        | _ -> die (Fmt.str "--retries expects a positive integer, got %S" v))
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> go { acc with jobs = n } rest
        | _ -> die (Fmt.str "--jobs expects a positive integer, got %S" v))
    | "--recheck" :: rest -> go { acc with recheck = true } rest
    | [ ("--socket" | "--faults" | "--fault-seed" | "--seed" | "--retries"
        | "--jobs") as f ] ->
        die (f ^ " requires a value")
    | arg :: rest -> go { acc with rest = acc.rest @ [ arg ] } rest
  in
  go
    {
      socket = default_socket;
      faults = None;
      fault_seed = 0;
      seed = 1;
      retries = 6;
      jobs = 25;
      recheck = false;
      rest = [];
    }
    argv

let job_of_words o words : Server.Protocol.job =
  match words with
  | [ "lint"; target ] -> Lint { target }
  | [ "soak"; case ] -> Soak { case; seed = o.fault_seed; faults = o.faults }
  | [ "bench"; app; flavor ] -> Bench { app; flavor }
  | [ "boom" ] -> Boom
  | [ "spin"; n ] -> (
      match int_of_string_opt n with
      | Some steps when steps > 0 -> Spin { steps }
      | _ -> die (Fmt.str "spin expects a positive step count, got %S" n))
  | cmd -> die (Fmt.str "bad command %S" (String.concat " " cmd))

let is_hex_digest s =
  String.length s = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       s

type cmd =
  | Rpc of Server.Protocol.request
  | Watch of string  (* job digest *)
  | Campaign

let cmd_of_opts o : cmd =
  match o.rest with
  | [ "health" ] -> Rpc Health
  | [ "stats" ] -> Rpc Stats
  | [ "shutdown" ] -> Rpc Shutdown
  | [ "resize"; n ] -> (
      match int_of_string_opt n with
      | Some w when w > 0 -> Rpc (Resize w)
      | _ -> die (Fmt.str "resize expects a positive worker count, got %S" n))
  | "watch" :: spec -> (
      match spec with
      | [ d ] when is_hex_digest d -> Watch (String.lowercase_ascii d)
      | [] -> die "watch expects a job digest or a submit command"
      | words -> Watch (Server.Protocol.job_digest (job_of_words o words)))
  | [ "bench" ] -> Campaign
  | [] -> die "no command given"
  | words -> Rpc (Submit (job_of_words o words))

exception Conn_lost of string
(* The daemon went away mid-conversation (e.g. killed between our
   request and its reply) — a connection failure for the retry loop and
   the breaker, not a protocol error. *)

(* One connection, one frame each way. *)
let roundtrip ~socket req : Mjson.t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.
   with Unix.Unix_error _ -> ());
  Server.Protocol.write_frame fd (Server.Protocol.request_to_json req);
  match Server.Protocol.read_frame fd with
  | Error e -> raise (Conn_lost (Server.Protocol.read_error_to_string e))
  | Ok line -> (
      match Mjson.of_string line with
      | Error msg -> failwith ("bad reply JSON: " ^ msg)
      | Ok j -> j)

exception Busy of int

let is_conn_error = function
  | Conn_lost _ -> true
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EPIPE
        | Unix.EAGAIN ),
        _,
        _ ) ->
      (* daemon not up yet, or it went away mid-frame *)
      true
  | _ -> false

let status j =
  match Mjson.member "status" j |> Fun.flip Option.bind Mjson.to_str with
  | Some s -> s
  | None -> "error"

let str_member k j = Mjson.member k j |> Fun.flip Option.bind Mjson.to_str

(* One request under the full client policy: bounded seeded retries for
   busy replies and connection failures, gated by the circuit breaker
   (connection failures count against it; busy does not — a shedding
   daemon is alive). The breaker outlives single calls, so campaign
   jobs against a dead daemon share one cooldown ladder. *)
let rpc ~breaker o req : Mjson.t =
  let hint = ref 1 in
  Resilience.with_retries ~label:"cusanctl" ~max_attempts:o.retries
    ~jitter:(Faultsim.Prng.create o.seed)
    ~on_backoff:(fun ~yields ->
      Unix.sleepf (quantum *. float_of_int (yields * !hint)))
    ~retryable:(function Busy _ -> true | e -> is_conn_error e)
    (fun ~attempt:_ ->
      Resilience.Breaker.call breaker
        ~on_wait:(fun ~yields -> Unix.sleepf (quantum *. float_of_int yields))
        ~failure:is_conn_error
        (fun () ->
          let j = roundtrip ~socket:o.socket req in
          match status j with
          | "busy" ->
              hint :=
                (match
                   Mjson.member "retry_after" j
                   |> Fun.flip Option.bind Mjson.to_int
                 with
                | Some n when n > 0 -> n
                | _ -> 1);
              raise (Busy !hint)
          | _ -> j))

let exit_of_reply reply =
  match status reply with
  | "ok" -> exit 0
  | "crashed" -> exit 1
  | _ -> exit 2

(* --- watch: tail a running job's event stream --------------------------- *)

(* The stream is many frames on one connection, so reads go through a
   buffered channel (Protocol.read_frame would discard frames that
   arrive coalesced in one segment). *)
let watch ~breaker o digest =
  let open_stream ~attempt:_ =
    Resilience.Breaker.call breaker
      ~on_wait:(fun ~yields -> Unix.sleepf (quantum *. float_of_int yields))
      ~failure:is_conn_error
      (fun () ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        try
          Unix.connect fd (Unix.ADDR_UNIX o.socket);
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO 300.;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.
           with Unix.Unix_error _ -> ());
          Server.Protocol.write_frame fd
            (Server.Protocol.request_to_json (Subscribe { digest }));
          Unix.in_channel_of_descr fd
        with e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e)
  in
  let ic =
    Resilience.with_retries ~label:"cusanctl-watch" ~max_attempts:o.retries
      ~jitter:(Faultsim.Prng.create o.seed)
      ~on_backoff:(fun ~yields -> Unix.sleepf (quantum *. float_of_int yields))
      ~retryable:is_conn_error open_stream
  in
  let rec pump () =
    match input_line ic with
    | exception End_of_file ->
        Fmt.epr "cusanctl: stream closed without an end frame@.";
        exit 3
    | exception Sys_error msg ->
        Fmt.epr "cusanctl: stream read failed: %s@." msg;
        exit 3
    | line -> (
        print_endline line;
        match Mjson.of_string line with
        | Error msg ->
            Fmt.epr "cusanctl: bad stream frame: %s@." msg;
            exit 2
        | Ok j -> (
            match str_member "type" j with
            | Some "end" -> (
                match str_member "status" j with
                | Some ("ok" | "stalled" | "cached") -> exit 0
                | Some "crashed" -> exit 1
                | _ -> exit 2)
            | Some "lagged" ->
                Fmt.epr "cusanctl: dropped as a lagged subscriber@.";
                exit 2
            | Some _ -> pump ()
            | None ->
                (* a plain reply (e.g. "no such job" error): map it like
                   any single-frame conversation *)
                exit_of_reply j))
  in
  pump ()

(* --- bench campaign: the soak driver ------------------------------------ *)

(* A deterministic seeded mix of lint and soak jobs (the two cheap,
   verifiable job kinds). Every daemon verdict is compared byte-for-byte
   against the same job computed locally — cusanctl links the engine, so
   the client is its own oracle. This doubles as the kill/recover soak:
   run it, kill -9 the daemon mid-campaign, and the supervised restart
   plus journal recovery must keep every verdict byte-identical. *)
let campaign ~breaker o =
  let lints = Server.Engine.lint_target_ids () in
  let soaks = Server.Engine.soak_case_ids () in
  if lints = [] || soaks = [] then die "no lint targets or soak cases built in";
  let prng = Faultsim.Prng.create (o.seed + 7) in
  let pick lst =
    List.nth lst
      (min (List.length lst - 1)
         (int_of_float (Faultsim.Prng.float prng *. float_of_int (List.length lst))))
  in
  let mix =
    List.init o.jobs (fun _ : Server.Protocol.job ->
        if Faultsim.Prng.float prng < 0.5 then Lint { target = pick lints }
        else
          Soak
            {
              case = pick soaks;
              seed = int_of_float (Faultsim.Prng.float prng *. 8.);
              faults = None;
            })
  in
  (* Local oracle, memoised by digest (the campaign repeats jobs on
     purpose, to exercise the cache). *)
  let expected : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let expect digest job =
    match Hashtbl.find_opt expected digest with
    | Some bytes -> bytes
    | None ->
        let bytes =
          match Server.Engine.run_job job with
          | Ok result -> Mjson.to_string result
          | Error msg -> die ("campaign job failed locally: " ^ msg)
        in
        Hashtbl.replace expected digest bytes;
        bytes
  in
  let order = ref [] in (* distinct digests, first-submission order *)
  let ok = ref 0 and cache_hits = ref 0 and mismatches = ref 0 in
  let failed = ref 0 and unreachable = ref 0 in
  let consecutive_unreachable = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iteri
    (fun i job ->
      if !consecutive_unreachable < 3 then begin
        let digest = Server.Protocol.job_digest job in
        if not (Hashtbl.mem expected digest) then order := digest :: !order;
        let want = expect digest job in
        match rpc ~breaker o (Submit job) with
        | reply -> (
            consecutive_unreachable := 0;
            match status reply with
            | "ok" ->
                let got =
                  match Mjson.member "result" reply with
                  | Some r -> Mjson.to_string r
                  | None -> "<missing result>"
                in
                if got = want then begin
                  incr ok;
                  if
                    Mjson.member "cached" reply
                    |> Fun.flip Option.bind Mjson.to_bool
                    = Some true
                  then incr cache_hits
                end
                else begin
                  incr mismatches;
                  Fmt.epr "cusanctl: verdict mismatch on job %d (%s): %s@." i
                    (Server.Protocol.job_describe job) digest
                end
            | s ->
                incr failed;
                Fmt.epr "cusanctl: job %d (%s) answered %s@." i
                  (Server.Protocol.job_describe job) s)
        | exception Resilience.Retries_exhausted { attempts; last; _ } ->
            incr unreachable;
            incr consecutive_unreachable;
            Fmt.epr "cusanctl: job %d unreachable after %d attempts (%s)@." i
              attempts (Printexc.to_string last)
      end)
    mix;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let aborted = !consecutive_unreachable >= 3 in
  (* Recheck pass: every distinct job again, demanding a cache hit with
     the same bytes — duplicates must neither be lost nor recomputed. *)
  let recheck_hits = ref 0 and recheck_misses = ref 0 in
  if o.recheck && not aborted then
    List.iter
      (fun digest ->
        let job =
          (* recover the job from the digest via the expected table's
             companion list: recompute from the mix *)
          List.find (fun j -> Server.Protocol.job_digest j = digest) mix
        in
        match rpc ~breaker o (Submit job) with
        | reply ->
            let cached =
              Mjson.member "cached" reply |> Fun.flip Option.bind Mjson.to_bool
              = Some true
            in
            let got =
              match Mjson.member "result" reply with
              | Some r -> Mjson.to_string r
              | None -> "<missing result>"
            in
            if cached && got = Hashtbl.find expected digest then
              incr recheck_hits
            else begin
              incr recheck_misses;
              Fmt.epr "cusanctl: recheck %s: cached=%b, bytes %s@." digest
                cached
                (if got = Hashtbl.find expected digest then "match"
                 else "MISMATCH")
            end
        | exception Resilience.Retries_exhausted _ ->
            incr recheck_misses;
            Fmt.epr "cusanctl: recheck %s unreachable@." digest)
      (List.rev !order);
  let summary =
    Mjson.Obj
      ([
         ("schema", Mjson.Str Server.Protocol.schema);
         ("event", Mjson.Str "bench");
         ("jobs", Mjson.Int o.jobs);
         ("distinct", Mjson.Int (Hashtbl.length expected));
         ("ok", Mjson.Int !ok);
         ("cache_hits", Mjson.Int !cache_hits);
         ("mismatches", Mjson.Int !mismatches);
         ("failed", Mjson.Int !failed);
         ("unreachable", Mjson.Int !unreachable);
         ("aborted", Mjson.Bool aborted);
         ("elapsed_s", Mjson.Float elapsed_s);
         ( "jobs_per_s",
           Mjson.Float
             (if elapsed_s > 0. then float_of_int !ok /. elapsed_s else 0.) );
       ]
      @
      if o.recheck then
        [
          ( "recheck",
            Mjson.Obj
              [
                ("hits", Mjson.Int !recheck_hits);
                ("misses", Mjson.Int !recheck_misses);
              ] );
        ]
      else [])
  in
  print_endline (Mjson.to_string summary);
  if aborted || !unreachable > 0 then exit 3
  else if !mismatches > 0 || !failed > 0 || !recheck_misses > 0 then exit 1
  else exit 0

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  let breaker =
    Resilience.Breaker.create ~jitter:(Faultsim.Prng.create (o.seed + 1)) ()
  in
  match cmd_of_opts o with
  | Watch digest -> watch ~breaker o digest
  | Campaign -> campaign ~breaker o
  | Rpc req -> (
      match rpc ~breaker o req with
      | reply ->
          print_endline (Mjson.to_string reply);
          exit_of_reply reply
      | exception Resilience.Retries_exhausted { attempts; last; _ } ->
          Fmt.epr "cusanctl: giving up after %d attempts (%s)@." attempts
            (Printexc.to_string last);
          exit 3
      | exception Failure msg ->
          Fmt.epr "cusanctl: %s@." msg;
          exit 2
      | exception Unix.Unix_error (e, fn, _) ->
          Fmt.epr "cusanctl: %s: %s (%s)@." o.socket (Unix.error_message e) fn;
          exit 3)
