(* cusand: the long-running analysis daemon. Accepts lint / soak /
   bench jobs over a Unix-domain socket (the cusand/1 wire protocol),
   shards them across a domain pool, and survives anything a job does:
   crashes are reaped into post-mortem replies, wedges become watchdog
   [stalled] verdicts, overload is shed with retry_after hints, and
   SIGTERM drains gracefully — admission stops, in-flight jobs finish
   or are cancelled at the deadline, the final stats are flushed, and
   the process exits 0. See lib/server and DESIGN.md. *)

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "cusand.sock"

let usage () =
  Fmt.pr
    "usage: cusand [options]@.@.\
    \  --socket PATH      listen on PATH (default %s)@.\
    \  --workers N        worker domains (default 2)@.\
    \  --queue-max N      in-flight high-water mark; beyond it jobs are@.\
    \                     shed with a busy/retry_after reply (default 8)@.\
    \  --watchdog STEPS   scheduler step budget per job; wedged jobs@.\
    \                     become stalled verdicts (default %d)@.\
    \  --cache-cap N      max cached results, 0 disables (default 1024)@.\
    \  --drain-timeout S  wall-clock budget for in-flight jobs at drain@.\
    \                     (default 30)@.\
    \  --stats FILE       also write the final drain stats JSON to FILE@.\
    \  --trace            arm per-worker flight recorders@.\
    \  --verbose          log admissions, sheds, and reaped jobs@.@.\
     SIGTERM or SIGINT (or a shutdown frame) requests a graceful drain.@."
    default_socket Server.Engine.default_watchdog

let die msg =
  Fmt.epr "cusand: %s@." msg;
  usage ();
  exit 2

let pos_int flag v =
  match int_of_string_opt v with
  | Some n when n > 0 -> n
  | _ -> die (Fmt.str "%s expects a positive integer, got %S" flag v)

let () =
  let cfg = ref (Server.Daemon.default_cfg ~socket_path:default_socket) in
  let stats_file = ref None in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--socket" :: v :: rest ->
        cfg := { !cfg with Server.Daemon.socket_path = v };
        parse rest
    | "--workers" :: v :: rest ->
        cfg := { !cfg with Server.Daemon.workers = pos_int "--workers" v };
        parse rest
    | "--queue-max" :: v :: rest ->
        cfg := { !cfg with Server.Daemon.queue_max = pos_int "--queue-max" v };
        parse rest
    | "--watchdog" :: v :: rest ->
        cfg := { !cfg with Server.Daemon.watchdog = pos_int "--watchdog" v };
        parse rest
    | "--cache-cap" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 0 ->
            cfg := { !cfg with Server.Daemon.cache_cap = n };
            parse rest
        | _ -> die (Fmt.str "--cache-cap expects a non-negative integer, got %S" v))
    | "--drain-timeout" :: v :: rest -> (
        match float_of_string_opt v with
        | Some s when s >= 0. ->
            cfg := { !cfg with Server.Daemon.drain_timeout_s = s };
            parse rest
        | _ ->
            die (Fmt.str "--drain-timeout expects a non-negative number, got %S" v))
    | "--stats" :: v :: rest ->
        stats_file := Some v;
        parse rest
    | "--trace" :: rest ->
        cfg := { !cfg with Server.Daemon.trace = true };
        parse rest
    | "--verbose" :: rest ->
        cfg := { !cfg with Server.Daemon.verbose = true };
        parse rest
    | [ ("--socket" | "--workers" | "--queue-max" | "--watchdog" | "--cache-cap"
        | "--drain-timeout" | "--stats") as flag ] ->
        die (flag ^ " requires a value")
    | arg :: _ -> die (Fmt.str "unknown argument %S" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let t =
    try Server.Daemon.create !cfg
    with Unix.Unix_error (e, fn, arg) ->
      Fmt.epr "cusand: cannot listen on %s: %s (%s %s)@."
        !cfg.Server.Daemon.socket_path (Unix.error_message e) fn arg;
      exit 1
  in
  (* The handlers only flip an atomic; the accept loop notices at its
     next select tick (EINTR included) and starts the drain. *)
  let on_signal _ = Server.Daemon.request_drain t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let stats = Server.Daemon.serve t in
  let report =
    Reporting.Mjson.Obj
      [
        ("schema", Reporting.Mjson.Str Server.Protocol.schema);
        ("event", Reporting.Mjson.Str "drained");
        ("stats", Server.Daemon.stats_json stats);
      ]
  in
  let line = Reporting.Mjson.to_string report in
  print_endline line;
  (match !stats_file with
  | None -> ()
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (line ^ "\n")));
  exit 0
