(* cusand: the long-running analysis daemon. Accepts lint / soak /
   bench jobs over a Unix-domain socket (the cusand/2 wire protocol),
   shards them across an elastic domain pool, and survives anything a
   job does: crashes are reaped into post-mortem replies, wedges become
   watchdog [stalled] verdicts, overload is shed with retry_after
   hints, and SIGTERM drains gracefully — admission stops, in-flight
   jobs finish or are cancelled at the deadline, the final stats are
   flushed, and the process exits 0.

   Under --state DIR the result cache is durable: verdicts are written
   through to an append-only checksummed journal and replayed on the
   next start, so even kill -9 loses nothing a client has seen. Under
   --supervise the process forks the daemon as a child and restarts it
   with capped exponential backoff whenever it dies abnormally — the
   restart path is exactly the journal-recovery path, so a supervised
   daemon heals itself with its cache intact. See lib/server and
   DESIGN.md. *)

let default_socket =
  Filename.concat (Filename.get_temp_dir_name ()) "cusand.sock"

let usage () =
  Fmt.pr
    "usage: cusand [options]@.@.\
    \  --socket PATH      listen on PATH (default %s)@.\
    \  --workers N        initial worker domains (default 2)@.\
    \  --workers-min N    elastic pool floor (default: --workers)@.\
    \  --workers-max N    elastic pool ceiling (default: --workers); when@.\
    \                     min < max the daemon auto-scales on queue depth@.\
    \  --queue-max N      in-flight high-water mark; beyond it jobs are@.\
    \                     shed with a busy/retry_after reply (default 8)@.\
    \  --watchdog STEPS   scheduler step budget per job; wedged jobs@.\
    \                     become stalled verdicts (default %d)@.\
    \  --cache-cap N      max cached results, 0 disables (default 1024)@.\
    \  --state DIR        durable result cache: append-only journal in DIR,@.\
    \                     replayed on startup (survives kill -9)@.\
    \  --compact-every N  journal appends between compactions (default 256)@.\
    \  --drain-timeout S  wall-clock budget for in-flight jobs at drain@.\
    \                     (default 30)@.\
    \  --stats FILE       also write the final drain stats JSON to FILE@.\
    \  --supervise        run as a supervisor: fork the daemon and restart@.\
    \                     it on abnormal exit with capped backoff@.\
    \  --pid-file PATH    write the daemon's pid to PATH (under --supervise@.\
    \                     this is the child's pid, rewritten per restart)@.\
    \  --trace            arm the accept loop's flight recorder@.\
    \  --verbose          log admissions, sheds, resizes, reaped jobs@.@.\
     SIGTERM or SIGINT (or a shutdown frame) requests a graceful drain.@."
    default_socket Server.Engine.default_watchdog

let die msg =
  Fmt.epr "cusand: %s@." msg;
  usage ();
  exit 2

let pos_int flag v =
  match int_of_string_opt v with
  | Some n when n > 0 -> n
  | _ -> die (Fmt.str "%s expects a positive integer, got %S" flag v)

let write_pid_file path pid =
  try
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (string_of_int pid ^ "\n"))
  with Sys_error msg -> Fmt.epr "cusand: cannot write pid file: %s@." msg

(* The daemon proper: create, install drain-on-signal, serve, report. *)
let run_daemon cfg stats_file =
  let t =
    try Server.Daemon.create cfg
    with Unix.Unix_error (e, fn, arg) ->
      Fmt.epr "cusand: cannot listen on %s: %s (%s %s)@."
        cfg.Server.Daemon.socket_path (Unix.error_message e) fn arg;
      exit 1
  in
  (* The handlers only flip an atomic; the accept loop notices at its
     next select tick (EINTR included) and starts the drain. *)
  let on_signal _ = Server.Daemon.request_drain t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let stats = Server.Daemon.serve t in
  let report =
    Reporting.Mjson.Obj
      [
        ("schema", Reporting.Mjson.Str Server.Protocol.schema);
        ("event", Reporting.Mjson.Str "drained");
        ("stats", Server.Daemon.stats_json stats);
      ]
  in
  let line = Reporting.Mjson.to_string report in
  print_endline line;
  (match stats_file with
  | None -> ()
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (line ^ "\n")));
  exit 0

(* Self-healing: fork the daemon, wait, and restart it whenever it dies
   without having been asked to. Clean exit (drain completed, status 0)
   ends supervision; an abnormal death is restarted after a capped
   exponential backoff, with the streak reset once a child survives
   [healthy_uptime_s] — so a crash loop backs off but a one-off crash
   recovers almost instantly. Restart goes through the normal startup
   path, journal recovery included. *)
let healthy_uptime_s = 5.0

let supervise cfg stats_file pid_file =
  let child = ref (-1) in
  let stopping = ref false in
  let forward signum _ =
    stopping := true;
    if !child > 0 then try Unix.kill !child signum with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (forward Sys.sigterm));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (forward Sys.sigint));
  let rec waitpid pid =
    match Unix.waitpid [] pid with
    | _, status -> status
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid pid
  in
  let signal_name n =
    if n = Sys.sigkill then "SIGKILL"
    else if n = Sys.sigterm then "SIGTERM"
    else if n = Sys.sigint then "SIGINT"
    else if n = Sys.sigsegv then "SIGSEGV"
    else if n = Sys.sigabrt then "SIGABRT"
    else Fmt.str "signal %d" n
  in
  let describe = function
    | Unix.WEXITED n -> Fmt.str "exited %d" n
    | Unix.WSIGNALED n -> Fmt.str "killed by %s" (signal_name n)
    | Unix.WSTOPPED n -> Fmt.str "stopped by %s" (signal_name n)
  in
  let streak = ref 0 in
  let rec loop () =
    let started = Unix.gettimeofday () in
    match Unix.fork () with
    | 0 -> run_daemon cfg stats_file (* never returns *)
    | pid -> (
        child := pid;
        Option.iter (fun p -> write_pid_file p pid) pid_file;
        let status = waitpid pid in
        child := -1;
        let uptime = Unix.gettimeofday () -. started in
        match status with
        | Unix.WEXITED 0 ->
            Fmt.epr "cusand-supervisor: daemon drained cleanly@.";
            exit 0
        | status when !stopping ->
            (* We asked it to stop and it died un-cleanly anyway; do
               not resurrect what the operator is tearing down. *)
            Fmt.epr "cusand-supervisor: daemon %s during shutdown@."
              (describe status);
            exit 1
        | status ->
            if uptime >= healthy_uptime_s then streak := 0;
            incr streak;
            let delay =
              Float.min 5.0 (0.05 *. (2. ** float_of_int (min !streak 8)))
            in
            Fmt.epr
              "cusand-supervisor: daemon %s after %.2fs; restart #%d in \
               %.2fs@."
              (describe status) uptime !streak delay;
            Unix.sleepf delay;
            if !stopping then begin
              (* the operator tore us down while we were backing off
                 between restarts: there is nothing left to stop *)
              Fmt.epr "cusand-supervisor: stop requested during backoff@.";
              exit 0
            end
            else loop ())
  in
  loop ()

let () =
  let cfg = ref (Server.Daemon.default_cfg ~socket_path:default_socket) in
  let stats_file = ref None in
  let pid_file = ref None in
  let supervised = ref false in
  (* min/max default to the final --workers value, so elasticity stays
     opt-in: resolve the window after parsing. *)
  let workers_min = ref None in
  let workers_max = ref None in
  let rec parse = function
    | [] -> ()
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--socket" :: v :: rest ->
        cfg := { !cfg with Server.Daemon.socket_path = v };
        parse rest
    | "--workers" :: v :: rest ->
        cfg := { !cfg with Server.Daemon.workers = pos_int "--workers" v };
        parse rest
    | "--workers-min" :: v :: rest ->
        workers_min := Some (pos_int "--workers-min" v);
        parse rest
    | "--workers-max" :: v :: rest ->
        workers_max := Some (pos_int "--workers-max" v);
        parse rest
    | "--queue-max" :: v :: rest ->
        cfg := { !cfg with Server.Daemon.queue_max = pos_int "--queue-max" v };
        parse rest
    | "--watchdog" :: v :: rest ->
        cfg := { !cfg with Server.Daemon.watchdog = pos_int "--watchdog" v };
        parse rest
    | "--cache-cap" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 0 ->
            cfg := { !cfg with Server.Daemon.cache_cap = n };
            parse rest
        | _ -> die (Fmt.str "--cache-cap expects a non-negative integer, got %S" v))
    | "--state" :: v :: rest ->
        cfg := { !cfg with Server.Daemon.state_dir = Some v };
        parse rest
    | "--compact-every" :: v :: rest ->
        cfg :=
          { !cfg with Server.Daemon.compact_every = pos_int "--compact-every" v };
        parse rest
    | "--drain-timeout" :: v :: rest -> (
        match float_of_string_opt v with
        | Some s when s >= 0. ->
            cfg := { !cfg with Server.Daemon.drain_timeout_s = s };
            parse rest
        | _ ->
            die (Fmt.str "--drain-timeout expects a non-negative number, got %S" v))
    | "--stats" :: v :: rest ->
        stats_file := Some v;
        parse rest
    | "--pid-file" :: v :: rest ->
        pid_file := Some v;
        parse rest
    | "--supervise" :: rest ->
        supervised := true;
        parse rest
    | "--trace" :: rest ->
        cfg := { !cfg with Server.Daemon.trace = true };
        parse rest
    | "--verbose" :: rest ->
        cfg := { !cfg with Server.Daemon.verbose = true };
        parse rest
    | [ ("--socket" | "--workers" | "--workers-min" | "--workers-max"
        | "--queue-max" | "--watchdog" | "--cache-cap" | "--state"
        | "--compact-every" | "--drain-timeout" | "--stats" | "--pid-file") as
        flag ] ->
        die (flag ^ " requires a value")
    | arg :: _ -> die (Fmt.str "unknown argument %S" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let lo = Option.value !workers_min ~default:!cfg.Server.Daemon.workers in
  let hi = Option.value !workers_max ~default:!cfg.Server.Daemon.workers in
  if lo > hi then die "--workers-min must be <= --workers-max";
  cfg := { !cfg with Server.Daemon.workers_min = lo; workers_max = hi };
  if !supervised then supervise !cfg !stats_file !pid_file
  else begin
    Option.iter (fun p -> write_pid_file p (Unix.getpid ())) !pid_file;
    run_daemon !cfg !stats_file
  end
