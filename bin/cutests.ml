(* The testsuite runner binary, analogous to `make check-cutests` in the
   paper's artifact: runs every case of the correctness matrix under
   MUST & CuSan and prints PASS/FAIL per case.

   Fault-injection mode: --faults SPEC arms the deterministic injector
   for every case (see Faultsim.Plan.parse_spec for the SPEC grammar;
   a seed=N token or --seed N fixes the PRNG). Any failure prints a
   one-line command that reproduces exactly that case and fault
   schedule. *)

let usage () =
  Fmt.pr
    "usage: cutests [--deferred] [--verbose] [--list] [--only SUBSTR]@.\
    \       [--seed N] [--faults SPEC]@.@.\
     SPEC  comma-separated rules SITE[@@RANK][#NTH|*EVERY|%%PROB][:ACTION]@.\
    \      (actions: fail abort hang), plus optional seed=N@.\
     e.g.  --faults 'cuda_malloc@@1#2:fail,mpi_wait#1:hang,seed=7'@."

let () =
  let argv = Array.to_list Sys.argv in
  let flag name = List.mem name argv in
  (* value of "--opt V" *)
  let opt name =
    let rec go = function
      | a :: v :: _ when a = name -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go argv
  in
  if flag "--help" || flag "-h" then begin
    usage ();
    exit 0
  end;
  let deferred = flag "--deferred" in
  let verbose = flag "--verbose" in
  let list_only = flag "--list" in
  let only = opt "--only" in
  let seed_flag = Option.map int_of_string (opt "--seed") in
  let faults_spec = opt "--faults" in
  if list_only then begin
    List.iter
      (fun (c : Testsuite.Cases.case) ->
        Fmt.pr "%-55s %s@." c.Testsuite.Cases.name c.Testsuite.Cases.descr)
      (Testsuite.Cases.all ());
    exit 0
  end;
  let faults =
    match faults_spec with
    | None -> None
    | Some spec -> (
        match Faultsim.Plan.parse_spec spec with
        | Error msg ->
            Fmt.epr "cutests: bad --faults spec: %s@." msg;
            usage ();
            exit 2
        | Ok (spec_seed, plan) ->
            let seed =
              match (seed_flag, spec_seed) with
              | Some s, _ -> s (* --seed wins over an embedded seed=N *)
              | None, Some s -> s
              | None, None -> 0
            in
            Some (seed, plan))
  in
  let mode = if deferred then Cudasim.Device.Deferred else Cudasim.Device.Eager in
  let cases =
    match only with
    | None -> Testsuite.Cases.all ()
    | Some sub ->
        List.filter
          (fun (c : Testsuite.Cases.case) ->
            let name = c.Testsuite.Cases.name in
            let nl = String.length name and sl = String.length sub in
            let rec at i = i + sl <= nl && (String.sub name i sl = sub || at (i + 1)) in
            at 0)
          (Testsuite.Cases.all ())
  in
  if cases = [] then begin
    Fmt.epr "cutests: no case matches --only %a@." Fmt.(option string) only;
    exit 2
  end;
  (* The exact command that reproduces a failing case: determinism means
     replaying (case, mode, seed, plan) replays the verdict. *)
  let repro (v : Testsuite.Runner.verdict) =
    Fmt.str "dune exec bin/cutests.exe -- --only '%s'%s%s"
      v.Testsuite.Runner.case.Testsuite.Cases.name
      (if deferred then " --deferred" else "")
      (match faults with
      | None -> ""
      | Some (seed, plan) ->
          Fmt.str " --seed %d --faults '%s'" seed (Faultsim.Plan.to_string plan))
  in
  let verdicts =
    List.map (Testsuite.Runner.run_case ~mode ?faults) cases
  in
  let total = List.length verdicts in
  List.iteri
    (fun i v ->
      Fmt.pr "%a (%d of %d)@." Testsuite.Runner.pp_verdict v (i + 1) total;
      if not v.Testsuite.Runner.pass then begin
        Fmt.pr "    reproduce: %s@." (repro v);
        List.iter
          (fun (rank, why) -> Fmt.pr "    rank %d failed: %s@." rank why)
          v.Testsuite.Runner.failures
      end;
      if verbose && not v.Testsuite.Runner.pass then
        List.iter
          (fun (rank, r) ->
            Fmt.pr "    rank %d: %s@." rank (Tsan.Report.to_string r))
          v.Testsuite.Runner.reports)
    verdicts;
  let pass, total = Testsuite.Runner.summary verdicts in
  let injected =
    List.fold_left (fun acc v -> acc + v.Testsuite.Runner.injected) 0 verdicts
  in
  if faults <> None then
    Fmt.pr "@.%d fault(s) injected across %d cases (seed %d)@." injected total
      (match faults with Some (s, _) -> s | None -> 0);
  Fmt.pr "@.%d of %d testsuite cases classified correctly@." pass total;
  if pass <> total then exit 1
