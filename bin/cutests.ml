(* The testsuite runner binary, analogous to `make check-cutests` in the
   paper's artifact: runs every case of the correctness matrix under
   MUST & CuSan and prints PASS/FAIL per case.

   Parallelism: -j N shards the matrix over a domain pool (see
   lib/pool); verdicts are aggregated in case order, so output and exit
   status are identical for every worker count. -j 0 means "one worker
   per core".

   Fault-injection mode: --faults SPEC arms the deterministic injector
   for every case (see Faultsim.Plan.parse_spec for the SPEC grammar;
   a seed=N token or --seed N fixes the PRNG). Any failure prints a
   one-line command that reproduces exactly that case and fault
   schedule.

   Machine-readable output: --json FILE writes a "cusan-tests/1"
   document, --junit FILE writes JUnit XML — the artifacts CI uploads.

   Flight recorder: --trace FILE enables the per-rank ring-buffer
   recorder for the whole run and writes a Chrome trace-event JSON
   (load it in chrome://tracing or Perfetto). Tracing is domain-local,
   so it forces -j 1; verdicts are unaffected — only stderr mentions
   the trace file, keeping stdout byte-identical to an untraced run. *)

let usage () =
  Fmt.pr
    "usage: cutests [--deferred] [--verbose] [--list] [--only SUBSTR]@.\
    \       [--seed N] [--faults SPEC] [-j N] [--json FILE] [--junit FILE]@.\
    \       [--trace FILE] [--explore] [--explore-budget N]@.@.\
    \  -j N        run the matrix on N worker domains (0 = one per core)@.\
    \  --json FILE write verdicts as JSON (schema cusan-tests/1)@.\
    \  --junit FILE write verdicts as JUnit XML@.\
    \  --trace FILE record a flight-recorder trace (Chrome trace-event@.\
    \              JSON; forces -j 1)@.@.\
    \  --explore   schedule-space exploration (sleep-set DPOR) over the@.\
    \              sched-sensitive family: re-execute each case under@.\
    \              forced schedule prefixes until its interleaving space@.\
    \              is exhausted or the budget is hit, and report how@.\
    \              many schedules exposing each race needed. --only@.\
    \              filters the family; --json writes the frontier stats@.\
    \              (schema cusan-explore/1); -j shards the schedules of@.\
    \              a case. Incompatible with --faults/--trace/--deferred.@.\
    \  --explore-budget N  cap schedules per case (default 256)@.@.\
     SPEC  comma-separated rules SITE[@@RANK][#NTH|*EVERY|%%PROB][:ACTION]@.\
    \      (actions: fail abort hang crash drop delayN wedge),@.\
    \      plus optional seed=N@.\
    \ e.g.  --faults 'cuda_malloc@@1#2:fail,mpi_wait#1:hang,seed=7'@.\
    \ `--faults help` prints the full site/action grammar@.@.\
     exit status: 0 all cases classified correctly (under --explore:@.\
    \               every racy case exposed, no clean case misfired),@.\
    \             1 misclassification, 2 usage error (incl. unknown@.\
    \               sites/actions in SPEC)@."

let die msg =
  Fmt.epr "cutests: %s@." msg;
  usage ();
  exit 2

type opts = {
  deferred : bool;
  verbose : bool;
  list_only : bool;
  only : string option;
  seed : int option;
  faults_spec : string option;
  jobs : int;
  json_out : string option;
  junit_out : string option;
  trace_out : string option;
  explore : bool;
  explore_budget : int;
}

let default_opts =
  {
    deferred = false;
    verbose = false;
    list_only = false;
    only = None;
    seed = None;
    faults_spec = None;
    jobs = 1;
    json_out = None;
    junit_out = None;
    trace_out = None;
    explore = false;
    explore_budget = 256;
  }

(* Strict parsing: every option that takes a value must get one, and
   numeric values must parse — anything else prints usage and exits 2
   instead of dying on an uncaught exception or silently dropping the
   option. *)
let parse_args argv =
  let rec go acc = function
    | [] -> acc
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--deferred" :: rest -> go { acc with deferred = true } rest
    | "--verbose" :: rest -> go { acc with verbose = true } rest
    | "--list" :: rest -> go { acc with list_only = true } rest
    | "--only" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with only = Some v } rest
    | [ "--only" ] | "--only" :: _ -> die "--only requires a value"
    | "--seed" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n -> go { acc with seed = Some n } rest
        | None -> die (Fmt.str "--seed expects an integer, got %S" v))
    | [ "--seed" ] -> die "--seed requires a value"
    | "--faults" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with faults_spec = Some v } rest
    | [ "--faults" ] | "--faults" :: _ -> die "--faults requires a value"
    | "-j" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 0 -> go { acc with jobs = n } rest
        | Some _ -> die "-j expects a non-negative integer"
        | None -> die (Fmt.str "-j expects an integer, got %S" v))
    | [ "-j" ] -> die "-j requires a value"
    | "--json" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with json_out = Some v } rest
    | [ "--json" ] | "--json" :: _ -> die "--json requires a file name"
    | "--junit" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with junit_out = Some v } rest
    | [ "--junit" ] | "--junit" :: _ -> die "--junit requires a file name"
    | "--trace" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with trace_out = Some v } rest
    | [ "--trace" ] | "--trace" :: _ -> die "--trace requires a file name"
    | "--explore" :: rest -> go { acc with explore = true } rest
    | "--explore-budget" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> go { acc with explore_budget = n } rest
        | Some _ -> die "--explore-budget expects a positive integer"
        | None -> die (Fmt.str "--explore-budget expects an integer, got %S" v))
    | [ "--explore-budget" ] -> die "--explore-budget requires a value"
    | arg :: _ -> die (Fmt.str "unknown argument %S" arg)
  in
  go default_opts argv

let () =
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  (* `--faults help` is a documentation query, not a plan: print the
     grammar (generated from the parser's own tables) and stop. *)
  (match o.faults_spec with
  | Some "help" ->
      Fmt.pr "%s@." (Faultsim.Plan.grammar_help ());
      exit 0
  | _ -> ());
  let faults =
    match o.faults_spec with
    | None -> None
    | Some spec -> (
        match Faultsim.Plan.parse_spec spec with
        | Error msg -> die (Fmt.str "bad --faults spec: %s" msg)
        | Ok (spec_seed, plan) ->
            let seed =
              match (o.seed, spec_seed) with
              | Some s, _ -> s (* --seed wins over an embedded seed=N *)
              | None, Some s -> s
              | None, None -> 0
            in
            Some (seed, plan))
  in
  let mode =
    if o.deferred then Cudasim.Device.Deferred else Cudasim.Device.Eager
  in
  let jobs = if o.jobs = 0 then Pool.default_workers () else o.jobs in
  let contains_sub ~sub name =
    let nl = String.length name and sl = String.length sub in
    let rec at i = i + sl <= nl && (String.sub name i sl = sub || at (i + 1)) in
    at 0
  in
  (* --explore: systematic schedule-space exploration of the
     sched-sensitive family instead of one classification run per case.
     A separate mode, not a matrix flag: these cases are clean under
     the default FIFO schedule by construction, so single-schedule
     classification would misread them. *)
  if o.explore then begin
    if o.faults_spec <> None then die "--explore is incompatible with --faults";
    if o.trace_out <> None then die "--explore is incompatible with --trace";
    if o.deferred then die "--explore is incompatible with --deferred";
    let cases =
      match o.only with
      | None -> Testsuite.Cases.sched_sensitive ()
      | Some sub ->
          List.filter
            (fun (c : Testsuite.Cases.case) ->
              contains_sub ~sub c.Testsuite.Cases.name)
            (Testsuite.Cases.sched_sensitive ())
    in
    if cases = [] then begin
      Fmt.epr "cutests: no sched-sensitive case matches --only %a@."
        Fmt.(option string)
        o.only;
      exit 2
    end;
    if o.list_only then begin
      List.iter
        (fun (c : Testsuite.Cases.case) -> Fmt.pr "%s@." c.Testsuite.Cases.name)
        cases;
      exit 0
    end;
    let verdicts =
      List.map
        (Testsuite.Explore_runner.explore_case ~budget:o.explore_budget
           ~workers:jobs)
        cases
    in
    let total = List.length verdicts in
    List.iteri
      (fun i v ->
        Fmt.pr "%a (%d of %d)@." Testsuite.Explore_runner.pp_verdict v (i + 1)
          total)
      verdicts;
    (match o.json_out with
    | None -> ()
    | Some path ->
        let doc =
          Testsuite.Explore_runner.json ~budget:o.explore_budget ~j:jobs
            verdicts
        in
        Testsuite.Emit.write_file path (Reporting.Mjson.to_string_pretty doc);
        Fmt.epr "wrote %s@." path);
    let pass, total = Testsuite.Explore_runner.summary verdicts in
    Fmt.pr "@.%d of %d sched-sensitive cases classified correctly@." pass total;
    exit (if pass = total then 0 else 1)
  end;
  (* The recorder is domain-local: tracing a sharded run would only see
     the coordinating domain. Trace runs are sequential. *)
  let jobs =
    if o.trace_out <> None && jobs > 1 then begin
      Fmt.epr "cutests: --trace forces -j 1 (recorder is domain-local)@.";
      1
    end
    else jobs
  in
  if o.trace_out <> None then Trace.Recorder.enable ();
  let contains ~sub name =
    let nl = String.length name and sl = String.length sub in
    let rec at i = i + sl <= nl && (String.sub name i sl = sub || at (i + 1)) in
    at 0
  in
  let cases =
    match o.only with
    | None -> Testsuite.Cases.all ()
    | Some sub ->
        List.filter
          (fun (c : Testsuite.Cases.case) -> contains ~sub c.Testsuite.Cases.name)
          (Testsuite.Cases.all ())
  in
  if cases = [] then begin
    Fmt.epr "cutests: no case matches --only %a@." Fmt.(option string) o.only;
    exit 2
  end;
  (* --list prints the *selected* case ids — i.e. after --only filtering
     — one per line, so scripts can expand a filter into concrete case
     names (and a filter matching nothing still exits 2 above). *)
  if o.list_only then begin
    List.iter
      (fun (c : Testsuite.Cases.case) -> Fmt.pr "%s@." c.Testsuite.Cases.name)
      cases;
    exit 0
  end;
  (* The exact command that reproduces a failing case: determinism means
     replaying (case, mode, seed, plan) replays the verdict. *)
  let repro (v : Testsuite.Runner.verdict) =
    Fmt.str "dune exec bin/cutests.exe -- --only '%s'%s%s"
      v.Testsuite.Runner.case.Testsuite.Cases.name
      (if o.deferred then " --deferred" else "")
      (match faults with
      | None -> ""
      | Some (seed, plan) ->
          Fmt.str " --seed %d --faults '%s'" seed (Faultsim.Plan.to_string plan))
  in
  let verdicts =
    Pool.map ~workers:jobs
      (Testsuite.Runner.run_case ~mode ?faults)
      cases
  in
  let total = List.length verdicts in
  List.iteri
    (fun i v ->
      Fmt.pr "%a (%d of %d)@." Testsuite.Runner.pp_verdict v (i + 1) total;
      (* Crashed ranks leave post-mortems even when the case still
         passes (verdict stability): always show what died where. *)
      List.iter
        (fun pm -> Fmt.pr "    %a@." Harness.Run.pp_post_mortem pm)
        v.Testsuite.Runner.post_mortems;
      if not v.Testsuite.Runner.pass then begin
        Fmt.pr "    reproduce: %s@." (repro v);
        List.iter
          (fun (rank, why) -> Fmt.pr "    rank %d failed: %s@." rank why)
          v.Testsuite.Runner.failures;
        List.iter
          (fun (context, lines) ->
            Fmt.pr "    recent events (%s):@." context;
            List.iter (fun l -> Fmt.pr "      %s@." l) lines)
          v.Testsuite.Runner.history
      end;
      if o.verbose && not v.Testsuite.Runner.pass then
        List.iter
          (fun (rank, r) ->
            Fmt.pr "    rank %d: %s@." rank (Tsan.Report.to_string r))
          v.Testsuite.Runner.reports)
    verdicts;
  let pass, total = Testsuite.Runner.summary verdicts in
  let injected =
    List.fold_left (fun acc v -> acc + v.Testsuite.Runner.injected) 0 verdicts
  in
  if faults <> None then
    Fmt.pr "@.%d fault(s) injected across %d cases (seed %d)@." injected total
      (match faults with Some (s, _) -> s | None -> 0);
  (match o.json_out with
  | None -> ()
  | Some path ->
      let doc =
        Testsuite.Emit.json
          ?seed:(match faults with Some (s, _) -> Some s | None -> o.seed)
          ?faults_spec:o.faults_spec
          ~mode:(if o.deferred then "deferred" else "eager")
          ~j:jobs verdicts
      in
      Testsuite.Emit.write_file path (Reporting.Mjson.to_string_pretty doc);
      (* stderr, like the trace notice: the @resilience soak diffs
         stdout between runs that differ only in artifact flags. *)
      Fmt.epr "wrote %s@." path);
  (match o.junit_out with
  | None -> ()
  | Some path ->
      Testsuite.Emit.write_file path (Testsuite.Emit.junit verdicts);
      Fmt.epr "wrote %s@." path);
  (match o.trace_out with
  | None -> ()
  | Some path ->
      let events = Trace.Recorder.events () in
      Trace.Chrome.write_file path events;
      (* stderr: the @fault gate diffs traced against untraced stdout. *)
      Fmt.epr "trace: wrote %s (%d events, %d dropped)@." path
        (List.length events) (Trace.Recorder.dropped ()));
  Fmt.pr "@.%d of %d testsuite cases classified correctly@." pass total;
  if pass <> total then exit 1
