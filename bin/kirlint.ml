(* kirlint: static lint for KIR device modules, the compile-time
   counterpart of the dynamic testsuite. For every kernel entry point it
   runs the IR validator (well-formedness + barrier placement), the
   pointer-argument access analysis the CuSan pass embeds at launch
   sites, and the barrier-aware intra-kernel race analysis.

   The default target set is the device code of the example/app suite
   (jacobi, tealeaf, pingpong, the cutests kernels); these are expected
   to be free of must-races, and kirlint exits 1 if one appears — the
   CI job runs exactly that as a regression gate. May-races are
   reported but do not fail the lint: they mark indexing the analysis
   cannot prove safe (symbolic strides, loads as indices).

   --corpus lints the seeded ground-truth corpus instead
   (Testsuite.Corpus): every entry's classification is checked against
   its expected verdict, and because the corpus contains must-racy
   kernels the run exits 1 — CI asserts that too, proving the gate
   actually fires.

   --json FILE writes a "kirlint/1" document; --junit FILE writes JUnit
   XML (classname KirLint); --only SUBSTR filters targets; --list
   prints the selected target ids after filtering. *)

module V = Kir.Validate
module KA = Cusan.Kernel_analysis
module RA = Cusan.Race_analysis
module Corpus = Testsuite.Corpus

let usage () =
  Fmt.pr
    "usage: kirlint [--corpus] [--only SUBSTR] [--list]@.\
    \       [--json FILE] [--junit FILE]@.@.\
    \  --corpus     lint the seeded ground-truth corpus instead of the@.\
    \               app/example suite (contains must-races; exits 1)@.\
    \  --only SUB   lint only targets whose id contains SUB@.\
    \  --list       print the selected target ids and exit@.\
    \  --json FILE  write results as JSON (schema kirlint/1)@.\
    \  --junit FILE write results as JUnit XML@.@.\
     exit status: 0 clean, 1 must-races / invalid modules /@.\
    \             corpus misclassification, 2 usage error@."

let die msg =
  Fmt.epr "kirlint: %s@." msg;
  usage ();
  exit 2

type opts = {
  corpus : bool;
  only : string option;
  list_only : bool;
  json_out : string option;
  junit_out : string option;
}

let parse_args argv =
  let rec go acc = function
    | [] -> acc
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--corpus" :: rest -> go { acc with corpus = true } rest
    | "--list" :: rest -> go { acc with list_only = true } rest
    | "--only" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with only = Some v } rest
    | [ "--only" ] | "--only" :: _ -> die "--only requires a value"
    | "--json" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with json_out = Some v } rest
    | [ "--json" ] | "--json" :: _ -> die "--json requires a file name"
    | "--junit" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with junit_out = Some v } rest
    | [ "--junit" ] | "--junit" :: _ -> die "--junit requires a file name"
    | arg :: _ -> die (Fmt.str "unknown argument %S" arg)
  in
  go
    { corpus = false; only = None; list_only = false; json_out = None;
      junit_out = None }
    argv

(* --- targets ------------------------------------------------------------- *)

type target = {
  id : string;  (* "suite/kernel" *)
  m : Kir.Ir.modul;
  entry : string;
  expect : Corpus.expect option;  (* ground truth in corpus mode *)
}

let default_targets () =
  let of_module suite (m : Kir.Ir.modul) =
    List.map
      (fun entry -> { id = suite ^ "/" ^ entry; m; entry; expect = None })
      m.Kir.Ir.kernels
  in
  of_module "jacobi" Apps.Jacobi.device_module
  @ of_module "tealeaf" Apps.Tealeaf.device_module
  @ of_module "pingpong" Apps.Pingpong.fill_src
  @ of_module "cutests" Testsuite.Cases.device_module

let corpus_targets () =
  List.map
    (fun (e : Corpus.entry) ->
      { id = "corpus/" ^ e.Corpus.name; m = e.Corpus.m; entry = e.Corpus.entry;
        expect = Some e.Corpus.expect })
    Corpus.all

(* --- lint ---------------------------------------------------------------- *)

type lint = {
  target : target;
  valid : (unit, string) result;
  params : (string * string) list;  (* (source name, R|W|RW|unused|scalar) *)
  races : RA.race list;
}

let lint_target (t : target) =
  match V.check_module t.m with
  | exception V.Invalid msg ->
      { target = t; valid = Error msg; params = []; races = [] }
  | () ->
      let f = List.find (fun f -> f.Kir.Ir.fname = t.entry) t.m.Kir.Ir.funcs in
      let summary = KA.analyze t.m ~entry:t.entry in
      let params =
        List.mapi
          (fun i (pname, _ty) ->
            let acc =
              if i >= Array.length summary then "scalar"
              else
                match summary.(i) with
                | None -> "scalar"
                | Some a -> (
                    match KA.as_kernel_access a with
                    | None -> "unused"
                    | Some k -> Cudasim.Kernel.access_str k)
            in
            (pname, acc))
          f.Kir.Ir.params
      in
      { target = t; valid = Ok (); params;
        races = RA.analyze t.m ~entry:t.entry }

(* Did the target meet expectations? Outside corpus mode that means
   "valid and free of must-races"; in corpus mode the classification
   must match the seeded ground truth exactly. *)
let ok (l : lint) =
  match l.target.expect with
  | None -> (
      match l.valid with Ok () -> not (RA.has_must l.races) | Error _ -> false)
  | Some Corpus.Invalid -> Result.is_error l.valid
  | Some Corpus.Must -> Result.is_ok l.valid && RA.has_must l.races
  | Some Corpus.May ->
      Result.is_ok l.valid && l.races <> [] && not (RA.has_must l.races)
  | Some Corpus.Clean -> Result.is_ok l.valid && l.races = []

let classification (l : lint) =
  match l.valid with
  | Error msg -> "invalid: " ^ msg
  | Ok () ->
      let musts = List.length (List.filter (fun r -> r.RA.verdict = RA.Must) l.races) in
      let mays = List.length l.races - musts in
      if l.races = [] then "clean"
      else
        String.concat ", "
          ((if musts > 0 then [ Fmt.str "%d must-race(s)" musts ] else [])
          @ if mays > 0 then [ Fmt.str "%d may-race(s)" mays ] else [])

(* --- output -------------------------------------------------------------- *)

let print_human lints =
  List.iter
    (fun l ->
      let expect_note =
        match l.target.expect with
        | None -> ""
        | Some e ->
            Fmt.str " [expect %s: %s]" (Corpus.expect_str e)
              (if ok l then "ok" else "MISMATCH")
      in
      Fmt.pr "%-38s %s%s@." l.target.id (classification l) expect_note;
      if l.valid = Ok () && l.params <> [] then
        Fmt.pr "    args: %s@."
          (String.concat " "
             (List.map (fun (n, a) -> Fmt.str "%s=%s" n a) l.params));
      List.iter (fun r -> Fmt.pr "    %s@." (RA.describe r)) l.races)
    lints

let json_of_lint (l : lint) : Reporting.Mjson.t =
  let open Reporting.Mjson in
  Obj
    ([
       ("name", Str l.target.id);
       ("entry", Str l.target.entry);
       ("valid", Bool (Result.is_ok l.valid));
       ("error", match l.valid with Ok () -> Null | Error m -> Str m);
       ("params",
        List
          (List.map
             (fun (n, a) -> Obj [ ("name", Str n); ("access", Str a) ])
             l.params));
       ("races",
        List
          (List.map
             (fun (r : RA.race) ->
               Obj
                 [
                   ("verdict",
                    Str (match r.RA.verdict with RA.Must -> "must" | RA.May -> "may"));
                   ("kinds", Str r.RA.kinds);
                   ("param", Int r.RA.param);
                   ("pname", Str r.RA.pname);
                   ("phase", Int r.RA.phase);
                   ("site1", Str r.RA.site1);
                   ("site2", Str r.RA.site2);
                   ("description", Str (RA.describe r));
                 ])
             l.races));
       ("ok", Bool (ok l));
     ]
    @
    match l.target.expect with
    | None -> []
    | Some e -> [ ("expect", Str (Corpus.expect_str e)) ])

let json ~corpus lints : Reporting.Mjson.t =
  let open Reporting.Mjson in
  let musts =
    List.fold_left
      (fun acc l ->
        acc + List.length (List.filter (fun r -> r.RA.verdict = RA.Must) l.races))
      0 lints
  in
  Obj
    [
      ("schema", Str "kirlint/1");
      ("corpus", Bool corpus);
      ("total", Int (List.length lints));
      ("ok", Int (List.length (List.filter ok lints)));
      ("musts", Int musts);
      ("targets", List (List.map json_of_lint lints));
    ]

let junit lints : string =
  let cases =
    List.map
      (fun (l : lint) ->
        let failure =
          if ok l then None
          else
            let body =
              String.concat "\n"
                ((match l.valid with
                 | Error msg -> [ "invalid module: " ^ msg ]
                 | Ok () -> [])
                @ List.map RA.describe l.races)
            in
            Some (classification l, body)
        in
        {
          Reporting.Junit.classname = "KirLint";
          name = l.target.id;
          time_s = 0.;
          failure;
        })
      lints
  in
  Reporting.Junit.to_string ~suite_name:"kirlint" cases

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* --- main ---------------------------------------------------------------- *)

let () =
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  let contains ~sub name =
    let nl = String.length name and sl = String.length sub in
    let rec at i = i + sl <= nl && (String.sub name i sl = sub || at (i + 1)) in
    at 0
  in
  let targets =
    let all = if o.corpus then corpus_targets () else default_targets () in
    match o.only with
    | None -> all
    | Some sub -> List.filter (fun t -> contains ~sub t.id) all
  in
  if targets = [] then begin
    Fmt.epr "kirlint: no target matches --only %a@." Fmt.(option string) o.only;
    exit 2
  end;
  if o.list_only then begin
    List.iter (fun t -> Fmt.pr "%s@." t.id) targets;
    exit 0
  end;
  let lints = List.map lint_target targets in
  print_human lints;
  let failed = List.filter (fun l -> not (ok l)) lints in
  let musts = List.exists (fun l -> RA.has_must l.races) lints in
  (match o.json_out with
  | None -> ()
  | Some path ->
      write_file path
        (Reporting.Mjson.to_string_pretty (json ~corpus:o.corpus lints));
      Fmt.pr "wrote %s@." path);
  (match o.junit_out with
  | None -> ()
  | Some path ->
      write_file path (junit lints);
      Fmt.pr "wrote %s@." path);
  Fmt.pr "@.%d of %d kernels %s%s@."
    (List.length lints - List.length failed)
    (List.length lints)
    (if o.corpus then "classified as expected" else "lint clean")
    (if musts then " (must-races present)" else "");
  if failed <> [] || musts then exit 1
