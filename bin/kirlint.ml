(* kirlint: static lint for KIR device modules, the compile-time
   counterpart of the dynamic testsuite. For every kernel entry point it
   runs the IR validator (well-formedness + barrier placement), the
   pointer-argument access analysis the CuSan pass embeds at launch
   sites, and the barrier-aware intra-kernel race analysis.

   The default target set is the device code of the example/app suite
   (jacobi, tealeaf, pingpong, the cutests kernels); these are expected
   to be free of must-races, and kirlint exits 1 if one appears — the
   CI job runs exactly that as a regression gate. May-races are
   reported but do not fail the lint: they mark indexing the analysis
   cannot prove safe (symbolic strides, loads as indices).

   --corpus lints the seeded ground-truth corpus instead
   (Testsuite.Corpus): every entry's classification is checked against
   its expected verdict, and because the corpus contains must-racy
   kernels the run exits 1 — CI asserts that too, proving the gate
   actually fires.

   --witness upgrades the pipeline from "report" to "prove": every race
   candidate is handed to the witness solver (Cusan.Witness), which
   searches for a concrete thread pair / launch width / parameter
   valuation and validates it by replaying exactly those two threads
   through the interpreter. Validated candidates become proved-races
   (and gate the exit code, may or must); a must the replay cannot
   validate is downgraded to a may with the solver's diagnostic. In
   corpus mode the proved/unproved split is checked against the seeded
   [proves] ground truth.

   --certify FILE emits DRF certificates (schema kirlint-cert/1) for
   the race-free targets: the access set with its symbolic coefficients
   plus one disjointness fact per access pair. Each certificate is
   re-validated through the independent checker (Cusan.Certcheck) from
   the serialized JSON bytes — a re-check failure fails the lint.

   --suggest-fixes runs barrier repair (Cusan.Repair) on every target
   with provable races: a minimal, interpreter-verified set of
   __syncthreads() insertion points, checked against the corpus
   [repair] ground truth in corpus mode.

   --suppress FILE reads TSan-suppressions syntax (race:PATTERN);
   targets whose id or race descriptions match a pattern still print
   but no longer affect the exit status — the escape hatch for
   known-racy demo kernels.

   --json FILE writes a "kirlint/1" document ("kirlint/2" when any of
   the proving flags is active); --junit FILE writes JUnit XML
   (classname KirLint); --only LIST filters targets by comma-separated
   substrings; --list prints the selected target ids after filtering. *)

module V = Kir.Validate
module KA = Cusan.Kernel_analysis
module RA = Cusan.Race_analysis
module W = Cusan.Witness
module Corpus = Testsuite.Corpus

let usage () =
  Fmt.pr
    "usage: kirlint [--corpus] [--only LIST] [--list] [--witness]@.\
    \       [--certify FILE] [--suggest-fixes] [--suppress FILE]@.\
    \       [--json FILE] [--junit FILE]@.@.\
    \  --corpus        lint the seeded ground-truth corpus instead of the@.\
    \                  app/example suite (contains must-races; exits 1)@.\
    \  --only LIST     lint only targets whose id contains one of the@.\
    \                  comma-separated substrings@.\
    \  --list          print the selected target ids and exit@.\
    \  --witness       prove race candidates by interpreter-validated@.\
    \                  witnesses; unproved musts are downgraded@.\
    \  --certify FILE  write DRF certificates for race-free targets@.\
    \                  (schema kirlint-cert/1), re-checked independently@.\
    \  --suggest-fixes propose minimal verified barrier insertions for@.\
    \                  targets with provable races@.\
    \  --suppress FILE TSan-suppressions file (race:PATTERN); matching@.\
    \                  targets stop affecting the exit status@.\
    \  --json FILE     write results as JSON (schema kirlint/1, or@.\
    \                  kirlint/2 with --witness/--suggest-fixes/--suppress)@.\
    \  --junit FILE    write results as JUnit XML@.@.\
     exit status: 0 clean, 1 must- or proved-races / invalid modules /@.\
    \             corpus mismatch / certificate re-check failure,@.\
    \             2 usage error@."

let die msg =
  Fmt.epr "kirlint: %s@." msg;
  usage ();
  exit 2

type opts = {
  corpus : bool;
  only : string list; (* comma-separated substrings; [] = everything *)
  list_only : bool;
  witness : bool;
  certify_out : string option;
  fixes : bool;
  suppress : string option;
  json_out : string option;
  junit_out : string option;
}

let parse_args argv =
  let rec go acc = function
    | [] -> acc
    | "--help" :: _ | "-h" :: _ ->
        usage ();
        exit 0
    | "--corpus" :: rest -> go { acc with corpus = true } rest
    | "--list" :: rest -> go { acc with list_only = true } rest
    | "--witness" :: rest -> go { acc with witness = true } rest
    | "--suggest-fixes" :: rest -> go { acc with fixes = true } rest
    | "--only" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        let subs = String.split_on_char ',' v in
        if List.exists (fun s -> s = "") subs then
          die "--only takes a comma-separated list of non-empty substrings"
        else go { acc with only = acc.only @ subs } rest
    | [ "--only" ] | "--only" :: _ -> die "--only requires a value"
    | "--certify" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with certify_out = Some v } rest
    | [ "--certify" ] | "--certify" :: _ -> die "--certify requires a file name"
    | "--suppress" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with suppress = Some v } rest
    | [ "--suppress" ] | "--suppress" :: _ ->
        die "--suppress requires a file name"
    | "--json" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with json_out = Some v } rest
    | [ "--json" ] | "--json" :: _ -> die "--json requires a file name"
    | "--junit" :: v :: rest when not (String.length v > 0 && v.[0] = '-') ->
        go { acc with junit_out = Some v } rest
    | [ "--junit" ] | "--junit" :: _ -> die "--junit requires a file name"
    | arg :: _ -> die (Fmt.str "unknown argument %S" arg)
  in
  go
    { corpus = false; only = []; list_only = false; witness = false;
      certify_out = None; fixes = false; suppress = None; json_out = None;
      junit_out = None }
    argv

(* --- targets ------------------------------------------------------------- *)

type target = {
  id : string;  (* "suite/kernel" *)
  m : Kir.Ir.modul;
  entry : string;
  gt : Corpus.entry option;  (* ground truth in corpus mode *)
}

let expect_of t = Option.map (fun (e : Corpus.entry) -> e.Corpus.expect) t.gt

let default_targets () =
  let of_module suite (m : Kir.Ir.modul) =
    List.map
      (fun entry -> { id = suite ^ "/" ^ entry; m; entry; gt = None })
      m.Kir.Ir.kernels
  in
  of_module "jacobi" Apps.Jacobi.device_module
  @ of_module "tealeaf" Apps.Tealeaf.device_module
  @ of_module "pingpong" Apps.Pingpong.fill_src
  @ of_module "cutests" Testsuite.Cases.device_module

let corpus_targets () =
  List.map
    (fun (e : Corpus.entry) ->
      { id = "corpus/" ^ e.Corpus.name; m = e.Corpus.m; entry = e.Corpus.entry;
        gt = Some e })
    Corpus.all

(* --- lint ---------------------------------------------------------------- *)

type lint = {
  target : target;
  valid : (unit, string) result;
  params : (string * string) list;  (* (source name, R|W|RW|unused|scalar) *)
  races : RA.race list;
  proofs : (RA.race * W.outcome) list option;
      (* witness mode: one solver outcome per race, in race order *)
  fix : Cusan.Repair.outcome option;  (* --suggest-fixes, valid targets *)
  suppressed : bool;
}

let lint_target ~witness ~fixes (t : target) =
  match V.check_module t.m with
  | exception V.Invalid msg ->
      { target = t; valid = Error msg; params = []; races = []; proofs = None;
        fix = None; suppressed = false }
  | () ->
      let f = List.find (fun f -> f.Kir.Ir.fname = t.entry) t.m.Kir.Ir.funcs in
      let summary = KA.analyze t.m ~entry:t.entry in
      let params =
        List.mapi
          (fun i (pname, _ty) ->
            let acc =
              if i >= Array.length summary then "scalar"
              else
                match summary.(i) with
                | None -> "scalar"
                | Some a -> (
                    match KA.as_kernel_access a with
                    | None -> "unused"
                    | Some k -> Cudasim.Kernel.access_str k)
            in
            (pname, acc))
          f.Kir.Ir.params
      in
      let races = RA.analyze t.m ~entry:t.entry in
      let proofs =
        if witness then
          Some (List.map (fun r -> (r, W.prove t.m ~entry:t.entry r)) races)
        else None
      in
      let fix =
        if fixes then Some (Cusan.Repair.suggest t.m ~entry:t.entry) else None
      in
      { target = t; valid = Ok (); params; races; proofs; fix;
        suppressed = false }

let is_proved = function W.Proved _ -> true | W.Unproved _ -> false

let has_proved (l : lint) =
  match l.proofs with
  | None -> false
  | Some ps -> List.exists (fun (_, o) -> is_proved o) ps

(* Verdicts that gate the exit status: proved races once the witness
   engine has spoken, static musts otherwise. *)
let gating_races (l : lint) =
  match l.proofs with None -> RA.has_must l.races | Some _ -> has_proved l

(* Did the target meet expectations? Outside corpus mode that means
   "valid and free of gating races"; in corpus mode the static
   classification must match the seeded ground truth exactly, and the
   witness/repair outcomes (when those stages ran) must match the
   seeded [proves]/[repair] fields. *)
let ok (l : lint) =
  let static_ok =
    match expect_of l.target with
    | None -> (
        match l.valid with
        | Ok () -> not (gating_races l)
        | Error _ -> false)
    | Some Corpus.Invalid -> Result.is_error l.valid
    | Some Corpus.Must -> Result.is_ok l.valid && RA.has_must l.races
    | Some Corpus.May ->
        Result.is_ok l.valid && l.races <> [] && not (RA.has_must l.races)
    | Some Corpus.Clean -> Result.is_ok l.valid && l.races = []
  in
  let witness_ok =
    match (l.proofs, l.target.gt) with
    | None, _ | Some _, None -> true
    | Some _, Some e -> has_proved l = e.Corpus.proves
  in
  let repair_ok =
    match (l.fix, l.target.gt) with
    | None, _ | Some _, None -> true
    | Some f, Some e -> (
        match (f, e.Corpus.repair) with
        | Cusan.Repair.Already_clean, Corpus.Nothing_to_fix -> true
        | Cusan.Repair.Fixed fx, Corpus.Fixable pts ->
            fx.Cusan.Repair.fpoints = pts
        | Cusan.Repair.Unrepairable _, Corpus.Unfixable -> true
        | _ -> false)
  in
  static_ok && witness_ok && repair_ok

let classification (l : lint) =
  match l.valid with
  | Error msg -> "invalid: " ^ msg
  | Ok () -> (
      if l.races = [] then "clean"
      else
        match l.proofs with
        | None ->
            let musts =
              List.length
                (List.filter (fun r -> r.RA.verdict = RA.Must) l.races)
            in
            let mays = List.length l.races - musts in
            String.concat ", "
              ((if musts > 0 then [ Fmt.str "%d must-race(s)" musts ] else [])
              @ if mays > 0 then [ Fmt.str "%d may-race(s)" mays ] else [])
        | Some ps ->
            let proved =
              List.length (List.filter (fun (_, o) -> is_proved o) ps)
            in
            let mays = List.length ps - proved in
            String.concat ", "
              ((if proved > 0 then [ Fmt.str "%d proved-race(s)" proved ]
                else [])
              @ if mays > 0 then [ Fmt.str "%d may-race(s)" mays ] else []))

(* --- output -------------------------------------------------------------- *)

let describe_as verdict (r : RA.race) =
  Fmt.str "%s %s race on arg%d '%s' (phase %d): %s vs %s" verdict r.RA.kinds
    r.RA.param r.RA.pname r.RA.phase r.RA.site1 r.RA.site2

let race_line (l : lint) i (r : RA.race) =
  match l.proofs with
  | None -> RA.describe r
  | Some ps -> (
      match snd (List.nth ps i) with
      | W.Proved w ->
          Fmt.str "%s [witness: %s]" (describe_as "proved" r) (W.describe w)
      | W.Unproved why when r.RA.verdict = RA.Must ->
          Fmt.str "%s [downgraded from must: %s]" (describe_as "may" r) why
      | W.Unproved _ -> RA.describe r)

let print_human lints =
  List.iter
    (fun l ->
      let expect_note =
        match expect_of l.target with
        | None -> ""
        | Some e ->
            Fmt.str " [expect %s: %s]" (Corpus.expect_str e)
              (if ok l then "ok" else "MISMATCH")
      in
      let suppress_note = if l.suppressed then " [suppressed]" else "" in
      Fmt.pr "%-38s %s%s%s@." l.target.id (classification l) expect_note
        suppress_note;
      if l.valid = Ok () && l.params <> [] then
        Fmt.pr "    args: %s@."
          (String.concat " "
             (List.map (fun (n, a) -> Fmt.str "%s=%s" n a) l.params));
      List.iteri (fun i r -> Fmt.pr "    %s@." (race_line l i r)) l.races;
      match l.fix with
      | None | Some Cusan.Repair.Already_clean -> ()
      | Some (Cusan.Repair.Fixed f) ->
          Fmt.pr "    fix: insert %d barrier(s) at gap(s) [%s]@."
            (List.length f.Cusan.Repair.fpoints)
            (String.concat "; "
               (List.map string_of_int f.Cusan.Repair.fpoints));
          List.iter
            (fun p -> Fmt.pr "      %s@." p)
            f.Cusan.Repair.fpreviews
      | Some (Cusan.Repair.Unrepairable why) ->
          Fmt.pr "    fix: unrepairable (%s)@." why)
    lints

let json_of_lint ~v2 (l : lint) : Reporting.Mjson.t =
  let open Reporting.Mjson in
  let race_json i (r : RA.race) =
    let base_verdict =
      match r.RA.verdict with RA.Must -> "must" | RA.May -> "may"
    in
    let verdict, extra =
      if not v2 then (base_verdict, [])
      else
        match l.proofs with
        | None -> (base_verdict, [ ("witness", Null) ])
        | Some ps -> (
            match snd (List.nth ps i) with
            | W.Proved w ->
                ( "proved",
                  [
                    ("witness",
                     Obj
                       [
                         ("tid1", Int w.W.wtid1);
                         ("tid2", Int w.W.wtid2);
                         ("ntid", Int w.W.wntid);
                         ("params",
                          Obj
                            (List.map
                               (fun (n, v) -> (n, Int v))
                               w.W.wparams));
                         ("byte", Int w.W.wbyte);
                         ("phase", Int w.W.wphase);
                         ("kinds", Str w.W.wkinds);
                       ]);
                  ] )
            | W.Unproved why ->
                ( "may",
                  [
                    ("witness", Null);
                    ("downgraded", Bool (r.RA.verdict = RA.Must));
                    ("unproved", Str why);
                  ] ))
    in
    Obj
      ([
         ("verdict", Str verdict);
         ("kinds", Str r.RA.kinds);
         ("param", Int r.RA.param);
         ("pname", Str r.RA.pname);
         ("phase", Int r.RA.phase);
         ("site1", Str r.RA.site1);
         ("site2", Str r.RA.site2);
         ("description", Str (RA.describe r));
       ]
      @ extra)
  in
  let fix_json =
    if not v2 then []
    else
      match l.fix with
      | None -> []
      | Some Cusan.Repair.Already_clean ->
          [ ("fix", Obj [ ("status", Str "already-clean") ]) ]
      | Some (Cusan.Repair.Fixed f) ->
          [
            ("fix",
             Obj
               [
                 ("status", Str "fixed");
                 ("points",
                  List
                    (List.map (fun p -> Int p) f.Cusan.Repair.fpoints));
                 ("previews",
                  List
                    (List.map
                       (fun p -> Str p)
                       f.Cusan.Repair.fpreviews));
               ]);
          ]
      | Some (Cusan.Repair.Unrepairable why) ->
          [
            ("fix",
             Obj [ ("status", Str "unrepairable"); ("reason", Str why) ]);
          ]
  in
  Obj
    ([
       ("name", Str l.target.id);
       ("entry", Str l.target.entry);
       ("valid", Bool (Result.is_ok l.valid));
       ("error", match l.valid with Ok () -> Null | Error m -> Str m);
       ("params",
        List
          (List.map
             (fun (n, a) -> Obj [ ("name", Str n); ("access", Str a) ])
             l.params));
       ("races", List (List.mapi race_json l.races));
       ("ok", Bool (ok l));
     ]
    @ fix_json
    @ (if v2 then [ ("suppressed", Bool l.suppressed) ] else [])
    @
    match expect_of l.target with
    | None -> []
    | Some e -> [ ("expect", Str (Corpus.expect_str e)) ])

let json ~corpus ~v2 lints : Reporting.Mjson.t =
  let open Reporting.Mjson in
  let musts =
    List.fold_left
      (fun acc l ->
        acc + List.length (List.filter (fun r -> r.RA.verdict = RA.Must) l.races))
      0 lints
  in
  let proved =
    List.fold_left
      (fun acc l ->
        acc
        + match l.proofs with
          | None -> 0
          | Some ps -> List.length (List.filter (fun (_, o) -> is_proved o) ps))
      0 lints
  in
  Obj
    ([
       ("schema", Str (if v2 then "kirlint/2" else "kirlint/1"));
       ("corpus", Bool corpus);
       ("total", Int (List.length lints));
       ("ok", Int (List.length (List.filter ok lints)));
       ("musts", Int musts);
     ]
    @ (if v2 then
         [
           ("proved", Int proved);
           ("suppressed",
            Int (List.length (List.filter (fun l -> l.suppressed) lints)));
         ]
       else [])
    @ [ ("targets", List (List.map (json_of_lint ~v2) lints)) ])

let junit lints : string =
  let cases =
    List.map
      (fun (l : lint) ->
        let failure =
          if ok l then None
          else
            let body =
              String.concat "\n"
                ((match l.valid with
                 | Error msg -> [ "invalid module: " ^ msg ]
                 | Ok () -> [])
                @ List.map RA.describe l.races)
            in
            Some (classification l, body)
        in
        {
          Reporting.Junit.classname = "KirLint";
          name = l.target.id;
          time_s = 0.;
          failure;
        })
      lints
  in
  Reporting.Junit.to_string ~suite_name:"kirlint" cases

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- certification ------------------------------------------------------- *)

(* Build DRF certificates for the race-free targets and re-validate
   each one through the independent checker, from the serialized JSON
   bytes — never the in-memory analysis structures. Returns the
   kirlint-cert/1 document and the re-check failures (which fail the
   lint: the analysis and the checker disagreeing is a bug in one of
   them). *)
let certify lints =
  let open Reporting.Mjson in
  let certified = ref [] and uncertified = ref [] and failures = ref [] in
  List.iter
    (fun (l : lint) ->
      match l.valid with
      | Error msg ->
          uncertified := (l.target.id, "invalid module: " ^ msg) :: !uncertified
      | Ok () -> (
          match Cusan.Certificate.build l.target.m ~entry:l.target.entry with
          | Error reason -> uncertified := (l.target.id, reason) :: !uncertified
          | Ok cert -> (
              let doc = Cusan.Certificate.to_json cert in
              (* round-trip through the serialized bytes so the checker
                 sees exactly what a consumer would read from disk *)
              match of_string (to_string_pretty doc) with
              | Error e ->
                  failures :=
                    (l.target.id, "serialization round-trip: " ^ e)
                    :: !failures
              | Ok reread -> (
                  match
                    Cusan.Certcheck.check l.target.m ~entry:l.target.entry
                      reread
                  with
                  | Ok () -> certified := (l.target.id, doc) :: !certified
                  | Error e -> failures := (l.target.id, e) :: !failures))))
    lints;
  let doc =
    Obj
      [
        ("schema", Str "kirlint-cert/1");
        ("total", Int (List.length lints));
        ("certified", Int (List.length !certified));
        ("uncertified",
         List
           (List.rev_map
              (fun (n, r) -> Obj [ ("name", Str n); ("reason", Str r) ])
              !uncertified));
        ("certificates",
         List
           (List.rev_map
              (fun (n, c) -> Obj [ ("name", Str n); ("cert", c) ])
              !certified));
      ]
  in
  (doc, List.length !certified, List.rev !failures)

(* --- main ---------------------------------------------------------------- *)

let contains ~sub name =
  let nl = String.length name and sl = String.length sub in
  let rec at i = i + sl <= nl && (String.sub name i sl = sub || at (i + 1)) in
  at 0

let () =
  let o = parse_args (List.tl (Array.to_list Sys.argv)) in
  let targets =
    let all = if o.corpus then corpus_targets () else default_targets () in
    match o.only with
    | [] -> all
    | subs ->
        List.filter
          (fun t -> List.exists (fun sub -> contains ~sub t.id) subs)
          all
  in
  if targets = [] then begin
    Fmt.epr "kirlint: no target matches --only %s@."
      (String.concat "," o.only);
    exit 2
  end;
  if o.list_only then begin
    List.iter (fun t -> Fmt.pr "%s@." t.id) targets;
    exit 0
  end;
  let patterns =
    match o.suppress with
    | None -> []
    | Some path -> (
        match read_file path with
        | content -> Tsan.Suppress.parse content
        | exception Sys_error e -> die ("--suppress: " ^ e))
  in
  let lints =
    List.map
      (fun t ->
        let l = lint_target ~witness:o.witness ~fixes:o.fixes t in
        let suppressed =
          List.exists
            (fun pat ->
              contains ~sub:pat l.target.id
              || List.exists (fun r -> contains ~sub:pat (RA.describe r))
                   l.races)
            patterns
        in
        { l with suppressed })
      targets
  in
  print_human lints;
  let failed = List.filter (fun l -> not (ok l)) lints in
  let gate_failed = List.filter (fun l -> not l.suppressed) failed in
  let gate_races =
    List.exists (fun l -> (not l.suppressed) && gating_races l) lints
  in
  let cert_failures =
    match o.certify_out with
    | None -> []
    | Some path ->
        let doc, ncerts, failures = certify lints in
        write_file path (Reporting.Mjson.to_string_pretty doc);
        Fmt.pr "wrote %s (%d certificate(s), %d uncertified)@." path ncerts
          (List.length lints - ncerts);
        List.iter
          (fun (n, e) ->
            Fmt.epr "kirlint: certificate re-check FAILED for %s: %s@." n e)
          failures;
        failures
  in
  let v2 = o.witness || o.fixes || o.suppress <> None in
  (match o.json_out with
  | None -> ()
  | Some path ->
      write_file path
        (Reporting.Mjson.to_string_pretty (json ~corpus:o.corpus ~v2 lints));
      Fmt.pr "wrote %s@." path);
  (match o.junit_out with
  | None -> ()
  | Some path ->
      write_file path (junit lints);
      Fmt.pr "wrote %s@." path);
  let nsupp = List.length (List.filter (fun l -> l.suppressed) lints) in
  Fmt.pr "@.%d of %d kernels %s%s%s@."
    (List.length lints - List.length failed)
    (List.length lints)
    (if o.corpus then "classified as expected" else "lint clean")
    (if gate_races then
       if o.witness then " (proved-races present)" else " (must-races present)"
     else "")
    (if nsupp > 0 then Fmt.str " (%d suppressed)" nsupp else "");
  if gate_failed <> [] || gate_races || cert_failures <> [] then exit 1
