(* MUST + TypeART datatype checking example (paper, Fig. 2): passing a
   float buffer as MPI_DOUBLE, and communicating more elements than the
   allocation holds, are both flagged from the type information TypeART
   recorded at the (instrumented) allocation site.

     dune exec examples/datatype_check.exe *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

module Mem = Cudasim.Memory
module Mpi = Mpisim.Mpi
module R = Harness.Run

let program : R.app =
 fun env ->
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  if ctx.Mpi.rank = 0 then begin
    (* Bug 1: an f32 buffer declared as MPI_DOUBLE. *)
    let wrong = Mem.cuda_malloc ~tag:"f32_buf" dev ~ty:Typeart.Typedb.F32 ~count:32 in
    Mpi.send ctx ~buf:wrong ~count:16 ~dt:Mpisim.Datatype.double ~dst:1 ~tag:0;
    let ok = Mem.cuda_malloc ~tag:"ok_buf" dev ~ty:Typeart.Typedb.F64 ~count:32 in
    Mpi.send ctx ~buf:ok ~count:4 ~dt:Mpisim.Datatype.double ~dst:1 ~tag:1;
    Mem.free dev wrong;
    Mem.free dev ok
  end
  else begin
    let buf = Mem.cuda_malloc ~tag:"recv_buf" dev ~ty:Typeart.Typedb.F64 ~count:32 in
    Mpi.recv ctx ~buf ~count:16 ~dt:Mpisim.Datatype.double ~src:0 ~tag:0;
    (* Bug 2 (count overflow check): the declared receive window behind
       an interior pointer exceeds the allocation. The 4-double message
       happens to fit, so only MUST's TypeART check complains — exactly
       the dormant-bug class the paper's Fig. 2 setup targets. *)
    let interior = Memsim.Ptr.add buf ~elt:8 24 in
    Mpi.recv ctx ~buf:interior ~count:16 ~dt:Mpisim.Datatype.double ~src:0 ~tag:1;
    Mem.free dev buf
  end

let () =
  Fmt.pr "MUST + TypeART datatype checks@.";
  let res =
    R.run ~nranks:2 ~check_types:true ~flavor:Harness.Flavor.Must_cusan program
  in
  match res.R.must_errors with
  | [] -> Fmt.pr "no findings (unexpected!)@."
  | errs ->
      Fmt.pr "%d finding(s):@." (List.length errs);
      List.iter (fun e -> Fmt.pr "  %s@." (Fmt.str "%a" Must.Errors.pp e)) errs
