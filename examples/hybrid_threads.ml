(* Hybrid MPI + host threads with per-thread default streams.

   The paper's Section VI-B names per-thread default stream support as
   future work; this simulator implements it. The same two-threaded
   program is safe when both threads share the single legacy default
   stream (their kernels serialize), but races under
   --default-stream per-thread, where each host thread launches onto its
   own stream.

     dune exec examples/hybrid_threads.exe *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module R = Harness.Run

let n = 512

let scale_src =
  Kir.Dsl.(
    modul ~kernels:[ "scale" ]
      [
        func "scale"
          [ ptr "buf"; scalar "s"; scalar "n" ]
          [ if_ (tid <. p 2) [ store (p 0) tid (p 1 *. load (p 0) tid) ] [] ];
      ])

let program : R.app =
 fun env ->
  let dev = env.R.dev in
  let scale = env.R.compile (Cudasim.Kernel.make ~kir:(scale_src, "scale") "scale") in
  let buf = Mem.cuda_malloc ~tag:"buf" dev ~ty:Typeart.Typedb.F64 ~count:n in
  Mem.memset dev ~dst:buf ~bytes:(n * 8) ~value:0 ();
  Dev.device_synchronize dev;
  (* Two host threads, each launching on "the default stream". *)
  R.parallel env
    [
      (fun () -> Dev.launch dev scale ~grid:n ~args:[| VPtr buf; VFlt 2.0; VInt n |] ());
      (fun () -> Dev.launch dev scale ~grid:n ~args:[| VPtr buf; VFlt 3.0; VInt n |] ());
    ];
  Dev.device_synchronize dev;
  Mem.free dev buf

let () =
  Fmt.pr "Two host threads launching kernels on 'the default stream'@.";
  let run mode_name default_stream_mode =
    Fmt.pr "@.== --default-stream %s@." mode_name;
    let res =
      R.run ~nranks:1 ~default_stream_mode ~flavor:Harness.Flavor.Cusan program
    in
    (match res.R.races with
    | [] -> Fmt.pr "   no data races detected (kernels serialized)@."
    | races ->
        List.iter
          (fun (_, r) -> Fmt.pr "   %s@." (Tsan.Report.to_string r))
          races);
    Fmt.pr "   tracked streams: %d@."
      res.R.cuda_counters.Cusan.Counters.streams
  in
  run "legacy" Dev.Legacy;
  run "per-thread" Dev.Per_thread
