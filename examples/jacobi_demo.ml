(* Jacobi mini-app demo: runs the CUDA-aware MPI Jacobi solver under a
   chosen tool configuration, verifies the result against the serial
   reference, and prints races and event counters.

     dune exec examples/jacobi_demo.exe -- --flavor must-cusan --racy
     dune exec examples/jacobi_demo.exe -- --nx 128 --ny 128 --iters 200

   --faults SPEC (and optional --seed N) runs the fault-tolerant solver
   under the deterministic injector: survivors revoke + shrink the
   communicator, restore from the replicated in-memory checkpoint and
   still converge to the reference norm.

     dune exec examples/jacobi_demo.exe -- --faults 'mpi_collective@1#2:crash' *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

let () =
  let nx = ref 64
  and ny = ref 64
  and iters = ref 100
  and nranks = ref 2
  and racy = ref false
  and deferred = ref false
  and rma = ref false
  and faults_spec = ref None
  and seed = ref None
  and flavor = ref Harness.Flavor.Must_cusan in
  let spec =
    [
      ("--nx", Arg.Set_int nx, "global columns (default 64)");
      ("--ny", Arg.Set_int ny, "global rows (default 64)");
      ("--iters", Arg.Set_int iters, "Jacobi iterations (default 100)");
      ("--ranks", Arg.Set_int nranks, "MPI ranks (default 2)");
      ("--racy", Arg.Set racy, "skip cudaDeviceSynchronize before the exchange");
      ( "--rma",
        Arg.Set rma,
        "one-sided halo exchange (MPI_Put + fences over device windows)" );
      ("--deferred", Arg.Set deferred, "deferred device execution (stale data observable)");
      ( "--flavor",
        Arg.String
          (fun s ->
            match Harness.Flavor.of_string s with
            | Some f -> flavor := f
            | None -> raise (Arg.Bad ("unknown flavor " ^ s))),
        "tool stack: vanilla|tsan|must|cusan|must-cusan (default must-cusan)" );
      ( "--faults",
        Arg.String (fun s -> faults_spec := Some s),
        "SPEC arm the fault injector and run the fault-tolerant solver \
         (grammar: cutests --faults help)" );
      ( "--seed",
        Arg.Int (fun n -> seed := Some n),
        "N fault-injection PRNG seed (default 0)" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected " ^ a))) "jacobi_demo";
  let cfg =
    Apps.Jacobi.config ~nx:!nx ~ny:!ny ~iters:!iters
      ~norm_every:(max 1 (!iters / 2)) ~racy:!racy
      ~exchange:(if !rma then Apps.Jacobi.Rma else Apps.Jacobi.Sendrecv)
      ~nranks:!nranks ()
  in
  let mode = if !deferred then Cudasim.Device.Deferred else Cudasim.Device.Eager in
  Fmt.pr "Jacobi %dx%d, %d iters, %d ranks, %a%s%s%s@." !nx !ny !iters !nranks
    Harness.Flavor.pp !flavor
    (if !racy then ", RACY (no sync before MPI)" else "")
    (if !rma then ", one-sided exchange" else "")
    (if !deferred then ", deferred execution" else "");
  let expect =
    Apps.Jacobi.reference ~nx:!nx ~ny:!ny ~iters:!iters ~norm_every:1
  in
  (match !faults_spec with
  | None -> ()
  | Some spec ->
      (match Faultsim.Plan.parse_spec spec with
      | Error msg ->
          Fmt.epr "jacobi_demo: bad --faults spec: %s@." msg;
          exit 2
      | Ok (spec_seed, plan) ->
          if !rma then begin
            Fmt.epr "jacobi_demo: the fault-tolerant solver is Sendrecv-only@.";
            exit 2
          end;
          let seed =
            match (!seed, spec_seed) with
            | Some s, _ -> s
            | None, Some s -> s
            | None, None -> 0
          in
          Fmt.pr "faults '%s' (seed %d): running the fault-tolerant solver@."
            (Faultsim.Plan.to_string plan)
            seed;
          let out = Apps.Jacobi.resilient_outcome ~nranks:!nranks in
          let res =
            Harness.Run.run ~nranks:!nranks ~mode ~flavor:!flavor
              ~watchdog:5_000_000 ~faults:(seed, plan)
              (Apps.Jacobi.resilient_app cfg out)
          in
          List.iter
            (fun pm -> Fmt.pr "  %a@." Harness.Run.pp_post_mortem pm)
            res.Harness.Run.post_mortems;
          (match res.Harness.Run.deadlock with
          | None -> ()
          | Some parties ->
              Fmt.pr "  hang diagnosed (deadlock):@.";
              List.iter
                (fun (task, why) -> Fmt.pr "    %s blocked in %s@." task why)
                parties);
          (match res.Harness.Run.stall with
          | None -> ()
          | Some s ->
              Fmt.pr "  hang diagnosed: %a@." Sched.Scheduler.pp_stall s);
          let survivors = ref 0 and converged = ref 0 in
          for rank = 0 to !nranks - 1 do
            let dead =
              List.exists
                (fun pm -> pm.Harness.Run.pm_rank = rank)
                res.Harness.Run.post_mortems
            in
            if dead then Fmt.pr "  rank %d: crashed@." rank
            else begin
              incr survivors;
              let norm = cfg.Apps.Jacobi.results.(rank) in
              let ok =
                Float.abs (norm -. expect) <= 1e-9 *. Float.max 1. expect
              in
              if ok then incr converged;
              Fmt.pr "  rank %d: final norm %.12g (reference %.12g)%s%s@." rank
                norm expect
                (if out.Apps.Jacobi.recovered.(rank) then
                   Fmt.str ", recovered (restarted from iteration %d)"
                     out.Apps.Jacobi.restart_iter.(rank)
                 else "")
                (if ok then "" else " MISMATCH")
            end
          done;
          Fmt.pr "%d fault(s) injected; %d survivor(s), %d converged@."
            (List.length res.Harness.Run.fault_log)
            !survivors !converged;
          exit (if !survivors > 0 && !converged = !survivors then 0 else 1)));
  let res = Harness.Run.run ~nranks:!nranks ~mode ~flavor:!flavor (Apps.Jacobi.app cfg) in
  Fmt.pr "final residual norm: %.12g (serial reference: %.12g)@."
    cfg.Apps.Jacobi.results.(0) expect;
  Fmt.pr "wall time: %.3f s@." res.Harness.Run.wall_s;
  (match res.Harness.Run.races with
  | [] -> Fmt.pr "no data races detected@."
  | races ->
      Fmt.pr "@.%d data race report(s):@." (List.length races);
      List.iter
        (fun (rank, r) -> Fmt.pr "  rank %d: %s@." rank (Tsan.Report.to_string r))
        races);
  if Harness.Flavor.uses_cusan !flavor then begin
    Fmt.pr "@.CUDA event counters (rank 0):@.%a@." Cusan.Counters.pp
      res.Harness.Run.cuda_counters;
    Fmt.pr "TSan event counters (rank 0):@.%a@." Tsan.Counters.pp
      res.Harness.Run.tsan_counters
  end
