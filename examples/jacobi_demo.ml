(* Jacobi mini-app demo: runs the CUDA-aware MPI Jacobi solver under a
   chosen tool configuration, verifies the result against the serial
   reference, and prints races and event counters.

     dune exec examples/jacobi_demo.exe -- --flavor must-cusan --racy
     dune exec examples/jacobi_demo.exe -- --nx 128 --ny 128 --iters 200 *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

let () =
  let nx = ref 64
  and ny = ref 64
  and iters = ref 100
  and nranks = ref 2
  and racy = ref false
  and deferred = ref false
  and rma = ref false
  and flavor = ref Harness.Flavor.Must_cusan in
  let spec =
    [
      ("--nx", Arg.Set_int nx, "global columns (default 64)");
      ("--ny", Arg.Set_int ny, "global rows (default 64)");
      ("--iters", Arg.Set_int iters, "Jacobi iterations (default 100)");
      ("--ranks", Arg.Set_int nranks, "MPI ranks (default 2)");
      ("--racy", Arg.Set racy, "skip cudaDeviceSynchronize before the exchange");
      ( "--rma",
        Arg.Set rma,
        "one-sided halo exchange (MPI_Put + fences over device windows)" );
      ("--deferred", Arg.Set deferred, "deferred device execution (stale data observable)");
      ( "--flavor",
        Arg.String
          (fun s ->
            match Harness.Flavor.of_string s with
            | Some f -> flavor := f
            | None -> raise (Arg.Bad ("unknown flavor " ^ s))),
        "tool stack: vanilla|tsan|must|cusan|must-cusan (default must-cusan)" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected " ^ a))) "jacobi_demo";
  let cfg =
    Apps.Jacobi.config ~nx:!nx ~ny:!ny ~iters:!iters
      ~norm_every:(max 1 (!iters / 2)) ~racy:!racy
      ~exchange:(if !rma then Apps.Jacobi.Rma else Apps.Jacobi.Sendrecv)
      ~nranks:!nranks ()
  in
  let mode = if !deferred then Cudasim.Device.Deferred else Cudasim.Device.Eager in
  Fmt.pr "Jacobi %dx%d, %d iters, %d ranks, %a%s%s%s@." !nx !ny !iters !nranks
    Harness.Flavor.pp !flavor
    (if !racy then ", RACY (no sync before MPI)" else "")
    (if !rma then ", one-sided exchange" else "")
    (if !deferred then ", deferred execution" else "");
  let res = Harness.Run.run ~nranks:!nranks ~mode ~flavor:!flavor (Apps.Jacobi.app cfg) in
  let expect =
    Apps.Jacobi.reference ~nx:!nx ~ny:!ny ~iters:!iters ~norm_every:1
  in
  Fmt.pr "final residual norm: %.12g (serial reference: %.12g)@."
    cfg.Apps.Jacobi.results.(0) expect;
  Fmt.pr "wall time: %.3f s@." res.Harness.Run.wall_s;
  (match res.Harness.Run.races with
  | [] -> Fmt.pr "no data races detected@."
  | races ->
      Fmt.pr "@.%d data race report(s):@." (List.length races);
      List.iter
        (fun (rank, r) -> Fmt.pr "  rank %d: %s@." rank (Tsan.Report.to_string r))
        races);
  if Harness.Flavor.uses_cusan !flavor then begin
    Fmt.pr "@.CUDA event counters (rank 0):@.%a@." Cusan.Counters.pp
      res.Harness.Run.cuda_counters;
    Fmt.pr "TSan event counters (rank 0):@.%a@." Tsan.Counters.pp
      res.Harness.Run.tsan_counters
  end
