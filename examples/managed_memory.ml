(* Managed-memory example: CUDA-only race detection without MPI.

   CUDA-managed memory (cudaMallocManaged) is migrated automatically,
   but *operations on it must still be synchronized* (paper, Section
   III-C). Host code reading a managed buffer while a kernel is writing
   it is a data race CuSan detects on its own — the PyTorch CSAN
   comparison in the paper's Section VI-E covers only this class; CuSan
   handles it for arbitrary C/C++ (here: simulated) codes.

     dune exec examples/managed_memory.exe *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module R = Harness.Run

let n = 1024

let saxpy_src =
  Kir.Dsl.(
    modul ~kernels:[ "saxpy" ]
      [
        func "saxpy"
          [ ptr "y"; ptr "x"; scalar "a"; scalar "n" ]
          [
            if_ (tid <. p 3)
              [ store (p 0) tid ((p 2 *. load (p 1) tid) +. load (p 0) tid) ]
              [];
          ];
      ])

let program ~sync : R.app =
 fun env ->
  let dev = env.R.dev in
  let saxpy = env.R.compile (Cudasim.Kernel.make ~kir:(saxpy_src, "saxpy") "saxpy") in
  let x = Mem.cuda_malloc_managed ~tag:"x" dev ~ty:Typeart.Typedb.F64 ~count:n in
  let y = Mem.cuda_malloc_managed ~tag:"y" dev ~ty:Typeart.Typedb.F64 ~count:n in
  (* Host initialization of managed memory is fine: the kernel launch
     orders it before the device accesses. *)
  for i = 0 to n - 1 do
    Memsim.Access.set_f64 x i (float_of_int i);
    Memsim.Access.set_f64 y i 1.0
  done;
  Dev.launch dev saxpy ~grid:n ~args:[| VPtr y; VPtr x; VFlt 2.0; VInt n |] ();
  if sync then Dev.device_synchronize dev;
  (* Host consumption: racy without the synchronization above. *)
  let s = ref 0. in
  for i = 0 to n - 1 do
    s := !s +. Memsim.Access.get_f64 y i
  done;
  Fmt.pr "   sum(y) = %.1f (expected %.1f)@." !s
    (float_of_int n +. (2.0 *. float_of_int (n * (n - 1) / 2)));
  Mem.free dev x;
  Mem.free dev y

let () =
  Fmt.pr "Managed-memory (cudaMallocManaged) host access under CuSan@.";
  let run title sync =
    Fmt.pr "@.== %s@." title;
    let res = R.run ~nranks:1 ~flavor:Harness.Flavor.Cusan (program ~sync) in
    match res.R.races with
    | [] -> Fmt.pr "   no data races detected@."
    | races ->
        List.iter
          (fun (_, r) -> Fmt.pr "   %s@." (Tsan.Report.to_string r))
          races
  in
  run "with cudaDeviceSynchronize before the host read" true;
  run "WITHOUT synchronization (host reads while kernel writes)" false
