(* OSU-style CUDA-aware ping-pong: modelled one-way latency and
   bandwidth for device-to-device (CUDA-aware MPI) vs. host-staged
   transfers, plus what CuSan reports when the fill kernel is not
   synchronized before the first send.

     dune exec examples/pingpong_demo.exe

   With --faults SPEC (and optional --seed N) the demo instead runs the
   fault-tolerant ping-pong under the deterministic injector: kill a
   rank mid-volley and the survivor revokes, shrinks to a singleton
   communicator, restores the payload from its checkpoint and finishes.

     dune exec examples/pingpong_demo.exe -- --faults 'mpi_recv@1#3:crash' *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

module R = Harness.Run

(* Same minimal scan style as Trace.Cli: this demo has no strict parser. *)
let find_value_arg name =
  let argv = Sys.argv in
  let n = Array.length argv in
  let rec go i =
    if i >= n then None
    else if argv.(i) = name && i + 1 < n then Some argv.(i + 1)
    else go (i + 1)
  in
  go 1

let resilient_demo spec =
  match Faultsim.Plan.parse_spec spec with
  | Error msg ->
      Fmt.epr "pingpong_demo: bad --faults spec: %s@." msg;
      exit 2
  | Ok (spec_seed, plan) ->
      let seed =
        match Option.bind (find_value_arg "--seed") int_of_string_opt with
        | Some s -> s
        | None -> Option.value spec_seed ~default:0
      in
      let iters = 12 and n = 256 in
      Fmt.pr "Fault-tolerant ping-pong: %d round trips, faults '%s' (seed %d)@."
        iters
        (Faultsim.Plan.to_string plan)
        seed;
      let rep = Apps.Pingpong.resilient_report ~nranks:2 in
      let res =
        R.run ~nranks:2 ~flavor:Harness.Flavor.Vanilla ~watchdog:1_000_000
          ~faults:(seed, plan)
          (Apps.Pingpong.resilient_app ~n ~iters rep)
      in
      List.iter
        (fun pm -> Fmt.pr "  %a@." R.pp_post_mortem pm)
        res.R.post_mortems;
      (match res.R.deadlock with
      | None -> ()
      | Some parties ->
          Fmt.pr "  hang diagnosed (deadlock):@.";
          List.iter
            (fun (task, why) -> Fmt.pr "    %s blocked in %s@." task why)
            parties);
      (match res.R.stall with
      | None -> ()
      | Some s -> Fmt.pr "  hang diagnosed: %a@." Sched.Scheduler.pp_stall s);
      let expect = Apps.Pingpong.expected_checksum ~n in
      let survivors = ref 0 and intact = ref 0 in
      for rank = 0 to 1 do
        let dead =
          List.exists (fun pm -> pm.R.pm_rank = rank) res.R.post_mortems
        in
        if dead then Fmt.pr "  rank %d: crashed@." rank
        else begin
          incr survivors;
          let sum = rep.Apps.Pingpong.checksum.(rank) in
          if sum = expect then incr intact;
          Fmt.pr "  rank %d: %d/%d round trips, checksum %g (expected %g)%s@."
            rank
            rep.Apps.Pingpong.completed.(rank)
            iters sum expect
            (if rep.Apps.Pingpong.recovered.(rank) then
               ", recovered on shrunken communicator"
             else "")
        end
      done;
      Fmt.pr "%d fault(s) injected; %d survivor(s), %d with intact payload@."
        (List.length res.R.fault_log)
        !survivors !intact;
      if !survivors = 0 || !intact <> !survivors then exit 1

let () =
  match find_value_arg "--faults" with
  | Some spec ->
      resilient_demo spec;
      exit 0
  | None -> ()

let () =
  Fmt.pr "CUDA-aware ping-pong (osu_latency-style), modelled timings@.";
  let measure placement =
    let cfg = Apps.Pingpong.config ~placement () in
    let res = R.run ~nranks:2 ~flavor:Harness.Flavor.Vanilla (Apps.Pingpong.app cfg) in
    ignore res;
    !(cfg.Apps.Pingpong.results)
  in
  let dd = measure Apps.Pingpong.Device_to_device in
  let hh = measure Apps.Pingpong.Host_to_host in
  Fmt.pr "@.  %10s %16s %16s %12s@." "bytes" "D-D lat [us]" "staged lat [us]"
    "D-D speedup";
  List.iter2
    (fun (bytes, d) (_, h) ->
      Fmt.pr "  %10d %16.2f %16.2f %11.2fx@." bytes (d *. 1e6) (h *. 1e6)
        (h /. d))
    dd hh;
  Fmt.pr "@.  %10s %14s %14s@." "bytes" "D-D [GB/s]" "staged [GB/s]";
  List.iter2
    (fun (bytes, d) (_, h) ->
      if bytes >= 4096 then
        Fmt.pr "  %10d %14.2f %14.2f@." bytes
          (float_of_int bytes /. d /. 1e9)
          (float_of_int bytes /. h /. 1e9))
    dd hh;
  (* the race check *)
  let cfg = Apps.Pingpong.config ~sizes:[ 1024 ] ~racy:true () in
  let res = R.run ~nranks:2 ~flavor:Harness.Flavor.Must_cusan (Apps.Pingpong.app cfg) in
  Fmt.pr "@.== unsynchronized fill kernel before the first send@.";
  match res.R.races with
  | [] -> Fmt.pr "   no data races detected (unexpected!)@."
  | races ->
      List.iter
        (fun (rank, r) -> Fmt.pr "   rank %d: %s@." rank (Tsan.Report.to_string r))
        races
