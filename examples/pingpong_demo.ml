(* OSU-style CUDA-aware ping-pong: modelled one-way latency and
   bandwidth for device-to-device (CUDA-aware MPI) vs. host-staged
   transfers, plus what CuSan reports when the fill kernel is not
   synchronized before the first send.

     dune exec examples/pingpong_demo.exe *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

module R = Harness.Run

let () =
  Fmt.pr "CUDA-aware ping-pong (osu_latency-style), modelled timings@.";
  let measure placement =
    let cfg = Apps.Pingpong.config ~placement () in
    let res = R.run ~nranks:2 ~flavor:Harness.Flavor.Vanilla (Apps.Pingpong.app cfg) in
    ignore res;
    !(cfg.Apps.Pingpong.results)
  in
  let dd = measure Apps.Pingpong.Device_to_device in
  let hh = measure Apps.Pingpong.Host_to_host in
  Fmt.pr "@.  %10s %16s %16s %12s@." "bytes" "D-D lat [us]" "staged lat [us]"
    "D-D speedup";
  List.iter2
    (fun (bytes, d) (_, h) ->
      Fmt.pr "  %10d %16.2f %16.2f %11.2fx@." bytes (d *. 1e6) (h *. 1e6)
        (h /. d))
    dd hh;
  Fmt.pr "@.  %10s %14s %14s@." "bytes" "D-D [GB/s]" "staged [GB/s]";
  List.iter2
    (fun (bytes, d) (_, h) ->
      if bytes >= 4096 then
        Fmt.pr "  %10d %14.2f %14.2f@." bytes
          (float_of_int bytes /. d /. 1e9)
          (float_of_int bytes /. h /. 1e9))
    dd hh;
  (* the race check *)
  let cfg = Apps.Pingpong.config ~sizes:[ 1024 ] ~racy:true () in
  let res = R.run ~nranks:2 ~flavor:Harness.Flavor.Must_cusan (Apps.Pingpong.app cfg) in
  Fmt.pr "@.== unsynchronized fill kernel before the first send@.";
  match res.R.races with
  | [] -> Fmt.pr "   no data races detected (unexpected!)@."
  | races ->
      List.iter
        (fun (rank, r) -> Fmt.pr "   rank %d: %s@." rank (Tsan.Report.to_string r))
        races
