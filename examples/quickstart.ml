(* Quickstart: the paper's Fig. 4 program, verbatim.

     cudaMalloc(&d_data, ...);
     if (rank == 0) {
       kernel<<<...>>>(d_data, size);
       cudaDeviceSynchronize();            // <- forget this and race
       MPI_Send(d_data, ...);
     } else {
       MPI_Irecv(d_data, ..., &request);
       MPI_Wait(&request, ...);            // <- forget this and race
       kernel_2<<<...>>>(d_data, size);
     }

   Run it correctly, then with the synchronization removed, under the
   full MUST & CuSan stack, and print what the detector says.

     dune exec examples/quickstart.exe *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Mpi = Mpisim.Mpi
module R = Harness.Run

let size = 256

let kernel_src =
  Kir.Dsl.(
    modul ~kernels:[ "kernel"; "kernel_2" ]
      [
        func "kernel" [ ptr "d_data"; scalar "size" ]
          [ if_ (tid <. p 1) [ store (p 0) tid (i2f tid) ] [] ];
        func "kernel_2" [ ptr "d_data"; scalar "size" ]
          [ if_ (tid <. p 1) [ store (p 0) tid (load (p 0) tid *. f 2.) ] [] ];
      ])

let fig4 ~sync_send ~wait_recv : R.app =
 fun env ->
  let dev = env.R.dev and ctx = env.R.mpi in
  let d_data = Mem.cuda_malloc ~tag:"d_data" dev ~ty:Typeart.Typedb.F64 ~count:size in
  if ctx.Mpi.rank = 0 then begin
    let kernel = env.R.compile (Cudasim.Kernel.make ~kir:(kernel_src, "kernel") "kernel") in
    Dev.launch dev kernel ~grid:size ~args:[| VPtr d_data; VInt size |] ();
    if sync_send then Dev.device_synchronize dev (* blocks until kernel completes *);
    Mpi.send ctx ~buf:d_data ~count:size ~dt:Mpisim.Datatype.double ~dst:1 ~tag:0
  end
  else begin
    let kernel_2 =
      env.R.compile (Cudasim.Kernel.make ~kir:(kernel_src, "kernel_2") "kernel_2")
    in
    let request =
      Mpi.irecv ctx ~buf:d_data ~count:size ~dt:Mpisim.Datatype.double ~src:0 ~tag:0
    in
    if wait_recv then Mpi.wait ctx request (* blocks until Irecv completes *);
    Dev.launch dev kernel_2 ~grid:size ~args:[| VPtr d_data; VInt size |] ();
    Dev.device_synchronize dev;
    if not wait_recv then Mpi.wait ctx request
  end;
  Mem.free dev d_data

let report title res =
  Fmt.pr "@.== %s@." title;
  (match res.R.races with
  | [] -> Fmt.pr "   no data races detected@."
  | races ->
      List.iter
        (fun (rank, r) ->
          Fmt.pr "   rank %d: %s@." rank (Tsan.Report.to_string r))
        races);
  Fmt.pr "   (%d kernel launches intercepted, %d fiber switches)@."
    res.R.cuda_counters.Cusan.Counters.kernels
    res.R.tsan_counters.Tsan.Counters.fiber_switches

(* Intra-kernel races are a different beast: both accesses happen
   inside one launch, so no host-side synchronization is wrong — the
   kernel itself is. The static analysis catches these at compile time
   (the dynamic detector cannot, by construction). *)
let intra_kernel ~with_barrier : R.app =
 fun env ->
  let dev = env.R.dev in
  if env.R.mpi.Mpi.rank = 0 then begin
    let m =
      if with_barrier then Testsuite.Corpus.two_phase_barrier
      else Testsuite.Corpus.neighbor_write
    in
    let entry = List.hd m.Kir.Ir.kernels in
    let k = env.R.compile (Cudasim.Kernel.make ~kir:(m, entry) entry) in
    let pb = Mem.cuda_malloc ~tag:"p" dev ~ty:Typeart.Typedb.F64 ~count:(size + 1) in
    let qb = Mem.cuda_malloc ~tag:"q" dev ~ty:Typeart.Typedb.F64 ~count:size in
    let args =
      if with_barrier then [| Kir.Interp.VPtr pb; Kir.Interp.VPtr qb |]
      else [| Kir.Interp.VPtr pb |]
    in
    Dev.launch dev k ~grid:size ~args ();
    Dev.device_synchronize dev;
    Mem.free dev pb;
    Mem.free dev qb
  end

let report_static title res =
  Fmt.pr "@.== %s@." title;
  (match R.static_musts res with
  | [] -> Fmt.pr "   no static must-races@."
  | musts ->
      List.iter
        (fun (kernel, descr) -> Fmt.pr "   kernel %s: %s@." kernel descr)
        musts);
  List.iter
    (fun (kernel, verdict, descr) ->
      if verdict = Cudasim.Kernel.May_race then
        Fmt.pr "   (may) kernel %s: %s@." kernel descr)
    res.R.static_races

let () =
  Fmt.pr "CuSan quickstart: the paper's Fig. 4 example under MUST & CuSan@.";
  let run app = R.run ~nranks:2 ~flavor:Harness.Flavor.Must_cusan app in
  report "correct: cudaDeviceSynchronize + MPI_Wait in place"
    (run (fig4 ~sync_send:true ~wait_recv:true));
  report "missing cudaDeviceSynchronize before MPI_Send (Fig. 4 line 4 removed)"
    (run (fig4 ~sync_send:false ~wait_recv:true));
  report "kernel launched before MPI_Wait (Fig. 4 line 8 moved down)"
    (run (fig4 ~sync_send:true ~wait_recv:false));
  report_static
    "intra-kernel: p[tid] = p[tid+1] with no __syncthreads() (static must-race)"
    (run (intra_kernel ~with_barrier:false));
  report_static
    "intra-kernel: neighbor exchange split by __syncthreads() (clean)"
    (run (intra_kernel ~with_barrier:true))
