(* One-sided communication example: a distributed histogram built with
   MPI_Accumulate into a window on rank 0, plus what MUST's RMA
   extension reports when the fence discipline is violated.

   Concurrent MPI_Accumulate calls to the same location are legal (same
   operation), so the correct version is clean even though every rank
   updates the same bins in the same epoch. Reading the bins while the
   epoch is still open is a race.

     dune exec examples/rma_histogram.exe *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

module R = Harness.Run
module Mpi = Mpisim.Mpi
module A = Memsim.Access

let bins = 8
let samples_per_rank = 256

let program ~read_too_early : R.app =
 fun env ->
  let ctx = env.R.mpi in
  let histo =
    Typeart.Pass.alloc ~tag:"histogram" Memsim.Space.Host_pageable
      Typeart.Typedb.F64 bins
  in
  let win = Mpi.win_create ctx ~buf:histo ~bytes:(bins * 8) in
  Mpi.win_fence ctx win;
  (* Every rank accumulates its local counts into rank 0's bins. *)
  let contribution =
    Typeart.Pass.alloc ~tag:"local_counts" Memsim.Space.Host_pageable
      Typeart.Typedb.F64 bins
  in
  for s = 0 to samples_per_rank - 1 do
    let b = (s * (ctx.Mpi.rank + 7)) mod bins in
    A.set_f64 contribution b (A.get_f64 contribution b +. 1.)
  done;
  Mpi.accumulate ctx win ~buf:contribution ~count:bins
    ~dt:Mpisim.Datatype.double ~op:Mpi.Sum ~target:0 ~disp:0;
  if read_too_early && ctx.Mpi.rank = 0 then
    (* BUG: the exposure epoch is still open. *)
    Fmt.pr "   (rank 0 peeks: bin0 = %g)@." (A.get_f64 histo 0);
  Mpi.win_fence ctx win;
  if ctx.Mpi.rank = 0 then begin
    let total = ref 0. in
    for b = 0 to bins - 1 do
      total := !total +. A.get_f64 histo b
    done;
    Fmt.pr "   total samples: %g (expected %d)@." !total
      (ctx.Mpi.size * samples_per_rank)
  end;
  Mpi.win_free ctx win

let () =
  Fmt.pr "Distributed histogram via MPI_Accumulate (3 ranks)@.";
  let run title read_too_early =
    Fmt.pr "@.== %s@." title;
    let res =
      R.run ~nranks:3 ~flavor:Harness.Flavor.Must (program ~read_too_early)
    in
    match res.R.races with
    | [] -> Fmt.pr "   no data races detected@."
    | races ->
        List.iter
          (fun (rank, r) ->
            Fmt.pr "   rank %d: %s@." rank (Tsan.Report.to_string r))
          races
  in
  run "correct: read after the closing fence" false;
  run "BUGGY: rank 0 reads a bin while the epoch is open" true
