(* TeaLeaf mini-app demo: heat conduction with a device CG solver and
   non-blocking CUDA-aware halo exchange, under a chosen tool stack.

     dune exec examples/tealeaf_demo.exe
     dune exec examples/tealeaf_demo.exe -- --race cuda-to-mpi
     dune exec examples/tealeaf_demo.exe -- --race mpi-to-cuda *)

let () = Trace.Cli.setup () (* --trace FILE records a flight-recorder trace *)

let () =
  let nx = ref 64
  and ny = ref 64
  and steps = ref 4
  and cg_iters = ref 12
  and nranks = ref 2
  and race = ref `No
  and flavor = ref Harness.Flavor.Must_cusan in
  let spec =
    [
      ("--nx", Arg.Set_int nx, "columns (default 64)");
      ("--ny", Arg.Set_int ny, "rows (default 64)");
      ("--steps", Arg.Set_int steps, "timesteps (default 4)");
      ("--cg-iters", Arg.Set_int cg_iters, "CG iterations per step (default 12)");
      ("--ranks", Arg.Set_int nranks, "MPI ranks (default 2)");
      ( "--race",
        Arg.String
          (function
            | "cuda-to-mpi" -> race := `Cuda_to_mpi
            | "mpi-to-cuda" -> race := `Mpi_to_cuda
            | "none" -> race := `No
            | s -> raise (Arg.Bad ("unknown race mode " ^ s))),
        "inject a race: none|cuda-to-mpi|mpi-to-cuda" );
      ( "--flavor",
        Arg.String
          (fun s ->
            match Harness.Flavor.of_string s with
            | Some f -> flavor := f
            | None -> raise (Arg.Bad ("unknown flavor " ^ s))),
        "tool stack: vanilla|tsan|must|cusan|must-cusan (default must-cusan)" );
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected " ^ a))) "tealeaf_demo";
  let cfg =
    Apps.Tealeaf.config ~nx:!nx ~ny:!ny ~steps:!steps ~cg_iters:!cg_iters
      ~racy:!race ~nranks:!nranks ()
  in
  Fmt.pr "TeaLeaf %dx%d, %d steps x %d CG iters, %d ranks, %a%s@." !nx !ny
    !steps !cg_iters !nranks Harness.Flavor.pp !flavor
    (match !race with
    | `No -> ""
    | `Cuda_to_mpi -> ", RACY: no device sync before MPI_Isend"
    | `Mpi_to_cuda -> ", RACY: matvec launched before MPI_Waitall");
  let res = Harness.Run.run ~nranks:!nranks ~flavor:!flavor (Apps.Tealeaf.app cfg) in
  let expect = Apps.Tealeaf.reference cfg in
  Fmt.pr "final CG residual: %.12g (serial reference: %.12g)@."
    cfg.Apps.Tealeaf.results.(0) expect;
  Fmt.pr "wall time: %.3f s@." res.Harness.Run.wall_s;
  (match res.Harness.Run.races with
  | [] -> Fmt.pr "no data races detected@."
  | races ->
      Fmt.pr "@.%d data race report(s):@." (List.length races);
      List.iter
        (fun (rank, r) -> Fmt.pr "  rank %d: %s@." rank (Tsan.Report.to_string r))
        races);
  if Harness.Flavor.uses_cusan !flavor then
    Fmt.pr "@.CUDA event counters (rank 0):@.%a@.TSan event counters (rank 0):@.%a@."
      Cusan.Counters.pp res.Harness.Run.cuda_counters Tsan.Counters.pp
      res.Harness.Run.tsan_counters
