(* The Jacobi solver mini-app, after NVIDIA's CUDA-aware MPI example
   (paper, Section V): a 2D Poisson/Laplace iteration on an nx × ny
   domain, decomposed by rows across ranks. Boundary rows are exchanged
   with *blocking* CUDA-aware sendrecv on device pointers each
   iteration.

   Like the original, the compute kernel runs on a user-created stream
   while memory transfers use the (legacy) default stream, so both the
   default-stream barrier semantics and the stream-to-MPI
   synchronization requirement are exercised. The correct version calls
   cudaDeviceSynchronize before communicating (Fig. 4 of the paper);
   the racy variant skips it, producing the CUDA-to-MPI race. *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Mpi = Mpisim.Mpi

(* Halo exchange flavor: classic two-sided blocking sendrecv, or
   one-sided MPI_Put between fences (RMA over device windows). *)
type exchange = Sendrecv | Rma

type config = {
  nx : int; (* global columns *)
  ny : int; (* global interior rows, split across ranks *)
  iters : int;
  norm_every : int; (* compute the residual norm every N iterations *)
  racy : bool; (* skip the device synchronization before MPI calls *)
  use_stream : bool; (* run kernels on a user stream (default: true) *)
  exchange : exchange;
  results : float array; (* final global norm per rank, written at exit *)
}

let config ?(nx = 256) ?(ny = 256) ?(iters = 100) ?(norm_every = 50)
    ?(racy = false) ?(use_stream = true) ?(exchange = Sendrecv) ~nranks () =
  {
    nx;
    ny;
    iters;
    norm_every;
    racy;
    use_stream;
    exchange;
    results = Array.make nranks nan;
  }

(* --- device code ------------------------------------------------------- *)

(* One Jacobi sweep: each thread owns one cell of the local array
   (ny_local + 2 rows including halo/boundary rows). *)
let jacobi_func =
  Kir.Dsl.(
    func "jacobi"
      [ ptr "anew"; ptr "aold"; scalar "nx"; scalar "ny" ]
      [
        let_ "x" (tid %. p 2);
        let_ "y" (tid /. p 2);
        if_
          ((i 1 <=. v "x") &&. (v "x" <=. (p 2 -. i 2))
          &&. (i 1 <=. v "y")
          &&. (v "y" <=. (p 3 -. i 2)))
          [
            let_ "c" ((v "y" *. p 2) +. v "x");
            store (p 0) (v "c")
              (f 0.25
              *. (load (p 1) (v "c" -. p 2)
                 +. load (p 1) (v "c" +. p 2)
                 +. load (p 1) (v "c" -. i 1)
                 +. load (p 1) (v "c" +. i 1)));
          ]
          [];
      ])

(* Initialization: interior zero; the physical top boundary row is held
   at 1.0. [p 4] is 1 when this rank owns the global top row. *)
let init_func =
  Kir.Dsl.(
    func "init"
      [ ptr "a"; ptr "anew"; scalar "nx"; scalar "ny"; scalar "has_top" ]
      [
        let_ "y" (tid /. p 2);
        let_ "val" (i2f ((v "y" ==. i 0) &&. (p 4 ==. i 1)));
        store (p 0) tid (v "val");
        store (p 1) tid (v "val");
      ])

(* Residual norm contribution: a single-thread reduction kernel writing
   the squared difference sum to out[0] — with a nested device function,
   exercising the interprocedural analysis (Fig. 8 of the paper). *)
let sqdiff_func =
  Kir.Dsl.(
    func "sqdiff"
      [ ptr "out"; ptr "anew"; ptr "aold"; scalar "idx" ]
      [
        let_ "d" (load (p 1) (p 3) -. load (p 2) (p 3));
        store (p 0) (i 0) (load (p 0) (i 0) +. (v "d" *. v "d"));
      ])

let norm_func =
  Kir.Dsl.(
    func "norm"
      [ ptr "out"; ptr "anew"; ptr "aold"; scalar "n" ]
      [
        (* Single-thread reduction: without the tid guard every thread
           of the launch would write out[0] — an intra-kernel race the
           static race analysis (rightly) flags as a must-race. *)
        if_
          (tid ==. i 0)
          [
            store (p 0) (i 0) (f 0.);
            for_ "i" (i 0) (p 3) [ call "sqdiff" [ p 0; p 1; p 2; v "i" ] ];
          ]
          [];
      ])

let device_module =
  Kir.Dsl.modul
    ~kernels:[ "jacobi"; "init"; "norm" ]
    [ jacobi_func; init_func; sqdiff_func; norm_func ]

(* Native "fat binary" implementations, bit-identical to the IR. *)

let native_jacobi ~grid:_ (args : Kir.Interp.value array) =
  match args with
  | [| VPtr anew; VPtr aold; VInt nx; VInt ny |] ->
      let open Memsim.Access in
      for y = 1 to ny - 2 do
        for x = 1 to nx - 2 do
          let c = (y * nx) + x in
          raw_set_f64 anew c
            (0.25
            *. (raw_get_f64 aold (c - nx)
               +. raw_get_f64 aold (c + nx)
               +. raw_get_f64 aold (c - 1)
               +. raw_get_f64 aold (c + 1)))
        done
      done
  | _ -> invalid_arg "native_jacobi"

let native_init ~grid (args : Kir.Interp.value array) =
  match args with
  | [| VPtr a; VPtr anew; VInt nx; VInt _; VInt has_top |] ->
      let open Memsim.Access in
      for t = 0 to grid - 1 do
        let y = t / nx in
        let v = if y = 0 && has_top = 1 then 1.0 else 0.0 in
        raw_set_f64 a t v;
        raw_set_f64 anew t v
      done
  | _ -> invalid_arg "native_init"

let native_norm ~grid:_ (args : Kir.Interp.value array) =
  match args with
  | [| VPtr out; VPtr anew; VPtr aold; VInt n |] ->
      let open Memsim.Access in
      let s = ref 0. in
      for i = 0 to n - 1 do
        let d = raw_get_f64 anew i -. raw_get_f64 aold i in
        s := !s +. (d *. d)
      done;
      raw_set_f64 out 0 !s
  | _ -> invalid_arg "native_norm"

(* --- host code ---------------------------------------------------------- *)

let f64 = Typeart.Typedb.F64

let app (cfg : config) (env : Harness.Run.env) =
  let ctx = env.Harness.Run.mpi in
  let dev = env.Harness.Run.dev in
  let rank = ctx.Mpi.rank and size = ctx.Mpi.size in
  let nx = cfg.nx in
  if cfg.ny mod size <> 0 then invalid_arg "Jacobi: ny must divide by nranks";
  let nyl = cfg.ny / size in
  let rows = nyl + 2 in
  let cells = nx * rows in
  let compile k = env.Harness.Run.compile k in
  let k_jacobi =
    compile
      (Cudasim.Kernel.make ~kir:(device_module, "jacobi") ~native:native_jacobi
         "jacobi")
  in
  let k_init =
    compile
      (Cudasim.Kernel.make ~kir:(device_module, "init") ~native:native_init
         "init")
  in
  let k_norm =
    compile
      (Cudasim.Kernel.make ~kir:(device_module, "norm") ~native:native_norm
         "norm")
  in
  let a = ref (Mem.cuda_malloc ~tag:"d_a" dev ~ty:f64 ~count:cells) in
  let anew = ref (Mem.cuda_malloc ~tag:"d_anew" dev ~ty:f64 ~count:cells) in
  let d_norm = Mem.cuda_malloc ~tag:"d_norm" dev ~ty:f64 ~count:1 in
  let h_norm = Mem.host_malloc ~tag:"h_norm" ~ty:f64 ~count:1 () in
  let h_norm_global = Mem.host_malloc ~tag:"h_norm_global" ~ty:f64 ~count:1 () in
  let stream = if cfg.use_stream then Some (Dev.stream_create dev) else None in
  let has_top = if rank = 0 then 1 else 0 in
  let launch k args =
    Dev.launch dev k ~grid:cells ~args ?stream ()
  in
  launch k_init
    [| VPtr !a; VPtr !anew; VInt nx; VInt rows; VInt has_top |];
  Dev.device_synchronize dev;
  let up = rank - 1 and down = rank + 1 in
  let row r buf = Memsim.Ptr.add buf ~elt:8 (r * nx) in
  (* One-sided exchange: a window over each of the two device arrays,
     swapped alongside the arrays. *)
  let win_of buf = Mpi.win_create ctx ~buf ~bytes:(cells * 8) in
  let wins =
    match cfg.exchange with
    | Sendrecv -> None
    | Rma -> Some (ref (win_of !a), ref (win_of !anew))
  in
  let exchange buf =
    match (cfg.exchange, wins) with
    | Sendrecv, _ | _, None ->
        (* Blocking two-sided exchange of boundary rows. *)
        if up >= 0 then
          Mpi.sendrecv ctx ~sendbuf:(row 1 buf) ~sendcount:nx ~dst:up
            ~sendtag:0 ~recvbuf:(row 0 buf) ~recvcount:nx ~src:up ~recvtag:1
            ~dt:Mpisim.Datatype.double;
        if down < size then
          Mpi.sendrecv ctx ~sendbuf:(row nyl buf) ~sendcount:nx ~dst:down
            ~sendtag:1 ~recvbuf:(row (nyl + 1) buf) ~recvcount:nx ~src:down
            ~recvtag:0 ~dt:Mpisim.Datatype.double
    | Rma, Some (_, wanew) ->
        (* One-sided: put my boundary rows into the neighbours' halo
           rows, between two fences. *)
        let win = !wanew in
        Mpi.win_fence ctx win;
        if up >= 0 then
          Mpi.put ctx win ~buf:(row 1 buf) ~count:nx ~dt:Mpisim.Datatype.double
            ~target:up ~disp:((nyl + 1) * nx);
        if down < size then
          Mpi.put ctx win ~buf:(row nyl buf) ~count:nx
            ~dt:Mpisim.Datatype.double ~target:down ~disp:0;
        Mpi.win_fence ctx win
  in
  let last_norm = ref nan in
  for iter = 1 to cfg.iters do
    launch k_jacobi [| VPtr !anew; VPtr !a; VInt nx; VInt rows |];
    (* The data dependence between the compute stream and the following
       MPI calls requires explicit synchronization (paper, Fig. 4). *)
    if not cfg.racy then Dev.device_synchronize dev;
    exchange !anew;
    if iter mod cfg.norm_every = 0 || iter = cfg.iters then begin
      (* Interior rows only: halo rows belong to the neighbour rank. *)
      launch k_norm
        [| VPtr d_norm; VPtr (row 1 !anew); VPtr (row 1 !a); VInt (nx * nyl) |];
      (* Blocking D2H copy: an implicit synchronization point. *)
      Mem.memcpy dev ~dst:h_norm ~src:d_norm ~bytes:8 ();
      Mpi.allreduce ctx ~sendbuf:h_norm ~recvbuf:h_norm_global ~count:1
        ~dt:Mpisim.Datatype.double ~op:Mpi.Sum;
      last_norm := sqrt (Memsim.Access.get_f64 h_norm_global 0)
    end;
    let t = !a in
    a := !anew;
    anew := t;
    match wins with
    | Some (wa, wanew) ->
        let tw = !wa in
        wa := !wanew;
        wanew := tw
    | None -> ()
  done;
  cfg.results.(rank) <- !last_norm;
  (match wins with
  | Some (wa, wanew) ->
      Mpi.win_free ctx !wa;
      Mpi.win_free ctx !wanew
  | None -> ());
  (match stream with Some s -> Dev.stream_destroy dev s | None -> ());
  Mem.free dev !a;
  Mem.free dev !anew;
  Mem.free dev d_norm;
  Typeart.Pass.free h_norm;
  Typeart.Pass.free h_norm_global

(* --- fault-tolerant variant -------------------------------------------- *)

(* Per-world-rank recovery record: whether the rank took the
   revoke/shrink path, and the iteration it rolled back to (-1 if it
   never had to). A crashed rank leaves its slots untouched. *)
type resilient_outcome = { recovered : bool array; restart_iter : int array }

let resilient_outcome ~nranks =
  {
    recovered = Array.make nranks false;
    restart_iter = Array.make nranks (-1);
  }

(* Jacobi that survives rank crashes: every `norm_every` iterations the
   ranks allgather their interior slices into a full replicated copy of
   the domain — an in-memory checkpoint every rank holds. When an MPI
   call reports MPI_ERR_PROC_FAILED / MPI_ERR_REVOKED, survivors revoke
   the communicator, shrink it, agree on the newest checkpoint
   generation everybody can reach (a rank may have died mid-allgather,
   leaving survivors one generation apart), re-decompose the domain over
   the shrunken communicator, restore from the checkpoint and resume.
   The final norm matches the fault-free run up to summation order.

   Restriction: Sendrecv exchange only (windows pin buffer identity
   across ranks, which re-decomposition breaks), and ny must divide by
   every survivor count the fault plan can produce. *)
let resilient_app (cfg : config) (out : resilient_outcome)
    (env : Harness.Run.env) =
  let module Resil = Resilience in
  let ctx0 = env.Harness.Run.mpi in
  let dev = env.Harness.Run.dev in
  if cfg.exchange <> Sendrecv then
    invalid_arg "Jacobi.resilient_app: Sendrecv exchange only";
  let world_rank = ctx0.Mpi.rank in
  if cfg.ny mod ctx0.Mpi.size <> 0 then
    invalid_arg "Jacobi: ny must divide by nranks";
  Mpi.comm_set_errhandler ctx0 Mpisim.Comm.Errors_return;
  let ctx = ref ctx0 in
  let nx = cfg.nx in
  let dt = Mpisim.Datatype.double in
  let compile k = env.Harness.Run.compile k in
  let k_jacobi =
    compile
      (Cudasim.Kernel.make ~kir:(device_module, "jacobi") ~native:native_jacobi
         "jacobi")
  in
  let k_init =
    compile
      (Cudasim.Kernel.make ~kir:(device_module, "init") ~native:native_init
         "init")
  in
  let k_norm =
    compile
      (Cudasim.Kernel.make ~kir:(device_module, "norm") ~native:native_norm
         "norm")
  in
  let d_norm = Mem.cuda_malloc ~tag:"d_norm" dev ~ty:f64 ~count:1 in
  let h_norm = Mem.host_malloc ~tag:"h_norm" ~ty:f64 ~count:1 () in
  let h_norm_global = Mem.host_malloc ~tag:"h_norm_global" ~ty:f64 ~count:1 () in
  (* Replicated checkpoint staging: the full global interior. *)
  let h_global =
    Mem.host_malloc ~tag:"h_ckpt_global" ~ty:f64 ~count:(nx * cfg.ny) ()
  in
  let stream = if cfg.use_stream then Some (Dev.stream_create dev) else None in
  let ckpt = Resil.Checkpoint.create () in
  let ckpt_iter = ref (-1) in
  (* Per-epoch state: one epoch per communicator incarnation. Shrinking
     re-decomposes ny over the survivors, so the local arrays are
     reallocated on recovery. *)
  let r_nyl = ref 0 and r_rows = ref 0 and r_cells = ref 0 in
  let a = ref None and anew = ref None and h_interior = ref None in
  let arr r = Option.get !r in
  let launch k args = Dev.launch dev k ~grid:!r_cells ~args ?stream () in
  let row r buf = Memsim.Ptr.add buf ~elt:8 (r * nx) in
  let setup_epoch () =
    let size = (!ctx).Mpi.size and rank = (!ctx).Mpi.rank in
    if cfg.ny mod size <> 0 then
      invalid_arg "Jacobi.resilient_app: ny must divide by survivor count";
    let nyl = cfg.ny / size in
    r_nyl := nyl;
    r_rows := nyl + 2;
    r_cells := nx * !r_rows;
    (match (!a, !anew, !h_interior) with
    | Some da, Some dan, Some hi ->
        Mem.free dev da;
        Mem.free dev dan;
        Typeart.Pass.free hi
    | _ -> ());
    a := Some (Mem.cuda_malloc ~tag:"d_a" dev ~ty:f64 ~count:!r_cells);
    anew := Some (Mem.cuda_malloc ~tag:"d_anew" dev ~ty:f64 ~count:!r_cells);
    h_interior :=
      Some (Mem.host_malloc ~tag:"h_interior" ~ty:f64 ~count:(nyl * nx) ());
    let has_top = if rank = 0 then 1 else 0 in
    launch k_init
      [| VPtr (arr a); VPtr (arr anew); VInt nx; VInt !r_rows; VInt has_top |];
    Dev.device_synchronize dev
  in
  let exchange buf =
    let size = (!ctx).Mpi.size and rank = (!ctx).Mpi.rank in
    let up = rank - 1 and down = rank + 1 in
    if up >= 0 then
      Mpi.sendrecv !ctx ~sendbuf:(row 1 buf) ~sendcount:nx ~dst:up ~sendtag:0
        ~recvbuf:(row 0 buf) ~recvcount:nx ~src:up ~recvtag:1 ~dt;
    if down < size then
      Mpi.sendrecv !ctx ~sendbuf:(row !r_nyl buf) ~sendcount:nx ~dst:down
        ~sendtag:1 ~recvbuf:(row (!r_nyl + 1) buf) ~recvcount:nx ~src:down
        ~recvtag:0 ~dt
  in
  let ok () = Mpi.last_error !ctx = Mpisim.Comm.Err_success in
  (* Collective: replicate [state]'s interior into every rank's h_global
     and snapshot it. Only promoted to the new generation if the
     allgather completed cleanly on this rank. *)
  let checkpoint_now it state =
    Mem.memcpy dev ~dst:(arr h_interior) ~src:(row 1 state)
      ~bytes:(!r_nyl * nx * 8) ();
    Mpi.allgather !ctx ~sendbuf:(arr h_interior) ~recvbuf:h_global
      ~count:(!r_nyl * nx) ~dt;
    if ok () then begin
      Resil.Checkpoint.save ckpt "global" h_global ~bytes:(nx * cfg.ny * 8);
      ckpt_iter := it
    end
  in
  (* Raw (uninstrumented) copy of this rank's slice of the replicated
     checkpoint back into device memory — restore is stable-storage
     traffic, not program accesses, so it must not perturb race
     reports. *)
  let restore_interior () =
    let base = (!ctx).Mpi.rank * !r_nyl in
    let da = arr a in
    for r = 0 to !r_nyl - 1 do
      for x = 0 to nx - 1 do
        Memsim.Access.raw_set_f64 da
          (((r + 1) * nx) + x)
          (Memsim.Access.raw_get_f64 h_global (((base + r) * nx) + x))
      done
    done
  in
  let last_norm = ref nan in
  let iter = ref 1 in
  let rec recover () =
    out.recovered.(world_rank) <- true;
    Resil.with_retries ~label:"jacobi_recover" ~max_attempts:4
      ~retryable:(function
        | Mpisim.Comm.Proc_failed _ | Mpisim.Comm.Revoked -> true
        | _ -> false)
      (fun ~attempt:_ ->
        Mpi.comm_revoke !ctx;
        ctx := Mpi.comm_shrink !ctx;
        Mpi.clear_error !ctx;
        (* Failures during the recovery protocol itself should raise so
           with_retries can re-shrink; flip back before returning. *)
        Mpi.comm_set_errhandler !ctx Mpisim.Comm.Errors_are_fatal;
        (* A rank can die mid-allgather, leaving survivors one
           checkpoint generation apart: agree on the newest generation
           and have its lowest holder rebroadcast it. *)
        Memsim.Access.raw_set_f64 h_norm 0 (float_of_int !ckpt_iter);
        Mpi.allreduce !ctx ~sendbuf:h_norm ~recvbuf:h_norm_global ~count:1 ~dt
          ~op:Mpi.Max;
        let newest = int_of_float (Memsim.Access.raw_get_f64 h_norm_global 0) in
        Memsim.Access.raw_set_f64 h_norm 0
          (if !ckpt_iter = newest then float_of_int (!ctx).Mpi.rank else 1e18);
        Mpi.allreduce !ctx ~sendbuf:h_norm ~recvbuf:h_norm_global ~count:1 ~dt
          ~op:Mpi.Min;
        let root = int_of_float (Memsim.Access.raw_get_f64 h_norm_global 0) in
        (* newest < 0 means nobody completed even the generation-0
           allgather; the post-init state *is* that generation, so there
           is nothing to rebroadcast. *)
        if newest >= 0 then begin
          if !ckpt_iter = newest then
            Resil.Checkpoint.restore ckpt "global" h_global;
          Mpi.bcast !ctx ~buf:h_global ~count:(nx * cfg.ny) ~dt ~root;
          Resil.Checkpoint.save ckpt "global" h_global
            ~bytes:(nx * cfg.ny * 8);
          ckpt_iter := newest
        end;
        Mpi.comm_set_errhandler !ctx Mpisim.Comm.Errors_return);
    setup_epoch ();
    if !ckpt_iter >= 0 then restore_interior ();
    (* Interior rows came from the checkpoint; halo rows come from the
       new neighbours. *)
    Mpi.clear_error !ctx;
    exchange (arr a);
    iter := max 1 (!ckpt_iter + 1);
    out.restart_iter.(world_rank) <- !iter;
    if not (ok ()) then recover ()
  in
  setup_epoch ();
  (* Generation 0: the initial state, so recovery always has a
     checkpoint to fall back to. *)
  checkpoint_now 0 (arr a);
  while !iter <= cfg.iters do
    Mpi.clear_error !ctx;
    launch k_jacobi [| VPtr (arr anew); VPtr (arr a); VInt nx; VInt !r_rows |];
    if not cfg.racy then Dev.device_synchronize dev;
    exchange (arr anew);
    if ok () && (!iter mod cfg.norm_every = 0 || !iter = cfg.iters) then begin
      launch k_norm
        [|
          VPtr d_norm;
          VPtr (row 1 (arr anew));
          VPtr (row 1 (arr a));
          VInt (nx * !r_nyl);
        |];
      Mem.memcpy dev ~dst:h_norm ~src:d_norm ~bytes:8 ();
      Mpi.allreduce !ctx ~sendbuf:h_norm ~recvbuf:h_norm_global ~count:1 ~dt
        ~op:Mpi.Sum;
      if ok () then begin
        last_norm := sqrt (Memsim.Access.get_f64 h_norm_global 0);
        checkpoint_now !iter (arr anew)
      end
    end;
    if not (ok ()) then recover ()
    else begin
      let t = arr a in
      a := !anew;
      anew := Some t;
      incr iter
    end
  done;
  cfg.results.(world_rank) <- !last_norm;
  (match stream with Some s -> Dev.stream_destroy dev s | None -> ());
  Mem.free dev (arr a);
  Mem.free dev (arr anew);
  Mem.free dev d_norm;
  Typeart.Pass.free (arr h_interior);
  Typeart.Pass.free h_norm;
  Typeart.Pass.free h_norm_global;
  Typeart.Pass.free h_global

(* Serial host reference for verification: same sweep count on the full
   global domain, returning the final residual norm. *)
let reference ~nx ~ny ~iters ~norm_every:_ =
  let rows = ny + 2 in
  let a = Array.make (nx * rows) 0. and anew = Array.make (nx * rows) 0. in
  for x = 0 to nx - 1 do
    a.(x) <- 1.0;
    anew.(x) <- 1.0
  done;
  let norm = ref nan in
  let a = ref a and anew = ref anew in
  for iter = 1 to iters do
    for y = 1 to rows - 2 do
      for x = 1 to nx - 2 do
        let c = (y * nx) + x in
        !anew.(c) <-
          0.25 *. (!a.(c - nx) +. !a.(c + nx) +. !a.(c - 1) +. !a.(c + 1))
      done
    done;
    if iter = iters then begin
      let s = ref 0. in
      Array.iteri (fun i v -> let d = v -. !a.(i) in s := !s +. (d *. d)) !anew;
      norm := sqrt !s
    end;
    let t = !a in
    a := !anew;
    anew := t
  done;
  !norm
