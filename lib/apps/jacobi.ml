(* The Jacobi solver mini-app, after NVIDIA's CUDA-aware MPI example
   (paper, Section V): a 2D Poisson/Laplace iteration on an nx × ny
   domain, decomposed by rows across ranks. Boundary rows are exchanged
   with *blocking* CUDA-aware sendrecv on device pointers each
   iteration.

   Like the original, the compute kernel runs on a user-created stream
   while memory transfers use the (legacy) default stream, so both the
   default-stream barrier semantics and the stream-to-MPI
   synchronization requirement are exercised. The correct version calls
   cudaDeviceSynchronize before communicating (Fig. 4 of the paper);
   the racy variant skips it, producing the CUDA-to-MPI race. *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Mpi = Mpisim.Mpi

(* Halo exchange flavor: classic two-sided blocking sendrecv, or
   one-sided MPI_Put between fences (RMA over device windows). *)
type exchange = Sendrecv | Rma

type config = {
  nx : int; (* global columns *)
  ny : int; (* global interior rows, split across ranks *)
  iters : int;
  norm_every : int; (* compute the residual norm every N iterations *)
  racy : bool; (* skip the device synchronization before MPI calls *)
  use_stream : bool; (* run kernels on a user stream (default: true) *)
  exchange : exchange;
  results : float array; (* final global norm per rank, written at exit *)
}

let config ?(nx = 256) ?(ny = 256) ?(iters = 100) ?(norm_every = 50)
    ?(racy = false) ?(use_stream = true) ?(exchange = Sendrecv) ~nranks () =
  {
    nx;
    ny;
    iters;
    norm_every;
    racy;
    use_stream;
    exchange;
    results = Array.make nranks nan;
  }

(* --- device code ------------------------------------------------------- *)

(* One Jacobi sweep: each thread owns one cell of the local array
   (ny_local + 2 rows including halo/boundary rows). *)
let jacobi_func =
  Kir.Dsl.(
    func "jacobi"
      [ ptr "anew"; ptr "aold"; scalar "nx"; scalar "ny" ]
      [
        let_ "x" (tid %. p 2);
        let_ "y" (tid /. p 2);
        if_
          ((i 1 <=. v "x") &&. (v "x" <=. (p 2 -. i 2))
          &&. (i 1 <=. v "y")
          &&. (v "y" <=. (p 3 -. i 2)))
          [
            let_ "c" ((v "y" *. p 2) +. v "x");
            store (p 0) (v "c")
              (f 0.25
              *. (load (p 1) (v "c" -. p 2)
                 +. load (p 1) (v "c" +. p 2)
                 +. load (p 1) (v "c" -. i 1)
                 +. load (p 1) (v "c" +. i 1)));
          ]
          [];
      ])

(* Initialization: interior zero; the physical top boundary row is held
   at 1.0. [p 4] is 1 when this rank owns the global top row. *)
let init_func =
  Kir.Dsl.(
    func "init"
      [ ptr "a"; ptr "anew"; scalar "nx"; scalar "ny"; scalar "has_top" ]
      [
        let_ "y" (tid /. p 2);
        let_ "val" (i2f ((v "y" ==. i 0) &&. (p 4 ==. i 1)));
        store (p 0) tid (v "val");
        store (p 1) tid (v "val");
      ])

(* Residual norm contribution: a single-thread reduction kernel writing
   the squared difference sum to out[0] — with a nested device function,
   exercising the interprocedural analysis (Fig. 8 of the paper). *)
let sqdiff_func =
  Kir.Dsl.(
    func "sqdiff"
      [ ptr "out"; ptr "anew"; ptr "aold"; scalar "idx" ]
      [
        let_ "d" (load (p 1) (p 3) -. load (p 2) (p 3));
        store (p 0) (i 0) (load (p 0) (i 0) +. (v "d" *. v "d"));
      ])

let norm_func =
  Kir.Dsl.(
    func "norm"
      [ ptr "out"; ptr "anew"; ptr "aold"; scalar "n" ]
      [
        (* Single-thread reduction: without the tid guard every thread
           of the launch would write out[0] — an intra-kernel race the
           static race analysis (rightly) flags as a must-race. *)
        if_
          (tid ==. i 0)
          [
            store (p 0) (i 0) (f 0.);
            for_ "i" (i 0) (p 3) [ call "sqdiff" [ p 0; p 1; p 2; v "i" ] ];
          ]
          [];
      ])

let device_module =
  Kir.Dsl.modul
    ~kernels:[ "jacobi"; "init"; "norm" ]
    [ jacobi_func; init_func; sqdiff_func; norm_func ]

(* Native "fat binary" implementations, bit-identical to the IR. *)

let native_jacobi ~grid:_ (args : Kir.Interp.value array) =
  match args with
  | [| VPtr anew; VPtr aold; VInt nx; VInt ny |] ->
      let open Memsim.Access in
      for y = 1 to ny - 2 do
        for x = 1 to nx - 2 do
          let c = (y * nx) + x in
          raw_set_f64 anew c
            (0.25
            *. (raw_get_f64 aold (c - nx)
               +. raw_get_f64 aold (c + nx)
               +. raw_get_f64 aold (c - 1)
               +. raw_get_f64 aold (c + 1)))
        done
      done
  | _ -> invalid_arg "native_jacobi"

let native_init ~grid (args : Kir.Interp.value array) =
  match args with
  | [| VPtr a; VPtr anew; VInt nx; VInt _; VInt has_top |] ->
      let open Memsim.Access in
      for t = 0 to grid - 1 do
        let y = t / nx in
        let v = if y = 0 && has_top = 1 then 1.0 else 0.0 in
        raw_set_f64 a t v;
        raw_set_f64 anew t v
      done
  | _ -> invalid_arg "native_init"

let native_norm ~grid:_ (args : Kir.Interp.value array) =
  match args with
  | [| VPtr out; VPtr anew; VPtr aold; VInt n |] ->
      let open Memsim.Access in
      let s = ref 0. in
      for i = 0 to n - 1 do
        let d = raw_get_f64 anew i -. raw_get_f64 aold i in
        s := !s +. (d *. d)
      done;
      raw_set_f64 out 0 !s
  | _ -> invalid_arg "native_norm"

(* --- host code ---------------------------------------------------------- *)

let f64 = Typeart.Typedb.F64

let app (cfg : config) (env : Harness.Run.env) =
  let ctx = env.Harness.Run.mpi in
  let dev = env.Harness.Run.dev in
  let rank = ctx.Mpi.rank and size = ctx.Mpi.size in
  let nx = cfg.nx in
  if cfg.ny mod size <> 0 then invalid_arg "Jacobi: ny must divide by nranks";
  let nyl = cfg.ny / size in
  let rows = nyl + 2 in
  let cells = nx * rows in
  let compile k = env.Harness.Run.compile k in
  let k_jacobi =
    compile
      (Cudasim.Kernel.make ~kir:(device_module, "jacobi") ~native:native_jacobi
         "jacobi")
  in
  let k_init =
    compile
      (Cudasim.Kernel.make ~kir:(device_module, "init") ~native:native_init
         "init")
  in
  let k_norm =
    compile
      (Cudasim.Kernel.make ~kir:(device_module, "norm") ~native:native_norm
         "norm")
  in
  let a = ref (Mem.cuda_malloc ~tag:"d_a" dev ~ty:f64 ~count:cells) in
  let anew = ref (Mem.cuda_malloc ~tag:"d_anew" dev ~ty:f64 ~count:cells) in
  let d_norm = Mem.cuda_malloc ~tag:"d_norm" dev ~ty:f64 ~count:1 in
  let h_norm = Mem.host_malloc ~tag:"h_norm" ~ty:f64 ~count:1 () in
  let h_norm_global = Mem.host_malloc ~tag:"h_norm_global" ~ty:f64 ~count:1 () in
  let stream = if cfg.use_stream then Some (Dev.stream_create dev) else None in
  let has_top = if rank = 0 then 1 else 0 in
  let launch k args =
    Dev.launch dev k ~grid:cells ~args ?stream ()
  in
  launch k_init
    [| VPtr !a; VPtr !anew; VInt nx; VInt rows; VInt has_top |];
  Dev.device_synchronize dev;
  let up = rank - 1 and down = rank + 1 in
  let row r buf = Memsim.Ptr.add buf ~elt:8 (r * nx) in
  (* One-sided exchange: a window over each of the two device arrays,
     swapped alongside the arrays. *)
  let win_of buf = Mpi.win_create ctx ~buf ~bytes:(cells * 8) in
  let wins =
    match cfg.exchange with
    | Sendrecv -> None
    | Rma -> Some (ref (win_of !a), ref (win_of !anew))
  in
  let exchange buf =
    match (cfg.exchange, wins) with
    | Sendrecv, _ | _, None ->
        (* Blocking two-sided exchange of boundary rows. *)
        if up >= 0 then
          Mpi.sendrecv ctx ~sendbuf:(row 1 buf) ~sendcount:nx ~dst:up
            ~sendtag:0 ~recvbuf:(row 0 buf) ~recvcount:nx ~src:up ~recvtag:1
            ~dt:Mpisim.Datatype.double;
        if down < size then
          Mpi.sendrecv ctx ~sendbuf:(row nyl buf) ~sendcount:nx ~dst:down
            ~sendtag:1 ~recvbuf:(row (nyl + 1) buf) ~recvcount:nx ~src:down
            ~recvtag:0 ~dt:Mpisim.Datatype.double
    | Rma, Some (_, wanew) ->
        (* One-sided: put my boundary rows into the neighbours' halo
           rows, between two fences. *)
        let win = !wanew in
        Mpi.win_fence ctx win;
        if up >= 0 then
          Mpi.put ctx win ~buf:(row 1 buf) ~count:nx ~dt:Mpisim.Datatype.double
            ~target:up ~disp:((nyl + 1) * nx);
        if down < size then
          Mpi.put ctx win ~buf:(row nyl buf) ~count:nx
            ~dt:Mpisim.Datatype.double ~target:down ~disp:0;
        Mpi.win_fence ctx win
  in
  let last_norm = ref nan in
  for iter = 1 to cfg.iters do
    launch k_jacobi [| VPtr !anew; VPtr !a; VInt nx; VInt rows |];
    (* The data dependence between the compute stream and the following
       MPI calls requires explicit synchronization (paper, Fig. 4). *)
    if not cfg.racy then Dev.device_synchronize dev;
    exchange !anew;
    if iter mod cfg.norm_every = 0 || iter = cfg.iters then begin
      (* Interior rows only: halo rows belong to the neighbour rank. *)
      launch k_norm
        [| VPtr d_norm; VPtr (row 1 !anew); VPtr (row 1 !a); VInt (nx * nyl) |];
      (* Blocking D2H copy: an implicit synchronization point. *)
      Mem.memcpy dev ~dst:h_norm ~src:d_norm ~bytes:8 ();
      Mpi.allreduce ctx ~sendbuf:h_norm ~recvbuf:h_norm_global ~count:1
        ~dt:Mpisim.Datatype.double ~op:Mpi.Sum;
      last_norm := sqrt (Memsim.Access.get_f64 h_norm_global 0)
    end;
    let t = !a in
    a := !anew;
    anew := t;
    match wins with
    | Some (wa, wanew) ->
        let tw = !wa in
        wa := !wanew;
        wanew := tw
    | None -> ()
  done;
  cfg.results.(rank) <- !last_norm;
  (match wins with
  | Some (wa, wanew) ->
      Mpi.win_free ctx !wa;
      Mpi.win_free ctx !wanew
  | None -> ());
  (match stream with Some s -> Dev.stream_destroy dev s | None -> ());
  Mem.free dev !a;
  Mem.free dev !anew;
  Mem.free dev d_norm;
  Typeart.Pass.free h_norm;
  Typeart.Pass.free h_norm_global

(* Serial host reference for verification: same sweep count on the full
   global domain, returning the final residual norm. *)
let reference ~nx ~ny ~iters ~norm_every:_ =
  let rows = ny + 2 in
  let a = Array.make (nx * rows) 0. and anew = Array.make (nx * rows) 0. in
  for x = 0 to nx - 1 do
    a.(x) <- 1.0;
    anew.(x) <- 1.0
  done;
  let norm = ref nan in
  let a = ref a and anew = ref anew in
  for iter = 1 to iters do
    for y = 1 to rows - 2 do
      for x = 1 to nx - 2 do
        let c = (y * nx) + x in
        !anew.(c) <-
          0.25 *. (!a.(c - nx) +. !a.(c + nx) +. !a.(c - 1) +. !a.(c + 1))
      done
    done;
    if iter = iters then begin
      let s = ref 0. in
      Array.iteri (fun i v -> let d = v -. !a.(i) in s := !s +. (d *. d)) !anew;
      norm := sqrt !s
    end;
    let t = !a in
    a := !anew;
    anew := t
  done;
  !norm
