(* A CUDA-aware MPI ping-pong microbenchmark, after the OSU
   micro-benchmarks (osu_latency / osu_bw) that are the standard way to
   exercise CUDA-aware MPI transports: rank 0 sends a device buffer to
   rank 1, which sends it straight back, across a sweep of message
   sizes. Device buffers (D-D), or host staging (H-H) for comparison —
   the transfer path difference CUDA-aware MPI exists to remove.

   Latency is reported in virtual device+network time (the cost model's
   clock), so D-D vs. H-H reflects the modelled PCIe staging cost rather
   than OCaml allocator noise. The correct variant synchronizes the
   fill kernel before sending; the racy one does not. *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Mpi = Mpisim.Mpi

type placement = Device_to_device | Host_to_host

type config = {
  sizes : int list; (* message sizes in doubles *)
  iters : int; (* round trips per size *)
  placement : placement;
  racy : bool;
  results : (int * float) list ref; (* (bytes, virtual one-way seconds) *)
}

let config ?(sizes = [ 1; 16; 256; 4096; 65536 ]) ?(iters = 10)
    ?(placement = Device_to_device) ?(racy = false) () =
  { sizes; iters; placement; racy; results = ref [] }

let fill_src =
  Kir.Dsl.(
    modul ~kernels:[ "fill" ]
      [
        func "fill"
          [ ptr "buf"; scalar "n" ]
          [ if_ (tid <. p 1) [ store (p 0) tid (i2f tid) ] [] ];
      ])

let native_fill ~grid (args : Kir.Interp.value array) =
  match args with
  | [| VPtr buf; VInt n |] ->
      for t = 0 to grid - 1 do
        if t < n then Memsim.Access.raw_set_f64 buf t (float_of_int t)
      done
  | _ -> invalid_arg "native_fill"

(* Modelled interconnect: 100 Gb/s-class fabric with GPUDirect, so the
   network leg is the same for both placements; the placements differ by
   the PCIe staging copies the non-CUDA-aware variant pays per message
   (charged through the device cost model). *)
let net_overhead_s = 1.5e-6
let net_bandwidth = 12.5e9

let net_cost ~bytes = net_overhead_s +. (float_of_int bytes /. net_bandwidth)

(* --- fault-tolerant variant -------------------------------------------- *)

(* Outcome of the resilient ping-pong, per world rank. A rank killed by
   an injected crash never writes its slots, so they keep the initial
   values (0 round trips, not recovered, nan checksum). *)
type resilient_report = {
  completed : int array; (* round trips completed *)
  recovered : bool array; (* took the revoke/shrink recovery path *)
  checksum : float array; (* final device-buffer checksum *)
}

let resilient_report ~nranks =
  {
    completed = Array.make nranks 0;
    recovered = Array.make nranks false;
    checksum = Array.make nranks nan;
  }

(* The fill kernel writes buf[t] = t, so the checksum of an intact
   n-element buffer is 0 + 1 + ... + (n-1). *)
let expected_checksum ~n = float_of_int (n * (n - 1) / 2)

(* Ping-pong that survives the death of its peer: device-to-device
   round trips under [Errors_return]; on [MPI_ERR_PROC_FAILED] /
   [MPI_ERR_REVOKED] the survivor revokes, shrinks to a singleton
   communicator, restores the payload from its checkpoint (the peer may
   have died holding the ball), and finishes the remaining iterations
   locally. *)
let resilient_app ?(n = 256) ?(iters = 12) (rep : resilient_report)
    (env : Harness.Run.env) =
  let module Resil = Resilience in
  let ctx0 = env.Harness.Run.mpi in
  let dev = env.Harness.Run.dev in
  if ctx0.Mpi.size <> 2 then
    invalid_arg "resilient pingpong needs exactly 2 ranks";
  let world_rank = ctx0.Mpi.rank in
  Mpi.comm_set_errhandler ctx0 Mpisim.Comm.Errors_return;
  let ctx = ref ctx0 in
  let kernel =
    env.Harness.Run.compile
      (Cudasim.Kernel.make ~kir:(fill_src, "fill") ~native:native_fill "fill")
  in
  let dt = Mpisim.Datatype.double in
  let bytes = n * 8 in
  let d = Mem.cuda_malloc ~tag:"pp_dev" dev ~ty:Typeart.Typedb.F64 ~count:n in
  Dev.launch dev kernel ~grid:n ~args:[| VPtr d; VInt n |] ();
  Dev.device_synchronize dev;
  let ckpt = Resil.Checkpoint.create () in
  Resil.Checkpoint.save ckpt "payload" d ~bytes;
  let recover () =
    rep.recovered.(world_rank) <- true;
    Resil.with_retries ~label:"pingpong_recover"
      ~retryable:(function
        | Mpisim.Comm.Proc_failed _ | Mpisim.Comm.Revoked -> true
        | _ -> false)
      (fun ~attempt:_ ->
        Mpi.comm_revoke !ctx;
        ctx := Mpi.comm_shrink !ctx;
        Mpi.clear_error !ctx);
    (* The peer may have died holding the ball: roll the payload back to
       the last known-good snapshot. *)
    Resil.Checkpoint.restore ckpt "payload" d
  in
  for i = 1 to iters do
    if (!ctx).Mpi.size >= 2 then begin
      Mpi.clear_error !ctx;
      let rank = (!ctx).Mpi.rank in
      let peer = 1 - rank in
      let ok () = Mpi.last_error !ctx = Mpisim.Comm.Err_success in
      if rank = 0 then begin
        Mpi.send !ctx ~buf:d ~count:n ~dt ~dst:peer ~tag:0;
        if ok () then Mpi.recv !ctx ~buf:d ~count:n ~dt ~src:peer ~tag:1
      end
      else begin
        Mpi.recv !ctx ~buf:d ~count:n ~dt ~src:peer ~tag:0;
        if ok () then Mpi.send !ctx ~buf:d ~count:n ~dt ~dst:peer ~tag:1
      end;
      if not (ok ()) then recover ()
      else Resil.Checkpoint.save ckpt "payload" d ~bytes
    end;
    (* On a singleton communicator the round trip degenerates to a local
       bounce: the payload is already home. *)
    rep.completed.(world_rank) <- i
  done;
  let sum = ref 0. in
  for t = 0 to n - 1 do
    sum := !sum +. Memsim.Access.raw_get_f64 d t
  done;
  rep.checksum.(world_rank) <- !sum;
  Mem.free dev d

let app (cfg : config) (env : Harness.Run.env) =
  let ctx = env.Harness.Run.mpi in
  let dev = env.Harness.Run.dev in
  if ctx.Mpi.size <> 2 then invalid_arg "pingpong needs exactly 2 ranks";
  let rank = ctx.Mpi.rank in
  let peer = 1 - rank in
  let kernel =
    env.Harness.Run.compile
      (Cudasim.Kernel.make ~kir:(fill_src, "fill") ~native:native_fill "fill")
  in
  let dt = Mpisim.Datatype.double in
  List.iter
    (fun n ->
      let bytes = n * 8 in
      let d = Mem.cuda_malloc ~tag:"pp_dev" dev ~ty:Typeart.Typedb.F64 ~count:n in
      Dev.launch dev kernel ~grid:n ~args:[| VPtr d; VInt n |] ();
      if not cfg.racy then Dev.device_synchronize dev;
      let _, virt0 = Dev.timing dev in
      (match cfg.placement with
      | Device_to_device ->
          (* CUDA-aware: the device pointer goes straight to MPI. *)
          for _ = 1 to cfg.iters do
            if rank = 0 then begin
              Mpi.send ctx ~buf:d ~count:n ~dt ~dst:peer ~tag:0;
              Mpi.recv ctx ~buf:d ~count:n ~dt ~src:peer ~tag:1
            end
            else begin
              Mpi.recv ctx ~buf:d ~count:n ~dt ~src:peer ~tag:0;
              Mpi.send ctx ~buf:d ~count:n ~dt ~dst:peer ~tag:1
            end
          done
      | Host_to_host ->
          (* Non-CUDA-aware: stage through pinned host memory around
             every transfer — the copies CUDA-aware MPI eliminates. *)
          let h = Mem.cuda_host_alloc ~tag:"pp_host" dev ~ty:Typeart.Typedb.F64 ~count:n in
          for _ = 1 to cfg.iters do
            if rank = 0 then begin
              Mem.memcpy dev ~dst:h ~src:d ~bytes ();
              Mpi.send ctx ~buf:h ~count:n ~dt ~dst:peer ~tag:0;
              Mpi.recv ctx ~buf:h ~count:n ~dt ~src:peer ~tag:1;
              Mem.memcpy dev ~dst:d ~src:h ~bytes ()
            end
            else begin
              Mpi.recv ctx ~buf:h ~count:n ~dt ~src:peer ~tag:0;
              Mem.memcpy dev ~dst:d ~src:h ~bytes ();
              Mem.memcpy dev ~dst:h ~src:d ~bytes ();
              Mpi.send ctx ~buf:h ~count:n ~dt ~dst:peer ~tag:1
            end
          done;
          Typeart.Pass.free h);
      let _, virt1 = Dev.timing dev in
      if rank = 0 then begin
        (* one-way modelled latency: this rank's staging cost plus the
           network leg, averaged over the round trips *)
        let staging = (virt1 -. virt0) /. float_of_int (2 * cfg.iters) in
        let lat = staging +. net_cost ~bytes in
        cfg.results := (bytes, lat) :: !(cfg.results)
      end;
      Mem.free dev d)
    cfg.sizes;
  if rank = 0 then cfg.results := List.rev !(cfg.results)
