(* The TeaLeaf mini-app analogue (paper, Section V): an implicit heat
   conduction solver. Each timestep solves (I - alpha * Laplacian) u = b
   with a conjugate-gradient iteration on the device. The CG direction
   vector's boundary rows are exchanged with *non-blocking* CUDA-aware
   MPI (Irecv/Isend/Waitall) every iteration, and dot products are
   reduced with memcpy D2H + MPI_Allreduce.

   All kernels run on the (legacy) default stream, matching the paper's
   Table I, which reports a single tracked stream for TeaLeaf.

   Race modes:
   - [`No]: correct synchronization — cudaDeviceSynchronize before the
     sends, Waitall before the kernel consuming the halos.
   - [`Cuda_to_mpi]: the device synchronization before MPI_Isend is
     skipped, so the send may read rows a kernel is still writing
     (Fig. 4 case (i) of the paper).
   - [`Mpi_to_cuda]: the matvec kernel is launched before MPI_Waitall,
     so the kernel reads halo rows MPI_Irecv may still be writing
     (Fig. 6 A of the paper). *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Mpi = Mpisim.Mpi

type race_mode = [ `No | `Cuda_to_mpi | `Mpi_to_cuda ]

type config = {
  nx : int;
  ny : int; (* global interior rows *)
  steps : int; (* outer timesteps *)
  cg_iters : int; (* CG iterations per step *)
  alpha : float; (* conduction coefficient *)
  racy : race_mode;
  results : float array; (* final global residual per rank *)
}

let config ?(nx = 64) ?(ny = 64) ?(steps = 4) ?(cg_iters = 12) ?(alpha = 0.1)
    ?(racy = `No) ~nranks () =
  { nx; ny; steps; cg_iters; alpha; racy; results = Array.make nranks nan }

(* --- device code -------------------------------------------------------- *)

let init_func =
  Kir.Dsl.(
    func "tl_init"
      [ ptr "u"; scalar "nx"; scalar "gny"; scalar "y_off" ]
      [
        let_ "x" (tid %. p 1);
        let_ "gy" (p 3 +. (tid /. p 1));
        let_ "hot"
          ((p 1 /. i 4 <=. v "x")
          &&. (v "x" <. (i 3 *. p 1 /. i 4))
          &&. (p 2 /. i 4 <=. v "gy")
          &&. (v "gy" <. (i 3 *. p 2 /. i 4)));
        if_ (v "hot") [ store (p 0) tid (f 2.0) ] [ store (p 0) tid (f 0.5) ];
      ])

let copy_func =
  Kir.Dsl.(
    func "tl_copy" [ ptr "dst"; ptr "src"; scalar "n" ]
      [ if_ (tid <. p 2) [ store (p 0) tid (load (p 1) tid) ] [] ])

let matvec_body ~dst ~src =
  Kir.Dsl.(
    [
      let_ "x" (tid %. p 2);
      let_ "y" (tid /. p 2);
      let_ "interior"
        ((i 1 <=. v "x") &&. (v "x" <=. (p 2 -. i 2))
        &&. (i 1 <=. v "y")
        &&. (v "y" <=. (p 3 -. i 2)));
      if_ (v "interior")
        [
          store (p dst) tid
            (((f 1. +. (f 4. *. p 4)) *. load (p src) tid)
            -. (p 4
               *. (load (p src) (tid -. p 2)
                  +. load (p src) (tid +. p 2)
                  +. load (p src) (tid -. i 1)
                  +. load (p src) (tid +. i 1))));
        ]
        [ store (p dst) tid (f 0.) ];
    ])

(* w = A p *)
let matvec_func =
  Kir.Dsl.(
    func "tl_matvec"
      [ ptr "w"; ptr "pvec"; scalar "nx"; scalar "ny"; scalar "alpha" ]
      (matvec_body ~dst:0 ~src:1))

(* r = b - A u (interior); r = 0 elsewhere; p = r *)
let cg_init_func =
  Kir.Dsl.(
    func "tl_cg_init"
      [ ptr "r"; ptr "pvec"; ptr "b"; ptr "u"; scalar "nx"; scalar "ny"; scalar "alpha" ]
      [
        let_ "x" (tid %. p 4);
        let_ "y" (tid /. p 4);
        let_ "interior"
          ((i 1 <=. v "x") &&. (v "x" <=. (p 4 -. i 2))
          &&. (i 1 <=. v "y")
          &&. (v "y" <=. (p 5 -. i 2)));
        if_ (v "interior")
          [
            store (p 0) tid
              (load (p 2) tid
              -. ((f 1. +. (f 4. *. p 6)) *. load (p 3) tid)
              +. (p 6
                 *. (load (p 3) (tid -. p 4)
                    +. load (p 3) (tid +. p 4)
                    +. load (p 3) (tid -. i 1)
                    +. load (p 3) (tid +. i 1))));
          ]
          [ store (p 0) tid (f 0.) ];
        store (p 1) tid (load (p 0) tid);
      ])

let dot_func =
  Kir.Dsl.(
    func "tl_dot"
      [ ptr "out"; ptr "xs"; ptr "ys"; scalar "n" ]
      [
        (* Single-thread reduction: without the guard every thread
           would write out[0] — a static intra-kernel must-race. *)
        if_
          (tid ==. i 0)
          [
            store (p 0) (i 0) (f 0.);
            for_ "i" (i 0) (p 3)
              [
                store (p 0) (i 0)
                  (load (p 0) (i 0) +. (load (p 1) (v "i") *. load (p 2) (v "i")));
              ];
          ]
          [];
      ])

(* x += s * y *)
let axpy_func =
  Kir.Dsl.(
    func "tl_axpy"
      [ ptr "xs"; ptr "ys"; scalar "s"; scalar "n" ]
      [ if_ (tid <. p 3) [ store (p 0) tid (load (p 0) tid +. (p 2 *. load (p 1) tid)) ] [] ])

(* p = r + beta * p *)
let beta_func =
  Kir.Dsl.(
    func "tl_beta"
      [ ptr "pvec"; ptr "r"; scalar "beta"; scalar "n" ]
      [
        if_ (tid <. p 3)
          [ store (p 0) tid (load (p 1) tid +. (p 2 *. load (p 0) tid)) ]
          [];
      ])

let device_module =
  Kir.Dsl.modul
    ~kernels:
      [ "tl_init"; "tl_copy"; "tl_matvec"; "tl_cg_init"; "tl_dot"; "tl_axpy"; "tl_beta" ]
    [
      init_func; copy_func; matvec_func; cg_init_func; dot_func; axpy_func;
      beta_func;
    ]

(* --- native fat-binary implementations ---------------------------------- *)

open Memsim.Access

let native_init ~grid (args : Kir.Interp.value array) =
  match args with
  | [| VPtr u; VInt nx; VInt gny; VInt y_off |] ->
      for t = 0 to grid - 1 do
        let x = t mod nx and gy = y_off + (t / nx) in
        let hot =
          nx / 4 <= x && x < 3 * nx / 4 && gny / 4 <= gy && gy < 3 * gny / 4
        in
        raw_set_f64 u t (if hot then 2.0 else 0.5)
      done
  | _ -> invalid_arg "native_init"

let native_copy ~grid (args : Kir.Interp.value array) =
  match args with
  | [| VPtr dst; VPtr src; VInt n |] ->
      for t = 0 to grid - 1 do
        if t < n then raw_set_f64 dst t (raw_get_f64 src t)
      done
  | _ -> invalid_arg "native_copy"

let native_matvec ~grid:_ (args : Kir.Interp.value array) =
  match args with
  | [| VPtr w; VPtr pv; VInt nx; VInt ny; VFlt a |] ->
      for t = 0 to (nx * ny) - 1 do
        let x = t mod nx and y = t / nx in
        if 1 <= x && x <= nx - 2 && 1 <= y && y <= ny - 2 then
          raw_set_f64 w t
            (((1. +. (4. *. a)) *. raw_get_f64 pv t)
            -. (a
               *. (raw_get_f64 pv (t - nx)
                  +. raw_get_f64 pv (t + nx)
                  +. raw_get_f64 pv (t - 1)
                  +. raw_get_f64 pv (t + 1))))
        else raw_set_f64 w t 0.
      done
  | _ -> invalid_arg "native_matvec"

let native_cg_init ~grid:_ (args : Kir.Interp.value array) =
  match args with
  | [| VPtr r; VPtr pv; VPtr b; VPtr u; VInt nx; VInt ny; VFlt a |] ->
      for t = 0 to (nx * ny) - 1 do
        let x = t mod nx and y = t / nx in
        if 1 <= x && x <= nx - 2 && 1 <= y && y <= ny - 2 then
          raw_set_f64 r t
            (raw_get_f64 b t
            -. ((1. +. (4. *. a)) *. raw_get_f64 u t)
            +. (a
               *. (raw_get_f64 u (t - nx)
                  +. raw_get_f64 u (t + nx)
                  +. raw_get_f64 u (t - 1)
                  +. raw_get_f64 u (t + 1))))
        else raw_set_f64 r t 0.;
        raw_set_f64 pv t (raw_get_f64 r t)
      done
  | _ -> invalid_arg "native_cg_init"

let native_dot ~grid:_ (args : Kir.Interp.value array) =
  match args with
  | [| VPtr out; VPtr xs; VPtr ys; VInt n |] ->
      let s = ref 0. in
      for i = 0 to n - 1 do
        s := !s +. (raw_get_f64 xs i *. raw_get_f64 ys i)
      done;
      raw_set_f64 out 0 !s
  | _ -> invalid_arg "native_dot"

let native_axpy ~grid (args : Kir.Interp.value array) =
  match args with
  | [| VPtr xs; VPtr ys; VFlt s; VInt n |] ->
      for t = 0 to grid - 1 do
        if t < n then raw_set_f64 xs t (raw_get_f64 xs t +. (s *. raw_get_f64 ys t))
      done
  | _ -> invalid_arg "native_axpy"

let native_beta ~grid (args : Kir.Interp.value array) =
  match args with
  | [| VPtr pv; VPtr r; VFlt beta; VInt n |] ->
      for t = 0 to grid - 1 do
        if t < n then raw_set_f64 pv t (raw_get_f64 r t +. (beta *. raw_get_f64 pv t))
      done
  | _ -> invalid_arg "native_beta"

(* --- host code ----------------------------------------------------------- *)

let f64 = Typeart.Typedb.F64

let app (cfg : config) (env : Harness.Run.env) =
  let ctx = env.Harness.Run.mpi in
  let dev = env.Harness.Run.dev in
  let rank = ctx.Mpi.rank and size = ctx.Mpi.size in
  let nx = cfg.nx in
  if cfg.ny mod size <> 0 then invalid_arg "TeaLeaf: ny must divide by nranks";
  let nyl = cfg.ny / size in
  let rows = nyl + 2 in
  let cells = nx * rows in
  let compile = env.Harness.Run.compile in
  let kernel name native =
    compile (Cudasim.Kernel.make ~kir:(device_module, name) ~native name)
  in
  let k_init = kernel "tl_init" native_init in
  let k_copy = kernel "tl_copy" native_copy in
  let k_matvec = kernel "tl_matvec" native_matvec in
  let k_cg_init = kernel "tl_cg_init" native_cg_init in
  let k_dot = kernel "tl_dot" native_dot in
  let k_axpy = kernel "tl_axpy" native_axpy in
  let k_beta = kernel "tl_beta" native_beta in
  let d name = Mem.cuda_malloc ~tag:name dev ~ty:f64 ~count:cells in
  let u = d "d_u" and b = d "d_b" and r = d "d_r" in
  let pvec = d "d_p" and w = d "d_w" in
  let d_scal = Mem.cuda_malloc ~tag:"d_scal" dev ~ty:f64 ~count:1 in
  let h_scal = Mem.host_malloc ~tag:"h_scal" ~ty:f64 ~count:1 () in
  let h_glob = Mem.host_malloc ~tag:"h_glob" ~ty:f64 ~count:1 () in
  let launch ?grid k args =
    Dev.launch dev k ~grid:(Option.value grid ~default:cells) ~args ()
  in
  let row rr buf = Memsim.Ptr.add buf ~elt:8 (rr * nx) in
  let up = rank - 1 and down = rank + 1 in
  (* Non-blocking halo exchange of [buf]'s boundary rows. *)
  let exchange_begin buf =
    let reqs = ref [] in
    if up >= 0 then begin
      reqs :=
        Mpi.irecv ctx ~buf:(row 0 buf) ~count:nx ~dt:Mpisim.Datatype.double
          ~src:up ~tag:1
        :: !reqs;
      reqs :=
        Mpi.isend ctx ~buf:(row 1 buf) ~count:nx ~dt:Mpisim.Datatype.double
          ~dst:up ~tag:0
        :: !reqs
    end;
    if down < size then begin
      reqs :=
        Mpi.irecv ctx ~buf:(row (nyl + 1) buf) ~count:nx
          ~dt:Mpisim.Datatype.double ~src:down ~tag:0
        :: !reqs;
      reqs :=
        Mpi.isend ctx ~buf:(row nyl buf) ~count:nx ~dt:Mpisim.Datatype.double
          ~dst:down ~tag:1
        :: !reqs
    end;
    !reqs
  in
  let exchange_end reqs = Mpi.waitall ctx reqs in
  (* Device dot product of x.y reduced over all ranks. *)
  let global_dot x y =
    launch ~grid:1 k_dot [| VPtr d_scal; VPtr x; VPtr y; VInt cells |];
    Mem.memcpy dev ~dst:h_scal ~src:d_scal ~bytes:8 ();
    Mpi.allreduce ctx ~sendbuf:h_scal ~recvbuf:h_glob ~count:1
      ~dt:Mpisim.Datatype.double ~op:Mpi.Sum;
    Memsim.Access.get_f64 h_glob 0
  in
  launch k_init [| VPtr u; VInt nx; VInt (cfg.ny + 2); VInt (rank * nyl) |];
  Dev.device_synchronize dev;
  let final_rr = ref nan in
  for _step = 1 to cfg.steps do
    (* Work arrays start clean each step (asynchronous w.r.t. host). *)
    Mem.memset dev ~dst:r ~bytes:(cells * 8) ~value:0 ();
    Mem.memset dev ~dst:w ~bytes:(cells * 8) ~value:0 ();
    Mem.memset dev ~dst:pvec ~bytes:(cells * 8) ~value:0 ();
    (* b = u, then make u's halos current before forming the residual. *)
    launch k_copy [| VPtr b; VPtr u; VInt cells |];
    Dev.device_synchronize dev;
    exchange_end (exchange_begin u);
    launch k_cg_init
      [| VPtr r; VPtr pvec; VPtr b; VPtr u; VInt nx; VInt rows; VFlt cfg.alpha |];
    Dev.device_synchronize dev;
    let rr = ref (global_dot r r) in
    let iter = ref 0 in
    while !iter < cfg.cg_iters && !rr > 1e-24 do
      incr iter;
      (* Halo exchange of the direction vector. *)
      (match cfg.racy with
      | `Cuda_to_mpi -> () (* missing device sync: sends may read rows
                               the tl_beta kernel is still writing *)
      | `No | `Mpi_to_cuda -> Dev.device_synchronize dev);
      let reqs = exchange_begin pvec in
      (match cfg.racy with
      | `Mpi_to_cuda ->
          (* matvec consumes halos before Waitall: MPI-to-CUDA race. *)
          launch k_matvec [| VPtr w; VPtr pvec; VInt nx; VInt rows; VFlt cfg.alpha |];
          exchange_end reqs
      | `No | `Cuda_to_mpi ->
          exchange_end reqs;
          launch k_matvec [| VPtr w; VPtr pvec; VInt nx; VInt rows; VFlt cfg.alpha |]);
      let pw = global_dot pvec w in
      if pw = 0. then iter := cfg.cg_iters
      else begin
        let alpha_cg = !rr /. pw in
        launch k_axpy [| VPtr u; VPtr pvec; VFlt alpha_cg; VInt cells |];
        launch k_axpy [| VPtr r; VPtr w; VFlt (-.alpha_cg); VInt cells |];
        let rr_new = global_dot r r in
        let beta = rr_new /. !rr in
        rr := rr_new;
        launch k_beta [| VPtr pvec; VPtr r; VFlt beta; VInt cells |]
      end
    done;
    final_rr := !rr
  done;
  Dev.device_synchronize dev;
  cfg.results.(rank) <- !final_rr;
  List.iter (Mem.free dev) [ u; b; r; pvec; w; d_scal ];
  Typeart.Pass.free h_scal;
  Typeart.Pass.free h_glob

(* Serial reference implementation on the global domain. *)
let reference (cfg : config) =
  let nx = cfg.nx and ny = cfg.ny in
  let rows = ny + 2 in
  let n = nx * rows in
  let u = Array.make n 0. and b = Array.make n 0. in
  let r = Array.make n 0. and p = Array.make n 0. and w = Array.make n 0. in
  for t = 0 to n - 1 do
    let x = t mod nx and gy = t / nx in
    let hot =
      nx / 4 <= x && x < 3 * nx / 4 && (ny + 2) / 4 <= gy && gy < 3 * (ny + 2) / 4
    in
    u.(t) <- (if hot then 2.0 else 0.5)
  done;
  let interior t =
    let x = t mod nx and y = t / nx in
    1 <= x && x <= nx - 2 && 1 <= y && y <= rows - 2
  in
  let a = cfg.alpha in
  let apply src t =
    ((1. +. (4. *. a)) *. src.(t))
    -. (a *. (src.(t - nx) +. src.(t + nx) +. src.(t - 1) +. src.(t + 1)))
  in
  let dot x y =
    let s = ref 0. in
    Array.iteri (fun i v -> s := !s +. (v *. y.(i))) x;
    !s
  in
  let final_rr = ref nan in
  for _step = 1 to cfg.steps do
    Array.blit u 0 b 0 n;
    for t = 0 to n - 1 do
      if interior t then r.(t) <- b.(t) -. apply u t else r.(t) <- 0.;
      p.(t) <- r.(t)
    done;
    let rr = ref (dot r r) in
    let iter = ref 0 in
    while !iter < cfg.cg_iters && !rr > 1e-24 do
      incr iter;
      for t = 0 to n - 1 do
        if interior t then w.(t) <- apply p t else w.(t) <- 0.
      done;
      let pw = dot p w in
      if pw = 0. then iter := cfg.cg_iters
      else begin
        let alpha_cg = !rr /. pw in
        for t = 0 to n - 1 do
          u.(t) <- u.(t) +. (alpha_cg *. p.(t));
          r.(t) <- r.(t) -. (alpha_cg *. w.(t))
        done;
        let rr_new = dot r r in
        let beta = rr_new /. !rr in
        rr := rr_new;
        for t = 0 to n - 1 do
          p.(t) <- r.(t) +. (beta *. p.(t))
        done
      end
    done;
    final_rr := !rr
  done;
  !final_rr
