(* The simulated CUDA device: streams as FIFO queues of operations over
   a dependency DAG, CUDA events, and the legacy default-stream
   semantics of Fig. 3 in the paper.

   Execution modes:
   - [Eager]: every operation executes at enqueue time. Data is always
     fresh; missing synchronization is only visible to the race
     detector — like running a racy program that happens to win its
     races.
   - [Deferred]: operations execute when something forces them (a
     synchronization call, a blocking memory operation, or device
     progress ticks from [stream_query]). Reading a buffer without
     proper synchronization then really observes stale data, so races
     have observable consequences.

   Dependency edges encode device-side ordering:
   - each op depends on its stream predecessor (FIFO),
   - an op on the legacy default stream depends on the tails of all
     blocking user streams (it waits for them),
   - an op on a blocking user stream depends on the last default-stream
     op (the logical barrier of Fig. 3),
   - non-blocking streams take part in neither legacy edge,
   - cudaStreamWaitEvent adds an edge to the event's marker op. *)

type flags = Blocking | Non_blocking

type stream = {
  sid : int;
  flags : flags;
  is_default : bool;
  mutable tail : op option;
  mutable destroyed : bool;
  mutable wedged : string option;
      (* injected device wedge: ops behind this stream never complete;
         the string names the fault origin for diagnostics *)
}

and op = {
  oid : int;
  label : string;
  op_stream : stream;
  deps : op list;
  action : unit -> unit;
  mutable executed : bool;
  mutable finished_at : float; (* virtual device time at completion *)
}

type event = { eid : int; mutable recorded : op option }

type mode = Eager | Deferred

(* Default-stream semantics (paper, Section VI-B): [Legacy] is the
   classic blocking default stream of Fig. 3; [Per_thread] gives each
   host thread its own default stream with no legacy barriers
   (nvcc --default-stream per-thread). *)
type default_mode = Legacy | Per_thread

type phase = Pre | Post

type api_event =
  | Stream_create of stream
  | Stream_destroy of stream
  | Kernel_launch of {
      kernel : Kernel.t;
      grid : int;
      args : Kir.Interp.value array;
      stream : stream;
    }
  | Memcpy of {
      dst : Memsim.Ptr.t;
      src : Memsim.Ptr.t;
      bytes : int;
      async : bool;
      stream : stream;
      blocking : bool; (* does the call really block the host? *)
      modeled_sync : bool; (* does CuSan's model treat it as a sync point? *)
    }
  | Memset of {
      dst : Memsim.Ptr.t;
      bytes : int;
      value : int;
      async : bool;
      stream : stream;
      blocking : bool;
      modeled_sync : bool;
    }
  | Device_sync
  | Stream_sync of stream
  | Stream_query of stream * bool
  | Event_record of { event : event; stream : stream }
  | Event_sync of event
  | Event_query of event * bool
  | Stream_wait_event of { stream : stream; event : event }
  | Malloc of { ptr : Memsim.Ptr.t; space : Memsim.Space.t; bytes : int }
  | Free of { ptr : Memsim.Ptr.t; async : bool; stream : stream option }
  | Host_func of { stream : stream; label : string }

type t = {
  mode : mode;
  default_stream_mode : default_mode;
  default : stream;
  ptds : (int, stream) Hashtbl.t; (* per-thread default streams *)
  mutable thread_key : int; (* current host thread, set by the harness *)
  mutable user_streams : stream list; (* reverse creation order *)
  mutable legacy_tail : op option; (* last op on the default stream *)
  mutable next_oid : int;
  mutable next_sid : int;
  mutable next_eid : int;
  pending : op Queue.t; (* enqueue order, for progress ticks *)
  mutable hooks : (phase -> api_event -> unit) list;
  mutable ops_executed : int;
  mutable exec_wall_s : float; (* real CPU time spent running op bodies *)
  mutable virtual_s : float; (* modelled device time (Costmodel) *)
  (* Error state (see [Error]): [last_error] is the most recent
     non-sticky failure, cleared by [get_last_error]; [sticky] is a
     corrupted-context error every later call re-surfaces; deferred
     async errors queue up here until a sync point pops them. *)
  mutable last_error : Error.code;
  mutable sticky : Error.code option;
  async_errors : (Error.code * string) Queue.t;
}

exception Stream_destroyed

let create ?(mode = Eager) ?(default_stream_mode = Legacy) () =
  {
    mode;
    default_stream_mode;
    default =
      { sid = 0; flags = Blocking; is_default = true; tail = None;
        destroyed = false; wedged = None };
    ptds = Hashtbl.create 4;
    thread_key = 0;
    user_streams = [];
    legacy_tail = None;
    next_oid = 0;
    next_sid = 1;
    next_eid = 0;
    pending = Queue.create ();
    hooks = [];
    ops_executed = 0;
    exec_wall_s = 0.;
    virtual_s = 0.;
    last_error = Error.Success;
    sticky = None;
    async_errors = Queue.create ();
  }

let add_hook t f = t.hooks <- f :: t.hooks

(* Flight-recorder rendering of an API event: CUDA call name plus the
   arguments worth seeing in a trace. *)
let trace_label = function
  | Stream_create s -> ("cudaStreamCreate", [ ("sid", string_of_int s.sid) ])
  | Stream_destroy s -> ("cudaStreamDestroy", [ ("sid", string_of_int s.sid) ])
  | Kernel_launch { kernel; grid; stream; _ } ->
      ( "cudaLaunchKernel",
        [
          ("kernel", kernel.Kernel.kname);
          ("grid", string_of_int grid);
          ("sid", string_of_int stream.sid);
        ] )
  | Memcpy { bytes; async; stream; _ } ->
      ( (if async then "cudaMemcpyAsync" else "cudaMemcpy"),
        [ ("bytes", string_of_int bytes); ("sid", string_of_int stream.sid) ] )
  | Memset { bytes; async; stream; _ } ->
      ( (if async then "cudaMemsetAsync" else "cudaMemset"),
        [ ("bytes", string_of_int bytes); ("sid", string_of_int stream.sid) ] )
  | Device_sync -> ("cudaDeviceSynchronize", [])
  | Stream_sync s -> ("cudaStreamSynchronize", [ ("sid", string_of_int s.sid) ])
  | Stream_query (s, _) -> ("cudaStreamQuery", [ ("sid", string_of_int s.sid) ])
  | Event_record { event; stream } ->
      ( "cudaEventRecord",
        [ ("eid", string_of_int event.eid); ("sid", string_of_int stream.sid) ]
      )
  | Event_sync e -> ("cudaEventSynchronize", [ ("eid", string_of_int e.eid) ])
  | Event_query (e, _) -> ("cudaEventQuery", [ ("eid", string_of_int e.eid) ])
  | Stream_wait_event { stream; event } ->
      ( "cudaStreamWaitEvent",
        [ ("sid", string_of_int stream.sid); ("eid", string_of_int event.eid) ]
      )
  | Malloc { bytes; space; _ } ->
      ( "cudaMalloc",
        [ ("bytes", string_of_int bytes); ("space", Memsim.Space.to_string space) ] )
  | Free { async; _ } -> ((if async then "cudaFreeAsync" else "cudaFree"), [])
  | Host_func { stream; label } ->
      ( "cudaLaunchHostFunc",
        [ ("label", label); ("sid", string_of_int stream.sid) ] )

let fire t phase ev =
  (if phase = Pre && Trace.Recorder.on () then
     let name, args = trace_label ev in
     Trace.Recorder.instant ~cat:"cuda" ~args name);
  List.iter (fun f -> f phase ev) t.hooks

(* --- error state ------------------------------------------------------- *)

let record_error t code =
  if Error.is_sticky code then (
    if t.sticky = None then t.sticky <- Some code)
  else t.last_error <- code

(* cudaGetLastError: returns and clears the last error — except sticky
   errors, which nothing clears. *)
let get_last_error t =
  match t.sticky with
  | Some c -> c
  | None ->
      let c = t.last_error in
      t.last_error <- Error.Success;
      c

let peek_at_last_error t =
  match t.sticky with Some c -> c | None -> t.last_error

(* Queue a deferred asynchronous error from device-side work; it
   surfaces at the next synchronization point, as on real hardware. *)
let post_async_error t code ctx = Queue.push (code, ctx) t.async_errors

(* Pop pending async errors at a sync point: record and raise the first
   one. Also re-surfaces a sticky error on every call, modelling a
   corrupted context. No-op on a healthy device. *)
let surface t ctx =
  if not (Queue.is_empty t.async_errors) then begin
    let code, origin = Queue.pop t.async_errors in
    record_error t code;
    Error.fail code (Fmt.str "%s: deferred error from %s" ctx origin)
  end;
  match t.sticky with
  | Some c -> Error.fail c (Fmt.str "%s: context corrupted" ctx)
  | None -> ()

let mode t = t.mode
let default_mode t = t.default_stream_mode

(* The harness sets this when the scheduler resumes a different host
   thread, so per-thread default streams resolve correctly. *)
let set_thread_key t k = t.thread_key <- k

let default_stream t =
  match t.default_stream_mode with
  | Legacy -> t.default
  | Per_thread -> (
      match Hashtbl.find_opt t.ptds t.thread_key with
      | Some s -> s
      | None ->
          (* A per-thread default stream never takes part in the legacy
             barrier; model it as a non-blocking pseudo-default. *)
          let s =
            {
              sid = t.next_sid;
              flags = Non_blocking;
              is_default = true;
              tail = None;
              destroyed = false;
              wedged = None;
            }
          in
          t.next_sid <- t.next_sid + 1;
          Hashtbl.replace t.ptds t.thread_key s;
          fire t Pre (Stream_create s);
          fire t Post (Stream_create s);
          s)

let streams t =
  (* Sorted by stream id, not hash order: callers fold this into
     reports and sync sweeps, which must not vary between runs that
     created the same streams in a different schedule. *)
  let ptds =
    Hashtbl.fold (fun _ s acc -> s :: acc) t.ptds []
    |> List.sort (fun a b -> compare a.sid b.sid)
  in
  (t.default :: ptds) @ List.rev t.user_streams

(* --- op DAG ----------------------------------------------------------- *)

exception Wedged of string
(* Raised when forcing work that sits behind a wedged stream — directly
   or through a dependency edge. Internal control flow: sync points
   convert it into a sticky [Launch_timeout] via [surface_wedge];
   asynchronous paths (eager enqueue, progress ticks) swallow it, since
   on real hardware a wedged stream fails nothing until you wait on it. *)

let wedge_stream (s : stream) ~origin =
  if s.wedged = None then s.wedged <- Some origin

let rec force op =
  if not op.executed then begin
    (match op.op_stream.wedged with
    | Some origin -> raise (Wedged origin)
    | None -> ());
    List.iter force op.deps;
    op.executed <- true;
    op.action ()
  end

(* Run [f] (a forcing computation) at a synchronization point: waiting
   on wedged work surfaces as the sticky [Launch_timeout] a hung device
   eventually produces, corrupting the context — every later call then
   re-surfaces it. *)
let surface_wedge t api f =
  try f ()
  with Wedged origin ->
    record_error t Error.Launch_timeout;
    Error.fail Error.Launch_timeout
      (Fmt.str
         "%s: stream wedged by injected fault (%s); queued device work will \
          never complete"
         api origin)

let force_all_of t =
  List.iter
    (fun s -> match s.tail with Some op -> force op | None -> ())
    (streams t);
  match t.legacy_tail with Some op -> force op | None -> ()

let enqueue t ?(extra_deps = []) ?(cost = 0.) stream label action =
  if stream.destroyed then raise Stream_destroyed;
  (* A corrupted context rejects all new work with the sticky error. *)
  (match t.sticky with
  | Some c -> Error.fail c (Fmt.str "%s: context corrupted" label)
  | None -> ());
  let tails_of l =
    List.filter_map (fun (s : stream) -> s.tail) l
  in
  let legacy_deps =
    if t.default_stream_mode = Per_thread then []
      (* per-thread default streams have no blocking barriers *)
    else if stream.is_default then
      (* Default-stream ops wait for all prior work on blocking streams. *)
      tails_of (List.filter (fun s -> s.flags = Blocking) t.user_streams)
    else if stream.flags = Blocking then
      (* Blocking user streams wait for prior default-stream work. *)
      match t.legacy_tail with Some op -> [ op ] | None -> []
    else []
  in
  let deps =
    (match stream.tail with Some op -> [ op ] | None -> [])
    @ legacy_deps @ extra_deps
  in
  let rec op =
    {
      oid = t.next_oid;
      label;
      op_stream = stream;
      deps;
      executed = false;
      finished_at = 0.;
      action =
        (fun () ->
          t.ops_executed <- t.ops_executed + 1;
          let traced = Trace.Recorder.on () in
          let ts0 = if traced then Trace.Recorder.now_us () else 0. in
          let t0 = Unix.gettimeofday () in
          action ();
          t.exec_wall_s <- t.exec_wall_s +. (Unix.gettimeofday () -. t0);
          t.virtual_s <- t.virtual_s +. cost;
          op.finished_at <- t.virtual_s;
          if traced then begin
            (* Device ops become Complete slices whose duration is the
               modelled device time, so the trace shows the cost model's
               view of the GPU timeline. *)
            Trace.Recorder.add_vt cost;
            Trace.Recorder.complete ~cat:"cuda.op" ~start_us:ts0
              ~dur_us:(cost *. 1e6)
              ~args:[ ("sid", string_of_int stream.sid) ]
              label
          end);
    }
  in
  t.next_oid <- t.next_oid + 1;
  stream.tail <- Some op;
  if stream.is_default && t.default_stream_mode = Legacy then
    t.legacy_tail <- Some op;
  Queue.push op t.pending;
  (* Eager execution stops at a wedged stream: the enqueue itself still
     succeeds (launches return cudaSuccess on a hung device), the work
     just never runs. *)
  if t.mode = Eager then (try force op with Wedged _ -> ());
  op

(* One unit of asynchronous device progress: execute the oldest pending
   operation. Deferred mode uses this to make cudaStreamQuery busy-wait
   loops terminate, modelling a device that advances behind the host's
   back. *)
let tick t =
  let rec go () =
    if Queue.is_empty t.pending then false
    else
      let op = Queue.pop t.pending in
      if op.executed then go ()
      else
        match force op with
        | () -> true
        | exception Wedged _ ->
            (* Wedged work makes no progress; try the next pending op. *)
            go ()
  in
  go ()

let ops_executed t = t.ops_executed

(* --- streams ----------------------------------------------------------- *)

let stream_create ?(flags = Blocking) t =
  let s =
    { sid = t.next_sid; flags; is_default = false; tail = None;
      destroyed = false; wedged = None }
  in
  t.next_sid <- t.next_sid + 1;
  t.user_streams <- s :: t.user_streams;
  fire t Pre (Stream_create s);
  fire t Post (Stream_create s);
  s

let stream_synchronize t s =
  fire t Pre (Stream_sync s);
  surface_wedge t "cudaStreamSynchronize" (fun () ->
      match s.tail with Some op -> force op | None -> ());
  fire t Post (Stream_sync s);
  surface t "cudaStreamSynchronize"

let stream_destroy t s =
  if s.is_default then invalid_arg "cannot destroy the default stream";
  fire t Pre (Stream_destroy s);
  surface_wedge t "cudaStreamDestroy" (fun () ->
      match s.tail with Some op -> force op | None -> ());
  s.destroyed <- true;
  t.user_streams <- List.filter (fun s' -> s'.sid <> s.sid) t.user_streams;
  fire t Post (Stream_destroy s)

let stream_query t s =
  fire t Pre (Stream_query (s, false));
  if t.mode = Deferred then ignore (tick t);
  let completed = match s.tail with None -> true | Some op -> op.executed in
  fire t Post (Stream_query (s, completed));
  surface t "cudaStreamQuery";
  completed

let device_synchronize t =
  fire t Pre Device_sync;
  surface_wedge t "cudaDeviceSynchronize" (fun () -> force_all_of t);
  fire t Post Device_sync;
  surface t "cudaDeviceSynchronize"

(* --- events ------------------------------------------------------------ *)

let event_create t =
  let e = { eid = t.next_eid; recorded = None } in
  t.next_eid <- t.next_eid + 1;
  e

let event_record t e s =
  fire t Pre (Event_record { event = e; stream = s });
  let marker = enqueue t s (Fmt.str "event#%d" e.eid) (fun () -> ()) in
  e.recorded <- Some marker;
  fire t Post (Event_record { event = e; stream = s })

let event_synchronize t e =
  fire t Pre (Event_sync e);
  surface_wedge t "cudaEventSynchronize" (fun () ->
      match e.recorded with Some op -> force op | None -> ());
  fire t Post (Event_sync e);
  surface t "cudaEventSynchronize"

let event_query t e =
  fire t Pre (Event_query (e, false));
  if t.mode = Deferred then ignore (tick t);
  let completed = match e.recorded with None -> true | Some op -> op.executed in
  fire t Post (Event_query (e, completed));
  surface t "cudaEventQuery";
  completed

(* cudaEventElapsedTime: virtual milliseconds between the completion of
   two recorded events. Forces both, like querying timing on real CUDA
   requires the events to have completed. *)
let event_elapsed_time t e1 e2 =
  let finish e =
    match e.recorded with
    | Some op ->
        surface_wedge t "cudaEventElapsedTime" (fun () -> force op);
        op.finished_at
    | None -> invalid_arg "event_elapsed_time: event never recorded"
  in
  let t1 = finish e1 in
  let t2 = finish e2 in
  (t2 -. t1) *. 1000.

(* cudaLaunchHostFunc: run a host callback as a stream operation — it
   executes after all preceding work on the stream and blocks subsequent
   stream work until it returns. *)
let launch_host_func t s ?(label = "hostFunc") f =
  fire t Pre (Host_func { stream = s; label });
  ignore (enqueue t s label f);
  fire t Post (Host_func { stream = s; label })

let stream_wait_event t s e =
  fire t Pre (Stream_wait_event { stream = s; event = e });
  let extra_deps = match e.recorded with Some op -> [ op ] | None -> [] in
  ignore
    (enqueue t ~extra_deps s (Fmt.str "wait-event#%d" e.eid) (fun () -> ()));
  fire t Post (Stream_wait_event { stream = s; event = e })

(* --- kernel launch ----------------------------------------------------- *)

exception Invalid_launch of string

let launch t kernel ~grid ~(args : Kir.Interp.value array) ?stream () =
  let stream = match stream with Some s -> s | None -> default_stream t in
  if grid <= 0 then begin
    record_error t Error.Invalid_value;
    raise (Invalid_launch "grid must be positive")
  end;
  Array.iter
    (function
      | Kir.Interp.VPtr p
        when not (Memsim.Space.device_accessible (Memsim.Ptr.space p)) ->
          record_error t Error.Invalid_value;
          raise
            (Invalid_launch
               (Fmt.str "kernel %s given host pointer %a" kernel.Kernel.kname
                  Memsim.Ptr.pp p))
      | _ -> ())
    args;
  let injected = Faultsim.Injector.probe ~site:Faultsim.Site.Kernel_launch () in
  (match injected with
  | Some Faultsim.Plan.Abort ->
      Error.fail Error.Launch_failed
        (Fmt.str "injected abort launching kernel %s" kernel.Kernel.kname)
  | Some Faultsim.Plan.Hang -> Faultsim.Injector.hang ~site:Faultsim.Site.Kernel_launch ()
  | Some Faultsim.Plan.Crash ->
      Faultsim.Injector.crash ~site:Faultsim.Site.Kernel_launch ()
  | Some Faultsim.Plan.Wedge ->
      (* The stream behind this launch becomes permanently unresponsive;
         the launch call itself still returns cudaSuccess. *)
      wedge_stream stream
        ~origin:(Fmt.str "kernel_launch:%s" kernel.Kernel.kname)
  | Some (Faultsim.Plan.Fail | Faultsim.Plan.Drop | Faultsim.Plan.Delay _)
  | None -> ());
  fire t Pre (Kernel_launch { kernel; grid; args; stream });
  let body =
    match injected with
    | Some (Faultsim.Plan.Fail | Faultsim.Plan.Drop | Faultsim.Plan.Delay _) ->
        (* The launch itself "succeeds"; the fault is an asynchronous
           device-side failure that surfaces at the next sync point.
           Drop/delay have no kernel meaning and degrade to this. *)
        fun () ->
          post_async_error t Error.Launch_failed
            (Fmt.str "kernel:%s" kernel.Kernel.kname)
    | _ -> fun () -> Kernel.execute kernel ~grid args
  in
  ignore
    (enqueue t ~cost:(Costmodel.kernel ~grid) stream
       (Fmt.str "kernel:%s" kernel.Kernel.kname)
       body);
  fire t Post (Kernel_launch { kernel; grid; args; stream })

let timing t = (t.exec_wall_s, t.virtual_s)
