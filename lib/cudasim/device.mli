(** The simulated CUDA device: streams as FIFO queues of operations over
    a dependency DAG, CUDA events, legacy default-stream semantics
    (Fig. 3 of the paper), and an interception hook interface for
    correctness tools.

    Dependency edges encode device-side ordering: each op depends on its
    stream predecessor; an op on the legacy default stream depends on the
    tails of all blocking user streams; an op on a blocking user stream
    depends on the last default-stream op; non-blocking streams take
    part in neither legacy edge; [cudaStreamWaitEvent] adds an edge to
    the event's marker op. *)

type flags = Blocking | Non_blocking

type stream = {
  sid : int;
  flags : flags;
  is_default : bool;
  mutable tail : op option;  (** last enqueued op (FIFO predecessor) *)
  mutable destroyed : bool;
  mutable wedged : string option;
      (** injected device wedge: work behind this stream never completes;
          the string names the fault origin for diagnostics *)
}

and op
(** A device operation; forced at most once, dependencies first. *)

type event = { eid : int; mutable recorded : op option }
(** A CUDA event: a marker placed on a stream by [event_record]. *)

(** Execution modes:
    - [Eager]: every operation executes at enqueue time; missing
      synchronization is only visible to the race detector.
    - [Deferred]: operations execute when forced by a synchronization,
      a blocking memory operation, or progress ticks — reading a buffer
      without proper synchronization then really observes stale data. *)
type mode = Eager | Deferred

(** Default-stream semantics (paper, Section VI-B): [Legacy] is the
    classic blocking default stream; [Per_thread] gives each host thread
    its own default stream with no legacy barriers
    ([nvcc --default-stream per-thread]). *)
type default_mode = Legacy | Per_thread

type phase = Pre | Post

(** Intercepted API calls, as delivered to tool hooks. For memory
    operations, [blocking] is whether the call really blocks the host
    and [modeled_sync] whether CuSan's (pessimistic) model treats it as
    a synchronization point — see {!Semantics}. *)
type api_event =
  | Stream_create of stream
  | Stream_destroy of stream
  | Kernel_launch of {
      kernel : Kernel.t;
      grid : int;
      args : Kir.Interp.value array;
      stream : stream;
    }
  | Memcpy of {
      dst : Memsim.Ptr.t;
      src : Memsim.Ptr.t;
      bytes : int;
      async : bool;
      stream : stream;
      blocking : bool;
      modeled_sync : bool;
    }
  | Memset of {
      dst : Memsim.Ptr.t;
      bytes : int;
      value : int;
      async : bool;
      stream : stream;
      blocking : bool;
      modeled_sync : bool;
    }
  | Device_sync
  | Stream_sync of stream
  | Stream_query of stream * bool  (** completion status; valid in [Post] *)
  | Event_record of { event : event; stream : stream }
  | Event_sync of event
  | Event_query of event * bool
  | Stream_wait_event of { stream : stream; event : event }
  | Malloc of { ptr : Memsim.Ptr.t; space : Memsim.Space.t; bytes : int }
  | Free of { ptr : Memsim.Ptr.t; async : bool; stream : stream option }
  | Host_func of { stream : stream; label : string }

type t

exception Stream_destroyed
exception Invalid_launch of string

val create : ?mode:mode -> ?default_stream_mode:default_mode -> unit -> t

(** {1 Interception} *)

val add_hook : t -> (phase -> api_event -> unit) -> unit
(** Register a tool callback; fired around every API call. *)

val fire : t -> phase -> api_event -> unit

(** {1 Streams} *)

val mode : t -> mode
val default_mode : t -> default_mode

val default_stream : t -> stream
(** The legacy default stream — or, in [Per_thread] mode, the current
    host thread's default stream (created on demand). *)

val set_thread_key : t -> int -> unit
(** Set by the harness when the scheduler resumes a different host
    thread, so per-thread default streams resolve correctly. *)

val streams : t -> stream list
(** Default stream(s) first, then user streams in creation order. *)

val stream_create : ?flags:flags -> t -> stream
val stream_synchronize : t -> stream -> unit

val stream_destroy : t -> stream -> unit
(** Completes outstanding work, then invalidates the stream. *)

val stream_query : t -> stream -> bool
(** Completion status. In deferred mode each query also performs one
    unit of device progress, so busy-wait loops terminate. *)

val device_synchronize : t -> unit

(** {1 Events} *)

val event_create : t -> event
val event_record : t -> event -> stream -> unit
val event_synchronize : t -> event -> unit
val event_query : t -> event -> bool
val stream_wait_event : t -> stream -> event -> unit

val event_elapsed_time : t -> event -> event -> float
(** Virtual milliseconds between the completion of two recorded events
    (forces both).
    @raise Invalid_argument when an event was never recorded. *)

(** {1 Work submission} *)

val launch :
  t ->
  Kernel.t ->
  grid:int ->
  args:Kir.Interp.value array ->
  ?stream:stream ->
  unit ->
  unit
(** Enqueue a kernel launch. Pointer arguments must be
    device-accessible.
    @raise Invalid_launch otherwise, or on a non-positive grid. *)

val launch_host_func : t -> stream -> ?label:string -> (unit -> unit) -> unit
(** [cudaLaunchHostFunc]: run a host callback as a stream operation. *)

val enqueue :
  t -> ?extra_deps:op list -> ?cost:float -> stream -> string -> (unit -> unit) -> op
(** Low-level: enqueue a raw operation with the stream's FIFO and legacy
    edges. [cost] is the virtual device time charged on execution. *)

val force : op -> unit
(** Execute an op (dependencies first); idempotent.
    @raise Wedged when the op (or a dependency) sits behind a wedged
    stream. *)

exception Wedged of string
(** Forcing work behind a wedged stream. Sync points convert this into
    a sticky [Launch_timeout] (see {!surface_wedge}); asynchronous paths
    swallow it — a wedged stream fails nothing until you wait on it. *)

val wedge_stream : stream -> origin:string -> unit
(** Make the stream permanently unresponsive ([:wedge] fault action):
    no op behind it ever completes; [stream_query] stays [false]
    forever (busy-wait loops are then caught by the scheduler
    watchdog); synchronization calls fail with sticky
    [Launch_timeout]. First wedge wins. *)

val surface_wedge : t -> string -> (unit -> 'a) -> 'a
(** Run a forcing computation at a synchronization point: {!Wedged}
    becomes a sticky [Error.Launch_timeout] raised as
    [Error.Cuda_failure], naming the wedge origin. *)

val force_all_of : t -> unit

val tick : t -> bool
(** One unit of asynchronous device progress: execute the oldest pending
    op. Returns [false] when nothing was pending. *)

(** {1 Errors}

    See {!Error} for the severity model. With no faults (injected or
    otherwise) all of these are inert: queries return
    [Error.Success] and {!surface} is a no-op. *)

val get_last_error : t -> Error.code
(** [cudaGetLastError]: return and clear the last error. Sticky errors
    are returned but never cleared. *)

val peek_at_last_error : t -> Error.code
(** [cudaPeekAtLastError]: return without clearing. *)

val record_error : t -> Error.code -> unit
(** Record a synchronous failure (sticky codes corrupt the context). *)

val post_async_error : t -> Error.code -> string -> unit
(** Queue a deferred asynchronous error; it surfaces (raises
    {!Error.Cuda_failure}) at the next synchronization point. *)

val surface : t -> string -> unit
(** Surface pending deferred errors and re-raise a sticky error, as a
    synchronization point does. [ctx] names the calling API. *)

(** {1 Accounting} *)

val ops_executed : t -> int

val timing : t -> float * float
(** [(real CPU seconds spent in op bodies, virtual device seconds)] —
    see {!Costmodel} and the harness's runtime measurement model. *)
