(* CUDA error codes and their two-tier severity model.

   Real CUDA distinguishes non-sticky errors (e.g. cudaErrorMemory-
   Allocation: the call fails, the context survives, cudaGetLastError
   clears the code) from sticky errors (e.g. cudaErrorLaunchFailed /
   cudaErrorIllegalAddress: the context is corrupted and every
   subsequent call returns the same error; nothing clears it). Async
   errors from device-side work are *deferred*: they surface at the
   next synchronization point, not at the call that caused them. *)

type code =
  | Success
  | Memory_allocation (* cudaErrorMemoryAllocation — non-sticky *)
  | Invalid_value (* cudaErrorInvalidValue — non-sticky *)
  | Launch_failed (* cudaErrorLaunchFailure — sticky *)
  | Illegal_address (* cudaErrorIllegalAddress — sticky *)
  | Launch_timeout (* cudaErrorLaunchTimeout — sticky *)

let is_sticky = function
  | Launch_failed | Illegal_address | Launch_timeout -> true
  | Success | Memory_allocation | Invalid_value -> false

let to_string = function
  | Success -> "cudaSuccess"
  | Memory_allocation -> "cudaErrorMemoryAllocation"
  | Invalid_value -> "cudaErrorInvalidValue"
  | Launch_failed -> "cudaErrorLaunchFailure"
  | Illegal_address -> "cudaErrorIllegalAddress"
  | Launch_timeout -> "cudaErrorLaunchTimeout"

exception Cuda_failure of { code : code; ctx : string }
(* Raised when an error surfaces to the application: immediately for
   synchronous failures, at the next sync point for deferred async
   ones. [ctx] names the API call and, for deferred errors, the op
   that faulted. *)

let fail code ctx = raise (Cuda_failure { code; ctx })

let pp ppf c = Fmt.string ppf (to_string c)
