(** CUDA error codes with real severity semantics.

    Non-sticky errors ([Memory_allocation], [Invalid_value]) fail the
    call but leave the context usable; [Device.get_last_error] clears
    them. Sticky errors ([Launch_failed], [Illegal_address],
    [Launch_timeout]) corrupt the context: every subsequent call
    surfaces the same code and nothing clears it. Async errors from
    device work are deferred — they surface at the next sync point, not
    at the call that caused them. *)

type code =
  | Success
  | Memory_allocation
  | Invalid_value
  | Launch_failed
  | Illegal_address
  | Launch_timeout

val is_sticky : code -> bool
val to_string : code -> string

exception Cuda_failure of { code : code; ctx : string }
(** An error surfacing to the application; [ctx] names the API call
    and, for deferred errors, the faulting op. *)

val fail : code -> string -> 'a
(** [fail code ctx] raises {!Cuda_failure}. *)

val pp : Format.formatter -> code -> unit
