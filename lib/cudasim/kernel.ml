(* A CUDA kernel as seen by the host: a name, the device IR it was
   compiled from, an optional natively-compiled implementation (the
   "fat binary"), and the per-argument access attributes that CuSan's
   device pass computes and embeds for the launch-site callback
   (paper, Fig. 7 and Fig. 9). *)

type access = R | W | RW

let access_str = function R -> "r" | W -> "w" | RW -> "rw"

let reads = function R | RW -> true | W -> false
let writes = function W | RW -> true | R -> false

(* Verdict of the static intra-kernel race analysis (the compiler-side
   layer in lib/cusan); lives here because the instrumentation pass
   attaches it to the kernel object, like the access attributes.
   [Proved_race] is a [Must_race] whose concrete witness was validated
   by an interpreter replay (witness mode only). *)
type race_verdict = May_race | Must_race | Proved_race

type t = {
  kname : string;
  kir : (Kir.Ir.modul * string) option; (* module + entry function *)
  native : (grid:int -> Kir.Interp.value array -> unit) option;
  mutable access : access option array option;
      (* per argument; [None] entries are scalar arguments. [None] overall
         means the CuSan device pass has not analyzed this kernel. *)
  mutable static_races : (race_verdict * string) list option;
      (* intra-kernel races the static analysis found, with one-line
         descriptions; [None] until the pass has run. *)
}

let make ?kir ?native kname =
  if kir = None && native = None then
    invalid_arg "Kernel.make: kernel needs IR or a native implementation";
  { kname; kir; native; access = None; static_races = None }

(* Execute the kernel body for a whole grid: the native fat-binary code
   when present, otherwise the IR interpreter. *)
let execute t ~grid args =
  match t.native with
  | Some f -> f ~grid args
  | None -> (
      match t.kir with
      | Some (m, entry) -> Kir.Interp.run_kernel m ~name:entry ~args ~grid
      | None -> assert false)
