(** A CUDA kernel as seen by the host: a name, the device IR it was
    compiled from, an optional natively-compiled implementation (the
    "fat binary"), and the per-argument access attributes the CuSan
    device pass computes and embeds for the launch-site callback
    (paper, Fig. 7 and Fig. 9). *)

type access = R | W | RW

val access_str : access -> string
val reads : access -> bool
val writes : access -> bool

type race_verdict = May_race | Must_race | Proved_race
(** Verdict of the static intra-kernel race analysis (lib/cusan's
    [Race_analysis]); declared here because the instrumentation pass
    attaches its result to the kernel object, like the access
    attributes. [Proved_race] is the strongest: a must-verdict whose
    concrete witness configuration was validated by replaying the two
    threads through the interpreter (produced in witness mode only). *)

type t = {
  kname : string;
  kir : (Kir.Ir.modul * string) option;  (** device IR module + entry *)
  native : (grid:int -> Kir.Interp.value array -> unit) option;
      (** fast host-side implementation of the device code *)
  mutable access : access option array option;
      (** per-argument attributes; [None] entries are scalar arguments.
          [None] overall means the CuSan device pass has not analyzed the
          kernel — launches are then handled conservatively. *)
  mutable static_races : (race_verdict * string) list option;
      (** intra-kernel races the static analysis found, with one-line
          descriptions; [None] until the pass has run. *)
}

val make :
  ?kir:Kir.Ir.modul * string ->
  ?native:(grid:int -> Kir.Interp.value array -> unit) ->
  string ->
  t
(** @raise Invalid_argument when neither IR nor native code is given. *)

val execute : t -> grid:int -> Kir.Interp.value array -> unit
(** Run the kernel body for a whole grid: native code when present, the
    IR interpreter otherwise. *)
