(* The CUDA memory management API of the simulator. Allocation sites go
   through TypeART's instrumented allocator (Section IV-C of the paper),
   so the runtime can later answer extent queries for device pointers.
   Copy/set operations are enqueued as device operations with the
   host-synchronicity decided by the semantics matrix. *)

open Memsim

let malloc ?(tag = "d_mem") _dev ~ty ~count =
  let p = Typeart.Pass.alloc ~tag Space.Device ty count in
  p

let malloc_managed ?(tag = "m_mem") _dev ~ty ~count =
  Typeart.Pass.alloc ~tag Space.Managed ty count

let host_alloc ?(tag = "h_pinned") _dev ~ty ~count =
  Typeart.Pass.alloc ~tag Space.Host_pinned ty count

(* Plain malloc: pageable host memory; still tracked by TypeART (its
   pass instruments heap allocations in general). *)
let host_malloc ?(tag = "h_mem") ~ty ~count () =
  Typeart.Pass.alloc ~tag Space.Host_pageable ty count

let fire_malloc dev p space bytes =
  Device.fire dev Device.Pre (Device.Malloc { ptr = p; space; bytes });
  Device.fire dev Device.Post (Device.Malloc { ptr = p; space; bytes })

(* Injected cudaMalloc failure: the non-sticky out-of-memory path. No
   pointer is allocated, the context stays healthy, and a subsequent
   cudaGetLastError clears the code — exactly what an application's
   OOM-handling branch expects to see. *)
let probe_malloc dev api =
  match Faultsim.Injector.probe ~site:Faultsim.Site.Cuda_malloc () with
  | None -> ()
  | Some Faultsim.Plan.Hang ->
      Faultsim.Injector.hang ~site:Faultsim.Site.Cuda_malloc ()
  | Some Faultsim.Plan.Crash ->
      Faultsim.Injector.crash ~site:Faultsim.Site.Cuda_malloc ()
  | Some
      ( Faultsim.Plan.Fail | Faultsim.Plan.Abort | Faultsim.Plan.Drop
      | Faultsim.Plan.Delay _ | Faultsim.Plan.Wedge ) ->
      (* Transport/stream actions have no allocation meaning and degrade
         to the documented OOM failure. *)
      Device.record_error dev Error.Memory_allocation;
      Error.fail Error.Memory_allocation
        (Printf.sprintf "injected allocation failure in %s" api)

(* Allocators that also notify tools via the device hook, as intercepted
   CUDA API calls would. *)
let cuda_malloc ?tag dev ~ty ~count =
  probe_malloc dev "cudaMalloc";
  let p = malloc ?tag dev ~ty ~count in
  fire_malloc dev p Space.Device (count * Typeart.Typedb.sizeof ty);
  p

let cuda_malloc_managed ?tag dev ~ty ~count =
  probe_malloc dev "cudaMallocManaged";
  let p = malloc_managed ?tag dev ~ty ~count in
  fire_malloc dev p Space.Managed (count * Typeart.Typedb.sizeof ty);
  p

let cuda_host_alloc ?tag dev ~ty ~count =
  probe_malloc dev "cudaHostAlloc";
  let p = host_alloc ?tag dev ~ty ~count in
  fire_malloc dev p Space.Host_pinned (count * Typeart.Typedb.sizeof ty);
  p

let memcpy dev ~dst ~src ~bytes ?(async = false) ?stream () =
  let stream =
    match stream with Some s -> s | None -> Device.default_stream dev
  in
  let sspace = Ptr.space src and dspace = Ptr.space dst in
  let blocking =
    Semantics.actual_memcpy_blocks ~src:sspace ~dst:dspace ~async
  in
  let modeled_sync =
    Semantics.modeled_memcpy_syncs ~src:sspace ~dst:dspace ~async
  in
  let info =
    Device.Memcpy { dst; src; bytes; async; stream; blocking; modeled_sync }
  in
  let api = Fmt.str "memcpy%s" (if async then "Async" else "") in
  (match Faultsim.Injector.probe ~site:Faultsim.Site.Memcpy () with
  | Some Faultsim.Plan.Hang -> Faultsim.Injector.hang ~site:Faultsim.Site.Memcpy ()
  | Some Faultsim.Plan.Abort ->
      Error.fail Error.Illegal_address
        (Printf.sprintf "injected abort in %s" api)
  | Some Faultsim.Plan.Crash ->
      Faultsim.Injector.crash ~site:Faultsim.Site.Memcpy ()
  | Some Faultsim.Plan.Wedge ->
      (* The stream carrying this copy wedges; the copy never lands. *)
      Device.wedge_stream stream ~origin:api
  | Some (Faultsim.Plan.Fail | Faultsim.Plan.Drop | Faultsim.Plan.Delay _) ->
      (* The copy faults device-side: a sticky illegal-address error,
         deferred to the next sync point like real async failures.
         Drop/delay have no copy meaning and degrade to this. *)
      Device.post_async_error dev Error.Illegal_address api
  | None -> ());
  Device.fire dev Device.Pre info;
  let op =
    Device.enqueue dev
      ~cost:(Costmodel.memcpy ~src:sspace ~dst:dspace ~bytes)
      stream api
      (fun () -> Access.raw_blit ~src ~dst ~bytes)
  in
  (* A blocking copy is a sync point: waiting on a wedged stream
     surfaces the sticky launch-timeout instead of hanging forever. *)
  if blocking then Device.surface_wedge dev api (fun () -> Device.force op);
  Device.fire dev Device.Post info;
  if blocking then Device.surface dev api

let memset dev ~dst ~bytes ~value ?(async = false) ?stream () =
  let stream =
    match stream with Some s -> s | None -> Device.default_stream dev
  in
  let dspace = Ptr.space dst in
  let blocking = Semantics.actual_memset_blocks ~dst:dspace ~async in
  let modeled_sync = Semantics.modeled_memset_syncs ~dst:dspace ~async in
  let info =
    Device.Memset { dst; bytes; value; async; stream; blocking; modeled_sync }
  in
  let api = Fmt.str "memset%s" (if async then "Async" else "") in
  (match Faultsim.Injector.probe ~site:Faultsim.Site.Memset () with
  | Some Faultsim.Plan.Hang -> Faultsim.Injector.hang ~site:Faultsim.Site.Memset ()
  | Some Faultsim.Plan.Abort ->
      Error.fail Error.Illegal_address
        (Printf.sprintf "injected abort in %s" api)
  | Some Faultsim.Plan.Crash ->
      Faultsim.Injector.crash ~site:Faultsim.Site.Memset ()
  | Some Faultsim.Plan.Wedge -> Device.wedge_stream stream ~origin:api
  | Some (Faultsim.Plan.Fail | Faultsim.Plan.Drop | Faultsim.Plan.Delay _) ->
      Device.post_async_error dev Error.Illegal_address api
  | None -> ());
  Device.fire dev Device.Pre info;
  let op =
    Device.enqueue dev ~cost:(Costmodel.memset ~bytes) stream api
      (fun () -> Access.raw_fill dst ~bytes ~byte:value)
  in
  if blocking then Device.surface_wedge dev api (fun () -> Device.force op);
  Device.fire dev Device.Post info;
  if blocking then Device.surface dev api

(* cudaFree synchronizes the whole device before releasing (paper,
   Section III-B2); cudaFreeAsync releases as a stream operation. *)
let free dev p =
  Device.fire dev Device.Pre (Device.Free { ptr = p; async = false; stream = None });
  Device.force_all_of dev;
  Typeart.Pass.free p;
  Device.fire dev Device.Post (Device.Free { ptr = p; async = false; stream = None })

let free_async dev stream p =
  Device.fire dev Device.Pre
    (Device.Free { ptr = p; async = true; stream = Some stream });
  ignore
    (Device.enqueue dev stream "freeAsync" (fun () -> Typeart.Pass.free p));
  Device.fire dev Device.Post
    (Device.Free { ptr = p; async = true; stream = Some stream })
