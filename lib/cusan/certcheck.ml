(* Independent DRF-certificate checker.

   Deliberately shares no reasoning code with Race_analysis or
   Certificate: it consumes the *serialized JSON* (never the analysis's
   data structures), re-parses every coefficient into plain integers,
   and re-derives each disjointness fact with its own extended-integer
   arithmetic (min_int/max_int are the -∞/+∞ sentinels). The trusted
   base is therefore this small module plus the JSON printer — a bug in
   the Linform algebra or the pair logic of the analysis cannot
   silently certify a racy kernel, because the checker would fail to
   re-derive the corresponding fact.

   Checked, in order:
   1. shape — the document parses into accesses + facts with sane
      indices, and every access names a pointer parameter of the entry;
   2. completeness — a clean-room syntactic walk of the kernel body
      finds no load/store site missing from the access set (loops with
      provably-empty literal bounds are skipped, matching the
      analysis), and *every* same-parameter same-phase access pair is
      covered by a fact;
   3. soundness — each fact's rule is re-verified from the serialized
      numbers: guard equality structurally, stride/width divisibility
      and gap emptiness by integer reasoning re-derived from first
      principles below. *)

module J = Reporting.Mjson

(* --- extended integers --------------------------------------------------- *)

let neg_inf = min_int
let pos_inf = max_int
let is_fin x = x <> neg_inf && x <> pos_inf

let eneg x = if x = neg_inf then pos_inf else if x = pos_inf then neg_inf else -x

let eadd a b =
  if a = neg_inf || b = neg_inf then neg_inf
  else if a = pos_inf || b = pos_inf then pos_inf
  else a + b

let esub a b = eadd a (eneg b)

(* Floor/ceiling division by a positive divisor, infinities preserved. *)
let efdiv x y =
  if not (is_fin x) then x
  else if x >= 0 then x / y
  else -(((-x) + y - 1) / y)

let ecdiv x y =
  if not (is_fin x) then x
  else if x >= 0 then (x + y - 1) / y
  else -((-x) / y)

(* --- certificate document ------------------------------------------------ *)

type acc = {
  param : int;
  phase : int;
  kind : string; (* "R" | "W" *)
  elt : int;
  site : string;
  top : bool;
  a_lo : int;
  a_hi : int;
  ps : (int * int) list;
  nt : int;
  c_lo : int;
  c_hi : int;
  w : int;
  guard : ((int * int) list * int * int) option; (* gps, gnt, gk *)
}

type fact = { i : int; j : int; rule : string; k : int; k1 : int; k2 : int }

exception Bad of string

let bad fmt = Fmt.kstr (fun s -> raise (Bad s)) fmt

let field o k =
  match o with
  | J.Obj kvs -> List.assoc_opt k kvs
  | _ -> bad "expected an object"

let get o k = match field o k with Some v -> v | None -> bad "missing field %S" k
let int_ k = function J.Int i -> i | _ -> bad "field %S: expected int" k
let str_ k = function J.Str s -> s | _ -> bad "field %S: expected string" k
let bool_ k = function J.Bool b -> b | _ -> bad "field %S: expected bool" k

let pairs_ k = function
  | J.List l ->
      List.map
        (function
          | J.List [ J.Int a; J.Int b ] -> (a, b)
          | _ -> bad "field %S: expected [int, int] pairs" k)
        l
  | _ -> bad "field %S: expected a list" k

let parse_acc (o : J.t) : acc =
  let form = get o "form" in
  let top = bool_ "top" (get form "top") in
  let num f = if top then 0 else int_ f (get form f) in
  {
    param = int_ "param" (get o "param");
    phase = int_ "phase" (get o "phase");
    kind = str_ "kind" (get o "kind");
    elt = int_ "elt" (get o "elt");
    site = str_ "site" (get o "site");
    top;
    a_lo = num "a_lo";
    a_hi = num "a_hi";
    ps = (if top then [] else pairs_ "ps" (get form "ps"));
    nt = num "nt";
    c_lo = num "c_lo";
    c_hi = num "c_hi";
    w = num "w";
    guard =
      (match get o "guard" with
      | J.Null -> None
      | g ->
          Some
            (pairs_ "gps" (get g "gps"), int_ "gnt" (get g "gnt"),
             int_ "gk" (get g "gk")));
  }

let parse_fact (o : J.t) : fact =
  let opt_int k d = match field o k with Some v -> int_ k v | None -> d in
  {
    i = int_ "i" (get o "i");
    j = int_ "j" (get o "j");
    rule = str_ "rule" (get o "rule");
    k = opt_int "k" 0;
    k1 = opt_int "k1" 0;
    k2 = opt_int "k2" 0;
  }

(* --- completeness: syntactic site walk ----------------------------------- *)

(* Same 72-column label contract as the analysis's reports; re-stated
   here rather than imported — the label format is part of the
   certificate surface, not of the analysis internals. *)
let label pp x =
  let s = Fmt.str "%a" pp x in
  if String.length s > 72 then String.sub s 0 69 ^ "..." else s

let sites_of_module (m : Kir.Ir.modul) ~entry : (string * bool) list =
  let out = ref [] in
  let rec expr (e : Kir.Ir.expr) =
    match e with
    | Kir.Ir.Load (p, i) | Kir.Ir.Loadi (p, i) ->
        out := (label Kir.Ir.pp_expr e, false) :: !out;
        expr p;
        expr i
    | Kir.Ir.Binop (_, a, b) | Kir.Ir.Ptradd (a, b) ->
        expr a;
        expr b
    | Kir.Ir.Neg a | Kir.Ir.I2f a | Kir.Ir.F2i a -> expr a
    | Kir.Ir.Int _ | Kir.Ir.Flt _ | Kir.Ir.Param _ | Kir.Ir.Local _
    | Kir.Ir.Tid | Kir.Ir.Ntid ->
        ()
  in
  let rec stmt depth (s : Kir.Ir.stmt) =
    match s with
    | Kir.Ir.Store (p, i, v) | Kir.Ir.Storei (p, i, v) ->
        out := (label Kir.Ir.pp_stmt s, true) :: !out;
        expr p;
        expr i;
        expr v
    | Kir.Ir.Let (_, e) -> expr e
    | Kir.Ir.If (c, t, f) ->
        expr c;
        List.iter (stmt depth) t;
        List.iter (stmt depth) f
    | Kir.Ir.For (_, lo, hi, body) ->
        expr lo;
        expr hi;
        (* literally-empty loop bodies never execute; the analysis
           skips them too *)
        (match (lo, hi) with
        | Kir.Ir.Int l, Kir.Ir.Int h when h <= l -> ()
        | _ -> List.iter (stmt depth) body)
    | Kir.Ir.Call (name, args) ->
        List.iter expr args;
        if depth <= 8 then
          Option.iter
            (fun (f : Kir.Ir.func) -> List.iter (stmt (depth + 1)) f.Kir.Ir.body)
            (Kir.Ir.find_func m name)
    | Kir.Ir.Barrier -> ()
  in
  (match Kir.Ir.find_func m entry with
  | Some f -> List.iter (stmt 0) f.Kir.Ir.body
  | None -> bad "entry kernel %s not found in module" entry);
  List.rev !out

(* --- fact verification --------------------------------------------------- *)

let pure_const = function Some ([], 0, gk) -> Some gk | _ -> None

(* No integer d <> 0 with alpha*d in [glo, ghi]. *)
let no_nonzero_d alpha ~glo ~ghi =
  if alpha = 0 then not (glo <= 0 && 0 <= ghi)
  else if glo = neg_inf || ghi = pos_inf then false
  else
    let aa = abs alpha in
    let lo, hi = if alpha > 0 then (glo, ghi) else (eneg ghi, eneg glo) in
    let dmin = ecdiv lo aa and dmax = efdiv hi aa in
    dmin > dmax || (dmin = 0 && dmax = 0)

(* No thread t >= 0, t <> excl with alpha*t in [glo, ghi]. *)
let no_thread alpha ~excl ~glo ~ghi =
  if alpha = 0 then not (glo <= 0 && 0 <= ghi)
  else
    let aa = abs alpha in
    let lo, hi = if alpha > 0 then (glo, ghi) else (eneg ghi, eneg glo) in
    let tmin = if lo = neg_inf then 0 else max 0 (ecdiv lo aa) in
    let tmax = if hi = pos_inf then pos_inf else efdiv hi aa in
    tmin > tmax || (tmin = excl && tmax = excl)

(* Two byte ranges of widths ea/eb starting at s_a/s_b intersect iff
   s_a - s_b lands in [-(ea - 1), eb - 1]; over the residual intervals
   the most permissive difference range is
   [c_lo_a - c_hi_b, c_hi_a - c_lo_b]. *)
let verify_fact (accs : acc array) (f : fact) : (unit, string) result =
  let n = Array.length accs in
  if f.i < 0 || f.j < 0 || f.i >= n || f.j >= n || f.i > f.j then
    Error (Fmt.str "fact (%d,%d): index out of range" f.i f.j)
  else
    let a = accs.(f.i) and b = accs.(f.j) in
    if a.param <> b.param || a.phase <> b.phase then
      Error (Fmt.str "fact (%d,%d): pairs different param/phase" f.i f.j)
    else
      let linear_compatible () =
        (not a.top) && (not b.top) && a.ps = b.ps && a.nt = b.nt
        && a.a_lo = a.a_hi && b.a_lo = b.a_hi && a.a_lo = b.a_lo
      in
      let ok =
        match f.rule with
        | "both-reads" -> a.kind = "R" && b.kind = "R"
        | "same-guard" -> (
            match (a.guard, b.guard) with
            | Some g1, Some g2 -> g1 = g2
            | _ -> false)
        | "single-thread-site" -> f.i = f.j && a.guard <> None
        | "self-stride" ->
            f.i = f.j && (not a.top) && a.a_lo = a.a_hi && a.a_lo <> 0
            && a.w < pos_inf
            && abs a.a_lo >= a.elt + a.w
        | "uniform-gap" ->
            linear_compatible ()
            &&
            let alpha = a.a_lo in
            let glo = esub (-(a.elt - 1)) (esub a.c_hi b.c_lo)
            and ghi = esub (b.elt - 1) (esub a.c_lo b.c_hi) in
            no_nonzero_d alpha ~glo ~ghi
        | "pinned-gap" ->
            linear_compatible ()
            &&
            let alpha = a.a_lo in
            (* orient so p is the pinned side with guard value k and o
               is the free side quantified over threads t <> k *)
            let oriented =
              if pure_const a.guard = Some f.k then Some (a, b)
              else if pure_const b.guard = Some f.k then Some (b, a)
              else None
            in
            (match oriented with
            | None -> false
            | Some (p, o) ->
                let base = alpha * f.k in
                let glo =
                  eadd (esub (-(o.elt - 1)) (esub o.c_hi p.c_lo)) base
                and ghi = eadd (esub (p.elt - 1) (esub o.c_lo p.c_hi)) base in
                no_thread alpha ~excl:f.k ~glo ~ghi)
        | "pinned-pair" ->
            linear_compatible ()
            && pure_const a.guard = Some f.k1
            && pure_const b.guard = Some f.k2
            &&
            let alpha = a.a_lo in
            f.k1 = f.k2
            ||
            (* concrete byte spans of the two pinned threads *)
            let lo_a = eadd (alpha * f.k1) a.c_lo
            and hi_a = eadd (eadd (alpha * f.k1) a.c_hi) (a.elt - 1)
            and lo_b = eadd (alpha * f.k2) b.c_lo
            and hi_b = eadd (eadd (alpha * f.k2) b.c_hi) (b.elt - 1) in
            is_fin lo_a && is_fin hi_a && is_fin lo_b && is_fin hi_b
            && (hi_a < lo_b || hi_b < lo_a)
        | r -> bad "fact (%d,%d): unknown rule %S" f.i f.j r
      in
      if ok then Ok ()
      else Error (Fmt.str "fact (%d,%d) rule %s does not re-derive" f.i f.j f.rule)

(* --- whole-certificate check --------------------------------------------- *)

let check (m : Kir.Ir.modul) ~entry (doc : J.t) : (unit, string) result =
  try
    let centry = str_ "entry" (get doc "entry") in
    if centry <> entry then bad "certificate is for %s, not %s" centry entry;
    let accs =
      match get doc "accesses" with
      | J.List l -> Array.of_list (List.map parse_acc l)
      | _ -> bad "accesses: expected a list"
    in
    let facts =
      match get doc "facts" with
      | J.List l -> List.map parse_fact l
      | _ -> bad "facts: expected a list"
    in
    (* 1. shape: every access names a pointer parameter of the entry *)
    let params =
      match Kir.Ir.find_func m entry with
      | Some f -> Array.of_list f.Kir.Ir.params
      | None -> bad "entry kernel %s not found in module" entry
    in
    Array.iter
      (fun (a : acc) ->
        if a.param < 0 || a.param >= Array.length params then
          bad "access on out-of-range parameter %d" a.param;
        (match snd params.(a.param) with
        | Kir.Ir.Pointer -> ()
        | Kir.Ir.Scalar -> bad "access on scalar parameter %d" a.param);
        if a.kind <> "R" && a.kind <> "W" then bad "bad access kind %S" a.kind;
        if a.elt <> 4 && a.elt <> 8 then bad "bad access width %d" a.elt)
      accs;
    (* 2a. completeness: no load/store site of the kernel body is
       missing from the access set *)
    List.iter
      (fun (site, is_write) ->
        let kind = if is_write then "W" else "R" in
        if
          not
            (Array.exists
               (fun (a : acc) -> a.site = site && a.kind = kind)
               accs)
        then bad "site not covered by the certificate: %s" site)
      (sites_of_module m ~entry);
    (* 2b. completeness: every same-param same-phase pair has a fact *)
    let n = Array.length accs in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        if accs.(i).param = accs.(j).param && accs.(i).phase = accs.(j).phase
        then
          if not (List.exists (fun f -> f.i = i && f.j = j) facts) then
            bad "pair (%d,%d) on parameter %d has no disjointness fact" i j
              accs.(i).param
      done
    done;
    (* 3. soundness: re-derive every fact *)
    List.fold_left
      (fun r f ->
        match r with Error _ -> r | Ok () -> verify_fact accs f)
      (Ok ()) facts
  with Bad msg -> Error msg
