(** Independent DRF-certificate checker: consumes the serialized JSON
    produced from {!Certificate.to_json} — never the analysis's data
    structures — and re-derives every disjointness fact from the plain
    serialized integers with its own arithmetic, plus a clean-room
    syntactic completeness walk of the kernel body. A bug in the
    analysis's algebra cannot silently certify a racy kernel: the
    checker would fail to re-derive the corresponding fact. *)

val check :
  Kir.Ir.modul -> entry:string -> Reporting.Mjson.t -> (unit, string) result
(** [check m ~entry doc] re-validates one kernel certificate document:
    shape (indices, parameter kinds), completeness (every syntactic
    load/store site appears in the access set; every same-parameter
    same-phase access pair is covered by a fact) and soundness (every
    fact re-derives from the serialized coefficients). Returns the
    first failure. *)
