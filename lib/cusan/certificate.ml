(* DRF-certificate emission: for a kernel the race analysis found
   race-free, serialize the evidence — the full access set with its
   symbolic coefficients, and one disjointness fact per same-parameter
   same-phase access pair naming the argument ({!Race_analysis.safe_reason})
   that proved the pair safe.

   The certificate is designed to be *re-checkable without trusting the
   analysis*: every coefficient is serialized as plain integers
   (min_int/max_int act as -∞/+∞ sentinels), and {!Certcheck} re-derives
   each fact from those numbers with its own arithmetic plus a
   syntactic completeness walk of the kernel body. This module only
   builds and prints; it performs no verification. *)

module RA = Race_analysis
module I = Interval
module L = Linform
module J = Reporting.Mjson

type fact = { fi : int; fj : int; freason : RA.safe_reason }

type t = {
  centry : string;
  caccs : RA.access array; (* in program order, indexed by the facts *)
  cfacts : fact list;
}

let build (m : Kir.Ir.modul) ~entry : (t, string) result =
  match Kir.Ir.find_func m entry with
  | None -> Error "entry kernel not found"
  | Some _ ->
      let accs = RA.collect m ~entry in
      let n = Array.length accs in
      let facts = ref [] and racy = ref None in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          let a = accs.(i) and b = accs.(j) in
          if
            !racy = None && a.RA.aparam = b.RA.aparam
            && a.RA.aphase = b.RA.aphase
          then
            match RA.explain_pair a b ~same_site:(i = j) with
            | Either.Left reason ->
                facts := { fi = i; fj = j; freason = reason } :: !facts
            | Either.Right _ -> racy := Some (i, j)
        done
      done;
      (match !racy with
      | Some (i, j) ->
          Error
            (Fmt.str "kernel has a race candidate (%s vs %s); not certifiable"
               accs.(i).RA.site accs.(j).RA.site)
      | None -> Ok { centry = entry; caccs = accs; cfacts = List.rev !facts })

(* --- JSON ---------------------------------------------------------------- *)

let json_of_guard (g : RA.guard) : J.t =
  J.Obj
    [
      ("gps", J.List (List.map (fun (i, c) -> J.List [ J.Int i; J.Int c ]) g.RA.gps));
      ("gnt", J.Int g.RA.gnt);
      ("gk", J.Int g.RA.gk);
    ]

let json_of_form : L.t -> J.t = function
  | L.Top -> J.Obj [ ("top", J.Bool true) ]
  | L.Lin l ->
      J.Obj
        [
          ("top", J.Bool false);
          ("a_lo", J.Int l.L.a.I.lo);
          ("a_hi", J.Int l.L.a.I.hi);
          ("ps", J.List (List.map (fun (i, c) -> J.List [ J.Int i; J.Int c ]) l.L.ps));
          ("nt", J.Int l.L.nt);
          ("c_lo", J.Int l.L.c.I.lo);
          ("c_hi", J.Int l.L.c.I.hi);
          ("w", J.Int l.L.w);
        ]

let json_of_access (a : RA.access) : J.t =
  J.Obj
    [
      ("param", J.Int a.RA.aparam);
      ("phase", J.Int a.RA.aphase);
      ("kind", J.Str (match a.RA.akind with RA.Read -> "R" | RA.Write -> "W"));
      ("elt", J.Int a.RA.elt);
      ("definite", J.Bool a.RA.definite);
      ("site", J.Str a.RA.site);
      ("form", json_of_form a.RA.form);
      ("guard", match a.RA.unique with None -> J.Null | Some g -> json_of_guard g);
    ]

let json_of_fact (f : fact) : J.t =
  J.Obj
    ([ ("i", J.Int f.fi); ("j", J.Int f.fj);
       ("rule", J.Str (RA.reason_str f.freason)) ]
    @
    match f.freason with
    | RA.Pinned_gap k -> [ ("k", J.Int k) ]
    | RA.Pinned_pair (k1, k2) -> [ ("k1", J.Int k1); ("k2", J.Int k2) ]
    | RA.Both_reads | RA.Same_guard | RA.Single_thread_site | RA.Self_stride
    | RA.Uniform_gap ->
        [])

let to_json (c : t) : J.t =
  J.Obj
    [
      ("entry", J.Str c.centry);
      ("accesses", J.List (Array.to_list (Array.map json_of_access c.caccs)));
      ("facts", J.List (List.map json_of_fact c.cfacts));
    ]
