(** DRF-certificate emission for race-free kernels: the access set with
    its serialized symbolic coefficients plus one disjointness fact per
    same-parameter same-phase access pair. Certificates are re-checked
    from the serialized numbers alone by the independent {!Certcheck}
    module; this module only builds and prints. *)

type fact = {
  fi : int;  (** index into the access array *)
  fj : int;  (** [fi <= fj]; [fi = fj] is a site against itself *)
  freason : Race_analysis.safe_reason;
}

type t = {
  centry : string;
  caccs : Race_analysis.access array;  (** program order, fact-indexed *)
  cfacts : fact list;
}

val build : Kir.Ir.modul -> entry:string -> (t, string) result
(** Certify one kernel: [Error] when the entry is missing or the
    analysis still reports a race candidate (racy kernels have no DRF
    certificate). Callers should validate the module first. *)

val to_json : t -> Reporting.Mjson.t
(** Serialize; interval bounds use [min_int]/[max_int] as the infinity
    sentinels the checker understands. *)
