(* Integer interval arithmetic for the launch-time kernel access-range
   analysis (see Range_analysis). Bounds saturate at [min_int]/[max_int],
   which act as -oo/+oo. *)

type t = { lo : int; hi : int }

let top = { lo = min_int; hi = max_int }
let is_top t = t.lo = min_int && t.hi = max_int
let const c = { lo = c; hi = c }
let of_bounds lo hi = if lo > hi then invalid_arg "Interval.of_bounds" else { lo; hi }

let is_const t = t.lo = t.hi && t.lo <> min_int

(* Saturating scalar ops: anything touching an infinity stays infinite. *)
let sat_add a b =
  if a = min_int || b = min_int then min_int
  else if a = max_int || b = max_int then max_int
  else
    let s = a + b in
    (* detect overflow *)
    if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s > 0) then
      if a > 0 then max_int else min_int
    else s

let sat_neg a = if a = min_int then max_int else if a = max_int then min_int else -a

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a = min_int || a = max_int || b = min_int || b = max_int then
    if (a > 0) = (b > 0) then max_int else min_int
  else
    let p = a * b in
    if p / b <> a then if (a > 0) = (b > 0) then max_int else min_int else p

let add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
let neg a = { lo = sat_neg a.hi; hi = sat_neg a.lo }
let sub a b = add a (neg b)

let mul a b =
  let products =
    [ sat_mul a.lo b.lo; sat_mul a.lo b.hi; sat_mul a.hi b.lo; sat_mul a.hi b.hi ]
  in
  {
    lo = List.fold_left min max_int products;
    hi = List.fold_left max min_int products;
  }

(* Integer division: only by a non-zero constant interval (what index
   expressions like [tid / nx] use); anything else is top. OCaml's [/]
   truncates toward zero, which is monotone non-decreasing in the
   dividend for a positive divisor and non-increasing for a negative
   one — so the result bounds come from the endpoint quotients, swapped
   when the divisor is negative. Infinities flip sign with the divisor. *)
let div a b =
  if is_const b && b.lo <> 0 then
    let q = b.lo in
    let d x =
      if x = min_int || x = max_int then if q < 0 then sat_neg x else x
      else x / q
    in
    if q > 0 then { lo = d a.lo; hi = d a.hi }
    else { lo = d a.hi; hi = d a.lo }
  else top

(* Modulo by a positive constant: the result stays within [0, m-1] for
   non-negative operands; keep the operand's range when it is already
   inside. OCaml's mod is negative for negative operands, hence the
   conservative [-(m-1), m-1] otherwise. *)
let rem a b =
  if is_const b && b.lo > 0 then
    let m = b.lo in
    if a.lo >= 0 && a.hi < m then a
    else if a.lo >= 0 then { lo = 0; hi = m - 1 }
    else { lo = -(m - 1); hi = m - 1 }
  else top

let min_ a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
let max_ a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }

(* Booleans from comparisons. *)
let bool_ = { lo = 0; hi = 1 }

let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let equal a b = a.lo = b.lo && a.hi = b.hi

(* Widen [prev] towards [cur]: any bound that moved goes to infinity.
   Used by the loop fixpoint so accumulating locals converge soundly. *)
let widen prev cur =
  {
    lo = (if cur.lo < prev.lo then min_int else prev.lo);
    hi = (if cur.hi > prev.hi then max_int else prev.hi);
  }

let pp ppf t =
  let b ppf x =
    if x = min_int then Fmt.string ppf "-oo"
    else if x = max_int then Fmt.string ppf "+oo"
    else Fmt.int ppf x
  in
  Fmt.pf ppf "[%a,%a]" b t.lo b t.hi
