(** Integer interval arithmetic for the launch-time access-range
    analysis ({!Range_analysis}). Bounds saturate at
    [min_int]/[max_int], which act as -oo/+oo. *)

type t = { lo : int; hi : int }

val top : t
val is_top : t -> bool
val const : int -> t

val of_bounds : int -> int -> t
(** @raise Invalid_argument when [lo > hi]. *)

val is_const : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Precise for division by any non-zero constant interval (what index
    expressions like [tid / nx] use), including strictly negative
    divisors; {!top} otherwise. *)

val rem : t -> t -> t
(** Modulo by a positive constant; conservative for possibly-negative
    operands (OCaml's [mod] is sign-preserving). *)

val min_ : t -> t -> t
val max_ : t -> t -> t

val bool_ : t
(** [0, 1] — the result range of comparisons. *)

val join : t -> t -> t
val equal : t -> t -> bool

val widen : t -> t -> t
(** [widen prev cur]: any bound that moved goes to infinity; guarantees
    the loop fixpoint terminates soundly. *)

val pp : Format.formatter -> t -> unit
