(* The device-code part of the CuSan compiler pass (paper, Section
   IV-B1): a conservative interprocedural forward-dataflow analysis that
   classifies every pointer argument of a kernel as read, write,
   read/write — or untouched.

   Pointer values flow from parameters through [Let] bindings, pointer
   arithmetic and calls into nested device functions (Fig. 8 of the
   paper): the analysis follows each argument's data flow and joins the
   access modes found at loads and stores. Both branches of an [If] and
   the body of every [For] are taken (may-analysis), so the result
   over-approximates any concrete execution's footprint — a property the
   test suite checks against the IR interpreter.

   Call-graph cycles are handled by a Kleene fixpoint over function
   summaries: every function starts from the bottom summary (nothing
   read, nothing written) and all summaries are recomputed against the
   current table until nothing changes. Access bits only ever turn on,
   so the iteration is monotone and terminates after at most
   2 * #params * #funcs rounds; the result is the least (most precise)
   sound solution. This subsumes the earlier cycle bail-out that forced
   every parameter of a recursive function to read+write: mutually
   recursive functions now get exactly the accesses their bodies
   perform. *)

module IntSet = Set.Make (Int)

type access = { mutable reads : bool; mutable writes : bool }

(* Per pointer parameter (by position); scalar params map to [None]. *)
type summary = access option array

let as_kernel_access (a : access) : Cudasim.Kernel.access option =
  match (a.reads, a.writes) with
  | true, true -> Some Cudasim.Kernel.RW
  | true, false -> Some Cudasim.Kernel.R
  | false, true -> Some Cudasim.Kernel.W
  | false, false -> None (* pointer never dereferenced *)

let fresh_summary (f : Kir.Ir.func) : summary =
  Array.of_list
    (List.map
       (function
         | _, Kir.Ir.Pointer -> Some { reads = false; writes = false }
         | _, Kir.Ir.Scalar -> None)
       f.Kir.Ir.params)

let summary_equal (a : summary) (b : summary) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         match (x, y) with
         | None, None -> true
         | Some x, Some y -> x.reads = y.reads && x.writes = y.writes
         | _ -> false)
       a b

(* Which parameters of the current function can expression [e] point to? *)
let rec origins env (e : Kir.Ir.expr) : IntSet.t =
  match e with
  | Param i -> IntSet.singleton i
  | Local n -> (
      match Hashtbl.find_opt env n with Some s -> s | None -> IntSet.empty)
  | Ptradd (p, _) -> origins env p
  | Int _ | Flt _ | Tid | Ntid | Load _ | Loadi _ | Binop _ | Neg _ | I2f _
  | F2i _ ->
      IntSet.empty

(* One transfer-function application: recompute [f]'s summary assuming
   the callee summaries currently in [memo]. *)
let compute (memo : (string, summary) Hashtbl.t) (f : Kir.Ir.func) : summary =
  let summary = fresh_summary f in
  let env : (string, IntSet.t) Hashtbl.t = Hashtbl.create 8 in
  let mark_read i =
    match summary.(i) with Some a -> a.reads <- true | None -> ()
  in
  let mark_write i =
    match summary.(i) with Some a -> a.writes <- true | None -> ()
  in
  (* walk expressions for loads *)
  let rec walk_expr (e : Kir.Ir.expr) =
    match e with
    | Load (p, i) | Loadi (p, i) ->
        IntSet.iter mark_read (origins env p);
        walk_expr p;
        walk_expr i
    | Binop (_, a, b) | Ptradd (a, b) ->
        walk_expr a;
        walk_expr b
    | Neg a | I2f a | F2i a -> walk_expr a
    | Int _ | Flt _ | Param _ | Local _ | Tid | Ntid -> ()
  in
  let rec walk_stmt (s : Kir.Ir.stmt) =
    match s with
    | Store (p, i, v) | Storei (p, i, v) ->
        IntSet.iter mark_write (origins env p);
        walk_expr p;
        walk_expr i;
        walk_expr v
    | Let (n, e) ->
        walk_expr e;
        let prev =
          match Hashtbl.find_opt env n with
          | Some s -> s
          | None -> IntSet.empty
        in
        (* join with previous binding (loops/branches) *)
        Hashtbl.replace env n (IntSet.union prev (origins env e))
    | If (c, t, e) ->
        walk_expr c;
        List.iter walk_stmt t;
        List.iter walk_stmt e
    | For (v, lo, hi, body) ->
        walk_expr lo;
        walk_expr hi;
        Hashtbl.replace env v IntSet.empty;
        (* Two passes so origin joins from the first iteration
           reach uses earlier in the body. *)
        List.iter walk_stmt body;
        List.iter walk_stmt body
    | Call (callee, args) ->
        List.iter walk_expr args;
        let callee_summary =
          match Hashtbl.find_opt memo callee with
          | Some s -> s
          | None -> [||] (* undefined callee: treated at the call site *)
        in
        List.iteri
          (fun j arg ->
            if j < Array.length callee_summary then
              match callee_summary.(j) with
              | Some a ->
                  let os = origins env arg in
                  if a.reads then IntSet.iter mark_read os;
                  if a.writes then IntSet.iter mark_write os
              | None -> ())
          args
    | Barrier -> () (* synchronization, not an access *)
  in
  List.iter walk_stmt f.Kir.Ir.body;
  summary

let analyze_module (m : Kir.Ir.modul) : (string, summary) Hashtbl.t =
  let memo : (string, summary) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (f : Kir.Ir.func) -> Hashtbl.replace memo f.Kir.Ir.fname (fresh_summary f))
    m.Kir.Ir.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Kir.Ir.func) ->
        let s = compute memo f in
        if not (summary_equal s (Hashtbl.find memo f.Kir.Ir.fname)) then begin
          changed := true;
          Hashtbl.replace memo f.Kir.Ir.fname s
        end)
      m.Kir.Ir.funcs
  done;
  memo

let analyze (m : Kir.Ir.modul) ~entry : summary =
  match Hashtbl.find_opt (analyze_module m) entry with
  | Some s -> s
  | None -> [||]
