(** The device-code part of the CuSan compiler pass (paper, Section
    IV-B1): a conservative interprocedural forward-dataflow analysis
    classifying every pointer argument of a kernel as read, write,
    read/write — or untouched.

    Pointer values flow from parameters through let-bindings, pointer
    arithmetic and calls into nested device functions (Fig. 8): the
    analysis follows each argument's data flow and joins the access
    modes found at loads and stores. Both branches of a conditional and
    every loop body are taken (may-analysis), so the result
    over-approximates any concrete execution's footprint — a property
    the test suite checks against the IR interpreter. *)

type access = { mutable reads : bool; mutable writes : bool }

type summary = access option array
(** Per parameter by position; scalar parameters map to [None]. *)

val as_kernel_access : access -> Cudasim.Kernel.access option
(** [None] when the pointer is never dereferenced. *)

val analyze : Kir.Ir.modul -> entry:string -> summary
(** Analyze one kernel. Call-graph cycles (including mutual recursion)
    are resolved by a summary fixpoint ascending from the bottom
    "untouched" summary, so recursive functions get exactly the
    accesses their bodies perform. *)

val analyze_module : Kir.Ir.modul -> (string, summary) Hashtbl.t
(** Run the summary fixpoint over the whole module; the table maps
    every defined function to its converged summary. *)
