(* Symbolic linear forms over the thread index, for the static
   intra-kernel race analysis (Race_analysis).

   A form describes an integer value as

       a * tid  +  Σ ps_i * param_i  +  nt * ntid  +  c

   where [a] is an interval coefficient of the thread index, [ps] maps
   scalar-parameter positions to *exact* integer coefficients, [nt] is
   an exact coefficient of the launch width, and [c] is a residual
   interval. Scalar parameters and ntid are launch-uniform unknowns:
   every thread and every dynamic instance of an access sees the same
   value, so when two forms are subtracted these symbolic parts cancel
   exactly — which is what lets [p + off][tid] stay provably race-free
   without knowing [off].

   [w] bounds how much the residual [c] can *differ between two dynamic
   instances* of the same program point (two threads, or two loop
   iterations): [w = 0] means the residual is one fixed (possibly
   unknown) value for the whole launch, while a loop variable
   contributes its full range width. [w <= width c] always holds, so
   widening [w] to the residual width is the sound fallback whenever
   uniformity is lost.

   Anything non-linear in tid (division or modulo of a tid-dependent
   value, products of two unknowns, loaded values) collapses to [Top],
   which the race analysis treats as "may touch anything". *)

module I = Interval

type lin = {
  a : I.t; (* coefficient of tid *)
  ps : (int * int) list; (* exact scalar-param coefficients, sorted, no 0s *)
  nt : int; (* exact coefficient of ntid *)
  c : I.t; (* residual *)
  w : int; (* instance variation bound of [c]; saturates at max_int *)
}

type t = Lin of lin | Top

let top = Top
let is_top = function Top -> true | Lin _ -> false

(* Saturating arithmetic on the (non-negative) variation bound. *)
let w_add a b =
  if a = max_int || b = max_int then max_int
  else
    let s = a + b in
    if s < 0 then max_int else s

let w_mul a b =
  if a = 0 || b = 0 then 0
  else if a = max_int || b = max_int then max_int
  else
    let p = a * b in
    if p / b <> a || p < 0 then max_int else p

let width (i : I.t) =
  if i.I.lo = min_int || i.I.hi = max_int then max_int
  else
    let d = i.I.hi - i.I.lo in
    if d < 0 then max_int else d

let zero_iv = I.const 0
let is_zero_iv (i : I.t) = i.I.lo = 0 && i.I.hi = 0

let const n = Lin { a = zero_iv; ps = []; nt = 0; c = I.const n; w = 0 }
let tid = Lin { a = I.const 1; ps = []; nt = 0; c = zero_iv; w = 0 }
let ntid = Lin { a = zero_iv; ps = [ ]; nt = 1; c = zero_iv; w = 0 }
let sparam i = Lin { a = zero_iv; ps = [ (i, 1) ]; nt = 0; c = zero_iv; w = 0 }

(* An opaque interval value; [variant] marks it instance-dependent
   (loop variables), uniform otherwise (a launch-constant unknown). *)
let interval ?(variant = true) iv =
  Lin { a = zero_iv; ps = []; nt = 0; c = iv; w = (if variant then width iv else 0) }

(* No tid, param or ntid component: the form is just its residual. *)
let pure (l : lin) = is_zero_iv l.a && l.ps = [] && l.nt = 0

(* A launch-wide exact integer constant. *)
let exact_const = function
  | Lin l when pure l && I.is_const l.c && l.w = 0 -> Some l.c.I.lo
  | _ -> None

let rec ps_add xs ys =
  match (xs, ys) with
  | [], l | l, [] -> l
  | (i, ci) :: xt, (j, cj) :: yt ->
      if i < j then (i, ci) :: ps_add xt ys
      else if j < i then (j, cj) :: ps_add xs yt
      else
        let s = ci + cj in
        if s = 0 then ps_add xt yt else (i, s) :: ps_add xt yt

let ps_scale k ps = if k = 0 then [] else List.map (fun (i, c) -> (i, c * k)) ps

let add x y =
  match (x, y) with
  | Top, _ | _, Top -> Top
  | Lin x, Lin y ->
      Lin
        {
          a = I.add x.a y.a;
          ps = ps_add x.ps y.ps;
          nt = x.nt + y.nt;
          c = I.add x.c y.c;
          w = w_add x.w y.w;
        }

let neg = function
  | Top -> Top
  | Lin l ->
      Lin
        {
          a = I.neg l.a;
          ps = ps_scale (-1) l.ps;
          nt = -l.nt;
          c = I.neg l.c;
          w = l.w;
        }

let sub x y = add x (neg y)

let scale k = function
  | Top -> if k = 0 then const 0 else Top
  | Lin l ->
      if k = 0 then const 0
      else
        Lin
          {
            a = I.mul l.a (I.const k);
            ps = ps_scale k l.ps;
            nt = l.nt * k;
            c = I.mul l.c (I.const k);
            w = w_mul (abs k) l.w;
          }

(* Interval combination of two residual-only forms: uniform when both
   operands are uniform, else fully variant within the result. *)
let pure2 op x y =
  match (x, y) with
  | Lin lx, Lin ly when pure lx && pure ly ->
      let c = op lx.c ly.c in
      Some (Lin { a = zero_iv; ps = []; nt = 0; c; w = (if lx.w = 0 && ly.w = 0 then 0 else width c) })
  | _ -> None

let mul x y =
  match exact_const x with
  | Some k -> scale k y
  | None -> (
      match exact_const y with
      | Some k -> scale k x
      | None -> ( match pure2 I.mul x y with Some r -> r | None -> Top))

let div x y =
  match pure2 I.div x y with Some r -> r | None -> Top

let rem_ x y =
  match pure2 I.rem x y with
  | Some r -> r
  | None -> (
      (* tid-linear, provably non-negative, modulo a positive constant:
         the value lands in [0, m-1] and is instance-variant. *)
      match (x, exact_const y) with
      | Lin l, Some m
        when m > 0 && l.ps = [] && l.nt = 0 && l.a.I.lo >= 0 && l.c.I.lo >= 0
        ->
          Lin { a = zero_iv; ps = []; nt = 0; c = I.of_bounds 0 (m - 1); w = m - 1 }
      | _ -> Top)

let min_ x y = match pure2 I.min_ x y with Some r -> r | None -> Top
let max_ x y = match pure2 I.max_ x y with Some r -> r | None -> Top

let equal (x : t) (y : t) = x = y

(* Is the value the same for every thread and instance? (The symbolic
   ps/ntid parts are launch-uniform by construction.) *)
let uniform = function
  | Top -> false
  | Lin l -> is_zero_iv l.a && l.w = 0

(* Comparison / logical results: somewhere in [0,1]; uniform only when
   both operands are. *)
let bool_of x y =
  Lin
    {
      a = zero_iv;
      ps = [];
      nt = 0;
      c = I.bool_;
      w = (if uniform x && uniform y then 0 else 1);
    }

let join x y =
  match (x, y) with
  | Top, _ | _, Top -> Top
  | Lin lx, Lin ly ->
      if lx.ps <> ly.ps || lx.nt <> ly.nt then Top
      else if lx = ly then Lin lx
      else
        let c = I.join lx.c ly.c in
        (* Instances may come from either branch, so the variation bound
           must cover the whole joined residual. *)
        Lin
          {
            a = I.join lx.a ly.a;
            ps = lx.ps;
            nt = lx.nt;
            c;
            w = max (max lx.w ly.w) (width c);
          }

let pp ppf = function
  | Top -> Fmt.string ppf "⊤"
  | Lin l ->
      let part = ref false in
      let sep () = if !part then Fmt.string ppf " + "; part := true in
      if not (is_zero_iv l.a) then (sep (); Fmt.pf ppf "%a·tid" I.pp l.a);
      List.iter (fun (i, c) -> sep (); Fmt.pf ppf "%d·arg%d" c i) l.ps;
      if l.nt <> 0 then (sep (); Fmt.pf ppf "%d·ntid" l.nt);
      if (not !part) || not (is_zero_iv l.c) then (sep (); I.pp ppf l.c);
      if l.w <> 0 then
        Fmt.pf ppf " (w=%s)" (if l.w = max_int then "oo" else string_of_int l.w)
