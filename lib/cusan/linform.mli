(** Symbolic linear forms over the thread index, the value domain of
    the static intra-kernel race analysis ({!Race_analysis}).

    A form describes an integer value as
    [a*tid + Σ ps_i*param_i + nt*ntid + c]: an interval coefficient of
    the thread index, exact integer coefficients of the (launch-uniform)
    scalar parameters and of [ntid], and a residual interval [c].

    [w] bounds how much the residual can differ between two dynamic
    instances of the same program point (two threads, or two loop
    iterations): 0 means launch-uniform; a loop variable contributes its
    range width. [w <= width c] is an invariant, so falling back to the
    residual width is always sound.

    Anything non-linear in tid collapses to {!top}, which the race
    analysis treats as "may touch anything". *)

type lin = {
  a : Interval.t;  (** coefficient of tid *)
  ps : (int * int) list;
      (** exact scalar-parameter coefficients by position, sorted, no
          zero entries *)
  nt : int;  (** exact coefficient of ntid *)
  c : Interval.t;  (** residual *)
  w : int;  (** instance-variation bound of [c]; saturates at [max_int] *)
}

type t = Lin of lin | Top

val top : t
val is_top : t -> bool
val const : int -> t
val tid : t
val ntid : t

val sparam : int -> t
(** The symbolic value of scalar parameter [i]. *)

val interval : ?variant:bool -> Interval.t -> t
(** An opaque interval value. [variant] (default true) marks it
    instance-dependent, e.g. a loop variable; pass [false] for a
    launch-constant unknown. *)

val exact_const : t -> int option
(** [Some k] when the form is the launch-wide integer constant [k]. *)

val uniform : t -> bool
(** The value is identical for every thread and dynamic instance (its
    tid coefficient is zero and its residual does not vary). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val mul : t -> t -> t
(** Exact when either factor is a launch-wide constant; interval
    arithmetic when both are residual-only; {!top} otherwise. *)

val div : t -> t -> t
val rem_ : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

val bool_of : t -> t -> t
(** Result form of a comparison or logical op on the two operands:
    [0..1], uniform only when both operands are. *)

val join : t -> t -> t
val equal : t -> t -> bool
val width : Interval.t -> int
val pp : Format.formatter -> t -> unit
