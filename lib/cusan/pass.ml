(* The host-code part of the CuSan compiler pass (paper, Section IV-B2
   and Fig. 9): after the device pass has produced per-argument access
   attributes, instrument every kernel launch site with them.

   In the simulator, "instrumenting" a kernel means attaching the
   analysis result to the kernel object; the launch interception in
   [Runtime] then receives it like the cusan_kernel_register callback
   would. Kernels without device IR (pure fat-binary) stay unanalyzed
   and are handled conservatively at launch time. *)

let instrument_kernel (k : Cudasim.Kernel.t) =
  match k.Cudasim.Kernel.kir with
  | None -> ()
  | Some (m, entry) ->
      Kir.Validate.check_module m;
      let summary = Kernel_analysis.analyze m ~entry in
      k.Cudasim.Kernel.access <-
        Some (Array.map (fun a -> Option.bind a Kernel_analysis.as_kernel_access) summary);
      let races = Race_analysis.analyze m ~entry in
      k.Cudasim.Kernel.static_races <-
        Some
          (List.map
             (fun r ->
               ( (match r.Race_analysis.verdict with
                 | Race_analysis.Must -> Cudasim.Kernel.Must_race
                 | Race_analysis.May -> Cudasim.Kernel.May_race),
                 Race_analysis.describe r ))
             races)

let instrument_kernels ks = List.iter instrument_kernel ks
