(* The host-code part of the CuSan compiler pass (paper, Section IV-B2
   and Fig. 9): after the device pass has produced per-argument access
   attributes, instrument every kernel launch site with them.

   In the simulator, "instrumenting" a kernel means attaching the
   analysis result to the kernel object; the launch interception in
   [Runtime] then receives it like the cusan_kernel_register callback
   would. Kernels without device IR (pure fat-binary) stay unanalyzed
   and are handled conservatively at launch time. *)

let instrument_kernel ?(prove = false) (k : Cudasim.Kernel.t) =
  match k.Cudasim.Kernel.kir with
  | None -> ()
  | Some (m, entry) ->
      Kir.Validate.check_module m;
      let summary = Kernel_analysis.analyze m ~entry in
      k.Cudasim.Kernel.access <-
        Some (Array.map (fun a -> Option.bind a Kernel_analysis.as_kernel_access) summary);
      let races = Race_analysis.analyze m ~entry in
      k.Cudasim.Kernel.static_races <-
        Some
          (List.map
             (fun r ->
               if not prove then
                 ( (match r.Race_analysis.verdict with
                   | Race_analysis.Must -> Cudasim.Kernel.Must_race
                   | Race_analysis.May -> Cudasim.Kernel.May_race),
                   Race_analysis.describe r )
               else
                 (* witness mode: any candidate the replay validates is
                    Proved; a Must that fails to validate is downgraded
                    to May with the solver's diagnostic — the
                    zero-false-positive direction. *)
                 match Witness.prove m ~entry r with
                 | Witness.Proved w ->
                     ( Cudasim.Kernel.Proved_race,
                       Fmt.str "%s; witness: %s" (Race_analysis.describe r)
                         (Witness.describe w) )
                 | Witness.Unproved why -> (
                     match r.Race_analysis.verdict with
                     | Race_analysis.Must ->
                         ( Cudasim.Kernel.May_race,
                           Fmt.str "%s; downgraded from must: %s"
                             (Race_analysis.describe r) why )
                     | Race_analysis.May ->
                         ( Cudasim.Kernel.May_race,
                           Race_analysis.describe r )))
             races)

let instrument_kernels ks = List.iter instrument_kernel ks
