(** The host-code part of the CuSan compiler pass (paper, Section IV-B2
    and Fig. 9): after the device pass produced per-argument access
    attributes, instrument every kernel launch site with them.

    In the simulator, "instrumenting" a kernel attaches the analysis
    result to the kernel object; launch interception then receives it
    like the [cusan_kernel_register] callback would. *)

val instrument_kernel : ?prove:bool -> Cudasim.Kernel.t -> unit
(** Validate the kernel's device IR, run {!Kernel_analysis} and attach
    the access attributes, then run {!Race_analysis} and attach the
    static intra-kernel race summary. A no-op for kernels without IR
    (pure fat-binary), which stay unanalyzed and are handled
    conservatively at launch.

    With [~prove:true] (default [false], which leaves the attached
    verdicts exactly as before), every race candidate is handed to the
    {!Witness} solver: validated candidates are attached as
    [Proved_race] with the witness description appended, and a Must
    the replay cannot validate is downgraded to [May_race] with the
    solver's diagnostic.
    @raise Kir.Validate.Invalid on ill-formed IR. *)

val instrument_kernels : Cudasim.Kernel.t list -> unit
