(* Static intra-kernel race detection over KIR.

   CuSan's dynamic stack deliberately scopes races *between* kernels
   and MPI (the paper's model); two threads of one launch stepping on
   the same element is invisible to it. This analysis closes that gap
   statically, in the spirit of Liew/Cogumbreiro/Lange's "Provable GPU
   Data-Races in Static Race Detection":

   - The kernel body is split into *phases* at top-level [Barrier]
     statements (__syncthreads): accesses in different phases are
     ordered and cannot race. Barriers nested in conditionals, loops or
     callees conservatively do not split (merging phases only adds
     candidate pairs — sound).
   - Every load/store is summarized as a symbolic byte-offset
     {!Linform} over the thread index: [a*tid + Σ ps·param + nt·ntid + c].
     Two accesses to the same pointer argument in the same phase race
     when two *distinct* symbolic threads [tid ≠ tid'] can make the
     byte ranges overlap and at least one access writes. Launch-uniform
     symbolic parts (scalar params, ntid) cancel under subtraction, so
     [p[off + tid]] stays provably race-free without knowing [off].
   - Non-linear indices (division/modulo of tid, loaded values) fall
     back to Top — "may touch anything" — and can only produce May
     verdicts, never hide a race.

   Verdicts: [Must] requires exact data (constant coefficients and
   residuals), both accesses definite (executed unconditionally by
   every thread), and a concrete witness on threads {0,1} — i.e. the
   race fires on every launch with grid >= 2, which the linter assumes
   and documents. Everything else that can overlap is [May].

   Thread-uniqueness guards [if (tid == e)] with a launch-uniform [e]
   are tracked: two accesses under provably-equal guards are the same
   thread and never paired, and a pure-constant guard pins one side of
   the pair to that thread id. This is what keeps single-thread
   reduction idioms ([if (tid == 0) out[0] += ...]) race-free. *)

module I = Interval
module L = Linform

type kind = Read | Write
type verdict = May | Must

(* The executing thread satisfies tid = Σ gps·param + gnt·ntid + gk. *)
type guard = { gps : (int * int) list; gnt : int; gk : int }

type access = {
  aparam : int; (* entry pointer parameter the access resolves to *)
  form : L.t; (* symbolic byte offset of the access start *)
  elt : int; (* access width in bytes *)
  akind : kind;
  definite : bool; (* executed by every thread, unconditionally *)
  unique : guard option; (* only the guard's thread executes this *)
  site : string;
  aphase : int;
}

type race = {
  param : int;
  pname : string;
  phase : int;
  kinds : string; (* "W/W" or "R/W" *)
  verdict : verdict;
  site1 : string;
  site2 : string;
  (* the underlying access pair, in site order (a1.site = site1); new
     fields sit after site2 so the polymorphic sort in [analyze] keeps
     its historical key order *)
  a1 : access;
  a2 : access;
}

let describe r =
  Fmt.str "%s %s race on arg%d '%s' (phase %d): %s vs %s"
    (match r.verdict with Must -> "must" | May -> "may")
    r.kinds r.param r.pname r.phase r.site1 r.site2

type aval = Scalar of L.t | Ptr of { param : int; off : L.t } | Unknown

type env = {
  m : Kir.Ir.modul;
  args : aval array;
  locals : (string, aval) Hashtbl.t;
  acc : access list ref;
  phase : int ref;
  entry_ptr_params : int list;
}

type ctx = {
  definite : bool;
  unique : guard option;
  top_level : bool; (* in the entry body: top-level barriers split phases *)
  depth : int;
}

let as_scalar = function Scalar l -> l | Ptr _ | Unknown -> L.top

let label_expr e =
  let s = Fmt.str "%a" Kir.Ir.pp_expr e in
  if String.length s > 72 then String.sub s 0 69 ^ "..." else s

let label_stmt s =
  let s = Fmt.str "%a" Kir.Ir.pp_stmt s in
  if String.length s > 72 then String.sub s 0 69 ^ "..." else s

let push env a = env.acc := a :: !(env.acc)

let record env ctx ~kind ~elt pv idx ~site =
  match pv with
  | Ptr { param; off } ->
      push env
        {
          aparam = param;
          form = L.add off (L.scale elt idx);
          elt;
          akind = kind;
          definite = ctx.definite;
          unique = ctx.unique;
          site;
          aphase = !(env.phase);
        }
  | Unknown ->
      (* Could alias any pointer argument: a Top access on each. *)
      List.iter
        (fun p ->
          push env
            {
              aparam = p;
              form = L.top;
              elt;
              akind = kind;
              definite = false;
              unique = ctx.unique;
              site;
              aphase = !(env.phase);
            })
        env.entry_ptr_params
  | Scalar _ -> () (* ill-typed; Validate rejects this *)

let rec eval env ctx (e : Kir.Ir.expr) : aval =
  match e with
  | Int n -> Scalar (L.const n)
  | Flt f -> Scalar (L.const (int_of_float f))
  | Param i ->
      if i >= 0 && i < Array.length env.args then env.args.(i) else Unknown
  | Local n -> (
      match Hashtbl.find_opt env.locals n with Some v -> v | None -> Unknown)
  | Tid -> Scalar L.tid
  | Ntid -> Scalar L.ntid
  | Load (pe, ie) ->
      let pv = eval env ctx pe in
      let idx = as_scalar (eval env ctx ie) in
      record env ctx ~kind:Read ~elt:8 pv idx ~site:(label_expr e);
      Scalar L.top (* loaded values are unknown and thread-variant *)
  | Loadi (pe, ie) ->
      let pv = eval env ctx pe in
      let idx = as_scalar (eval env ctx ie) in
      record env ctx ~kind:Read ~elt:4 pv idx ~site:(label_expr e);
      Scalar L.top
  | Binop (op, x, y) ->
      let a = as_scalar (eval env ctx x) and b = as_scalar (eval env ctx y) in
      Scalar
        (match op with
        | Add -> L.add a b
        | Sub -> L.sub a b
        | Mul -> L.mul a b
        | Div -> L.div a b
        | Mod -> L.rem_ a b
        | Min -> L.min_ a b
        | Max -> L.max_ a b
        | Lt | Le | Eq | And | Or -> L.bool_of a b)
  | Neg x -> Scalar (L.neg (as_scalar (eval env ctx x)))
  | I2f x | F2i x ->
      (* int<->float casts preserve the form; float rounding on huge or
         fractional values is approximated away (indices are integral
         in every kernel we model). *)
      eval env ctx x
  | Ptradd (pe, ie) -> (
      let pv = eval env ctx pe in
      let idx = as_scalar (eval env ctx ie) in
      match pv with
      | Ptr { param; off } -> Ptr { param; off = L.add off (L.scale 8 idx) }
      | Unknown | Scalar _ -> Unknown)

(* tid-uniqueness: does [cond] pin the executing thread to one
   launch-uniform value?  cond ⟺ (d = 0) with d = lhs - rhs; when d is
   (±1)·tid + uniform-exact, the branch runs for exactly one tid. *)
let unique_of_cond env ctx (cond : Kir.Ir.expr) : guard option =
  match cond with
  | Binop (Eq, x, y) -> (
      let vx = as_scalar (eval env ctx x) and vy = as_scalar (eval env ctx y) in
      match L.sub vx vy with
      | L.Lin l
        when I.is_const l.L.a
             && (l.L.a.I.lo = 1 || l.L.a.I.lo = -1)
             && I.is_const l.L.c && l.L.w = 0 ->
          let s = -l.L.a.I.lo in
          Some
            {
              gps = List.map (fun (i, c) -> (i, s * c)) l.L.ps;
              gnt = s * l.L.nt;
              gk = s * l.L.c.I.lo;
            }
      | _ -> None)
  | _ -> None

let join_aval a b =
  match (a, b) with
  | Scalar x, Scalar y -> Scalar (L.join x y)
  | Ptr p, Ptr q when p.param = q.param ->
      Ptr { param = p.param; off = L.join p.off q.off }
  | _ -> Unknown

(* A binding that only exists on some paths: keep it, degraded. *)
let degrade = function Scalar _ -> Scalar L.top | Ptr _ | Unknown -> Unknown

(* Locals (re)bound anywhere inside these statements, including nested
   scopes — conservatively invalidated around loop bodies. *)
let rec assigned acc (s : Kir.Ir.stmt) =
  match s with
  | Let (n, _) -> n :: acc
  | If (_, t, e) ->
      List.fold_left assigned (List.fold_left assigned acc t) e
  | For (v, _, _, body) -> v :: List.fold_left assigned acc body
  | Store _ | Storei _ | Call _ | Barrier -> acc

let form_lower = function
  | L.Top -> min_int
  | L.Lin l -> if l.L.ps = [] && l.L.nt = 0 && l.L.a.I.lo >= 0 then l.L.c.I.lo else min_int

let form_upper = function
  | L.Top -> max_int
  | L.Lin l ->
      if l.L.ps = [] && l.L.nt = 0 && I.is_const l.L.a && l.L.a.I.lo = 0 then
        l.L.c.I.hi
      else max_int

let rec exec env ctx (s : Kir.Ir.stmt) =
  match s with
  | Store (pe, ie, ve) ->
      let pv = eval env ctx pe in
      let idx = as_scalar (eval env ctx ie) in
      ignore (eval env ctx ve);
      record env ctx ~kind:Write ~elt:8 pv idx ~site:(label_stmt s)
  | Storei (pe, ie, ve) ->
      let pv = eval env ctx pe in
      let idx = as_scalar (eval env ctx ie) in
      ignore (eval env ctx ve);
      record env ctx ~kind:Write ~elt:4 pv idx ~site:(label_stmt s)
  | Let (n, e) -> Hashtbl.replace env.locals n (eval env ctx e)
  | If (c, t, e) ->
      let u = unique_of_cond env ctx c in
      ignore (eval env ctx c);
      let branch_ctx u' =
        { ctx with definite = false; unique = (match u' with Some _ -> u' | None -> ctx.unique) }
      in
      let saved = Hashtbl.copy env.locals in
      List.iter (exec env (branch_ctx u)) t;
      let t_tbl = Hashtbl.copy env.locals in
      Hashtbl.reset env.locals;
      Hashtbl.iter (Hashtbl.replace env.locals) saved;
      List.iter (exec env (branch_ctx None)) e;
      (* merge: join bindings present in both branch outcomes, degrade
         one-sided ones (they may be unbound on the other path) *)
      Hashtbl.iter
        (fun k v ->
          match Hashtbl.find_opt t_tbl k with
          | Some v' -> Hashtbl.replace env.locals k (join_aval v v')
          | None -> Hashtbl.replace env.locals k (degrade v))
        (Hashtbl.copy env.locals);
      Hashtbl.iter
        (fun k v ->
          if not (Hashtbl.mem env.locals k) then
            Hashtbl.replace env.locals k (degrade v))
        t_tbl
  | For (v, lo, hi, body) -> (
      let llo = as_scalar (eval env ctx lo)
      and lhi = as_scalar (eval env ctx hi) in
      match (L.exact_const llo, L.exact_const lhi) with
      | Some l, Some h when h <= l -> () (* provably empty *)
      | clo, chi ->
          let definite =
            ctx.definite
            && match (clo, chi) with Some l, Some h -> h > l | _ -> false
          in
          (* loop-carried locals: conservatively unknown for the
             abstract iteration that stands for all of them *)
          List.iter
            (fun n -> Hashtbl.replace env.locals n Unknown)
            (List.fold_left assigned [] body);
          let lo_b = form_lower llo and hi_b = form_upper lhi in
          if hi_b = min_int || (hi_b < max_int && hi_b - 1 < lo_b) then ()
          else begin
            let iv =
              I.of_bounds lo_b (if hi_b = max_int then max_int else hi_b - 1)
            in
            Hashtbl.replace env.locals v (Scalar (L.interval ~variant:true iv));
            List.iter (exec env { ctx with definite }) body
          end)
  | Call (name, args) -> (
      let argv = Array.of_list (List.map (eval env ctx) args) in
      if ctx.depth > 8 then conservative_all env ctx
      else
        match Kir.Ir.find_func env.m name with
        | None -> conservative_all env ctx
        | Some callee ->
            let env' = { env with args = argv; locals = Hashtbl.create 8 } in
            let ctx' = { ctx with top_level = false; depth = ctx.depth + 1 } in
            List.iter (exec env' ctx') callee.Kir.Ir.body)
  | Barrier -> if ctx.top_level then incr env.phase

and conservative_all env ctx =
  List.iter
    (fun p ->
      List.iter
        (fun kind ->
          push env
            {
              aparam = p;
              form = L.top;
              elt = 8;
              akind = kind;
              definite = false;
              unique = ctx.unique;
              site = "<call depth limit>";
              aphase = !(env.phase);
            })
        [ Read; Write ])
    env.entry_ptr_params

(* ------------------------------------------------------------------ *)
(* Collision checks                                                    *)

(* Floor/ceiling division for positive divisor. *)
let fdiv x y = if x >= 0 then x / y else -(((-x) + y - 1) / y)
let cdiv x y = if x >= 0 then (x + y - 1) / y else -((-x) / y)

let intersects (a : I.t) (b : I.t) = a.I.lo <= b.I.hi && b.I.lo <= a.I.hi

(* ∃ d ∈ ℤ, d ≠ 0 : alpha·d ∈ s  (d = tid - tid', unbounded grid). *)
let exists_nonzero_d alpha (s : I.t) =
  if alpha = 0 then s.I.lo <= 0 && 0 <= s.I.hi
  else if s.I.lo = min_int || s.I.hi = max_int then true
  else
    let a = abs alpha in
    let dmin = cdiv s.I.lo a and dmax = fdiv s.I.hi a in
    dmin <= dmax && not (dmin = 0 && dmax = 0)

(* ∃ t ∈ ℕ, t ≠ excl : alpha·t ∈ s. *)
let exists_thread alpha ~excl (s : I.t) =
  if alpha = 0 then s.I.lo <= 0 && 0 <= s.I.hi (* some other thread *)
  else
    let lo, hi =
      if alpha > 0 then (s.I.lo, s.I.hi)
      else
        ( (if s.I.hi = max_int then min_int else -s.I.hi),
          if s.I.lo = min_int then max_int else -s.I.lo )
    in
    let a = abs alpha in
    let tmin = if lo = min_int then 0 else max 0 (cdiv lo a) in
    let tmax = if hi = max_int then max_int else fdiv hi a in
    tmin <= tmax && not (tmin = excl && tmax = excl)

let pure_const_guard = function
  | Some { gps = []; gnt = 0; gk } -> Some gk
  | _ -> None

(* Overlap interval for f1(t) - f2(t'): byte ranges of widths e1/e2
   starting at the two forms intersect iff the difference lands here. *)
let t_iv e1 e2 = I.of_bounds (-(e2 - 1)) (e1 - 1)

(* Why a candidate pair is provably safe. Every constructor names one
   disjointness argument the analysis used; DRF certificates serialize
   these and an independent checker (Certcheck) re-derives each one
   from the raw coefficients. *)
type safe_reason =
  | Both_reads (* no write in the pair *)
  | Same_guard (* provably-equal uniqueness guards: one thread *)
  | Single_thread_site (* same site under a guard: intra-thread only *)
  | Self_stride (* |alpha| >= elt + w: one site partitions by tid *)
  | Uniform_gap (* no d <> 0 with alpha*d in the overlap interval *)
  | Pinned_gap of int (* one side pinned to this thread id *)
  | Pinned_pair of int * int (* both sides pinned to these thread ids *)

let reason_str = function
  | Both_reads -> "both-reads"
  | Same_guard -> "same-guard"
  | Single_thread_site -> "single-thread-site"
  | Self_stride -> "self-stride"
  | Uniform_gap -> "uniform-gap"
  | Pinned_gap _ -> "pinned-gap"
  | Pinned_pair _ -> "pinned-pair"

(* Decide one candidate pair. [same_site] means a1 and a2 are the same
   static access (racing against itself across threads). [Left reason]
   when provably safe or not actually a cross-thread pair; [Right
   verdict] when the pair is a race candidate. *)
let explain_pair (a1 : access) (a2 : access) ~same_site :
    (safe_reason, verdict) Either.t =
  if a1.akind = Read && a2.akind = Read then Either.Left Both_reads
  else
    match (a1.unique, a2.unique) with
    | Some g1, Some g2 when g1 = g2 ->
        Either.Left Same_guard (* provably the same single thread *)
    | _ when same_site && a1.unique <> None ->
        Either.Left Single_thread_site (* all instances intra-thread *)
    | u1, u2 -> (
        match (a1.form, a2.form) with
        | L.Top, _ | _, L.Top -> Either.Right May
        | L.Lin l1, L.Lin l2 ->
            if l1.L.ps <> l2.L.ps || l1.L.nt <> l2.L.nt then Either.Right May
            else begin
              let e1 = a1.elt and e2 = a2.elt in
              let exact1 = I.is_const l1.L.a and exact2 = I.is_const l2.L.a in
              let safe =
                if same_site then
                  (* δ between two instances of one site is bounded by
                     the variation width, not the full residual. *)
                  if
                    exact1
                    && l1.L.a.I.lo <> 0
                    && l1.L.w < max_int
                    && abs l1.L.a.I.lo >= e1 + l1.L.w
                  then Some Self_stride
                  else None
                else if exact1 && exact2 then begin
                  let alpha1 = l1.L.a.I.lo and alpha2 = l2.L.a.I.lo in
                  let t = t_iv e1 e2 in
                  let delta = I.sub l1.L.c l2.L.c in
                  if alpha1 = alpha2 then
                    match (pure_const_guard u1, pure_const_guard u2) with
                    | Some k1, Some k2 ->
                        (* both threads pinned; equal guards were
                           dismissed above, so k1 <> k2 is a real pair *)
                        if
                          k1 = k2
                          || not
                               (intersects
                                  (I.add delta
                                     (I.const ((alpha1 * k1) - (alpha2 * k2))))
                                  t)
                        then Some (Pinned_pair (k1, k2))
                        else None
                    | Some k, None ->
                        if
                          not
                            (exists_thread alpha2 ~excl:k
                               (I.add (I.sub delta t) (I.const (alpha1 * k))))
                        then Some (Pinned_gap k)
                        else None
                    | None, Some k ->
                        if
                          not
                            (exists_thread alpha1 ~excl:k
                               (I.add (I.sub t delta) (I.const (alpha2 * k))))
                        then Some (Pinned_gap k)
                        else None
                    | None, None ->
                        if not (exists_nonzero_d alpha1 (I.sub t delta)) then
                          Some Uniform_gap
                        else None
                  else None (* distinct strides: overlap in general *)
                end
                else None
              in
              match safe with
              | Some reason -> Either.Left reason
              | None ->
                  let must =
                    a1.definite && a2.definite && u1 = None && u2 = None
                    && exact1 && exact2
                    && I.is_const l1.L.c && I.is_const l2.L.c
                    && l1.L.w = 0 && l2.L.w = 0
                    &&
                    let alpha1 = l1.L.a.I.lo and alpha2 = l2.L.a.I.lo in
                    let c1 = l1.L.c.I.lo and c2 = l2.L.c.I.lo in
                    let overlap t t' =
                      let s1 = (alpha1 * t) + c1 and s2 = (alpha2 * t') + c2 in
                      s1 <= s2 + e2 - 1 && s2 <= s1 + e1 - 1
                    in
                    (* witness on threads {0,1}: fires on every grid >= 2 *)
                    overlap 0 1 || overlap 1 0
                  in
                  Either.Right (if must then Must else May)
            end)

(* ------------------------------------------------------------------ *)

(* Abstractly execute the entry kernel and return every access it can
   make, in program order. The raw material of [analyze], public so the
   certificate emitter can serialize the same access set. *)
let collect (m : Kir.Ir.modul) ~entry : access array =
  match Kir.Ir.find_func m entry with
  | None -> [||]
  | Some f ->
      let params = Array.of_list f.Kir.Ir.params in
      let args =
        Array.mapi
          (fun i (_, ty) ->
            match ty with
            | Kir.Ir.Pointer -> Ptr { param = i; off = L.const 0 }
            | Kir.Ir.Scalar -> Scalar (L.sparam i))
          params
      in
      let entry_ptr_params =
        List.concat
          (List.mapi
             (fun i (_, ty) ->
               match ty with Kir.Ir.Pointer -> [ i ] | Kir.Ir.Scalar -> [])
             f.Kir.Ir.params)
      in
      let env =
        {
          m;
          args;
          locals = Hashtbl.create 8;
          acc = ref [];
          phase = ref 0;
          entry_ptr_params;
        }
      in
      let ctx = { definite = true; unique = None; top_level = true; depth = 0 } in
      List.iter (exec env ctx) f.Kir.Ir.body;
      Array.of_list (List.rev !(env.acc))

let analyze (m : Kir.Ir.modul) ~entry : race list =
  match Kir.Ir.find_func m entry with
  | None -> []
  | Some f ->
      let params = Array.of_list f.Kir.Ir.params in
      let accesses = collect m ~entry in
      let found : (int * int * string * string, race) Hashtbl.t =
        Hashtbl.create 16
      in
      let report i j verdict =
        let a1 = accesses.(i) and a2 = accesses.(j) in
        let kinds =
          if a1.akind = Write && a2.akind = Write then "W/W" else "R/W"
        in
        (* normalize site order so (i,j)/(j,i) dedup *)
        let (s1, ra1), (s2, ra2) =
          if a1.site <= a2.site then ((a1.site, a1), (a2.site, a2))
          else ((a2.site, a2), (a1.site, a1))
        in
        let key = (a1.aparam, a1.aphase, s1, s2) in
        let r =
          {
            param = a1.aparam;
            pname = fst params.(a1.aparam);
            phase = a1.aphase;
            kinds;
            verdict;
            site1 = s1;
            site2 = s2;
            a1 = ra1;
            a2 = ra2;
          }
        in
        match Hashtbl.find_opt found key with
        | Some prev when prev.verdict = Must -> ()
        | Some _ when verdict = Must -> Hashtbl.replace found key r
        | Some _ -> ()
        | None -> Hashtbl.replace found key r
      in
      let n = Array.length accesses in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          let a1 = accesses.(i) and a2 = accesses.(j) in
          if a1.aparam = a2.aparam && a1.aphase = a2.aphase then
            match explain_pair a1 a2 ~same_site:(i = j) with
            | Either.Right v -> report i j v
            | Either.Left _ -> ()
        done
      done;
      Hashtbl.fold (fun _ r acc -> r :: acc) found []
      |> List.sort compare

let has_must races = List.exists (fun r -> r.verdict = Must) races
