(** Static intra-kernel race detection over KIR.

    The kernel body is split into phases at top-level [Barrier]
    statements; every load/store is summarized as a symbolic byte-offset
    {!Linform} over the thread index; two accesses to the same pointer
    argument in the same phase race when two distinct symbolic threads
    [tid <> tid'] can make the byte ranges overlap and at least one
    access writes (W/W or R/W).

    Verdicts: [Must] means a concrete witness exists on threads [{0,1}]
    — the race fires on every launch with grid >= 2, which tooling
    built on this analysis assumes and documents. [May] covers
    everything else that cannot be proven safe, including all
    non-linear (Top) index forms, so the analysis never hides a race it
    abstracted away. Thread-uniqueness guards [if (tid == e)] with
    launch-uniform [e] are understood, keeping single-thread reduction
    idioms race-free.

    The access set ({!collect}), the per-pair decision
    ({!explain_pair}) and the disjointness arguments ({!safe_reason})
    are public: the witness engine ({!Witness}) solves race candidates
    for concrete thread pairs, and the DRF-certificate pipeline
    ({!Certificate}/{!Certcheck}) serializes and independently
    re-checks the safe pairs. *)

type kind = Read | Write
type verdict = May | Must

type guard = { gps : (int * int) list; gnt : int; gk : int }
(** A thread-uniqueness guard: the executing thread satisfies
    [tid = Σ gps·param + gnt·ntid + gk]. *)

type access = {
  aparam : int;  (** entry pointer parameter the access resolves to *)
  form : Linform.t;  (** symbolic byte offset of the access start *)
  elt : int;  (** access width in bytes *)
  akind : kind;
  definite : bool;  (** executed by every thread, unconditionally *)
  unique : guard option;  (** only the guard's thread executes this *)
  site : string;  (** pretty-printed source construct *)
  aphase : int;  (** barrier-delimited phase the access occurs in *)
}

type race = {
  param : int;  (** pointer parameter position of the entry kernel *)
  pname : string;  (** its source name *)
  phase : int;  (** barrier-delimited phase the pair occurs in *)
  kinds : string;  (** ["W/W"] or ["R/W"] *)
  verdict : verdict;
  site1 : string;  (** pretty-printed offending access *)
  site2 : string;
  a1 : access;  (** the underlying pair, in site order ([a1.site = site1]) *)
  a2 : access;
}

type safe_reason =
  | Both_reads  (** no write in the pair *)
  | Same_guard  (** provably-equal uniqueness guards: one thread *)
  | Single_thread_site  (** same site under a guard: intra-thread only *)
  | Self_stride  (** [|alpha| >= elt + w]: one site partitions by tid *)
  | Uniform_gap  (** no [d <> 0] with [alpha*d] in the overlap interval *)
  | Pinned_gap of int  (** one side pinned to this thread id *)
  | Pinned_pair of int * int  (** both sides pinned to these thread ids *)
      (** The disjointness argument that proves one access pair
          race-free; the payload of a DRF-certificate fact. *)

val reason_str : safe_reason -> string
(** Stable kebab-case tag of the constructor (payload not included). *)

val describe : race -> string
(** One-line human rendering, e.g.
    ["must W/W race on arg0 'out' (phase 0): out[0] := ... vs ..."]. *)

val collect : Kir.Ir.modul -> entry:string -> access array
(** Abstractly execute the entry kernel and return every access it can
    make, in program order — the raw material of {!analyze}, public so
    certificate emission covers the same access set. [[||]] when the
    entry does not exist. *)

val explain_pair :
  access -> access -> same_site:bool -> (safe_reason, verdict) Either.t
(** Decide one candidate pair: [Left reason] when provably safe (or not
    actually a cross-thread pair), [Right verdict] when it is a race
    candidate. [same_site] marks a single static access racing against
    itself across threads. Accesses of different parameters or phases
    never form a pair and must not be passed. *)

val analyze : Kir.Ir.modul -> entry:string -> race list
(** Collect the race candidates of one kernel, deduplicated per
    (parameter, phase, site pair) with [Must] taking precedence.
    Callers should run {!Kir.Validate.check_module} first; ill-formed
    modules may produce meaningless (but defined) results. *)

val has_must : race list -> bool
