(** Static intra-kernel race detection over KIR.

    The kernel body is split into phases at top-level [Barrier]
    statements; every load/store is summarized as a symbolic byte-offset
    {!Linform} over the thread index; two accesses to the same pointer
    argument in the same phase race when two distinct symbolic threads
    [tid <> tid'] can make the byte ranges overlap and at least one
    access writes (W/W or R/W).

    Verdicts: [Must] means a concrete witness exists on threads [{0,1}]
    — the race fires on every launch with grid >= 2, which tooling
    built on this analysis assumes and documents. [May] covers
    everything else that cannot be proven safe, including all
    non-linear (Top) index forms, so the analysis never hides a race it
    abstracted away. Thread-uniqueness guards [if (tid == e)] with
    launch-uniform [e] are understood, keeping single-thread reduction
    idioms race-free. *)

type verdict = May | Must

type race = {
  param : int;  (** pointer parameter position of the entry kernel *)
  pname : string;  (** its source name *)
  phase : int;  (** barrier-delimited phase the pair occurs in *)
  kinds : string;  (** ["W/W"] or ["R/W"] *)
  verdict : verdict;
  site1 : string;  (** pretty-printed offending access *)
  site2 : string;
}

val describe : race -> string
(** One-line human rendering, e.g.
    ["must W/W race on arg0 'out' (phase 0): out[0] := ... vs ..."]. *)

val analyze : Kir.Ir.modul -> entry:string -> race list
(** Collect the race candidates of one kernel, deduplicated per
    (parameter, phase, site pair) with [Must] taking precedence.
    Callers should run {!Kir.Validate.check_module} first; ill-formed
    modules may produce meaningless (but defined) results. *)

val has_must : race list -> bool
