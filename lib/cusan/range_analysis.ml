(* Launch-time access-range analysis — a sound implementation of the
   optimization the paper proposes as future work (Section VI-D):
   instead of annotating the whole allocation behind every device
   pointer, derive the byte range each kernel argument can actually
   touch and annotate only that.

   The analysis runs at kernel-launch interception, when the scalar
   arguments and the grid size are concrete: it abstractly interprets
   the kernel body over integer intervals with tid ∈ [0, grid-1]. Loops
   run to a widened fixpoint, both branches of conditionals are joined,
   nested device functions are evaluated with their argument intervals.
   Anything it cannot bound (e.g. data-dependent indices loaded from
   memory) falls back to the whole-allocation range for that argument —
   never less, so the result over-approximates every execution (checked
   against the interpreter by property tests).

   Cost: one walk of the (tiny) kernel body per launch — O(|body|), not
   O(domain size), which is the entire point. *)

module I = Interval

(* Abstract values: a scalar interval, or a pointer = parameter origin +
   byte-offset interval. Pointers that could alias several parameters
   are not produced by well-typed KIR (pointer expressions are
   parameter-rooted), but a joined local may hold pointers of different
   origins — then we give up on both ([Unknown_ptr]). *)
type aval =
  | Scalar of I.t
  | Ptr of { param : int; off : I.t } (* byte offset relative to the arg *)
  | Unknown_ptr

type access = { mutable read : I.t option; mutable written : I.t option }
(* byte ranges relative to the argument pointer; [None] = untouched *)

type summary = {
  per_param : access array;
  mutable imprecise : bool array;
      (* argument indices whose accesses could not be bounded: the
         caller must fall back to the whole allocation *)
}

exception Give_up

let join_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (I.join a b)

let scalar = function
  | Scalar i -> i
  | Ptr _ | Unknown_ptr -> raise Give_up

let join_aval a b =
  match (a, b) with
  | Scalar x, Scalar y -> Scalar (I.join x y)
  | Ptr p, Ptr q when p.param = q.param -> Ptr { p with off = I.join p.off q.off }
  | (Ptr _ | Unknown_ptr), (Ptr _ | Unknown_ptr) -> Unknown_ptr
  | _ -> raise Give_up (* scalar/pointer mix: ill-typed *)

type env = {
  args : aval array;
  locals : (string, aval) Hashtbl.t;
  tid : I.t;
  ntid : int;
  summary : summary;
  modul : Kir.Ir.modul;
  mutable depth : int; (* call depth, to cut recursion *)
}

let mark_access env ~param ~(bytes : I.t) ~kind =
  let a = env.summary.per_param.(param) in
  match kind with
  | `Read -> a.read <- join_opt a.read (Some bytes)
  | `Write -> a.written <- join_opt a.written (Some bytes)

let mark_imprecise env param = env.summary.imprecise.(param) <- true

(* Mark every pointer reachable from the arguments as imprecise: the
   escape hatch when evaluation fails entirely. *)
let mark_all_imprecise env =
  Array.iteri
    (fun i -> function
      | Ptr _ | Unknown_ptr -> mark_imprecise env i
      | Scalar _ -> ())
    env.args

let access_bytes ~(off : I.t) ~(idx : I.t) ~elt =
  (* bytes [off + elt*idx, off + elt*idx + elt) *)
  let base = I.add off (I.mul idx (I.const elt)) in
  I.add base (I.of_bounds 0 (elt - 1))

let rec eval env (e : Kir.Ir.expr) : aval =
  match e with
  | Int c -> Scalar (I.const c)
  | Flt _ -> Scalar I.top (* floats are never sound indices *)
  | Param i -> env.args.(i)
  | Local n -> (
      match Hashtbl.find_opt env.locals n with
      | Some v -> v
      | None -> raise Give_up)
  | Tid -> Scalar env.tid
  | Ntid -> Scalar (I.const env.ntid)
  | Load (p, ix) | Loadi (p, ix) ->
      let elt = match e with Kir.Ir.Load _ -> 8 | _ -> 4 in
      record_access env p ix ~elt ~kind:`Read;
      Scalar I.top (* loaded values are data-dependent *)
  | Binop (op, a, b) ->
      let a = scalar (eval env a) and b = scalar (eval env b) in
      Scalar
        (match op with
        | Add -> I.add a b
        | Sub -> I.sub a b
        | Mul -> I.mul a b
        | Div -> I.div a b
        | Mod -> I.rem a b
        | Min -> I.min_ a b
        | Max -> I.max_ a b
        | Lt | Le | Eq | And | Or -> I.bool_)
  | Neg a -> Scalar (I.neg (scalar (eval env a)))
  | I2f a ->
      ignore (eval env a);
      Scalar I.top
  | F2i a -> Scalar (scalar (eval env a))
  | Ptradd (p, ix) -> (
      let ix = scalar (eval env ix) in
      match eval env p with
      | Ptr { param; off } ->
          Ptr { param; off = I.add off (I.mul ix (I.const 8)) }
      | v -> v)

and record_access env p ix ~elt ~kind =
  let ix = scalar (eval env ix) in
  match eval env p with
  | Ptr { param; off } ->
      if I.is_top ix || I.is_top off then mark_imprecise env param
      else mark_access env ~param ~bytes:(access_bytes ~off ~idx:ix ~elt) ~kind
  | Unknown_ptr ->
      (* could be any pointer argument: all become imprecise *)
      mark_all_imprecise env
  | Scalar _ -> raise Give_up

let max_fixpoint_iters = 4

let rec exec env (s : Kir.Ir.stmt) =
  match s with
  | Store (p, ix, v) ->
      ignore (eval env v);
      record_access env p ix ~elt:8 ~kind:`Write
  | Storei (p, ix, v) ->
      ignore (eval env v);
      record_access env p ix ~elt:4 ~kind:`Write
  | Let (n, e) ->
      let v = eval env e in
      let v =
        match Hashtbl.find_opt env.locals n with
        | Some old -> ( try join_aval old v with Give_up -> v)
        | None -> v
      in
      Hashtbl.replace env.locals n v
  | If (c, t, e) ->
      ignore (eval env c);
      (* both branches, shared env: locals join via Let above *)
      List.iter (exec env) t;
      List.iter (exec env) e
  | For (v, lo, hi, body) ->
      let lo_i = scalar (eval env lo) and hi_i = scalar (eval env hi) in
      if lo_i.I.lo = max_int || hi_i.I.hi = min_int || hi_i.I.hi <= lo_i.I.lo
      then
        (* statically empty or unbounded-below: if possibly non-empty we
           must still walk; an empty loop touches nothing *)
        (if hi_i.I.hi > lo_i.I.lo then walk_loop env v lo_i hi_i body)
      else walk_loop env v lo_i hi_i body
  | Call (callee, args) -> (
      match Kir.Ir.find_func env.modul callee with
      | None -> raise Give_up
      | Some f ->
          if env.depth > 8 then raise Give_up;
          let argv = Array.of_list (List.map (eval env) args) in
          (* Callee parameters alias the caller's pointer arguments:
             evaluate the callee body in a frame whose Param i resolves
             to our abstract argument values, accesses flowing back into
             the shared summary via the pointer origins. *)
          let env' =
            {
              env with
              args = argv;
              locals = Hashtbl.create 8;
              depth = env.depth + 1;
            }
          in
          List.iter (exec env') f.Kir.Ir.body)
  | Barrier -> () (* synchronization: no bytes touched *)

and walk_loop env v lo_i hi_i body =
  let var_iv =
    I.of_bounds lo_i.I.lo
      (if hi_i.I.hi = max_int then max_int
       else max lo_i.I.lo (hi_i.I.hi - 1))
  in
  Hashtbl.replace env.locals v (Scalar var_iv);
  (* Fixpoint with widening: locals mutated inside the loop body
     (accumulators) must converge to a sound over-approximation. *)
  let snapshot () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) env.locals [] in
  let stable prev =
    List.for_all
      (fun (k, v0) ->
        match (Hashtbl.find_opt env.locals k, v0) with
        | Some (Scalar a), Scalar b -> I.equal a b
        | Some (Ptr p), Ptr q -> p.param = q.param && I.equal p.off q.off
        | Some Unknown_ptr, Unknown_ptr -> true
        | _ -> false)
      prev
    && Hashtbl.length env.locals = List.length prev
  in
  let iters = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr iters;
    let prev = snapshot () in
    List.iter (exec env) body;
    Hashtbl.replace env.locals v (Scalar var_iv);
    if stable prev then continue_ := false
    else if !iters >= max_fixpoint_iters then begin
      (* widen everything that is still moving, then one last pass *)
      List.iter
        (fun (k, v0) ->
          match (Hashtbl.find_opt env.locals k, v0) with
          | Some (Scalar cur), Scalar old when not (I.equal cur old) ->
              Hashtbl.replace env.locals k (Scalar (I.widen old cur))
          | Some (Scalar _), _ | Some (Ptr _), _ | Some Unknown_ptr, _ | None, _
            ->
              ())
        prev;
      (* locals new in this iteration that keep changing: go to top *)
      Hashtbl.iter
        (fun k v ->
          match (v, List.assoc_opt k prev) with
          | Scalar _, None -> Hashtbl.replace env.locals k (Scalar I.top)
          | _ -> ())
        (Hashtbl.copy env.locals);
      List.iter (exec env) body;
      Hashtbl.replace env.locals v (Scalar var_iv);
      continue_ := false
    end
  done

(* Evaluate the byte ranges kernel [entry] touches per pointer argument,
   for a launch with the given concrete arguments and grid size. *)
let analyze_launch (m : Kir.Ir.modul) ~entry ~(args : Kir.Interp.value array)
    ~grid : summary option =
  match Kir.Ir.find_func m entry with
  | None -> None
  | Some f ->
      let n = Array.length args in
      let summary =
        {
          per_param = Array.init n (fun _ -> { read = None; written = None });
          imprecise = Array.make n false;
        }
      in
      let avals =
        Array.mapi
          (fun i (a : Kir.Interp.value) ->
            match a with
            | VInt c -> Scalar (I.const c)
            | VFlt _ -> Scalar I.top
            | VPtr _ -> Ptr { param = i; off = I.const 0 })
          args
      in
      let env =
        {
          args = avals;
          locals = Hashtbl.create 8;
          tid = (if grid <= 0 then I.const 0 else I.of_bounds 0 (grid - 1));
          ntid = grid;
          summary;
          modul = m;
          depth = 0;
        }
      in
      (try List.iter (exec env) f.Kir.Ir.body
       with Give_up -> mark_all_imprecise env);
      Some summary
