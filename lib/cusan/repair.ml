(* Automated barrier repair, after GPURepair (Anand et al.): given a
   kernel with provable races, search for a MINIMAL set of
   [__syncthreads()] insertion points that makes every provable race
   go away, and verify each candidate fix end-to-end before suggesting
   it.

   Repair targets are the candidates worth fixing: every Must verdict
   plus every May verdict the {!Witness} engine can prove. Unproved
   Mays are NOT targets — inserting barriers for a candidate we cannot
   demonstrate would trade imaginary safety for real synchronization
   cost, and the suggestion could never be validated.

   Insertion points are the top-level gaps of the entry body (gap [i]
   = before the [i]-th statement). Top-level placement is always
   uniform control flow, so {!Kir.Validate}'s tid-divergence check can
   only fail through interaction with called functions — we still
   re-validate every candidate rather than assume. Gap 0 and the gap
   after the last statement can never separate two accesses, so only
   interior gaps are enumerated.

   Candidate sets are enumerated by increasing size (so the first hit
   is minimal) and lexicographically within a size (so suggestions are
   deterministic), up to [max_barriers] insertions. A candidate is
   accepted only when ALL of:
     - {!Kir.Validate.check_module} accepts the rewritten module;
     - re-running {!Race_analysis} reports no Must verdict;
     - no remaining May candidate proves via {!Witness.prove};
     - the whole-launch interpreter oracle
       ({!Witness.replay_conflicts}) finds no dynamic conflict at any
       configuration a pre-repair witness incriminated, nor at the
       default configurations.
   The static re-analysis and the dynamic replay are independent
   oracles: a fix that merely confuses the symbolic analysis still has
   to survive a concrete all-thread replay at the exact configuration
   that exhibited the original race. *)

module RA = Race_analysis

let max_barriers = 4

type fix = {
  fpoints : int list; (* ascending gap indices into the entry body *)
  fpreviews : string list; (* one human-readable line per point *)
  fconfigs : (int * int) list; (* (ntid, valuation) replays that passed *)
}

type outcome =
  | Already_clean
  | Fixed of fix
  | Unrepairable of string

let truncate s = if String.length s > 72 then String.sub s 0 69 ^ "..." else s

let preview (body : Kir.Ir.stmt list) i =
  match List.nth_opt body i with
  | Some s ->
      Fmt.str "gap %d: insert __syncthreads() before `%s`" i
        (truncate (Fmt.str "%a" Kir.Ir.pp_stmt s))
  | None -> Fmt.str "gap %d: append __syncthreads()" i

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

(* All strictly-ascending [k]-subsets of [xs], lexicographic. *)
let rec combinations k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (combinations (k - 1) rest)
        @ combinations k rest

(* Every configuration (ntid, uniform scalar valuation) a witness
   incriminated, plus the defaults the prover tries first. *)
let configs_of_witnesses ws =
  dedup
    (List.map
       (fun (w : Witness.t) ->
         ( w.Witness.wntid,
           match w.Witness.wparams with (_, v) :: _ -> v | [] -> 0 ))
       ws
    @ [ (2, 0); (4, 1) ])

(* A rewritten module is clean when the static analysis proves nothing
   anymore AND the dynamic all-thread replay is conflict-free at every
   incriminated configuration. *)
let candidate_clean m' ~entry ~configs =
  match Kir.Validate.check_module m' with
  | exception Kir.Validate.Invalid _ -> false
  | () ->
      let races' = RA.analyze m' ~entry in
      (not
         (List.exists
            (fun (r : RA.race) ->
              match r.RA.verdict with
              | RA.Must -> true
              | RA.May -> (
                  match Witness.prove m' ~entry r with
                  | Witness.Proved _ -> true
                  | Witness.Unproved _ -> false))
            races'))
      && not
           (List.exists
              (fun (ntid, v) ->
                match Witness.replay_conflicts m' ~entry ~ntid ~v with
                | c -> c
                | exception _ -> true)
              configs)

let suggest (m : Kir.Ir.modul) ~entry : outcome =
  match Kir.Ir.find_func m entry with
  | None -> Unrepairable "entry kernel not found"
  | Some f -> (
      let races = RA.analyze m ~entry in
      let proofs =
        List.map
          (fun (r : RA.race) -> (r, Witness.prove m ~entry r))
          races
      in
      let targets =
        List.filter
          (fun ((r : RA.race), p) ->
            r.RA.verdict = RA.Must
            || match p with Witness.Proved _ -> true | Witness.Unproved _ -> false)
          proofs
      in
      if targets = [] then Already_clean
      else
        let witnesses =
          List.filter_map
            (fun (_, p) ->
              match p with Witness.Proved w -> Some w | Witness.Unproved _ -> None)
            targets
        in
        let configs = configs_of_witnesses witnesses in
        let body = f.Kir.Ir.body in
        let n = List.length body in
        (* interior gaps only: a barrier before everything or after
           everything separates no pair of accesses *)
        let gaps = List.init (max 0 (n - 1)) (fun i -> i + 1) in
        let exception Hit of int list in
        try
          for k = 1 to min max_barriers (List.length gaps) do
            List.iter
              (fun points ->
                let m' = Kir.Rewrite.insert_barriers m ~entry ~points in
                if candidate_clean m' ~entry ~configs then raise (Hit points))
              (combinations k gaps)
          done;
          Unrepairable
            (if gaps = [] then
               Fmt.str
                 "no interior insertion point: the entry body is a single \
                  top-level statement with %d provable race(s)"
                 (List.length targets)
             else
               Fmt.str
                 "no set of at most %d top-level barrier insertions clears \
                  all %d provable race(s)"
                 (min max_barriers (List.length gaps))
                 (List.length targets))
        with Hit points ->
          Fixed
            {
              fpoints = points;
              fpreviews = List.map (preview body) points;
              fconfigs = configs;
            })
