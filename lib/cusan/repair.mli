(** Automated barrier repair, after GPURepair: search for a minimal
    set of top-level [__syncthreads()] insertion points that clears
    every provable race of a kernel, and verify each suggestion with
    two independent oracles before reporting it.

    Targets are the Must verdicts plus the May verdicts {!Witness} can
    prove; unproved Mays are never repaired (a fix for an
    undemonstrable race could not be validated). Candidate insertion
    sets are enumerated by increasing size, lexicographically within a
    size, so the first accepted fix is minimal and deterministic. A
    candidate is accepted only when the rewritten kernel passes
    {!Kir.Validate}, re-analysis reports no Must and no provable May,
    and a whole-launch interpreter replay is conflict-free at every
    configuration the original witnesses incriminated. *)

type fix = {
  fpoints : int list;
      (** ascending gap indices into the entry body; gap [i] inserts a
          barrier before the [i]-th top-level statement (see
          {!Kir.Rewrite.insert_barriers}) *)
  fpreviews : string list;  (** one human-readable line per point *)
  fconfigs : (int * int) list;
      (** the (ntid, valuation) whole-launch replays the fix survived *)
}

type outcome =
  | Already_clean
      (** no Must verdict and no provable May — nothing to repair
          (unproved May candidates may remain; they are reported, not
          repaired) *)
  | Fixed of fix  (** a verified minimal insertion set *)
  | Unrepairable of string
      (** no insertion set within the search bound clears every
          provable race (e.g. both accesses live in one statement) *)

val suggest : Kir.Ir.modul -> entry:string -> outcome
(** Analyze, prove, search, and verify. Deterministic; allocates (and
    frees) scratch buffers on the simulated device heap for the replay
    oracles. *)
