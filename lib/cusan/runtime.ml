(* The CuSan runtime (paper, Section IV-A): maps intercepted CUDA API
   calls onto ThreadSanitizer's concurrency model.

   Per device context it keeps (i) a fiber per CUDA stream, (ii) the
   event-to-synchronization-key mapping, (iii) the memory-kind view
   (via UVA / TypeART), and (iv) the host fiber reference — the four
   tables named in the paper.

   Annotation recipe for a device operation (kernel, memcpy, memset) on
   stream S:
   1. switch to S's fiber, carrying a happens-before edge from the host
      (the operation is issued after preceding host work);
   2. if S is the legacy default stream: acquire the completion key of
      every blocking user stream (the implicit barrier of Fig. 3);
      if S is a blocking user stream: acquire the default stream's
      completion key (it must wait for prior default-stream work);
   3. mark each accessed memory range read/write, with the extent from
      TypeART (whole-allocation annotation, as in the paper);
   4. release the stream's completion key — and, for default-stream
      operations, the completion key of every blocking user stream too
      ("starting an arc for each other stream", Table I discussion);
   5. switch back to the host fiber (no synchronization).

   Host-side synchronization calls acquire completion keys:
   cudaStreamSynchronize the stream's, cudaDeviceSynchronize every
   tracked stream's, cudaEventSynchronize the event's, and a successful
   cudaStreamQuery the stream's. Host-synchronous memory operations
   (per the semantics matrix) acquire their stream's key after the
   device-side annotation. *)

module D = Cudasim.Device
module K = Cudasim.Kernel
module T = Tsan.Detector

(* How kernel-argument memory is annotated:
   - [Whole]: the paper's approach — the entire allocation extent behind
     every accessed device pointer (Section IV-A).
   - [Precise]: the sound launch-time access-range analysis (the
     Section VI-D optimization, implemented in Range_analysis): only the
     byte range the kernel can actually touch, falling back to the whole
     extent when an index cannot be bounded. Besides the cost reduction,
     this removes false positives for kernels working on disjoint slices
     of one allocation from different streams. *)
type annotation_mode = Whole | Precise

type t = {
  tsan : T.t;
  dev : D.t;
  counters : Counters.t;
  fibers : (int, T.fiber) Hashtbl.t; (* sid -> fiber *)
  host : T.fiber;
  annotation : annotation_mode;
  max_range_bytes : int option;
      (* Experimental (paper, Section VI-D): cap the annotated range per
         kernel argument instead of tracking the whole allocation —
         models the proposed optimization of focusing on the boundary
         regions exchanged via MPI. May miss races outside the cap. *)
}

(* Synchronization-key spaces, disjoint from MUST's request keys. *)
let stream_key sid = 0x1_0000_0000 + sid
let event_key eid = 0x2_0000_0000 + eid

let fiber_of t (s : D.stream) =
  match Hashtbl.find_opt t.fibers s.D.sid with
  | Some f -> f
  | None ->
      let name =
        if s.D.is_default then
          if s.D.sid = 0 then "cuda:default-stream"
          else Fmt.str "cuda:ptds-stream%d" s.D.sid
        else Fmt.str "cuda:stream%d" s.D.sid
      in
      let f = T.fiber_create t.tsan name in
      Hashtbl.replace t.fibers s.D.sid f;
      t.counters.Counters.streams <- t.counters.Counters.streams + 1;
      f

let blocking_user_streams t =
  List.filter (fun (s : D.stream) -> not s.D.is_default && s.D.flags = D.Blocking)
    (D.streams t.dev)

(* Extent of the accessed range behind a device pointer: TypeART's
   allocation query when available, the raw allocation extent otherwise
   (CuSan depends on TypeART for exactly this, paper Section II-C). *)
let extent_of (p : Memsim.Ptr.t) =
  match Typeart.Pass.extent_at (Memsim.Ptr.addr p) with
  | Some bytes -> bytes
  | None -> Memsim.Ptr.remaining p

type range = { ptr : Memsim.Ptr.t; bytes : int; kind : [ `Read | `Write | `Rw ] }

(* Kernel argument lists routinely alias (the same buffer passed twice,
   e.g. an in-place update): annotating the extent once is enough — the
   detector's state transition is idempotent within one operation — so
   drop exact duplicates before walking the shadow. Order-preserving on
   first occurrence; argument lists are short. *)
let dedupe_ranges ranges =
  List.fold_left
    (fun acc r ->
      if
        List.exists
          (fun r' ->
            Memsim.Ptr.addr r'.ptr = Memsim.Ptr.addr r.ptr
            && r'.bytes = r.bytes && r'.kind = r.kind)
          acc
      then acc
      else r :: acc)
    [] ranges
  |> List.rev

(* Steps 1-5 above. The issuing fiber is saved and restored (rather than
   assuming a single host fiber) so interception works from any host
   thread — required for per-thread default stream support. *)
let device_op t (s : D.stream) ~label ~(ranges : range list) ~host_syncs =
  let caller = T.current_fiber t.tsan in
  let f = fiber_of t s in
  let legacy = D.default_mode t.dev = D.Legacy in
  T.switch_to_fiber_sync t.tsan f;
  (if Trace.Recorder.on () then
     let bytes = List.fold_left (fun a r -> a + r.bytes) 0 ranges in
     Trace.Recorder.instant ~cat:"cusan"
       ~args:
         [
           ("ranges", string_of_int (List.length ranges));
           ("bytes", string_of_int bytes);
         ]
       ("annotate:" ^ label));
  (if legacy then
     if s.D.is_default then
       List.iter
         (fun (u : D.stream) -> T.happens_after t.tsan (stream_key u.D.sid))
         (blocking_user_streams t)
     else if s.D.flags = D.Blocking then T.happens_after t.tsan (stream_key 0));
  T.with_context t.tsan label (fun () ->
      List.iter
        (fun r ->
          match r.kind with
          | `Read -> T.read_range t.tsan ~addr:(Memsim.Ptr.addr r.ptr) ~len:r.bytes
          | `Write ->
              T.write_range t.tsan ~addr:(Memsim.Ptr.addr r.ptr) ~len:r.bytes
          | `Rw -> T.rw_range t.tsan ~addr:(Memsim.Ptr.addr r.ptr) ~len:r.bytes)
        ranges);
  T.happens_before t.tsan (stream_key s.D.sid);
  if legacy && s.D.is_default then
    List.iter
      (fun (u : D.stream) -> T.happens_before t.tsan (stream_key u.D.sid))
      (blocking_user_streams t);
  T.switch_to_fiber t.tsan caller;
  if host_syncs then T.happens_after t.tsan (stream_key s.D.sid)

let cap t bytes =
  match t.max_range_bytes with Some c -> min c bytes | None -> bytes

(* Whole-allocation annotation, as in the paper. *)
let whole_ranges t (k : K.t) (args : Kir.Interp.value array) =
  let attr_of i =
    match k.K.access with
    | Some attrs when i < Array.length attrs -> attrs.(i)
    | Some _ -> None
    | None ->
        (* Unanalyzed kernel: conservatively read+write every pointer. *)
        Some K.RW
  in
  let ranges = ref [] in
  Array.iteri
    (fun i arg ->
      match arg with
      | Kir.Interp.VPtr p -> (
          match attr_of i with
          | None -> ()
          | Some a ->
              let bytes = cap t (extent_of p) in
              let kind =
                match (K.reads a, K.writes a) with
                | true, true -> Some `Rw
                | true, false -> Some `Read
                | false, true -> Some `Write
                | false, false -> None
              in
              Option.iter
                (fun kind -> ranges := { ptr = p; bytes; kind } :: !ranges)
                kind)
      | _ -> ())
    args;
  dedupe_ranges (List.rev !ranges)

(* Precise annotation from the launch-time range analysis; clips the
   derived byte intervals to the allocation and falls back to the whole
   extent per argument when the analysis could not bound an index. *)
let precise_ranges t (k : K.t) (args : Kir.Interp.value array) ~grid =
  match k.K.kir with
  | None -> whole_ranges t k args
  | Some (m, entry) -> (
      match Range_analysis.analyze_launch m ~entry ~args ~grid with
      | None -> whole_ranges t k args
      | Some s ->
          let ranges = ref [] in
          Array.iteri
            (fun i arg ->
              match arg with
              | Kir.Interp.VPtr p ->
                  let extent = extent_of p in
                  if s.Range_analysis.imprecise.(i) then
                    ranges :=
                      { ptr = p; bytes = cap t extent; kind = `Rw } :: !ranges
                  else begin
                    let clip kind = function
                      | None -> ()
                      | Some (iv : Interval.t) ->
                          let lo = max 0 iv.Interval.lo in
                          let hi = min (extent - 1) iv.Interval.hi in
                          if hi >= lo then
                            ranges :=
                              {
                                ptr = Memsim.Ptr.add_bytes p lo;
                                bytes = cap t (hi - lo + 1);
                                kind;
                              }
                              :: !ranges
                    in
                    let a = s.Range_analysis.per_param.(i) in
                    clip `Read a.Range_analysis.read;
                    clip `Write a.Range_analysis.written
                  end
              | _ -> ())
            args;
          dedupe_ranges (List.rev !ranges))

let kernel_ranges t (k : K.t) (args : Kir.Interp.value array) ~grid =
  match t.annotation with
  | Whole -> whole_ranges t k args
  | Precise -> precise_ranges t k args ~grid

let sync_all_streams t =
  (* Acquire in stream-id order, not hash order: each happens_after
     merges a clock into the host fiber, and a hash-order walk makes the
     merge order — and with it downstream epoch values and report text —
     depend on table internals rather than on the program. *)
  Hashtbl.fold (fun sid _ acc -> sid :: acc) t.fibers []
  |> List.sort compare
  |> List.iter (fun sid -> T.happens_after t.tsan (stream_key sid))

(* Trace a sync-matrix decision: this call was modelled as host
   synchronization against [what] (paper, Table I). *)
let sync_probe call what =
  if Trace.Recorder.on () then
    Trace.Recorder.instant ~cat:"cusan.sync" ~args:[ ("syncs", what) ] call

let on_event t phase (ev : D.api_event) =
  match (phase, ev) with
  | D.Pre, D.Stream_create s -> ignore (fiber_of t s)
  | D.Pre, D.Kernel_launch { kernel; args; stream; grid } ->
      t.counters.Counters.kernels <- t.counters.Counters.kernels + 1;
      if kernel.K.access = None then
        t.counters.Counters.unanalyzed_kernels <-
          t.counters.Counters.unanalyzed_kernels + 1;
      device_op t stream
        ~label:(Fmt.str "kernel:%s" kernel.K.kname)
        ~ranges:(kernel_ranges t kernel args ~grid)
        ~host_syncs:false
  | D.Pre, D.Memcpy { dst; src; bytes; async; stream; modeled_sync; _ } ->
      t.counters.Counters.memcpys <- t.counters.Counters.memcpys + 1;
      device_op t stream
        ~label:(if async then "cudaMemcpyAsync" else "cudaMemcpy")
        ~ranges:
          [
            { ptr = src; bytes; kind = `Read };
            { ptr = dst; bytes; kind = `Write };
          ]
        ~host_syncs:modeled_sync
  | D.Pre, D.Memset { dst; bytes; async; stream; modeled_sync; _ } ->
      t.counters.Counters.memsets <- t.counters.Counters.memsets + 1;
      device_op t stream
        ~label:(if async then "cudaMemsetAsync" else "cudaMemset")
        ~ranges:[ { ptr = dst; bytes; kind = `Write } ]
        ~host_syncs:modeled_sync
  | D.Post, D.Stream_sync s ->
      t.counters.Counters.syncs <- t.counters.Counters.syncs + 1;
      sync_probe "cudaStreamSynchronize" (Fmt.str "stream#%d" s.D.sid);
      T.happens_after t.tsan (stream_key s.D.sid)
  | D.Post, D.Device_sync ->
      t.counters.Counters.syncs <- t.counters.Counters.syncs + 1;
      sync_probe "cudaDeviceSynchronize" "all-streams";
      sync_all_streams t
  | D.Post, D.Event_sync e ->
      t.counters.Counters.syncs <- t.counters.Counters.syncs + 1;
      sync_probe "cudaEventSynchronize" (Fmt.str "event#%d" e.D.eid);
      T.happens_after t.tsan (event_key e.D.eid)
  | D.Pre, D.Event_record { event; stream } ->
      let caller = T.current_fiber t.tsan in
      let f = fiber_of t stream in
      T.switch_to_fiber_sync t.tsan f;
      T.happens_before t.tsan (event_key event.D.eid);
      T.switch_to_fiber t.tsan caller
  | D.Post, D.Stream_wait_event { stream; event } ->
      (* The waiting stream acquires the event and re-publishes on its
         own completion key, so a later host synchronization on this
         stream transitively covers the event's stream. *)
      let caller = T.current_fiber t.tsan in
      let f = fiber_of t stream in
      T.switch_to_fiber t.tsan f;
      T.happens_after t.tsan (event_key event.D.eid);
      T.happens_before t.tsan (stream_key stream.D.sid);
      T.switch_to_fiber t.tsan caller
  | D.Post, D.Stream_query (s, true) ->
      t.counters.Counters.syncs <- t.counters.Counters.syncs + 1;
      sync_probe "cudaStreamQuery=ready" (Fmt.str "stream#%d" s.D.sid);
      T.happens_after t.tsan (stream_key s.D.sid)
  | D.Post, D.Event_query (e, true) ->
      t.counters.Counters.syncs <- t.counters.Counters.syncs + 1;
      sync_probe "cudaEventQuery=ready" (Fmt.str "event#%d" e.D.eid);
      T.happens_after t.tsan (event_key e.D.eid)
  | D.Post, D.Stream_destroy s ->
      (* Destroy completes outstanding work: host-synchronizing. *)
      sync_probe "cudaStreamDestroy" (Fmt.str "stream#%d" s.D.sid);
      T.happens_after t.tsan (stream_key s.D.sid)
  | D.Pre, D.Host_func { stream; label } ->
      (* An ordering point on the stream: the callback runs after all
         prior stream work and blocks later stream work. Its body's own
         accesses execute on a driver thread CuSan does not model. *)
      device_op t stream ~label:("hostFunc:" ^ label) ~ranges:[]
        ~host_syncs:false
  | D.Pre, D.Free { async = false; _ } ->
      (* cudaFree synchronizes the whole device before releasing. *)
      sync_all_streams t
  | _ -> ()

let attach ?(annotation = Whole) ?max_range_bytes ~tsan ~dev () =
  let t =
    {
      tsan;
      dev;
      counters = Counters.create ();
      fibers = Hashtbl.create 8;
      host = T.current_fiber tsan;
      annotation;
      max_range_bytes;
    }
  in
  (* The default stream is always tracked (paper, Section IV-A). *)
  ignore (fiber_of t (D.default_stream dev));
  D.add_hook dev (fun phase ev -> on_event t phase ev);
  t

let counters t = t.counters
