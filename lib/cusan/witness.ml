(* Witness solving for race candidates, after Liew/Cogumbreiro/Lange's
   "Provable GPU Data-Races": a static race report is upgraded to a
   *proof* by exhibiting a concrete configuration — thread pair, launch
   width, scalar-parameter valuation — under which the interpreter
   really makes two conflicting accesses.

   The solver is a deterministic bounded enumeration over the
   [Linform] overlap constraints' small-model corner: launch widths 2
   and 4 (plus [k+2] for every thread id [k] a pure-constant uniqueness
   guard pins, so guarded candidates get their designated thread),
   uniform scalar valuations 0..3 (0 is what collapses symbolic
   strides, [p[tid*s]]), and thread pairs drawn from {0,1,2,3} plus the
   pinned ids. Must-verdicts already carry a {0,1} witness by
   construction, so the very first configuration tried — ntid 2,
   valuation 0, pair (0,1) — validates them in one shot.

   Validation replays exactly the two candidate threads in isolation
   through {!Kir.Interp.thread_footprint} against fresh zeroed device
   buffers (both threads observe the same initial memory; accesses in
   the same dynamic barrier phase are unordered between threads — the
   same oracle the zero-false-negative property tests use). The
   candidate is proved when the replays contain a same-phase
   overlapping byte range on the reported parameter with at least one
   write. Dynamic phases are matched against each other, not against
   the static phase number: a barrier inside a loop advances the
   dynamic counter more often than the static split, and the proof
   obligation is "these two threads really collide", not "the static
   phase arithmetic is pretty".

   Replay failures (device faults, division by zero under a hostile
   valuation, out-of-window indexing) skip that configuration; a
   candidate with no validating configuration stays [Unproved] with a
   diagnostic, which downgrades a Must to May in witness mode — the
   zero-false-positive direction. *)

module RA = Race_analysis

type t = {
  wtid1 : int;
  wtid2 : int;
  wntid : int; (* launch width of the validated replay *)
  wparams : (string * int) list; (* scalar-parameter valuation *)
  wbyte : int; (* conflicting byte, relative to the pointer argument *)
  wphase : int; (* dynamic barrier phase of the collision *)
  wkinds : string; (* "W/W" or "R/W" as observed by the replay *)
}

type outcome = Proved of t | Unproved of string

let describe w =
  Fmt.str "threads (%d,%d) of ntid %d%s collide at byte %d in phase %d (%s)"
    w.wtid1 w.wtid2 w.wntid
    (match w.wparams with
    | [] -> ""
    | ps ->
        Fmt.str " with %s"
          (String.concat ", "
             (List.map (fun (n, v) -> Fmt.str "%s=%d" n v) ps)))
    w.wbyte w.wphase w.wkinds

(* Each pointer argument points [guard_elts] f64 elements into its own
   fresh allocation, so the small negative and positive indices the
   enumerated valuations produce stay inside the window. *)
let buf_elts = 192
let guard_elts = 32

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

(* Thread ids pinned by a pure-constant uniqueness guard on either side
   of the pair: the only threads that execute a guarded access. *)
let pinned_tids (r : RA.race) =
  List.filter_map
    (fun (a : RA.access) ->
      match a.RA.unique with
      | Some { RA.gps = []; gnt = 0; gk } when gk >= 0 -> Some gk
      | _ -> None)
    [ r.RA.a1; r.RA.a2 ]

(* Replay one thread in isolation against fresh zeroed buffers and
   normalize its footprint to (param index, byte offset from the
   argument pointer, event). *)
let footprint m ~entry ~(params : (string * Kir.Ir.ty) list) ~ntid ~v tid =
  let allocs =
    List.map
      (fun (pname, ty) ->
        match ty with
        | Kir.Ir.Pointer ->
            Some
              (Memsim.Heap.alloc ~tag:("witness:" ^ pname)
                 Memsim.Space.Device (buf_elts * 8))
        | Kir.Ir.Scalar -> None)
      params
  in
  Fun.protect
    ~finally:(fun () -> List.iter (Option.iter Memsim.Heap.free) allocs)
    (fun () ->
      let args =
        Array.of_list
          (List.map
             (function
               | Some base ->
                   Kir.Interp.VPtr (Memsim.Ptr.add base ~elt:8 guard_elts)
               | None -> Kir.Interp.VInt v)
             allocs)
      in
      let ranges =
        List.concat
          (List.mapi
             (fun i -> function
               | Some base -> [ (i, Memsim.Ptr.addr base) ]
               | None -> [])
             allocs)
      in
      let evs = Kir.Interp.thread_footprint m ~name:entry ~args ~tid ~ntid in
      List.filter_map
        (fun (ev : Kir.Interp.footprint_event) ->
          match
            List.find_opt
              (fun (_, base) ->
                ev.Kir.Interp.ev_addr >= base
                && ev.Kir.Interp.ev_addr < base + (buf_elts * 8))
              ranges
          with
          | Some (p, base) ->
              Some (p, ev.Kir.Interp.ev_addr - (base + (guard_elts * 8)), ev)
          | None -> None)
        evs)

(* Same-dynamic-phase overlapping pairs between two normalized
   footprints ([?param] restricts to one parameter), in fp1's program
   order: (kinds, param, byte, dynamic phase). *)
let conflicts ?param fp1 fp2 =
  List.concat_map
    (fun (p1, off1, (e1 : Kir.Interp.footprint_event)) ->
      if (match param with Some p -> p1 <> p | None -> false) then []
      else
        List.filter_map
          (fun (p2, off2, (e2 : Kir.Interp.footprint_event)) ->
            if
              p2 = p1
              && e1.Kir.Interp.ev_phase = e2.Kir.Interp.ev_phase
              && (e1.Kir.Interp.ev_write || e2.Kir.Interp.ev_write)
              && off1 < off2 + e2.Kir.Interp.ev_bytes
              && off2 < off1 + e1.Kir.Interp.ev_bytes
            then
              Some
                ( (if e1.Kir.Interp.ev_write && e2.Kir.Interp.ev_write then
                     "W/W"
                   else "R/W"),
                  p1,
                  max off1 off2,
                  e1.Kir.Interp.ev_phase )
            else None)
          fp2)
    fp1

(* Does ANY thread pair of one whole launch collide on any pointer
   argument? The repair oracle: a fixed kernel must replay conflict-free
   at every configuration the witness engine incriminated. *)
let replay_conflicts (m : Kir.Ir.modul) ~entry ~ntid ~v : bool =
  match Kir.Ir.find_func m entry with
  | None -> false
  | Some f ->
      let params = f.Kir.Ir.params in
      let fps =
        List.init ntid (fun tid -> footprint m ~entry ~params ~ntid ~v tid)
      in
      let rec pairs = function
        | [] -> false
        | fp :: rest ->
            List.exists (fun fp' -> conflicts fp fp' <> []) rest
            || pairs rest
      in
      pairs fps

let prove (m : Kir.Ir.modul) ~entry (r : RA.race) : outcome =
  match Kir.Ir.find_func m entry with
  | None -> Unproved "entry kernel not found"
  | Some f ->
      let params = f.Kir.Ir.params in
      let scalar_names =
        List.filter_map
          (fun (n, ty) -> match ty with Kir.Ir.Scalar -> Some n | _ -> None)
          params
      in
      let pinned = List.filter (fun k -> k <= 64) (pinned_tids r) in
      let ntids = dedup ([ 2; 4 ] @ List.map (fun k -> max 2 (k + 2)) pinned) in
      let tried = ref 0 and last_err = ref None in
      let exception Found of t in
      (try
         List.iter
           (fun ntid ->
             let tids =
               List.sort compare
                 (List.filter (fun t -> t >= 0 && t < ntid)
                    (dedup ([ 0; 1; 2; 3 ] @ pinned)))
             in
             List.iter
               (fun v ->
                 List.iter
                   (fun t1 ->
                     List.iter
                       (fun t2 ->
                         if t1 < t2 then begin
                           incr tried;
                           match
                             let fp1 = footprint m ~entry ~params ~ntid ~v t1 in
                             let fp2 = footprint m ~entry ~params ~ntid ~v t2 in
                             conflicts ~param:r.RA.param fp1 fp2
                           with
                           | exception e ->
                               last_err := Some (Printexc.to_string e)
                           | [] -> ()
                           | cs ->
                               (* prefer a collision of the reported
                                  pair kind; any collision on the
                                  parameter still proves a race *)
                               let k, _, byte, phase =
                                 match
                                   List.find_opt
                                     (fun (k, _, _, _) -> k = r.RA.kinds)
                                     cs
                                 with
                                 | Some c -> c
                                 | None -> List.hd cs
                               in
                               raise
                                 (Found
                                    {
                                      wtid1 = t1;
                                      wtid2 = t2;
                                      wntid = ntid;
                                      wparams =
                                        List.map (fun n -> (n, v)) scalar_names;
                                      wbyte = byte;
                                      wphase = phase;
                                      wkinds = k;
                                    })
                         end)
                       tids)
                   tids)
               [ 0; 1; 2; 3 ])
           ntids;
         Unproved
           (Fmt.str "no witness across %d configurations%s" !tried
              (match !last_err with
              | Some e -> " (last replay error: " ^ e ^ ")"
              | None -> ""))
       with Found w -> Proved w)
