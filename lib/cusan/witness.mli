(** Witness solving for static race candidates: upgrade a
    {!Race_analysis} report to a machine-checked proof by exhibiting a
    concrete configuration under which the {!Kir.Interp} replay really
    makes two conflicting accesses.

    The solver deterministically enumerates the small-model corner of
    the [Linform] overlap constraints (launch widths 2/4 plus
    guard-pinned widths, uniform scalar valuations 0..3, thread pairs
    from {0..3} and the pinned ids) and validates each candidate by
    replaying exactly the two threads in isolation against fresh zeroed
    device buffers: a proof is a same-dynamic-phase overlapping byte
    range on the reported parameter with at least one write — the same
    two-thread oracle the zero-false-negative property tests use.
    Must-verdicts carry a {0,1} witness by construction and validate on
    the first configuration tried. *)

type t = {
  wtid1 : int;
  wtid2 : int;  (** the colliding thread pair, [wtid1 < wtid2] *)
  wntid : int;  (** launch width of the validated replay *)
  wparams : (string * int) list;  (** scalar-parameter valuation *)
  wbyte : int;  (** conflicting byte, relative to the pointer argument *)
  wphase : int;  (** dynamic barrier phase of the collision *)
  wkinds : string;  (** ["W/W"] or ["R/W"] as observed by the replay *)
}

type outcome =
  | Proved of t  (** the replay confirmed the collision *)
  | Unproved of string
      (** no enumerated configuration validated; the diagnostic names
          the configuration count and the last replay error, if any *)

val describe : t -> string
(** e.g. ["threads (0,1) of ntid 2 collide at byte 8 in phase 0 (R/W)"]. *)

val replay_conflicts : Kir.Ir.modul -> entry:string -> ntid:int -> v:int -> bool
(** Whole-launch dynamic oracle: replay every thread of an [ntid]-wide
    launch in isolation (scalar parameters all set to [v]) and report
    whether ANY thread pair makes a same-dynamic-phase overlapping
    access with at least one write, on any pointer argument. {!Repair}
    uses this to reject candidate fixes that still collide at the
    configurations the witness engine incriminated. [false] when the
    entry kernel is missing. *)

val prove : Kir.Ir.modul -> entry:string -> Race_analysis.race -> outcome
(** Solve and validate one candidate. Deterministic: the first
    validating configuration in enumeration order is returned, so
    witness tuples are stable across runs. Allocates (and frees)
    scratch buffers on the simulated device heap. *)
