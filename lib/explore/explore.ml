(* Stateless model checking of the cooperative scheduler's schedule
   space: sleep-set DPOR (dynamic partial-order reduction, after
   Flanagan & Godefroid) over whole-program runs.

   The detector observes exactly one deterministic interleaving per
   run, so a race whose exposure needs a different fiber/stream/MPI
   ordering is silently missed. This engine enumerates the interleaving
   space systematically instead: it executes the program under a
   recording picker (see {!Sched.Scheduler.picker}), derives backtrack
   points at pairs of *dependent* scheduling slices — overlapping
   memory extents with at least one write, MPI sends racing for the
   same matching order, wildcard receives — and re-executes with forced
   schedule prefixes until the space is exhausted or a budget is hit.

   The engine is generic over the program: callers provide [run], which
   executes one schedule under the given picker and reports the ops the
   slices performed through [record_op]. It never touches harness or
   detector state itself, so it layers under any runner (the testsuite
   glue lives in [Testsuite.Explore_runner]).

   Terminology: decision i is the i-th picker call; the *slice* of
   decision i is everything the chosen task does until the next
   decision. Dependency is judged between slices, the unit the
   scheduler can actually reorder. *)

(* --- the dependency relation ------------------------------------------ *)

type op =
  | Mem of { write : bool; addr : int; len : int }
      (* a detector-checked host/device access extent *)
  | Send of { src : int; dst : int; tag : int }
      (* an eager deposit: racing sends to one dst contend for match
         order at the receiver *)
  | Recv of { owner : int; src : int; tag : int }
      (* a receive/wait/test by [owner]; [src]/[tag] may be -1 (ANY) *)

let sel_matches ~sel ~actual = sel < 0 || sel = actual

(* Conservative dependency: could reordering the two ops change what
   the detector observes? Over-approximation is safe — it only costs
   extra (deduplicated) runs. *)
let ops_dependent a b =
  match (a, b) with
  | Mem x, Mem y ->
      (x.write || y.write)
      && x.addr < y.addr + y.len
      && y.addr < x.addr + x.len
  | Send x, Send y -> x.dst = y.dst
  | Send s, Recv r | Recv r, Send s ->
      r.owner = s.dst
      && sel_matches ~sel:r.src ~actual:s.src
      && sel_matches ~sel:r.tag ~actual:s.tag
  | Recv x, Recv y -> x.owner = y.owner
  | Mem _, (Send _ | Recv _) | (Send _ | Recv _), Mem _ -> false

let slices_dependent xs ys =
  List.exists (fun a -> List.exists (fun b -> ops_dependent a b) ys) xs

(* --- one run's record ------------------------------------------------- *)

type slice = {
  sl_chosen : int; (* task id resumed at this decision *)
  sl_candidates : int list; (* runnable ids, FIFO order *)
  mutable sl_ops : op list; (* ops of the slice, reverse order *)
}

type record = {
  mutable slices : slice list; (* reverse decision order *)
  mutable sleep : (int * op list) list; (* sleeping task id, its slice *)
  forced : int array; (* schedule prefix to replay *)
  mutable depth : int; (* decisions taken so far *)
  mutable infeasible : bool; (* forced task wasn't runnable *)
  mutable redundant : bool; (* had to wake a sleeping task *)
  mutable sleep_skips : int; (* times the sleep set redirected a pick *)
}

(* Contiguous same-kind accesses (an instrumented host loop walking a
   buffer) coalesce into one extent, keeping the pairwise dependency
   check over slices cheap. *)
let record_op r op =
  match r.slices with
  | [] -> ()
  | sl :: _ -> (
      match (op, sl.sl_ops) with
      | ( Mem { write = w2; addr = a2; len = l2 },
          Mem { write = w1; addr = a1; len = l1 } :: rest )
        when w1 = w2 && a2 = a1 + l1 ->
          sl.sl_ops <- Mem { write = w1; addr = a1; len = l1 + l2 } :: rest
      | _ -> sl.sl_ops <- op :: sl.sl_ops)

(* Retire the just-completed slice: executing a slice dependent with a
   sleeping task's recorded slice wakes that task (classic sleep-set
   maintenance), as does scheduling the task itself. *)
let retire_last r =
  match r.slices with
  | [] -> ()
  | sl :: _ ->
      r.sleep <-
        List.filter
          (fun (tid, ops) ->
            tid <> sl.sl_chosen && not (slices_dependent ops sl.sl_ops))
          r.sleep

let index_of id cands =
  let n = Array.length cands in
  let rec go i =
    if i >= n then None
    else if cands.(i).Sched.Scheduler.c_id = id then Some i
    else go (i + 1)
  in
  go 0

(* The recording/replaying picker: follow the forced prefix exactly,
   then fall back to FIFO steered away from sleeping tasks. Every
   decision (chosen task, enabled set) is recorded for the backtrack
   analysis. *)
let make_picker r : Sched.Scheduler.picker =
 fun ~step:_ cands ->
  retire_last r;
  let d = r.depth in
  let choice =
    if d < Array.length r.forced then
      match index_of r.forced.(d) cands with
      | Some i -> i
      | None ->
          (* The prefix replays a deterministic parent run, so this
             should be unreachable; degrade to FIFO and mark the run so
             it is never used for backtracking. *)
          r.infeasible <- true;
          0
    else begin
      let n = Array.length cands in
      let asleep id = List.mem_assoc id r.sleep in
      let rec first_awake i =
        if i >= n then None
        else if asleep cands.(i).Sched.Scheduler.c_id then first_awake (i + 1)
        else Some i
      in
      match first_awake 0 with
      | Some 0 -> 0
      | Some i ->
          r.sleep_skips <- r.sleep_skips + 1;
          i
      | None ->
          (* Every enabled task sleeps: the subtree is already covered;
             finish the run FIFO and mark it redundant. *)
          r.redundant <- true;
          0
    end
  in
  r.depth <- d + 1;
  r.slices <-
    {
      sl_chosen = cands.(choice).Sched.Scheduler.c_id;
      sl_candidates =
        Array.to_list (Array.map (fun c -> c.Sched.Scheduler.c_id) cands);
      sl_ops = [];
    }
    :: r.slices;
  choice

(* --- frontier --------------------------------------------------------- *)

type node = { prefix : int list; seed_sleep : (int * op list) list }

type outcome = {
  trace : int list; (* the full decision trace, first decision first *)
  slices : slice array; (* decision order *)
  interesting : bool;
  infeasible : bool;
  redundant : bool;
  sleep_skips : int;
}

type stats = {
  runs : int; (* program executions performed *)
  distinct_traces : int; (* distinct complete decision traces seen *)
  exhausted : bool; (* frontier drained before the budget *)
  exposed_at : int option; (* 1-based run index that first exposed *)
  interesting_runs : int; (* runs the caller flagged (races found) *)
  branches : int; (* backtrack points pushed *)
  visited_hits : int; (* branches pruned by the prefix-visited table *)
  sleep_skips : int; (* picks redirected by sleep sets *)
  max_depth : int; (* longest decision trace *)
}

let exec_node ~run node =
  let r =
    {
      slices = [];
      sleep = node.seed_sleep;
      forced = Array.of_list node.prefix;
      depth = 0;
      infeasible = false;
      redundant = false;
      sleep_skips = 0;
    }
  in
  let interesting = run ~picker:(make_picker r) ~record_op:(record_op r) in
  retire_last r;
  let slices = Array.of_list (List.rev r.slices) in
  {
    trace = Array.to_list (Array.map (fun sl -> sl.sl_chosen) slices);
    slices;
    interesting;
    infeasible = r.infeasible;
    redundant = r.redundant;
    sleep_skips = r.sleep_skips;
  }

(* Backtrack points of a completed run: for every dependent pair of
   slices (i, j) of different tasks where task(j) was already runnable
   at decision i and slice j is task(j)'s *next* slice after i, the
   reversal "run task(j) at i instead" is a schedule worth exploring.
   The branch's sleep set is seeded with slice i, so the child does not
   re-explore the parent's subtree from that state. *)
let branches_of outcome =
  if outcome.infeasible then []
  else begin
    let sl = outcome.slices in
    let m = Array.length sl in
    let prefix_to i =
      (* decisions 0..i-1 as a forward list *)
      let rec go k acc = if k < 0 then acc else go (k - 1) (sl.(k).sl_chosen :: acc) in
      go (i - 1) []
    in
    let out = ref [] in
    for j = 0 to m - 1 do
      let tj = sl.(j).sl_chosen in
      (* walk i backwards from j-1 until tj's previous slice: past that
         point, reordering slice j to position i is not a single
         adjacent reversal of tj's next step. *)
      let rec scan i =
        if i < 0 then ()
        else if sl.(i).sl_chosen = tj then ()
        else begin
          if
            List.mem tj sl.(i).sl_candidates
            && slices_dependent sl.(i).sl_ops sl.(j).sl_ops
          then
            out :=
              {
                prefix = prefix_to i @ [ tj ];
                seed_sleep = [ (sl.(i).sl_chosen, sl.(i).sl_ops) ];
              }
              :: !out;
          scan (i - 1)
        end
      in
      scan (j - 1)
    done;
    List.rev !out
  end

let explore ?(budget = 512) ?(workers = 1) ~run () =
  let visited : (int list, unit) Hashtbl.t = Hashtbl.create 64 in
  let traces : (int list, unit) Hashtbl.t = Hashtbl.create 64 in
  let frontier = ref [ { prefix = []; seed_sleep = [] } ] in
  Hashtbl.replace visited [] ();
  let runs = ref 0 in
  let interesting_runs = ref 0 in
  let exposed_at = ref None in
  let branches = ref 0 in
  let visited_hits = ref 0 in
  let sleep_skips = ref 0 in
  let max_depth = ref 0 in
  let pool = if workers > 1 then Some (Pool.create ~workers) else None in
  let exec_batch nodes =
    match pool with
    | Some p -> Pool.map_pool p (fun n -> exec_node ~run n) nodes
    | None -> List.map (fun n -> exec_node ~run n) nodes
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      while !frontier <> [] && !runs < budget do
        (* Take a worker-sized batch off the DFS stack; results are
           processed in input order, so exploration order — and with it
           every statistic — is independent of the worker count. *)
        let batch_size = max 1 (min workers (budget - !runs)) in
        let rec take k = function
          | x :: rest when k > 0 ->
              let xs, rest' = take (k - 1) rest in
              (x :: xs, rest')
          | rest -> ([], rest)
        in
        let batch, rest = take batch_size !frontier in
        frontier := rest;
        let outcomes = exec_batch batch in
        List.iter
          (fun (o : outcome) ->
            incr runs;
            sleep_skips := !sleep_skips + o.sleep_skips;
            max_depth := max !max_depth (Array.length o.slices);
            if not (Hashtbl.mem traces o.trace) then
              Hashtbl.replace traces o.trace ();
            if o.interesting then begin
              incr interesting_runs;
              if !exposed_at = None then exposed_at := Some !runs
            end;
            if not o.redundant then
              List.iter
                (fun b ->
                  if Hashtbl.mem visited b.prefix then incr visited_hits
                  else begin
                    Hashtbl.replace visited b.prefix ();
                    incr branches;
                    frontier := b :: !frontier
                  end)
                (branches_of o))
          outcomes
      done;
      {
        runs = !runs;
        distinct_traces = Hashtbl.length traces;
        exhausted = !frontier = [];
        exposed_at = !exposed_at;
        interesting_runs = !interesting_runs;
        branches = !branches;
        visited_hits = !visited_hits;
        sleep_skips = !sleep_skips;
        max_depth = !max_depth;
      })

(* --- record / replay primitives --------------------------------------- *)

(* FIFO-equivalent picker that logs every decision (reverse order) —
   the "record" half of schedule record/replay. *)
let recording_picker buf : Sched.Scheduler.picker =
 fun ~step:_ cands ->
  buf := cands.(0).Sched.Scheduler.c_id :: !buf;
  0

(* Replays a recorded decision trace, falling back to FIFO past its end
   (or if a decision is unreplayable — which a deterministic program
   never produces). *)
let replay_picker trace : Sched.Scheduler.picker =
  let forced = Array.of_list trace in
  let k = ref 0 in
  fun ~step:_ cands ->
    let d = !k in
    incr k;
    if d >= Array.length forced then 0
    else match index_of forced.(d) cands with Some i -> i | None -> 0

let pp_stats ppf s =
  Fmt.pf ppf "%d schedule%s, %s" s.runs
    (if s.runs = 1 then "" else "s")
    (if s.exhausted then "space exhausted" else "budget reached");
  match s.exposed_at with
  | Some k -> Fmt.pf ppf "; exposed at schedule %d" k
  | None -> ()
