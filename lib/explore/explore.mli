(** Stateless model checking of the cooperative scheduler's schedule
    space: sleep-set DPOR over whole-program runs.

    The engine repeatedly executes a program under a recording
    {!Sched.Scheduler.picker}, derives backtrack points at dependent
    slice pairs (overlapping memory extents with a write, MPI sends
    contending for match order, wildcard receives), and re-executes
    with forced schedule prefixes until the space is exhausted or a
    budget is hit. It is generic over the program: callers provide
    [run], which executes one schedule and feeds back the
    dependency-relevant ops; the testsuite glue lives in
    [Testsuite.Explore_runner]. *)

type op =
  | Mem of { write : bool; addr : int; len : int }
      (** a detector-checked access extent *)
  | Send of { src : int; dst : int; tag : int }
      (** an eager deposit contending for match order at [dst] *)
  | Recv of { owner : int; src : int; tag : int }
      (** a receive/wait/test by rank [owner]; [src]/[tag] may be [-1]
          for ANY *)

val ops_dependent : op -> op -> bool
(** Could reordering the two ops change what the detector observes?
    Conservative (over-approximate): extra dependencies only cost
    extra, deduplicated runs. *)

type stats = {
  runs : int;  (** program executions performed *)
  distinct_traces : int;  (** distinct complete decision traces *)
  exhausted : bool;  (** frontier drained before the budget *)
  exposed_at : int option;  (** 1-based run index that first exposed *)
  interesting_runs : int;  (** runs the caller flagged (races found) *)
  branches : int;  (** backtrack points pushed *)
  visited_hits : int;  (** branches pruned by the visited table *)
  sleep_skips : int;  (** picks redirected by sleep sets *)
  max_depth : int;  (** longest decision trace *)
}

val explore :
  ?budget:int ->
  ?workers:int ->
  run:
    (picker:Sched.Scheduler.picker ->
    record_op:(op -> unit) ->
    bool) ->
  unit ->
  stats
(** [explore ~run ()] enumerates schedules of the program behind [run].

    [run ~picker ~record_op] must execute the program once with
    [picker] installed as the scheduler's dispatch policy and call
    [record_op] for every dependency-relevant event of the run, then
    return whether the run was interesting (exposed a race). It is
    called repeatedly — possibly on pool worker domains when [workers]
    > 1 — and must be self-contained per call, like a testsuite case
    under the sharded runner.

    [budget] caps executions (default 512). Results and statistics are
    independent of [workers]: batches come off the DFS stack in
    deterministic order and are merged in input order. *)

val pp_stats : Format.formatter -> stats -> unit
(** ["N schedules, space exhausted; exposed at schedule K"]. *)

(** {1 Record / replay}

    The primitive pair behind schedule reproducibility: record a run's
    decision trace, then force the identical schedule in a later run.
    For a deterministic program, replaying a recorded trace must
    reproduce the run — including report text — byte for byte. *)

val recording_picker : int list ref -> Sched.Scheduler.picker
(** FIFO-equivalent picker that prepends each chosen task id to the
    given list (reverse decision order). *)

val replay_picker : int list -> Sched.Scheduler.picker
(** Picker that replays a recorded trace (forward order), falling back
    to FIFO past its end. *)
