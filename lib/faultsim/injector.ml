(* Global injection state. The simulators call [probe] at each
   registered site; when disarmed it is a constant [None] so the happy
   path stays bit-identical to a build without fault injection.

   Determinism: occurrence counters are keyed by (site, rank) and the
   PRNG is consumed only for [Prob] rules, in probe order. Since the
   scheduler is deterministic, probe order is deterministic, so a
   (seed, plan) pair replays exactly. Every firing decision is recorded
   in a replay log the harness surfaces in its run result. *)

type decision = {
  d_site : Site.t;
  d_rank : int; (* -1 when outside any rank task *)
  d_occurrence : int; (* per-(site,rank) count, 1-based *)
  d_action : Plan.action;
}

type armed = {
  seed : int;
  plan : Plan.t;
  prng : Prng.t;
  counts : (Site.t * int, int) Hashtbl.t;
  mutable log : decision list; (* reverse order *)
}

(* Domain-local: each domain of a sharded runner arms its own injector,
   so concurrent cases draw from independent PRNGs and occurrence
   counters — (seed, plan) replay is per-run, never cross-run. *)
let state : armed option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let arm ~seed ~plan () =
  Domain.DLS.set state
    (Some
       {
         seed;
         plan;
         prng = Prng.create seed;
         counts = Hashtbl.create 32;
         log = [];
       })

let disarm () = Domain.DLS.set state None

let enabled () = Option.is_some (Domain.DLS.get state)

let seed () = Option.map (fun a -> a.seed) (Domain.DLS.get state)

let log () =
  match Domain.DLS.get state with None -> [] | Some a -> List.rev a.log

let injected_count () =
  match Domain.DLS.get state with None -> 0 | Some a -> List.length a.log

(* The MPI simulator names rank tasks "rank<N>"; outside the scheduler
   (or in an auxiliary task) there is no rank to attribute to. *)
let current_rank () =
  match Sched.Scheduler.self () with
  | name -> (try Scanf.sscanf name "rank%d" Fun.id with Scanf.Scan_failure _ | Failure _ | End_of_file -> -1)
  | exception Sched.Scheduler.Not_in_scheduler -> -1

let rule_matches a ~site ~rank ~occurrence r =
  r.Plan.site = site
  && (match r.Plan.rank with None -> true | Some rk -> rk = rank)
  &&
  match r.Plan.which with
  | Plan.Nth n -> occurrence = n
  | Plan.Every k -> occurrence mod k = 0
  | Plan.Prob p -> Prng.float a.prng < p

let probe ~site ?rank () =
  match Domain.DLS.get state with
  | None -> None
  | Some a ->
      let rank = match rank with Some r -> r | None -> current_rank () in
      let key = (site, rank) in
      let occurrence = (try Hashtbl.find a.counts key with Not_found -> 0) + 1 in
      Hashtbl.replace a.counts key occurrence;
      (* First match wins; later rules never consume PRNG draws once an
         earlier one fires, keeping replay independent of plan tail. *)
      let rec first = function
        | [] -> None
        | r :: rest ->
            if rule_matches a ~site ~rank ~occurrence r then Some r.Plan.action
            else first rest
      in
      (match first a.plan with
      | None -> None
      | Some action ->
          a.log <-
            { d_site = site; d_rank = rank; d_occurrence = occurrence;
              d_action = action }
            :: a.log;
          if Trace.Recorder.on () then
            Trace.Recorder.instant ~cat:"fault"
              ~args:
                [
                  ("action", Plan.action_to_string action);
                  ("occurrence", string_of_int occurrence);
                  ("rank", string_of_int rank);
                ]
              (Site.to_string site);
          Some action)

exception Rank_killed of { rank : int; site : Site.t }
(* A [Crash] firing: raised at the probe site and left to unwind the
   whole rank task. The MPI layer's per-rank supervisor catches it,
   marks the rank dead on its communicators (failure propagation), and
   ends the task without running MPI_Finalize — the harness records the
   failure and a post-mortem on the way through. *)

(* Kill the calling rank: emit the crash instant on the dying rank's
   track (so Chrome traces show *why* the rank ended) and unwind. *)
let crash ~site () =
  let rank = current_rank () in
  if Trace.Recorder.on () then
    Trace.Recorder.instant ~cat:"crash"
      ~args:[ ("site", Site.to_string site); ("rank", string_of_int rank) ]
      "rank_crashed";
  raise (Rank_killed { rank; site })

(* An injected hang: block on a condition nothing ever signals. The
   scheduler's deadlock detector or watchdog turns this into a
   diagnostic instead of a wedged process. The condition is created per
   hang — conds carry waiter lists, so sharing one across schedulers
   (domains) would leak waiters between runs. *)
let hang ~site () =
  Sched.Scheduler.wait
    ~reason:(Printf.sprintf "injected hang at %s" (Site.to_string site))
    (Sched.Scheduler.cond "fault:hang")

let pp_decision ppf d =
  Fmt.pf ppf "%a@@rank%d#%d:%s" Site.pp d.d_site d.d_rank d.d_occurrence
    (Plan.action_to_string d.d_action)
