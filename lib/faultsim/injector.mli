(** Global fault-injection state.

    Simulators call {!probe} at each registered site. Disarmed, a probe
    is a constant [None] — the happy path is bit-identical to a build
    without injection. Armed, decisions are a pure function of
    [(seed, plan)] and the deterministic probe order, and every firing
    is recorded in a replay log. *)

type decision = {
  d_site : Site.t;
  d_rank : int;  (** [-1] when outside any rank task *)
  d_occurrence : int;  (** per-(site, rank) count, 1-based *)
  d_action : Plan.action;
}

val arm : seed:int -> plan:Plan.t -> unit -> unit
val disarm : unit -> unit
val enabled : unit -> bool
val seed : unit -> int option

val probe : site:Site.t -> ?rank:int -> unit -> Plan.action option
(** Count this occurrence and return the action of the first matching
    rule, if any. [rank] defaults to the calling task's rank (parsed
    from the scheduler task name), [-1] outside rank tasks. *)

val hang : site:Site.t -> unit -> unit
(** Block the calling task forever, with a labelled reason so the
    deadlock detector / watchdog names the injected hang. *)

exception Rank_killed of { rank : int; site : Site.t }
(** A [Crash] action firing: the rank is dead. Raised by {!crash} and
    left to unwind the entire rank task; the MPI layer catches it,
    propagates the failure to peers ([MPI_ERR_PROC_FAILED]), and skips
    the dead rank's finalize. *)

val crash : site:Site.t -> unit -> unit
(** Kill the calling rank: record the crash instant on its trace track
    and raise {!Rank_killed}. *)

val log : unit -> decision list
(** Firing decisions so far, in probe order. *)

val injected_count : unit -> int

val pp_decision : Format.formatter -> decision -> unit
