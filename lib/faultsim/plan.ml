(* Injection plans: an ordered list of rules matched against each probe.
   The first matching rule decides the action. Rules select a site, an
   optional rank, and an occurrence predicate (nth occurrence, every
   k-th, or a seeded probability draw).

   Plans parse from a compact spec string so they travel on a command
   line and in a reproduction one-liner:

     SITE[@RANK][#NTH | *EVERY | %PROB][:ACTION]

   comma-separated, plus an optional "seed=N" token anywhere in the
   list. Examples:

     cuda_malloc@1#2:fail        second cudaMalloc on rank 1 fails
     kernel_launch%0.1:fail      each launch fails with prob. 0.1
     mpi_send*3:abort            every 3rd send aborts the rank
     mpi_wait#1:hang,seed=42     first wait hangs; PRNG seeded with 42

   Hard-failure actions (PR 5): "crash" kills the calling rank outright
   (the process dies — peers observe MPI_ERR_PROC_FAILED); "drop" loses
   the message a send site was about to deposit; "delayN" hides that
   message from matching for N progress rounds (out-of-order delivery);
   "wedge" makes the CUDA stream behind the site permanently
   unresponsive (sync points surface a sticky error). *)

type action =
  | Fail
  | Abort
  | Hang
  | Crash (* terminal: the rank dies at the probe site *)
  | Drop (* transport: the affected message is lost *)
  | Delay of int (* transport: delivery hidden for N progress rounds *)
  | Wedge (* device: the stream behind the site never completes again *)

type which = Nth of int | Every of int | Prob of float

type rule = {
  site : Site.t;
  rank : int option; (* None = any rank *)
  which : which;
  action : action;
}

type t = rule list

let action_to_string = function
  | Fail -> "fail"
  | Abort -> "abort"
  | Hang -> "hang"
  | Crash -> "crash"
  | Drop -> "drop"
  | Delay n -> Printf.sprintf "delay%d" n
  | Wedge -> "wedge"

let action_of_string s =
  match s with
  | "fail" -> Some Fail
  | "abort" -> Some Abort
  | "hang" -> Some Hang
  | "crash" -> Some Crash
  | "drop" -> Some Drop
  | "wedge" -> Some Wedge
  | _ ->
      let pre = "delay" in
      let pl = String.length pre in
      if String.length s > pl && String.sub s 0 pl = pre then
        match int_of_string_opt (String.sub s pl (String.length s - pl)) with
        | Some n when n >= 1 -> Some (Delay n)
        | _ -> None
      else None

let which_to_string = function
  | Nth n -> Printf.sprintf "#%d" n
  | Every k -> Printf.sprintf "*%d" k
  | Prob p -> Printf.sprintf "%%%g" p

let rule_to_string r =
  Printf.sprintf "%s%s%s:%s" (Site.to_string r.site)
    (match r.rank with None -> "" | Some rk -> Printf.sprintf "@%d" rk)
    (which_to_string r.which)
    (action_to_string r.action)

let to_string plan = String.concat "," (List.map rule_to_string plan)

(* Split [s] at the first occurrence of any character in [seps];
   returns (head, None) when no separator is present. *)
let split_first seps s =
  let n = String.length s in
  let rec scan i =
    if i >= n then (s, None)
    else if String.contains seps s.[i] then
      (String.sub s 0 i, Some (s.[i], String.sub s (i + 1) (n - i - 1)))
    else scan (i + 1)
  in
  scan 0

let parse_rule token =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* head, action_part =
    match String.index_opt token ':' with
    | Some i ->
        Ok
          ( String.sub token 0 i,
            String.sub token (i + 1) (String.length token - i - 1) )
    | None -> Ok (token, "fail")
  in
  let* action =
    match action_of_string action_part with
    | Some a -> Ok a
    | None ->
        err "unknown action %S in %S (want fail|abort|hang|crash|drop|delayN|wedge)"
          action_part token
  in
  let site_part, rest = split_first "@#*%" head in
  let* site =
    match Site.of_string site_part with
    | Some s -> Ok s
    | None ->
        err "unknown site %S in %S (want one of: %s)" site_part token
          (String.concat " " (List.map Site.to_string Site.all))
  in
  let int_of ?(min = 1) s label =
    match int_of_string_opt s with
    | Some n when n >= min -> Ok n
    | _ -> err "bad %s %S in %S" label s token
  in
  let parse_which sep value =
    match sep with
    | '#' -> Result.map (fun n -> Nth n) (int_of value "occurrence")
    | '*' -> Result.map (fun k -> Every k) (int_of value "period")
    | '%' -> (
        match float_of_string_opt value with
        | Some p when p >= 0. && p <= 1. -> Ok (Prob p)
        | _ -> err "bad probability %S in %S (want 0..1)" value token)
    | _ -> err "bad separator %C in %S" sep token
  in
  let* rank, which =
    match rest with
    | None -> Ok (None, Nth 1)
    | Some ('@', tail) -> (
        let rank_part, rest2 = split_first "#*%" tail in
        let* rk = int_of ~min:0 rank_part "rank" in
        match rest2 with
        | None -> Ok (Some rk, Nth 1)
        | Some (sep, value) ->
            Result.map (fun w -> (Some rk, w)) (parse_which sep value))
    | Some (sep, value) -> Result.map (fun w -> (None, w)) (parse_which sep value)
  in
  Ok { site; rank; which; action }

(* Parse a full spec: comma-separated rules, optionally with "seed=N"
   tokens mixed in. Returns the last seed seen (if any) and the plan. *)
let parse_spec spec =
  let tokens =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed acc = function
    | [] -> Ok (seed, List.rev acc)
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | Some i when String.sub tok 0 i = "seed" -> (
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            match int_of_string_opt v with
            | Some n -> go (Some n) acc rest
            | None -> Error (Printf.sprintf "bad seed %S" v))
        | _ -> (
            match parse_rule tok with
            | Ok r -> go seed (r :: acc) rest
            | Error _ as e -> e))
  in
  go None [] tokens

(* The full grammar, one example per action — `cutests --faults help`
   prints this, so the CLI and the parser can never drift apart. *)
let grammar_help () =
  String.concat "\n"
    [
      "fault-injection plan grammar:";
      "";
      "  SPEC  ::= RULE ( ',' RULE | ',' 'seed=' N )*";
      "  RULE  ::= SITE [ '@' RANK ] [ '#' NTH | '*' EVERY | '%' PROB ] \
       [ ':' ACTION ]";
      "";
      "  sites:   " ^ String.concat " " (List.map Site.to_string Site.all);
      "  which:   #N  exactly the N-th occurrence (default #1)";
      "           *K  every K-th occurrence";
      "           %P  each occurrence independently with probability P \
       (seeded)";
      "";
      "  actions (default fail):";
      "    fail    surface the site's natural error code / exception";
      "            e.g.  cuda_malloc@1#2:fail";
      "    abort   kill the calling rank with provenance (MPI_Abort-like)";
      "            e.g.  mpi_send*3:abort";
      "    hang    block the calling rank forever (watchdog diagnoses it)";
      "            e.g.  mpi_wait#1:hang,seed=42";
      "    crash   the rank dies at the site; peers observe \
       MPI_ERR_PROC_FAILED";
      "            e.g.  mpi_collective@1#3:crash";
      "    drop    the message this send was depositing is lost in \
       transport";
      "            e.g.  mpi_send@0#2:drop";
      "    delayN  the message is hidden from matching for N progress \
       rounds";
      "            e.g.  mpi_send%0.1:delay3";
      "    wedge   the CUDA stream behind the site never completes again;";
      "            sync points surface a sticky cudaErrorLaunchTimeout";
      "            e.g.  kernel_launch@0#2:wedge";
      "";
      "  drop/delay are transport actions: outside send sites they \
       degrade to";
      "  fail. wedge is a device action: at cuda_malloc (no stream) it \
       degrades";
      "  to fail; at MPI sites it degrades to fail.";
    ]
