(** Injection plans: ordered rules matched against each probe; the
    first matching rule decides the action. *)

type action =
  | Fail  (** surface the site's natural error (code / exception) *)
  | Abort  (** kill the calling rank with provenance *)
  | Hang  (** block the calling rank forever *)
  | Crash
      (** terminal: the rank dies at the probe site; peers observe
          [MPI_ERR_PROC_FAILED] (ULFM failure propagation) *)
  | Drop  (** transport: the message a send site deposits is lost *)
  | Delay of int
      (** transport: the message is hidden from matching for N progress
          rounds (out-of-order delivery) *)
  | Wedge
      (** device: the CUDA stream behind the site becomes permanently
          unresponsive; sync points surface a sticky error *)

type which =
  | Nth of int  (** exactly the n-th occurrence (1-based) *)
  | Every of int  (** every k-th occurrence *)
  | Prob of float  (** each occurrence independently, seeded draw *)

type rule = { site : Site.t; rank : int option; which : which; action : action }

type t = rule list

val parse_spec : string -> (int option * t, string) result
(** Parse a spec string:
    [SITE[@RANK][#NTH | *EVERY | %PROB][:ACTION]] comma-separated, with
    optional [seed=N] tokens mixed in. Defaults: any rank, [#1], [:fail].
    E.g. ["cuda_malloc@1#2:fail,mpi_wait#1:hang,seed=42"]. Returns the
    seed (if given) and the plan. *)

val to_string : t -> string
(** Round-trippable rendering (without any seed token). *)

val action_to_string : action -> string
val rule_to_string : rule -> string

val grammar_help : unit -> string
(** The full site/action grammar with one example per action — what
    [cutests --faults help] prints. Derived from {!Site.all} and this
    module, so CLI help can never drift from the parser. *)
