(* Splitmix64: a tiny, fast, statistically solid PRNG with a trivially
   seedable state. Chosen over [Random] so fault-injection decisions are
   stable across OCaml releases — a replay log plus (seed, plan) must
   reproduce a run forever. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform in [0, 1): top 53 bits scaled by 2^-53. *)
let float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. 0x1p-53
