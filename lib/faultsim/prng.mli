(** Seeded splitmix64 PRNG for reproducible fault-injection decisions.

    Independent of [Random] so decision streams never drift across
    OCaml releases: a [(seed, plan)] pair must replay a run forever. *)

type t

val create : int -> t
(** [create seed] starts a deterministic stream. *)

val next : t -> int64
(** Next 64 random bits. *)

val float : t -> float
(** Uniform draw in [\[0, 1)]. *)
