(* Registry of injectable sites. One constructor per API family the
   simulators guard; keeping this a closed enum means a plan can be
   validated up front instead of failing silently on a typo. *)

type t =
  | Cuda_malloc
  | Kernel_launch
  | Memcpy
  | Memset
  | Mpi_send
  | Mpi_recv
  | Mpi_wait
  | Mpi_collective
  | Mpi_win

let all =
  [
    Cuda_malloc;
    Kernel_launch;
    Memcpy;
    Memset;
    Mpi_send;
    Mpi_recv;
    Mpi_wait;
    Mpi_collective;
    Mpi_win;
  ]

let to_string = function
  | Cuda_malloc -> "cuda_malloc"
  | Kernel_launch -> "kernel_launch"
  | Memcpy -> "memcpy"
  | Memset -> "memset"
  | Mpi_send -> "mpi_send"
  | Mpi_recv -> "mpi_recv"
  | Mpi_wait -> "mpi_wait"
  | Mpi_collective -> "mpi_collective"
  | Mpi_win -> "mpi_win"

let of_string s = List.find_opt (fun site -> to_string site = s) all

let pp ppf site = Fmt.string ppf (to_string site)
