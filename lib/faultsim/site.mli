(** Injectable API sites. A closed enum so injection plans validate up
    front rather than failing silently on a typo. *)

type t =
  | Cuda_malloc  (** [cudaMalloc] / [cudaMallocManaged] / [cudaHostAlloc] *)
  | Kernel_launch  (** kernel launches *)
  | Memcpy  (** [cudaMemcpy] / [cudaMemcpyAsync] *)
  | Memset  (** [cudaMemset] / [cudaMemsetAsync] *)
  | Mpi_send  (** [MPI_Send] / [MPI_Ssend] / [MPI_Isend] *)
  | Mpi_recv  (** [MPI_Recv] / [MPI_Irecv] *)
  | Mpi_wait  (** [MPI_Wait] / [MPI_Waitall] *)
  | Mpi_collective  (** barrier, reductions, bcast, gather family *)
  | Mpi_win  (** one-sided window operations *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
