(* Runs an application under a tool configuration and collects the
   paper's measurements: wall time, resident memory at MPI_Finalize,
   race reports, MUST findings, and the Table I event counters.

   An application is a function over a per-rank environment holding the
   MPI context, the rank's CUDA device, and a [compile] hook standing in
   for building the binary with the CuSan compiler pass: it attaches the
   kernel access analysis when the flavor includes CuSan. *)

type env = {
  mpi : Mpisim.Mpi.ctx;
  dev : Cudasim.Device.t;
  compile : Cudasim.Kernel.t -> Cudasim.Kernel.t;
}

type app = env -> unit

type rank_state = {
  detector : Tsan.Detector.t option;
  device : Cudasim.Device.t;
  cusan : Cusan.Runtime.t option;
  must : Must.Runtime.t option;
  mutable rss : int; (* bytes, recorded at MPI_Finalize *)
}

(* Host-thread registry: maps scheduler task ids to the race-detector
   fiber and device representing that host thread. A scheduler resume
   hook retargets the detector's current fiber and the device's
   per-thread-default-stream key whenever the cooperative scheduler
   interleaves host threads. Domain-local, like the scheduler it
   mirrors: sharded runners keep independent registries. *)
let thread_registry_key :
    (int, Tsan.Detector.t option * Tsan.Detector.fiber option * Cudasim.Device.t)
    Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let thread_registry () = Domain.DLS.get thread_registry_key

let resume_hook _name id =
  match Hashtbl.find_opt (thread_registry ()) id with
  | Some (det, fiber, device) ->
      (match (det, fiber) with
      | Some d, Some f -> Tsan.Detector.activate_fiber d f
      | _ -> ());
      Cudasim.Device.set_thread_key device id
  | None -> ()

let join_key id = 0x4_0000_0000 + id

(* Run each function as an additional host thread of the calling rank
   and wait for all of them (spawn/join with the thread-creation and
   join synchronization semantics TSan gives pthreads). MPI and CUDA
   calls are legal inside — this is MPI_THREAD_MULTIPLE-style hybrid
   code, the "X" of MPI + X. *)
let parallel (env : env) fs =
  let rank = env.mpi.Mpisim.Mpi.rank in
  let parent_id = Sched.Scheduler.self_id () in
  let det, _, device =
    match Hashtbl.find_opt (thread_registry ()) parent_id with
    | Some entry -> entry
    | None -> (None, None, env.dev)
  in
  let remaining = ref (List.length fs) in
  let joined = Sched.Scheduler.cond (Fmt.str "rank%d:join" rank) in
  let child_ids = ref [] in
  List.iteri
    (fun i f ->
      (* The fiber is created in the parent, at spawn time: the child
         starts ordered after the parent's work so far — and not after
         whatever sibling happened to run last. *)
      let fiber =
        Option.map
          (fun d ->
            Tsan.Detector.fiber_create_inherit d
              (Fmt.str "host:thread%d" (i + 1)))
          det
      in
      Sched.Scheduler.spawn
        (Fmt.str "rank%d:thread%d" rank (i + 1))
        (fun () ->
          let id = Sched.Scheduler.self_id () in
          child_ids := id :: !child_ids;
          Hashtbl.replace (thread_registry ()) id (det, fiber, device);
          (match (det, fiber) with
          | Some d, Some fb -> Tsan.Detector.activate_fiber d fb
          | _ -> ());
          Cudasim.Device.set_thread_key device id;
          Fun.protect
            ~finally:(fun () ->
              (* pthread_join semantics: publish the thread's final state *)
              (match det with
              | Some d -> Tsan.Detector.happens_before d (join_key id)
              | None -> ());
              decr remaining;
              Sched.Scheduler.signal joined)
            f))
    fs;
  Sched.Scheduler.wait_until joined (fun () -> !remaining = 0);
  match det with
  | Some d -> List.iter (fun id -> Tsan.Detector.happens_after d (join_key id)) !child_ids
  | None -> ()

(* What a crashed rank leaves behind: where it died, what it was doing
   (flight-recorder tail), what it was still waiting for (pending
   requests), and which of its host threads never joined. The
   supervisor builds this at the crash site, before the rank's threads
   are reaped. *)
type post_mortem = {
  pm_rank : int;
  pm_site : string; (* the fault site whose [:crash] action fired *)
  pm_trace : string list; (* last flight-recorder events of the rank *)
  pm_pending : string list; (* pending (incomplete) requests at death *)
  pm_unjoined : string list; (* host threads of the rank never joined *)
}

let pp_post_mortem ppf pm =
  Fmt.pf ppf "rank %d killed at %s@," pm.pm_rank pm.pm_site;
  (match pm.pm_pending with
  | [] -> ()
  | reqs ->
      Fmt.pf ppf "  pending requests:@,";
      List.iter (fun r -> Fmt.pf ppf "    %s@," r) reqs);
  (match pm.pm_unjoined with
  | [] -> ()
  | ts ->
      Fmt.pf ppf "  unjoined host threads:@,";
      List.iter (fun t -> Fmt.pf ppf "    %s@," t) ts);
  match pm.pm_trace with
  | [] -> ()
  | lines ->
      Fmt.pf ppf "  last events:@,";
      List.iter (fun l -> Fmt.pf ppf "    %s@," l) lines

type result = {
  flavor : Flavor.t;
  nranks : int;
  wall_s : float; (* raw wall time of the whole (serialized) simulation *)
  proc_s : float;
      (* estimated per-process runtime with the paper's measurement
         semantics: host work (wall time minus the CPU cost of executing
         device-op bodies, an artifact of simulating the GPU on the
         host) plus the cost model's virtual device time, divided across
         ranks (real ranks run in parallel). *)
  device_exec_s : float; (* summed over ranks: real CPU time in op bodies *)
  device_virtual_s : float; (* summed over ranks: modelled device time *)
  rss_bytes : int; (* max over ranks *)
  races : (int * Tsan.Report.t) list; (* (rank, report) *)
  race_events : int;
  must_errors : Must.Errors.t list;
  tsan_counters : Tsan.Counters.t; (* rank 0, like Table I *)
  cuda_counters : Cusan.Counters.t; (* rank 0 *)
  tracked_read_bytes : int; (* summed over ranks, for Fig. 12 *)
  tracked_write_bytes : int;
  deadlock : (string * string) list option;
  failures : (int * string) list; (* (rank, what killed it), rank order *)
  post_mortems : post_mortem list; (* crashed ranks, in crash order *)
  stall : Sched.Scheduler.stall option; (* watchdog diagnostic *)
  fault_log : Faultsim.Injector.decision list; (* injected-fault replay log *)
  history : (string * string list) list;
      (* flight-recorder context for blocked tasks on deadlock/stall;
         [] unless a trace recorder was enabled during the run *)
  static_races : (string * Cudasim.Kernel.race_verdict * string) list;
      (* (kernel, verdict, description): intra-kernel races the static
         analysis attached at compile time, deduplicated across ranks;
         [] when the flavor does not run the CuSan pass *)
}

let has_races r = r.races <> []

let static_musts r =
  List.filter_map
    (fun (k, v, d) ->
      match v with
      | Cudasim.Kernel.Must_race | Cudasim.Kernel.Proved_race -> Some (k, d)
      | Cudasim.Kernel.May_race -> None)
    r.static_races

let has_static_musts r = static_musts r <> []

let static_proved r =
  List.filter_map
    (fun (k, v, d) ->
      match v with
      | Cudasim.Kernel.Proved_race -> Some (k, d)
      | Cudasim.Kernel.Must_race | Cudasim.Kernel.May_race -> None)
    r.static_races

(* Human-readable cause for a captured rank failure, with the MPI error
   class / CUDA error name a real tool report would carry. *)
let describe_exn = function
  | Cudasim.Error.Cuda_failure { code; ctx } ->
      Fmt.str "%s: %s" (Cudasim.Error.to_string code) ctx
  | Mpisim.Mpi.Abort msg -> Fmt.str "MPI_Abort: %s" msg
  | Mpisim.Comm.Truncation msg -> Fmt.str "MPI_ERR_TRUNCATE: %s" msg
  | Mpisim.Comm.Invalid_rank r -> Fmt.str "MPI_ERR_RANK: invalid rank %d" r
  | Mpisim.Comm.Proc_failed r ->
      Fmt.str "MPI_ERR_PROC_FAILED: peer rank %d died" r
  | Mpisim.Comm.Revoked -> "MPI_ERR_REVOKED: communicator revoked"
  | Faultsim.Injector.Rank_killed { rank; site } ->
      Fmt.str "killed by injected crash at %s (rank %d)"
        (Faultsim.Site.to_string site) rank
  | Mpisim.Win.Target_out_of_bounds msg -> Fmt.str "MPI_ERR_RANGE: %s" msg
  | Mpisim.Win.Window_freed -> "MPI_ERR_WIN: operation on freed window"
  | Cudasim.Device.Invalid_launch msg ->
      Fmt.str "cudaErrorInvalidValue: invalid launch: %s" msg
  | Cudasim.Device.Stream_destroyed -> "use of destroyed CUDA stream"
  | e -> Printexc.to_string e

(* Memory model for the RSS measurement (a high-water mark, like real
   RSS): the rank's share of the peak simulated allocations, plus
   everything the tools added — *materialized* shadow memory (shadow only
   counts once an access touches it, like real TSan's lazily-faulted
   shadow pages), synchronization clocks, TypeART's table — plus a
   configurable constant standing in for the process baseline (CUDA
   driver + MPI library mappings) that dominates a real process's RSS.
   The default of 0 reports raw simulator numbers. *)
let rank_rss ~nranks ~baseline (st : rank_state) =
  let app_share = Memsim.Heap.peak_bytes () / nranks in
  let tool =
    match st.detector with
    | None -> 0
    | Some d -> Tsan.Detector.shadow_bytes_peak d + Tsan.Detector.sync_bytes d
  in
  let typeart =
    if Typeart.Rt.enabled () then
      let _, _, entries = Typeart.Rt.stats (Typeart.Rt.instance ()) in
      entries * 96
    else 0
  in
  baseline + app_share + tool + typeart

let run ?(nranks = 2) ?(mode = Cudasim.Device.Eager)
    ?(default_stream_mode = Cudasim.Device.Legacy) ?(suppressions = [])
    ?(check_types = false) ?(baseline_rss = 0) ?(granule = 8) ?annotation
    ?max_range_bytes ?watchdog ?picker ?access_observer ?mpi_observer ?faults
    ?(prove_static = false) ~flavor app =
  (* Fresh global state, as a fresh process would have. *)
  (match faults with
  | Some (seed, plan) -> Faultsim.Injector.arm ~seed ~plan ()
  | None -> Faultsim.Injector.disarm ());
  (* New flight-recorder epoch per run: recent-history queries (race
     reports, deadlock context) never see events of a previous case. *)
  if Trace.Recorder.on () then Trace.Recorder.new_epoch ();
  Memsim.Hooks.clear ();
  Mpisim.Hooks.clear ();
  Memsim.Heap.reset ();
  (* Id counters feed names that appear in reports (fiber "mpi:req3",
     "win#1"): resetting them per run makes every run's output
     self-contained — identical whether the case runs alone, mid-suite,
     or on a worker domain of the sharded runner. *)
  Mpisim.Request.reset_ids ();
  Mpisim.Win.reset_ids ();
  Must.Rma.reset_keys ();
  Typeart.Rt.reset ();
  Typeart.Rt.set_enabled (Flavor.uses_typeart flavor);
  Sched.Scheduler.clear_resume_hooks ();
  Hashtbl.reset (thread_registry ());
  Sched.Scheduler.on_resume resume_hook;
  (* Race reports resolve addresses to allocations of the simulated
     heap, like TSan's "Location is heap block" line. *)
  (Tsan.Report.set_symbolizer
   @@ fun addr ->
       match Memsim.Heap.find_by_addr addr with
       | Some a ->
           Some
             (Fmt.str "%s+%d (%s, %d bytes)" a.Memsim.Alloc.tag
                (addr - Memsim.Alloc.base a)
                (Memsim.Space.to_string a.Memsim.Alloc.space)
                a.Memsim.Alloc.size)
       | None -> None);
  let states : rank_state option array = Array.make nranks None in
  let failures = ref [] in
  let post_mortems = ref [] in
  (* Static intra-kernel race verdicts attached by the compile hook;
     every rank compiles its own kernel objects, so dedup by content. *)
  let static_races = ref [] in
  (* The detector responsible for the current task: host threads
     spawned with [parallel] resolve through the thread registry, rank
     main tasks through their spawn-order id. *)
  let det () =
    match Sched.Scheduler.self_id () with
    | id -> (
        match Hashtbl.find_opt (thread_registry ()) id with
        | Some (det, _, _) -> det
        | None ->
            if id >= 0 && id < nranks then
              Option.bind states.(id) (fun st -> st.detector)
            else None)
    | exception Sched.Scheduler.Not_in_scheduler -> None
  in
  (* TSan compiler instrumentation: host loads/stores and the allocator
     interception that maps/unmaps shadow. *)
  if Flavor.uses_tsan flavor then
    Memsim.Hooks.add
      {
        Memsim.Hooks.on_alloc =
          (fun a ->
            match det () with
            | Some d ->
                Tsan.Detector.on_alloc d ~base:(Memsim.Alloc.base a)
                  ~size:a.Memsim.Alloc.size
            | None -> ());
        on_free =
          (fun a ->
            match det () with
            | Some d -> Tsan.Detector.on_free d ~base:(Memsim.Alloc.base a)
            | None -> ());
        on_read =
          (fun p n ->
            match det () with
            | Some d -> Tsan.Detector.read_range d ~addr:(Memsim.Ptr.addr p) ~len:n
            | None -> ());
        on_write =
          (fun p n ->
            match det () with
            | Some d ->
                Tsan.Detector.write_range d ~addr:(Memsim.Ptr.addr p) ~len:n
            | None -> ());
      };
  (* MUST's PMPI interception, plus the cross-rank resolver its RMA
     analysis needs to annotate window accesses in the target's
     detector. *)
  if Flavor.uses_must flavor then begin
    Mpisim.Hooks.add (fun ~rank phase call ->
        match states.(rank) with
        | Some { must = Some m; _ } -> Must.Runtime.on_call m phase call
        | _ -> ());
    Must.Runtime.set_peer_resolver (fun rank ->
        if rank >= 0 && rank < nranks then
          Option.bind states.(rank) (fun st -> st.must)
        else None)
  end;
  (* The schedule explorer's MPI-event observer. Installed here — not by
     the caller — because the harness clears all PMPI hooks above; a hook
     installed before [run] would be silently wiped. *)
  (match mpi_observer with Some f -> Mpisim.Hooks.add f | None -> ());
  (* RSS probe at MPI_Finalize, as in the paper's Fig. 11 setup. *)
  Mpisim.Hooks.add (fun ~rank phase call ->
      match (phase, call) with
      | Mpisim.Hooks.Pre, Mpisim.Hooks.Finalize -> (
          match states.(rank) with
          | Some st -> st.rss <- rank_rss ~nranks ~baseline:baseline_rss st
          | None -> ())
      | _ -> ());
  let wrapped (ctx : Mpisim.Mpi.ctx) =
    let rank = ctx.Mpisim.Mpi.rank in
    let detector =
      if Flavor.uses_tsan flavor then
        Some (Tsan.Detector.create ~granule ~suppressions ())
      else None
    in
    (match (detector, access_observer) with
    | Some d, Some obs -> Tsan.Detector.set_observer d (Some obs)
    | _ -> ());
    let device = Cudasim.Device.create ~mode ~default_stream_mode () in
    let cusan =
      if Flavor.uses_cusan flavor then
        Option.map
          (fun d ->
            Cusan.Runtime.attach ?annotation ?max_range_bytes ~tsan:d
              ~dev:device ())
          detector
      else None
    in
    let must =
      if Flavor.uses_must flavor then
        Option.map
          (fun d -> Must.Runtime.create ~size:nranks ~tsan:d ~rank ~check_types ())
          detector
      else None
    in
    states.(rank) <- Some { detector; device; cusan; must; rss = 0 };
    Hashtbl.replace (thread_registry ())
      (Sched.Scheduler.self_id ())
      (detector, Option.map Tsan.Detector.main_fiber detector, device);
    (* Rank-level failures (CUDA errors, MPI aborts, simulation errors)
       kill this rank, not the harness: the cause is recorded with rank
       provenance, and the rank still reaches MPI_Finalize so its
       counters, RSS probe and already-found race reports are flushed
       into the result. Surviving ranks blocked on the dead rank are
       then reported by deadlock detection or the watchdog — exactly
       how a real MPI job with a dead rank presents. *)
    try
      app
        {
          mpi = ctx;
          dev = device;
          compile =
            (fun k ->
              if Flavor.uses_cusan flavor then begin
                Cusan.Pass.instrument_kernel ~prove:prove_static k;
                match k.Cudasim.Kernel.static_races with
                | Some rs ->
                    List.iter
                      (fun (v, d) ->
                        let entry = (k.Cudasim.Kernel.kname, v, d) in
                        if not (List.mem entry !static_races) then
                          static_races := entry :: !static_races)
                      rs
                | None -> ()
              end;
              k);
        }
    with
    | ( Cudasim.Error.Cuda_failure _ | Mpisim.Mpi.Abort _
      | Mpisim.Comm.Truncation _ | Mpisim.Comm.Invalid_rank _
      | Mpisim.Comm.Proc_failed _ | Mpisim.Comm.Revoked
      | Mpisim.Win.Target_out_of_bounds _ | Mpisim.Win.Window_freed
      | Cudasim.Device.Invalid_launch _ | Cudasim.Device.Stream_destroyed ) as
      e ->
        failures := (rank, describe_exn e) :: !failures
    | Faultsim.Injector.Rank_killed { site; _ } as e ->
        (* Supervisor: the rank is dead, not merely failed. Record the
           cause, capture a post-mortem while its state is still warm,
           and reap its unjoined host threads so they neither run on as
           orphans nor pollute deadlock diagnostics. The rank's
           [states.(rank)] entry stays: its TSan/MUST counters and
           already-found reports are flushed into the result like any
           finished rank's. Re-raised so the MPI layer marks the rank
           dead (peers get MPI_ERR_PROC_FAILED) and skips its finalize. *)
        failures := (rank, describe_exn e) :: !failures;
        let prefix = Fmt.str "rank%d:" rank in
        let unjoined =
          List.filter
            (fun n -> String.starts_with ~prefix n)
            (Sched.Scheduler.unfinished_tasks ())
        in
        post_mortems :=
          {
            pm_rank = rank;
            pm_site = Faultsim.Site.to_string site;
            pm_trace =
              (if Trace.Recorder.on () then
                 Trace.Recorder.recent_lines
                   ~pid:(Trace.Recorder.pid_of_task (Fmt.str "rank%d" rank))
                   ~k:8 ()
               else []);
            pm_pending =
              List.map (Fmt.str "%a" Mpisim.Request.pp)
                (Mpisim.Mpi.pending_requests ctx);
            pm_unjoined = unjoined;
          }
          :: !post_mortems;
        Sched.Scheduler.kill (fun n -> String.starts_with ~prefix n);
        raise e
  in
  let t0 = Unix.gettimeofday () in
  let deadlock, stall =
    match Mpisim.Mpi.run ?watchdog ?picker ~nranks wrapped with
    | () -> (None, None)
    | exception Sched.Scheduler.Deadlock blocked -> (Some blocked, None)
    | exception Sched.Scheduler.Stalled s -> (None, Some s)
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  (* Flight-recorder context for each blocked task of a deadlock or
     watchdog stall: what that rank was doing right before it hung. *)
  let history =
    if not (Trace.Recorder.on ()) then []
    else
      let blocked =
        (match deadlock with Some pairs -> pairs | None -> [])
        @ match stall with Some s -> s.Sched.Scheduler.stall_blocked | None -> []
      in
      List.map
        (fun (task, why) ->
          ( Fmt.str "%s (blocked on %s)" task why,
            Trace.Recorder.recent_lines
              ~pid:(Trace.Recorder.pid_of_task task)
              ~k:8 () ))
        blocked
  in
  let fault_log = Faultsim.Injector.log () in
  Faultsim.Injector.disarm ();
  Memsim.Hooks.clear ();
  Mpisim.Hooks.clear ();
  Sched.Scheduler.clear_resume_hooks ();
  Must.Runtime.clear_peer_resolver ();
  Typeart.Rt.set_enabled false;
  let sts = Array.to_list states |> List.filteri (fun _ s -> s <> None)
            |> List.map Option.get in
  let with_rank f =
    List.concat
      (List.mapi (fun i st -> List.map (fun x -> (i, x)) (f st)) sts)
  in
  let races =
    with_rank (fun st ->
        match st.detector with Some d -> Tsan.Detector.races d | None -> [])
  in
  let race_events =
    List.fold_left
      (fun acc st ->
        acc
        + match st.detector with Some d -> Tsan.Detector.races_total d | None -> 0)
      0 sts
  in
  let must_errors =
    List.concat_map
      (fun st ->
        match st.must with Some m -> Must.Runtime.errors m | None -> [])
      sts
  in
  let tsan_counters =
    match sts with
    | { detector = Some d; _ } :: _ -> Tsan.Detector.counters d
    | _ -> Tsan.Counters.create ()
  in
  let cuda_counters =
    match sts with
    | { cusan = Some c; _ } :: _ -> Cusan.Runtime.counters c
    | _ -> Cusan.Counters.create ()
  in
  let tracked_read_bytes =
    List.fold_left
      (fun acc st ->
        acc
        + match st.detector with
          | Some d -> (Tsan.Detector.counters d).Tsan.Counters.read_bytes
          | None -> 0)
      0 sts
  in
  let tracked_write_bytes =
    List.fold_left
      (fun acc st ->
        acc
        + match st.detector with
          | Some d -> (Tsan.Detector.counters d).Tsan.Counters.write_bytes
          | None -> 0)
      0 sts
  in
  let rss_bytes = List.fold_left (fun acc st -> max acc st.rss) 0 sts in
  let device_exec_s, device_virtual_s =
    List.fold_left
      (fun (e, v) st ->
        let e', v' = Cudasim.Device.timing st.device in
        (e +. e', v +. v'))
      (0., 0.) sts
  in
  let proc_s =
    (max 0. (wall_s -. device_exec_s) +. device_virtual_s)
    /. float_of_int (max 1 nranks)
  in
  {
    flavor;
    nranks;
    wall_s;
    proc_s;
    device_exec_s;
    device_virtual_s;
    rss_bytes;
    races;
    race_events;
    must_errors;
    tsan_counters;
    cuda_counters;
    tracked_read_bytes;
    tracked_write_bytes;
    deadlock;
    failures = List.rev !failures;
    post_mortems = List.rev !post_mortems;
    stall;
    fault_log;
    history;
    static_races = List.sort compare !static_races;
  }
