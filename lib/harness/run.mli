(** Runs an application under a tool configuration and collects the
    paper's measurements: runtime, resident memory at [MPI_Finalize],
    race reports, MUST findings, and the Table I event counters. *)

type env = {
  mpi : Mpisim.Mpi.ctx;
  dev : Cudasim.Device.t;  (** this rank's CUDA device *)
  compile : Cudasim.Kernel.t -> Cudasim.Kernel.t;
      (** stands in for building the binary with the CuSan compiler
          pass: attaches the kernel access analysis when the flavor
          includes CuSan, and is the identity otherwise *)
}
(** The per-rank environment an application runs in. *)

type app = env -> unit

val parallel : env -> (unit -> unit) list -> unit
(** Run each function as an additional host thread of the calling rank
    and wait for all of them — MPI_THREAD_MULTIPLE-style hybrid code,
    the "X" of MPI + X. Each host thread gets its own race-detector
    fiber with thread-creation/join synchronization, and its own default
    stream when the device runs in {!Cudasim.Device.Per_thread} mode. *)

type post_mortem = {
  pm_rank : int;
  pm_site : string;  (** the fault site whose [:crash] action fired *)
  pm_trace : string list;
      (** last flight-recorder events of the rank; empty unless a
          {!Trace.Recorder} was enabled during the run *)
  pm_pending : string list;  (** pending (incomplete) requests at death *)
  pm_unjoined : string list;  (** host threads of the rank never joined *)
}
(** What a crashed rank leaves behind, captured by the supervisor at the
    crash site before the rank's threads are reaped. *)

val pp_post_mortem : Format.formatter -> post_mortem -> unit

type result = {
  flavor : Flavor.t;
  nranks : int;
  wall_s : float;  (** raw wall time of the whole (serialized) simulation *)
  proc_s : float;
      (** estimated per-process runtime with the paper's measurement
          semantics: host work (wall time minus the CPU cost of
          executing device-op bodies — an artifact of simulating the GPU
          on the host) plus the cost model's virtual device time,
          divided across ranks (real ranks run in parallel) *)
  device_exec_s : float;  (** summed over ranks: real CPU time in op bodies *)
  device_virtual_s : float;  (** summed over ranks: modelled device time *)
  rss_bytes : int;
      (** max over ranks, measured at [MPI_Finalize] like the paper's
          Fig. 11: the rank's share of peak allocations plus everything
          the tools added (materialized shadow, sync clocks, TypeART) *)
  races : (int * Tsan.Report.t) list;  (** (rank, deduplicated report) *)
  race_events : int;  (** raw race events across ranks *)
  must_errors : Must.Errors.t list;
  tsan_counters : Tsan.Counters.t;  (** rank 0, like Table I *)
  cuda_counters : Cusan.Counters.t;  (** rank 0 *)
  tracked_read_bytes : int;  (** summed over ranks, for Fig. 12 *)
  tracked_write_bytes : int;
  deadlock : (string * string) list option;
      (** blocked (task, blocked-call) pairs when the run deadlocked *)
  failures : (int * string) list;
      (** rank-level failures (CUDA errors, MPI aborts, simulation
          errors) captured with rank provenance; the rank's counters and
          already-found reports are still flushed into this result *)
  post_mortems : post_mortem list;
      (** one per crashed ([:crash]) rank, in crash order; survivors
          still produce their normal reports alongside *)
  stall : Sched.Scheduler.stall option;
      (** wait-for diagnostic when the watchdog stopped a livelock or
          partial hang *)
  fault_log : Faultsim.Injector.decision list;
      (** injected-fault replay log: with the arming [(seed, plan)], it
          reproduces the run exactly *)
  history : (string * string list) list;
      (** flight-recorder context for blocked tasks on deadlock/stall:
          [(what-blocked, recent event lines)] per task; empty unless a
          {!Trace.Recorder} was enabled during the run *)
  static_races : (string * Cudasim.Kernel.race_verdict * string) list;
      (** [(kernel, verdict, description)]: intra-kernel races the
          static race analysis attached at compile time, deduplicated
          across ranks; empty when the flavor does not run the CuSan
          pass *)
}

val has_races : result -> bool

val static_musts : result -> (string * string) list
(** [(kernel, description)] of the static must- and proved-races — the
    verdicts strong enough to fail a run. *)

val has_static_musts : result -> bool

val static_proved : result -> (string * string) list
(** [(kernel, description)] of the witness-validated races only; always
    empty unless the run proved verdicts ([prove_static]). *)

val run :
  ?nranks:int ->
  ?mode:Cudasim.Device.mode ->
  ?default_stream_mode:Cudasim.Device.default_mode ->
  ?suppressions:string list ->
  ?check_types:bool ->
  ?baseline_rss:int ->
  ?granule:int ->
  ?annotation:Cusan.Runtime.annotation_mode ->
  ?max_range_bytes:int ->
  ?watchdog:int ->
  ?picker:Sched.Scheduler.picker ->
  ?access_observer:(kind:[ `Read | `Write ] -> addr:int -> len:int -> unit) ->
  ?mpi_observer:(rank:int -> Mpisim.Hooks.phase -> Mpisim.Hooks.call -> unit) ->
  ?faults:int * Faultsim.Plan.t ->
  ?prove_static:bool ->
  flavor:Flavor.t ->
  app ->
  result
(** Execute [app] on [nranks] ranks (default 2) under [flavor],
    installing exactly the instrumentation that configuration implies:
    TSan host instrumentation and allocator interception, MUST's PMPI
    hooks, CuSan's device hooks and the TypeART runtime.

    [baseline_rss] adds a constant to every rank's memory measurement,
    standing in for the CUDA-driver/MPI-library mappings that dominate a
    real process's RSS (default 0: raw simulator numbers). [granule] and
    [max_range_bytes] are the ablation knobs of the bench harness.

    [watchdog] bounds scheduling steps: livelocks and partial hangs end
    in [result.stall] instead of running forever.

    [picker] overrides the scheduler's FIFO dispatch (see
    {!Sched.Scheduler.run}); [access_observer] is installed on every
    rank's race detector ({!Tsan.Detector.set_observer});
    [mpi_observer] is registered as a PMPI hook after the harness clears
    the hook registries. All three exist for the schedule explorer,
    which records decision traces and the dependency-relevant events of
    each run. [faults] arms the
    deterministic fault injector with [(seed, plan)] for this run only;
    the firing log lands in [result.fault_log]. Rank-level failures are
    captured in [result.failures] — the harness itself never aborts on
    them, and the dead rank's tool state is still flushed.

    [prove_static] (default [false]) runs the compile-time race
    analysis in witness mode: static candidates are validated by
    interpreter replay and attached as [Proved_race] (or downgraded —
    see {!Cusan.Pass.instrument_kernel}). Off by default because the
    replay costs interpreter runs per candidate. *)
