(* A small builder DSL so kernels read close to their CUDA sources. *)

include Ir

let ptr n = (n, Pointer)
let scalar n = (n, Scalar)

let func fname params body = { fname; params; body }
let modul ?(kernels = []) funcs = { funcs; kernels }

(* expressions *)
let i n = Int n
let f x = Flt x
let v name = Local name
let p idx = Param idx
let tid = Tid
let ntid = Ntid
let ( +. ) a b = Binop (Add, a, b)
let ( -. ) a b = Binop (Sub, a, b)
let ( *. ) a b = Binop (Mul, a, b)
let ( /. ) a b = Binop (Div, a, b)
let ( %. ) a b = Binop (Mod, a, b)
let ( <. ) a b = Binop (Lt, a, b)
let ( <=. ) a b = Binop (Le, a, b)
let ( ==. ) a b = Binop (Eq, a, b)
let ( &&. ) a b = Binop (And, a, b)
let ( ||. ) a b = Binop (Or, a, b)
let fmin a b = Binop (Min, a, b)
let fmax a b = Binop (Max, a, b)
let neg e = Neg e
let i2f e = I2f e
let f2i e = F2i e
let ( +@ ) ptr idx = Ptradd (ptr, idx)
let load ptr idx = Load (ptr, idx)
let loadi ptr idx = Loadi (ptr, idx)

(* statements *)
let store ptr idx value = Store (ptr, idx, value)
let storei ptr idx value = Storei (ptr, idx, value)
let let_ name e = Let (name, e)
let barrier = Barrier
let if_ c t e = If (c, t, e)
let for_ var lo hi body = For (var, lo, hi, body)
let call name args = Call (name, args)
