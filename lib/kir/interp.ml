(* Reference interpreter for KIR kernels.

   Executes a kernel body once per thread index, exactly as the device
   would, against the simulated address space. Device code must only
   dereference device-accessible memory (device or managed); touching a
   host pointer raises [Device_fault] — the simulated equivalent of an
   illegal address error.

   Pointer arithmetic ([Ptradd]) and f64 loads/stores are in 8-byte
   elements; [Loadi]/[Storei] address 4-byte lanes relative to the same
   pointer. The optional [on_read]/[on_write] callbacks report each
   touched location, which property tests use to check the static kernel
   access analysis against real footprints. *)

exception Device_fault of string
exception Runtime_error of string

type value = VInt of int | VFlt of float | VPtr of Memsim.Ptr.t

let pp_value ppf = function
  | VInt i -> Fmt.pf ppf "%d" i
  | VFlt f -> Fmt.pf ppf "%g" f
  | VPtr p -> Memsim.Ptr.pp ppf p

let as_int = function
  | VInt i -> i
  | VFlt f -> int_of_float f
  | VPtr _ -> raise (Runtime_error "pointer where scalar expected")

let as_flt = function
  | VFlt f -> f
  | VInt i -> float_of_int i
  | VPtr _ -> raise (Runtime_error "pointer where scalar expected")

let as_ptr = function
  | VPtr p -> p
  | v -> raise (Runtime_error (Fmt.str "scalar %a where pointer expected" pp_value v))

let check_device (p : Memsim.Ptr.t) =
  if not (Memsim.Space.device_accessible (Memsim.Ptr.space p)) then
    raise (Device_fault (Fmt.str "kernel touched host memory %a" Memsim.Ptr.pp p))

let truthy v = as_int v <> 0

let binop op a b =
  let open Ir in
  let arith fi ff =
    match (a, b) with
    | VInt x, VInt y -> VInt (fi x y)
    | _ -> VFlt (ff (as_flt a) (as_flt b))
  in
  let cmp fi ff =
    match (a, b) with
    | VInt x, VInt y -> VInt (if fi x y then 1 else 0)
    | _ -> VInt (if ff (as_flt a) (as_flt b) then 1 else 0)
  in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> (
      match (a, b) with
      | VInt x, VInt y ->
          if y = 0 then raise (Runtime_error "division by zero") else VInt (x / y)
      | _ -> VFlt (as_flt a /. as_flt b))
  | Mod -> (
      match (as_int a, as_int b) with
      | _, 0 -> raise (Runtime_error "mod by zero")
      | x, y -> VInt (x mod y))
  | Min -> arith min min
  | Max -> arith max max
  | Lt -> cmp ( < ) ( < )
  | Le -> cmp ( <= ) ( <= )
  | Eq -> cmp ( = ) ( = )
  | And -> VInt (if truthy a && truthy b then 1 else 0)
  | Or -> VInt (if truthy a || truthy b then 1 else 0)

type frame = {
  args : value array;
  locals : (string, value) Hashtbl.t;
  tid : int;
  ntid : int;
}

type tracer = {
  on_read : Memsim.Ptr.t -> bytes:int -> unit;
  on_write : Memsim.Ptr.t -> bytes:int -> unit;
}

let no_trace = { on_read = (fun _ ~bytes:_ -> ()); on_write = (fun _ ~bytes:_ -> ()) }

(* A thread performing [Barrier_reached] suspends until every other
   live thread of the launch has also arrived (or exited); the handler
   in [run_kernel] parks the continuation for the next wave. *)
type _ Effect.t += Barrier_reached : unit Effect.t

let rec eval m tr fr (e : Ir.expr) : value =
  match e with
  | Int i -> VInt i
  | Flt f -> VFlt f
  | Param i ->
      if i < Array.length fr.args then fr.args.(i)
      else raise (Runtime_error "param out of range")
  | Local n -> (
      match Hashtbl.find_opt fr.locals n with
      | Some v -> v
      | None -> raise (Runtime_error ("unbound local " ^ n)))
  | Tid -> VInt fr.tid
  | Ntid -> VInt fr.ntid
  | Load (pe, ie) ->
      let p = as_ptr (eval m tr fr pe) and i = as_int (eval m tr fr ie) in
      check_device p;
      tr.on_read (Memsim.Ptr.add p ~elt:8 i) ~bytes:8;
      VFlt (Memsim.Access.raw_get_f64 p i)
  | Loadi (pe, ie) ->
      let p = as_ptr (eval m tr fr pe) and i = as_int (eval m tr fr ie) in
      check_device p;
      tr.on_read (Memsim.Ptr.add p ~elt:4 i) ~bytes:4;
      VInt (Memsim.Access.raw_get_i32 p i)
  | Binop (op, a, b) -> binop op (eval m tr fr a) (eval m tr fr b)
  | Neg a -> (
      match eval m tr fr a with
      | VInt i -> VInt (-i)
      | VFlt f -> VFlt (-.f)
      | VPtr _ -> raise (Runtime_error "negating a pointer"))
  | I2f a -> VFlt (as_flt (eval m tr fr a))
  | F2i a -> VInt (as_int (eval m tr fr a))
  | Ptradd (pe, ie) ->
      let p = as_ptr (eval m tr fr pe) and i = as_int (eval m tr fr ie) in
      VPtr (Memsim.Ptr.add p ~elt:8 i)

and exec m tr fr (s : Ir.stmt) =
  match s with
  | Store (pe, ie, ve) ->
      let p = as_ptr (eval m tr fr pe)
      and i = as_int (eval m tr fr ie)
      and v = as_flt (eval m tr fr ve) in
      check_device p;
      tr.on_write (Memsim.Ptr.add p ~elt:8 i) ~bytes:8;
      Memsim.Access.raw_set_f64 p i v
  | Storei (pe, ie, ve) ->
      let p = as_ptr (eval m tr fr pe)
      and i = as_int (eval m tr fr ie)
      and v = as_int (eval m tr fr ve) in
      check_device p;
      tr.on_write (Memsim.Ptr.add p ~elt:4 i) ~bytes:4;
      Memsim.Access.raw_set_i32 p i v
  | Let (n, e) -> Hashtbl.replace fr.locals n (eval m tr fr e)
  | If (c, t, e) ->
      if truthy (eval m tr fr c) then List.iter (exec m tr fr) t
      else List.iter (exec m tr fr) e
  | For (v, lo, hi, body) ->
      let lo = as_int (eval m tr fr lo) and hi = as_int (eval m tr fr hi) in
      for x = lo to hi - 1 do
        Hashtbl.replace fr.locals v (VInt x);
        List.iter (exec m tr fr) body
      done
  | Call (name, args) -> (
      match Ir.find_func m name with
      | None -> raise (Runtime_error ("undefined function " ^ name))
      | Some callee ->
          let argv = Array.of_list (List.map (eval m tr fr) args) in
          let fr' =
            { fr with args = argv; locals = Hashtbl.create 8 }
          in
          List.iter (exec m tr fr') callee.Ir.body)
  | Barrier -> Effect.perform Barrier_reached

(* Run one thread of [name] to completion. [on_barrier] is invoked each
   time the thread executes a [Barrier]; the default treats barriers as
   no-ops, which is only correct for single-thread replay (the oracle
   use-case: per-thread traces tagged with a phase counter). *)
let run_thread ?(tracer = no_trace) ?on_barrier m ~name ~args ~tid ~ntid =
  match Ir.find_func m name with
  | None -> raise (Runtime_error ("undefined kernel " ^ name))
  | Some f ->
      let fr = { args; locals = Hashtbl.create 8; tid; ntid } in
      let body () = List.iter (exec m tracer fr) f.Ir.body in
      Effect.Deep.match_with body ()
        {
          retc = (fun () -> ());
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Barrier_reached ->
                  Some
                    (fun (k : (a, _) Effect.Deep.continuation) ->
                      (match on_barrier with Some f -> f () | None -> ());
                      Effect.Deep.continue k ())
              | _ -> None);
        }

(* Phase-tagged footprint of ONE thread replayed in isolation: every
   touched byte range, in program order, tagged with the number of
   barriers the thread had executed when it made the access. Two
   isolated replays with the same initial memory expose exactly the
   cross-thread conflicts of one launch: accesses in the same dynamic
   phase are unordered between threads. Used by the witness validator
   and the repair oracle (and mirrors what the property tests in
   test_race.ml build by hand). *)
type footprint_event = {
  ev_phase : int; (* dynamic barrier count when the access happened *)
  ev_addr : int; (* absolute simulated address of the first byte *)
  ev_bytes : int;
  ev_write : bool;
}

let thread_footprint m ~name ~args ~tid ~ntid : footprint_event list =
  let events = ref [] and phase = ref 0 in
  let push write p ~bytes =
    events :=
      {
        ev_phase = !phase;
        ev_addr = Memsim.Ptr.addr p;
        ev_bytes = bytes;
        ev_write = write;
      }
      :: !events
  in
  let tracer = { on_read = push false; on_write = push true } in
  run_thread ~tracer ~on_barrier:(fun () -> incr phase) m ~name ~args ~tid
    ~ntid;
  List.rev !events

let module_has_barrier m name =
  let visited = Hashtbl.create 8 in
  let rec func name =
    if Hashtbl.mem visited name then false
    else begin
      Hashtbl.replace visited name ();
      match Ir.find_func m name with
      | None -> false
      | Some f -> List.exists stmt f.Ir.body
    end
  and stmt = function
    | Ir.Barrier -> true
    | Ir.If (_, t, e) -> List.exists stmt t || List.exists stmt e
    | Ir.For (_, _, _, body) -> List.exists stmt body
    | Ir.Call (callee, _) -> func callee
    | Ir.Store _ | Ir.Storei _ | Ir.Let _ -> false
  in
  func name

(* Run the whole grid with barrier semantics: execution proceeds in
   waves — every live thread runs up to its next [Barrier] (or to
   completion), then all threads resume together. Within a wave,
   threads run in tid order (the device's finer interleaving does not
   matter for the inter-kernel race model, which is the paper's scope;
   intra-kernel orderings are the static race analysis's problem).
   Barrier-free kernels take the old straight-line path. *)
let run_kernel ?(tracer = no_trace) m ~name ~args ~grid =
  if not (module_has_barrier m name) then
    for tid = 0 to grid - 1 do
      run_thread ~tracer m ~name ~args ~tid ~ntid:grid
    done
  else begin
    (* Continuations of threads parked at the current barrier. *)
    let next_wave : (unit -> unit) list ref = ref [] in
    let spawn tid () =
      match Ir.find_func m name with
      | None -> raise (Runtime_error ("undefined kernel " ^ name))
      | Some f ->
          let fr = { args; locals = Hashtbl.create 8; tid; ntid = grid } in
          List.iter (exec m tracer fr) f.Ir.body
    in
    let handle body =
      Effect.Deep.match_with body ()
        {
          retc = (fun () -> ());
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Barrier_reached ->
                  Some
                    (fun (k : (a, _) Effect.Deep.continuation) ->
                      next_wave :=
                        (fun () -> Effect.Deep.continue k ()) :: !next_wave)
              | _ -> None);
        }
    in
    for tid = 0 to grid - 1 do
      handle (spawn tid)
    done;
    while !next_wave <> [] do
      let wave = List.rev !next_wave in
      next_wave := [];
      List.iter (fun resume -> handle resume) wave
    done
  end
