(** Reference interpreter for KIR kernels.

    Executes a kernel body once per thread index, as the device would,
    against the simulated address space. Device code must only
    dereference device-accessible memory (device or managed); touching a
    host pointer raises {!Device_fault} — the simulated illegal-address
    error.

    Pointer arithmetic and f64 loads/stores address 8-byte elements;
    [Loadi]/[Storei] address 4-byte lanes relative to the same pointer.
    The optional tracer reports each touched location, which property
    tests use to check the static kernel access analysis against real
    footprints. *)

exception Device_fault of string
exception Runtime_error of string

type value = VInt of int | VFlt of float | VPtr of Memsim.Ptr.t
(** Runtime values; also the kernel-launch argument type. *)

val pp_value : Format.formatter -> value -> unit

type tracer = {
  on_read : Memsim.Ptr.t -> bytes:int -> unit;
  on_write : Memsim.Ptr.t -> bytes:int -> unit;
}

val no_trace : tracer

val run_thread :
  ?tracer:tracer ->
  ?on_barrier:(unit -> unit) ->
  Ir.modul ->
  name:string ->
  args:value array ->
  tid:int ->
  ntid:int ->
  unit
(** Execute one thread of the kernel to completion. [on_barrier] fires
    each time the thread executes a [Barrier]; the default ignores
    barriers, which is only meaningful for single-thread replay (e.g.
    tagging a per-thread trace with a phase counter). *)

type footprint_event = {
  ev_phase : int;  (** barriers the thread had executed at this access *)
  ev_addr : int;  (** absolute simulated address of the first byte *)
  ev_bytes : int;
  ev_write : bool;
}

val thread_footprint :
  Ir.modul ->
  name:string ->
  args:value array ->
  tid:int ->
  ntid:int ->
  footprint_event list
(** Replay one thread in isolation and return every byte range it
    touched, in program order, tagged with its dynamic barrier phase.
    Two isolated replays from the same initial memory expose exactly
    the cross-thread conflicts of one launch (same-phase accesses are
    unordered between threads); the witness validator and the repair
    oracle are built on this. *)

val run_kernel :
  ?tracer:tracer -> Ir.modul -> name:string -> args:value array -> grid:int -> unit
(** Execute the whole grid with barrier semantics: all live threads run
    to their next [Barrier] (or to completion) before any proceeds past
    it. Within a wave, threads run in tid order — the device's finer
    interleaving does not matter to the inter-kernel race model, which
    is the paper's scope; intra-kernel orderings are the static race
    analysis's concern. *)
