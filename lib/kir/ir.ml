(* A miniature structured IR for device code — the stand-in for the
   LLVM IR of CUDA kernels that CuSan's device pass analyzes (paper,
   Section IV-B1). It is deliberately small: f64/i32 memory, pointer
   parameters, pointer arithmetic, loops, conditionals, and calls to
   other device functions (so the interprocedural analysis of Fig. 8 has
   something to chew on). Kernels can also be *executed* by Interp,
   which lets property tests check the static access analysis against
   real footprints. *)

type ty = Scalar | Pointer

type binop = Add | Sub | Mul | Div | Min | Max | Lt | Le | Eq | And | Or | Mod

type expr =
  | Int of int
  | Flt of float
  | Param of int (* function parameter by position *)
  | Local of string (* let-bound local *)
  | Tid (* global thread index of this kernel instance *)
  | Ntid (* total number of threads of the launch *)
  | Load of expr * expr (* f64: ptr[idx] *)
  | Loadi of expr * expr (* i32: ptr[idx] *)
  | Binop of binop * expr * expr
  | Neg of expr
  | I2f of expr
  | F2i of expr
  | Ptradd of expr * expr (* pointer + idx elements (element size of use) *)

type stmt =
  | Store of expr * expr * expr (* f64: ptr[idx] <- v *)
  | Storei of expr * expr * expr (* i32 *)
  | Let of string * expr
  | If of expr * stmt list * stmt list
  | For of string * expr * expr * stmt list (* var = lo .. hi-1 *)
  | Call of string * expr list (* device function call *)
  | Barrier (* __syncthreads(): all threads of the launch rendezvous *)

type func = {
  fname : string;
  params : (string * ty) list;
  body : stmt list;
}

type modul = {
  funcs : func list;
  kernels : string list; (* entry points (global functions) *)
}

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Min -> "min" | Max -> "max" | Lt -> "<" | Le -> "<="
  | Eq -> "==" | And -> "&&" | Or -> "||" | Mod -> "%"

let rec pp_expr ppf = function
  | Int i -> Fmt.int ppf i
  | Flt f -> Fmt.float ppf f
  | Param i -> Fmt.pf ppf "%%arg%d" i
  | Local s -> Fmt.pf ppf "%%%s" s
  | Tid -> Fmt.string ppf "tid"
  | Ntid -> Fmt.string ppf "ntid"
  | Load (p, i) -> Fmt.pf ppf "%a[%a]" pp_expr p pp_expr i
  | Loadi (p, i) -> Fmt.pf ppf "%a.i32[%a]" pp_expr p pp_expr i
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Neg e -> Fmt.pf ppf "(-%a)" pp_expr e
  | I2f e -> Fmt.pf ppf "i2f(%a)" pp_expr e
  | F2i e -> Fmt.pf ppf "f2i(%a)" pp_expr e
  | Ptradd (p, i) -> Fmt.pf ppf "(%a +p %a)" pp_expr p pp_expr i

let rec pp_stmt ppf = function
  | Store (p, i, v) -> Fmt.pf ppf "%a[%a] := %a" pp_expr p pp_expr i pp_expr v
  | Storei (p, i, v) ->
      Fmt.pf ppf "%a.i32[%a] := %a" pp_expr p pp_expr i pp_expr v
  | Let (n, e) -> Fmt.pf ppf "let %%%s = %a" n pp_expr e
  | If (c, t, e) ->
      Fmt.pf ppf "@[<v 2>if %a {@,%a@]@,}%a" pp_expr c
        (Fmt.list ~sep:Fmt.cut pp_stmt) t
        (fun ppf e ->
          if e <> [] then
            Fmt.pf ppf "@[<v 2> else {@,%a@]@,}" (Fmt.list ~sep:Fmt.cut pp_stmt) e)
        e
  | For (v, lo, hi, body) ->
      Fmt.pf ppf "@[<v 2>for %%%s = %a .. %a {@,%a@]@,}" v pp_expr lo pp_expr
        hi
        (Fmt.list ~sep:Fmt.cut pp_stmt)
        body
  | Call (f, args) ->
      Fmt.pf ppf "call %s(%a)" f (Fmt.list ~sep:Fmt.comma pp_expr) args
  | Barrier -> Fmt.string ppf "__syncthreads()"

let pp_func ppf f =
  Fmt.pf ppf "@[<v 2>func %s(%a) {@,%a@]@,}" f.fname
    (Fmt.list ~sep:Fmt.comma (fun ppf (n, ty) ->
         Fmt.pf ppf "%s:%s" n (match ty with Scalar -> "s" | Pointer -> "p")))
    f.params
    (Fmt.list ~sep:Fmt.cut pp_stmt)
    f.body
