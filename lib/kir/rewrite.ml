(* Module surgery for repair tools: insert [Barrier] statements at
   top-level positions of one function's body.

   Insertion points are *gaps* between top-level statements: point [i]
   means "immediately before the i-th statement" (0 = before the first,
   length body = after the last). Only the named function is touched;
   all other functions, the kernel list and statement structure are
   shared unchanged, so the rewritten module is cheap and the original
   is never mutated.

   Top-level gaps of an entry body are always reconvergent control flow
   (every thread executes the body's statement list in order), so a
   barrier inserted there can never be tid-divergent by construction —
   [Validate.check_module] accepts any such insertion into a valid
   module. Callers re-validate anyway; repair treats the validator as
   the final word. *)

let insert_barriers (m : Ir.modul) ~entry ~points : Ir.modul =
  match Ir.find_func m entry with
  | None -> invalid_arg ("Rewrite.insert_barriers: no function " ^ entry)
  | Some f ->
      let n = List.length f.Ir.body in
      List.iter
        (fun p ->
          if p < 0 || p > n then
            invalid_arg
              (Fmt.str "Rewrite.insert_barriers: point %d out of range 0..%d" p
                 n))
        points;
      let body =
        List.concat
          (List.mapi
             (fun i s ->
               if List.mem i points then [ Ir.Barrier; s ] else [ s ])
             f.Ir.body)
        @ if List.mem n points then [ Ir.Barrier ] else []
      in
      {
        m with
        Ir.funcs =
          List.map
            (fun (g : Ir.func) ->
              if g.Ir.fname = entry then { g with Ir.body } else g)
            m.Ir.funcs;
      }
