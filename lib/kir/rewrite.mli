(** Module surgery for repair tools: barrier insertion at top-level
    gaps of one function's body. *)

val insert_barriers : Ir.modul -> entry:string -> points:int list -> Ir.modul
(** [insert_barriers m ~entry ~points] returns a copy of [m] where a
    [Barrier] is inserted immediately before the [i]-th top-level
    statement of [entry]'s body for every [i] in [points]
    ([i = length body] appends after the last statement). The original
    module is not mutated. Raises [Invalid_argument] when [entry] does
    not exist or a point is out of range. *)
