(* Static well-formedness checks on a KIR module: name resolution,
   arity, pointer/scalar typing, and barrier placement. Run before
   analysis or execution, like the IR verifier in a real compiler.

   Barrier placement: a [Barrier] is a grid-wide rendezvous, so every
   thread must reach it — a barrier under a condition (or loop bound)
   whose value can differ between threads is undefined behaviour on
   real hardware. We reject it with the conservative uniformity check:
   an expression is uniform when its value over tid is a constant,
   which we approximate as "does not read tid and does not load from
   memory" (loads may observe another thread's in-flight writes).
   Calls into barrier-containing functions are held to the same rule:
   they must be reached uniformly and with uniform arguments. *)

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

type env = {
  params : Ir.ty array;
  locals : (string, Ir.ty * bool) Hashtbl.t;
      (* type and uniformity (constant over tid) of each local *)
}

let rec type_of env (e : Ir.expr) : Ir.ty =
  match e with
  | Int _ | Flt _ | Tid | Ntid -> Scalar
  | Param i ->
      if i < 0 || i >= Array.length env.params then fail "param %d out of range" i
      else env.params.(i)
  | Local n -> (
      match Hashtbl.find_opt env.locals n with
      | Some (t, _) -> t
      | None -> fail "unbound local %%%s" n)
  | Load (p, i) | Loadi (p, i) ->
      if type_of env p <> Pointer then fail "load from non-pointer";
      if type_of env i <> Scalar then fail "non-scalar index";
      Scalar
  | Binop (_, a, b) ->
      if type_of env a <> Scalar || type_of env b <> Scalar then
        fail "binop on pointer";
      Scalar
  | Neg a | I2f a | F2i a ->
      if type_of env a <> Scalar then fail "unop on pointer";
      Scalar
  | Ptradd (p, i) ->
      if type_of env p <> Pointer then fail "ptradd on non-pointer";
      if type_of env i <> Scalar then fail "non-scalar ptradd offset";
      Pointer

(* Is [e]'s value the same for every thread of the launch? Launch
   arguments (params) and ntid are; tid is not; loaded values are
   conservatively not (another thread may race the location within the
   current phase). *)
let rec uniform env (e : Ir.expr) : bool =
  match e with
  | Int _ | Flt _ | Ntid | Param _ -> true
  | Tid -> false
  | Local n -> (
      match Hashtbl.find_opt env.locals n with
      | Some (_, u) -> u
      | None -> fail "unbound local %%%s" n)
  | Load _ | Loadi _ -> false
  | Binop (_, a, b) | Ptradd (a, b) -> uniform env a && uniform env b
  | Neg a | I2f a | F2i a -> uniform env a

(* Does [name]'s body (transitively) execute a barrier? Memoized per
   check_module run; recursion treated as barrier-free on the back-edge
   (any barrier in the cycle is found on the spanning walk). *)
let has_barrier m =
  let memo : (string, bool) Hashtbl.t = Hashtbl.create 8 in
  let rec func name =
    match Hashtbl.find_opt memo name with
    | Some b -> b
    | None ->
        Hashtbl.replace memo name false;
        let b =
          match Ir.find_func m name with
          | None -> false
          | Some f -> List.exists stmt f.Ir.body
        in
        Hashtbl.replace memo name b;
        b
  and stmt = function
    | Ir.Barrier -> true
    | Ir.If (_, t, e) -> List.exists stmt t || List.exists stmt e
    | Ir.For (_, _, _, body) -> List.exists stmt body
    | Ir.Call (callee, _) -> func callee
    | Ir.Store _ | Ir.Storei _ | Ir.Let _ -> false
  in
  func

(* [div] is true when control flow reaching this statement may be
   tid-divergent (a non-uniform condition or loop bound encloses it). *)
let rec check_stmt (m : Ir.modul) barrier_in env ~div (s : Ir.stmt) =
  match s with
  | Store (p, i, v) | Storei (p, i, v) ->
      if type_of env p <> Pointer then fail "store to non-pointer";
      if type_of env i <> Scalar then fail "non-scalar index";
      if type_of env v <> Scalar then fail "storing a pointer";
      ()
  | Let (n, e) ->
      Hashtbl.replace env.locals n (type_of env e, uniform env e)
  | If (c, t, e) ->
      if type_of env c <> Scalar then fail "pointer condition";
      let div = div || not (uniform env c) in
      List.iter (check_stmt m barrier_in env ~div) t;
      List.iter (check_stmt m barrier_in env ~div) e
  | For (v, lo, hi, body) ->
      if type_of env lo <> Scalar || type_of env hi <> Scalar then
        fail "pointer loop bound";
      let bounds_uniform = uniform env lo && uniform env hi in
      (* A non-uniform trip count makes everything in the body
         divergent: threads disagree on whether an iteration runs. *)
      Hashtbl.replace env.locals v (Ir.Scalar, bounds_uniform);
      let div = div || not bounds_uniform in
      List.iter (check_stmt m barrier_in env ~div) body
  | Call (name, args) -> (
      match Ir.find_func m name with
      | None -> fail "call to undefined function %s" name
      | Some callee ->
          if List.length args <> List.length callee.Ir.params then
            fail "arity mismatch calling %s" name;
          List.iter2
            (fun arg (pname, pty) ->
              if type_of env arg <> pty then
                fail "argument %s of %s: type mismatch" pname name)
            args callee.Ir.params;
          if barrier_in name then begin
            if div then
              fail "tid-divergent call to %s, which executes a barrier" name;
            List.iter2
              (fun arg (pname, _) ->
                if not (uniform env arg) then
                  fail
                    "non-uniform argument %s to %s, which executes a barrier"
                    pname name)
              args callee.Ir.params
          end)
  | Barrier ->
      if div then fail "tid-divergent barrier (__syncthreads under a condition whose value varies over tid)"

let check_func m (f : Ir.func) =
  let env =
    {
      params = Array.of_list (List.map snd f.Ir.params);
      locals = Hashtbl.create 8;
    }
  in
  let barrier_in = has_barrier m in
  List.iter (check_stmt m barrier_in env ~div:false) f.Ir.body

let check_module (m : Ir.modul) =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (f : Ir.func) ->
      if Hashtbl.mem seen f.Ir.fname then
        fail "duplicate function %s" f.Ir.fname;
      Hashtbl.replace seen f.Ir.fname ())
    m.Ir.funcs;
  List.iter
    (fun k ->
      if Ir.find_func m k = None then fail "kernel %s not defined" k)
    m.Ir.kernels;
  List.iter (check_func m) m.Ir.funcs
