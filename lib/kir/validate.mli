(** Static well-formedness checks on a KIR module: name resolution,
    call arity, pointer/scalar typing, and barrier placement — the IR
    verifier run before analysis or execution.

    Barriers ([__syncthreads]) must be reached by every thread of the
    launch, so a barrier under tid-divergent control flow is rejected:
    the enclosing conditions and loop bounds must be *uniform*
    (constant over tid — conservatively, expressions that neither read
    [tid] nor load from memory). Calls into barrier-containing device
    functions are held to the same rule and must pass uniform
    arguments. *)

exception Invalid of string

val check_func : Ir.modul -> Ir.func -> unit

val check_module : Ir.modul -> unit
(** @raise Invalid on unbound locals, out-of-range parameters, arity or
    type mismatches at calls, duplicate functions, kernel entries that
    are not defined, or barriers under tid-divergent control flow. *)
