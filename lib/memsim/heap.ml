(* Allocation registry for the simulated address space.

   The registry is domain-local: each domain of a sharded runner owns an
   independent simulated heap, so parallel case execution never shares
   allocation state (ids, liveness, peaks). Within a domain, behaviour
   is identical to the old process-global registry. *)

type state = {
  mutable next_id : int;
  live : (int, Alloc.t) Hashtbl.t;
  mutable bytes_live : int;
  mutable bytes_peak : int;
}

let state : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { next_id = 0; live = Hashtbl.create 64; bytes_live = 0; bytes_peak = 0 })

let alloc ?(tag = "alloc") space size =
  if size < 0 then invalid_arg "Heap.alloc: negative size";
  let st = Domain.DLS.get state in
  let id = st.next_id in
  st.next_id <- st.next_id + 1;
  let a =
    { Alloc.id; space; size; data = Bytes.make size '\000'; tag; freed = false }
  in
  Hashtbl.replace st.live id a;
  st.bytes_live <- st.bytes_live + size;
  if st.bytes_live > st.bytes_peak then st.bytes_peak <- st.bytes_live;
  Hooks.fire_alloc a;
  Ptr.make a

let free (p : Ptr.t) =
  let st = Domain.DLS.get state in
  let a = p.Ptr.alloc in
  Alloc.check_live a;
  if p.Ptr.off <> 0 then invalid_arg "Heap.free: interior pointer";
  Hooks.fire_free a;
  a.Alloc.freed <- true;
  st.bytes_live <- st.bytes_live - a.Alloc.size;
  Hashtbl.remove st.live a.Alloc.id

let find_by_addr addr =
  let st = Domain.DLS.get state in
  match Hashtbl.find_opt st.live (Alloc.id_of_addr addr) with
  | Some a when addr >= Alloc.base a && addr < Alloc.limit a -> Some a
  | _ -> None

let live_bytes () = (Domain.DLS.get state).bytes_live
let peak_bytes () = (Domain.DLS.get state).bytes_peak
let live_count () = Hashtbl.length (Domain.DLS.get state).live

(* Reset the whole simulated heap; used between independent test runs. *)
let reset () =
  let st = Domain.DLS.get state in
  Hashtbl.reset st.live;
  st.next_id <- 0;
  st.bytes_live <- 0;
  st.bytes_peak <- 0
