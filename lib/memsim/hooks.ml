(* Instrumentation hook registry — the seam where correctness tools
   attach. Registering hooks is the simulator's analogue of compiling
   the application with a sanitizer pass: allocation events feed TSan's
   allocator interception and TypeART's tracking; read/write events are
   the loads/stores TSan's compiler pass would instrument in host code. *)

type t = {
  on_alloc : Alloc.t -> unit;
  on_free : Alloc.t -> unit;
  on_read : Ptr.t -> int -> unit; (* host load of [bytes] *)
  on_write : Ptr.t -> int -> unit; (* host store of [bytes] *)
}

let nil =
  {
    on_alloc = ignore;
    on_free = ignore;
    on_read = (fun _ _ -> ());
    on_write = (fun _ _ -> ());
  }

(* Domain-local registry: each domain of a sharded runner attaches its
   own tools, so parallel runs never observe each other's hooks. *)
type state = { mutable registered : t list; mutable any : bool }
(* [any] is the fast-path flag: vanilla runs must not pay for
   instrumentation. *)

let state : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { registered = []; any = false })

let add h =
  let st = Domain.DLS.get state in
  st.registered <- h :: st.registered;
  st.any <- true

let any () = (Domain.DLS.get state).any

let clear () =
  let st = Domain.DLS.get state in
  st.registered <- [];
  st.any <- false

let fire_alloc a =
  let st = Domain.DLS.get state in
  if st.any then List.iter (fun h -> h.on_alloc a) st.registered

let fire_free a =
  let st = Domain.DLS.get state in
  if st.any then List.iter (fun h -> h.on_free a) st.registered

let fire_read p n =
  let st = Domain.DLS.get state in
  if st.any then List.iter (fun h -> h.on_read p n) st.registered

let fire_write p n =
  let st = Domain.DLS.get state in
  if st.any then List.iter (fun h -> h.on_write p n) st.registered
