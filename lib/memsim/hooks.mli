(** Instrumentation hook registry — the seam where correctness tools
    attach to the simulated address space.

    Registering hooks is the simulator's analogue of compiling the
    application with a sanitizer pass: allocation events feed TSan's
    allocator interception and TypeART's tracking; read/write events are
    the loads/stores TSan's compiler pass would instrument in host
    code. *)

type t = {
  on_alloc : Alloc.t -> unit;
  on_free : Alloc.t -> unit;
  on_read : Ptr.t -> int -> unit;  (** host load of [n] bytes *)
  on_write : Ptr.t -> int -> unit;  (** host store of [n] bytes *)
}

val nil : t
(** All callbacks no-ops; useful with record update syntax. *)

val any : unit -> bool
(** Whether any hook is registered in the calling domain — the fast-path
    check uninstrumented ("vanilla") runs pay. *)

val add : t -> unit
val clear : unit -> unit

val fire_alloc : Alloc.t -> unit
val fire_free : Alloc.t -> unit
val fire_read : Ptr.t -> int -> unit
val fire_write : Ptr.t -> int -> unit
