(* Communicator state: pending message queues with MPI's non-overtaking
   matching order, posted receives, and round-based collectives. All
   matching is driven by the receiving side via [progress].

   Hard-failure model (ULFM subset): a rank killed by a [Crash] fault is
   marked dead on every communicator it belongs to. Operations that
   would need the dead peer raise [Proc_failed] (MPI_ERR_PROC_FAILED);
   posted receives from it become complete-with-error so MPI_Wait never
   hangs on them. [revoke]/[shrink]/[agree] implement the minimal
   recovery API: revoke interrupts blocked peers, shrink builds a fresh
   communicator over the survivors, agree is a fault-tolerant AND. *)

let any_source = -1
let any_tag = -1

type message = {
  m_src : int;
  m_dst : int;
  m_tag : int;
  m_data : Bytes.t; (* eager snapshot taken at the send call *)
  m_seq : int; (* arrival order, for FIFO matching *)
  mutable m_delivered : bool; (* set at match; MPI_Ssend waits on this *)
  mutable m_delay : int;
      (* injected transport delay: invisible to matching until [progress]
         has decremented it to zero, so later messages can overtake it *)
}

type posted_recv = {
  r_req : Request.t;
  r_src : int; (* may be [any_source] *)
  r_tag : int; (* may be [any_tag] *)
  p_seq : int; (* post order *)
  mutable r_matched : bool;
}

(* MPI error handling, per communicator (MPI_Comm_set_errhandler):
   [Errors_are_fatal] is MPI's default — any error aborts the job;
   [Errors_return] hands the application an error class and lets it
   continue. [last_errcode] mirrors MPI's per-rank last error. *)
type errhandler = Errors_are_fatal | Errors_return

type errcode =
  | Err_success (* MPI_SUCCESS *)
  | Err_truncate (* MPI_ERR_TRUNCATE *)
  | Err_rank (* MPI_ERR_RANK *)
  | Err_range (* MPI_ERR_RANGE: RMA target out of window bounds *)
  | Err_win (* MPI_ERR_WIN *)
  | Err_other (* MPI_ERR_OTHER: e.g. injected transport faults *)
  | Err_proc_failed (* MPI_ERR_PROC_FAILED: a peer the op needs is dead *)
  | Err_revoked (* MPI_ERR_REVOKED: the communicator was revoked *)

let errcode_to_string = function
  | Err_success -> "MPI_SUCCESS"
  | Err_truncate -> "MPI_ERR_TRUNCATE"
  | Err_rank -> "MPI_ERR_RANK"
  | Err_range -> "MPI_ERR_RANGE"
  | Err_win -> "MPI_ERR_WIN"
  | Err_other -> "MPI_ERR_OTHER"
  | Err_proc_failed -> "MPI_ERR_PROC_FAILED"
  | Err_revoked -> "MPI_ERR_REVOKED"

(* One-shot transport fault armed by the injection layer just before a
   send deposits its message. *)
type xfault = Xdrop | Xdelay of int

(* [round] carries the sub-communicator a shrink round creates, so the
   two types are mutually recursive. *)
type round = {
  mutable contrib : int;
  mutable readers : int;
  mutable vals : float array;
  mutable ivals : int array;
  mutable ptrs : Memsim.Ptr.t option array; (* for window creation *)
  mutable done_ : bool;
  mutable resilient : bool;
      (* an ignore_failures round completes at live_count, and
         [mark_dead] re-checks it when the live count shrinks *)
  mutable sub : t option; (* shrink result, built by the first arrival *)
}

and t = {
  size : int;
  mutable msgs : message list; (* reverse arrival order *)
  mutable recvs : posted_recv list; (* reverse post order *)
  mutable next_seq : int;
  cond : Sched.Scheduler.cond;
  rounds : (int, round) Hashtbl.t;
  coll_seq : int array; (* per-rank collective sequence number *)
  recovery_rounds : (int, round) Hashtbl.t;
  recovery_seq : int array;
      (* The ULFM recovery collectives (shrink/agree/fault-tolerant
         finalize) run in their own sequence space: after a failure,
         ranks abandon regular collectives at different points (an
         entry raise never claims a sequence number, a wait raise
         already has), so the regular counters diverge and stale rounds
         keep partial contributions. Recovery operations are the only
         collectives that must still line up afterwards. *)
  mutable truncations : int;
  mutable errhandler : errhandler;
  last_errcode : errcode array; (* per rank *)
  dead : bool array; (* failure detector: ranks known to have crashed *)
  mutable revoked : bool;
  mutable parent_ranks : int array;
      (* world rank of each local rank; identity for the world comm.
         Failure notices arrive as world ranks and are translated. *)
  mutable children : t list;
      (* communicators shrunk from this one: failure notices cascade *)
  mutable xport : xfault option; (* pending one-shot transport fault *)
  mutable drops : int; (* messages lost to injected Drop actions *)
}

exception Truncation of string
exception Invalid_rank of int

exception Proc_failed of int
(* The operation needs rank [r] (local numbering) and it is dead. *)

exception Revoked
(* The communicator was revoked; all non-recovery operations fail. *)

let create size =
  {
    size;
    msgs = [];
    recvs = [];
    next_seq = 0;
    cond = Sched.Scheduler.cond "mpi";
    rounds = Hashtbl.create 8;
    coll_seq = Array.make size 0;
    recovery_rounds = Hashtbl.create 4;
    recovery_seq = Array.make size 0;
    truncations = 0;
    errhandler = Errors_are_fatal;
    last_errcode = Array.make size Err_success;
    dead = Array.make size false;
    revoked = false;
    parent_ranks = Array.init size Fun.id;
    children = [];
    xport = None;
    drops = 0;
  }

let check_rank t r = if r < 0 || r >= t.size then raise (Invalid_rank r)

(* --- failure detector ------------------------------------------------- *)

let is_dead t r = t.dead.(r)
let any_dead t = Array.exists Fun.id t.dead

let first_dead t =
  let rec go i = if t.dead.(i) then i else go (i + 1) in
  go 0

let live_ranks t =
  List.filter (fun r -> not t.dead.(r)) (List.init t.size Fun.id)

let live_count t =
  Array.fold_left (fun n d -> if d then n else n + 1) 0 t.dead

let failed_ranks t =
  List.filter (fun r -> t.dead.(r)) (List.init t.size Fun.id)

let world_rank t r = t.parent_ranks.(r)

(* Any pending message (delayed ones included — they will become
   matchable) that could complete this posted receive? *)
let has_matching_msg t (pr : posted_recv) =
  List.exists
    (fun m ->
      m.m_dst = pr.r_req.Request.owner
      && (pr.r_src = any_source || pr.r_src = m.m_src)
      && (pr.r_tag = any_tag || pr.r_tag = m.m_tag))
    t.msgs

(* Could any live rank still produce a message for this receive? For a
   directed receive that is just "is the source alive"; a wildcard
   receive stays pending while any peer of the owner lives. *)
let sender_may_exist t (pr : posted_recv) =
  if pr.r_src <> any_source then not t.dead.(pr.r_src)
  else
    List.exists
      (fun r -> r <> pr.r_req.Request.owner && not t.dead.(r))
      (List.init t.size Fun.id)

let fail_recv (pr : posted_recv) why =
  pr.r_matched <- true;
  pr.r_req.Request.error <- Some why;
  pr.r_req.Request.complete <- true

(* Turn posted receives that can never complete (source dead, nothing
   in flight) into complete-with-error requests, so MPI_Wait{,all}
   returns instead of hanging — the request-completion invariant the
   hard-failure model guarantees. *)
let sweep_failed_recvs t =
  List.iter
    (fun pr ->
      if
        (not pr.r_matched)
        && (not (sender_may_exist t pr))
        && not (has_matching_msg t pr)
      then
        fail_recv pr
          (Fmt.str "MPI_ERR_PROC_FAILED: source rank %s died with no message in flight"
             (if pr.r_src = any_source then "(all peers)"
              else string_of_int pr.r_src)))
    t.recvs;
  t.recvs <- List.filter (fun p -> not p.r_matched) t.recvs

let local_of_world t wr =
  let rec go i =
    if i >= t.size then None
    else if t.parent_ranks.(i) = wr then Some i
    else go (i + 1)
  in
  go 0

(* Propagate a crash: mark the rank dead here and on every derived
   communicator, fail now-orphaned receives, complete resilient rounds
   that were only waiting on the dead, and wake all blocked peers so
   their wait predicates re-run and raise [Proc_failed]. *)
let rec mark_dead t ~world_rank =
  (match local_of_world t world_rank with
  | Some lr when not t.dead.(lr) ->
      t.dead.(lr) <- true;
      sweep_failed_recvs t;
      (* Only recovery rounds complete at live_count; regular rounds
         waiting on the dead are aborted by their wait predicates. *)
      Hashtbl.iter
        (fun _ r ->
          if r.resilient && (not r.done_) && r.contrib >= live_count t then
            r.done_ <- true)
        t.recovery_rounds;
      Sched.Scheduler.signal t.cond
  | _ -> ());
  List.iter (fun c -> mark_dead c ~world_rank) t.children

(* --- point-to-point ---------------------------------------------------- *)

let set_transport_fault t f = t.xport <- f

let deposit t ~src ~dst ~tag ~data =
  if t.revoked then raise Revoked;
  check_rank t src;
  check_rank t dst;
  if t.dead.(dst) then raise (Proc_failed dst);
  let fault = t.xport in
  t.xport <- None;
  let delay = match fault with Some (Xdelay n) -> n | _ -> 0 in
  let m =
    {
      m_src = src;
      m_dst = dst;
      m_tag = tag;
      m_data = data;
      m_seq = t.next_seq;
      m_delivered = false;
      m_delay = delay;
    }
  in
  t.next_seq <- t.next_seq + 1;
  (match fault with
  | Some Xdrop ->
      (* The message is lost in transit: it never enters the pending
         queue, so no receive can ever match it. An Ssend waiting on
         [m_delivered] is caught by the deadlock detector / watchdog. *)
      t.drops <- t.drops + 1
  | _ ->
      t.msgs <- m :: t.msgs;
      Sched.Scheduler.signal t.cond);
  m

let post_recv t req ~src ~tag =
  if t.revoked then raise Revoked;
  if src <> any_source then check_rank t src;
  let pr = { r_req = req; r_src = src; r_tag = tag; p_seq = t.next_seq; r_matched = false } in
  t.next_seq <- t.next_seq + 1;
  t.recvs <- pr :: t.recvs;
  (* Receiving from an already-dead peer with nothing in flight fails
     immediately (complete-with-error), not at the wait. *)
  if any_dead t then sweep_failed_recvs t;
  pr

let matches (pr : posted_recv) (m : message) =
  m.m_delay = 0
  && m.m_dst = pr.r_req.Request.owner
  && (pr.r_src = any_source || pr.r_src = m.m_src)
  && (pr.r_tag = any_tag || pr.r_tag = m.m_tag)

(* Deliver [m] into the posted receive's buffer: the simulated RDMA
   transfer — raw bytes, invisible to the sanitizer's load/store
   instrumentation, exactly the visibility gap MUST's annotations must
   close (paper, Section II-B). *)
let deliver t (pr : posted_recv) (m : message) =
  let cap = Request.bytes pr.r_req in
  let len = Bytes.length m.m_data in
  if len > cap then begin
    t.truncations <- t.truncations + 1;
    raise
      (Truncation
         (Fmt.str "message of %d bytes into %d-byte receive (%a)" len cap
            Request.pp pr.r_req))
  end;
  let dst = pr.r_req.Request.buf in
  Memsim.Ptr.check dst len;
  Bytes.blit m.m_data 0 dst.Memsim.Ptr.alloc.Memsim.Alloc.data
    dst.Memsim.Ptr.off len;
  m.m_delivered <- true;
  pr.r_matched <- true;
  pr.r_req.Request.complete <- true

(* Match posted receives (in post order) against pending messages (in
   arrival order) until a fixpoint. Each call first ages injected
   delays by one progress round; a delayed message is unmatchable until
   its delay reaches zero, so later messages overtake it. *)
let progress t =
  List.iter (fun m -> if m.m_delay > 0 then m.m_delay <- m.m_delay - 1) t.msgs;
  let again = ref true in
  while !again do
    again := false;
    let recvs_in_order = List.rev t.recvs in
    let msgs_in_order = List.rev t.msgs in
    match
      List.find_map
        (fun pr ->
          if pr.r_matched then None
          else
            match List.find_opt (fun m -> matches pr m) msgs_in_order with
            | Some m -> Some (pr, m)
            | None -> None)
        recvs_in_order
    with
    | Some (pr, m) ->
        deliver t pr m;
        t.msgs <- List.filter (fun m' -> m'.m_seq <> m.m_seq) t.msgs;
        t.recvs <- List.filter (fun p -> not p.r_matched) t.recvs;
        again := true;
        Sched.Scheduler.signal t.cond
    | None -> ()
  done;
  (* Failure poll: a receive can become orphaned *after* the mark_dead
     sweep (e.g. an earlier receive won the only in-flight message from
     the now-dead source). Every wait path drives progress, so checking
     here upholds the complete-with-error invariant. *)
  if any_dead t then sweep_failed_recvs t

(* --- collectives ------------------------------------------------------- *)

let round_of ?(recovery = false) t rank =
  let seqs = if recovery then t.recovery_seq else t.coll_seq in
  let table = if recovery then t.recovery_rounds else t.rounds in
  let seq = seqs.(rank) in
  seqs.(rank) <- seq + 1;
  let r =
    match Hashtbl.find_opt table seq with
    | Some r -> r
    | None ->
        let r =
          {
            contrib = 0;
            readers = 0;
            vals = [||];
            ivals = [||];
            ptrs = Array.make t.size None;
            done_ = false;
            resilient = false;
            sub = None;
          }
        in
        Hashtbl.replace table seq r;
        r
  in
  (seq, r)

(* Generic collective skeleton: every rank contributes, the last arrival
   completes the round, then every rank extracts the result. [label]
   names the MPI call in deadlock/watchdog diagnostics.

   With [ignore_failures] (the ULFM recovery operations and the
   shutdown barrier) the round completes once every *live* rank has
   contributed, and a revoked flag does not abort it — otherwise
   recovery itself could never run. A regular collective on a
   communicator with a known-dead member raises [Proc_failed], at entry
   or from the wait predicate when the death happens mid-round. *)
let collective ?(label = "MPI collective") ?(ignore_failures = false) t rank
    ~contribute ~extract =
  if not ignore_failures then begin
    if t.revoked then raise Revoked;
    if any_dead t then raise (Proc_failed (first_dead t))
  end;
  let seq, r = round_of ~recovery:ignore_failures t rank in
  if ignore_failures then r.resilient <- true;
  contribute r;
  r.contrib <- r.contrib + 1;
  let needed = if ignore_failures then live_count t else t.size in
  if r.contrib >= needed then begin
    r.done_ <- true;
    Sched.Scheduler.signal t.cond
  end
  else
    Sched.Scheduler.wait_until
      ~reason:(label ^ " (collective, waiting for peers)")
      t.cond
      (fun () ->
        if not ignore_failures then begin
          if t.revoked then raise Revoked;
          if any_dead t then raise (Proc_failed (first_dead t))
        end;
        r.done_);
  let v = extract r in
  r.readers <- r.readers + 1;
  if r.readers >= (if r.resilient then live_count t else t.size) then
    Hashtbl.remove (if ignore_failures then t.recovery_rounds else t.rounds) seq;
  v

(* --- ULFM-style recovery ----------------------------------------------- *)

(* MPIX_Comm_revoke: mark the communicator unusable and wake everyone
   blocked on it; their wait predicates raise [Revoked]. Idempotent and
   deliberately not itself a collective — any rank may revoke. *)
let revoke t =
  if not t.revoked then begin
    t.revoked <- true;
    Sched.Scheduler.signal t.cond
  end

(* MPIX_Comm_shrink: a fault-tolerant collective over the survivors that
   builds a fresh communicator containing exactly the live ranks. The
   first arrival snapshots the live set and creates the child; every
   survivor extracts it and derives its new rank from its position in
   the snapshot. The child inherits the error handler (recovery code
   keeps its error regime) and is registered for failure cascade. *)
let shrink t rank =
  let sub =
    collective ~label:"MPIX_Comm_shrink" ~ignore_failures:true t rank
      ~contribute:(fun r ->
        if r.sub = None then begin
          let live = Array.of_list (live_ranks t) in
          let c = create (Array.length live) in
          c.errhandler <- t.errhandler;
          c.parent_ranks <- Array.map (fun lr -> t.parent_ranks.(lr)) live;
          t.children <- c :: t.children;
          r.sub <- Some c
        end)
      ~extract:(fun r ->
        match r.sub with
        | Some c -> c
        | None -> invalid_arg "shrink: round completed without a child comm")
  in
  match local_of_world sub (world_rank t rank) with
  | Some new_rank -> (sub, new_rank)
  | None -> raise (Proc_failed rank) (* a dead rank cannot shrink *)

(* MPIX_Comm_agree: fault-tolerant agreement — bitwise AND of the live
   ranks' contributions. Completes despite failures and despite the
   communicator being revoked, like the real ULFM operation. *)
let agree t rank v =
  collective ~label:"MPIX_Comm_agree" ~ignore_failures:true t rank
    ~contribute:(fun r ->
      if Array.length r.ivals = 0 then r.ivals <- [| v |]
      else r.ivals.(0) <- r.ivals.(0) land v)
    ~extract:(fun r -> r.ivals.(0))
