(* Communicator state: pending message queues with MPI's non-overtaking
   matching order, posted receives, and round-based collectives. All
   matching is driven by the receiving side via [progress]. *)

let any_source = -1
let any_tag = -1

type message = {
  m_src : int;
  m_dst : int;
  m_tag : int;
  m_data : Bytes.t; (* eager snapshot taken at the send call *)
  m_seq : int; (* arrival order, for FIFO matching *)
  mutable m_delivered : bool; (* set at match; MPI_Ssend waits on this *)
}

type posted_recv = {
  r_req : Request.t;
  r_src : int; (* may be [any_source] *)
  r_tag : int; (* may be [any_tag] *)
  p_seq : int; (* post order *)
  mutable r_matched : bool;
}

type round = {
  mutable contrib : int;
  mutable readers : int;
  mutable vals : float array;
  mutable ivals : int array;
  mutable ptrs : Memsim.Ptr.t option array; (* for window creation *)
  mutable done_ : bool;
}

(* MPI error handling, per communicator (MPI_Comm_set_errhandler):
   [Errors_are_fatal] is MPI's default — any error aborts the job;
   [Errors_return] hands the application an error class and lets it
   continue. [last_errcode] mirrors MPI's per-rank last error. *)
type errhandler = Errors_are_fatal | Errors_return

type errcode =
  | Err_success (* MPI_SUCCESS *)
  | Err_truncate (* MPI_ERR_TRUNCATE *)
  | Err_rank (* MPI_ERR_RANK *)
  | Err_range (* MPI_ERR_RANGE: RMA target out of window bounds *)
  | Err_win (* MPI_ERR_WIN *)
  | Err_other (* MPI_ERR_OTHER: e.g. injected transport faults *)

let errcode_to_string = function
  | Err_success -> "MPI_SUCCESS"
  | Err_truncate -> "MPI_ERR_TRUNCATE"
  | Err_rank -> "MPI_ERR_RANK"
  | Err_range -> "MPI_ERR_RANGE"
  | Err_win -> "MPI_ERR_WIN"
  | Err_other -> "MPI_ERR_OTHER"

type t = {
  size : int;
  mutable msgs : message list; (* reverse arrival order *)
  mutable recvs : posted_recv list; (* reverse post order *)
  mutable next_seq : int;
  cond : Sched.Scheduler.cond;
  rounds : (int, round) Hashtbl.t;
  coll_seq : int array; (* per-rank collective sequence number *)
  mutable truncations : int;
  mutable errhandler : errhandler;
  last_errcode : errcode array; (* per rank *)
}

exception Truncation of string
exception Invalid_rank of int

let create size =
  {
    size;
    msgs = [];
    recvs = [];
    next_seq = 0;
    cond = Sched.Scheduler.cond "mpi";
    rounds = Hashtbl.create 8;
    coll_seq = Array.make size 0;
    truncations = 0;
    errhandler = Errors_are_fatal;
    last_errcode = Array.make size Err_success;
  }

let check_rank t r = if r < 0 || r >= t.size then raise (Invalid_rank r)

let deposit t ~src ~dst ~tag ~data =
  check_rank t src;
  check_rank t dst;
  let m =
    {
      m_src = src;
      m_dst = dst;
      m_tag = tag;
      m_data = data;
      m_seq = t.next_seq;
      m_delivered = false;
    }
  in
  t.next_seq <- t.next_seq + 1;
  t.msgs <- m :: t.msgs;
  Sched.Scheduler.signal t.cond;
  m

let post_recv t req ~src ~tag =
  if src <> any_source then check_rank t src;
  let pr = { r_req = req; r_src = src; r_tag = tag; p_seq = t.next_seq; r_matched = false } in
  t.next_seq <- t.next_seq + 1;
  t.recvs <- pr :: t.recvs;
  pr

let matches (pr : posted_recv) (m : message) =
  m.m_dst = pr.r_req.Request.owner
  && (pr.r_src = any_source || pr.r_src = m.m_src)
  && (pr.r_tag = any_tag || pr.r_tag = m.m_tag)

(* Deliver [m] into the posted receive's buffer: the simulated RDMA
   transfer — raw bytes, invisible to the sanitizer's load/store
   instrumentation, exactly the visibility gap MUST's annotations must
   close (paper, Section II-B). *)
let deliver t (pr : posted_recv) (m : message) =
  let cap = Request.bytes pr.r_req in
  let len = Bytes.length m.m_data in
  if len > cap then begin
    t.truncations <- t.truncations + 1;
    raise
      (Truncation
         (Fmt.str "message of %d bytes into %d-byte receive (%a)" len cap
            Request.pp pr.r_req))
  end;
  let dst = pr.r_req.Request.buf in
  Memsim.Ptr.check dst len;
  Bytes.blit m.m_data 0 dst.Memsim.Ptr.alloc.Memsim.Alloc.data
    dst.Memsim.Ptr.off len;
  m.m_delivered <- true;
  pr.r_matched <- true;
  pr.r_req.Request.complete <- true

(* Match posted receives (in post order) against pending messages (in
   arrival order) until a fixpoint. *)
let progress t =
  let again = ref true in
  while !again do
    again := false;
    let recvs_in_order = List.rev t.recvs in
    let msgs_in_order = List.rev t.msgs in
    match
      List.find_map
        (fun pr ->
          if pr.r_matched then None
          else
            match List.find_opt (fun m -> matches pr m) msgs_in_order with
            | Some m -> Some (pr, m)
            | None -> None)
        recvs_in_order
    with
    | Some (pr, m) ->
        deliver t pr m;
        t.msgs <- List.filter (fun m' -> m'.m_seq <> m.m_seq) t.msgs;
        t.recvs <- List.filter (fun p -> not p.r_matched) t.recvs;
        again := true;
        Sched.Scheduler.signal t.cond
    | None -> ()
  done

(* --- collectives ------------------------------------------------------- *)

let round_of t rank =
  let seq = t.coll_seq.(rank) in
  t.coll_seq.(rank) <- seq + 1;
  let r =
    match Hashtbl.find_opt t.rounds seq with
    | Some r -> r
    | None ->
        let r =
          {
            contrib = 0;
            readers = 0;
            vals = [||];
            ivals = [||];
            ptrs = Array.make t.size None;
            done_ = false;
          }
        in
        Hashtbl.replace t.rounds seq r;
        r
  in
  (seq, r)

(* Generic collective skeleton: every rank contributes, the last arrival
   completes the round, then every rank extracts the result. [label]
   names the MPI call in deadlock/watchdog diagnostics. *)
let collective ?(label = "MPI collective") t rank ~contribute ~extract =
  let seq, r = round_of t rank in
  contribute r;
  r.contrib <- r.contrib + 1;
  if r.contrib = t.size then begin
    r.done_ <- true;
    Sched.Scheduler.signal t.cond
  end
  else
    Sched.Scheduler.wait_until
      ~reason:(label ^ " (collective, waiting for peers)")
      t.cond
      (fun () -> r.done_);
  let v = extract r in
  r.readers <- r.readers + 1;
  if r.readers = t.size then Hashtbl.remove t.rounds seq;
  v
