(** Communicator state: pending message queues with MPI's non-overtaking
    matching order, posted receives, and round-based collectives.
    Matching is driven by the receiving side via {!progress}.

    Hard-failure model (ULFM subset): a crashed rank is {!mark_dead}ed
    on every communicator it belongs to. Operations that need the dead
    peer raise {!Proc_failed} ([MPI_ERR_PROC_FAILED]); posted receives
    from it become complete-with-error so a wait never hangs on them.
    {!revoke}/{!shrink}/{!agree} form the minimal recovery API. *)

val any_source : int
val any_tag : int

type message = {
  m_src : int;
  m_dst : int;
  m_tag : int;
  m_data : Bytes.t;  (** eager snapshot taken at the send call *)
  m_seq : int;  (** arrival order, for FIFO matching *)
  mutable m_delivered : bool;  (** set at match; MPI_Ssend waits on this *)
  mutable m_delay : int;
      (** injected transport delay: unmatchable until {!progress} has
          decremented it to zero, so later messages can overtake it *)
}

type posted_recv = {
  r_req : Request.t;
  r_src : int;  (** may be {!any_source} *)
  r_tag : int;  (** may be {!any_tag} *)
  p_seq : int;  (** post order *)
  mutable r_matched : bool;
}

(** MPI error handling, per communicator ([MPI_Comm_set_errhandler]):
    [Errors_are_fatal] is MPI's default — any error aborts the job;
    [Errors_return] hands the application an error class and lets it
    continue. *)
type errhandler = Errors_are_fatal | Errors_return

type errcode =
  | Err_success  (** MPI_SUCCESS *)
  | Err_truncate  (** MPI_ERR_TRUNCATE *)
  | Err_rank  (** MPI_ERR_RANK *)
  | Err_range  (** MPI_ERR_RANGE: RMA target out of window bounds *)
  | Err_win  (** MPI_ERR_WIN *)
  | Err_other  (** MPI_ERR_OTHER: e.g. injected transport faults *)
  | Err_proc_failed  (** MPI_ERR_PROC_FAILED: a needed peer is dead *)
  | Err_revoked  (** MPI_ERR_REVOKED: the communicator was revoked *)

val errcode_to_string : errcode -> string

(** One-shot transport fault armed just before a send deposits its
    message: the message is lost ([Xdrop]) or hidden from matching for
    N progress rounds ([Xdelay]). *)
type xfault = Xdrop | Xdelay of int

(** State of one collective round. [resilient] rounds (the ULFM
    recovery operations and the shutdown barrier) complete at the live
    count; [sub] carries the communicator a shrink round builds. *)
type round = {
  mutable contrib : int;  (** ranks that contributed so far *)
  mutable readers : int;  (** ranks that extracted the result *)
  mutable vals : float array;  (** float payload (reductions, gathers) *)
  mutable ivals : int array;
  mutable ptrs : Memsim.Ptr.t option array;  (** window creation payload *)
  mutable done_ : bool;
  mutable resilient : bool;
  mutable sub : t option;
}

and t = {
  size : int;
  mutable msgs : message list;
  mutable recvs : posted_recv list;
  mutable next_seq : int;
  cond : Sched.Scheduler.cond;  (** signalled on every matching event *)
  rounds : (int, round) Hashtbl.t;
  coll_seq : int array;  (** per-rank collective sequence number *)
  recovery_rounds : (int, round) Hashtbl.t;
  recovery_seq : int array;
      (** the ULFM recovery collectives run in their own sequence space:
          regular counters diverge once ranks abandon a failed
          collective at different points (entry vs. wait) *)
  mutable truncations : int;
  mutable errhandler : errhandler;
  last_errcode : errcode array;  (** per-rank last error *)
  dead : bool array;  (** failure detector: ranks known to have crashed *)
  mutable revoked : bool;
  mutable parent_ranks : int array;
      (** world rank of each local rank; identity for the world comm *)
  mutable children : t list;
      (** communicators shrunk from this one: failure notices cascade *)
  mutable xport : xfault option;  (** pending one-shot transport fault *)
  mutable drops : int;  (** messages lost to injected Drop actions *)
}

exception Truncation of string
(** A matched message exceeds the posted receive's capacity
    (MPI_ERR_TRUNCATE). *)

exception Invalid_rank of int

exception Proc_failed of int
(** The operation needs the given (local) rank and it is dead. *)

exception Revoked
(** The communicator was revoked; only {!shrink}/{!agree} still work. *)

val create : int -> t
val check_rank : t -> int -> unit

(* --- failure detector --- *)

val is_dead : t -> int -> bool
val any_dead : t -> bool
val live_ranks : t -> int list
val live_count : t -> int
val failed_ranks : t -> int list
(** Local ranks known to have crashed, ascending. *)

val world_rank : t -> int -> int
(** Translate a local rank to its world rank. *)

val mark_dead : t -> world_rank:int -> unit
(** Propagate a crash: mark the rank dead here and on every {!shrink}
    descendant, turn orphaned posted receives into complete-with-error
    requests, complete resilient rounds that were only waiting on the
    dead rank, and wake blocked peers so their wait predicates raise
    {!Proc_failed}. Idempotent. *)

val has_matching_msg : t -> posted_recv -> bool
(** A pending message (delayed ones included) could complete this
    receive. Wait predicates use this to distinguish "dead peer, data
    already in flight" (deliverable) from "dead peer, nothing coming"
    (fail the receive). *)

(* --- point-to-point --- *)

val set_transport_fault : t -> xfault option -> unit
(** Arm a one-shot transport fault consumed by the next {!deposit}. *)

val deposit : t -> src:int -> dst:int -> tag:int -> data:Bytes.t -> message
(** Add a message to the pending queue and wake waiters. Raises
    {!Revoked} / {!Proc_failed} if the comm is revoked or [dst] dead.
    A pending [Xdrop] loses the message (it is returned but never
    queued); a pending [Xdelay n] hides it for [n] progress rounds. *)

val post_recv : t -> Request.t -> src:int -> tag:int -> posted_recv
(** Raises {!Revoked} on a revoked comm. A receive from an already-dead
    source with nothing in flight completes immediately with error. *)

val progress : t -> unit
(** Match posted receives (in post order) against pending messages (in
    arrival order) until a fixpoint, delivering payloads by raw copy
    (simulated RDMA — invisible to instrumented loads/stores). Each
    call first ages injected delays by one round. *)

(* --- collectives --- *)

val collective :
  ?label:string ->
  ?ignore_failures:bool ->
  t ->
  int ->
  contribute:(round -> unit) ->
  extract:(round -> 'a) ->
  'a
(** Generic collective skeleton: every rank contributes, the last
    arrival completes the round, then every rank extracts. [label]
    names the MPI call in deadlock/watchdog diagnostics.

    Default: raises {!Proc_failed} when any member is dead (at entry or
    mid-round) and {!Revoked} on a revoked comm. With [ignore_failures]
    (recovery operations, shutdown barrier) the round completes once
    every live rank contributed, revoked or not. *)

(* --- ULFM-style recovery --- *)

val revoke : t -> unit
(** [MPIX_Comm_revoke]: mark the communicator unusable and wake blocked
    peers; their waits raise {!Revoked}. Any rank may revoke; idempotent. *)

val shrink : t -> int -> t * int
(** [MPIX_Comm_shrink comm rank] is a fault-tolerant collective over
    the survivors returning [(new_comm, new_rank)] — a fresh
    communicator of exactly the live ranks (inheriting the error
    handler, registered for failure cascade) and the caller's rank in
    it. *)

val agree : t -> int -> int -> int
(** [MPIX_Comm_agree comm rank v]: fault-tolerant agreement — bitwise
    AND of the live ranks' contributions. Works on a revoked comm. *)
