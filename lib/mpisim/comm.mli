(** Communicator state: pending message queues with MPI's non-overtaking
    matching order, posted receives, and round-based collectives.
    Matching is driven by the receiving side via {!progress}. *)

val any_source : int
val any_tag : int

type message = {
  m_src : int;
  m_dst : int;
  m_tag : int;
  m_data : Bytes.t;  (** eager snapshot taken at the send call *)
  m_seq : int;  (** arrival order, for FIFO matching *)
  mutable m_delivered : bool;  (** set at match; MPI_Ssend waits on this *)
}

type posted_recv = {
  r_req : Request.t;
  r_src : int;  (** may be {!any_source} *)
  r_tag : int;  (** may be {!any_tag} *)
  p_seq : int;  (** post order *)
  mutable r_matched : bool;
}

type round = {
  mutable contrib : int;  (** ranks that contributed so far *)
  mutable readers : int;  (** ranks that extracted the result *)
  mutable vals : float array;  (** float payload (reductions, gathers) *)
  mutable ivals : int array;
  mutable ptrs : Memsim.Ptr.t option array;  (** window creation payload *)
  mutable done_ : bool;
}
(** State of one collective round. *)

(** MPI error handling, per communicator ([MPI_Comm_set_errhandler]):
    [Errors_are_fatal] is MPI's default — any error aborts the job;
    [Errors_return] hands the application an error class and lets it
    continue. *)
type errhandler = Errors_are_fatal | Errors_return

type errcode =
  | Err_success  (** MPI_SUCCESS *)
  | Err_truncate  (** MPI_ERR_TRUNCATE *)
  | Err_rank  (** MPI_ERR_RANK *)
  | Err_range  (** MPI_ERR_RANGE: RMA target out of window bounds *)
  | Err_win  (** MPI_ERR_WIN *)
  | Err_other  (** MPI_ERR_OTHER: e.g. injected transport faults *)

val errcode_to_string : errcode -> string

type t = {
  size : int;
  mutable msgs : message list;
  mutable recvs : posted_recv list;
  mutable next_seq : int;
  cond : Sched.Scheduler.cond;  (** signalled on every matching event *)
  rounds : (int, round) Hashtbl.t;
  coll_seq : int array;  (** per-rank collective sequence number *)
  mutable truncations : int;
  mutable errhandler : errhandler;
  last_errcode : errcode array;  (** per-rank last error *)
}

exception Truncation of string
(** A matched message exceeds the posted receive's capacity
    (MPI_ERR_TRUNCATE). *)

exception Invalid_rank of int

val create : int -> t
val check_rank : t -> int -> unit

val deposit : t -> src:int -> dst:int -> tag:int -> data:Bytes.t -> message
(** Add a message to the pending queue and wake waiters. *)

val post_recv : t -> Request.t -> src:int -> tag:int -> posted_recv

val progress : t -> unit
(** Match posted receives (in post order) against pending messages (in
    arrival order) until a fixpoint, delivering payloads by raw copy
    (simulated RDMA — invisible to instrumented loads/stores). *)

val collective :
  ?label:string -> t -> int -> contribute:(round -> unit) -> extract:(round -> 'a) -> 'a
(** Generic collective skeleton: every rank contributes, the last
    arrival completes the round, then every rank extracts. [label]
    names the MPI call in deadlock/watchdog diagnostics. *)
