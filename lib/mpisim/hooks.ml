(* PMPI-style interception: tools (MUST) register a callback and observe
   every MPI call with its arguments, before and after execution. *)

type phase = Pre | Post

type call =
  | Init
  | Finalize
  | Send of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; dst : int; tag : int }
  | Ssend of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; dst : int; tag : int }
  | Recv of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; src : int; tag : int }
  | Isend of { req : Request.t }
  | Irecv of { req : Request.t }
  | Wait of { req : Request.t }
  | Waitall of { reqs : Request.t list }
  | Test of { req : Request.t; completed : bool }
  | Barrier
  | Allreduce of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
    }
  | Bcast of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; root : int }
  | Reduce of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      root : int;
    }
  | Allgather of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int; (* elements contributed per rank *)
      dt : Datatype.t;
    }
  | Gather of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      root : int;
    }
  | Scatter of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int; (* elements received per rank *)
      dt : Datatype.t;
      root : int;
    }
  | Win_create of { win : Win.t; buf : Memsim.Ptr.t; bytes : int }
  | Win_fence of { win : Win.t }
  | Win_free of { win : Win.t }
  | Rma_put of {
      win : Win.t;
      buf : Memsim.Ptr.t; (* origin buffer *)
      count : int;
      dt : Datatype.t;
      target : int;
      disp : int; (* target displacement, in elements of [dt] *)
    }
  | Rma_get of {
      win : Win.t;
      buf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      target : int;
      disp : int;
    }
  | Rma_accumulate of {
      win : Win.t;
      buf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      target : int;
      disp : int;
    }

let call_name = function
  | Init -> "MPI_Init"
  | Finalize -> "MPI_Finalize"
  | Send _ -> "MPI_Send"
  | Ssend _ -> "MPI_Ssend"
  | Recv _ -> "MPI_Recv"
  | Isend _ -> "MPI_Isend"
  | Irecv _ -> "MPI_Irecv"
  | Wait _ -> "MPI_Wait"
  | Waitall _ -> "MPI_Waitall"
  | Test _ -> "MPI_Test"
  | Barrier -> "MPI_Barrier"
  | Allreduce _ -> "MPI_Allreduce"
  | Bcast _ -> "MPI_Bcast"
  | Reduce _ -> "MPI_Reduce"
  | Allgather _ -> "MPI_Allgather"
  | Gather _ -> "MPI_Gather"
  | Scatter _ -> "MPI_Scatter"
  | Win_create _ -> "MPI_Win_create"
  | Win_fence _ -> "MPI_Win_fence"
  | Win_free _ -> "MPI_Win_free"
  | Rma_put _ -> "MPI_Put"
  | Rma_get _ -> "MPI_Get"
  | Rma_accumulate _ -> "MPI_Accumulate"

(* Flight-recorder rendering of a call's arguments: the peer, tag and
   count fields a trace reader needs to follow a message. *)
let call_args call =
  let i = string_of_int in
  let req_args (r : Request.t) =
    [
      ("req", i r.Request.rid);
      ("peer", i r.Request.peer);
      ("tag", i r.Request.tag);
      ("count", i r.Request.count);
    ]
  in
  match call with
  | Init | Finalize | Barrier -> []
  | Send { dst; tag; count; _ } | Ssend { dst; tag; count; _ } ->
      [ ("dst", i dst); ("tag", i tag); ("count", i count) ]
  | Recv { src; tag; count; _ } ->
      [ ("src", i src); ("tag", i tag); ("count", i count) ]
  | Isend { req } | Irecv { req } | Wait { req } -> req_args req
  | Test { req; completed } ->
      req_args req @ [ ("completed", string_of_bool completed) ]
  | Waitall { reqs } -> [ ("reqs", i (List.length reqs)) ]
  | Allreduce { count; _ } | Allgather { count; _ } -> [ ("count", i count) ]
  | Bcast { count; root; _ }
  | Reduce { count; root; _ }
  | Gather { count; root; _ }
  | Scatter { count; root; _ } ->
      [ ("count", i count); ("root", i root) ]
  | Win_create { bytes; _ } -> [ ("bytes", i bytes) ]
  | Win_fence _ | Win_free _ -> []
  | Rma_put { target; disp; count; _ }
  | Rma_get { target; disp; count; _ }
  | Rma_accumulate { target; disp; count; _ } ->
      [ ("target", i target); ("disp", i disp); ("count", i count) ]

(* Domain-local registry: each domain of a sharded runner attaches its
   own tools, so parallel runs never observe each other's hooks. *)
type state = {
  mutable registered : (rank:int -> phase -> call -> unit) list;
  mutable any : bool;
}

let state : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { registered = []; any = false })

let add f =
  let st = Domain.DLS.get state in
  st.registered <- f :: st.registered;
  st.any <- true

let any () = (Domain.DLS.get state).any

let clear () =
  let st = Domain.DLS.get state in
  st.registered <- [];
  st.any <- false

let fire ~rank phase call =
  (* Trace probe sits outside the [st.any] gate so vanilla (tool-less)
     flavors still produce MPI spans. A span left open in the trace is a
     call that never returned — exactly what a deadlock looks like. *)
  (if Trace.Recorder.on () then
     match phase with
     | Pre ->
         Trace.Recorder.begin_span ~cat:"mpi" ~args:(call_args call)
           (call_name call)
     | Post -> Trace.Recorder.end_span ~cat:"mpi" (call_name call));
  let st = Domain.DLS.get state in
  if st.any then List.iter (fun f -> f ~rank phase call) st.registered
