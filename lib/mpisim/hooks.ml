(* PMPI-style interception: tools (MUST) register a callback and observe
   every MPI call with its arguments, before and after execution. *)

type phase = Pre | Post

type call =
  | Init
  | Finalize
  | Send of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; dst : int; tag : int }
  | Ssend of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; dst : int; tag : int }
  | Recv of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; src : int; tag : int }
  | Isend of { req : Request.t }
  | Irecv of { req : Request.t }
  | Wait of { req : Request.t }
  | Waitall of { reqs : Request.t list }
  | Test of { req : Request.t; completed : bool }
  | Barrier
  | Allreduce of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
    }
  | Bcast of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; root : int }
  | Reduce of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      root : int;
    }
  | Allgather of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int; (* elements contributed per rank *)
      dt : Datatype.t;
    }
  | Gather of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      root : int;
    }
  | Scatter of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int; (* elements received per rank *)
      dt : Datatype.t;
      root : int;
    }
  | Win_create of { win : Win.t; buf : Memsim.Ptr.t; bytes : int }
  | Win_fence of { win : Win.t }
  | Win_free of { win : Win.t }
  | Rma_put of {
      win : Win.t;
      buf : Memsim.Ptr.t; (* origin buffer *)
      count : int;
      dt : Datatype.t;
      target : int;
      disp : int; (* target displacement, in elements of [dt] *)
    }
  | Rma_get of {
      win : Win.t;
      buf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      target : int;
      disp : int;
    }
  | Rma_accumulate of {
      win : Win.t;
      buf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      target : int;
      disp : int;
    }

let call_name = function
  | Init -> "MPI_Init"
  | Finalize -> "MPI_Finalize"
  | Send _ -> "MPI_Send"
  | Ssend _ -> "MPI_Ssend"
  | Recv _ -> "MPI_Recv"
  | Isend _ -> "MPI_Isend"
  | Irecv _ -> "MPI_Irecv"
  | Wait _ -> "MPI_Wait"
  | Waitall _ -> "MPI_Waitall"
  | Test _ -> "MPI_Test"
  | Barrier -> "MPI_Barrier"
  | Allreduce _ -> "MPI_Allreduce"
  | Bcast _ -> "MPI_Bcast"
  | Reduce _ -> "MPI_Reduce"
  | Allgather _ -> "MPI_Allgather"
  | Gather _ -> "MPI_Gather"
  | Scatter _ -> "MPI_Scatter"
  | Win_create _ -> "MPI_Win_create"
  | Win_fence _ -> "MPI_Win_fence"
  | Win_free _ -> "MPI_Win_free"
  | Rma_put _ -> "MPI_Put"
  | Rma_get _ -> "MPI_Get"
  | Rma_accumulate _ -> "MPI_Accumulate"

(* Domain-local registry: each domain of a sharded runner attaches its
   own tools, so parallel runs never observe each other's hooks. *)
type state = {
  mutable registered : (rank:int -> phase -> call -> unit) list;
  mutable any : bool;
}

let state : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { registered = []; any = false })

let add f =
  let st = Domain.DLS.get state in
  st.registered <- f :: st.registered;
  st.any <- true

let any () = (Domain.DLS.get state).any

let clear () =
  let st = Domain.DLS.get state in
  st.registered <- [];
  st.any <- false

let fire ~rank phase call =
  let st = Domain.DLS.get state in
  if st.any then List.iter (fun f -> f ~rank phase call) st.registered
