(** PMPI-style interception: tools (MUST) register a callback and
    observe every MPI call with its arguments, before and after
    execution. *)

type phase = Pre | Post

type call =
  | Init
  | Finalize
  | Send of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; dst : int; tag : int }
  | Ssend of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; dst : int; tag : int }
  | Recv of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; src : int; tag : int }
  | Isend of { req : Request.t }
  | Irecv of { req : Request.t }
  | Wait of { req : Request.t }
  | Waitall of { reqs : Request.t list }
  | Test of { req : Request.t; completed : bool }
  | Barrier
  | Allreduce of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
    }
  | Bcast of { buf : Memsim.Ptr.t; count : int; dt : Datatype.t; root : int }
  | Reduce of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      root : int;
    }
  | Allgather of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
    }
  | Gather of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      root : int;
    }
  | Scatter of {
      sendbuf : Memsim.Ptr.t;
      recvbuf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      root : int;
    }
  | Win_create of { win : Win.t; buf : Memsim.Ptr.t; bytes : int }
  | Win_fence of { win : Win.t }
  | Win_free of { win : Win.t }
  | Rma_put of {
      win : Win.t;
      buf : Memsim.Ptr.t;  (** origin buffer *)
      count : int;
      dt : Datatype.t;
      target : int;
      disp : int;  (** target displacement in elements of [dt] *)
    }
  | Rma_get of {
      win : Win.t;
      buf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      target : int;
      disp : int;
    }
  | Rma_accumulate of {
      win : Win.t;
      buf : Memsim.Ptr.t;
      count : int;
      dt : Datatype.t;
      target : int;
      disp : int;
    }

val call_name : call -> string
(** The MPI function name, e.g. ["MPI_Isend"]. *)

val any : unit -> bool
(** Whether any hook is registered in the calling domain (fast-path
    check). *)

val add : (rank:int -> phase -> call -> unit) -> unit
val clear : unit -> unit
val fire : rank:int -> phase -> call -> unit
