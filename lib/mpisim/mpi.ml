(* The user-facing MPI API of the simulator. Ranks run as deterministic
   green threads; buffers are pointers into the simulated UVA address
   space, so device pointers are legal arguments everywhere — this is a
   CUDA-aware MPI (paper, Section III-D). Message payloads move as raw
   bytes (simulated RDMA), invisible to instrumented loads/stores. *)

module H = Hooks
open Memsim

type ctx = { rank : int; size : int; comm : Comm.t }

let any_source = Comm.any_source
let any_tag = Comm.any_tag

exception Abort of string

(* --- error handling and fault injection --------------------------------- *)

let comm_set_errhandler ctx eh = ctx.comm.Comm.errhandler <- eh
let comm_get_errhandler ctx = ctx.comm.Comm.errhandler
let last_error ctx = ctx.comm.Comm.last_errcode.(ctx.rank)
let error_string = Comm.errcode_to_string

let set_errcode ctx code = ctx.comm.Comm.last_errcode.(ctx.rank) <- code

(* Error codes persist across successful calls (like errno); recovery
   loops clear explicitly before probing a fresh operation. *)
let clear_error ctx = set_errcode ctx Comm.Err_success

let errcode_of_exn = function
  | Comm.Truncation _ -> Comm.Err_truncate
  | Comm.Invalid_rank _ -> Comm.Err_rank
  | Comm.Proc_failed _ -> Comm.Err_proc_failed
  | Comm.Revoked -> Comm.Err_revoked
  | Win.Target_out_of_bounds _ -> Comm.Err_range
  | Win.Window_freed -> Comm.Err_win
  | _ -> Comm.Err_other

(* Every MPI entry point runs through [guard]: first the fault injector
   is probed for this call site, then simulation errors raised by the
   call body are routed through the communicator's error handler —
   [Errors_are_fatal] propagates (the MPI default: the job dies),
   [Errors_return] records the error class for [last_error] and returns
   [default ()]. [default] is a thunk so the error path allocates
   nothing (e.g. no Request ids) unless it is actually taken. Injected
   faults always carry rank provenance. *)
let injected_error ctx ~call =
  set_errcode ctx Comm.Err_other;
  match ctx.comm.Comm.errhandler with
  | Comm.Errors_return -> true
  | Comm.Errors_are_fatal ->
      raise (Abort (Fmt.str "rank %d: injected fault in %s" ctx.rank call))

let guard ctx ~site ~call ~default f =
  let injected_fail =
    (* Probes are attributed to *world* ranks: fault plans target the
       ranks the job started with, stable across comm shrinks. *)
    match
      Faultsim.Injector.probe ~site ~rank:(Comm.world_rank ctx.comm ctx.rank) ()
    with
    | None -> false
    | Some Faultsim.Plan.Hang ->
        Faultsim.Injector.hang ~site ();
        false
    | Some Faultsim.Plan.Abort ->
        raise (Abort (Fmt.str "rank %d: injected abort in %s" ctx.rank call))
    | Some Faultsim.Plan.Crash ->
        (* Terminal: unwinds the whole rank task; the supervisor in
           [run] marks the rank dead so peers observe the failure. *)
        Faultsim.Injector.crash ~site ();
        false
    | Some ((Faultsim.Plan.Drop | Faultsim.Plan.Delay _) as a)
      when site = Faultsim.Site.Mpi_send ->
        (* Transport faults apply to the message this send is about to
           deposit; the call itself succeeds, as on real hardware. *)
        Comm.set_transport_fault ctx.comm
          (Some
             (match a with
             | Faultsim.Plan.Drop -> Comm.Xdrop
             | Faultsim.Plan.Delay n -> Comm.Xdelay n
             | _ -> assert false));
        false
    | Some (Faultsim.Plan.Drop | Faultsim.Plan.Delay _ | Faultsim.Plan.Wedge) ->
        (* Outside their domain these degrade to a generic failure, as
           the plan grammar documents. *)
        injected_error ctx ~call
    | Some Faultsim.Plan.Fail -> injected_error ctx ~call
  in
  if injected_fail then default ()
  else
    try f ()
    with
    | ( Comm.Truncation _ | Comm.Invalid_rank _ | Comm.Proc_failed _
      | Comm.Revoked | Win.Target_out_of_bounds _ | Win.Window_freed ) as e
    -> (
      set_errcode ctx (errcode_of_exn e);
      match ctx.comm.Comm.errhandler with
      | Comm.Errors_return -> default ()
      | Comm.Errors_are_fatal -> raise e)

(* --- run --------------------------------------------------------------- *)

let run ?watchdog ?picker ~nranks f =
  if nranks <= 0 then invalid_arg "Mpi.run: nranks";
  let comm = Comm.create nranks in
  Sched.Scheduler.run ?watchdog ?picker
    (List.init nranks (fun rank ->
         ( Fmt.str "rank%d" rank,
           fun () ->
             let ctx = { rank; size = nranks; comm } in
             H.fire ~rank H.Pre H.Init;
             H.fire ~rank H.Post H.Init;
             match f ctx with
             | () ->
                 H.fire ~rank H.Pre H.Finalize;
                 (* Shutdown path: never subject to fault injection, so a
                    surviving rank's tools always get their finalize. It
                    tolerates failures: survivors must not wait for the
                    dead. *)
                 ignore
                   (Comm.collective ~label:"MPI_Finalize"
                      ~ignore_failures:true comm rank
                      ~contribute:(fun _ -> ())
                      ~extract:(fun _ -> ()));
                 H.fire ~rank H.Post H.Finalize
             | exception Faultsim.Injector.Rank_killed _ ->
                 (* Per-rank supervisor: the rank is dead. Propagate the
                    failure to every communicator (peers see
                    MPI_ERR_PROC_FAILED), skip its finalize, and end the
                    task normally so the survivors keep running. The
                    harness has already recorded the post-mortem on the
                    way through. *)
                 Comm.mark_dead comm ~world_rank:rank )))

(* --- point-to-point ----------------------------------------------------- *)

let snapshot (buf : Ptr.t) bytes =
  Ptr.check buf bytes;
  Bytes.sub buf.Ptr.alloc.Alloc.data buf.Ptr.off bytes

let send ctx ~buf ~count ~dt ~dst ~tag =
  guard ctx ~site:Faultsim.Site.Mpi_send
    ~call:(Fmt.str "MPI_Send(dst=%d, tag=%d)" dst tag)
    ~default:(fun () -> ()) (fun () ->
      let call = H.Send { buf; count; dt; dst; tag } in
      H.fire ~rank:ctx.rank H.Pre call;
      let data = snapshot buf (count * dt.Datatype.size) in
      ignore (Comm.deposit ctx.comm ~src:ctx.rank ~dst ~tag ~data);
      H.fire ~rank:ctx.rank H.Post call)

(* Synchronous send: returns only once the receiver has matched the
   message (rendezvous protocol) — the variant whose misuse produces
   classic send-send deadlocks. *)
let ssend ctx ~buf ~count ~dt ~dst ~tag =
  guard ctx ~site:Faultsim.Site.Mpi_send
    ~call:(Fmt.str "MPI_Ssend(dst=%d, tag=%d)" dst tag)
    ~default:(fun () -> ()) (fun () ->
      let call = H.Ssend { buf; count; dt; dst; tag } in
      H.fire ~rank:ctx.rank H.Pre call;
      let data = snapshot buf (count * dt.Datatype.size) in
      let m = Comm.deposit ctx.comm ~src:ctx.rank ~dst ~tag ~data in
      Sched.Scheduler.wait_until
        ~reason:(Fmt.str "MPI_Ssend(dst=%d, tag=%d)" dst tag)
        ctx.comm.Comm.cond
        (fun () ->
          (* Delivery is checked first: a message the receiver already
             matched counts even if the receiver has since died. *)
          m.Comm.m_delivered
          ||
          (if ctx.comm.Comm.revoked then raise Comm.Revoked;
           if Comm.is_dead ctx.comm dst then raise (Comm.Proc_failed dst);
           false));
      H.fire ~rank:ctx.rank H.Post call)

let dummy_request ~kind ~buf ~count ~dt ~peer ~tag ~owner =
  let req = Request.make ~kind ~buf ~count ~dt ~peer ~tag ~owner in
  req.Request.complete <- true;
  req

let isend ctx ~buf ~count ~dt ~dst ~tag =
  guard ctx ~site:Faultsim.Site.Mpi_send
    ~call:(Fmt.str "MPI_Isend(dst=%d, tag=%d)" dst tag)
    ~default:(fun () ->
      dummy_request ~kind:Request.Isend ~buf ~count ~dt ~peer:dst ~tag
        ~owner:ctx.rank)
    (fun () ->
      let req =
        Request.make ~kind:Request.Isend ~buf ~count ~dt ~peer:dst ~tag
          ~owner:ctx.rank
      in
      H.fire ~rank:ctx.rank H.Pre (H.Isend { req });
      (* Eager protocol: the payload leaves the buffer at the send call;
         the request completes at MPI_Wait. *)
      let data = snapshot buf (count * dt.Datatype.size) in
      ignore (Comm.deposit ctx.comm ~src:ctx.rank ~dst ~tag ~data);
      H.fire ~rank:ctx.rank H.Post (H.Isend { req });
      req)

let irecv ctx ~buf ~count ~dt ~src ~tag =
  guard ctx ~site:Faultsim.Site.Mpi_recv
    ~call:(Fmt.str "MPI_Irecv(src=%d, tag=%d)" src tag)
    ~default:(fun () ->
      dummy_request ~kind:Request.Irecv ~buf ~count ~dt ~peer:src ~tag
        ~owner:ctx.rank)
    (fun () ->
      let req =
        Request.make ~kind:Request.Irecv ~buf ~count ~dt ~peer:src ~tag
          ~owner:ctx.rank
      in
      H.fire ~rank:ctx.rank H.Pre (H.Irecv { req });
      ignore (Comm.post_recv ctx.comm req ~src ~tag);
      Comm.progress ctx.comm;
      H.fire ~rank:ctx.rank H.Post (H.Irecv { req });
      req)

let wait_complete ?reason ctx (req : Request.t) =
  match req.Request.kind with
  | Request.Isend -> req.Request.complete <- true
  | Request.Irecv ->
      let reason =
        match reason with
        | Some r -> r
        | None ->
            Fmt.str "MPI_Wait(Irecv src=%d, tag=%d)" req.Request.peer
              req.Request.tag
      in
      Comm.progress ctx.comm;
      Sched.Scheduler.wait_until ~reason ctx.comm.Comm.cond (fun () ->
          if req.Request.complete then true
          else begin
            if ctx.comm.Comm.revoked then raise Comm.Revoked;
            Comm.progress ctx.comm;
            req.Request.complete
          end);
      (* A complete-with-error request (source died with nothing in
         flight) surfaces as MPI_ERR_PROC_FAILED at the wait — it never
         hangs. *)
      (match req.Request.error with
      | Some _ -> raise (Comm.Proc_failed (max 0 req.Request.peer))
      | None -> ())

let wait ctx req =
  guard ctx ~site:Faultsim.Site.Mpi_wait ~call:"MPI_Wait" ~default:(fun () -> ())
    (fun () ->
      H.fire ~rank:ctx.rank H.Pre (H.Wait { req });
      wait_complete ctx req;
      H.fire ~rank:ctx.rank H.Post (H.Wait { req }))

let waitall ctx reqs =
  guard ctx ~site:Faultsim.Site.Mpi_wait ~call:"MPI_Waitall" ~default:(fun () -> ())
    (fun () ->
      H.fire ~rank:ctx.rank H.Pre (H.Waitall { reqs });
      List.iter (wait_complete ctx) reqs;
      H.fire ~rank:ctx.rank H.Post (H.Waitall { reqs }))

let test ctx (req : Request.t) =
  guard ctx ~site:Faultsim.Site.Mpi_wait ~call:"MPI_Test" ~default:(fun () -> false)
    (fun () ->
      Comm.progress ctx.comm;
      if req.Request.kind = Request.Isend then req.Request.complete <- true;
      let completed = req.Request.complete in
      H.fire ~rank:ctx.rank H.Pre (H.Test { req; completed });
      H.fire ~rank:ctx.rank H.Post (H.Test { req; completed });
      (* An incomplete test yields: a test busy-loop then makes visible
         progress for the scheduler instead of monopolizing its task, so
         the watchdog can observe (and bound) the spinning. *)
      if not completed then Sched.Scheduler.yield ();
      completed)

let recv ctx ~buf ~count ~dt ~src ~tag =
  guard ctx ~site:Faultsim.Site.Mpi_recv
    ~call:(Fmt.str "MPI_Recv(src=%d, tag=%d)" src tag)
    ~default:(fun () -> ()) (fun () ->
      let call = H.Recv { buf; count; dt; src; tag } in
      H.fire ~rank:ctx.rank H.Pre call;
      let req =
        Request.make ~kind:Request.Irecv ~buf ~count ~dt ~peer:src ~tag
          ~owner:ctx.rank
      in
      ignore (Comm.post_recv ctx.comm req ~src ~tag);
      wait_complete ~reason:(Fmt.str "MPI_Recv(src=%d, tag=%d)" src tag) ctx
        req;
      H.fire ~rank:ctx.rank H.Post call)

let sendrecv ctx ~sendbuf ~sendcount ~dst ~sendtag ~recvbuf ~recvcount ~src
    ~recvtag ~dt =
  send ctx ~buf:sendbuf ~count:sendcount ~dt ~dst ~tag:sendtag;
  recv ctx ~buf:recvbuf ~count:recvcount ~dt ~src ~tag:recvtag

(* --- collectives -------------------------------------------------------- *)

type reduce_op = Sum | Prod | Min | Max

let apply_op op a b =
  match op with
  | Sum -> a +. b
  | Prod -> a *. b
  | Min -> Float.min a b
  | Max -> Float.max a b

let read_elems (buf : Ptr.t) count (dt : Datatype.t) =
  match dt.Datatype.elem with
  | Typeart.Typedb.F64 -> Array.init count (Access.raw_get_f64 buf)
  | Typeart.Typedb.F32 -> Array.init count (Access.raw_get_f32 buf)
  | Typeart.Typedb.I32 ->
      Array.init count (fun i -> float_of_int (Access.raw_get_i32 buf i))
  | _ ->
      raise (Abort (Fmt.str "reduction on unsupported datatype %a" Datatype.pp dt))

let write_elems (buf : Ptr.t) (dt : Datatype.t) vals =
  match dt.Datatype.elem with
  | Typeart.Typedb.F64 -> Array.iteri (Access.raw_set_f64 buf) vals
  | Typeart.Typedb.F32 -> Array.iteri (Access.raw_set_f32 buf) vals
  | Typeart.Typedb.I32 ->
      Array.iteri (fun i v -> Access.raw_set_i32 buf i (int_of_float v)) vals
  | _ -> assert false

let barrier ctx =
  guard ctx ~site:Faultsim.Site.Mpi_collective ~call:"MPI_Barrier"
    ~default:(fun () -> ())
    (fun () ->
      H.fire ~rank:ctx.rank H.Pre H.Barrier;
      Comm.collective ~label:"MPI_Barrier" ctx.comm ctx.rank
        ~contribute:(fun _ -> ())
        ~extract:(fun _ -> ());
      H.fire ~rank:ctx.rank H.Post H.Barrier)

let reduce_round ctx ~label ~op ~sendbuf ~count ~dt =
  Comm.collective ~label ctx.comm ctx.rank
    ~contribute:(fun r ->
      let mine = read_elems sendbuf count dt in
      if r.Comm.contrib = 0 then r.Comm.vals <- mine
      else
        Array.iteri (fun i v -> r.Comm.vals.(i) <- apply_op op r.Comm.vals.(i) v) mine)
    ~extract:(fun r -> r.Comm.vals)

let allreduce ctx ~sendbuf ~recvbuf ~count ~dt ~op =
  guard ctx ~site:Faultsim.Site.Mpi_collective ~call:"MPI_Allreduce"
    ~default:(fun () -> ())
    (fun () ->
      let call = H.Allreduce { sendbuf; recvbuf; count; dt } in
      H.fire ~rank:ctx.rank H.Pre call;
      let vals =
        reduce_round ctx ~label:"MPI_Allreduce" ~op ~sendbuf ~count ~dt
      in
      write_elems recvbuf dt vals;
      H.fire ~rank:ctx.rank H.Post call)

let reduce ctx ~sendbuf ~recvbuf ~count ~dt ~op ~root =
  guard ctx ~site:Faultsim.Site.Mpi_collective ~call:"MPI_Reduce"
    ~default:(fun () -> ())
    (fun () ->
      let call = H.Reduce { sendbuf; recvbuf; count; dt; root } in
      H.fire ~rank:ctx.rank H.Pre call;
      let vals = reduce_round ctx ~label:"MPI_Reduce" ~op ~sendbuf ~count ~dt in
      if ctx.rank = root then write_elems recvbuf dt vals;
      H.fire ~rank:ctx.rank H.Post call)

let allgather ctx ~sendbuf ~recvbuf ~count ~dt =
  guard ctx ~site:Faultsim.Site.Mpi_collective ~call:"MPI_Allgather"
    ~default:(fun () -> ())
    (fun () ->
      let call = H.Allgather { sendbuf; recvbuf; count; dt } in
      H.fire ~rank:ctx.rank H.Pre call;
      let all =
        Comm.collective ~label:"MPI_Allgather" ctx.comm ctx.rank
          ~contribute:(fun r ->
            if Array.length r.Comm.vals = 0 then
              r.Comm.vals <- Array.make (ctx.size * count) 0.;
            let mine = read_elems sendbuf count dt in
            Array.blit mine 0 r.Comm.vals (ctx.rank * count) count)
          ~extract:(fun r -> r.Comm.vals)
      in
      write_elems recvbuf dt all;
      H.fire ~rank:ctx.rank H.Post call)

let gather ctx ~sendbuf ~recvbuf ~count ~dt ~root =
  guard ctx ~site:Faultsim.Site.Mpi_collective ~call:"MPI_Gather"
    ~default:(fun () -> ())
    (fun () ->
      let call = H.Gather { sendbuf; recvbuf; count; dt; root } in
      H.fire ~rank:ctx.rank H.Pre call;
      let all =
        Comm.collective ~label:"MPI_Gather" ctx.comm ctx.rank
          ~contribute:(fun r ->
            if Array.length r.Comm.vals = 0 then
              r.Comm.vals <- Array.make (ctx.size * count) 0.;
            let mine = read_elems sendbuf count dt in
            Array.blit mine 0 r.Comm.vals (ctx.rank * count) count)
          ~extract:(fun r -> r.Comm.vals)
      in
      if ctx.rank = root then write_elems recvbuf dt all;
      H.fire ~rank:ctx.rank H.Post call)

let scatter ctx ~sendbuf ~recvbuf ~count ~dt ~root =
  guard ctx ~site:Faultsim.Site.Mpi_collective ~call:"MPI_Scatter"
    ~default:(fun () -> ())
    (fun () ->
      let call = H.Scatter { sendbuf; recvbuf; count; dt; root } in
      H.fire ~rank:ctx.rank H.Pre call;
      let all =
        Comm.collective ~label:"MPI_Scatter" ctx.comm ctx.rank
          ~contribute:(fun r ->
            if ctx.rank = root then
              r.Comm.vals <- read_elems sendbuf (ctx.size * count) dt)
          ~extract:(fun r -> r.Comm.vals)
      in
      write_elems recvbuf dt (Array.sub all (ctx.rank * count) count);
      H.fire ~rank:ctx.rank H.Post call)

(* --- one-sided communication (RMA, fence synchronization) --------------- *)

(* Collective window creation: every rank exposes [buf] of [bytes];
   handles are per-rank (sharing wid, buffers and fence schedule), like
   MPI_Win handles referring to one window object. *)
let win_create ctx ~buf ~bytes =
  Ptr.check buf bytes;
  let buffers, sizes, wid =
    Comm.collective ~label:"MPI_Win_create" ctx.comm ctx.rank
      ~contribute:(fun r ->
        if Array.length r.Comm.ivals = 0 then begin
          r.Comm.ivals <- Array.make ctx.size 0;
          (* the first contributor draws the window id, so every rank's
             handle refers to the same window *)
          r.Comm.vals <- [| float_of_int (Win.fresh_wid ()) |]
        end;
        r.Comm.ptrs.(ctx.rank) <- Some buf;
        r.Comm.ivals.(ctx.rank) <- bytes)
      ~extract:(fun r ->
        ( Array.map Option.get r.Comm.ptrs,
          Array.copy r.Comm.ivals,
          int_of_float r.Comm.vals.(0) ))
  in
  let win = { Win.wid; buffers; sizes; epoch = 0; freed = false } in
  let call = H.Win_create { win; buf; bytes } in
  H.fire ~rank:ctx.rank H.Pre call;
  H.fire ~rank:ctx.rank H.Post call;
  win

(* Fence: closes the current access epoch and opens the next one. All
   RMA issued before the fence is complete (at origin and target) once
   it returns. *)
let win_fence ctx (win : Win.t) =
  guard ctx ~site:Faultsim.Site.Mpi_win ~call:"MPI_Win_fence"
    ~default:(fun () -> ())
    (fun () ->
      Win.check_live win;
      let call = H.Win_fence { win } in
      H.fire ~rank:ctx.rank H.Pre call;
      Comm.collective ~label:"MPI_Win_fence" ctx.comm ctx.rank
        ~contribute:(fun _ -> ())
        ~extract:(fun _ -> ());
      win.Win.epoch <- win.Win.epoch + 1;
      H.fire ~rank:ctx.rank H.Post call)

let win_free ctx (win : Win.t) =
  guard ctx ~site:Faultsim.Site.Mpi_win ~call:"MPI_Win_free"
    ~default:(fun () -> ())
    (fun () ->
      Win.check_live win;
      let call = H.Win_free { win } in
      H.fire ~rank:ctx.rank H.Pre call;
      Comm.collective ~label:"MPI_Win_free" ctx.comm ctx.rank
        ~contribute:(fun _ -> ())
        ~extract:(fun _ -> ());
      win.Win.freed <- true;
      H.fire ~rank:ctx.rank H.Post call)

(* MPI_Put: one-sided write of [count] elements into the target rank's
   window at element displacement [disp]. Data moves as raw bytes — the
   RDMA transfer no load/store instrumentation can see. *)
let put ctx (win : Win.t) ~buf ~count ~dt ~target ~disp =
  guard ctx ~site:Faultsim.Site.Mpi_win
    ~call:(Fmt.str "MPI_Put(target=%d)" target)
    ~default:(fun () -> ())
    (fun () ->
      let bytes = count * dt.Datatype.size in
      let disp_bytes = disp * dt.Datatype.size in
      Win.check_target win ~target ~disp_bytes ~bytes;
      Ptr.check buf bytes;
      let call = H.Rma_put { win; buf; count; dt; target; disp } in
      H.fire ~rank:ctx.rank H.Pre call;
      Access.raw_blit ~src:buf
        ~dst:(Win.target_ptr win ~target ~disp_bytes)
        ~bytes;
      H.fire ~rank:ctx.rank H.Post call)

(* MPI_Get: one-sided read from the target's window into [buf]. *)
let get ctx (win : Win.t) ~buf ~count ~dt ~target ~disp =
  guard ctx ~site:Faultsim.Site.Mpi_win
    ~call:(Fmt.str "MPI_Get(target=%d)" target)
    ~default:(fun () -> ())
    (fun () ->
      let bytes = count * dt.Datatype.size in
      let disp_bytes = disp * dt.Datatype.size in
      Win.check_target win ~target ~disp_bytes ~bytes;
      Ptr.check buf bytes;
      let call = H.Rma_get { win; buf; count; dt; target; disp } in
      H.fire ~rank:ctx.rank H.Pre call;
      Access.raw_blit
        ~src:(Win.target_ptr win ~target ~disp_bytes)
        ~dst:buf ~bytes;
      H.fire ~rank:ctx.rank H.Post call)

(* MPI_Accumulate with MPI_SUM-style ops: concurrent accumulates to the
   same location (same op) are legal per the MPI standard. *)
let accumulate ctx (win : Win.t) ~buf ~count ~dt ~op ~target ~disp =
  guard ctx ~site:Faultsim.Site.Mpi_win
    ~call:(Fmt.str "MPI_Accumulate(target=%d)" target)
    ~default:(fun () -> ())
    (fun () ->
      let bytes = count * dt.Datatype.size in
      let disp_bytes = disp * dt.Datatype.size in
      Win.check_target win ~target ~disp_bytes ~bytes;
      let call = H.Rma_accumulate { win; buf; count; dt; target; disp } in
      H.fire ~rank:ctx.rank H.Pre call;
      let dst = Win.target_ptr win ~target ~disp_bytes in
      let mine = read_elems buf count dt in
      let theirs = read_elems dst count dt in
      write_elems dst dt (Array.mapi (fun i v -> apply_op op v theirs.(i)) mine);
      H.fire ~rank:ctx.rank H.Post call)

let bcast ctx ~buf ~count ~dt ~root =
  guard ctx ~site:Faultsim.Site.Mpi_collective ~call:"MPI_Bcast"
    ~default:(fun () -> ())
    (fun () ->
      let call = H.Bcast { buf; count; dt; root } in
      H.fire ~rank:ctx.rank H.Pre call;
      let vals =
        Comm.collective ~label:"MPI_Bcast" ctx.comm ctx.rank
          ~contribute:(fun r ->
            if ctx.rank = root then r.Comm.vals <- read_elems buf count dt)
          ~extract:(fun r -> r.Comm.vals)
      in
      if ctx.rank <> root then write_elems buf dt vals;
      H.fire ~rank:ctx.rank H.Post call)

(* --- ULFM-style fault tolerance ----------------------------------------- *)

let failed_ranks ctx = Comm.failed_ranks ctx.comm

(* MPIX_Comm_revoke: interrupt every peer blocked on this communicator;
   their pending operations return MPI_ERR_REVOKED. The standard
   recovery opening move after observing MPI_ERR_PROC_FAILED. *)
let comm_revoke ctx = Comm.revoke ctx.comm

(* MPIX_Comm_shrink: returns a fresh context on a communicator of the
   survivors, with this rank renumbered. Rank 0 of the new comm is the
   lowest surviving world rank. *)
let comm_shrink ctx =
  let sub, new_rank = Comm.shrink ctx.comm ctx.rank in
  { rank = new_rank; size = sub.Comm.size; comm = sub }

(* MPIX_Comm_agree: fault-tolerant agreement (bitwise AND over live
   ranks); completes despite failures and revocation. *)
let comm_agree ctx v = Comm.agree ctx.comm ctx.rank v

(* --- post-mortem support ------------------------------------------------ *)

(* The rank's posted-but-unmatched receives — what a crashed rank was
   still waiting for. The harness renders these in its post-mortem. *)
let pending_requests ctx =
  List.filter_map
    (fun pr ->
      if (not pr.Comm.r_matched) && pr.Comm.r_req.Request.owner = ctx.rank then
        Some pr.Comm.r_req
      else None)
    (List.rev ctx.comm.Comm.recvs)
