(** The user-facing MPI API of the simulator.

    Ranks run as deterministic green threads; buffers are pointers into
    the simulated UVA address space, so device pointers are legal
    arguments everywhere — this is a CUDA-aware MPI (paper, Section
    III-D). Message payloads move as raw bytes (simulated RDMA),
    invisible to instrumented loads/stores: MUST's annotations close
    exactly that gap. *)

type ctx = { rank : int; size : int; comm : Comm.t }
(** Per-rank handle passed to the program ([MPI_COMM_WORLD] view). *)

val any_source : int
val any_tag : int

exception Abort of string

val run :
  ?watchdog:int ->
  ?picker:Sched.Scheduler.picker ->
  nranks:int ->
  (ctx -> unit) ->
  unit
(** Run one instance of the program per rank under the deterministic
    scheduler. [MPI_Init]/[MPI_Finalize] events fire around the program,
    and [MPI_Finalize] is collective. [watchdog] bounds scheduling steps
    and [picker] overrides the FIFO dispatch policy (see
    {!Sched.Scheduler.run}); the shutdown path is never subject to
    fault injection.
    @raise Sched.Scheduler.Deadlock when communication deadlocks.
    @raise Sched.Scheduler.Stalled when the watchdog budget expires. *)

(** {1 Error handling}

    Every MPI call probes the fault injector ({!Faultsim.Injector}) and
    routes simulation errors ([Comm.Truncation], [Comm.Invalid_rank],
    [Win.Target_out_of_bounds], [Win.Window_freed]) through the
    communicator's error handler. Under [Errors_are_fatal] (the MPI
    default) the error propagates — injected faults as {!Abort} with
    rank provenance. Under [Errors_return] the call records an error
    class for {!last_error} and returns a neutral value (failed
    [isend]/[irecv] return an already-complete request). *)

val comm_set_errhandler : ctx -> Comm.errhandler -> unit
(** [MPI_Comm_set_errhandler] on the world communicator. *)

val comm_get_errhandler : ctx -> Comm.errhandler

val last_error : ctx -> Comm.errcode
(** The calling rank's last error class ([Err_success] if none). Error
    codes persist across successful calls, like [errno]. *)

val clear_error : ctx -> unit
(** Reset {!last_error} to [Err_success]; recovery loops call this
    before probing a fresh operation. *)

val error_string : Comm.errcode -> string
(** [MPI_Error_string]. *)

(** {1 Fault tolerance (ULFM subset)}

    A rank killed by an injected [Crash] is marked dead on all its
    communicators. Operations that need the dead peer fail with
    [MPI_ERR_PROC_FAILED] (exception [Comm.Proc_failed] under
    [Errors_are_fatal], error code under [Errors_return]); requests on
    it become complete-with-error so waits never hang. Recovery
    pattern: observe the error, {!comm_revoke} to interrupt peers,
    {!comm_shrink} to rebuild, optionally {!comm_agree} to agree on a
    restart point. *)

val failed_ranks : ctx -> int list
(** Ranks of this communicator known to have crashed, ascending
    ([MPIX_Comm_failure_ack]/[get_acked] collapsed into one query). *)

val comm_revoke : ctx -> unit
(** [MPIX_Comm_revoke]: mark the communicator unusable on all ranks and
    interrupt peers blocked on it (they get [MPI_ERR_REVOKED]). Any
    rank may call it; idempotent, not collective. *)

val comm_shrink : ctx -> ctx
(** [MPIX_Comm_shrink]: fault-tolerant collective over the survivors;
    returns a context on a fresh communicator containing exactly the
    live ranks, with this rank renumbered (rank 0 is the lowest
    surviving world rank). The new communicator inherits the error
    handler and receives subsequent failure notifications. *)

val comm_agree : ctx -> int -> int
(** [MPIX_Comm_agree]: fault-tolerant agreement — returns the bitwise
    AND of the live ranks' contributions. Works on a revoked
    communicator. *)

val pending_requests : ctx -> Request.t list
(** The rank's posted-but-unmatched receives, in post order — what a
    crashed rank was still waiting for. Used by harness post-mortems. *)

(** {1 Point-to-point}

    [count] is in elements of the datatype [dt]; tags are non-negative
    (or {!any_tag} for receives); matching is FIFO per (source, tag) —
    MPI's non-overtaking rule. *)

val send :
  ctx -> buf:Memsim.Ptr.t -> count:int -> dt:Datatype.t -> dst:int -> tag:int -> unit
(** Buffered (eager) send: the payload leaves the buffer immediately. *)

val ssend :
  ctx -> buf:Memsim.Ptr.t -> count:int -> dt:Datatype.t -> dst:int -> tag:int -> unit
(** Synchronous send: returns only once the receiver matched the message
    (rendezvous) — the variant whose misuse produces classic send-send
    deadlocks. *)

val recv :
  ctx -> buf:Memsim.Ptr.t -> count:int -> dt:Datatype.t -> src:int -> tag:int -> unit
(** Blocking receive; [count] is the capacity.
    @raise Comm.Truncation when the matched message is larger. *)

val isend :
  ctx -> buf:Memsim.Ptr.t -> count:int -> dt:Datatype.t -> dst:int -> tag:int ->
  Request.t

val irecv :
  ctx -> buf:Memsim.Ptr.t -> count:int -> dt:Datatype.t -> src:int -> tag:int ->
  Request.t

val wait : ctx -> Request.t -> unit
val waitall : ctx -> Request.t list -> unit

val test : ctx -> Request.t -> bool
(** Non-blocking completion check; also drives matching progress. *)

val sendrecv :
  ctx ->
  sendbuf:Memsim.Ptr.t ->
  sendcount:int ->
  dst:int ->
  sendtag:int ->
  recvbuf:Memsim.Ptr.t ->
  recvcount:int ->
  src:int ->
  recvtag:int ->
  dt:Datatype.t ->
  unit

(** {1 Collectives}

    All ranks of the communicator must call collectives in the same
    order. Reductions support f64, f32 and i32 datatypes. *)

type reduce_op = Sum | Prod | Min | Max

val barrier : ctx -> unit

val allreduce :
  ctx ->
  sendbuf:Memsim.Ptr.t ->
  recvbuf:Memsim.Ptr.t ->
  count:int ->
  dt:Datatype.t ->
  op:reduce_op ->
  unit

val reduce :
  ctx ->
  sendbuf:Memsim.Ptr.t ->
  recvbuf:Memsim.Ptr.t ->
  count:int ->
  dt:Datatype.t ->
  op:reduce_op ->
  root:int ->
  unit

val bcast : ctx -> buf:Memsim.Ptr.t -> count:int -> dt:Datatype.t -> root:int -> unit

val allgather :
  ctx ->
  sendbuf:Memsim.Ptr.t ->
  recvbuf:Memsim.Ptr.t ->
  count:int ->
  dt:Datatype.t ->
  unit
(** Every rank contributes [count] elements; [recvbuf] receives
    [size * count] elements ordered by rank. *)

val gather :
  ctx ->
  sendbuf:Memsim.Ptr.t ->
  recvbuf:Memsim.Ptr.t ->
  count:int ->
  dt:Datatype.t ->
  root:int ->
  unit

val scatter :
  ctx ->
  sendbuf:Memsim.Ptr.t ->
  recvbuf:Memsim.Ptr.t ->
  count:int ->
  dt:Datatype.t ->
  root:int ->
  unit
(** The root's [sendbuf] holds [size * count] elements; each rank
    receives its [count]-element slice. *)

(** {1 One-sided communication (RMA)}

    Active-target synchronization with fences: RMA operations are only
    valid inside an access epoch opened and closed by {!win_fence};
    target buffers must not be accessed locally while exposed, and
    origin buffers must not be reused before the closing fence. MUST's
    RMA extension detects violations of both rules. *)

val win_create : ctx -> buf:Memsim.Ptr.t -> bytes:int -> Win.t
(** Collective: every rank exposes [buf]. Handles are per-rank views of
    one window object. *)

val win_fence : ctx -> Win.t -> unit
(** Collective: completes all RMA of the closing epoch at origins and
    targets, and opens the next epoch. *)

val win_free : ctx -> Win.t -> unit

val put :
  ctx ->
  Win.t ->
  buf:Memsim.Ptr.t ->
  count:int ->
  dt:Datatype.t ->
  target:int ->
  disp:int ->
  unit
(** One-sided write into the target's window at element displacement
    [disp]. Raw transfer, invisible to load/store instrumentation. *)

val get :
  ctx ->
  Win.t ->
  buf:Memsim.Ptr.t ->
  count:int ->
  dt:Datatype.t ->
  target:int ->
  disp:int ->
  unit

val accumulate :
  ctx ->
  Win.t ->
  buf:Memsim.Ptr.t ->
  count:int ->
  dt:Datatype.t ->
  op:reduce_op ->
  target:int ->
  disp:int ->
  unit
(** Concurrent accumulates to the same location with the same op are
    legal per the MPI standard (modelled accordingly by MUST). *)
