(* Non-blocking communication requests. *)

type kind = Isend | Irecv

type t = {
  rid : int;
  kind : kind;
  buf : Memsim.Ptr.t;
  count : int;
  dt : Datatype.t;
  peer : int; (* destination for Isend, source selector for Irecv *)
  tag : int;
  owner : int; (* posting rank *)
  mutable complete : bool;
  mutable error : string option;
      (* complete-with-error: a failed request is always also complete,
         so MPI_Wait{,all} can never hang on it — the wait returns and
         surfaces the error through the communicator's handler *)
}

(* Domain-local and resettable: request ids appear in fiber names and
   diagnostics, so a run's reports must not depend on what ran before
   it — neither earlier cases in this domain nor cases in others. *)
let next_rid : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let reset_ids () = Domain.DLS.set next_rid 0

let make ~kind ~buf ~count ~dt ~peer ~tag ~owner =
  let rid = Domain.DLS.get next_rid in
  Domain.DLS.set next_rid (rid + 1);
  { rid; kind; buf; count; dt; peer; tag; owner; complete = false; error = None }

let bytes t = t.count * t.dt.Datatype.size

let pp ppf t =
  Fmt.pf ppf "req#%d(%s,%s x%d,peer=%d,tag=%d)" t.rid
    (match t.kind with Isend -> "Isend" | Irecv -> "Irecv")
    t.dt.Datatype.name t.count t.peer t.tag
