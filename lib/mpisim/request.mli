(** Non-blocking communication requests (MPI_Request). *)

type kind = Isend | Irecv

type t = {
  rid : int;  (** globally unique id; MUST keys its fibers on this *)
  kind : kind;
  buf : Memsim.Ptr.t;
  count : int;
  dt : Datatype.t;
  peer : int;  (** destination for Isend, source selector for Irecv *)
  tag : int;
  owner : int;  (** posting rank *)
  mutable complete : bool;
  mutable error : string option;
      (** complete-with-error. Invariant: [error <> None] implies
          [complete], so [MPI_Wait{,all}] on a failed request returns
          (and surfaces the error) instead of hanging. *)
}

val make :
  kind:kind ->
  buf:Memsim.Ptr.t ->
  count:int ->
  dt:Datatype.t ->
  peer:int ->
  tag:int ->
  owner:int ->
  t

val bytes : t -> int
(** The communication extent, [count * dt.size]. *)

val reset_ids : unit -> unit
(** Reset the domain-local request-id counter; called by the harness so
    each run's fiber names (["mpi:req<N>"]) are independent of what ran
    before it. *)

val pp : Format.formatter -> t -> unit
