(* MPI one-sided communication windows (RMA, active-target fence
   synchronization). A window exposes one buffer per rank; Put/Get/
   Accumulate access a *target* rank's buffer directly — the one-sided
   analogue of the DMA transfers MUST must annotate, with the extra
   twist that the access lands in another process's memory.

   The simulator applies RMA data movement immediately (one legal
   execution: MPI only promises visibility at the closing fence); race
   detection is annotation-based and independent of this choice. *)

type t = {
  wid : int;
  buffers : Memsim.Ptr.t array; (* per rank; window base pointers *)
  sizes : int array; (* per rank, bytes *)
  mutable epoch : int; (* completed fences *)
  mutable freed : bool;
}

(* Domain-local and resettable: window ids appear in diagnostics, so a
   run's output must not depend on earlier runs in this domain or on
   concurrent runs in other domains. *)
let next_wid : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let reset_ids () = Domain.DLS.set next_wid 0

let fresh_wid () =
  let wid = Domain.DLS.get next_wid in
  Domain.DLS.set next_wid (wid + 1);
  wid

exception Target_out_of_bounds of string
exception Window_freed

let check_live w = if w.freed then raise Window_freed

let check_target w ~target ~disp_bytes ~bytes =
  check_live w;
  if target < 0 || target >= Array.length w.buffers then
    raise (Target_out_of_bounds (Fmt.str "rank %d" target));
  if disp_bytes < 0 || disp_bytes + bytes > w.sizes.(target) then
    raise
      (Target_out_of_bounds
         (Fmt.str "win#%d rank %d: %d..%d of %d bytes" w.wid target disp_bytes
            (disp_bytes + bytes) w.sizes.(target)))

let target_ptr w ~target ~disp_bytes =
  Memsim.Ptr.add_bytes w.buffers.(target) disp_bytes

let pp ppf w = Fmt.pf ppf "win#%d(%d ranks)" w.wid (Array.length w.buffers)
