(** MPI one-sided communication windows (RMA, active-target fence
    synchronization). A window exposes one buffer per rank;
    Put/Get/Accumulate access a {e target} rank's buffer directly — the
    one-sided analogue of the DMA transfers MUST must annotate, landing
    in another process's memory.

    The simulator applies RMA data movement immediately (one legal
    execution: MPI only promises visibility at the closing fence); race
    detection is annotation-based and independent of this choice. *)

type t = {
  wid : int;  (** globally consistent window id *)
  buffers : Memsim.Ptr.t array;  (** per-rank window base pointers *)
  sizes : int array;  (** per-rank window sizes, bytes *)
  mutable epoch : int;  (** completed fences (per-rank handle view) *)
  mutable freed : bool;
}

val fresh_wid : unit -> int
(** Draw the next window id (domain-local counter). *)

val reset_ids : unit -> unit
(** Reset the domain-local window-id counter; called by the harness so
    each run's diagnostics are independent of what ran before. *)

exception Target_out_of_bounds of string
exception Window_freed

val check_live : t -> unit

val check_target : t -> target:int -> disp_bytes:int -> bytes:int -> unit
(** Validate a target-side access.
    @raise Target_out_of_bounds
    @raise Window_freed *)

val target_ptr : t -> target:int -> disp_bytes:int -> Memsim.Ptr.t

val pp : Format.formatter -> t -> unit
