(* MUST's RMA race detection (after Schwitanski et al., "On-the-Fly Data
   Race Detection for MPI RMA Programs with MUST", Correctness 2022 —
   reference [42] of the CuSan paper), adapted to the fiber model:

   - Each one-sided operation is concurrent with both the origin's and
     the target's host execution until the closing fence. Its origin
     buffer access gets a fiber in the *origin's* detector; its window
     access gets a fiber in the *target's* detector (the distributed
     part: the analysis reaches across ranks via the peer resolver).
   - Epoch bookkeeping must respect the collective fence schedule, not
     the simulator's interleaving of hook invocations:
     * entering fence #n (Pre, before blocking) advances the rank's
       fence count to n and publishes the host's state under the
       epoch-n key — so it is available to any peer that already
       completed fence #n;
     * an RMA operation is stamped with its *origin's* fence count n
       (equal on all ranks for the same program point, fences being
       collective); its fiber acquires the target's epoch-n key and
       releases a completion key registered under epoch n;
     * leaving fence #m (Post, after the collective completed — hence
       after every epoch-(m-1) operation was issued and registered)
       acquires exactly the completion keys of epochs < m. Harvesting
       earlier would order in-epoch RMA with local accesses (false
       negatives); harvesting later would leak the ordering the fence
       does establish (false positives).
   - Accumulates to the same target in the same epoch share one fiber:
     atomic and mutually ordered per the MPI standard (same op), but
     still racing with local accesses and with Put/Get. *)

module T = Tsan.Detector

(* Per-rank RMA bookkeeping, embedded in each MUST runtime instance. *)
type t = {
  pending : (int, (int * int) list ref) Hashtbl.t;
      (* wid -> (epoch, completion key) list awaiting a closing fence *)
  fence_count : (int, int) Hashtbl.t; (* wid -> fences entered *)
  acc_fibers : (int * int, T.fiber * int) Hashtbl.t;
      (* (wid, epoch) -> shared accumulate fiber + its completion key *)
}

let create () =
  {
    pending = Hashtbl.create 4;
    fence_count = Hashtbl.create 4;
    acc_fibers = Hashtbl.create 4;
  }

let epoch_key ~wid ~epoch = 0x5_0000_0000 + (wid lsl 24) + epoch

(* Domain-local and resettable, like the simulator's id counters: keys
   only need to be unique within one run's detector. *)
let next_completion_key : int Domain.DLS.key =
  Domain.DLS.new_key (fun () -> 0x6_0000_0000)

let reset_keys () = Domain.DLS.set next_completion_key 0x6_0000_0000

let fresh_key () =
  let k = Domain.DLS.get next_completion_key + 1 in
  Domain.DLS.set next_completion_key k;
  k

let fences_entered t ~wid =
  match Hashtbl.find_opt t.fence_count wid with Some e -> e | None -> 0

let add_pending t ~wid ~epoch key =
  match Hashtbl.find_opt t.pending wid with
  | Some l -> l := (epoch, key) :: !l
  | None -> Hashtbl.replace t.pending wid (ref [ (epoch, key) ])

(* Entering a fence: open epoch #n and publish the host state at its
   start. *)
let on_fence_enter t tsan ~wid =
  let n = fences_entered t ~wid + 1 in
  Hashtbl.replace t.fence_count wid n;
  T.happens_before tsan (epoch_key ~wid ~epoch:n)

(* Leaving fence #m: all RMA of epochs < m is complete here. *)
let on_fence_leave t tsan ~wid =
  let m = fences_entered t ~wid in
  (match Hashtbl.find_opt t.pending wid with
  | Some l ->
      let now, later = List.partition (fun (e, _) -> e < m) !l in
      List.iter (fun (_, k) -> T.happens_after tsan k) now;
      l := later
  | None -> ());
  Hashtbl.remove t.acc_fibers (wid, m - 1)

(* An origin-side buffer access: concurrent with the origin host until
   its next fence (the buffer must not be reused before then). *)
let origin_access t tsan ~wid ~call ~buf ~bytes ~kind =
  let epoch = fences_entered t ~wid in
  let caller = T.current_fiber tsan in
  let f = T.fiber_create tsan (Fmt.str "rma:origin:%s" call) in
  T.switch_to_fiber_sync tsan f;
  T.with_context tsan call (fun () ->
      let addr = Memsim.Ptr.addr buf in
      match kind with
      | `Read -> T.read_range tsan ~addr ~len:bytes
      | `Write -> T.write_range tsan ~addr ~len:bytes);
  let k = fresh_key () in
  T.happens_before tsan k;
  T.switch_to_fiber tsan caller;
  add_pending t ~wid ~epoch k

(* A window access landing at the target rank, annotated in the target's
   detector: ordered after the target's state at the start of the
   origin's current epoch, completed by the target's closing fence of
   that epoch. *)
let target_access t tsan ~wid ~epoch ~origin_rank ~call ~ptr ~bytes ~kind =
  let saved = T.current_fiber tsan in
  let f = T.fiber_create tsan (Fmt.str "rma:%s@rank%d" call origin_rank) in
  T.switch_to_fiber tsan f;
  T.happens_after tsan (epoch_key ~wid ~epoch);
  T.with_context tsan call (fun () ->
      let addr = Memsim.Ptr.addr ptr in
      match kind with
      | `Read -> T.read_range tsan ~addr ~len:bytes
      | `Write -> T.write_range tsan ~addr ~len:bytes);
  let k = fresh_key () in
  T.happens_before tsan k;
  T.switch_to_fiber tsan saved;
  add_pending t ~wid ~epoch k

(* Accumulates share one fiber per (window, epoch) at the target: atomic
   and mutually ordered, but unordered with everything else. *)
let target_accumulate t tsan ~wid ~epoch ~call ~ptr ~bytes =
  let saved = T.current_fiber tsan in
  let f, k =
    match Hashtbl.find_opt t.acc_fibers (wid, epoch) with
    | Some fk -> fk
    | None ->
        let f = T.fiber_create tsan (Fmt.str "rma:accumulate#w%d" wid) in
        let k = fresh_key () in
        T.switch_to_fiber tsan f;
        T.happens_after tsan (epoch_key ~wid ~epoch);
        T.switch_to_fiber tsan saved;
        Hashtbl.replace t.acc_fibers (wid, epoch) (f, k);
        add_pending t ~wid ~epoch k;
        (f, k)
  in
  T.switch_to_fiber tsan f;
  T.with_context tsan call (fun () ->
      T.write_range tsan ~addr:(Memsim.Ptr.addr ptr) ~len:bytes);
  T.happens_before tsan k;
  T.switch_to_fiber tsan saved
