(** MUST's RMA race detection (after Schwitanski et al., "On-the-Fly
    Data Race Detection for MPI RMA Programs with MUST", Correctness
    2022 — reference [42] of the CuSan paper), adapted to the fiber
    model.

    Each one-sided operation is concurrent with both the origin's and
    the target's host execution until the closing fence: its origin
    buffer access gets a fiber in the origin's detector, its window
    access a fiber in the {e target's} detector. Epoch bookkeeping
    respects the collective fence schedule: entering fence #n publishes
    the host state under the epoch-n key; an operation is stamped with
    its origin's fence count; leaving fence #m acquires exactly the
    completion keys of epochs < m. Accumulates to one target share a
    per-(window, epoch) fiber — atomic and mutually ordered per the MPI
    standard, but racing with everything else. *)

type t

val create : unit -> t

val epoch_key : wid:int -> epoch:int -> int
val fresh_key : unit -> int

val reset_keys : unit -> unit
(** Reset the domain-local completion-key counter; called by the
    harness between independent runs. *)

val fences_entered : t -> wid:int -> int
(** The rank's current epoch number (fences entered so far). *)

val on_fence_enter : t -> Tsan.Detector.t -> wid:int -> unit
val on_fence_leave : t -> Tsan.Detector.t -> wid:int -> unit

val origin_access :
  t ->
  Tsan.Detector.t ->
  wid:int ->
  call:string ->
  buf:Memsim.Ptr.t ->
  bytes:int ->
  kind:[ `Read | `Write ] ->
  unit

val target_access :
  t ->
  Tsan.Detector.t ->
  wid:int ->
  epoch:int ->
  origin_rank:int ->
  call:string ->
  ptr:Memsim.Ptr.t ->
  bytes:int ->
  kind:[ `Read | `Write ] ->
  unit
(** [epoch] is the {e origin's} fence count at issue time. *)

val target_accumulate :
  t ->
  Tsan.Detector.t ->
  wid:int ->
  epoch:int ->
  call:string ->
  ptr:Memsim.Ptr.t ->
  bytes:int ->
  unit
