(* The MUST runtime slice relevant to this reproduction (paper, Section
   II-B): intercept MPI calls and expose their memory-access and
   concurrency semantics to ThreadSanitizer.

   - Blocking calls annotate their buffer accesses on the host fiber
     (a send reads the buffer, a receive writes it).
   - Each non-blocking operation gets its own TSan fiber (Fig. 1): the
     buffer access is annotated on that fiber, which then releases a
     per-request key; the completion call (Wait/Waitall/successful
     Test) acquires it on the host.
   - With TypeART enabled, every communication buffer is checked
     against the declared MPI datatype and the allocation extent. *)

module T = Tsan.Detector
module H = Mpisim.Hooks

let req_key rid = 0x3_0000_0000 + rid

type t = {
  tsan : T.t;
  rank : int;
  size : int; (* communicator size, for collective buffer extents *)
  check_types : bool;
  host : T.fiber;
  rma : Rma.t; (* one-sided communication bookkeeping *)
  mutable errors : Errors.t list; (* reverse detection order *)
  mutable mpi_calls : int;
}

(* The distributed part of the RMA analysis: a Put's window access lands
   in the *target* rank's detector. The harness points this resolver at
   the per-rank MUST instances of the current run. *)
let peer_resolver : (int -> t option) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> fun _ -> None)

let set_peer_resolver f = Domain.DLS.set peer_resolver f
let clear_peer_resolver () = Domain.DLS.set peer_resolver (fun _ -> None)
let resolve_peer rank = (Domain.DLS.get peer_resolver) rank

let create ?(size = 2) ~tsan ~rank ~check_types () =
  {
    tsan;
    rank;
    size;
    check_types;
    host = T.current_fiber tsan;
    rma = Rma.create ();
    errors = [];
    mpi_calls = 0;
  }

let errors t = List.rev t.errors
let mpi_calls t = t.mpi_calls

(* --- TypeART-backed datatype checks ----------------------------------- *)

let typecheck t ~call ~(buf : Memsim.Ptr.t) ~count ~(dt : Mpisim.Datatype.t) =
  if t.check_types && Typeart.Rt.enabled () then begin
    let addr = Memsim.Ptr.addr buf in
    match Typeart.Pass.lookup addr with
    | None ->
        t.errors <- { Errors.rank = t.rank; call; addr; kind = Errors.Unknown_allocation } :: t.errors
    | Some info ->
        if not (Typeart.Typedb.equal info.Typeart.Rt.ty dt.Mpisim.Datatype.elem)
        then
          t.errors <-
            {
              Errors.rank = t.rank;
              call;
              addr;
              kind =
                Errors.Type_mismatch
                  { expected = dt.Mpisim.Datatype.elem; actual = info.Typeart.Rt.ty };
            }
            :: t.errors;
        let have = info.Typeart.Rt.bytes - (addr - info.Typeart.Rt.base) in
        let need = count * dt.Mpisim.Datatype.size in
        if need > have then
          t.errors <-
            {
              Errors.rank = t.rank;
              call;
              addr;
              kind = Errors.Buffer_overflow { have_bytes = have; need_bytes = need };
            }
            :: t.errors
  end

(* --- TSan annotations --------------------------------------------------- *)

let host_access t ~call ~(buf : Memsim.Ptr.t) ~bytes ~kind =
  T.with_context t.tsan call (fun () ->
      match kind with
      | `Read -> T.read_range t.tsan ~addr:(Memsim.Ptr.addr buf) ~len:bytes
      | `Write -> T.write_range t.tsan ~addr:(Memsim.Ptr.addr buf) ~len:bytes)

(* Model a non-blocking operation's concurrent region with a fresh
   fiber. The calling fiber is saved and restored so the interception
   works from any host thread (MPI_THREAD_MULTIPLE-style usage). *)
let fiber_access t ~call ~(req : Mpisim.Request.t) ~kind =
  let caller = T.current_fiber t.tsan in
  let f =
    T.fiber_create t.tsan (Fmt.str "mpi:req%d" req.Mpisim.Request.rid)
  in
  T.switch_to_fiber_sync t.tsan f;
  (if Trace.Recorder.on () then
     Trace.Recorder.instant ~cat:"must"
       ~args:
         [
           ("req", string_of_int req.Mpisim.Request.rid);
           ("bytes", string_of_int (Mpisim.Request.bytes req));
           ("kind", match kind with `Read -> "read" | `Write -> "write");
         ]
       ("annotate:" ^ call));
  T.with_context t.tsan call (fun () ->
      let addr = Memsim.Ptr.addr req.Mpisim.Request.buf in
      let len = Mpisim.Request.bytes req in
      match kind with
      | `Read -> T.read_range t.tsan ~addr ~len
      | `Write -> T.write_range t.tsan ~addr ~len);
  T.happens_before t.tsan (req_key req.Mpisim.Request.rid);
  T.switch_to_fiber t.tsan caller

let complete t (req : Mpisim.Request.t) =
  T.happens_after t.tsan (req_key req.Mpisim.Request.rid)

(* --- the interception handler ------------------------------------------ *)

let on_call t phase (call : H.call) =
  (if phase = H.Pre && Trace.Recorder.on () then
     Trace.Recorder.instant ~cat:"must"
       ~args:[ ("rank", string_of_int t.rank) ]
       ("intercept:" ^ H.call_name call));
  match (phase, call) with
  | H.Pre, H.Send { buf; count; dt; _ } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Send" ~buf ~count ~dt;
      host_access t ~call:"MPI_Send" ~buf
        ~bytes:(count * dt.Mpisim.Datatype.size)
        ~kind:`Read
  | H.Pre, H.Ssend { buf; count; dt; _ } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Ssend" ~buf ~count ~dt;
      host_access t ~call:"MPI_Ssend" ~buf
        ~bytes:(count * dt.Mpisim.Datatype.size)
        ~kind:`Read
  | H.Pre, H.Recv { buf; count; dt; _ } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Recv" ~buf ~count ~dt;
      host_access t ~call:"MPI_Recv" ~buf
        ~bytes:(count * dt.Mpisim.Datatype.size)
        ~kind:`Write
  | H.Pre, H.Isend { req } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Isend" ~buf:req.Mpisim.Request.buf
        ~count:req.Mpisim.Request.count ~dt:req.Mpisim.Request.dt;
      fiber_access t ~call:"MPI_Isend" ~req ~kind:`Read
  | H.Pre, H.Irecv { req } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Irecv" ~buf:req.Mpisim.Request.buf
        ~count:req.Mpisim.Request.count ~dt:req.Mpisim.Request.dt;
      fiber_access t ~call:"MPI_Irecv" ~req ~kind:`Write
  | H.Post, H.Wait { req } ->
      t.mpi_calls <- t.mpi_calls + 1;
      complete t req
  | H.Post, H.Waitall { reqs } ->
      t.mpi_calls <- t.mpi_calls + 1;
      List.iter (complete t) reqs
  | H.Post, H.Test { req; completed = true } -> complete t req
  | H.Pre, H.Allreduce { sendbuf; recvbuf; count; dt } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Allreduce" ~buf:sendbuf ~count ~dt;
      typecheck t ~call:"MPI_Allreduce" ~buf:recvbuf ~count ~dt;
      let bytes = count * dt.Mpisim.Datatype.size in
      host_access t ~call:"MPI_Allreduce" ~buf:sendbuf ~bytes ~kind:`Read;
      host_access t ~call:"MPI_Allreduce" ~buf:recvbuf ~bytes ~kind:`Write
  | H.Pre, H.Reduce { sendbuf; recvbuf; count; dt; root } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Reduce" ~buf:sendbuf ~count ~dt;
      let bytes = count * dt.Mpisim.Datatype.size in
      host_access t ~call:"MPI_Reduce" ~buf:sendbuf ~bytes ~kind:`Read;
      if t.rank = root then
        host_access t ~call:"MPI_Reduce" ~buf:recvbuf ~bytes ~kind:`Write
  | H.Pre, H.Bcast { buf; count; dt; root } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Bcast" ~buf ~count ~dt;
      let bytes = count * dt.Mpisim.Datatype.size in
      if t.rank = root then host_access t ~call:"MPI_Bcast" ~buf ~bytes ~kind:`Read
      else host_access t ~call:"MPI_Bcast" ~buf ~bytes ~kind:`Write
  | H.Pre, H.Allgather { sendbuf; recvbuf; count; dt } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Allgather" ~buf:sendbuf ~count ~dt;
      typecheck t ~call:"MPI_Allgather" ~buf:recvbuf ~count:(t.size * count) ~dt;
      host_access t ~call:"MPI_Allgather" ~buf:sendbuf
        ~bytes:(count * dt.Mpisim.Datatype.size)
        ~kind:`Read;
      host_access t ~call:"MPI_Allgather" ~buf:recvbuf
        ~bytes:(t.size * count * dt.Mpisim.Datatype.size)
        ~kind:`Write
  | H.Pre, H.Gather { sendbuf; recvbuf; count; dt; root } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Gather" ~buf:sendbuf ~count ~dt;
      host_access t ~call:"MPI_Gather" ~buf:sendbuf
        ~bytes:(count * dt.Mpisim.Datatype.size)
        ~kind:`Read;
      if t.rank = root then begin
        typecheck t ~call:"MPI_Gather" ~buf:recvbuf ~count:(t.size * count) ~dt;
        host_access t ~call:"MPI_Gather" ~buf:recvbuf
          ~bytes:(t.size * count * dt.Mpisim.Datatype.size)
          ~kind:`Write
      end
  | H.Pre, H.Scatter { sendbuf; recvbuf; count; dt; root } ->
      t.mpi_calls <- t.mpi_calls + 1;
      if t.rank = root then begin
        typecheck t ~call:"MPI_Scatter" ~buf:sendbuf ~count:(t.size * count) ~dt;
        host_access t ~call:"MPI_Scatter" ~buf:sendbuf
          ~bytes:(t.size * count * dt.Mpisim.Datatype.size)
          ~kind:`Read
      end;
      typecheck t ~call:"MPI_Scatter" ~buf:recvbuf ~count ~dt;
      host_access t ~call:"MPI_Scatter" ~buf:recvbuf
        ~bytes:(count * dt.Mpisim.Datatype.size)
        ~kind:`Write
  | H.Pre, H.Barrier -> t.mpi_calls <- t.mpi_calls + 1
  | H.Pre, H.Win_fence { win } ->
      t.mpi_calls <- t.mpi_calls + 1;
      Rma.on_fence_enter t.rma t.tsan ~wid:win.Mpisim.Win.wid
  | H.Post, H.Win_fence { win } ->
      Rma.on_fence_leave t.rma t.tsan ~wid:win.Mpisim.Win.wid
  | H.Pre, H.Rma_put { win; buf; count; dt; target; disp } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Put" ~buf ~count ~dt;
      let wid = win.Mpisim.Win.wid in
      let bytes = count * dt.Mpisim.Datatype.size in
      Rma.origin_access t.rma t.tsan ~wid ~call:"MPI_Put" ~buf ~bytes
        ~kind:`Read;
      (match resolve_peer target with
      | Some mt ->
          Rma.target_access mt.rma mt.tsan ~wid
            ~epoch:(Rma.fences_entered t.rma ~wid) ~origin_rank:t.rank
            ~call:"MPI_Put"
            ~ptr:
              (Mpisim.Win.target_ptr win ~target
                 ~disp_bytes:(disp * dt.Mpisim.Datatype.size))
            ~bytes ~kind:`Write
      | None -> ())
  | H.Pre, H.Rma_get { win; buf; count; dt; target; disp } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Get" ~buf ~count ~dt;
      let wid = win.Mpisim.Win.wid in
      let bytes = count * dt.Mpisim.Datatype.size in
      Rma.origin_access t.rma t.tsan ~wid ~call:"MPI_Get" ~buf ~bytes
        ~kind:`Write;
      (match resolve_peer target with
      | Some mt ->
          Rma.target_access mt.rma mt.tsan ~wid
            ~epoch:(Rma.fences_entered t.rma ~wid) ~origin_rank:t.rank
            ~call:"MPI_Get"
            ~ptr:
              (Mpisim.Win.target_ptr win ~target
                 ~disp_bytes:(disp * dt.Mpisim.Datatype.size))
            ~bytes ~kind:`Read
      | None -> ())
  | H.Pre, H.Rma_accumulate { win; buf; count; dt; target; disp } ->
      t.mpi_calls <- t.mpi_calls + 1;
      typecheck t ~call:"MPI_Accumulate" ~buf ~count ~dt;
      let wid = win.Mpisim.Win.wid in
      let bytes = count * dt.Mpisim.Datatype.size in
      Rma.origin_access t.rma t.tsan ~wid ~call:"MPI_Accumulate" ~buf ~bytes
        ~kind:`Read;
      (match resolve_peer target with
      | Some mt ->
          Rma.target_accumulate mt.rma mt.tsan ~wid
            ~epoch:(Rma.fences_entered t.rma ~wid) ~call:"MPI_Accumulate"
            ~ptr:
              (Mpisim.Win.target_ptr win ~target
                 ~disp_bytes:(disp * dt.Mpisim.Datatype.size))
            ~bytes
      | None -> ())
  | _ -> ()
