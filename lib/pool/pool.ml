(* Work-sharing domain pool: a mutex-guarded FIFO drained by a fixed
   set of domains. Dynamic dispatch (idle workers take the next task)
   load-balances like work stealing without per-worker deques.

   The one subtle feature is [exclusively]: benchmark cells must time
   their measured section with the machine otherwise quiet, so a task
   can ask for the pool to drain around a critical section. While an
   exclusive section is pending or running, idle workers pause instead
   of starting new tasks; workers mid-task finish (or themselves reach
   an [exclusively], which parks them in the same queue). [active]
   counts workers currently executing task code *outside* an exclusive
   wait, so "pool drained" is exactly [active = 0]. *)

type t = {
  m : Mutex.t;
  changed : Condition.t; (* any state below changed *)
  queue : (unit -> unit) Queue.t;
  mutable active : int; (* workers executing a task right now *)
  mutable excl_pending : int; (* tasks waiting to run exclusively *)
  mutable excl_running : bool;
  mutable stop : bool;
  mutable target : int; (* desired worker count (resize moves this) *)
  mutable alive : int; (* workers that have not retired *)
  mutable next_id : int;
  workers : (int, unit Domain.t) Hashtbl.t; (* id -> domain, incl. retired *)
  mutable retired : int list; (* exited worker ids awaiting their join *)
}

let size t =
  Mutex.lock t.m;
  let n = t.target in
  Mutex.unlock t.m;
  n

let alive t =
  Mutex.lock t.m;
  let n = t.alive in
  Mutex.unlock t.m;
  n

let may_start_task t =
  (not (Queue.is_empty t.queue)) && t.excl_pending = 0 && not t.excl_running

(* A worker only ever considers retiring *between* tasks — at the top
   of its loop, never mid-job — so a shrink quiesces surplus workers at
   task boundaries and can never abandon a running job. The shutdown
   path wins over retirement so a stopping pool still drains its
   queue. *)
let worker t id () =
  Mutex.lock t.m;
  let rec loop () =
    if t.alive > t.target && not t.stop then begin
      t.alive <- t.alive - 1;
      t.retired <- id :: t.retired;
      Condition.broadcast t.changed;
      Mutex.unlock t.m
    end
    else if may_start_task t then begin
      let task = Queue.pop t.queue in
      t.active <- t.active + 1;
      Mutex.unlock t.m;
      (try task () with _ -> ());
      Mutex.lock t.m;
      t.active <- t.active - 1;
      Condition.broadcast t.changed;
      loop ()
    end
    else if t.stop && Queue.is_empty t.queue then begin
      t.alive <- t.alive - 1;
      Mutex.unlock t.m
    end
    else begin
      Condition.wait t.changed t.m;
      loop ()
    end
  in
  loop ()

let spawn_locked t =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.alive <- t.alive + 1;
  Hashtbl.replace t.workers id (Domain.spawn (worker t id))

(* Retired workers have already left their loop; collecting their
   domains under the lock and joining outside it is cheap and never
   blocks on a running task. *)
let reap_locked t =
  let ds =
    List.filter_map
      (fun id ->
        let d = Hashtbl.find_opt t.workers id in
        Hashtbl.remove t.workers id;
        d)
      t.retired
  in
  t.retired <- [];
  ds

let create ~workers =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let t =
    {
      m = Mutex.create ();
      changed = Condition.create ();
      queue = Queue.create ();
      active = 0;
      excl_pending = 0;
      excl_running = false;
      stop = false;
      target = workers;
      alive = 0;
      next_id = 0;
      workers = Hashtbl.create 8;
      retired = [];
    }
  in
  Mutex.lock t.m;
  for _ = 1 to workers do
    spawn_locked t
  done;
  Mutex.unlock t.m;
  t

(* Grow or shrink the pool to [n] workers. Growth spawns the deficit
   immediately; shrinkage only moves the target — surplus workers
   retire themselves at their next task boundary (a worker mid-job
   finishes that job first). Returns the previous target. *)
let resize t n =
  if n < 1 then invalid_arg "Pool.resize: workers must be >= 1";
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.resize: pool is shut down"
  end;
  let old = t.target in
  t.target <- n;
  while t.alive < t.target do
    spawn_locked t
  done;
  Condition.broadcast t.changed;
  let dead = reap_locked t in
  Mutex.unlock t.m;
  List.iter Domain.join dead;
  old

let submit t task =
  Mutex.lock t.m;
  if t.stop then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.queue;
  Condition.broadcast t.changed;
  Mutex.unlock t.m

let exclusively t f =
  Mutex.lock t.m;
  t.excl_pending <- t.excl_pending + 1;
  (* Step out of the active count while waiting, so several exclusive
     requesters don't deadlock each other: each waits only for workers
     that are genuinely running task code. *)
  t.active <- t.active - 1;
  Condition.broadcast t.changed;
  while t.excl_running || t.active > 0 do
    Condition.wait t.changed t.m
  done;
  t.excl_running <- true;
  Mutex.unlock t.m;
  let result = try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ()) in
  Mutex.lock t.m;
  t.excl_running <- false;
  t.excl_pending <- t.excl_pending - 1;
  t.active <- t.active + 1;
  Condition.broadcast t.changed;
  Mutex.unlock t.m;
  match result with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map_pool t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let out = Array.make n None in
  let finished = ref 0 in
  let first_error = ref None in
  let m = Mutex.create () in
  let done_ = Condition.create () in
  Array.iteri
    (fun i x ->
      submit t (fun () ->
          let r =
            try Ok (f x) with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock m;
          (match r with
          | Ok v -> out.(i) <- Some v
          | Error _ when !first_error = None -> first_error := Some r
          | Error _ -> ());
          incr finished;
          Condition.broadcast done_;
          Mutex.unlock m))
    items;
  Mutex.lock m;
  while !finished < n do
    Condition.wait done_ m
  done;
  Mutex.unlock m;
  (match !first_error with
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | _ -> ());
  Array.to_list out
  |> List.map (function Some v -> v | None -> failwith "Pool.map_pool: lost result")

(* --- cancellable submissions -------------------------------------------- *)

(* A handle tracks one submitted task through its life. Cancellation is
   cooperative: domains cannot be preempted, so a [Pending] task is
   dequeued-by-flag (the wrapper sees the state and returns without
   running user code), while a [Running] task only observes the request
   through the [cancelled] probe it was handed. Either way the handle
   resolves exactly once, and the result of a cancelled-while-running
   task is still recorded — the caller already moved on, but the slot's
   bookkeeping stays consistent. *)

type 'a state =
  | Pending
  | Running
  | Done of ('a, exn) result
  | Cancelled

type 'a handle = {
  hm : Mutex.t;
  hc : Condition.t;
  mutable state : 'a state;
  flag : bool Atomic.t; (* set by [cancel]; polled by the task *)
}

let submit_cancellable t f =
  let h =
    { hm = Mutex.create (); hc = Condition.create (); state = Pending;
      flag = Atomic.make false }
  in
  submit t (fun () ->
      Mutex.lock h.hm;
      match h.state with
      | Cancelled | Done _ | Running -> Mutex.unlock h.hm
      | Pending ->
          h.state <- Running;
          Mutex.unlock h.hm;
          let r =
            try Ok (f ~cancelled:(fun () -> Atomic.get h.flag))
            with e -> Error e
          in
          Mutex.lock h.hm;
          h.state <- Done r;
          Condition.broadcast h.hc;
          Mutex.unlock h.hm);
  h

let cancel h =
  Atomic.set h.flag true;
  Mutex.lock h.hm;
  (match h.state with
  | Pending ->
      h.state <- Cancelled;
      Condition.broadcast h.hc
  | Running | Done _ | Cancelled -> ());
  Mutex.unlock h.hm

let poll h =
  Mutex.lock h.hm;
  let s = h.state in
  Mutex.unlock h.hm;
  match s with
  | Done r -> `Done r
  | Cancelled -> `Cancelled
  | Pending | Running -> `Pending

(* Condition variables have no timed wait in the stdlib, so the bounded
   variant polls: latency is capped at the poll interval, which is noise
   against the job granularity the daemon runs at. *)
let await ?timeout_s h =
  match timeout_s with
  | None ->
      Mutex.lock h.hm;
      let rec wait () =
        match h.state with
        | Done r ->
            Mutex.unlock h.hm;
            `Done r
        | Cancelled ->
            Mutex.unlock h.hm;
            `Cancelled
        | Pending | Running ->
            Condition.wait h.hc h.hm;
            wait ()
      in
      wait ()
  | Some budget ->
      let deadline = Unix.gettimeofday () +. budget in
      let rec wait () =
        match poll h with
        | (`Done _ | `Cancelled) as r -> r
        | `Pending ->
            if Unix.gettimeofday () >= deadline then `Timeout
            else begin
              Unix.sleepf 0.002;
              wait ()
            end
      in
      wait ()

(* Bounded map: every item gets a handle and one shared absolute
   deadline. Slots resolve strictly by their own handle — a task that
   outlives its deadline keeps running (domains are not preemptable) but
   can only ever write into its own handle, so survivors' results land
   in their input slots untouched. Timed-out slots are [None] and their
   tasks see [cancelled () = true] at the next poll. *)
let map_timeout t ~timeout_s f xs =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let handles = List.map (fun x -> submit_cancellable t (fun ~cancelled -> f ~cancelled x)) xs in
  List.map
    (fun h ->
      let left = deadline -. Unix.gettimeofday () in
      match await ~timeout_s:(Float.max 0. left) h with
      | `Done r -> Some r
      | `Cancelled -> None
      | `Timeout ->
          cancel h;
          None)
    handles

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.changed;
  (* Every domain ever spawned and not yet reaped — live workers (the
     stop flag sends them home once the queue drains) and retired ones
     awaiting their deferred join alike. *)
  let ds = Hashtbl.fold (fun _ d acc -> d :: acc) t.workers [] in
  Hashtbl.reset t.workers;
  t.retired <- [];
  Mutex.unlock t.m;
  List.iter Domain.join ds

let default_workers () = max 1 (Domain.recommended_domain_count ())

let map ?workers f xs =
  let w = match workers with Some w -> w | None -> default_workers () in
  if w <= 1 then List.map f xs
  else begin
    let t = create ~workers:(min w (List.length xs |> max 1)) in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map_pool t f xs)
  end
