(** Work-sharing domain pool.

    A fixed set of OCaml 5 domains drains a shared task queue — the
    execution substrate for sharding embarrassingly parallel per-case
    work (the correctness matrix, its fault-injection re-run, bench
    cells) across cores. Tasks are dispatched dynamically (a worker
    takes the next queued task the moment it goes idle), which gives
    work-stealing-style load balance with a plain mutex-guarded queue.

    All per-run simulator and tool state is domain-local (see the DLS
    conversions in sched/memsim/mpisim/tsan/typeart/faultsim), so a task
    that runs one harness execution end-to-end is domain-safe by
    construction, and results are independent of which worker ran it. *)

type t
(** A pool handle. *)

val create : workers:int -> t
(** Spawn [workers] (≥ 1) worker domains. The caller's domain is not a
    worker: submitting is non-blocking, and {!map_pool} parks the caller
    until its batch drains. *)

val size : t -> int
(** Target number of worker domains (the last [create]/{!resize}
    setting). *)

val alive : t -> int
(** Workers currently alive: equals {!size} except transiently during a
    shrink, while surplus workers are still finishing their jobs. *)

val resize : t -> int -> int
(** [resize t n] grows or shrinks the pool to [n] (≥ 1) workers and
    returns the previous target. Growth spawns new domains immediately.
    Shrinkage is cooperative and job-safe: surplus workers retire at
    their next task boundary — a worker mid-job always finishes that
    job first, so no task is ever abandoned and results are unaffected
    by any resize sequence. Retired domains are joined lazily (on the
    next resize or at {!shutdown}). *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task. Exceptions escaping a bare submitted task are
    swallowed (use {!map_pool} to propagate them). *)

val map_pool : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_pool t f xs] evaluates [f x] for every element on the pool and
    returns results in input order, regardless of completion order —
    the deterministic-aggregation primitive. The first exception raised
    by any [f x] is re-raised in the caller (after the batch drains).
    Can be called from several threads/tasks concurrently. *)

val exclusively : t -> (unit -> 'a) -> 'a
(** [exclusively t f] runs [f] while the pool is drained: the calling
    task waits until every other worker is idle (finished its current
    task and barred from starting new ones), runs [f] alone, then lets
    the pool resume. Benchmark cells wrap their timed section in this so
    concurrent cells never pollute a measurement. Must be called from
    inside a task running on the pool; concurrent callers serialize. *)

(** {2 Cancellable submissions}

    The daemon-facing surface: a submitted job can be abandoned by the
    caller without ever corrupting another job's result slot. Domains
    cannot be preempted, so cancellation is cooperative — a task that
    has not started yet is simply never run, and a running task observes
    the request only through the [cancelled] probe it was handed (the
    simulator's step-budget watchdog bounds how long it can ignore
    it). *)

type 'a handle
(** One submitted task's life: pending → running → done/cancelled.
    Resolves exactly once. *)

val submit_cancellable : t -> (cancelled:(unit -> bool) -> 'a) -> 'a handle
(** Enqueue a task that receives a cancellation probe. The handle
    captures the task's result or exception. *)

val cancel : 'a handle -> unit
(** Request cancellation: a pending task never runs (the handle resolves
    [`Cancelled]); a running task keeps its worker slot until it next
    polls [cancelled] (or finishes), and its result is still recorded. *)

val poll : 'a handle -> [ `Done of ('a, exn) result | `Cancelled | `Pending ]
(** Non-blocking look at the handle. *)

val await :
  ?timeout_s:float ->
  'a handle ->
  [ `Done of ('a, exn) result | `Cancelled | `Timeout ]
(** Block until the handle resolves. With [timeout_s] the wait is
    bounded by wall-clock time and [`Timeout] is returned once the
    budget is spent — the task itself keeps running (cancel it to ask it
    to stop). *)

val map_timeout :
  t ->
  timeout_s:float ->
  (cancelled:(unit -> bool) -> 'a -> 'b) ->
  'a list ->
  ('b, exn) result option list
(** [map_timeout t ~timeout_s f xs] runs every item under one shared
    absolute deadline and returns per-slot outcomes in input order:
    [Some (Ok v)] / [Some (Error e)] for items that resolved in time,
    [None] for items that timed out or were cancelled. Slots resolve
    strictly through their own handle, so a timed-out task can never
    corrupt a survivor's slot. Timed-out tasks are cancelled
    (cooperatively) and may still briefly occupy a worker. *)

val shutdown : t -> unit
(** Finish all queued tasks, then join the worker domains. The pool
    cannot be used afterwards. Idempotent. *)

val default_workers : unit -> int
(** A sensible worker count for this machine:
    [Domain.recommended_domain_count ()], at least 1. *)

val map : ?workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [map ~workers f xs] creates a pool, maps, and
    shuts it down. [workers <= 1] (or omitted on a single-core machine)
    degrades to plain [List.map] on the calling domain — byte-identical
    to sequential execution by construction. *)
