(* Bench-regression comparison: the logic behind `benchdiff`. A bench
   JSON artifact (see Bench's --json) carries overhead *ratios* —
   flavor-runtime over vanilla — which are far more stable across
   machines than absolute times, so CI compares ratios of a fresh quick
   run against a committed baseline and gates on relative drift. *)

type cell = { key : string; value : float }

type outcome =
  | Ok_cell of { key : string; base : float; run : float; drift_pct : float }
  | Regressed of { key : string; base : float; run : float; drift_pct : float }
  | Missing of { key : string; base : float }
      (* present in baseline, absent from the run: treated as a failure
         so a silently shrinking bench can't pass the gate *)

(* Extract comparable overhead cells from a bench JSON document.
   Recognized shapes (fields produced by bench/main.exe --json):
   - fig10: [{app, flavor, rel, ...}]   -> "fig10/<app>/<flavor>"
   - fig11: [{app, flavor, rel, ...}]   -> "fig11/<app>/<flavor>"
   - fig12: [{nx, ny, rel, ...}]        -> "fig12/<nx>x<ny>"
   - micro: [{name, ns}]                -> "micro/<name>"           *)
let cells_of_json (j : Mjson.t) : cell list =
  (* fig10 (runtime overhead) and fig11 (memory overhead) rows share a
     shape: {app, flavor, rel}. *)
  let app_flavor_cells fig =
    match Mjson.(member fig j |> Option.map to_list) with
    | Some (Some rows) ->
        List.filter_map
          (fun row ->
            match
              ( Mjson.(member "app" row |> Option.map to_str),
                Mjson.(member "flavor" row |> Option.map to_str),
                Mjson.(member "rel" row |> Option.map to_float) )
            with
            | Some (Some app), Some (Some flavor), Some (Some rel) ->
                Some
                  { key = Printf.sprintf "%s/%s/%s" fig app flavor; value = rel }
            | _ -> None)
          rows
    | _ -> []
  in
  let fig10 = app_flavor_cells "fig10" in
  let fig11 = app_flavor_cells "fig11" in
  let fig12 =
    match Mjson.(member "fig12" j |> Option.map to_list) with
    | Some (Some rows) ->
        List.filter_map
          (fun row ->
            match
              ( Mjson.(member "nx" row |> Option.map to_int),
                Mjson.(member "ny" row |> Option.map to_int),
                Mjson.(member "rel" row |> Option.map to_float) )
            with
            | Some (Some nx), Some (Some ny), Some (Some rel) ->
                Some { key = Printf.sprintf "fig12/%dx%d" nx ny; value = rel }
            | _ -> None)
          rows
    | _ -> []
  in
  let micro =
    match Mjson.(member "micro" j |> Option.map to_list) with
    | Some (Some rows) ->
        List.filter_map
          (fun row ->
            match
              ( Mjson.(member "name" row |> Option.map to_str),
                Mjson.(member "ns" row |> Option.map to_float) )
            with
            | Some (Some name), Some (Some ns) ->
                Some { key = "micro/" ^ name; value = ns }
            | _ -> None)
          rows
    | _ -> []
  in
  fig10 @ fig11 @ fig12 @ micro

(* Cell-key families, selectable with benchdiff's --mode. Macro cells
   are overhead *ratios* (stable across machines, tight thresholds);
   micro cells are absolute ns/op (noisier, gated loosely to catch
   order-of-magnitude regressions only). Comparing them under one
   threshold would either mute the macro gate or make micro flaky. *)
type mode = Macro | Micro | All

let mode_of_string = function
  | "macro" -> Some Macro
  | "micro" -> Some Micro
  | "all" -> Some All
  | _ -> None

let in_mode mode (c : cell) =
  let is_micro = String.length c.key >= 6 && String.sub c.key 0 6 = "micro/" in
  match mode with All -> true | Micro -> is_micro | Macro -> not is_micro

let filter_mode mode cells = List.filter (in_mode mode) cells

(* Compare a run against a baseline. A cell regresses when its ratio
   grew by more than [threshold_pct] percent over the baseline value;
   shrinking (getting faster) never fails. Baseline cells missing from
   the run fail; run cells absent from the baseline are ignored (new
   benchmarks don't gate until the baseline is refreshed). *)
let compare ~threshold_pct ~(baseline : cell list) ~(run : cell list) :
    outcome list =
  List.map
    (fun b ->
      match List.find_opt (fun r -> r.key = b.key) run with
      | None -> Missing { key = b.key; base = b.value }
      | Some r ->
          let drift_pct =
            if b.value = 0. then if r.value = 0. then 0. else infinity
            else (r.value -. b.value) /. b.value *. 100.
          in
          if drift_pct > threshold_pct then
            Regressed { key = b.key; base = b.value; run = r.value; drift_pct }
          else Ok_cell { key = b.key; base = b.value; run = r.value; drift_pct })
    baseline

(* Run cells with no baseline counterpart. [compare] ignores these so
   new benchmarks don't fail the drift gate, but leaving them invisible
   lets a baseline quietly rot; benchdiff surfaces them by name as an
   inputs problem (exit 2: refresh the committed baseline). *)
let unbaselined ~(baseline : cell list) ~(run : cell list) : cell list =
  List.filter
    (fun r -> not (List.exists (fun b -> b.key = r.key) baseline))
    run

let failed = function Ok_cell _ -> false | Regressed _ | Missing _ -> true

let any_failed outcomes = List.exists failed outcomes

let pp_outcome ppf = function
  | Ok_cell { key; base; run; drift_pct } ->
      Fmt.pf ppf "ok        %-24s %8.3fx -> %8.3fx (%+.1f%%)" key base run
        drift_pct
  | Regressed { key; base; run; drift_pct } ->
      Fmt.pf ppf "REGRESSED %-24s %8.3fx -> %8.3fx (%+.1f%%)" key base run
        drift_pct
  | Missing { key; base } ->
      Fmt.pf ppf "MISSING   %-24s %8.3fx -> (absent from run)" key base
