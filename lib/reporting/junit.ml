(* JUnit XML emitter — the artifact format CI systems ingest for
   per-testcase reporting. Only the subset the consumers actually read:
   one <testsuite> of <testcase> elements, each with an optional
   <failure>. *)

type testcase = {
  classname : string;
  name : string;
  time_s : float;
  failure : (string * string) option; (* (message, body) *)
}

let xml_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\'' -> Buffer.add_string b "&apos;"
      | c when Char.code c < 0x20 && c <> '\n' && c <> '\t' ->
          Buffer.add_string b (Printf.sprintf "&#%d;" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string ~suite_name cases =
  let failures =
    List.length (List.filter (fun c -> c.failure <> None) cases)
  in
  let total_time = List.fold_left (fun a c -> a +. c.time_s) 0. cases in
  let b = Buffer.create 4096 in
  Buffer.add_string b "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Buffer.add_string b
    (Printf.sprintf
       "<testsuite name=\"%s\" tests=\"%d\" failures=\"%d\" errors=\"0\" \
        skipped=\"0\" time=\"%.6f\">\n"
       (xml_escape suite_name) (List.length cases) failures total_time);
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "  <testcase classname=\"%s\" name=\"%s\" time=\"%.6f\""
           (xml_escape c.classname) (xml_escape c.name) c.time_s);
      match c.failure with
      | None -> Buffer.add_string b "/>\n"
      | Some (msg, body) ->
          Buffer.add_string b ">\n";
          Buffer.add_string b
            (Printf.sprintf "    <failure message=\"%s\">%s</failure>\n"
               (xml_escape msg) (xml_escape body));
          Buffer.add_string b "  </testcase>\n")
    cases;
  Buffer.add_string b "</testsuite>\n";
  Buffer.contents b
