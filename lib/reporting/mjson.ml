(* Minimal JSON: a value type, a printer, and a recursive-descent
   parser. Hand-rolled so machine-readable test/bench artifacts need no
   dependency outside the stdlib; covers exactly the JSON subset the
   runners emit (finite floats, UTF-8 passed through opaquely). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.17g" f in
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.abs f = infinity then
        Buffer.add_string b "null" (* JSON has no nan/inf *)
      else Buffer.add_string b (float_repr f)
  | Str s -> Buffer.add_string b (escape_string s)
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (escape_string k);
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  write b v;
  Buffer.contents b

(* Pretty printer: objects and lists one element per line, for
   artifacts that get committed (bench baselines) and diffed. *)
let rec write_pretty b indent = function
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> write b v
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          write_pretty b (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad;
          Buffer.add_string b (escape_string k);
          Buffer.add_string b ": ";
          write_pretty b (indent + 2) v)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ');
      Buffer.add_char b '}'

let to_string_pretty v =
  let b = Buffer.create 4096 in
  write_pretty b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

type parser_state = { s : string; mutable pos : int }

let peek p = if p.pos < String.length p.s then Some p.s.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let error p msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" p.pos msg))

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> error p (Printf.sprintf "expected %c" c)

let literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.s && String.sub p.s p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else error p (Printf.sprintf "expected %s" word)

let parse_string_body p =
  let b = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> error p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | Some '"' -> advance p; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance p; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance p; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance p; Buffer.add_char b '\n'; go ()
        | Some 't' -> advance p; Buffer.add_char b '\t'; go ()
        | Some 'r' -> advance p; Buffer.add_char b '\r'; go ()
        | Some 'b' -> advance p; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance p; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance p;
            if p.pos + 4 > String.length p.s then error p "bad \\u escape";
            let hex = String.sub p.s p.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error p "bad \\u escape"
            in
            p.pos <- p.pos + 4;
            (* encode as UTF-8 (basic multilingual plane only) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> error p "bad escape")
    | Some c ->
        advance p;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c when is_num_char c -> true | _ -> false) do
    advance p
  done;
  let tok = String.sub p.s start (p.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error p (Printf.sprintf "bad number %S" tok))

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> error p "unexpected end of input"
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then (advance p; Obj [])
      else begin
        let rec members acc =
          skip_ws p;
          expect p '"';
          let k = parse_string_body p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' -> advance p; members ((k, v) :: acc)
          | Some '}' -> advance p; Obj (List.rev ((k, v) :: acc))
          | _ -> error p "expected , or } in object"
        in
        members []
      end
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then (advance p; List [])
      else begin
        let rec elements acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' -> advance p; elements (v :: acc)
          | Some ']' -> advance p; List (List.rev (v :: acc))
          | _ -> error p "expected , or ] in array"
        in
        elements []
      end
  | Some '"' ->
      advance p;
      Str (parse_string_body p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some _ -> parse_number p

let of_string s =
  let p = { s; pos = 0 } in
  match parse_value p with
  | v ->
      skip_ws p;
      if p.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ---------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
