(* Application-level resilience building blocks for the simulated
   MPI+CUDA stack: bounded retry with deterministic backoff, bounded
   waiting, and checkpoint/restore of application buffers.

   Everything here is deterministic by construction. "Time" is
   scheduler progress (cooperative yields), not wall-clock time, so a
   retry loop backs off by yielding a fixed, attempt-dependent number
   of times — the interleaving it produces is a pure function of the
   program, exactly like the rest of the simulator. *)

exception Retries_exhausted of { label : string; attempts : int; last : exn }

(* Deterministic backoff: 2^attempt cooperative yields (capped), the
   virtual-time analogue of truncated exponential backoff. Yielding
   lets peers make progress — e.g. finish the recovery collective this
   rank will join on the next attempt.

   Jitter is deterministic too: callers that want decorrelated retry
   schedules (several cusanctl clients hammering a busy daemon) pass a
   seeded Faultsim.Prng stream, never wall-clock noise or [Random], so
   any retry schedule is a pure function of its seed and replays under
   --seed exactly like a fault plan does. The draw adds up to one extra
   backoff period: full-jitter on the top half of the window. *)
let backoff_yields ?jitter ~attempt () =
  let base = 1 lsl min attempt 10 in
  match jitter with
  | None -> base
  | Some prng -> base + (Int64.to_int (Faultsim.Prng.next prng) land (base - 1))

(* The whole backoff schedule for [attempts] retries under [seed] — the
   sequence a seeded client will sleep through, laid bare for tests to
   pin and for operators to reason about. *)
let backoff_schedule ~seed ~attempts =
  let prng = Faultsim.Prng.create seed in
  List.init attempts (fun i -> backoff_yields ~jitter:prng ~attempt:(i + 1) ())

let yield_n n =
  for _ = 1 to n do
    Sched.Scheduler.yield ()
  done

(* Run [f], retrying on exceptions [retryable] accepts, up to
   [max_attempts] total attempts with deterministic backoff between
   them. [f] receives the 1-based attempt number so it can switch
   strategy (e.g. re-shrink the communicator after the first failure).
   Non-retryable exceptions propagate immediately; exhausting the
   budget raises [Retries_exhausted] carrying the last failure.

   [on_backoff] is where the backoff quantum is spent. The default
   yields on the cooperative scheduler — the in-simulation callers'
   medium. Out-of-simulation callers (cusanctl talking to a daemon over
   a socket) map yields onto wall-clock sleeps instead; the *count* of
   yields stays the deterministic part either way. *)
let with_retries ?(label = "retry") ?(max_attempts = 3) ?jitter
    ?(on_backoff = fun ~yields -> yield_n yields) ~retryable f =
  if max_attempts <= 0 then invalid_arg "with_retries: max_attempts";
  let rec go attempt =
    match f ~attempt with
    | v -> v
    | exception e when retryable e ->
        if Trace.Recorder.on () then
          Trace.Recorder.instant ~cat:"resilience"
            ~args:
              [
                ("label", label);
                ("attempt", string_of_int attempt);
                ("error", Printexc.to_string e);
              ]
            "retry";
        if attempt >= max_attempts then
          raise (Retries_exhausted { label; attempts = attempt; last = e })
        else begin
          on_backoff ~yields:(backoff_yields ?jitter ~attempt ());
          go (attempt + 1)
        end
  in
  go 1

(* Bounded wait: poll [pred] for at most [budget] yields. Returns
   whether the predicate became true — the caller decides what a
   timeout means (give up, declare the peer dead, ...). A bounded
   alternative to blocking on a condition that may never be signalled. *)
let await ?(label = "await") ?(budget = 1000) pred =
  let rec go n =
    if pred () then true
    else if n >= budget then begin
      if Trace.Recorder.on () then
        Trace.Recorder.instant ~cat:"resilience"
          ~args:[ ("label", label); ("budget", string_of_int budget) ]
          "await_timeout";
      false
    end
    else begin
      Sched.Scheduler.yield ();
      go (n + 1)
    end
  in
  go 0

(* Client-side circuit breaker: the other half of a retry loop. Where
   [with_retries] decides how long to wait between attempts, a breaker
   decides whether an attempt should be made at all — after
   [threshold] consecutive failures the circuit opens and calls are
   held back for a cooldown, then exactly one half-open probe is let
   through: success closes the circuit, failure re-opens it with a
   doubled (capped) cooldown. Like everything here the timings are
   deterministic: cooldowns are yield counts from the same
   [backoff_yields] ladder (optionally Prng-jittered), spent through
   whatever [on_wait] medium the caller maps them onto — cusanctl maps
   them to wall-clock sleeps, tests to a recording list. *)
module Breaker = struct
  type state = Closed | Open | Half_open

  type t = {
    threshold : int; (* consecutive failures that open the circuit *)
    jitter : Faultsim.Prng.t option;
    mutable failures : int; (* consecutive failures while closed *)
    mutable state : state;
    mutable opens : int; (* times opened; drives the cooldown ladder *)
    mutable cooldown : int; (* yields left before the half-open probe *)
  }

  let create ?jitter ?(threshold = 3) () =
    if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
    {
      threshold;
      jitter;
      failures = 0;
      state = Closed;
      opens = 0;
      cooldown = 0;
    }

  let state t = t.state

  let trip t =
    t.state <- Open;
    t.opens <- t.opens + 1;
    t.cooldown <- backoff_yields ?jitter:t.jitter ~attempt:t.opens ();
    if Trace.Recorder.on () then
      Trace.Recorder.instant ~cat:"resilience"
        ~args:
          [
            ("opens", string_of_int t.opens);
            ("cooldown", string_of_int t.cooldown);
          ]
        "breaker_open"

  let record_failure t =
    match t.state with
    | Closed ->
        t.failures <- t.failures + 1;
        if t.failures >= t.threshold then trip t
    | Half_open -> trip t (* the probe failed: re-open, longer cooldown *)
    | Open -> ()

  let record_success t =
    t.failures <- 0;
    t.opens <- 0;
    t.state <- Closed

  (* Gate one attempt. Closed and Half_open let the call through
     immediately; Open spends the cooldown via [on_wait] first and
     transitions to Half_open — the attempt the caller is about to make
     is the probe. *)
  let acquire ?(on_wait = fun ~yields -> yield_n yields) t =
    match t.state with
    | Closed | Half_open -> ()
    | Open ->
        on_wait ~yields:t.cooldown;
        t.state <- Half_open

  (* Run [f] through the breaker: wait out an open circuit, make the
     attempt, record the outcome. [failure] classifies exceptions that
     count against the circuit (others propagate without tripping
     it). *)
  let call ?on_wait ~failure t f =
    acquire ?on_wait t;
    match f () with
    | v ->
        record_success t;
        v
    | exception e when failure e ->
        record_failure t;
        raise e
end

(* Checkpoint/restore of application buffers. Snapshots are raw byte
   copies of simulated memory — like writing to stable storage, they
   are invisible to load/store instrumentation and perturb no race
   report. Keyed by label so one checkpoint can hold several buffers
   and survive the owning buffers being reallocated after recovery. *)
module Checkpoint = struct
  type t = (string, Bytes.t) Hashtbl.t

  let create () : t = Hashtbl.create 4

  let save (t : t) key ptr ~bytes =
    Memsim.Ptr.check ptr bytes;
    let snap =
      Bytes.sub ptr.Memsim.Ptr.alloc.Memsim.Alloc.data ptr.Memsim.Ptr.off bytes
    in
    Hashtbl.replace t key snap;
    if Trace.Recorder.on () then
      Trace.Recorder.instant ~cat:"resilience"
        ~args:[ ("key", key); ("bytes", string_of_int bytes) ]
        "checkpoint_save"

  let mem (t : t) key = Hashtbl.mem t key
  let size (t : t) key = Option.map Bytes.length (Hashtbl.find_opt t key)

  let restore (t : t) key ptr =
    match Hashtbl.find_opt t key with
    | None -> invalid_arg (Printf.sprintf "Checkpoint.restore: no snapshot %S" key)
    | Some snap ->
        let bytes = Bytes.length snap in
        Memsim.Ptr.check ptr bytes;
        Bytes.blit snap 0 ptr.Memsim.Ptr.alloc.Memsim.Alloc.data
          ptr.Memsim.Ptr.off bytes;
        if Trace.Recorder.on () then
          Trace.Recorder.instant ~cat:"resilience"
            ~args:[ ("key", key); ("bytes", string_of_int bytes) ]
            "checkpoint_restore"
end
