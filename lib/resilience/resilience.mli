(** Application-level resilience building blocks: bounded retry with
    deterministic backoff, bounded waiting, and checkpoint/restore of
    application buffers.

    Deterministic by construction: "time" is scheduler progress
    (cooperative yields), never wall-clock time, so recovery paths
    replay exactly like the rest of the simulator. *)

exception Retries_exhausted of { label : string; attempts : int; last : exn }

val backoff_yields : ?jitter:Faultsim.Prng.t -> attempt:int -> unit -> int
(** [2^attempt] capped at 1024 — the virtual-time analogue of truncated
    exponential backoff. With [jitter], a {!Faultsim.Prng} draw adds up
    to one extra backoff period (full-jitter on the top half of the
    window): deterministic decorrelation, reproducible under a seed,
    never wall-clock or [Random] noise. *)

val backoff_schedule : seed:int -> attempts:int -> int list
(** The jittered yield counts a fresh [Prng.create seed] stream produces
    for attempts [1..attempts] — the exact schedule a seeded retry loop
    will spend, pinnable by tests. *)

val with_retries :
  ?label:string ->
  ?max_attempts:int ->
  ?jitter:Faultsim.Prng.t ->
  ?on_backoff:(yields:int -> unit) ->
  retryable:(exn -> bool) ->
  (attempt:int -> 'a) ->
  'a
(** Run the body, retrying on exceptions [retryable] accepts, up to
    [max_attempts] (default 3) total attempts, spending
    {!backoff_yields} (jittered when [jitter] is given) between attempts
    so peers can progress (e.g. join the recovery collective). The body
    receives the 1-based attempt number. [on_backoff] chooses the
    backoff medium: the default yields on the cooperative scheduler;
    out-of-simulation callers (the cusand client) map the same yield
    counts onto wall-clock sleeps. Non-retryable exceptions propagate;
    @raise Retries_exhausted when the budget is spent. *)

val await : ?label:string -> ?budget:int -> (unit -> bool) -> bool
(** Poll the predicate for at most [budget] (default 1000) yields;
    returns whether it became true. A bounded alternative to blocking
    on a condition that may never be signalled. *)

(** Checkpoint/restore of application buffers, keyed by label. Raw byte
    snapshots of simulated memory — like stable storage, invisible to
    load/store instrumentation, perturbing no race report. *)
module Checkpoint : sig
  type t

  val create : unit -> t

  val save : t -> string -> Memsim.Ptr.t -> bytes:int -> unit
  (** Snapshot [bytes] bytes behind the pointer under the key,
      replacing any previous snapshot. *)

  val mem : t -> string -> bool

  val size : t -> string -> int option
  (** Size in bytes of the stored snapshot, if any. *)

  val restore : t -> string -> Memsim.Ptr.t -> unit
  (** Copy the snapshot back behind the pointer (which may be a
      different allocation than the one saved from).
      @raise Invalid_argument when no snapshot exists under the key or
      the target is too small. *)
end
