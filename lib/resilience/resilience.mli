(** Application-level resilience building blocks: bounded retry with
    deterministic backoff, bounded waiting, and checkpoint/restore of
    application buffers.

    Deterministic by construction: "time" is scheduler progress
    (cooperative yields), never wall-clock time, so recovery paths
    replay exactly like the rest of the simulator. *)

exception Retries_exhausted of { label : string; attempts : int; last : exn }

val backoff_yields : ?jitter:Faultsim.Prng.t -> attempt:int -> unit -> int
(** [2^attempt] capped at 1024 — the virtual-time analogue of truncated
    exponential backoff. With [jitter], a {!Faultsim.Prng} draw adds up
    to one extra backoff period (full-jitter on the top half of the
    window): deterministic decorrelation, reproducible under a seed,
    never wall-clock or [Random] noise. *)

val backoff_schedule : seed:int -> attempts:int -> int list
(** The jittered yield counts a fresh [Prng.create seed] stream produces
    for attempts [1..attempts] — the exact schedule a seeded retry loop
    will spend, pinnable by tests. *)

val with_retries :
  ?label:string ->
  ?max_attempts:int ->
  ?jitter:Faultsim.Prng.t ->
  ?on_backoff:(yields:int -> unit) ->
  retryable:(exn -> bool) ->
  (attempt:int -> 'a) ->
  'a
(** Run the body, retrying on exceptions [retryable] accepts, up to
    [max_attempts] (default 3) total attempts, spending
    {!backoff_yields} (jittered when [jitter] is given) between attempts
    so peers can progress (e.g. join the recovery collective). The body
    receives the 1-based attempt number. [on_backoff] chooses the
    backoff medium: the default yields on the cooperative scheduler;
    out-of-simulation callers (the cusand client) map the same yield
    counts onto wall-clock sleeps. Non-retryable exceptions propagate;
    @raise Retries_exhausted when the budget is spent. *)

val await : ?label:string -> ?budget:int -> (unit -> bool) -> bool
(** Poll the predicate for at most [budget] (default 1000) yields;
    returns whether it became true. A bounded alternative to blocking
    on a condition that may never be signalled. *)

(** Client-side circuit breaker: gates whether an attempt should be
    made at all, where {!with_retries} only decides how long to wait
    between attempts. After [threshold] consecutive failures the
    circuit opens; calls then wait out a cooldown and exactly one
    half-open probe is let through — success closes the circuit,
    failure re-opens it with a doubled (capped) cooldown from the
    {!backoff_yields} ladder. All timings are deterministic yield
    counts (optionally Prng-jittered), spent through the caller's
    [on_wait] medium. *)
module Breaker : sig
  type state = Closed | Open | Half_open
  type t

  val create : ?jitter:Faultsim.Prng.t -> ?threshold:int -> unit -> t
  (** [threshold] (default 3, ≥ 1) consecutive failures open the
      circuit. *)

  val state : t -> state

  val record_failure : t -> unit
  (** Count one failure: the [threshold]-th consecutive failure while
      closed — or any failed half-open probe — opens the circuit. *)

  val record_success : t -> unit
  (** Reset to closed with a clean failure count and cooldown ladder. *)

  val acquire : ?on_wait:(yields:int -> unit) -> t -> unit
  (** Gate one attempt: closed/half-open proceed immediately; an open
      circuit spends its cooldown via [on_wait] (default: cooperative
      yields) and transitions to half-open, making the caller's next
      attempt the probe. *)

  val call : ?on_wait:(yields:int -> unit) -> failure:(exn -> bool) -> t -> (unit -> 'a) -> 'a
  (** [acquire], run the thunk, record the outcome. Exceptions
      [failure] accepts count against the circuit and re-raise; others
      propagate without tripping it. *)
end

(** Checkpoint/restore of application buffers, keyed by label. Raw byte
    snapshots of simulated memory — like stable storage, invisible to
    load/store instrumentation, perturbing no race report. *)
module Checkpoint : sig
  type t

  val create : unit -> t

  val save : t -> string -> Memsim.Ptr.t -> bytes:int -> unit
  (** Snapshot [bytes] bytes behind the pointer under the key,
      replacing any previous snapshot. *)

  val mem : t -> string -> bool

  val size : t -> string -> int option
  (** Size in bytes of the stored snapshot, if any. *)

  val restore : t -> string -> Memsim.Ptr.t -> unit
  (** Copy the snapshot back behind the pointer (which may be a
      different allocation than the one saved from).
      @raise Invalid_argument when no snapshot exists under the key or
      the target is too small. *)
end
