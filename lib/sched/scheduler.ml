(* Deterministic cooperative scheduler built on OCaml 5 effect handlers.

   Each task is a green thread. Tasks run until they [yield], [wait] on a
   condition, or return. The run queue is FIFO, so for a fixed program the
   interleaving is fully deterministic — a property the MPI simulator and
   the correctness testsuite rely on.

   A [wait]/[signal] pair is the only blocking primitive. When the run
   queue drains while tasks are still blocked, the scheduler raises
   [Deadlock] with the blocked tasks and the conditions they wait on;
   the MPI simulator inherits deadlock detection from this for free.

   Waits may carry a [reason] — a human-readable label for *why* the
   task blocks (e.g. "MPI_Ssend(dst=1, tag=0)"). Deadlock and watchdog
   diagnostics report the reason when present, so a hung MPI program
   names the blocked call and peer rank rather than a bare condition
   variable.

   An optional watchdog bounds the number of scheduling steps (task
   resumptions). Exceeding the budget while work remains raises
   [Stalled] with a wait-for diagnostic covering livelocks and partial
   hangs — some tasks blocked while others spin — which the all-blocked
   [Deadlock] check can never see. Being cooperative, the watchdog can
   only fire between resumptions: a task spinning without yielding is
   not preemptable. *)

type cond = {
  cond_name : string;
  mutable waiters : waiter list; (* reverse arrival order *)
}

and waiter = { w_task : task; w_resume : (unit, unit) Effect.Deep.continuation }

and task = {
  t_name : string;
  t_id : int;
  mutable t_state : state;
  mutable t_reason : string option; (* why it blocks, for diagnostics *)
  mutable t_killed : bool; (* reaped: never resumed again *)
}

and state = Runnable | Blocked of cond | Finished

type candidate = { c_name : string; c_id : int }

(* A picker chooses which runnable task resumes next. It is called with
   the scheduling step and the runnable candidates in FIFO order (the
   order the default dispatcher would drain them) and returns the index
   of its choice. The default FIFO dispatch — picker absent — does not
   go through this indirection at all, so its behavior (and output) is
   byte-identical to the historical scheduler. *)
type picker = step:int -> candidate array -> int

type t = {
  runq : (task * (unit -> unit)) Queue.t;
  mutable tasks : task list; (* reverse spawn order *)
  mutable next_id : int;
  mutable current : task option;
  mutable steps : int; (* task resumptions so far *)
  watchdog : int option; (* step budget; None = unbounded *)
  picker : picker option; (* None = FIFO *)
}

exception Deadlock of (string * string) list
(** [(task, reason-or-condition)] pairs for every task blocked when the
    run queue drained. *)

type stall = {
  stall_steps : int; (* budget that was exhausted *)
  stall_blocked : (string * string) list; (* (task, reason-or-condition) *)
  stall_spinning : string list; (* tasks still runnable: live or livelocked *)
}

exception Stalled of stall

exception Not_in_scheduler

let pp_stall ppf s =
  Fmt.pf ppf "watchdog: no completion after %d scheduling steps@," s.stall_steps;
  Fmt.pf ppf "wait-for graph:@,";
  List.iter
    (fun (task, why) -> Fmt.pf ppf "  %s -> blocked on %s@," task why)
    s.stall_blocked;
  List.iter (fun task -> Fmt.pf ppf "  %s -> runnable (spinning)@," task)
    s.stall_spinning

type _ Effect.t +=
  | Yield : unit Effect.t
  | Wait : cond * string option -> unit Effect.t

(* The running scheduler and its observers are domain-local: each
   domain of a sharded test runner hosts its own independent scheduler,
   so parallel case execution never shares scheduler state. *)
let instance : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Observers notified each time a task is about to run. Correctness
   tools use this to retarget per-thread state (e.g. the race detector's
   current fiber) when the cooperative scheduler interleaves host
   threads. *)
let resume_hooks : (string -> int -> unit) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let on_resume f = Domain.DLS.set resume_hooks (f :: Domain.DLS.get resume_hooks)
let clear_resume_hooks () = Domain.DLS.set resume_hooks []

let get () =
  match Domain.DLS.get instance with
  | Some s -> s
  | None -> raise Not_in_scheduler

let cond name = { cond_name = name; waiters = [] }

let yield () = Effect.perform Yield

let wait ?reason c =
  if Trace.Recorder.on () then
    Trace.Recorder.instant ~cat:"sched"
      ~args:
        (("cond", c.cond_name)
         :: (match reason with Some r -> [ ("reason", r) ] | None -> []))
      "wait";
  Effect.perform (Wait (c, reason))

let current_task () =
  match (get ()).current with Some t -> t | None -> raise Not_in_scheduler

let self () = (current_task ()).t_name
let self_id () = (current_task ()).t_id

(* Wake every waiter of [c]; they re-enter the run queue in arrival
   order. Broadcast semantics: woken tasks must re-check their predicate. *)
let signal c =
  let s = get () in
  let ws = List.rev c.waiters in
  c.waiters <- [];
  List.iter
    (fun w ->
      (* A reaped waiter's continuation is abandoned, not resumed. *)
      if not w.w_task.t_killed then begin
        w.w_task.t_state <- Runnable;
        w.w_task.t_reason <- None;
        Queue.push
          (w.w_task, fun () -> Effect.Deep.continue w.w_resume ())
          s.runq
      end)
    ws

let wait_until ?reason c pred =
  while not (pred ()) do
    wait ?reason c
  done

(* Reap tasks matching [pred]: they are never resumed again (a queued
   or later-signalled continuation is dropped at pop time) and they no
   longer count as blocked for deadlock/stall diagnostics — the
   semantics of threads of a process that died. The continuations are
   simply abandoned; the GC collects them.

   A blocked victim's waiter record is purged from its condition right
   here: the record holds the abandoned continuation (and through it
   the task's whole stack), so leaving it on the list would keep all of
   that reachable until the condition itself dies — a leak on every
   crash-and-recover cycle of a long-lived run. *)
let kill pred =
  let s = get () in
  List.iter
    (fun t ->
      if t.t_state <> Finished && pred t.t_name then begin
        (match t.t_state with
        | Blocked c -> c.waiters <- List.filter (fun w -> w.w_task != t) c.waiters
        | Runnable | Finished -> ());
        t.t_killed <- true;
        t.t_state <- Finished
      end)
    s.tasks

(* Number of waiter records parked on a condition — observability for
   the kill-purge invariant above (tests assert it returns to zero). *)
let waiter_count c = List.length c.waiters

(* Names of tasks that are neither finished nor reaped — the dead
   rank's unjoined host threads a post-mortem lists. *)
let unfinished_tasks () =
  let s = get () in
  List.filter_map
    (fun t ->
      match t.t_state with
      | Finished -> None
      | Runnable | Blocked _ -> Some t.t_name)
    (List.rev s.tasks)

(* Duplicate task names would silently break [kill]-by-predicate and
   trace attribution — both key on names — so a second spawn of "foo"
   becomes "foo#2", a third "foo#3", and so on. Finished tasks stay in
   [s.tasks], so a name is never recycled within one run and decision
   traces stay unambiguous. *)
let unique_name s name =
  if not (List.exists (fun t -> t.t_name = name) s.tasks) then name
  else
    let rec pick k =
      let cand = Printf.sprintf "%s#%d" name k in
      if List.exists (fun t -> t.t_name = cand) s.tasks then pick (k + 1)
      else cand
    in
    pick 2

let spawn_in s name f =
  let name = unique_name s name in
  let task =
    {
      t_name = name;
      t_id = s.next_id;
      t_state = Runnable;
      t_reason = None;
      t_killed = false;
    }
  in
  s.next_id <- s.next_id + 1;
  s.tasks <- task :: s.tasks;
  let thunk () =
    Effect.Deep.match_with f ()
      {
        retc = (fun () -> task.t_state <- Finished);
        exnc = (fun e -> task.t_state <- Finished; raise e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    Queue.push (task, fun () -> Effect.Deep.continue k ()) s.runq)
            | Wait (c, reason) ->
                Some
                  (fun (k : (a, unit) Effect.Deep.continuation) ->
                    task.t_state <- Blocked c;
                    task.t_reason <- reason;
                    c.waiters <- { w_task = task; w_resume = k } :: c.waiters)
            | _ -> None);
      }
  in
  Queue.push (task, thunk) s.runq

(* Spawn a task dynamically from inside a running scheduler. *)
let spawn name f = spawn_in (get ()) name f

(* Pop the next entry to resume, or [None] for a reaped entry that is
   simply dropped. Without a picker this is the historical FIFO
   [Queue.pop] — no indirection, byte-identical scheduling. With one,
   killed entries are purged eagerly (a picker must only ever see live
   candidates), the runnable set is offered in FIFO order, and the
   chosen entry is removed with the others' relative order preserved. *)
let dispatch s =
  match s.picker with
  | None ->
      let ((task, _) as entry) = Queue.pop s.runq in
      if task.t_killed then None (* reaped: drop the continuation *)
      else Some entry
  | Some pick ->
      let entries =
        Queue.fold
          (fun acc ((t, _) as e) -> if t.t_killed then acc else e :: acc)
          [] s.runq
        |> List.rev |> Array.of_list
      in
      Queue.clear s.runq;
      if Array.length entries = 0 then None
      else begin
        let cands =
          Array.map (fun (t, _) -> { c_name = t.t_name; c_id = t.t_id }) entries
        in
        let i = pick ~step:s.steps cands in
        if i < 0 || i >= Array.length entries then
          invalid_arg "Scheduler: picker returned an out-of-range index";
        Array.iteri (fun j e -> if j <> i then Queue.push e s.runq) entries;
        Some entries.(i)
      end

let blocked_pairs s =
  List.filter_map
    (fun t ->
      match t.t_state with
      | Blocked c -> Some (t.t_name, Option.value t.t_reason ~default:c.cond_name)
      | Runnable | Finished -> None)
    (List.rev s.tasks)

let run ?watchdog ?picker tasks =
  (match Domain.DLS.get instance with
  | Some _ -> invalid_arg "Scheduler.run: nested run"
  | None -> ());
  let s =
    {
      runq = Queue.create ();
      tasks = [];
      next_id = 0;
      current = None;
      steps = 0;
      watchdog;
      picker;
    }
  in
  Domain.DLS.set instance (Some s);
  let finish () = Domain.DLS.set instance None in
  Fun.protect ~finally:finish (fun () ->
      List.iter (fun (name, f) -> spawn_in s name f) tasks;
      while not (Queue.is_empty s.runq) do
        (match s.watchdog with
        | Some budget when s.steps >= budget ->
            (* Livelock or partial hang: work remains but the budget is
               spent. Distinguish blocked tasks (edges of the wait-for
               graph) from runnable ones (the spinners starving them). *)
            let spinning =
              Queue.fold
                (fun acc (t, _) ->
                  if t.t_killed || List.mem t.t_name acc then acc
                  else t.t_name :: acc)
                [] s.runq
              |> List.rev
            in
            raise
              (Stalled
                 {
                   stall_steps = s.steps;
                   stall_blocked = blocked_pairs s;
                   stall_spinning = spinning;
                 })
        | _ -> ());
        match dispatch s with
        | None -> () (* reaped entry dropped *)
        | Some (task, thunk) ->
            s.current <- Some task;
            s.steps <- s.steps + 1;
            (* The trace probe runs before the resume hooks, so a hook that
               retargets the race detector (and with it the trace track)
               overrides the task-level attribution set here. *)
            if Trace.Recorder.on () then
              Trace.Recorder.task_resume ~task:task.t_name;
            List.iter
              (fun f -> f task.t_name task.t_id)
              (Domain.DLS.get resume_hooks);
            thunk ();
            s.current <- None
      done;
      let blocked = blocked_pairs s in
      if blocked <> [] then raise (Deadlock blocked))
