(** Deterministic cooperative scheduler.

    Green threads ("tasks") run under a FIFO round-robin scheduler built
    on OCaml 5 effect handlers. For a fixed program the interleaving is
    fully deterministic. The MPI simulator runs one task per rank on top
    of this module and inherits deadlock detection from it. *)

type cond
(** A condition variable tasks can block on. Signals are broadcasts:
    woken tasks must re-check their predicate ([wait_until] does). *)

exception Deadlock of (string * string) list
(** Raised by {!run} when the run queue drains while tasks are still
    blocked. Carries [(task name, why)] for each blocked task, where
    [why] is the wait's [reason] when one was given and the condition
    name otherwise. *)

type stall = {
  stall_steps : int;  (** step budget that was exhausted *)
  stall_blocked : (string * string) list;
      (** [(task, reason-or-condition)] for each blocked task *)
  stall_spinning : string list;
      (** tasks still runnable — live or livelocked *)
}
(** Wait-for diagnostic produced by the watchdog on a livelock or
    partial hang (some tasks blocked while others spin). *)

exception Stalled of stall
(** Raised by {!run} when a [watchdog] step budget is exhausted while
    work remains. *)

exception Not_in_scheduler
(** Raised when a scheduler operation is used outside {!run}. *)

val pp_stall : Format.formatter -> stall -> unit
(** Render a {!stall} as a wait-for-graph diagnostic. *)

val cond : string -> cond
(** [cond name] creates a fresh condition variable; [name] appears in
    {!Deadlock} diagnostics when the wait gave no [reason]. *)

type candidate = { c_name : string; c_id : int }
(** A runnable task offered to a {!picker}: its (unique) name and
    spawn-order id. *)

type picker = step:int -> candidate array -> int
(** A scheduling policy: called at each dispatch with the current step
    number and the runnable candidates in FIFO order (the order the
    default dispatcher would drain them); returns the index of the task
    to resume next. Returning an out-of-range index is a programming
    error ([Invalid_argument]). The schedule explorer uses pickers to
    record decision traces and to replay forced schedule prefixes. *)

val run :
  ?watchdog:int -> ?picker:picker -> (string * (unit -> unit)) list -> unit
(** [run tasks] spawns each named task and schedules until all finish.
    Exceptions from tasks propagate immediately. Not reentrant.

    [watchdog] bounds the number of scheduling steps (task resumptions);
    exceeding it while tasks remain raises {!Stalled} with a wait-for
    diagnostic. This catches livelocks and partial hangs the all-blocked
    {!Deadlock} check cannot see. Being cooperative, the watchdog only
    fires between resumptions — a task spinning without yielding is not
    preemptable.

    [picker] overrides the dispatch policy (see {!picker}). When absent
    the historical FIFO dispatch runs with no indirection, so default
    scheduling — and therefore program output — is byte-identical to a
    scheduler without the hook. *)

val spawn : string -> (unit -> unit) -> unit
(** Spawn an additional task from inside a running scheduler. Task
    names are unique within a run: spawning a name already taken (even
    by a finished task) yields ["name#2"], then ["name#3"], and so on,
    so [kill]-by-predicate and trace attribution never conflate two
    tasks. *)

val yield : unit -> unit
(** Re-enqueue the current task at the back of the run queue. *)

val wait : ?reason:string -> cond -> unit
(** Block the current task until the condition is signalled. [reason]
    labels the blocked call (e.g. ["MPI_Ssend(dst=1, tag=0)"]) in
    {!Deadlock} and {!Stalled} diagnostics. *)

val wait_until : ?reason:string -> cond -> (unit -> bool) -> unit
(** [wait_until c pred] blocks on [c] until [pred ()] holds. *)

val signal : cond -> unit
(** Wake every task blocked on the condition. *)

val kill : (string -> bool) -> unit
(** Reap every unfinished task whose name matches the predicate: it is
    never resumed again (queued or later-signalled continuations are
    dropped), and it stops counting as blocked for deadlock/stall
    diagnostics — the semantics of threads of a process that died. The
    harness supervisor uses this to reap a crashed rank's unjoined host
    threads. *)

val waiter_count : cond -> int
(** Number of waiter records currently parked on the condition. [kill]
    purges a blocked victim's record at reap time (dropping the last
    reference to its abandoned stack); tests assert this returns to
    zero afterwards. *)

val unfinished_tasks : unit -> string list
(** Names of tasks that are neither finished nor reaped, in spawn
    order. A crashed rank's post-mortem filters this for its unjoined
    host threads. *)

val self : unit -> string
(** Name of the current task. *)

val self_id : unit -> int
(** Spawn-order id of the current task. *)

val on_resume : (string -> int -> unit) -> unit
(** Register an observer called with the task's name and id each time a
    task is about to run. Tools use this to retarget per-thread state
    (e.g. the race detector's current fiber) across interleavings. *)

val clear_resume_hooks : unit -> unit
(** Remove all observers registered with {!on_resume}. *)
