(* The cusand daemon core: a long-running analysis service over a
   Unix-domain socket, sharding jobs across the lib/pool domain pool.

   The robustness surface is the design, not a bolt-on:

   - Crash isolation: a job that raises is reaped by its worker into a
     post-mortem reply (error + backtrace) and the worker slot is
     recycled; nothing a job does takes the daemon down. The scheduler
     step-budget watchdog inside every harness run turns wedged
     schedules into labelled [stalled] verdicts, so a worker can never
     be occupied forever.

   - Bounded admission with backpressure: at most [queue_max] jobs are
     in flight (queued + running); past the high-water mark the daemon
     sheds load with an explicit busy/[retry_after] reply instead of
     queueing unboundedly. Health and stats requests are answered
     inline by the accept loop, so the daemon stays observable while
     saturated.

   - Durable result cache: ok verdicts are cached content-addressed by
     the protocol's canonical job key and, under [--state DIR], written
     through to an append-only checksummed journal ({!Journal}). A
     committed verdict survives [kill -9]; restart replays the valid
     journal prefix back into the cache and truncates any torn tail.
     Correctness rests on engine determinism (crashes are never
     cached, and replayed duplicates collapse by digest).

   - Elastic worker pool: the accept loop doubles as a load controller.
     When admission depth outruns the pool it grows workers towards
     [workers_max] immediately; when the pool idles for
     [scale_down_ticks] consecutive ticks it retires one worker at a
     time towards [workers_min]. Shrinks are cooperative — a worker
     retires only at a task boundary ({!Pool.resize}), so resizing
     never changes a verdict. [Resize] frames drive the same path,
     clamped to the same window.

   - Live progress streaming: every worker arms its flight recorder and
     taps it into {!Stream}, so a [Subscribe] connection tails a
     running job's events as they happen. Publishing never blocks the
     job: slow subscribers are dropped with an explicit [lagged]
     frame.

   - Graceful drain: [request_drain] (SIGTERM in bin/cusand) stops
     admission; in-flight jobs get [drain_timeout_s] of wall clock to
     finish, stragglers are cooperatively cancelled and their clients
     told so, and the final stats (including which jobs were
     abandoned) survive as the drain report.

   Exactly one side ever answers a job's connection: whoever flips the
   in-flight record's [replied] flag (worker on completion, drain on
   abandonment) owns the reply, the close, and the accounting. *)

module Mjson = Reporting.Mjson

type cfg = {
  socket_path : string;
  workers : int;  (* initial pool size, clamped into the min/max window *)
  workers_min : int;
  workers_max : int;
  queue_max : int;  (* high-water mark for in-flight jobs *)
  watchdog : int;  (* scheduler step budget per job *)
  cache_cap : int;  (* max cached results; 0 disables the cache *)
  drain_timeout_s : float;
  state_dir : string option;  (* durable journal directory; None = RAM only *)
  compact_every : int;  (* journal appends between compactions *)
  scale_up_depth : int;  (* grow when in-flight > workers * this *)
  scale_down_ticks : int;  (* idle ticks of hysteresis before a shrink *)
  sub_queue : int;  (* per-subscriber frame queue bound *)
  trace : bool;  (* arm the accept loop's recorder for daemon instants *)
  verbose : bool;
}

let default_cfg ~socket_path =
  {
    socket_path;
    workers = 2;
    (* min = max = workers: elasticity is opt-in — the controller only
       acts when the operator opens a window around the initial size. *)
    workers_min = 2;
    workers_max = 2;
    queue_max = 8;
    watchdog = Engine.default_watchdog;
    cache_cap = 1024;
    drain_timeout_s = 30.;
    state_dir = None;
    compact_every = 256;
    scale_up_depth = 2;
    scale_down_ticks = 25;
    sub_queue = 512;
    trace = false;
    verbose = false;
  }

type stats = {
  mutable served : int;  (* ok replies, cache hits included *)
  mutable cache_hits : int;
  mutable shed : int;  (* busy replies *)
  mutable crashed : int;  (* jobs reaped with a daemon post-mortem *)
  mutable stalled : int;  (* jobs whose verdict carried a stall *)
  mutable client_errors : int;  (* error replies: bad frames, bad jobs *)
  mutable drain_cancelled : int;  (* jobs abandoned at drain deadline *)
  mutable peak_in_flight : int;
  mutable resizes_up : int;  (* pool growth events (admin or load) *)
  mutable resizes_down : int;
  mutable replayed : int;  (* cache entries recovered from the journal *)
  mutable journal_appends : int;
  mutable compactions : int;
  mutable abandoned : (string * string) list;
      (* (digest, description) of jobs cancelled at the drain deadline,
         newest first — the drain report names what it threw away *)
}

let stats_json (s : stats) : Mjson.t =
  Mjson.Obj
    [
      ("served", Mjson.Int s.served);
      ("cache_hits", Mjson.Int s.cache_hits);
      ("shed", Mjson.Int s.shed);
      ("crashed", Mjson.Int s.crashed);
      ("stalled", Mjson.Int s.stalled);
      ("client_errors", Mjson.Int s.client_errors);
      ("drain_cancelled", Mjson.Int s.drain_cancelled);
      ("peak_in_flight", Mjson.Int s.peak_in_flight);
      ("resizes_up", Mjson.Int s.resizes_up);
      ("resizes_down", Mjson.Int s.resizes_down);
      ("replayed", Mjson.Int s.replayed);
      ("journal_appends", Mjson.Int s.journal_appends);
      ("compactions", Mjson.Int s.compactions);
      ( "abandoned_jobs",
        Mjson.List
          (List.rev_map
             (fun (digest, describe) ->
               Mjson.Obj
                 [ ("job", Mjson.Str digest); ("describe", Mjson.Str describe) ])
             s.abandoned) );
    ]

type inflight = {
  fd : Unix.file_descr;
  job : Protocol.job;
  digest : string;
  mutable replied : bool;  (* reply ownership: flipped exactly once *)
  mutable handle : unit Pool.handle option;
}

type t = {
  cfg : cfg;
  listen : Unix.file_descr;
  pool : Pool.t;
  m : Mutex.t;
  jobs : (int, inflight) Hashtbl.t;
  mutable next_ticket : int;
  mutable in_flight : int;
  cache : (string, Mjson.t) Hashtbl.t;
  journal : Journal.t option;
  subs : Stream.t;
  stats : stats;
  mutable idle_ticks : int;  (* accept-loop only: shrink hysteresis *)
  drain : bool Atomic.t;
}

let create cfg =
  if cfg.workers_min < 1 then
    invalid_arg "Daemon.create: workers_min must be >= 1";
  if cfg.workers_max < cfg.workers_min then
    invalid_arg "Daemon.create: workers_max must be >= workers_min";
  if cfg.queue_max < 1 then invalid_arg "Daemon.create: queue_max must be >= 1";
  if cfg.compact_every < 1 then
    invalid_arg "Daemon.create: compact_every must be >= 1";
  let workers = max cfg.workers_min (min cfg.workers_max cfg.workers) in
  (* A client closing mid-reply must cost the daemon a Unix_error to
     catch, never a fatal SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if cfg.trace && not (Trace.Recorder.enabled_here ()) then
    Trace.Recorder.enable ();
  let stats =
    {
      served = 0;
      cache_hits = 0;
      shed = 0;
      crashed = 0;
      stalled = 0;
      client_errors = 0;
      drain_cancelled = 0;
      peak_in_flight = 0;
      resizes_up = 0;
      resizes_down = 0;
      replayed = 0;
      journal_appends = 0;
      compactions = 0;
      abandoned = [];
    }
  in
  let cache = Hashtbl.create 256 in
  let journal =
    match cfg.state_dir with
    | None -> None
    | Some dir ->
        let store, recovery = Journal.open_store ~dir in
        (* Warm the cache with every committed verdict that fits. *)
        List.iter
          (fun (digest, result) ->
            if cfg.cache_cap > 0 && Hashtbl.length cache < cfg.cache_cap then begin
              Hashtbl.replace cache digest result;
              stats.replayed <- stats.replayed + 1
            end)
          recovery.Journal.entries;
        Some store
  in
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  Unix.bind listen (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen 64;
  {
    cfg;
    listen;
    pool = Pool.create ~workers;
    m = Mutex.create ();
    jobs = Hashtbl.create 64;
    next_ticket = 0;
    in_flight = 0;
    cache;
    journal;
    subs = Stream.create ~max_queue:cfg.sub_queue ();
    stats;
    idle_ticks = 0;
    drain = Atomic.make false;
  }

(* Signal-safe: the SIGTERM handler only flips an atomic the accept
   loop polls between selects. *)
let request_drain t = Atomic.set t.drain true

let draining t = Atomic.get t.drain

let log t fmt =
  if t.cfg.verbose then Fmt.epr ("cusand: " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter fmt

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_quietly fd j = try Protocol.write_frame fd j with Unix.Unix_error _ -> ()

(* Does a result carry a stall verdict? (soak: outcome="stalled";
   bench: stalled=true) *)
let result_stalled (j : Mjson.t) =
  (match Mjson.member "outcome" j |> Fun.flip Option.bind Mjson.to_str with
  | Some "stalled" -> true
  | _ -> false)
  || Mjson.member "stalled" j |> Fun.flip Option.bind Mjson.to_bool
     = Some true

(* --- elastic pool --------------------------------------------------------- *)

(* The single resize path: admin frames and the load controller both
   land here, so clamping, accounting, the trace instant and the
   hysteresis reset cannot drift apart. *)
let apply_resize t ~reason target =
  let target = max t.cfg.workers_min (min t.cfg.workers_max target) in
  let from_ = Pool.resize t.pool target in
  if target <> from_ then begin
    Mutex.lock t.m;
    if target > from_ then t.stats.resizes_up <- t.stats.resizes_up + 1
    else t.stats.resizes_down <- t.stats.resizes_down + 1;
    Mutex.unlock t.m;
    t.idle_ticks <- 0;
    Trace.Recorder.instant ~cat:"daemon"
      ~args:
        [
          ("from", string_of_int from_);
          ("to", string_of_int target);
          ("reason", reason);
        ]
      "pool_resized";
    log t "pool resized %d -> %d (%s)" from_ target reason
  end;
  from_

(* --- the worker side ----------------------------------------------------- *)

(* Runs on a pool domain. Whatever happens — clean result, client
   mistake, wedge (already a verdict thanks to the watchdog), or an
   exception — the slot is recycled and at most one reply is written.
   The worker's flight recorder is always armed and tapped into the
   stream registry, so subscribers can tail the job live. *)
let run_one t (ticket : int) (inf : inflight) ~cancelled =
  if cancelled () then ()
  else begin
    if not (Trace.Recorder.enabled_here ()) then Trace.Recorder.enable ();
    Trace.Recorder.set_sink (fun ev ->
        Stream.publish t.subs ~schema:Protocol.schema ~digest:inf.digest ev);
    let t0 = Unix.gettimeofday () in
    let outcome =
      match Engine.run_job ~watchdog:t.cfg.watchdog inf.job with
      | Ok result -> `Ok result
      | Error msg -> `Client_error msg
      | exception e -> `Crash (e, Printexc.get_backtrace ())
    in
    Trace.Recorder.clear_sink ();
    let elapsed_s = Unix.gettimeofday () -. t0 in
    Mutex.lock t.m;
    let reply, status =
      match outcome with
      | `Ok result ->
          t.stats.served <- t.stats.served + 1;
          let stalled = result_stalled result in
          if stalled then t.stats.stalled <- t.stats.stalled + 1;
          if
            t.cfg.cache_cap > 0
            && Hashtbl.length t.cache < t.cfg.cache_cap
            && not (Hashtbl.mem t.cache inf.digest)
          then begin
            Hashtbl.add t.cache inf.digest result;
            (* Write-through: the verdict is committed before the reply
               leaves, so a cache entry a client has seen can never be
               lost to a crash. A full disk costs durability of this
               one entry, never the reply or the worker. *)
            match t.journal with
            | None -> ()
            | Some j -> (
                try
                  Journal.append j ~digest:inf.digest result;
                  t.stats.journal_appends <- t.stats.journal_appends + 1
                with e ->
                  log t "journal append failed: %s" (Printexc.to_string e))
          end;
          ( Protocol.ok_reply ~job:inf.digest ~elapsed_s result,
            if stalled then "stalled" else "ok" )
      | `Client_error msg ->
          t.stats.client_errors <- t.stats.client_errors + 1;
          (Protocol.error_reply msg, "error")
      | `Crash (e, bt) ->
          t.stats.crashed <- t.stats.crashed + 1;
          ( Protocol.crashed_reply ~job:inf.digest ~error:(Printexc.to_string e)
              ~backtrace:
                (String.split_on_char '\n' bt
                |> List.filter (fun l -> String.trim l <> "")),
            "crashed" )
    in
    let owns = not inf.replied in
    if owns then begin
      inf.replied <- true;
      Hashtbl.remove t.jobs ticket;
      t.in_flight <- t.in_flight - 1
    end;
    Mutex.unlock t.m;
    if owns then begin
      write_quietly inf.fd reply;
      close_quietly inf.fd
    end;
    Stream.finish t.subs ~schema:Protocol.schema ~digest:inf.digest ~status;
    (match outcome with
    | `Crash (e, _) ->
        log t "job %s reaped: %s (worker slot recycled)" inf.digest
          (Printexc.to_string e)
    | _ -> ())
  end

(* --- the accept-loop side ------------------------------------------------ *)

let health_json t =
  Mutex.lock t.m;
  let in_flight = t.in_flight in
  let cached = Hashtbl.length t.cache in
  Mutex.unlock t.m;
  Mjson.Obj
    [
      ("schema", Mjson.Str Protocol.schema);
      ("status", Mjson.Str "ok");
      ("role", Mjson.Str "cusand");
      ("in_flight", Mjson.Int in_flight);
      ("high_water", Mjson.Int t.cfg.queue_max);
      ("workers", Mjson.Int (Pool.size t.pool));
      ("workers_alive", Mjson.Int (Pool.alive t.pool));
      ("workers_min", Mjson.Int t.cfg.workers_min);
      ("workers_max", Mjson.Int t.cfg.workers_max);
      ("cached", Mjson.Int cached);
      ("durable", Mjson.Bool (t.journal <> None));
      ("subscribers", Mjson.Int (Stream.subscriber_count t.subs));
      ("draining", Mjson.Bool (draining t));
    ]

let full_stats_json t =
  let journal_json =
    match t.journal with
    | None -> Mjson.Bool false
    | Some j ->
        Mjson.Obj
          [
            ("replayed", Mjson.Int (Journal.recovered_entries j));
            ("appends", Mjson.Int (Journal.appended_since_compact j));
            ( "torn_tail",
              match Journal.torn_tail j with
              | None -> Mjson.Null
              | Some why -> Mjson.Str why );
          ]
  in
  Mjson.Obj
    [
      ("schema", Mjson.Str Protocol.schema);
      ("status", Mjson.Str "ok");
      ("role", Mjson.Str "cusand");
      ("workers", Mjson.Int (Pool.size t.pool));
      ("high_water", Mjson.Int t.cfg.queue_max);
      ("journal", journal_json);
      ("subscribers_served", Mjson.Int (Stream.served_count t.subs));
      ("subscribers_lagged", Mjson.Int (Stream.lagged_count t.subs));
      ("stats", stats_json t.stats);
    ]

let submit t fd (job : Protocol.job) =
  let digest = Protocol.job_digest job in
  Mutex.lock t.m;
  match Hashtbl.find_opt t.cache digest with
  | Some result ->
      t.stats.served <- t.stats.served + 1;
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      Mutex.unlock t.m;
      write_quietly fd (Protocol.ok_reply ~cached:true ~job:digest ~elapsed_s:0. result);
      close_quietly fd;
      log t "cache hit %s (%s)" digest (Protocol.job_describe job)
  | None ->
      if t.in_flight >= t.cfg.queue_max then begin
        t.stats.shed <- t.stats.shed + 1;
        let in_flight = t.in_flight in
        Mutex.unlock t.m;
        (* Backoff hint scales with the overshoot past the high-water
           mark plus the work queued behind the running workers. *)
        let queue_len = max 0 (in_flight - Pool.alive t.pool) in
        let retry_after =
          Protocol.retry_after_hint ~in_flight ~high_water:t.cfg.queue_max
            ~queue_len
        in
        write_quietly fd
          (Protocol.busy_reply ~retry_after ~in_flight
             ~high_water:t.cfg.queue_max);
        close_quietly fd;
        log t "shed %s (in-flight %d >= %d)" (Protocol.job_describe job)
          in_flight t.cfg.queue_max
      end
      else begin
        t.in_flight <- t.in_flight + 1;
        if t.in_flight > t.stats.peak_in_flight then
          t.stats.peak_in_flight <- t.in_flight;
        let ticket = t.next_ticket in
        t.next_ticket <- ticket + 1;
        let inf = { fd; job; digest; replied = false; handle = None } in
        Hashtbl.add t.jobs ticket inf;
        Mutex.unlock t.m;
        let h =
          Pool.submit_cancellable t.pool (fun ~cancelled ->
              run_one t ticket inf ~cancelled)
        in
        Mutex.lock t.m;
        inf.handle <- Some h;
        Mutex.unlock t.m;
        log t "admitted %s as %s" (Protocol.job_describe job) digest
      end

(* Attach a connection to a job's live event stream. Registration
   happens under the daemon lock: if the job is still in the table its
   worker has not yet run its [Stream.finish], so the subscriber is
   guaranteed a terminal frame; if it already resolved, the cached
   verdict answers as an immediate [end]. *)
let subscribe_conn t fd digest =
  Mutex.lock t.m;
  let running =
    Hashtbl.fold (fun _ inf acc -> acc || inf.digest = digest) t.jobs false
  in
  let cached = Hashtbl.mem t.cache digest in
  if running then begin
    Stream.subscribe t.subs ~schema:Protocol.schema ~digest fd;
    Mutex.unlock t.m;
    log t "subscriber attached to %s" digest
  end
  else begin
    Mutex.unlock t.m;
    if cached then
      write_quietly fd (Protocol.stream_end_reply ~job:digest ~status:"cached")
    else begin
      Mutex.lock t.m;
      t.stats.client_errors <- t.stats.client_errors + 1;
      Mutex.unlock t.m;
      write_quietly fd
        (Protocol.error_reply
           (Printf.sprintf "no queued or running job %s" digest))
    end;
    close_quietly fd
  end

(* One connection, one frame, one reply (a subscribe hands its socket
   to the stream registry instead). Nothing a peer sends — torn frame,
   oversized frame, hostile bytes, instant close — may raise out of
   here; a protocol failure costs an error reply, never the accept
   loop. *)
let handle_conn t fd =
  try
    (* A peer that connects and never sends must not wedge the accept
       loop: reads and writes on the conversation socket time out. *)
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.
     with Unix.Unix_error _ -> ());
    match Protocol.read_frame fd with
    | Error Protocol.Closed -> close_quietly fd
    | Error e ->
        Mutex.lock t.m;
        t.stats.client_errors <- t.stats.client_errors + 1;
        Mutex.unlock t.m;
        write_quietly fd (Protocol.error_reply (Protocol.read_error_to_string e));
        close_quietly fd
    | Ok line -> (
        match Protocol.parse_request line with
        | Error msg ->
            Mutex.lock t.m;
            t.stats.client_errors <- t.stats.client_errors + 1;
            Mutex.unlock t.m;
            write_quietly fd (Protocol.error_reply msg);
            close_quietly fd
        | Ok Protocol.Health ->
            write_quietly fd (health_json t);
            close_quietly fd
        | Ok Protocol.Stats ->
            write_quietly fd (full_stats_json t);
            close_quietly fd
        | Ok Protocol.Shutdown ->
            write_quietly fd
              (Mjson.Obj
                 [
                   ("schema", Mjson.Str Protocol.schema);
                   ("status", Mjson.Str "ok");
                   ("draining", Mjson.Bool true);
                 ]);
            close_quietly fd;
            request_drain t
        | Ok (Protocol.Resize n) ->
            let target = max t.cfg.workers_min (min t.cfg.workers_max n) in
            let from_ = apply_resize t ~reason:"admin" target in
            write_quietly fd
              (Protocol.resized_reply ~requested:n ~from_ ~to_:target);
            close_quietly fd
        | Ok (Protocol.Subscribe { digest }) -> subscribe_conn t fd digest
        | Ok (Protocol.Submit job) ->
            if draining t then begin
              write_quietly fd (Protocol.error_reply "draining: admission closed");
              close_quietly fd
            end
            else submit t fd job)
  with e ->
    Mutex.lock t.m;
    t.stats.client_errors <- t.stats.client_errors + 1;
    Mutex.unlock t.m;
    log t "connection handler: %s" (Printexc.to_string e);
    close_quietly fd

(* Fold the committed cache into a fresh snapshot and truncate the
   journal. Holding the daemon lock excludes concurrent worker appends;
   the entry list is digest-sorted so snapshot bytes are deterministic
   for a given committed set. *)
let compact_locked t j =
  let entries =
    Hashtbl.fold (fun d r acc -> (d, r) :: acc) t.cache []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  try
    Journal.compact j ~entries;
    t.stats.compactions <- t.stats.compactions + 1
  with e -> log t "compaction failed: %s" (Printexc.to_string e)

let maybe_compact t =
  match t.journal with
  | Some j when Journal.appended_since_compact j >= t.cfg.compact_every ->
      Mutex.lock t.m;
      if Journal.appended_since_compact j >= t.cfg.compact_every then
        compact_locked t j;
      Mutex.unlock t.m
  | _ -> ()

(* Accept-loop tick: flush subscriber backlogs, compact the journal
   when due, and run the load controller. Scale-up is immediate (work
   is waiting); scale-down needs [scale_down_ticks] consecutive
   under-loaded ticks — the hysteresis that keeps a bursty client from
   thrashing the pool. *)
let tick t =
  Stream.flush t.subs;
  maybe_compact t;
  if t.cfg.workers_min < t.cfg.workers_max then begin
    Mutex.lock t.m;
    let depth = t.in_flight in
    Mutex.unlock t.m;
    let cur = Pool.size t.pool in
    if depth > cur * t.cfg.scale_up_depth && cur < t.cfg.workers_max then
      (* Enough workers to bring depth per worker back under the
         threshold, in one step, capped at the window. *)
      let want =
        min t.cfg.workers_max
          (max (cur + 1)
             ((depth + t.cfg.scale_up_depth - 1) / t.cfg.scale_up_depth))
      in
      ignore (apply_resize t ~reason:"load" want)
    else if cur > t.cfg.workers_min && depth < cur then begin
      t.idle_ticks <- t.idle_ticks + 1;
      if t.idle_ticks >= t.cfg.scale_down_ticks then
        (* One worker per decision, and apply_resize resets the idle
           counter — so a shrink to the floor takes several quiet
           periods, never one cliff. *)
        ignore (apply_resize t ~reason:"load" (cur - 1))
    end
    else t.idle_ticks <- 0
  end

(* Drain: admission is already closed (the listener goes down first);
   in-flight jobs get the wall-clock budget to finish, stragglers are
   cooperatively cancelled and their clients told. Thanks to the
   per-job watchdog the pool always quiesces, so the final shutdown
   join terminates. *)
let drain_now t =
  close_quietly t.listen;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  let deadline = Unix.gettimeofday () +. t.cfg.drain_timeout_s in
  let rec wait () =
    Mutex.lock t.m;
    let left = t.in_flight in
    Mutex.unlock t.m;
    Stream.flush t.subs;
    if left > 0 && Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.01;
      wait ()
    end
  in
  wait ();
  Mutex.lock t.m;
  let stragglers =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.jobs []
    (* Ticket order, not hash order: abandoned jobs get their error
       replies (and the cancel calls) in a deterministic sequence. *)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (ticket, inf) ->
      Option.iter Pool.cancel inf.handle;
      if not inf.replied then begin
        inf.replied <- true;
        Hashtbl.remove t.jobs ticket;
        t.in_flight <- t.in_flight - 1;
        t.stats.drain_cancelled <- t.stats.drain_cancelled + 1;
        t.stats.abandoned <-
          (inf.digest, Protocol.job_describe inf.job) :: t.stats.abandoned;
        write_quietly inf.fd
          (Protocol.error_reply "draining: job abandoned at drain deadline");
        close_quietly inf.fd
      end)
    stragglers;
  Mutex.unlock t.m;
  Stream.close_all t.subs ~schema:Protocol.schema ~status:"cancelled";
  Pool.shutdown t.pool;
  (* Park the committed state in a fresh snapshot so the next boot
     replays from one clean file. A kill -9 skips this by definition —
     that path recovers from the journal instead. *)
  (match t.journal with
  | None -> ()
  | Some j ->
      Mutex.lock t.m;
      compact_locked t j;
      Mutex.unlock t.m;
      Journal.close j);
  t.stats

(* Serve until drain is requested (via {!request_drain}, a SIGTERM
   handler, or a shutdown frame), then drain and return the final
   stats. EINTR — the signal's footprint on a blocking select — is just
   another reason to re-check the drain flag. *)
let serve t =
  log t
    "listening on %s (%d workers in [%d, %d], high-water %d, watchdog %d \
     steps%s)"
    t.cfg.socket_path (Pool.size t.pool) t.cfg.workers_min t.cfg.workers_max
    t.cfg.queue_max t.cfg.watchdog
    (match t.cfg.state_dir with
    | None -> ""
    | Some d -> Printf.sprintf ", state %s" d);
  if t.stats.replayed > 0 then
    log t "recovered %d cached verdicts from the journal" t.stats.replayed;
  let rec loop () =
    if draining t then ()
    else begin
      tick t;
      match Unix.select [ t.listen ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
          (match Unix.accept t.listen with
          | fd, _ -> handle_conn t fd
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ();
  log t "drain requested; closing admission";
  let stats = drain_now t in
  log t "drained (served %d, crashed %d, shed %d, abandoned %d)" stats.served
    stats.crashed stats.shed stats.drain_cancelled;
  stats
