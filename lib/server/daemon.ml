(* The cusand daemon core: a long-running analysis service over a
   Unix-domain socket, sharding jobs across the lib/pool domain pool.

   The robustness surface is the design, not a bolt-on:

   - Crash isolation: a job that raises is reaped by its worker into a
     post-mortem reply (error + backtrace) and the worker slot is
     recycled; nothing a job does takes the daemon down. The scheduler
     step-budget watchdog inside every harness run turns wedged
     schedules into labelled [stalled] verdicts, so a worker can never
     be occupied forever.

   - Bounded admission with backpressure: at most [queue_max] jobs are
     in flight (queued + running); past the high-water mark the daemon
     sheds load with an explicit busy/[retry_after] reply instead of
     queueing unboundedly. Health and stats requests are answered
     inline by the accept loop, so the daemon stays observable while
     saturated.

   - Graceful drain: [request_drain] (SIGTERM in bin/cusand) stops
     admission; in-flight jobs get [drain_timeout_s] of wall clock to
     finish, stragglers are cooperatively cancelled and their clients
     told so, and the final stats survive as the drain report.

   - Content-addressed result cache: job results are keyed by the
     protocol's canonical job key; repeated submissions are served from
     cache by the accept loop without touching the pool. Correctness
     rests on engine determinism (crashes are never cached).

   Exactly one side ever answers a job's connection: whoever flips the
   in-flight record's [replied] flag (worker on completion, drain on
   abandonment) owns the reply, the close, and the accounting. *)

module Mjson = Reporting.Mjson

type cfg = {
  socket_path : string;
  workers : int;
  queue_max : int;  (* high-water mark for in-flight jobs *)
  watchdog : int;  (* scheduler step budget per job *)
  cache_cap : int;  (* max cached results; 0 disables the cache *)
  drain_timeout_s : float;
  trace : bool;  (* arm per-worker flight recorders, tag job instants *)
  verbose : bool;
}

let default_cfg ~socket_path =
  {
    socket_path;
    workers = 2;
    queue_max = 8;
    watchdog = Engine.default_watchdog;
    cache_cap = 1024;
    drain_timeout_s = 30.;
    trace = false;
    verbose = false;
  }

type stats = {
  mutable served : int;  (* ok replies, cache hits included *)
  mutable cache_hits : int;
  mutable shed : int;  (* busy replies *)
  mutable crashed : int;  (* jobs reaped with a daemon post-mortem *)
  mutable stalled : int;  (* jobs whose verdict carried a stall *)
  mutable client_errors : int;  (* error replies: bad frames, bad jobs *)
  mutable drain_cancelled : int;  (* jobs abandoned at drain deadline *)
  mutable peak_in_flight : int;
}

let stats_json (s : stats) : Mjson.t =
  Mjson.Obj
    [
      ("served", Mjson.Int s.served);
      ("cache_hits", Mjson.Int s.cache_hits);
      ("shed", Mjson.Int s.shed);
      ("crashed", Mjson.Int s.crashed);
      ("stalled", Mjson.Int s.stalled);
      ("client_errors", Mjson.Int s.client_errors);
      ("drain_cancelled", Mjson.Int s.drain_cancelled);
      ("peak_in_flight", Mjson.Int s.peak_in_flight);
    ]

type inflight = {
  fd : Unix.file_descr;
  job : Protocol.job;
  digest : string;
  mutable replied : bool;  (* reply ownership: flipped exactly once *)
  mutable handle : unit Pool.handle option;
}

type t = {
  cfg : cfg;
  listen : Unix.file_descr;
  pool : Pool.t;
  m : Mutex.t;
  jobs : (int, inflight) Hashtbl.t;
  mutable next_ticket : int;
  mutable in_flight : int;
  cache : (string, Mjson.t) Hashtbl.t;
  stats : stats;
  drain : bool Atomic.t;
}

let create cfg =
  if cfg.workers < 1 then invalid_arg "Daemon.create: workers must be >= 1";
  if cfg.queue_max < 1 then invalid_arg "Daemon.create: queue_max must be >= 1";
  (* A client closing mid-reply must cost the daemon a Unix_error to
     catch, never a fatal SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  Unix.bind listen (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen 64;
  {
    cfg;
    listen;
    pool = Pool.create ~workers:cfg.workers;
    m = Mutex.create ();
    jobs = Hashtbl.create 64;
    next_ticket = 0;
    in_flight = 0;
    cache = Hashtbl.create 256;
    stats =
      {
        served = 0;
        cache_hits = 0;
        shed = 0;
        crashed = 0;
        stalled = 0;
        client_errors = 0;
        drain_cancelled = 0;
        peak_in_flight = 0;
      };
    drain = Atomic.make false;
  }

(* Signal-safe: the SIGTERM handler only flips an atomic the accept
   loop polls between selects. *)
let request_drain t = Atomic.set t.drain true

let draining t = Atomic.get t.drain

let log t fmt =
  if t.cfg.verbose then Fmt.epr ("cusand: " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter fmt

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_quietly fd j = try Protocol.write_frame fd j with Unix.Unix_error _ -> ()

(* Does a result carry a stall verdict? (soak: outcome="stalled";
   bench: stalled=true) *)
let result_stalled (j : Mjson.t) =
  (match Mjson.member "outcome" j |> Fun.flip Option.bind Mjson.to_str with
  | Some "stalled" -> true
  | _ -> false)
  || Mjson.member "stalled" j |> Fun.flip Option.bind Mjson.to_bool
     = Some true

(* --- the worker side ----------------------------------------------------- *)

(* Runs on a pool domain. Whatever happens — clean result, client
   mistake, wedge (already a verdict thanks to the watchdog), or an
   exception — the slot is recycled and at most one reply is written. *)
let run_one t (ticket : int) (inf : inflight) ~cancelled =
  if cancelled () then ()
  else begin
    if t.cfg.trace && not (Trace.Recorder.enabled_here ()) then
      Trace.Recorder.enable ();
    let t0 = Unix.gettimeofday () in
    let outcome =
      match Engine.run_job ~watchdog:t.cfg.watchdog inf.job with
      | Ok result -> `Ok result
      | Error msg -> `Client_error msg
      | exception e -> `Crash (e, Printexc.get_backtrace ())
    in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    Mutex.lock t.m;
    let reply =
      match outcome with
      | `Ok result ->
          t.stats.served <- t.stats.served + 1;
          if result_stalled result then t.stats.stalled <- t.stats.stalled + 1;
          if
            t.cfg.cache_cap > 0
            && Hashtbl.length t.cache < t.cfg.cache_cap
            && not (Hashtbl.mem t.cache inf.digest)
          then Hashtbl.add t.cache inf.digest result;
          Protocol.ok_reply ~job:inf.digest ~elapsed_s result
      | `Client_error msg ->
          t.stats.client_errors <- t.stats.client_errors + 1;
          Protocol.error_reply msg
      | `Crash (e, bt) ->
          t.stats.crashed <- t.stats.crashed + 1;
          Protocol.crashed_reply ~job:inf.digest ~error:(Printexc.to_string e)
            ~backtrace:
              (String.split_on_char '\n' bt
              |> List.filter (fun l -> String.trim l <> ""))
    in
    let owns = not inf.replied in
    if owns then begin
      inf.replied <- true;
      Hashtbl.remove t.jobs ticket;
      t.in_flight <- t.in_flight - 1
    end;
    Mutex.unlock t.m;
    if owns then begin
      write_quietly inf.fd reply;
      close_quietly inf.fd
    end;
    (match outcome with
    | `Crash (e, _) ->
        log t "job %s reaped: %s (worker slot recycled)" inf.digest
          (Printexc.to_string e)
    | _ -> ())
  end

(* --- the accept-loop side ------------------------------------------------ *)

let health_json t =
  Mutex.lock t.m;
  let in_flight = t.in_flight in
  Mutex.unlock t.m;
  Mjson.Obj
    [
      ("schema", Mjson.Str Protocol.schema);
      ("status", Mjson.Str "ok");
      ("role", Mjson.Str "cusand");
      ("in_flight", Mjson.Int in_flight);
      ("high_water", Mjson.Int t.cfg.queue_max);
      ("workers", Mjson.Int (Pool.size t.pool));
      ("cached", Mjson.Int (Hashtbl.length t.cache));
      ("draining", Mjson.Bool (draining t));
    ]

let full_stats_json t =
  Mjson.Obj
    [
      ("schema", Mjson.Str Protocol.schema);
      ("status", Mjson.Str "ok");
      ("role", Mjson.Str "cusand");
      ("workers", Mjson.Int (Pool.size t.pool));
      ("high_water", Mjson.Int t.cfg.queue_max);
      ("stats", stats_json t.stats);
    ]

let submit t fd (job : Protocol.job) =
  let digest = Protocol.job_digest job in
  Mutex.lock t.m;
  match Hashtbl.find_opt t.cache digest with
  | Some result ->
      t.stats.served <- t.stats.served + 1;
      t.stats.cache_hits <- t.stats.cache_hits + 1;
      Mutex.unlock t.m;
      write_quietly fd (Protocol.ok_reply ~cached:true ~job:digest ~elapsed_s:0. result);
      close_quietly fd;
      log t "cache hit %s (%s)" digest (Protocol.job_describe job)
  | None ->
      if t.in_flight >= t.cfg.queue_max then begin
        t.stats.shed <- t.stats.shed + 1;
        let in_flight = t.in_flight in
        Mutex.unlock t.m;
        let retry_after = max 1 (in_flight / max 1 (Pool.size t.pool)) in
        write_quietly fd
          (Protocol.busy_reply ~retry_after ~in_flight
             ~high_water:t.cfg.queue_max);
        close_quietly fd;
        log t "shed %s (in-flight %d >= %d)" (Protocol.job_describe job)
          in_flight t.cfg.queue_max
      end
      else begin
        t.in_flight <- t.in_flight + 1;
        if t.in_flight > t.stats.peak_in_flight then
          t.stats.peak_in_flight <- t.in_flight;
        let ticket = t.next_ticket in
        t.next_ticket <- ticket + 1;
        let inf = { fd; job; digest; replied = false; handle = None } in
        Hashtbl.add t.jobs ticket inf;
        Mutex.unlock t.m;
        let h =
          Pool.submit_cancellable t.pool (fun ~cancelled ->
              run_one t ticket inf ~cancelled)
        in
        Mutex.lock t.m;
        inf.handle <- Some h;
        Mutex.unlock t.m;
        log t "admitted %s as %s" (Protocol.job_describe job) digest
      end

(* One connection, one frame, one reply. Nothing a peer sends — torn
   frame, oversized frame, hostile bytes, instant close — may raise out
   of here; a protocol failure costs an error reply, never the accept
   loop. *)
let handle_conn t fd =
  try
    (* A peer that connects and never sends must not wedge the accept
       loop: reads and writes on the conversation socket time out. *)
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.
     with Unix.Unix_error _ -> ());
    match Protocol.read_frame fd with
    | Error Protocol.Closed -> close_quietly fd
    | Error e ->
        Mutex.lock t.m;
        t.stats.client_errors <- t.stats.client_errors + 1;
        Mutex.unlock t.m;
        write_quietly fd (Protocol.error_reply (Protocol.read_error_to_string e));
        close_quietly fd
    | Ok line -> (
        match Protocol.parse_request line with
        | Error msg ->
            Mutex.lock t.m;
            t.stats.client_errors <- t.stats.client_errors + 1;
            Mutex.unlock t.m;
            write_quietly fd (Protocol.error_reply msg);
            close_quietly fd
        | Ok Protocol.Health ->
            write_quietly fd (health_json t);
            close_quietly fd
        | Ok Protocol.Stats ->
            write_quietly fd (full_stats_json t);
            close_quietly fd
        | Ok Protocol.Shutdown ->
            write_quietly fd
              (Mjson.Obj
                 [
                   ("schema", Mjson.Str Protocol.schema);
                   ("status", Mjson.Str "ok");
                   ("draining", Mjson.Bool true);
                 ]);
            close_quietly fd;
            request_drain t
        | Ok (Protocol.Submit job) ->
            if draining t then begin
              write_quietly fd (Protocol.error_reply "draining: admission closed");
              close_quietly fd
            end
            else submit t fd job)
  with e ->
    Mutex.lock t.m;
    t.stats.client_errors <- t.stats.client_errors + 1;
    Mutex.unlock t.m;
    log t "connection handler: %s" (Printexc.to_string e);
    close_quietly fd

(* Drain: admission is already closed (the listener goes down first);
   in-flight jobs get the wall-clock budget to finish, stragglers are
   cooperatively cancelled and their clients told. Thanks to the
   per-job watchdog the pool always quiesces, so the final shutdown
   join terminates. *)
let drain_now t =
  close_quietly t.listen;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  let deadline = Unix.gettimeofday () +. t.cfg.drain_timeout_s in
  let rec wait () =
    Mutex.lock t.m;
    let left = t.in_flight in
    Mutex.unlock t.m;
    if left > 0 && Unix.gettimeofday () < deadline then begin
      Unix.sleepf 0.01;
      wait ()
    end
  in
  wait ();
  Mutex.lock t.m;
  let stragglers =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.jobs []
    (* Ticket order, not hash order: abandoned jobs get their error
       replies (and the cancel calls) in a deterministic sequence. *)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (ticket, inf) ->
      Option.iter Pool.cancel inf.handle;
      if not inf.replied then begin
        inf.replied <- true;
        Hashtbl.remove t.jobs ticket;
        t.in_flight <- t.in_flight - 1;
        t.stats.drain_cancelled <- t.stats.drain_cancelled + 1;
        write_quietly inf.fd
          (Protocol.error_reply "draining: job abandoned at drain deadline");
        close_quietly inf.fd
      end)
    stragglers;
  Mutex.unlock t.m;
  Pool.shutdown t.pool;
  t.stats

(* Serve until drain is requested (via {!request_drain}, a SIGTERM
   handler, or a shutdown frame), then drain and return the final
   stats. EINTR — the signal's footprint on a blocking select — is just
   another reason to re-check the drain flag. *)
let serve t =
  log t "listening on %s (%d workers, high-water %d, watchdog %d steps)"
    t.cfg.socket_path (Pool.size t.pool) t.cfg.queue_max t.cfg.watchdog;
  let rec loop () =
    if draining t then ()
    else
      match Unix.select [ t.listen ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ ->
          (match Unix.accept t.listen with
          | fd, _ -> handle_conn t fd
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ();
  log t "drain requested; closing admission";
  let stats = drain_now t in
  log t "drained (served %d, crashed %d, shed %d)" stats.served stats.crashed
    stats.shed;
  stats
