(** The cusand daemon core: a crash-isolated, backpressured analysis
    service over a Unix-domain socket, sharding jobs across a
    {!Pool.t} of worker domains.

    Robustness contract:
    - a job that raises is reaped into a post-mortem reply and its
      worker slot recycled — never the daemon;
    - every job runs under the scheduler step-budget watchdog, so a
      wedged schedule becomes a labelled [stalled] verdict, not a hung
      worker;
    - admission is bounded at [queue_max] in-flight jobs; beyond the
      high-water mark the daemon sheds load with a busy/[retry_after]
      reply (health/stats stay answerable from the accept loop);
    - {!request_drain} (wired to SIGTERM in bin/cusand) stops
      admission, gives in-flight jobs [drain_timeout_s] to finish,
      cancels and answers stragglers, and {!serve} returns the final
      stats;
    - ok results are cached content-addressed by {!Protocol.job_digest}
      (sound because the engine is deterministic). *)

type cfg = {
  socket_path : string;
  workers : int;
  queue_max : int;  (** high-water mark for in-flight jobs *)
  watchdog : int;  (** scheduler step budget per job *)
  cache_cap : int;  (** max cached results; 0 disables the cache *)
  drain_timeout_s : float;
  trace : bool;  (** arm per-worker flight recorders *)
  verbose : bool;
}

val default_cfg : socket_path:string -> cfg

type stats = {
  mutable served : int;  (** ok replies, cache hits included *)
  mutable cache_hits : int;
  mutable shed : int;  (** busy replies *)
  mutable crashed : int;  (** jobs reaped with a daemon post-mortem *)
  mutable stalled : int;  (** jobs whose verdict carried a stall *)
  mutable client_errors : int;  (** error replies: bad frames, bad jobs *)
  mutable drain_cancelled : int;  (** jobs abandoned at the drain deadline *)
  mutable peak_in_flight : int;
}

val stats_json : stats -> Reporting.Mjson.t

type t

val create : cfg -> t
(** Bind and listen on [cfg.socket_path] (a stale socket file is
    unlinked) and spin up the worker pool. Ignores SIGPIPE. *)

val request_drain : t -> unit
(** Signal-safe: flips an atomic the accept loop polls. *)

val draining : t -> bool

val serve : t -> stats
(** Accept and answer requests until drain is requested, then drain
    and return the final stats. *)
