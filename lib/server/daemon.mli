(** The cusand daemon core: a crash-isolated, backpressured, durable,
    elastic analysis service over a Unix-domain socket, sharding jobs
    across a {!Pool.t} of worker domains.

    Robustness contract:
    - a job that raises is reaped into a post-mortem reply and its
      worker slot recycled — never the daemon;
    - every job runs under the scheduler step-budget watchdog, so a
      wedged schedule becomes a labelled [stalled] verdict, not a hung
      worker;
    - admission is bounded at [queue_max] in-flight jobs; beyond the
      high-water mark the daemon sheds load with a busy/[retry_after]
      reply (health/stats stay answerable from the accept loop);
    - ok results are cached content-addressed by {!Protocol.job_digest}
      (sound because the engine is deterministic) and, with
      [state_dir] set, written through to the crash-safe {!Journal}
      before the reply leaves — a verdict a client has seen survives
      [kill -9] and is replayed into the cache on the next boot;
    - the worker pool is elastic inside
      [[workers_min, workers_max]]: the accept loop grows it when
      admission depth outruns the workers and shrinks it (one worker
      per [scale_down_ticks] quiet ticks of hysteresis) when idle;
      [Resize] frames drive the same clamped path. Shrinks retire
      workers only at task boundaries, so resizing never changes a
      verdict;
    - every worker taps its flight recorder into {!Stream}, so
      [Subscribe] connections tail a running job's events live without
      ever blocking the job;
    - {!request_drain} (wired to SIGTERM in bin/cusand) stops
      admission, gives in-flight jobs [drain_timeout_s] to finish,
      cancels and answers stragglers (recording them in
      [stats.abandoned]), and {!serve} returns the final stats. *)

type cfg = {
  socket_path : string;
  workers : int;
      (** initial pool size, clamped into [[workers_min, workers_max]] *)
  workers_min : int;
  workers_max : int;
  queue_max : int;  (** high-water mark for in-flight jobs *)
  watchdog : int;  (** scheduler step budget per job *)
  cache_cap : int;  (** max cached results; 0 disables the cache *)
  drain_timeout_s : float;
  state_dir : string option;
      (** durable journal directory; [None] keeps the cache in RAM *)
  compact_every : int;  (** journal appends between compactions *)
  scale_up_depth : int;
      (** load controller grows the pool when in-flight depth exceeds
          [workers * scale_up_depth] *)
  scale_down_ticks : int;
      (** consecutive under-loaded accept-loop ticks before the
          controller retires one worker — the shrink hysteresis *)
  sub_queue : int;  (** per-subscriber pending-frame bound (see {!Stream}) *)
  trace : bool;  (** arm the accept loop's recorder for daemon instants *)
  verbose : bool;
}

val default_cfg : socket_path:string -> cfg
(** Defaults keep elasticity off ([workers_min = workers_max =
    workers]) and the cache in RAM ([state_dir = None]). *)

type stats = {
  mutable served : int;  (** ok replies, cache hits included *)
  mutable cache_hits : int;
  mutable shed : int;  (** busy replies *)
  mutable crashed : int;  (** jobs reaped with a daemon post-mortem *)
  mutable stalled : int;  (** jobs whose verdict carried a stall *)
  mutable client_errors : int;  (** error replies: bad frames, bad jobs *)
  mutable drain_cancelled : int;  (** jobs abandoned at the drain deadline *)
  mutable peak_in_flight : int;
  mutable resizes_up : int;  (** pool growth events, admin and load alike *)
  mutable resizes_down : int;
  mutable replayed : int;  (** cache entries recovered from the journal *)
  mutable journal_appends : int;
  mutable compactions : int;
  mutable abandoned : (string * string) list;
      (** (digest, description) of jobs cancelled at the drain
          deadline, newest first — surfaced as [abandoned_jobs] in the
          drain report *)
}

val stats_json : stats -> Reporting.Mjson.t

type t

val create : cfg -> t
(** Bind and listen on [cfg.socket_path] (a stale socket file is
    unlinked), open and replay the journal when [cfg.state_dir] is set,
    and spin up the worker pool. Ignores SIGPIPE. *)

val request_drain : t -> unit
(** Signal-safe: flips an atomic the accept loop polls. *)

val draining : t -> bool

val serve : t -> stats
(** Accept and answer requests until drain is requested, then drain
    (final journal compaction included) and return the final stats. *)
