(* Job execution engine: one function from a protocol job to a
   deterministic Mjson result, runnable on any pool worker domain (all
   simulator state is domain-local, see lib/pool).

   Determinism is a load-bearing property here, twice over: it is what
   makes the daemon's content-addressed result cache *correct* (same
   job key, same result), and it is what the chaos acceptance test pins
   — a verdict served by the daemon must be byte-identical to the same
   job run in-process by the batch CLI path. Soak results therefore
   contain no wall-clock fields; timing lives in the reply envelope
   (["elapsed_s"]), which is never compared or cached.

   Exceptions deliberately escape this module: crash isolation is the
   daemon's job (it reaps the worker's failure into a post-mortem
   reply), and the engine stays an ordinary library function the batch
   tools and tests can call directly. *)

module Mjson = Reporting.Mjson
module V = Kir.Validate
module RA = Cusan.Race_analysis
module Corpus = Testsuite.Corpus

(* Default step budget for a job's scheduler watchdog: generous enough
   for every case in the matrix (the fault soak runs at 100k), small
   enough that a wedged schedule resolves in well under a second. *)
let default_watchdog = 200_000

(* --- lint targets -------------------------------------------------------- *)

type lint_target = {
  id : string;
  m : Kir.Ir.modul;
  entry : string;
  expect : Corpus.expect option;
}

(* The kirlint universe: the app/example device modules plus the seeded
   ground-truth corpus, addressable by the same ids kirlint prints. *)
let lint_targets () =
  let of_module suite (m : Kir.Ir.modul) =
    List.map
      (fun entry -> { id = suite ^ "/" ^ entry; m; entry; expect = None })
      m.Kir.Ir.kernels
  in
  of_module "jacobi" Apps.Jacobi.device_module
  @ of_module "tealeaf" Apps.Tealeaf.device_module
  @ of_module "pingpong" Apps.Pingpong.fill_src
  @ of_module "cutests" Testsuite.Cases.device_module
  @ List.map
      (fun (e : Corpus.entry) ->
        { id = "corpus/" ^ e.Corpus.name; m = e.Corpus.m;
          entry = e.Corpus.entry; expect = Some e.Corpus.expect })
      Corpus.all

let lint_target_ids () = List.map (fun t -> t.id) (lint_targets ())

let lint_json (t : lint_target) : Mjson.t =
  let valid, races =
    match V.check_module t.m with
    | exception V.Invalid msg -> (Error msg, [])
    | () -> (Ok (), RA.analyze t.m ~entry:t.entry)
  in
  let musts = List.filter (fun r -> r.RA.verdict = RA.Must) races in
  let classification =
    match valid with
    | Error msg -> "invalid: " ^ msg
    | Ok () ->
        if races = [] then "clean"
        else
          String.concat ", "
            ((if musts <> [] then
                [ Printf.sprintf "%d must-race(s)" (List.length musts) ]
              else [])
            @
            if List.length races > List.length musts then
              [ Printf.sprintf "%d may-race(s)"
                  (List.length races - List.length musts) ]
            else [])
  in
  let ok =
    match t.expect with
    | None -> Result.is_ok valid && musts = []
    | Some Corpus.Invalid -> Result.is_error valid
    | Some Corpus.Must -> Result.is_ok valid && musts <> []
    | Some Corpus.May -> Result.is_ok valid && races <> [] && musts = []
    | Some Corpus.Clean -> Result.is_ok valid && races = []
  in
  Mjson.Obj
    ([
       ("kind", Mjson.Str "lint");
       ("name", Mjson.Str t.id);
       ("entry", Mjson.Str t.entry);
       ("valid", Mjson.Bool (Result.is_ok valid));
       ("error",
        match valid with Ok () -> Mjson.Null | Error m -> Mjson.Str m);
       ("classification", Mjson.Str classification);
       ("races",
        Mjson.List
          (List.map
             (fun (r : RA.race) ->
               Mjson.Obj
                 [
                   ("verdict",
                    Mjson.Str
                      (match r.RA.verdict with RA.Must -> "must" | RA.May -> "may"));
                   ("description", Mjson.Str (RA.describe r));
                 ])
             races));
       ("ok", Mjson.Bool ok);
     ]
    @
    match t.expect with
    | None -> []
    | Some e -> [ ("expect", Mjson.Str (Corpus.expect_str e)) ])

(* --- soak ---------------------------------------------------------------- *)

let stall_json (stall : Sched.Scheduler.stall option) : Mjson.t =
  match stall with
  | None -> Mjson.Null
  | Some s ->
      Mjson.Obj
        [
          ("steps", Mjson.Int s.Sched.Scheduler.stall_steps);
          ("blocked",
           Mjson.List
             (List.map
                (fun (task, why) ->
                  Mjson.Obj [ ("task", Mjson.Str task); ("on", Mjson.Str why) ])
                s.Sched.Scheduler.stall_blocked));
          ("spinning",
           Mjson.List
             (List.map (fun t -> Mjson.Str t) s.Sched.Scheduler.stall_spinning));
        ]

let soak_case_ids () =
  List.map (fun (c : Testsuite.Cases.case) -> c.Testsuite.Cases.name)
    (Testsuite.Cases.all ())

(* The one-line command that replays this job through the batch CLI —
   the daemon's results stay auditable against cutests. *)
let soak_repro ~case ~seed ~faults =
  Printf.sprintf "dune exec bin/cutests.exe -- --only '%s'%s" case
    (match faults with
    | None -> ""
    | Some f -> Printf.sprintf " --seed %d --faults '%s'" seed f)

let soak_json ~case ~seed ~faults ~(v : Testsuite.Runner.verdict) : Mjson.t =
  let classification =
    match (v.Testsuite.Runner.case.Testsuite.Cases.expect,
           v.Testsuite.Runner.detected)
    with
    | Testsuite.Cases.Racy, true -> "race correctly reported"
    | Testsuite.Cases.Racy, false -> "race MISSED"
    | Testsuite.Cases.Clean, false -> "clean"
    | Testsuite.Cases.Clean, true -> "FALSE POSITIVE"
  in
  Mjson.Obj
    [
      ("kind", Mjson.Str "soak");
      ("name", Mjson.Str case);
      ("seed", Mjson.Int seed);
      ("faults",
       match faults with None -> Mjson.Null | Some f -> Mjson.Str f);
      ("expect",
       Mjson.Str
         (match v.Testsuite.Runner.case.Testsuite.Cases.expect with
         | Testsuite.Cases.Racy -> "racy"
         | Testsuite.Cases.Clean -> "clean"));
      ("detected", Mjson.Bool v.Testsuite.Runner.detected);
      ("pass", Mjson.Bool v.Testsuite.Runner.pass);
      ("classification", Mjson.Str classification);
      ("outcome",
       Mjson.Str
         (match v.Testsuite.Runner.stall with
         | Some _ -> "stalled"
         | None -> "completed"));
      ("stall", stall_json v.Testsuite.Runner.stall);
      ("injected", Mjson.Int v.Testsuite.Runner.injected);
      ("races", Mjson.Int (List.length v.Testsuite.Runner.reports));
      ("fault_log",
       Mjson.List
         (List.map
            (fun d ->
              Mjson.Str (Fmt.str "%a" Faultsim.Injector.pp_decision d))
            v.Testsuite.Runner.fault_log));
      ("failures",
       Mjson.List
         (List.map
            (fun (rank, why) ->
              Mjson.Obj [ ("rank", Mjson.Int rank); ("error", Mjson.Str why) ])
            v.Testsuite.Runner.failures));
      ("post_mortems",
       Mjson.List
         (List.map
            (fun (pm : Harness.Run.post_mortem) ->
              Mjson.Obj
                [
                  ("rank", Mjson.Int pm.Harness.Run.pm_rank);
                  ("site", Mjson.Str pm.Harness.Run.pm_site);
                  ("pending",
                   Mjson.List
                     (List.map (fun s -> Mjson.Str s) pm.Harness.Run.pm_pending));
                  ("unjoined",
                   Mjson.List
                     (List.map (fun s -> Mjson.Str s) pm.Harness.Run.pm_unjoined));
                  ("trace",
                   Mjson.List
                     (List.map (fun s -> Mjson.Str s) pm.Harness.Run.pm_trace));
                ])
            v.Testsuite.Runner.post_mortems));
      ("repro", Mjson.Str (soak_repro ~case ~seed ~faults));
    ]

(* --- bench --------------------------------------------------------------- *)

let bench_apps = [ "pingpong"; "jacobi"; "tealeaf" ]

(* Small fixed cells: sized so one job is O(100ms), the granularity a
   sustained-jobs/sec service wants. *)
let bench_app_fn = function
  | "pingpong" ->
      Some (Apps.Pingpong.app (Apps.Pingpong.config ~sizes:[ 1; 256; 4096 ] ~iters:4 ()))
  | "jacobi" ->
      Some
        (Apps.Jacobi.app (Apps.Jacobi.config ~nx:64 ~ny:64 ~iters:20 ~nranks:2 ()))
  | "tealeaf" ->
      Some
        (Apps.Tealeaf.app (Apps.Tealeaf.config ~nx:32 ~ny:32 ~steps:2 ~nranks:2 ()))
  | _ -> None

let bench_json ~app ~flavor ~(res : Harness.Run.result) : Mjson.t =
  Mjson.Obj
    [
      ("kind", Mjson.Str "bench");
      ("app", Mjson.Str app);
      ("flavor", Mjson.Str (Harness.Flavor.name res.Harness.Run.flavor));
      ("flavor_arg", Mjson.Str flavor);
      ("wall_s", Mjson.Float res.Harness.Run.wall_s);
      ("proc_s", Mjson.Float res.Harness.Run.proc_s);
      ("rss_bytes", Mjson.Int res.Harness.Run.rss_bytes);
      ("races", Mjson.Int (List.length res.Harness.Run.races));
      ("must_errors", Mjson.Int (List.length res.Harness.Run.must_errors));
      ("failures", Mjson.Int (List.length res.Harness.Run.failures));
      ("stalled", Mjson.Bool (res.Harness.Run.stall <> None));
    ]

(* --- dispatcher ---------------------------------------------------------- *)

exception Chaos_drill
(* what a [Boom] job raises: a stand-in for the unknown-unknown bug
   that will eventually escape a job, so crash isolation is exercised
   on every CI run instead of waiting for the real one *)

let () =
  Printexc.register_printer (function
    | Chaos_drill -> Some "Chaos_drill (deliberate crash requested by a boom job)"
    | _ -> None)

(* Bounded suggestions for an unknown id: enough to be useful, bounded
   so an error reply can never outgrow a frame. *)
let suggest ids =
  let shown = List.filteri (fun i _ -> i < 8) ids in
  String.concat ", " shown
  ^ if List.length ids > 8 then Printf.sprintf ", ... (%d total)" (List.length ids) else ""

let run_job ?(watchdog = default_watchdog) (job : Protocol.job) :
    (Mjson.t, string) result =
  if Trace.Recorder.on () then
    Trace.Recorder.instant ~cat:"cusand"
      ~args:[ ("job", Protocol.job_describe job) ]
      "job_start";
  let result =
    match job with
    | Protocol.Boom -> raise Chaos_drill
    | Protocol.Lint { target } -> (
        match List.find_opt (fun t -> t.id = target) (lint_targets ()) with
        | None ->
            Error
              (Printf.sprintf "no such lint target %S; known: %s" target
                 (suggest (lint_target_ids ())))
        | Some t -> Ok (lint_json t))
    | Protocol.Soak { case; seed; faults } -> (
        match
          List.find_opt
            (fun (c : Testsuite.Cases.case) -> c.Testsuite.Cases.name = case)
            (Testsuite.Cases.all ())
        with
        | None ->
            Error
              (Printf.sprintf "no such testsuite case %S; known: %s" case
                 (suggest (soak_case_ids ())))
        | Some c -> (
            match
              match faults with
              | None -> Ok None
              | Some spec -> (
                  match Faultsim.Plan.parse_spec spec with
                  | Error msg -> Error (Printf.sprintf "bad fault spec: %s" msg)
                  | Ok (spec_seed, plan) ->
                      (* the job's seed wins over an embedded seed=N,
                         like --seed does in cutests *)
                      let seed =
                        if seed <> 0 then seed
                        else Option.value spec_seed ~default:0
                      in
                      Ok (Some (seed, plan)))
            with
            | Error e -> Error e
            | Ok faults_arg ->
                let v =
                  Testsuite.Runner.run_case ~watchdog ?faults:faults_arg c
                in
                Ok (soak_json ~case ~seed ~faults ~v)))
    | Protocol.Bench { app; flavor } -> (
        match (bench_app_fn app, Harness.Flavor.of_string flavor) with
        | None, _ ->
            Error
              (Printf.sprintf "no such bench app %S; known: %s" app
                 (suggest bench_apps))
        | _, None -> Error (Printf.sprintf "no such flavor %S" flavor)
        | Some f, Some fl ->
            let res = Harness.Run.run ~nranks:2 ~watchdog ~flavor:fl f in
            Ok (bench_json ~app ~flavor ~res))
    | Protocol.Spin { steps } ->
        (* Wedge drill: a single rank spins on the cooperative scheduler
           until the step budget fires. The daemon's watchdog still caps
           the budget, so even a hostile spin request is bounded. *)
        let budget = min steps watchdog in
        let res =
          Harness.Run.run ~nranks:1 ~watchdog:budget
            ~flavor:Harness.Flavor.Vanilla (fun _env ->
              while true do
                Sched.Scheduler.yield ()
              done)
        in
        Ok
          (Mjson.Obj
             [
               ("kind", Mjson.Str "spin");
               ("steps", Mjson.Int steps);
               ("budget", Mjson.Int budget);
               ("outcome",
                Mjson.Str
                  (if res.Harness.Run.stall <> None then "stalled"
                   else "completed"));
               ("stall", stall_json res.Harness.Run.stall);
             ])
  in
  if Trace.Recorder.on () then
    Trace.Recorder.instant ~cat:"cusand"
      ~args:
        [
          ("job", Protocol.job_describe job);
          ("ok", match result with Ok _ -> "true" | Error _ -> "false");
        ]
      "job_done";
  result
