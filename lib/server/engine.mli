(** Job execution engine: one call from a protocol job to a
    deterministic {!Reporting.Mjson} result, runnable on any pool
    worker domain.

    Determinism is load-bearing twice: it makes the daemon's
    content-addressed result cache correct (same job key ⇒ same
    result), and it is what the chaos acceptance pins — a verdict
    served by the daemon must be byte-identical to the same job run
    in-process through the batch CLI path. Soak results carry no
    wall-clock fields.

    Exceptions escape on purpose: crash isolation is the daemon's job;
    the engine stays an ordinary library function tests call directly. *)

val default_watchdog : int
(** Default per-job scheduler step budget (wedges become labelled
    [stalled] verdicts, never hung workers). *)

val lint_target_ids : unit -> string list
(** The kirlint universe: app/example device kernels plus the seeded
    corpus, addressable by the ids kirlint prints. *)

val soak_case_ids : unit -> string list
(** Every correctness-matrix case name. *)

val bench_apps : string list

exception Chaos_drill
(** Raised by a [Boom] job: a stand-in for the unknown bug that will
    eventually escape a job, so crash isolation is exercised on every
    CI run instead of waiting for the real one. *)

val run_job :
  ?watchdog:int -> Protocol.job -> (Reporting.Mjson.t, string) result
(** Execute one job. [Error] is a client mistake (unknown target/case/
    app, bad fault spec) to be sent back as an error reply; exceptions
    are worker crashes for the daemon to reap. *)
