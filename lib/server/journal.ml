(* Durable result store for the cusand cache: a crash-safe append-only
   journal plus a periodic snapshot, both made of length-prefixed,
   checksummed Mjson frames under one state directory.

   Frame layout (binary, fixed 8-byte header):

     +--------+--------+----------------+
     | len u32| sum u32| payload (len B)|
     +--------+--------+----------------+

   [len] is the payload byte count, big-endian; [sum] is an Adler-32
   checksum of the payload. The payload is one Mjson object
   [{"digest": hex, "result": verdict}]. A reader accepts a prefix of
   valid frames and stops at the first torn or corrupt one — so a
   [kill -9] mid-append costs at most the entry being written, never a
   committed entry and never a corrupt verdict served later.

   Compaction folds journal + snapshot into a fresh snapshot written to
   a temp file, fsynced, and renamed into place before the journal is
   truncated. The crash windows are all benign:
   - before the rename: the old snapshot + full journal still hold
     every committed entry;
   - between rename and truncate: the journal's entries are replayed
     on top of the new snapshot — duplicates by digest, which replay
     collapses (same digest, same deterministic verdict), never losses.
   Recovery therefore needs no generation counters: snapshot first,
   then journal, last write per digest wins. *)

module Mjson = Reporting.Mjson

let journal_file dir = Filename.concat dir "cache.journal"
let snapshot_file dir = Filename.concat dir "cache.snapshot"
let snapshot_tmp dir = Filename.concat dir "cache.snapshot.tmp"

(* Adler-32: two 16-bit running sums mod 65521. Small, stdlib-only, and
   plenty to catch torn writes and bit flips in frames this size. *)
let checksum (s : string) : int =
  let base = 65521 in
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod base;
      b := (!b + !a) mod base)
    s;
  (!b lsl 16) lor !a

(* --- frame encoding ------------------------------------------------------ *)

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  b

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let frame_of_payload (payload : string) : string =
  let len = String.length payload in
  let b = Buffer.create (len + 8) in
  Buffer.add_bytes b (be32 len);
  Buffer.add_bytes b (be32 (checksum payload));
  Buffer.add_string b payload;
  Buffer.contents b

let entry_payload ~digest (result : Mjson.t) : string =
  Mjson.to_string
    (Mjson.Obj [ ("digest", Mjson.Str digest); ("result", result) ])

let entry_of_payload (payload : string) : (string * Mjson.t) option =
  match Mjson.of_string payload with
  | Error _ -> None
  | Ok j -> (
      match
        ( Mjson.member "digest" j |> Fun.flip Option.bind Mjson.to_str,
          Mjson.member "result" j )
      with
      | Some digest, Some result -> Some (digest, result)
      | _ -> None)

(* An upper bound on one frame's payload, to reject a corrupt length
   field before it allocates gigabytes. Results are protocol frames,
   so the protocol bound (plus headroom) is the natural ceiling. *)
let max_payload = 4 * Protocol.max_frame

type tail = Clean | Torn of string
(* [Torn why] means the file carried trailing bytes that do not form a
   valid frame; a recovering reader keeps the valid prefix and
   truncates the rest (a crash mid-append, or tail corruption). *)

let tail_to_string = function Clean -> "clean" | Torn why -> "torn: " ^ why

(* Scan one file into its valid frame prefix. Returns the decoded
   payloads, the byte offset where validity ended, and why. *)
let scan_file (path : string) : string list * int * tail =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | exception Sys_error _ -> ([], 0, Clean)
  | s ->
      let n = String.length s in
      let rec go off acc =
        if off = n then (List.rev acc, off, Clean)
        else if off + 8 > n then
          (List.rev acc, off, Torn "truncated frame header")
        else
          let len = read_be32 s off in
          let sum = read_be32 s (off + 4) in
          if len < 0 || len > max_payload then
            (List.rev acc, off, Torn (Printf.sprintf "bad length %d" len))
          else if off + 8 + len > n then
            (List.rev acc, off, Torn "truncated frame payload")
          else
            let payload = String.sub s (off + 8) len in
            if checksum payload <> sum then
              (List.rev acc, off, Torn "checksum mismatch")
            else go (off + 8 + len) (payload :: acc)
      in
      go 0 []

(* --- the open store ------------------------------------------------------ *)

type t = {
  dir : string;
  mutable oc : out_channel; (* journal, open for append *)
  mutable appended : int; (* entries appended since the last compaction *)
  mutable recovered : int; (* entries replayed at open *)
  mutable truncated : string option; (* tail diagnosis at open, if torn *)
}

type recovery = {
  entries : (string * Mjson.t) list; (* last write per digest wins *)
  replayed : int;
  torn_tail : string option;
}

(* Decode payloads into (digest, result) entries; frames that parse as
   valid JSON but not as entries are skipped (forward compatibility
   with future frame kinds), last write per digest wins. *)
let fold_entries payloads =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun p ->
      match entry_of_payload p with
      | None -> ()
      | Some (digest, result) ->
          if not (Hashtbl.mem tbl digest) then order := digest :: !order;
          Hashtbl.replace tbl digest result)
    payloads;
  List.rev_map (fun d -> (d, Hashtbl.find tbl d)) !order

let recover ~dir : recovery =
  (* A leftover snapshot temp file is a compaction that died before its
     rename; its contents are still fully covered by the old snapshot
     plus the journal, so it is just litter. *)
  (try Unix.unlink (snapshot_tmp dir) with Unix.Unix_error _ | Sys_error _ -> ());
  let snap, _, _ = scan_file (snapshot_file dir) in
  let jour, valid_end, tail = scan_file (journal_file dir) in
  (* Truncate a torn journal tail in place so the next append starts at
     the last committed frame, not after garbage. *)
  (match tail with
  | Clean -> ()
  | Torn _ -> (
      try
        let fd =
          Unix.openfile (journal_file dir) [ Unix.O_WRONLY ] 0o644
        in
        Unix.ftruncate fd valid_end;
        Unix.close fd
      with Unix.Unix_error _ -> ()));
  let entries = fold_entries (snap @ jour) in
  {
    entries;
    replayed = List.length entries;
    torn_tail = (match tail with Clean -> None | Torn why -> Some why);
  }

let open_store ~dir : t * recovery =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ());
  let r = recover ~dir in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644
      (journal_file dir)
  in
  ( {
      dir;
      oc;
      appended = 0;
      recovered = r.replayed;
      truncated = r.torn_tail;
    },
    r )

let append t ~digest (result : Mjson.t) =
  output_string t.oc (frame_of_payload (entry_payload ~digest result));
  (* Out of the process's buffers on every append: a kill -9 any time
     after [append] returns can cost at most a torn final frame, which
     recovery truncates. (Surviving power loss too would need fsync;
     the threat model here is the daemon dying, not the host.) *)
  flush t.oc;
  t.appended <- t.appended + 1

let appended_since_compact t = t.appended
let recovered_entries t = t.recovered
let torn_tail t = t.truncated

(* Fold the current committed state into a fresh snapshot: write to a
   temp file, fsync, rename over the old snapshot, then truncate the
   journal. See the header comment for why every crash window in this
   sequence is benign. *)
let compact t ~(entries : (string * Mjson.t) list) =
  let tmp = snapshot_tmp t.dir in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  List.iter
    (fun (digest, result) ->
      output_string oc (frame_of_payload (entry_payload ~digest result)))
    entries;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Unix.rename tmp (snapshot_file t.dir);
  (* The snapshot now owns every committed entry; restart the journal. *)
  close_out t.oc;
  t.oc <-
    open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644
      (journal_file t.dir);
  t.appended <- 0

let close t = try close_out t.oc with Sys_error _ -> ()
