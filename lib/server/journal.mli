(** Durable result store for the cusand cache: an append-only journal
    of length-prefixed, Adler-32-checksummed Mjson frames plus a
    periodic snapshot, under one state directory.

    Crash contract: a committed entry ([append] returned) survives any
    subsequent [kill -9]; recovery accepts the valid frame prefix of
    each file and truncates a torn or corrupt tail, so the store never
    loses a committed verdict and never serves a corrupt one. Compaction
    (snapshot-tmp → fsync → rename → journal truncate) only ever leaves
    states that recover to the same committed set — duplicates by
    digest collapse under replay (deterministic engine: same digest,
    same verdict). *)

module Mjson = Reporting.Mjson

val journal_file : string -> string
(** [dir ^ "/cache.journal"] *)

val snapshot_file : string -> string
(** [dir ^ "/cache.snapshot"] *)

val checksum : string -> int
(** Adler-32 of the payload bytes (exposed for tests). *)

val frame_of_payload : string -> string
(** One wire frame: 4-byte big-endian length, 4-byte big-endian
    Adler-32, payload (exposed for tests to craft hostile files). *)

val entry_payload : digest:string -> Mjson.t -> string
(** The Mjson payload of one cache entry frame. *)

type tail = Clean | Torn of string

val tail_to_string : tail -> string

val scan_file : string -> string list * int * tail
(** Decode a file into its valid frame-payload prefix, the byte offset
    where validity ended, and the tail diagnosis. A missing file is an
    empty clean scan. *)

type t
(** An open store: journal held open for append. *)

type recovery = {
  entries : (string * Mjson.t) list;
      (** committed (digest, result) pairs, snapshot first then journal,
          last write per digest winning *)
  replayed : int;
  torn_tail : string option;  (** why the journal tail was truncated *)
}

val recover : dir:string -> recovery
(** Read-only recovery of [dir] (also truncates a torn journal tail in
    place, so the next append lands after the last valid frame). *)

val open_store : dir:string -> t * recovery
(** Create [dir] if needed, recover, and open the journal for append. *)

val append : t -> digest:string -> Mjson.t -> unit
(** Append one committed entry and flush it out of the process — after
    this returns, the entry survives [kill -9]. *)

val appended_since_compact : t -> int

val recovered_entries : t -> int

val torn_tail : t -> string option

val compact : t -> entries:(string * Mjson.t) list -> unit
(** Fold the full committed state into a fresh snapshot (tmp → fsync →
    rename) and truncate the journal. *)

val close : t -> unit
