(* cusand wire protocol: newline-delimited JSON frames over a
   Unix-domain socket, with the Reporting.Mjson schema as the payload
   format ("cusand/1"). One request per connection: the client writes a
   single frame, the daemon answers with a single frame when the job
   resolves (immediately for health/stats/cache hits, after execution
   otherwise) and both sides close.

   The robustness contract lives here as much as in the daemon loop:
   frames are size-bounded, a torn or hostile frame decodes to an
   explicit error (never an exception for the accept loop to trip
   over), and every reply is a self-describing JSON object so clients
   can be dumb and retry loops can be deterministic. *)

module Mjson = Reporting.Mjson

let schema = "cusand/2"

(* Requests from v1 clients are still understood (v2 adds frames, it
   does not change v1's); replies always carry the current schema. *)
let accepted_schemas = [ "cusand/1"; schema ]

(* A request frame may not exceed this; the daemon answers anything
   longer with a protocol error instead of buffering unboundedly. *)
let max_frame = 1 lsl 20

(* --- jobs --------------------------------------------------------------- *)

type job =
  | Lint of { target : string }  (* a kirlint target id, e.g. "jacobi/..." *)
  | Soak of { case : string; seed : int; faults : string option }
      (* a testsuite case under an optional fault plan *)
  | Bench of { app : string; flavor : string }  (* one app/config cell *)
  | Boom  (* chaos drill: raises inside the worker, on purpose *)
  | Spin of { steps : int }
      (* wedge drill: spin in-sim until the step-budget watchdog fires;
         a worker-occupying job of tunable duration ending in a
         labelled stalled verdict *)

type request =
  | Submit of job
  | Health
  | Stats
  | Shutdown
  | Resize of int
      (* admin: set the worker-pool target (clamped to the daemon's
         --workers-min/--workers-max window) *)
  | Subscribe of { digest : string }
      (* attach this connection to a queued/running job's live event
         stream; the reply is a stream of subscribed/event/end frames,
         not a single frame *)

(* Content address of a job: the canonical key is what makes the result
   cache correct — two requests with the same key are the same
   deterministic computation (soaks embed their seed and plan; bench
   cells are keyed on the cell, so repeats serve the cached
   measurement). *)
let job_key = function
  | Lint { target } -> "lint\x00" ^ target
  | Soak { case; seed; faults } ->
      Printf.sprintf "soak\x00%s\x00%d\x00%s" case seed
        (Option.value faults ~default:"-")
  | Bench { app; flavor } -> Printf.sprintf "bench\x00%s\x00%s" app flavor
  | Boom -> "boom"
  | Spin { steps } -> Printf.sprintf "spin\x00%d" steps

let job_digest j = Digest.to_hex (Digest.string (job_key j))

let job_describe = function
  | Lint { target } -> "lint " ^ target
  | Soak { case; seed; faults } ->
      Printf.sprintf "soak %s seed=%d%s" case seed
        (match faults with None -> "" | Some f -> " faults=" ^ f)
  | Bench { app; flavor } -> Printf.sprintf "bench %s/%s" app flavor
  | Boom -> "boom"
  | Spin { steps } -> Printf.sprintf "spin %d" steps

(* --- request encoding --------------------------------------------------- *)

let request_to_json (r : request) : Mjson.t =
  let open Mjson in
  let fields =
    match r with
    | Submit (Lint { target }) -> [ ("op", Str "lint"); ("target", Str target) ]
    | Submit (Soak { case; seed; faults }) ->
        [ ("op", Str "soak"); ("case", Str case); ("seed", Int seed) ]
        @ (match faults with None -> [] | Some f -> [ ("faults", Str f) ])
    | Submit (Bench { app; flavor }) ->
        [ ("op", Str "bench"); ("app", Str app); ("flavor", Str flavor) ]
    | Submit Boom -> [ ("op", Str "boom") ]
    | Submit (Spin { steps }) -> [ ("op", Str "spin"); ("steps", Int steps) ]
    | Health -> [ ("op", Str "health") ]
    | Stats -> [ ("op", Str "stats") ]
    | Shutdown -> [ ("op", Str "shutdown") ]
    | Resize n -> [ ("op", Str "resize"); ("workers", Int n) ]
    | Subscribe { digest } ->
        [ ("op", Str "subscribe"); ("job", Str digest) ]
  in
  Obj (("schema", Str schema) :: fields)

let request_of_json (j : Mjson.t) : (request, string) result =
  let str k = Option.bind (Mjson.member k j) Mjson.to_str in
  let int k = Option.bind (Mjson.member k j) Mjson.to_int in
  match Mjson.member "schema" j |> Fun.flip Option.bind Mjson.to_str with
  | Some s when not (List.mem s accepted_schemas) ->
      Error (Printf.sprintf "unknown schema %S" s)
  | _ -> (
      match str "op" with
      | None -> Error "missing \"op\" field"
      | Some "lint" -> (
          match str "target" with
          | Some target -> Ok (Submit (Lint { target }))
          | None -> Error "lint: missing \"target\"")
      | Some "soak" -> (
          match str "case" with
          | Some case ->
              Ok
                (Submit
                   (Soak
                      {
                        case;
                        seed = Option.value (int "seed") ~default:0;
                        faults = str "faults";
                      }))
          | None -> Error "soak: missing \"case\"")
      | Some "bench" -> (
          match (str "app", str "flavor") with
          | Some app, Some flavor -> Ok (Submit (Bench { app; flavor }))
          | _ -> Error "bench: missing \"app\" or \"flavor\"")
      | Some "boom" -> Ok (Submit Boom)
      | Some "spin" -> (
          match int "steps" with
          | Some steps when steps > 0 -> Ok (Submit (Spin { steps }))
          | Some _ -> Error "spin: \"steps\" must be positive"
          | None -> Error "spin: missing \"steps\"")
      | Some "health" -> Ok Health
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some "resize" -> (
          match int "workers" with
          | Some n when n > 0 -> Ok (Resize n)
          | Some _ -> Error "resize: \"workers\" must be positive"
          | None -> Error "resize: missing \"workers\"")
      | Some "subscribe" -> (
          match str "job" with
          | Some digest -> Ok (Subscribe { digest })
          | None -> Error "subscribe: missing \"job\"")
      | Some op -> Error (Printf.sprintf "unknown op %S" op))

let parse_request (line : string) : (request, string) result =
  match Mjson.of_string line with
  | Error msg -> Error ("bad JSON: " ^ msg)
  | Ok j -> request_of_json j

(* --- replies ------------------------------------------------------------ *)

let ok_reply ?(cached = false) ~job ~elapsed_s result : Mjson.t =
  Mjson.Obj
    [
      ("schema", Mjson.Str schema);
      ("status", Mjson.Str "ok");
      ("job", Mjson.Str job);
      ("cached", Mjson.Bool cached);
      ("elapsed_s", Mjson.Float elapsed_s);
      ("result", result);
    ]

(* A reaped job: the worker caught whatever escaped the engine, the
   slot was recycled, and this is the job's tombstone — the daemon-level
   analogue of a crashed rank's post-mortem. *)
let crashed_reply ~job ~error ~backtrace : Mjson.t =
  Mjson.Obj
    [
      ("schema", Mjson.Str schema);
      ("status", Mjson.Str "crashed");
      ("job", Mjson.Str job);
      ("post_mortem",
       Mjson.Obj
         [
           ("error", Mjson.Str error);
           ("backtrace",
            Mjson.List (List.map (fun l -> Mjson.Str l) backtrace));
         ]);
    ]

(* The busy reply's backoff hint, in abstract units the client folds
   into its deterministic Resilience schedule. Scales with how
   oversubscribed the daemon actually is rather than sitting constant:
   the overshoot past the high-water mark (0 while admission is
   enforcing the bound) plus the depth of work queued behind the
   running workers — the jobs that must finish before a retry can be
   admitted. *)
let retry_after_hint ~in_flight ~high_water ~queue_len =
  max 1 (in_flight - high_water + queue_len)

(* Load shed: the admission queue is past its high-water mark.
   [retry_after] is the {!retry_after_hint} backoff hint; cusanctl
   multiplies it into its deterministic Resilience backoff schedule. *)
let busy_reply ~retry_after ~in_flight ~high_water : Mjson.t =
  Mjson.Obj
    [
      ("schema", Mjson.Str schema);
      ("status", Mjson.Str "busy");
      ("retry_after", Mjson.Int retry_after);
      ("in_flight", Mjson.Int in_flight);
      ("high_water", Mjson.Int high_water);
    ]

(* Stream frames: the subscribe conversation is the one place the
   protocol is not one-frame-each-way — after the [subscribed]
   acknowledgement the daemon pushes [event] frames as the job
   produces them, then exactly one terminal [lagged] or [end] frame. *)
let stream_reply ~kind ~job fields : Mjson.t =
  Mjson.Obj
    ([
       ("schema", Mjson.Str schema);
       ("type", Mjson.Str kind);
       ("job", Mjson.Str job);
     ]
    @ fields)

let stream_end_reply ~job ~status : Mjson.t =
  stream_reply ~kind:"end" ~job [ ("status", Mjson.Str status) ]

(* Admin resize acknowledgement: what was asked, what the min/max
   window clamped it to, and what it replaced. *)
let resized_reply ~requested ~from_ ~to_ : Mjson.t =
  Mjson.Obj
    [
      ("schema", Mjson.Str schema);
      ("status", Mjson.Str "ok");
      ("resized",
       Mjson.Obj
         [
           ("requested", Mjson.Int requested);
           ("from", Mjson.Int from_);
           ("to", Mjson.Int to_);
         ]);
    ]

let error_reply msg : Mjson.t =
  Mjson.Obj
    [
      ("schema", Mjson.Str schema);
      ("status", Mjson.Str "error");
      ("message", Mjson.Str msg);
    ]

(* --- framing ------------------------------------------------------------ *)

type read_error =
  | Closed  (** peer closed before sending anything *)
  | Truncated of string  (** EOF mid-frame; carries the partial bytes *)
  | Oversized of int  (** frame exceeded {!max_frame} *)

let read_error_to_string = function
  | Closed -> "connection closed"
  | Truncated partial ->
      Printf.sprintf "truncated frame (%d bytes, no newline)"
        (String.length partial)
  | Oversized n -> Printf.sprintf "oversized frame (> %d bytes)" n

(* Read one newline-terminated frame. Bounded: gives up past
   [max_frame] bytes so a hostile peer cannot balloon the daemon. Any
   bytes after the newline are ignored (the protocol is one frame per
   direction per connection). *)
let read_frame fd : (string, read_error) result =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    if Buffer.length buf > max_frame then Error (Oversized max_frame)
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 ->
          if Buffer.length buf = 0 then Error Closed
          else Error (Truncated (Buffer.contents buf))
      | n -> (
          let s = Bytes.sub_string chunk 0 n in
          match String.index_opt s '\n' with
          | Some i ->
              Buffer.add_string buf (String.sub s 0 i);
              Ok (Buffer.contents buf)
          | None ->
              Buffer.add_string buf s;
              go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* receive timeout armed on the socket: treat like a torn frame *)
          if Buffer.length buf = 0 then Error Closed
          else Error (Truncated (Buffer.contents buf))
  in
  go ()

(* Write one frame. Raises on a broken peer; callers treat that as the
   client having walked away (the job result is lost, the daemon is
   not). *)
let write_frame fd (j : Mjson.t) =
  let line = Mjson.to_string j ^ "\n" in
  let b = Bytes.of_string line in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
