(** cusand wire protocol: newline-delimited {!Reporting.Mjson} frames
    over a Unix-domain socket (schema ["cusand/2"]; v1 requests are
    still accepted), one request per connection — except [subscribe],
    which turns the connection into a server-to-client stream of
    [subscribed]/[event]/[lagged]/[end] frames (see {!Stream}). Frames
    are size-bounded and torn/hostile input decodes to an explicit
    error — the accept loop never sees an exception from this layer. *)

module Mjson = Reporting.Mjson

val schema : string

val accepted_schemas : string list
(** Schemas {!parse_request} accepts (current plus ["cusand/1"]). *)

val max_frame : int
(** Upper bound on a frame's byte length; longer frames are refused. *)

(** A job the daemon can execute. *)
type job =
  | Lint of { target : string }
      (** static intra-kernel race lint of one kirlint target id *)
  | Soak of { case : string; seed : int; faults : string option }
      (** one correctness-matrix case, optionally under a seeded fault
          plan (the cutests [--faults] grammar) *)
  | Bench of { app : string; flavor : string }
      (** one app × tool-configuration bench cell *)
  | Boom
      (** chaos drill: raises inside the worker on purpose, to exercise
          crash isolation end-to-end *)
  | Spin of { steps : int }
      (** wedge drill: spin in-sim until the step-budget watchdog fires
          after [steps] scheduler steps — a worker-occupying job of
          tunable duration that ends in a labelled stalled verdict,
          used to exercise backpressure and drain *)

type request =
  | Submit of job
  | Health
  | Stats
  | Shutdown
  | Resize of int
      (** admin: set the worker-pool target, clamped to the daemon's
          [--workers-min]/[--workers-max] window *)
  | Subscribe of { digest : string }
      (** tail a queued/running job's live event stream; the reply is a
          stream of frames, not a single frame *)

val job_key : job -> string
(** Canonical content address: equal keys mean the same deterministic
    computation — the correctness argument for the result cache. *)

val job_digest : job -> string
(** Hex digest of {!job_key}; the ["job"] field of replies. *)

val job_describe : job -> string
(** One-line human rendering for logs. *)

val request_to_json : request -> Mjson.t
val request_of_json : Mjson.t -> (request, string) result

val parse_request : string -> (request, string) result
(** Parse one frame body. Any failure (bad JSON, wrong schema, missing
    fields) is an [Error] message suitable for an error reply. *)

val ok_reply :
  ?cached:bool -> job:string -> elapsed_s:float -> Mjson.t -> Mjson.t

val crashed_reply :
  job:string -> error:string -> backtrace:string list -> Mjson.t
(** Tombstone for a job the worker reaped: the daemon-level analogue of
    a crashed rank's post-mortem. *)

val retry_after_hint : in_flight:int -> high_water:int -> queue_len:int -> int
(** The busy reply's backoff hint:
    [max 1 (in_flight - high_water + queue_len)] — scales with the
    overshoot past the high-water mark plus the work queued behind the
    running workers, never constant under growing load. *)

val busy_reply : retry_after:int -> in_flight:int -> high_water:int -> Mjson.t
(** Load-shed reply; [retry_after] is the {!retry_after_hint}
    deterministic backoff hint in abstract units the client folds into
    its retry schedule. *)

val stream_reply : kind:string -> job:string -> (string * Mjson.t) list -> Mjson.t
(** One frame of a subscribe stream:
    [{"schema":..,"type":kind,"job":..}] plus [fields]. Kinds:
    [subscribed], [event], [lagged], [end]. *)

val stream_end_reply : job:string -> status:string -> Mjson.t
(** The stream's terminal frame ([type = "end"]); also the immediate
    answer to a subscribe for an already-cached job
    ([status = "cached"]). *)

val resized_reply : requested:int -> from_:int -> to_:int -> Mjson.t
(** Admin resize acknowledgement: requested target, previous and new
    (clamped) pool size. *)

val error_reply : string -> Mjson.t

type read_error =
  | Closed  (** peer closed before sending anything *)
  | Truncated of string  (** EOF (or receive timeout) mid-frame *)
  | Oversized of int  (** frame exceeded {!max_frame} *)

val read_error_to_string : read_error -> string

val read_frame : Unix.file_descr -> (string, read_error) result
(** Read one newline-terminated frame, bounded by {!max_frame}. *)

val write_frame : Unix.file_descr -> Mjson.t -> unit
(** Write one frame (appends the newline). Raises [Unix.Unix_error] on
    a broken peer. *)
