(* Live progress streaming: a registry of subscribers tailing running
   jobs' flight-recorder events.

   The contract that keeps this safe to put in a job's hot path:

   - A job is NEVER blocked by a subscriber. Publishing appends to a
     bounded per-subscriber queue; socket writes are non-blocking and
     happen opportunistically at publish time and from the daemon's
     accept-loop tick.

   - A slow subscriber is dropped, explicitly: when its queue
     overflows, the pending backlog is discarded and replaced by a
     single [lagged] frame, after which the connection is flushed and
     closed. Clients learn they fell behind instead of silently
     missing events.

   - Publishing with no subscriber costs one atomic read (the global
     subscriber count), so an unwatched daemon pays nothing per
     event.

   Frames (one JSON object per line, like the rest of the protocol):
     {"schema":..,"type":"subscribed","job":D}      on attach
     {"schema":..,"type":"event","job":D,"event":{...}}
     {"schema":..,"type":"lagged","job":D,"dropped":N}   then close
     {"schema":..,"type":"end","job":D,"status":S}       then close *)

module Mjson = Reporting.Mjson

type sub = {
  fd : Unix.file_descr;
  digest : string;
  queue : string Queue.t; (* encoded frames awaiting the socket *)
  max_queue : int;
  mutable out : string; (* partial frame mid-write *)
  mutable out_off : int;
  mutable lagged : bool;
  mutable finishing : bool; (* close once the queue drains *)
  mutable dead : bool;
}

type t = {
  m : Mutex.t;
  subs : (string, sub list ref) Hashtbl.t; (* digest -> subscribers *)
  count : int Atomic.t; (* publish fast-path gate *)
  max_queue : int;
  mutable lagged_total : int;
  mutable served_total : int; (* subscriptions ever accepted *)
}

let create ?(max_queue = 512) () =
  {
    m = Mutex.create ();
    subs = Hashtbl.create 8;
    count = Atomic.make 0;
    max_queue;
    lagged_total = 0;
    served_total = 0;
  }

let subscriber_count t = Atomic.get t.count
let lagged_count t =
  Mutex.lock t.m;
  let n = t.lagged_total in
  Mutex.unlock t.m;
  n

let served_count t =
  Mutex.lock t.m;
  let n = t.served_total in
  Mutex.unlock t.m;
  n

let frame ~schema kind digest fields =
  Mjson.to_string
    (Mjson.Obj
       ([
          ("schema", Mjson.Str schema);
          ("type", Mjson.Str kind);
          ("job", Mjson.Str digest);
        ]
       @ fields))
  ^ "\n"

let event_json (e : Trace.Event.t) : Mjson.t =
  Mjson.Obj
    ([
       ("seq", Mjson.Int e.Trace.Event.seq);
       ("cat", Mjson.Str e.Trace.Event.cat);
       ("name", Mjson.Str e.Trace.Event.name);
       ("pid", Mjson.Int e.Trace.Event.pid);
       ("track", Mjson.Str e.Trace.Event.track);
       ("vt_us", Mjson.Float e.Trace.Event.vt_us);
     ]
    @
    match e.Trace.Event.args with
    | [] -> []
    | args ->
        [
          ( "args",
            Mjson.Obj (List.map (fun (k, v) -> (k, Mjson.Str v)) args) );
        ])

(* --- socket plumbing (all non-blocking) --------------------------------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Push whatever the socket will take without blocking. Returns [false]
   when the subscriber is finished with (flushed to completion after
   [finishing], or its peer broke). *)
let pump (s : sub) : bool =
  if s.dead then false
  else
    let rec go () =
      if s.out = "" then
        match Queue.take_opt s.queue with
        | None -> not s.finishing (* drained: close iff finishing *)
        | Some f ->
            s.out <- f;
            s.out_off <- 0;
            go ()
      else
        let len = String.length s.out - s.out_off in
        match Unix.write_substring s.fd s.out s.out_off len with
        | n ->
            if n = len then begin
              s.out <- "";
              s.out_off <- 0
            end
            else s.out_off <- s.out_off + n;
            if n = 0 then true else go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            true (* socket full: try again at the next tick *)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> false (* peer went away *)
    in
    let keep = try go () with _ -> false in
    if not keep then s.dead <- true;
    keep

(* Remove dead/finished subscribers of one digest list; holds the
   registry lock. *)
let sweep_locked t digest subs_ref =
  let live, gone = List.partition (fun s -> not s.dead) !subs_ref in
  List.iter
    (fun s ->
      close_quietly s.fd;
      Atomic.decr t.count)
    gone;
  if live = [] then Hashtbl.remove t.subs digest else subs_ref := live

let subscribe t ~schema ~digest fd =
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  let s =
    {
      fd;
      digest;
      queue = Queue.create ();
      max_queue = t.max_queue;
      out = "";
      out_off = 0;
      lagged = false;
      finishing = false;
      dead = false;
    }
  in
  Queue.push (frame ~schema "subscribed" digest []) s.queue;
  Mutex.lock t.m;
  (match Hashtbl.find_opt t.subs digest with
  | Some r -> r := !r @ [ s ]
  | None -> Hashtbl.replace t.subs digest (ref [ s ]));
  Atomic.incr t.count;
  t.served_total <- t.served_total + 1;
  ignore (pump s);
  Mutex.unlock t.m

(* Enqueue one frame for every subscriber of [digest]. Queue overflow
   drops the subscriber: backlog replaced by a lagged frame, connection
   closed once that flushes. *)
let push_frame t ~digest mk =
  if Atomic.get t.count > 0 then begin
    Mutex.lock t.m;
    (match Hashtbl.find_opt t.subs digest with
    | None -> ()
    | Some subs_ref ->
        List.iter
          (fun s ->
            if (not s.dead) && not s.lagged then
              if Queue.length s.queue >= s.max_queue then begin
                let dropped = Queue.length s.queue in
                Queue.clear s.queue;
                s.lagged <- true;
                s.finishing <- true;
                t.lagged_total <- t.lagged_total + 1;
                Queue.push
                  (frame ~schema:(mk `Schema) "lagged" digest
                     [ ("dropped", Mjson.Int dropped) ])
                  s.queue
              end
              else Queue.push (mk `Frame) s.queue;
            ignore (pump s))
          !subs_ref;
        sweep_locked t digest subs_ref);
    Mutex.unlock t.m
  end

let publish t ~schema ~digest (e : Trace.Event.t) =
  push_frame t ~digest (function
    | `Schema -> schema
    | `Frame -> frame ~schema "event" digest [ ("event", event_json e) ])

(* The job resolved: tell every subscriber how it ended and close them
   once the backlog flushes. *)
let finish t ~schema ~digest ~status =
  if Atomic.get t.count > 0 then begin
    Mutex.lock t.m;
    (match Hashtbl.find_opt t.subs digest with
    | None -> ()
    | Some subs_ref ->
        List.iter
          (fun s ->
            if (not s.dead) && not s.lagged then
              Queue.push
                (frame ~schema "end" digest [ ("status", Mjson.Str status) ])
                s.queue;
            s.finishing <- true;
            ignore (pump s))
          !subs_ref;
        sweep_locked t digest subs_ref);
    Mutex.unlock t.m
  end

(* Accept-loop tick: retry every pending write, sweep the finished. *)
let flush t =
  if Atomic.get t.count > 0 then begin
    Mutex.lock t.m;
    let digests = Hashtbl.fold (fun d _ acc -> d :: acc) t.subs [] in
    List.iter
      (fun d ->
        match Hashtbl.find_opt t.subs d with
        | None -> ()
        | Some subs_ref ->
            List.iter (fun s -> ignore (pump s)) !subs_ref;
            sweep_locked t d subs_ref)
      digests;
    Mutex.unlock t.m
  end

(* Drain: every remaining subscriber gets a terminal frame (best
   effort) and is closed now. *)
let close_all t ~schema ~status =
  Mutex.lock t.m;
  Hashtbl.iter
    (fun digest subs_ref ->
      List.iter
        (fun s ->
          if not s.dead then begin
            Queue.push
              (frame ~schema "end" digest [ ("status", Mjson.Str status) ])
              s.queue;
            s.finishing <- true;
            ignore (pump s);
            ignore (pump s)
          end;
          close_quietly s.fd;
          Atomic.decr t.count)
        !subs_ref)
    t.subs;
  Hashtbl.reset t.subs;
  Mutex.unlock t.m
