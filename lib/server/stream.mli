(** Live progress streaming: subscribers tailing running jobs'
    flight-recorder events over their own connections.

    Safety contract for the job hot path: publishing never blocks — it
    appends to a bounded per-subscriber queue and only performs
    non-blocking socket writes. A subscriber whose queue overflows is
    dropped with an explicit [lagged] frame (it learns it fell behind;
    it never slows the job). With no subscribers, a publish costs one
    atomic read. *)

type t

val create : ?max_queue:int -> unit -> t
(** Registry with per-subscriber queue bound [max_queue] (default
    512 frames). *)

val subscribe : t -> schema:string -> digest:string -> Unix.file_descr -> unit
(** Attach [fd] (switched to non-blocking) to the job [digest]'s event
    stream; a [subscribed] frame is queued immediately. The registry
    owns the fd from here on. *)

val publish : t -> schema:string -> digest:string -> Trace.Event.t -> unit
(** Queue one [event] frame for every subscriber of [digest]. *)

val finish : t -> schema:string -> digest:string -> status:string -> unit
(** Queue the terminal [end] frame for [digest]'s subscribers and close
    each once its backlog flushes. *)

val flush : t -> unit
(** Retry pending non-blocking writes and sweep finished or broken
    subscribers — the daemon calls this from its accept-loop tick. *)

val close_all : t -> schema:string -> status:string -> unit
(** Drain path: best-effort [end] frame to every remaining subscriber,
    then close them all now. *)

val subscriber_count : t -> int

val lagged_count : t -> int
(** Subscribers ever dropped for falling behind. *)

val served_count : t -> int
(** Subscriptions ever accepted. *)
