(* The correctness testsuite, mirroring the paper's cusan-tests
   (Section VI-C): a matrix of small CUDA-aware MPI programs, each
   either correct or containing a data race, used to (i) verify the
   detector and (ii) document which CUDA synchronization features are
   supported and how they behave.

   Axes:
   - direction: cuda-to-mpi (kernel output communicated) with blocking
     or non-blocking sends; mpi-to-cuda (non-blocking receive consumed
     by a kernel); cuda-only (managed memory accessed by host code);
     default-stream legacy semantics; cross-stream events.
   - memory kind: device, managed, or pinned host staged via memcpy.
   - synchronization: cudaDeviceSynchronize, cudaStreamSynchronize,
     cudaEventSynchronize, a cudaStreamQuery busy-wait, a blocking
     memcpy, cudaFree's implicit device sync — or, for the racy (_nok)
     variants: none, synchronizing the wrong stream, or synchronizing
     on an event recorded too early. *)

module Dev = Cudasim.Device
module Mem = Cudasim.Memory
module Mpi = Mpisim.Mpi
module R = Harness.Run

type expect = Clean | Racy

type case = {
  name : string;
  expect : expect;
  descr : string;
  nranks : int;
  app : R.app;
}

(* Most of the matrix runs on the paper's two ranks; only cases built
   around wildcard matching need a third. *)
let case ?(nranks = 2) ~name ~expect ~descr app =
  { name; expect; descr; nranks; app }

let n = 64 (* elements per buffer *)
let f64 = Typeart.Typedb.F64

(* --- device code -------------------------------------------------------- *)

let write_func =
  Kir.Dsl.(
    func "ts_write" [ ptr "buf"; scalar "n" ]
      [ if_ (tid <. p 1) [ store (p 0) tid (i2f tid +. f 0.5) ] [] ])

let read_func =
  Kir.Dsl.(
    func "ts_read"
      [ ptr "dst"; ptr "src"; scalar "n" ]
      [ if_ (tid <. p 2) [ store (p 0) tid (load (p 1) tid *. f 2.) ] [] ])

let noop_func = Kir.Dsl.(func "ts_noop" [ ptr "buf" ] [])

let device_module =
  Kir.Dsl.modul ~kernels:[ "ts_write"; "ts_read"; "ts_noop" ]
    [ write_func; read_func; noop_func ]

let kernel env name =
  env.R.compile (Cudasim.Kernel.make ~kir:(device_module, name) name)

(* --- synchronization methods --------------------------------------------- *)

type sync =
  | Dev_sync
  | Stream_sync
  | Event_sync
  | Query_loop
  | Event_query_loop
  | Free_sync
  | Memcpy_implicit
  | No_sync
  | Wrong_stream
  | Stale_event
  | Free_async_no_sync

let sync_name = function
  | Dev_sync -> "devicesync"
  | Stream_sync -> "streamsync"
  | Event_sync -> "eventsync"
  | Query_loop -> "queryloop"
  | Event_query_loop -> "eventqueryloop"
  | Free_sync -> "freesync"
  | Memcpy_implicit -> "memcpyimplicit"
  | No_sync -> "nosync"
  | Wrong_stream -> "wrongstream"
  | Stale_event -> "staleevent"
  | Free_async_no_sync -> "freeasync"

let sync_expect = function
  | Dev_sync | Stream_sync | Event_sync | Query_loop | Event_query_loop
  | Free_sync | Memcpy_implicit ->
      Clean
  | No_sync | Wrong_stream | Stale_event | Free_async_no_sync -> Racy

let sync_descr = function
  | Dev_sync -> "cudaDeviceSynchronize before the MPI call"
  | Stream_sync -> "cudaStreamSynchronize on the compute stream"
  | Event_sync -> "cudaEventSynchronize on an event recorded after the kernel"
  | Query_loop -> "busy-wait on cudaStreamQuery until completion"
  | Event_query_loop -> "busy-wait on cudaEventQuery until the event completed"
  | Free_sync -> "cudaFree of an unrelated buffer (device-wide implicit sync)"
  | Memcpy_implicit ->
      "blocking cudaMemcpy D2H on the same stream (implicit synchronization \
       point)"
  | No_sync -> "no synchronization at all"
  | Wrong_stream -> "cudaStreamSynchronize on an unrelated stream"
  | Stale_event -> "cudaEventSynchronize on an event recorded before the kernel"
  | Free_async_no_sync ->
      "cudaFreeAsync of an unrelated buffer (no device-wide sync, unlike \
       cudaFree)"

(* Run the chosen synchronization method on rank 0's compute stream.
   [pre_kernel] hooks (stale event recording) are returned separately. *)
let apply_sync env sync ~stream ~stale_event =
  let dev = env.R.dev in
  match sync with
  | Dev_sync -> Dev.device_synchronize dev
  | Stream_sync -> Dev.stream_synchronize dev stream
  | Event_sync ->
      let e = Dev.event_create dev in
      Dev.event_record dev e stream;
      Dev.event_synchronize dev e
  | Query_loop ->
      while not (Dev.stream_query dev stream) do
        ()
      done
  | Event_query_loop ->
      let e = Dev.event_create dev in
      Dev.event_record dev e stream;
      while not (Dev.event_query dev e) do
        ()
      done
  | Free_sync ->
      let scratch = Mem.cuda_malloc ~tag:"scratch" dev ~ty:f64 ~count:4 in
      Mem.free dev scratch
  | Memcpy_implicit ->
      (* A blocking D2H copy on the same stream orders all prior stream
         work before the host (paper, Section III-B2). The copied-from
         scratch region is unrelated; it is the copy's synchronicity
         that matters. *)
      let scratch = Mem.cuda_malloc ~tag:"scratch" dev ~ty:f64 ~count:4 in
      let h = Mem.cuda_host_alloc ~tag:"h_scratch" dev ~ty:f64 ~count:4 in
      Mem.memcpy dev ~dst:h ~src:scratch ~bytes:32 ~stream ()
  | No_sync -> ()
  | Wrong_stream ->
      let other = Dev.stream_create dev in
      Dev.stream_synchronize dev other
  | Stale_event -> (
      match stale_event with
      | Some e -> Dev.event_synchronize dev e
      | None -> assert false)
  | Free_async_no_sync ->
      (* Unlike cudaFree, the async variant does not synchronize the
         device — the data dependence stays unordered. *)
      let scratch = Mem.cuda_malloc ~tag:"scratch" dev ~ty:f64 ~count:4 in
      Mem.free_async dev stream scratch

(* --- memory kinds ---------------------------------------------------------- *)

type memkind = Dev_mem | Managed_mem | Pinned_staged

let mem_name = function
  | Dev_mem -> "device"
  | Managed_mem -> "managed"
  | Pinned_staged -> "pinned"

(* --- program skeletons ------------------------------------------------------ *)

(* Receiving side shared by the cuda-to-mpi cases: blocking receive into
   device memory, then consume with a kernel (always correct). *)
let receiver env =
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  let buf = Mem.cuda_malloc ~tag:"r_buf" dev ~ty:f64 ~count:n in
  let out = Mem.cuda_malloc ~tag:"r_out" dev ~ty:f64 ~count:n in
  let k_read = kernel env "ts_read" in
  Mpi.recv ctx ~buf ~count:n ~dt:Mpisim.Datatype.double ~src:0 ~tag:7;
  Dev.launch env.R.dev k_read ~grid:n
    ~args:[| VPtr out; VPtr buf; VInt n |] ();
  Dev.device_synchronize dev;
  Mem.free dev buf;
  Mem.free dev out

(* cuda-to-mpi: rank 0 computes into [memkind] memory on a user stream
   and communicates it with Send or Isend+Wait after [sync]. *)
let cuda_to_mpi ~isend ~memkind ~sync : R.app =
 fun env ->
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  if ctx.Mpi.rank = 0 then begin
    let k_write = kernel env "ts_write" in
    let stream = Dev.stream_create dev in
    let dbuf =
      match memkind with
      | Dev_mem | Pinned_staged -> Mem.cuda_malloc ~tag:"d_buf" dev ~ty:f64 ~count:n
      | Managed_mem -> Mem.cuda_malloc_managed ~tag:"m_buf" dev ~ty:f64 ~count:n
    in
    let stale_event =
      if sync = Stale_event then begin
        let e = Dev.event_create dev in
        Dev.event_record dev e stream;
        Some e
      end
      else None
    in
    Dev.launch dev k_write ~grid:n ~args:[| VPtr dbuf; VInt n |] ~stream ();
    let sendbuf =
      match memkind with
      | Dev_mem | Managed_mem ->
          apply_sync env sync ~stream ~stale_event;
          dbuf
      | Pinned_staged ->
          (* Stage through pinned host memory with an async copy on the
             same stream; the chosen sync must cover the copy, too. *)
          let hbuf = Mem.cuda_host_alloc ~tag:"h_buf" dev ~ty:f64 ~count:n in
          Mem.memcpy dev ~dst:hbuf ~src:dbuf ~bytes:(n * 8) ~async:true ~stream ();
          apply_sync env sync ~stream ~stale_event;
          hbuf
    in
    (if isend then begin
       let req =
         Mpi.isend ctx ~buf:sendbuf ~count:n ~dt:Mpisim.Datatype.double ~dst:1
           ~tag:7
       in
       Mpi.wait ctx req
     end
     else Mpi.send ctx ~buf:sendbuf ~count:n ~dt:Mpisim.Datatype.double ~dst:1 ~tag:7);
    Dev.device_synchronize dev;
    Mem.free dev dbuf
  end
  else receiver env

(* mpi-to-cuda: rank 1 posts a non-blocking receive and consumes the
   buffer with a kernel; the variant decides whether MPI_Wait happens
   before the kernel. *)
type m2c_variant = Wait_first | Test_loop | Kernel_before_wait

let m2c_name = function
  | Wait_first -> "wait"
  | Test_loop -> "testloop"
  | Kernel_before_wait -> "nowait"

let m2c_expect = function
  | Wait_first | Test_loop -> Clean
  | Kernel_before_wait -> Racy

let mpi_to_cuda ~memkind ~variant : R.app =
 fun env ->
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  if ctx.Mpi.rank = 0 then begin
    let k_write = kernel env "ts_write" in
    let dbuf = Mem.cuda_malloc ~tag:"s_buf" dev ~ty:f64 ~count:n in
    Dev.launch dev k_write ~grid:n ~args:[| VPtr dbuf; VInt n |] ();
    Dev.device_synchronize dev;
    Mpi.send ctx ~buf:dbuf ~count:n ~dt:Mpisim.Datatype.double ~dst:1 ~tag:7;
    Mem.free dev dbuf
  end
  else begin
    let k_read = kernel env "ts_read" in
    let buf =
      match memkind with
      | Dev_mem | Pinned_staged -> Mem.cuda_malloc ~tag:"r_buf" dev ~ty:f64 ~count:n
      | Managed_mem -> Mem.cuda_malloc_managed ~tag:"r_buf" dev ~ty:f64 ~count:n
    in
    let out = Mem.cuda_malloc ~tag:"r_out" dev ~ty:f64 ~count:n in
    let req =
      Mpi.irecv ctx ~buf ~count:n ~dt:Mpisim.Datatype.double ~src:0 ~tag:7
    in
    let launch_read () =
      Dev.launch dev k_read ~grid:n ~args:[| VPtr out; VPtr buf; VInt n |] ()
    in
    (match variant with
    | Wait_first ->
        Mpi.wait ctx req;
        launch_read ()
    | Test_loop ->
        while not (Mpi.test ctx req) do
          ()
        done;
        launch_read ()
    | Kernel_before_wait ->
        (* MPI semantics require the wait before dependent GPU work
           (paper, Fig. 4 line 8); this violates it. *)
        launch_read ();
        Mpi.wait ctx req);
    Dev.device_synchronize dev;
    Mem.free dev buf;
    Mem.free dev out
  end

(* cuda-only: host code reads managed memory a kernel wrote; no MPI
   involved (detected by CuSan alone). *)
let managed_host ~sync : R.app =
 fun env ->
  let dev = env.R.dev in
  let k_write = kernel env "ts_write" in
  let stream = Dev.stream_create dev in
  let buf = Mem.cuda_malloc_managed ~tag:"m_buf" dev ~ty:f64 ~count:n in
  let stale_event =
    if sync = Stale_event then begin
      let e = Dev.event_create dev in
      Dev.event_record dev e stream;
      Some e
    end
    else None
  in
  Dev.launch dev k_write ~grid:n ~args:[| VPtr buf; VInt n |] ~stream ();
  apply_sync env sync ~stream ~stale_event;
  (* Host access to managed memory: instrumented by TSan's pass. *)
  let s = ref 0. in
  for i = 0 to n - 1 do
    s := !s +. Memsim.Access.get_f64 buf i
  done;
  ignore !s;
  Dev.device_synchronize dev;
  Mem.free dev buf

(* default-stream legacy semantics: compute on a user stream, then rely
   on a default-stream operation + sync to cover it. Correct for a
   blocking user stream; racy for a non-blocking one (Fig. 3). *)
let legacy_barrier ~nonblocking : R.app =
 fun env ->
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  if ctx.Mpi.rank = 0 then begin
    let k_write = kernel env "ts_write" in
    let k_noop = kernel env "ts_noop" in
    let flags = if nonblocking then Dev.Non_blocking else Dev.Blocking in
    let stream = Dev.stream_create ~flags dev in
    let dbuf = Mem.cuda_malloc ~tag:"d_buf" dev ~ty:f64 ~count:n in
    Dev.launch dev k_write ~grid:n ~args:[| VPtr dbuf; VInt n |] ~stream ();
    (* A kernel on the legacy default stream barriers on blocking user
       streams; synchronizing the default stream then covers them. *)
    Dev.launch dev k_noop ~grid:1 ~args:[| VPtr dbuf |] ();
    Dev.stream_synchronize dev (Dev.default_stream dev);
    Mpi.send ctx ~buf:dbuf ~count:n ~dt:Mpisim.Datatype.double ~dst:1 ~tag:7;
    Dev.device_synchronize dev;
    Mem.free dev dbuf
  end
  else receiver env

(* cross-stream ordering via cudaStreamWaitEvent, then host sync on the
   waiting stream only. *)
let stream_wait_event_case : R.app =
 fun env ->
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  if ctx.Mpi.rank = 0 then begin
    let k_write = kernel env "ts_write" in
    let a = Dev.stream_create dev and b = Dev.stream_create dev in
    let dbuf = Mem.cuda_malloc ~tag:"d_buf" dev ~ty:f64 ~count:n in
    Dev.launch dev k_write ~grid:n ~args:[| VPtr dbuf; VInt n |] ~stream:a ();
    let e = Dev.event_create dev in
    Dev.event_record dev e a;
    Dev.stream_wait_event dev b e;
    Dev.stream_synchronize dev b;
    Mpi.send ctx ~buf:dbuf ~count:n ~dt:Mpisim.Datatype.double ~dst:1 ~tag:7;
    Dev.device_synchronize dev;
    Mem.free dev dbuf
  end
  else receiver env

(* memsetAsync output communicated without synchronization: the memset
   accesses memory on a stream, asynchronously w.r.t. the host. *)
let memset_async_case ~sync : R.app =
 fun env ->
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  if ctx.Mpi.rank = 0 then begin
    let stream = Dev.stream_create dev in
    let dbuf = Mem.cuda_malloc ~tag:"d_buf" dev ~ty:f64 ~count:n in
    Mem.memset dev ~dst:dbuf ~bytes:(n * 8) ~value:0 ~async:true ~stream ();
    apply_sync env sync ~stream ~stale_event:None;
    Mpi.send ctx ~buf:dbuf ~count:n ~dt:Mpisim.Datatype.double ~dst:1 ~tag:7;
    Dev.device_synchronize dev;
    Mem.free dev dbuf
  end
  else receiver env

(* intra-kernel: the race is between device threads of a single launch,
   so no host/MPI ordering can fix or cause it. The simulator executes
   device threads deterministically, so the dynamic detector never sees
   these — detection comes from the compile-time intra-kernel analysis
   (lib/cusan's [Race_analysis]), whose must-verdicts the harness
   surfaces through [Harness.Run.static_musts]. *)
let intra_kernel ~m ~entry ~alloc : R.app =
 fun env ->
  let dev = env.R.dev in
  if env.R.mpi.Mpi.rank = 0 then begin
    let k = env.R.compile (Cudasim.Kernel.make ~kir:(m, entry) entry) in
    let bufs, args = alloc dev in
    Dev.launch dev k ~grid:n ~args ();
    Dev.device_synchronize dev;
    List.iter (Mem.free dev) bufs
  end

(* --- the matrix -------------------------------------------------------------- *)

let suffix = function Clean -> "" | Racy -> "_nok"

let all () : case list =
  let c2m =
    List.concat_map
      (fun isend ->
        List.concat_map
          (fun memkind ->
            List.map
              (fun sync ->
                let expect = sync_expect sync in
                {
                  name =
                    Fmt.str "cuda-to-mpi/%s_%s_%s%s"
                      (if isend then "isend" else "send")
                      (mem_name memkind) (sync_name sync) (suffix expect);
                  expect;
                  descr =
                    Fmt.str "kernel writes %s memory; %s; %s"
                      (mem_name memkind) (sync_descr sync)
                      (if isend then "MPI_Isend + MPI_Wait" else "MPI_Send");
                  nranks = 2;
                  app = cuda_to_mpi ~isend ~memkind ~sync;
                })
              [
                Dev_sync; Stream_sync; Event_sync; Query_loop;
                Event_query_loop; Free_sync; Memcpy_implicit; No_sync;
                Wrong_stream; Stale_event; Free_async_no_sync;
              ])
          [ Dev_mem; Managed_mem; Pinned_staged ])
      [ false; true ]
  in
  let m2c =
    List.concat_map
      (fun memkind ->
        List.map
          (fun variant ->
            let expect = m2c_expect variant in
            {
              name =
                Fmt.str "mpi-to-cuda/irecv_%s_%s%s" (mem_name memkind)
                  (m2c_name variant) (suffix expect);
              expect;
              descr =
                Fmt.str "MPI_Irecv into %s memory; kernel consumes it %s"
                  (mem_name memkind)
                  (match variant with
                  | Wait_first -> "after MPI_Wait"
                  | Test_loop -> "after a successful MPI_Test loop"
                  | Kernel_before_wait -> "before MPI_Wait (racy)");
              nranks = 2;
              app = mpi_to_cuda ~memkind ~variant;
            })
          [ Wait_first; Test_loop; Kernel_before_wait ])
      [ Dev_mem; Managed_mem ]
  in
  let cuda_only =
    List.map
      (fun sync ->
        let expect = sync_expect sync in
        {
          name =
            Fmt.str "cuda-only/managed_host_%s%s" (sync_name sync) (suffix expect);
          expect;
          descr =
            Fmt.str "host reads managed memory a kernel wrote; %s" (sync_descr sync);
          nranks = 2;
          app = managed_host ~sync;
        })
      [ Dev_sync; Stream_sync; Event_sync; No_sync; Stale_event ]
  in
  let legacy =
    [
      {
        name = "legacy/default_barrier_blocking";
        expect = Clean;
        descr =
          "kernel on a blocking user stream, covered transitively by a \
           default-stream kernel + default-stream sync (legacy barrier)";
        nranks = 2;
        app = legacy_barrier ~nonblocking:false;
      };
      {
        name = "legacy/default_barrier_nonblocking_nok";
        expect = Racy;
        descr =
          "same, but the user stream is non-blocking: the legacy barrier \
           does not apply";
        nranks = 2;
        app = legacy_barrier ~nonblocking:true;
      };
      {
        name = "legacy/stream_wait_event";
        expect = Clean;
        descr =
          "cross-stream ordering via cudaStreamWaitEvent, host syncs the \
           waiting stream only";
        nranks = 2;
        app = stream_wait_event_case;
      };
    ]
  in
  let memset =
    List.map
      (fun sync ->
        let expect = sync_expect sync in
        {
          name = Fmt.str "cuda-to-mpi/memsetasync_%s%s" (sync_name sync) (suffix expect);
          expect;
          descr = Fmt.str "cudaMemsetAsync output communicated; %s" (sync_descr sync);
          nranks = 2;
          app = memset_async_case ~sync;
        })
      [ Stream_sync; Dev_sync; No_sync ]
  in
  let intra =
    [
      {
        name = "intra-kernel/neighbor_write_nok";
        expect = Racy;
        descr =
          "kernel reads p[tid+1] while writing p[tid] with no \
           __syncthreads() (static must-race)";
        nranks = 2;
        app =
          intra_kernel ~m:Corpus.neighbor_write ~entry:"neighbor_write"
            ~alloc:(fun dev ->
              let pb = Mem.cuda_malloc ~tag:"p" dev ~ty:f64 ~count:(n + 1) in
              ([ pb ], [| Kir.Interp.VPtr pb |]));
      };
      {
        name = "intra-kernel/reduction_nosync_nok";
        expect = Racy;
        descr =
          "every thread read-modify-writes out[0] without synchronization \
           (static must-race)";
        nranks = 2;
        app =
          intra_kernel ~m:Corpus.reduction_nosync ~entry:"reduction_nosync"
            ~alloc:(fun dev ->
              let out = Mem.cuda_malloc ~tag:"out" dev ~ty:f64 ~count:1 in
              let xs = Mem.cuda_malloc ~tag:"xs" dev ~ty:f64 ~count:n in
              ([ out; xs ], [| Kir.Interp.VPtr out; Kir.Interp.VPtr xs |]));
      };
      {
        name = "intra-kernel/exchange_nobarrier_nok";
        expect = Racy;
        descr =
          "definite neighbor exchange with the barrier missing; the \
           repairable corpus kernel (static must-race, fixable at gap 1)";
        nranks = 2;
        app =
          intra_kernel ~m:Corpus.exchange_nobarrier ~entry:"exchange_nobarrier"
            ~alloc:(fun dev ->
              let pb = Mem.cuda_malloc ~tag:"p" dev ~ty:f64 ~count:(n + 1) in
              let qb = Mem.cuda_malloc ~tag:"q" dev ~ty:f64 ~count:n in
              ([ pb; qb ], [| Kir.Interp.VPtr pb; Kir.Interp.VPtr qb |]));
      };
      {
        name = "intra-kernel/two_phase_barrier";
        expect = Clean;
        descr =
          "neighbor exchange correctly split into two phases by \
           __syncthreads()";
        nranks = 2;
        app =
          intra_kernel ~m:Corpus.two_phase_barrier ~entry:"two_phase_barrier"
            ~alloc:(fun dev ->
              let pb = Mem.cuda_malloc ~tag:"p" dev ~ty:f64 ~count:n in
              let qb = Mem.cuda_malloc ~tag:"q" dev ~ty:f64 ~count:n in
              ([ pb; qb ], [| Kir.Interp.VPtr pb; Kir.Interp.VPtr qb |]));
      };
      {
        name = "intra-kernel/guarded_reduction";
        expect = Clean;
        descr = "serial reduction owned by thread 0 via a tid == 0 guard";
        nranks = 2;
        app =
          intra_kernel ~m:Corpus.guarded_reduction ~entry:"guarded_reduction"
            ~alloc:(fun dev ->
              let out = Mem.cuda_malloc ~tag:"out" dev ~ty:f64 ~count:1 in
              let xs = Mem.cuda_malloc ~tag:"xs" dev ~ty:f64 ~count:n in
              ( [ out; xs ],
                [| Kir.Interp.VPtr out; Kir.Interp.VPtr xs; Kir.Interp.VInt n |]
              ));
      };
    ]
  in
  c2m @ m2c @ cuda_only @ legacy @ memset @ intra

(* --- sched-sensitive family ---------------------------------------------- *)

(* Programs whose correctness depends on the *schedule*: the racy
   variants are clean under the default FIFO interleaving (a
   single-schedule run with any seed misses them) and only expose their
   race when the scheduler orders the ranks differently — the schedule
   explorer's quarry. They are deliberately NOT part of {!all}: under a
   single schedule their ground truth is unobservable, so they would
   misclassify by construction. [expect] states the verdict over the
   whole schedule space: [Racy] = some schedule exposes a race, [Clean]
   = no schedule does. *)

(* rank 1 polls its Irecv exactly once and branches on the answer. In
   FIFO order rank 0's eager send has already deposited, the test
   succeeds and the kernel launch is properly ordered. If rank 1 runs
   first the test fails — and the buggy variant launches the consuming
   kernel anyway, before MPI_Wait (the Fig. 4 violation, but guarded by
   a schedule-dependent branch). The clean variant waits first on the
   failure path. *)
let test_poll_branch ~buggy : R.app =
 fun env ->
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  if ctx.Mpi.rank = 0 then begin
    let k_write = kernel env "ts_write" in
    let dbuf = Mem.cuda_malloc ~tag:"s_buf" dev ~ty:f64 ~count:n in
    Dev.launch dev k_write ~grid:n ~args:[| VPtr dbuf; VInt n |] ();
    Dev.device_synchronize dev;
    Mpi.send ctx ~buf:dbuf ~count:n ~dt:Mpisim.Datatype.double ~dst:1 ~tag:7;
    Mem.free dev dbuf
  end
  else begin
    let k_read = kernel env "ts_read" in
    let buf = Mem.cuda_malloc ~tag:"r_buf" dev ~ty:f64 ~count:n in
    let out = Mem.cuda_malloc ~tag:"r_out" dev ~ty:f64 ~count:n in
    let req =
      Mpi.irecv ctx ~buf ~count:n ~dt:Mpisim.Datatype.double ~src:0 ~tag:7
    in
    let launch_read () =
      Dev.launch dev k_read ~grid:n ~args:[| VPtr out; VPtr buf; VInt n |] ()
    in
    (if Mpi.test ctx req then launch_read ()
     else if buggy then begin
       launch_read ();
       Mpi.wait ctx req
     end
     else begin
       Mpi.wait ctx req;
       launch_read ()
     end);
    Dev.device_synchronize dev;
    Mem.free dev buf;
    Mem.free dev out
  end

(* rank 0 receives a flag from ANY_SOURCE and branches on the payload;
   ranks 1 and 2 race to deposit first (wildcard matching follows
   deposit order). FIFO order delivers rank 1's flag and takes the
   synchronized path; only a schedule that reorders the two sends takes
   the other branch — where the buggy variant reads managed memory a
   kernel is still writing. *)
let wildcard_payload ~buggy : R.app =
 fun env ->
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  if ctx.Mpi.rank = 0 then begin
    let flag = Mem.cuda_host_alloc ~tag:"flag" dev ~ty:f64 ~count:1 in
    Mpi.recv ctx ~buf:flag ~count:1 ~dt:Mpisim.Datatype.double
      ~src:Mpi.any_source ~tag:3;
    let first_sender = Memsim.Access.get_f64 flag 0 in
    let k_write = kernel env "ts_write" in
    let stream = Dev.stream_create dev in
    let mbuf = Mem.cuda_malloc_managed ~tag:"m_buf" dev ~ty:f64 ~count:n in
    Dev.launch dev k_write ~grid:n ~args:[| VPtr mbuf; VInt n |] ~stream ();
    if first_sender = 1.0 || not buggy then Dev.stream_synchronize dev stream;
    let s = ref 0. in
    for i = 0 to n - 1 do
      s := !s +. Memsim.Access.get_f64 mbuf i
    done;
    ignore !s;
    Dev.device_synchronize dev;
    Mem.free dev mbuf
  end
  else begin
    let flag = Mem.cuda_host_alloc ~tag:"flag" dev ~ty:f64 ~count:1 in
    Memsim.Access.set_f64 flag 0 (float_of_int ctx.Mpi.rank);
    Mpi.send ctx ~buf:flag ~count:1 ~dt:Mpisim.Datatype.double ~dst:0 ~tag:3
  end

(* rank 1 polls its Irecv once and reads the buffer from *host* code:
   on the success path the test synchronizes host and request fiber, on
   the failure path the buggy variant reads while the simulated RDMA
   deposit is still in flight. *)
let single_poll_host ~buggy : R.app =
 fun env ->
  let dev = env.R.dev in
  let ctx = env.R.mpi in
  if ctx.Mpi.rank = 0 then begin
    let sbuf = Mem.cuda_host_alloc ~tag:"s_buf" dev ~ty:f64 ~count:n in
    for i = 0 to n - 1 do
      Memsim.Access.set_f64 sbuf i (float_of_int i)
    done;
    Mpi.send ctx ~buf:sbuf ~count:n ~dt:Mpisim.Datatype.double ~dst:1 ~tag:9
  end
  else begin
    let buf = Mem.cuda_host_alloc ~tag:"r_buf" dev ~ty:f64 ~count:n in
    let req =
      Mpi.irecv ctx ~buf ~count:n ~dt:Mpisim.Datatype.double ~src:0 ~tag:9
    in
    let consume () =
      let s = ref 0. in
      for i = 0 to n - 1 do
        s := !s +. Memsim.Access.get_f64 buf i
      done;
      ignore !s
    in
    if Mpi.test ctx req then consume ()
    else if buggy then begin
      consume ();
      Mpi.wait ctx req
    end
    else begin
      Mpi.wait ctx req;
      consume ()
    end
  end

let sched_sensitive () : case list =
  [
    case ~name:"sched-sensitive/test_poll_branch_nok" ~expect:Racy
      ~descr:
        "single MPI_Test branch: the failure path launches the consuming \
         kernel before MPI_Wait — racy only in schedules where the \
         receiver outruns the sender"
      (test_poll_branch ~buggy:true);
    case ~name:"sched-sensitive/test_poll_branch" ~expect:Clean
      ~descr:"same branch structure, but the failure path waits first"
      (test_poll_branch ~buggy:false);
    case ~nranks:3 ~name:"sched-sensitive/wildcard_payload_nok" ~expect:Racy
      ~descr:
        "ANY_SOURCE flag decides the sync policy: the branch taken when \
         rank 2's deposit wins the match skips stream synchronization"
      (wildcard_payload ~buggy:true);
    case ~nranks:3 ~name:"sched-sensitive/wildcard_payload" ~expect:Clean
      ~descr:"same wildcard branch, but both payload paths synchronize"
      (wildcard_payload ~buggy:false);
    case ~name:"sched-sensitive/single_poll_host_nok" ~expect:Racy
      ~descr:
        "single MPI_Test then host read of the receive buffer: the \
         failure path reads while the deposit is still in flight"
      (single_poll_host ~buggy:true);
    case ~name:"sched-sensitive/single_poll_host" ~expect:Clean
      ~descr:"same poll, but the failure path waits before reading"
      (single_poll_host ~buggy:false);
  ]
