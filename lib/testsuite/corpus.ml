(* Seeded kernel corpus for the static intra-kernel race analysis: each
   entry is a one-kernel module with a known ground-truth verdict. The
   corpus backs three consumers — `kirlint --corpus` (must exit
   non-zero), the classification unit tests, and the intra-kernel
   testsuite family, which launches the executable entries through the
   full harness so the static verdict surfaces as a case detection. *)

open Kir.Dsl

type expect = Clean | May | Must | Invalid

let expect_str = function
  | Clean -> "clean"
  | May -> "may"
  | Must -> "must"
  | Invalid -> "invalid"

(* Expected outcome of barrier repair (`kirlint --suggest-fixes`):
   [Fixable points] pins the exact minimal insertion set the
   deterministic search must return. *)
type repair_expect = Nothing_to_fix | Fixable of int list | Unfixable

type entry = {
  name : string;
  expect : expect;
  descr : string;
  m : Kir.Ir.modul;
  entry : string;
  proves : bool;
  repair : repair_expect;
}

let one name params body =
  modul ~kernels:[ name ] [ func name params body ]

(* p[tid] = p[tid+1]: thread t's read of element t+1 collides with
   thread t+1's write of the same element within one phase. *)
let neighbor_write =
  one "neighbor_write"
    [ ptr "p" ]
    [ store (p 0) tid (load (p 0) (tid +. i 1) *. f 0.5) ]

(* Every thread accumulates into out[0] with no synchronization: the
   textbook unguarded reduction, a W/W (and R/W) must-race. *)
let reduction_nosync =
  one "reduction_nosync"
    [ ptr "out"; ptr "xs" ]
    [ store (p 0) (i 0) (load (p 0) (i 0) +. load (p 1) tid) ]

(* Phase 1 reads a neighbor element phase 0 wrote, with no barrier in
   between. The wrap-around index is symbolic (mod ntid), so the read
   set is unknown — a may-race, not provable as must. *)
let two_phase_nobarrier =
  one "two_phase_nobarrier"
    [ ptr "p"; ptr "q" ]
    [ store (p 0) tid (i2f tid);
      store (p 1) tid (load (p 0) ((tid +. i 1) %. ntid) *. f 2.);
    ]

(* Same exchange, correctly separated by __syncthreads(): the write and
   the cross-thread read land in different phases. *)
let two_phase_barrier =
  one "two_phase_barrier"
    [ ptr "p"; ptr "q" ]
    [ store (p 0) tid (i2f tid);
      barrier;
      store (p 1) tid (load (p 0) ((tid +. i 1) %. ntid) *. f 2.);
    ]

(* Serial reduction guarded by tid == 0: a single designated thread owns
   out[0], so no cross-thread pair exists. *)
let guarded_reduction =
  one "guarded_reduction"
    [ ptr "out"; ptr "xs"; scalar "n" ]
    [ if_ (tid ==. i 0)
        [ store (p 0) (i 0) (f 0.);
          for_ "k" (i 0) (p 2)
            [ store (p 0) (i 0) (load (p 0) (i 0) +. load (p 1) (v "k")) ];
        ]
        [];
    ]

(* p[tid + off]: the launch-uniform offset cancels when two instances
   are compared, leaving a stride-1 per-thread partition. *)
let offset_write =
  one "offset_write"
    [ ptr "p"; scalar "off" ]
    [ store (p 0) (tid +. p 1) (i2f tid) ]

(* p[tid * s]: the stride is a runtime scalar, so the footprint is not
   affine in tid with known coefficients — s = 0 would collide every
   thread; the analysis must keep this a may-race. *)
let unknown_stride =
  one "unknown_stride"
    [ ptr "p"; scalar "s" ]
    [ store (p 0) (tid *. p 1) (i2f tid) ]

(* __syncthreads() under a tid-dependent branch: rejected by the
   validator before any race question is asked. *)
let divergent_barrier =
  one "divergent_barrier"
    [ ptr "p" ]
    [ if_ (tid <. i 1) [ barrier ] [] ]

(* The repairable family: provable races that one or more top-level
   barrier insertions cure. Gap i = before the i-th top-level
   statement (Kir.Rewrite.insert_barriers numbering). *)

(* Definite neighbor exchange with the barrier missing: unlike
   two_phase_nobarrier the read index is concrete (tid+1), so this is
   a must-race; one barrier at gap 1 fixes it. *)
let exchange_nobarrier =
  one "exchange_nobarrier"
    [ ptr "p"; ptr "q" ]
    [ store (p 0) tid (i2f tid);
      store (p 1) tid (load (p 0) (tid +. i 1) *. f 2.);
    ]

(* Two producer->consumer handoffs in a row, both unsynchronized: a
   feeds b feeds c. Neither single gap cures both races — the minimal
   fix is two barriers, [1; 2]. *)
let chain_two_missing =
  one "chain_two_missing"
    [ ptr "a"; ptr "b"; ptr "c" ]
    [ store (p 0) tid (i2f tid);
      store (p 1) tid (load (p 0) (tid +. i 1));
      store (p 2) tid (load (p 1) (tid +. i 1));
    ]

(* The racing pair sandwiches an unrelated statement: gap 1 and gap 2
   both separate writer from reader, and the deterministic search must
   pick the lexicographically first singleton, [1]. *)
let sandwich_one_point =
  one "sandwich_one_point"
    [ ptr "a"; ptr "q" ]
    [ store (p 0) tid (i2f tid);
      store (p 1) tid (f 1.);
      store (p 1) tid (load (p 0) (tid +. i 1));
    ]

(* p[tid * (s*s + 1)]: the stride is s^2+1 >= 1, so threads never
   collide — but the product of two symbolic scalars is Top to the
   linear-form analysis, and no enumerated valuation makes the replay
   collide. Stays an unproved may: reported, never proved, nothing for
   repair to do. *)
let masked_stride =
  one "masked_stride"
    [ ptr "p"; scalar "s" ]
    [ store (p 0) (tid *. ((p 1 *. p 1) +. i 1)) (i2f tid) ]

let all =
  [
    {
      name = "neighbor_write";
      expect = Must;
      descr = "unguarded read of p[tid+1] races with the write of p[tid]";
      m = neighbor_write;
      entry = "neighbor_write";
      proves = true;
      repair = Unfixable;
    };
    {
      name = "reduction_nosync";
      expect = Must;
      descr = "all threads read-modify-write out[0] without a barrier";
      m = reduction_nosync;
      entry = "reduction_nosync";
      proves = true;
      repair = Unfixable;
    };
    {
      name = "two_phase_nobarrier";
      expect = May;
      descr = "neighbor exchange with the barrier missing (symbolic index)";
      m = two_phase_nobarrier;
      entry = "two_phase_nobarrier";
      proves = true;
      repair = Fixable [ 1 ];
    };
    {
      name = "two_phase_barrier";
      expect = Clean;
      descr = "neighbor exchange correctly split by __syncthreads()";
      m = two_phase_barrier;
      entry = "two_phase_barrier";
      proves = false;
      repair = Nothing_to_fix;
    };
    {
      name = "guarded_reduction";
      expect = Clean;
      descr = "serial reduction owned by thread 0 via a tid == 0 guard";
      m = guarded_reduction;
      entry = "guarded_reduction";
      proves = false;
      repair = Nothing_to_fix;
    };
    {
      name = "offset_write";
      expect = Clean;
      descr = "stride-1 write at a launch-uniform scalar offset";
      m = offset_write;
      entry = "offset_write";
      proves = false;
      repair = Nothing_to_fix;
    };
    {
      name = "unknown_stride";
      expect = May;
      descr = "write stride is a runtime scalar (zero collides everything)";
      m = unknown_stride;
      entry = "unknown_stride";
      proves = true;
      repair = Unfixable;
    };
    {
      name = "divergent_barrier";
      expect = Invalid;
      descr = "__syncthreads() under a tid-divergent branch";
      m = divergent_barrier;
      entry = "divergent_barrier";
      proves = false;
      repair = Nothing_to_fix;
    };
    {
      name = "exchange_nobarrier";
      expect = Must;
      descr = "definite neighbor exchange missing its barrier";
      m = exchange_nobarrier;
      entry = "exchange_nobarrier";
      proves = true;
      repair = Fixable [ 1 ];
    };
    {
      name = "chain_two_missing";
      expect = Must;
      descr = "two unsynchronized producer->consumer handoffs in a row";
      m = chain_two_missing;
      entry = "chain_two_missing";
      proves = true;
      repair = Fixable [ 1; 2 ];
    };
    {
      name = "sandwich_one_point";
      expect = Must;
      descr = "racing pair around an unrelated statement; two equal fixes";
      m = sandwich_one_point;
      entry = "sandwich_one_point";
      proves = true;
      repair = Fixable [ 1 ];
    };
    {
      name = "masked_stride";
      expect = May;
      descr = "stride s*s+1 is never zero, but symbolic to the analysis";
      m = masked_stride;
      entry = "masked_stride";
      proves = false;
      repair = Nothing_to_fix;
    };
  ]
