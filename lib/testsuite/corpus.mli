(** Seeded kernel corpus for the static intra-kernel race analysis:
    one-kernel modules with known ground-truth verdicts, shared by
    [kirlint --corpus], the classification unit tests, and the
    testsuite's intra-kernel case family. *)

type expect =
  | Clean  (** no race reported (may or must) is acceptable; must-free *)
  | May  (** at least one report expected, but no must-verdict *)
  | Must  (** at least one must-race expected *)
  | Invalid  (** the validator must reject the module *)

val expect_str : expect -> string

type entry = {
  name : string;
  expect : expect;
  descr : string;
  m : Kir.Ir.modul;
  entry : string;  (** kernel entry point inside [m] *)
}

val neighbor_write : Kir.Ir.modul
val reduction_nosync : Kir.Ir.modul
val two_phase_nobarrier : Kir.Ir.modul
val two_phase_barrier : Kir.Ir.modul
val guarded_reduction : Kir.Ir.modul
val offset_write : Kir.Ir.modul
val unknown_stride : Kir.Ir.modul
val divergent_barrier : Kir.Ir.modul

val all : entry list
