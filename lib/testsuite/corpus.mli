(** Seeded kernel corpus for the static intra-kernel race analysis:
    one-kernel modules with known ground-truth verdicts, shared by
    [kirlint --corpus], the classification unit tests, and the
    testsuite's intra-kernel case family. *)

type expect =
  | Clean  (** no race reported (may or must) is acceptable; must-free *)
  | May  (** at least one report expected, but no must-verdict *)
  | Must  (** at least one must-race expected *)
  | Invalid  (** the validator must reject the module *)

val expect_str : expect -> string

type repair_expect =
  | Nothing_to_fix
      (** no provable race: repair must report already-clean (unproved
          may candidates are allowed to remain) *)
  | Fixable of int list
      (** the exact minimal barrier insertion set the deterministic
          search must return, as gap indices into the entry body (see
          {!Kir.Rewrite.insert_barriers}) *)
  | Unfixable
      (** provable race(s) no top-level barrier insertion cures, e.g.
          both accesses in one statement *)

type entry = {
  name : string;
  expect : expect;
  descr : string;
  m : Kir.Ir.modul;
  entry : string;  (** kernel entry point inside [m] *)
  proves : bool;
      (** ground truth for witness mode: does at least one candidate
          validate by interpreter replay? *)
  repair : repair_expect;  (** ground truth for [--suggest-fixes] *)
}

val neighbor_write : Kir.Ir.modul
val reduction_nosync : Kir.Ir.modul
val two_phase_nobarrier : Kir.Ir.modul
val two_phase_barrier : Kir.Ir.modul
val guarded_reduction : Kir.Ir.modul
val offset_write : Kir.Ir.modul
val unknown_stride : Kir.Ir.modul
val divergent_barrier : Kir.Ir.modul
val exchange_nobarrier : Kir.Ir.modul
val chain_two_missing : Kir.Ir.modul
val sandwich_one_point : Kir.Ir.modul
val masked_stride : Kir.Ir.modul

val all : entry list
