(* Machine-readable renderings of testsuite verdicts: a JSON document
   (schema "cusan-tests/1") and JUnit XML for CI ingestion. Verdicts
   are emitted in case order, so two runs that classified identically
   produce byte-identical documents regardless of worker count. *)

let classification (v : Runner.verdict) =
  match (v.Runner.case.Cases.expect, v.Runner.detected) with
  | Cases.Racy, true -> "race correctly reported"
  | Cases.Racy, false -> "race MISSED"
  | Cases.Clean, false -> "clean"
  | Cases.Clean, true -> "FALSE POSITIVE"

let json_of_verdict (v : Runner.verdict) : Reporting.Mjson.t =
  let open Reporting.Mjson in
  Obj
    [
      ("name", Str v.Runner.case.Cases.name);
      ("expect",
       Str (match v.Runner.case.Cases.expect with
            | Cases.Racy -> "racy"
            | Cases.Clean -> "clean"));
      ("detected", Bool v.Runner.detected);
      ("pass", Bool v.Runner.pass);
      ("classification", Str (classification v));
      ("wall_s", Float v.Runner.wall_s);
      ("injected", Int v.Runner.injected);
      ("fault_log",
       List
         (List.map
            (fun d -> Str (Fmt.str "%a" Faultsim.Injector.pp_decision d))
            v.Runner.fault_log));
      ("failures",
       List
         (List.map
            (fun (rank, why) ->
              Obj [ ("rank", Int rank); ("error", Str why) ])
            v.Runner.failures));
      ("post_mortems",
       List
         (List.map
            (fun (pm : Harness.Run.post_mortem) ->
              Obj
                [
                  ("rank", Int pm.Harness.Run.pm_rank);
                  ("site", Str pm.Harness.Run.pm_site);
                  ("pending",
                   List (List.map (fun s -> Str s) pm.Harness.Run.pm_pending));
                  ("unjoined",
                   List (List.map (fun s -> Str s) pm.Harness.Run.pm_unjoined));
                  ("trace",
                   List (List.map (fun s -> Str s) pm.Harness.Run.pm_trace));
                ])
            v.Runner.post_mortems));
      ("reports",
       List
         (List.map
            (fun (rank, r) ->
              Obj [ ("rank", Int rank); ("report", Str (Tsan.Report.to_string r)) ])
            v.Runner.reports));
      ("static_races",
       List
         (List.map
            (fun (kernel, verdict, descr) ->
              Obj
                [
                  ("kernel", Str kernel);
                  ("verdict",
                   Str
                     (match verdict with
                     | Cudasim.Kernel.Proved_race -> "proved"
                     | Cudasim.Kernel.Must_race -> "must"
                     | Cudasim.Kernel.May_race -> "may"));
                  ("description", Str descr);
                ])
            v.Runner.static_races));
      ("history",
       List
         (List.map
            (fun (context, lines) ->
              Obj
                [
                  ("context", Str context);
                  ("events", List (List.map (fun l -> Str l) lines));
                ])
            v.Runner.history));
      ("stall",
       match v.Runner.stall with
       | None -> Null
       | Some s ->
           Obj
             [
               ("steps", Int s.Sched.Scheduler.stall_steps);
               ("blocked",
                List
                  (List.map
                     (fun (task, why) ->
                       Obj [ ("task", Str task); ("on", Str why) ])
                     s.Sched.Scheduler.stall_blocked));
               ("spinning",
                List
                  (List.map (fun t -> Str t) s.Sched.Scheduler.stall_spinning));
             ]);
    ]

let json ?seed ?faults_spec ~mode ~j (verdicts : Runner.verdict list) :
    Reporting.Mjson.t =
  let open Reporting.Mjson in
  let pass, total = Runner.summary verdicts in
  let injected =
    List.fold_left (fun acc v -> acc + v.Runner.injected) 0 verdicts
  in
  Obj
    [
      ("schema", Str "cusan-tests/1");
      ("mode", Str mode);
      ("workers", Int j);
      ("seed", (match seed with Some s -> Int s | None -> Null));
      ("faults", (match faults_spec with Some s -> Str s | None -> Null));
      ("pass", Int pass);
      ("total", Int total);
      ("injected", Int injected);
      ("cases", List (List.map json_of_verdict verdicts));
    ]

let junit (verdicts : Runner.verdict list) : string =
  let cases =
    List.map
      (fun (v : Runner.verdict) ->
        let failure =
          if v.Runner.pass then None
          else
            let body =
              String.concat "\n"
                (List.map
                   (fun (rank, why) -> Fmt.str "rank %d failed: %s" rank why)
                   v.Runner.failures
                @ List.map
                    (fun (rank, r) ->
                      Fmt.str "rank %d: %s" rank (Tsan.Report.to_string r))
                    v.Runner.reports
                @ List.map
                    (fun (kernel, verdict, descr) ->
                      Fmt.str "static %s-race in kernel %s: %s"
                        (match verdict with
                        | Cudasim.Kernel.Proved_race -> "proved"
                        | Cudasim.Kernel.Must_race -> "must"
                        | Cudasim.Kernel.May_race -> "may")
                        kernel descr)
                    v.Runner.static_races
                @ List.concat_map
                    (fun (context, lines) ->
                      Fmt.str "recent events (%s):" context
                      :: List.map (fun l -> "  " ^ l) lines)
                    v.Runner.history)
            in
            Some (classification v, body)
        in
        {
          Reporting.Junit.classname = "CuSanTest";
          name = v.Runner.case.Cases.name;
          time_s = v.Runner.wall_s;
          failure;
        })
      verdicts
  in
  Reporting.Junit.to_string ~suite_name:"cutests" cases

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc contents)
