(* Glue between the schedule explorer (lib/explore) and the testsuite:
   runs one case's whole schedule space and classifies it against its
   ground truth over that space — Racy means *some* schedule exposes a
   race, Clean means none does. The headline metric is
   "schedules-to-expose": how many runs a systematic search needs
   before the race shows, where a single-schedule run reports only
   schedule 1.

   Every run executes under the full Must_cusan stack like a normal
   testsuite case, with the explorer's three probes attached: the
   picker (schedule control), the detector's access observer (memory
   extents per slice) and a PMPI observer (sends and receives racing
   for match order). *)

module H = Mpisim.Hooks

(* Map a PMPI event to the explorer's dependency alphabet. Only Pre
   events are mapped (one op per call), and only the calls whose
   reordering changes matching: point-to-point traffic. Collectives
   impose the same matching in every schedule. *)
let op_of_call ~rank (call : H.call) : Explore.op option =
  let of_req (r : Mpisim.Request.t) =
    match r.Mpisim.Request.kind with
    | Mpisim.Request.Irecv ->
        Some
          (Explore.Recv
             { owner = rank; src = r.Mpisim.Request.peer; tag = r.Mpisim.Request.tag })
    | Mpisim.Request.Isend ->
        (* The deposit happened at the Isend; polling the request adds
           no new matching dependency. *)
        None
  in
  match call with
  | H.Send { dst; tag; _ } | H.Ssend { dst; tag; _ } ->
      Some (Explore.Send { src = rank; dst; tag })
  | H.Isend { req } ->
      Some
        (Explore.Send
           { src = rank; dst = req.Mpisim.Request.peer; tag = req.Mpisim.Request.tag })
  | H.Recv { src; tag; _ } -> Some (Explore.Recv { owner = rank; src; tag })
  | H.Irecv { req } | H.Wait { req } | H.Test { req; _ } -> of_req req
  | H.Waitall _ | H.Init | H.Finalize | H.Barrier | H.Allreduce _ | H.Bcast _
  | H.Reduce _ | H.Allgather _ | H.Gather _ | H.Scatter _ | H.Win_create _
  | H.Win_fence _ | H.Win_free _ | H.Rma_put _ | H.Rma_get _
  | H.Rma_accumulate _ ->
      None

(* Adversarial schedules can park a rank behind a spinning peer
   indefinitely; every exploration run gets a step budget so such
   schedules resolve into a diagnosable stall instead of a hang. *)
let explore_watchdog = 200_000

let run_one (case : Cases.case) ~picker ~record_op =
  let access_observer ~kind ~addr ~len =
    record_op (Explore.Mem { write = kind = `Write; addr; len })
  in
  let mpi_observer ~rank phase call =
    if phase = H.Pre then
      match op_of_call ~rank call with
      | Some op -> record_op op
      | None -> ()
  in
  let res =
    Harness.Run.run ~nranks:case.Cases.nranks ~check_types:true
      ~watchdog:explore_watchdog ~picker ~access_observer ~mpi_observer
      ~flavor:Harness.Flavor.Must_cusan case.Cases.app
  in
  Harness.Run.has_races res

type explore_verdict = {
  case : Cases.case;
  stats : Explore.stats;
  pass : bool;
}

let explore_case ?(budget = 256) ?(workers = 1) (case : Cases.case) =
  let stats =
    Explore.explore ~budget ~workers
      ~run:(fun ~picker ~record_op -> run_one case ~picker ~record_op)
      ()
  in
  let exposed = stats.Explore.exposed_at <> None in
  let pass = exposed = (case.Cases.expect = Cases.Racy) in
  { case; stats; pass }

let explore_family ?budget ?workers () =
  List.map (explore_case ?budget ?workers) (Cases.sched_sensitive ())

let pp_verdict ppf v =
  let s = v.stats in
  Fmt.pf ppf "%s: CuSanExplore :: %s (%a%s)"
    (if v.pass then "PASS" else "FAIL")
    v.case.Cases.name Explore.pp_stats s
    (match (v.case.Cases.expect, s.Explore.exposed_at) with
    | Cases.Racy, None -> "; race NEVER EXPOSED"
    | Cases.Clean, Some _ -> "; FALSE POSITIVE"
    | Cases.Racy, Some _ | Cases.Clean, None -> "")

let summary verdicts =
  let pass = List.length (List.filter (fun v -> v.pass) verdicts) in
  (pass, List.length verdicts)

(* Frontier statistics document, schema "cusan-explore/1": one entry
   per case, emitted in case order so identical explorations produce
   byte-identical documents at any worker count. *)
let json ~budget ~j (verdicts : explore_verdict list) : Reporting.Mjson.t =
  let open Reporting.Mjson in
  let pass, total = summary verdicts in
  let case_json v =
    let s = v.stats in
    Obj
      [
        ("name", Str v.case.Cases.name);
        ("expect",
         Str (match v.case.Cases.expect with
              | Cases.Racy -> "racy"
              | Cases.Clean -> "clean"));
        ("pass", Bool v.pass);
        ("schedules", Int s.Explore.runs);
        ("distinct_traces", Int s.Explore.distinct_traces);
        ("exhausted", Bool s.Explore.exhausted);
        ("exposed_at",
         match s.Explore.exposed_at with Some k -> Int k | None -> Null);
        ("interesting_runs", Int s.Explore.interesting_runs);
        ("branches", Int s.Explore.branches);
        ("visited_hits", Int s.Explore.visited_hits);
        ("sleep_skips", Int s.Explore.sleep_skips);
        ("max_depth", Int s.Explore.max_depth);
      ]
  in
  Obj
    [
      ("schema", Str "cusan-explore/1");
      ("budget", Int budget);
      ("workers", Int j);
      ("pass", Int pass);
      ("total", Int total);
      ("cases", List (List.map case_json verdicts));
    ]
