(* Executes the testsuite: each case runs under MUST & CuSan (the full
   stack) and the detector's verdict is compared with the case's ground
   truth, like `make check-cutests` in the paper's artifact.

   Cases can also run under an armed fault injector ([faults]). The
   pass criterion then changes to *verdict stability*: injection must
   never create evidence of a bug the program does not have —

   - a Clean case must stay undetected (no false positives from the
     error paths, aborted ranks, watchdog recoveries);
   - a Racy case where no fault actually fired must still be detected
     (the disarmed-probe paths are really no-ops);
   - a Racy case where a fault fired may legitimately lose its race
     (e.g. the racing rank died first), so only false positives count
     against it.

   Runs under injection always get a watchdog, so injected hangs
   terminate with a wait-for diagnostic instead of wedging the suite. *)

type verdict = {
  case : Cases.case;
  detected : bool;
  reports : (int * Tsan.Report.t) list;
  pass : bool;
  injected : int; (* faults that fired during this case *)
  failures : (int * string) list; (* captured per-rank failures *)
  post_mortems : Harness.Run.post_mortem list; (* crashed-rank remains *)
  fault_log : Faultsim.Injector.decision list; (* replay lines *)
  wall_s : float; (* wall time of this case's simulation *)
  history : (string * string list) list;
      (* flight-recorder context for blocked tasks (deadlock/stall) *)
  stall : Sched.Scheduler.stall option;
      (* watchdog diagnosis when the step budget expired mid-run *)
  static_races : (string * Cudasim.Kernel.race_verdict * string) list;
      (* intra-kernel races the compile-time analysis attached *)
}

let fault_watchdog = 100_000

(* [watchdog] overrides the step budget (the daemon gives *every* job
   one so a wedged case becomes a labelled [stall] verdict instead of a
   hung service); by default only fault-injected runs get the budget,
   preserving the batch CLI's behavior exactly. *)
let run_case ?(mode = Cudasim.Device.Eager) ?annotation ?faults ?watchdog
    ?prove_static (case : Cases.case) =
  let watchdog =
    match watchdog with
    | Some _ as w -> w
    | None -> Option.map (fun _ -> fault_watchdog) faults
  in
  let res =
    Harness.Run.run ~nranks:case.Cases.nranks ~mode ?annotation
      ~check_types:true ?watchdog ?faults ?prove_static
      ~flavor:Harness.Flavor.Must_cusan case.Cases.app
  in
  (* A case counts as detected when either the dynamic detector reported
     a race or the static intra-kernel analysis proved one (must-races
     only — may-verdicts are too weak to fail a case). Static verdicts
     are computed at compile time, so they are deterministic and do not
     interact with the fault-injection stability rules below. *)
  let detected =
    Harness.Run.has_races res || Harness.Run.has_static_musts res
  in
  let expected = case.Cases.expect = Cases.Racy in
  let injected = List.length res.Harness.Run.fault_log in
  let pass =
    if faults = None then
      detected = expected && res.Harness.Run.deadlock = None
    else if injected = 0 then
      (* Armed but nothing fired here: must behave exactly as baseline
         (hangs excluded — the watchdog is a pass-through when idle). *)
      detected = expected && res.Harness.Run.deadlock = None
    else
      (* A fault fired: no new false positives. *)
      match case.Cases.expect with Cases.Clean -> not detected | Cases.Racy -> true
  in
  {
    case;
    detected;
    reports = res.Harness.Run.races;
    pass;
    injected;
    failures = res.Harness.Run.failures;
    post_mortems = res.Harness.Run.post_mortems;
    fault_log = res.Harness.Run.fault_log;
    wall_s = res.Harness.Run.wall_s;
    history = res.Harness.Run.history;
    stall = res.Harness.Run.stall;
    static_races = res.Harness.Run.static_races;
  }

let run_all ?mode ?annotation ?faults () =
  List.map (run_case ?mode ?annotation ?faults) (Cases.all ())

(* Shard the matrix over a domain pool. Every case constructs its own
   scheduler/detector/device state inside [Harness.Run.run] and all
   simulator globals are domain-local, so classification is independent
   of which worker runs a case. [Pool.map] returns results in input
   order regardless of completion order, so aggregation is deterministic
   and byte-identical to the sequential runner ([j <= 1] *is* the
   sequential runner). *)
let run_matrix ?mode ?annotation ?faults ?(j = 1) () =
  Pool.map ~workers:j (run_case ?mode ?annotation ?faults) (Cases.all ())

let pp_verdict ppf v =
  Fmt.pf ppf "%s: CuSanTest :: %s (%s)%s"
    (if v.pass then "PASS" else "FAIL")
    v.case.Cases.name
    (match (v.case.Cases.expect, v.detected) with
    | Cases.Racy, true -> "race correctly reported"
    | Cases.Racy, false -> "race MISSED"
    | Cases.Clean, false -> "clean"
    | Cases.Clean, true -> "FALSE POSITIVE")
    (if v.injected > 0 then Fmt.str " [%d fault(s) injected]" v.injected
     else "")

let summary verdicts =
  let pass = List.length (List.filter (fun v -> v.pass) verdicts) in
  (pass, List.length verdicts)
