(* Chrome trace-event export ("JSON object format"), the interchange
   chrome://tracing and Perfetto read. One process per MPI rank, one
   thread per track (scheduler task or detector fiber). The rank's
   virtual device time and the raw epoch travel in each event's args;
   Complete ("X") events use their cost-model duration, so modelled
   GPU time is visible on the timeline.

   Built on Reporting.Mjson — the artifact stays dependency-free and
   parses back with the same module (spot-checked in test/). *)

module J = Reporting.Mjson

let process_name pid =
  if pid < 0 then "outside-ranks" else Printf.sprintf "rank %d" pid

let json (events : Event.t list) : J.t =
  (* Intern (pid, track) -> tid, in first-appearance order per rank. *)
  let tids = Hashtbl.create 16 in
  let next = Hashtbl.create 16 in
  let tid_of pid track =
    match Hashtbl.find_opt tids (pid, track) with
    | Some i -> i
    | None ->
        let i = try Hashtbl.find next pid with Not_found -> 0 in
        Hashtbl.replace next pid (i + 1);
        Hashtbl.replace tids (pid, track) i;
        i
  in
  let ev_json (e : Event.t) =
    let ph, extra =
      match e.Event.phase with
      | Event.Begin -> ("B", [])
      | Event.End -> ("E", [])
      | Event.Instant -> ("i", [ ("s", J.Str "t") ])
      | Event.Complete dur -> ("X", [ ("dur", J.Float dur) ])
    in
    J.Obj
      ([
         ("name", J.Str e.Event.name);
         ("cat", J.Str e.Event.cat);
         ("ph", J.Str ph);
         ("ts", J.Float e.Event.ts_us);
         ("pid", J.Int e.Event.pid);
         ("tid", J.Int (tid_of e.Event.pid e.Event.track));
       ]
      @ extra
      @ [
          ( "args",
            J.Obj
              (("vt_us", J.Float e.Event.vt_us)
               :: ("epoch", J.Int e.Event.epoch)
               :: List.map (fun (k, v) -> (k, J.Str v)) e.Event.args) );
        ])
  in
  let body = List.map ev_json events in
  (* Metadata names the processes and threads; sorted for a
     deterministic artifact. *)
  let threads =
    Hashtbl.fold (fun (pid, track) tid acc -> (pid, tid, track) :: acc) tids []
    |> List.sort compare
  in
  let pids = List.sort_uniq compare (List.map (fun (p, _, _) -> p) threads) in
  let meta =
    List.map
      (fun pid ->
        J.Obj
          [
            ("name", J.Str "process_name");
            ("ph", J.Str "M");
            ("pid", J.Int pid);
            ("args", J.Obj [ ("name", J.Str (process_name pid)) ]);
          ])
      pids
    @ List.map
        (fun (pid, tid, track) ->
          J.Obj
            [
              ("name", J.Str "thread_name");
              ("ph", J.Str "M");
              ("pid", J.Int pid);
              ("tid", J.Int tid);
              ("args", J.Obj [ ("name", J.Str track) ]);
            ])
        threads
  in
  J.Obj
    [ ("traceEvents", J.List (meta @ body)); ("displayTimeUnit", J.Str "ms") ]

let to_string events = J.to_string_pretty (json events)

let write_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string events))
