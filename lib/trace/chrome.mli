(** Chrome trace-event JSON export (Perfetto / chrome://tracing). *)

val json : Event.t list -> Reporting.Mjson.t
(** The "JSON object format" document: a [traceEvents] array of B/E/i/X
    events plus process_name / thread_name metadata — one process per
    MPI rank, one thread per track. *)

val to_string : Event.t list -> string

val write_file : string -> Event.t list -> unit
