(* Minimal --trace plumbing for binaries that do not parse arguments
   themselves (the examples): scan argv, enable the recorder, and write
   the Chrome JSON at exit. CLIs with strict option parsing (cutests,
   bench) integrate --trace into their own parsers instead. *)

let find_trace_arg argv =
  let n = Array.length argv in
  let rec go i =
    if i >= n then None
    else if argv.(i) = "--trace" && i + 1 < n then Some argv.(i + 1)
    else go (i + 1)
  in
  go 1

let setup ?(argv = Sys.argv) () =
  match find_trace_arg argv with
  | None -> ()
  | Some path ->
      Recorder.enable ();
      at_exit (fun () ->
          Chrome.write_file path (Recorder.events ());
          (* stderr: never perturbs an output a gate might diff *)
          Printf.eprintf "trace: wrote %s (%d events, %d dropped)\n%!" path
            (List.length (Recorder.events ()))
            (Recorder.dropped ()))
