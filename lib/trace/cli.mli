(** [--trace FILE] support for binaries without their own option
    parser (the examples). *)

val find_trace_arg : string array -> string option
(** The value following the first "--trace" in [argv], if any. *)

val setup : ?argv:string array -> unit -> unit
(** When "--trace FILE" appears in [argv] (default [Sys.argv]): enable
    the recorder now and write the Chrome trace-event JSON to FILE at
    process exit (progress note on stderr). No-op otherwise. *)
