(* A single flight-recorder entry. Events carry two timestamps: wall
   clock (microseconds since the recorder was enabled) and the rank's
   virtual device time (accumulated cost-model charges), so a timeline
   shows both host progress and modelled GPU progress side by side. *)

type phase =
  | Begin (* span opens (Chrome "B") *)
  | End (* span closes (Chrome "E") *)
  | Instant (* point event (Chrome "i") *)
  | Complete of float (* self-contained span; duration in µs (Chrome "X") *)

type t = {
  seq : int; (* global emission order: stable merge key *)
  epoch : int; (* harness run this event belongs to *)
  ts_us : float; (* wall clock, µs since enable *)
  vt_us : float; (* the rank's virtual device time, µs *)
  pid : int; (* MPI rank; -1 outside rank tasks *)
  track : string; (* scheduler task or detector fiber *)
  phase : phase;
  cat : string; (* probe family: sched, cuda, mpi, cusan, must, fault *)
  name : string;
  args : (string * string) list;
}

let phase_marker = function
  | Begin -> " begin"
  | End -> " end"
  | Instant -> ""
  | Complete d -> Printf.sprintf " (%.1fus)" d

let pp_args ppf = function
  | [] -> ()
  | args ->
      Fmt.pf ppf " {%a}"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) ->
             Fmt.pf ppf "%s=%s" k v))
        args

(* One-line rendering, used when reports embed recent history. *)
let pp_line ppf e =
  Fmt.pf ppf "[%10.1fus vt %8.1fus] %s/%s%s%a" e.ts_us e.vt_us e.cat e.name
    (phase_marker e.phase) pp_args e.args

let to_line e = Fmt.str "%a" pp_line e
