(** Flight-recorder events with dual timestamps: wall clock and the
    rank's virtual device time (see {!Recorder}). *)

type phase =
  | Begin  (** span opens (Chrome "B") *)
  | End  (** span closes (Chrome "E") *)
  | Instant  (** point event (Chrome "i") *)
  | Complete of float
      (** self-contained span; the payload is its duration in µs of
          modelled device time (Chrome "X") *)

type t = {
  seq : int;  (** global emission order: stable merge key across rings *)
  epoch : int;  (** harness run this event belongs to *)
  ts_us : float;  (** wall clock, µs since the recorder was enabled *)
  vt_us : float;  (** the rank's virtual device time, µs *)
  pid : int;  (** MPI rank; -1 outside rank tasks *)
  track : string;  (** scheduler task or race-detector fiber *)
  phase : phase;
  cat : string;  (** probe family: sched, cuda, mpi, cusan, must, fault *)
  name : string;
  args : (string * string) list;
}

val pp_line : Format.formatter -> t -> unit
(** One-line rendering, used when reports embed recent history. *)

val to_line : t -> string
